// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating each exhibit at reduced trial counts), plus ablation and
// substrate microbenchmarks. Regenerate the full-resolution exhibits with
// cmd/etexp; these benches exist so `go test -bench=.` exercises every
// experiment end to end and reports the cost of each pipeline stage.
package etap

import (
	"context"
	"fmt"
	"testing"

	"etap/internal/apps"
	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/exp"
	"etap/internal/fault"
	"etap/internal/harden"
	"etap/internal/isa"
	"etap/internal/minic"
	"etap/internal/sim"
)

// benchOpt keeps benchmark iterations affordable; the shapes are the same
// as the full runs, just noisier.
func benchOpt() exp.Options {
	o := exp.DefaultOptions()
	o.Trials = 4
	return o
}

func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := exp.Table1(); len(r.Rows) != 7 {
			b.Fatalf("table 1 rows: %d", len(r.Rows))
		}
	}
}

func BenchmarkTable2Failures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table2(context.Background(), benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Tagging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table3(context.Background(), benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFigure(b *testing.B, fn func(context.Context, exp.Options) (*exp.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(context.Background(), benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Susan(b *testing.B)    { benchFigure(b, exp.Figure1) }
func BenchmarkFigure2MPEG(b *testing.B)     { benchFigure(b, exp.Figure2) }
func BenchmarkFigure3MCF(b *testing.B)      { benchFigure(b, exp.Figure3) }
func BenchmarkFigure4Blowfish(b *testing.B) { benchFigure(b, exp.Figure4) }
func BenchmarkFigure5GSM(b *testing.B)      { benchFigure(b, exp.Figure5) }
func BenchmarkFigure6ART(b *testing.B)      { benchFigure(b, exp.Figure6) }

func BenchmarkPolicyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.PolicyAblation(context.Background(), benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPotentialModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Potential(context.Background(), benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.BitSensitivity(context.Background(), benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate microbenchmarks.

// BenchmarkSimulator measures raw functional-simulation speed
// (instructions per second) on the Blowfish workload.
func BenchmarkSimulator(b *testing.B) {
	a, _ := all.ByName("blowfish")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	input := a.Input()
	b.ResetTimer()
	var instret uint64
	for i := 0; i < b.N; i++ {
		res := sim.Run(prog, sim.Config{Input: input})
		if res.Outcome != sim.OK {
			b.Fatalf("outcome %s", res.Outcome)
		}
		instret += res.Instret
	}
	b.ReportMetric(float64(instret)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulatorWithPlan measures the fault-accounting overhead of the
// inner loop (eligibility counting enabled, no flips scheduled).
func BenchmarkSimulatorWithPlan(b *testing.B) {
	a, _ := all.ByName("blowfish")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	input := a.Input()
	plan := &sim.FaultPlan{Eligible: core.EligibleAll(prog)}
	b.ResetTimer()
	var instret uint64
	for i := 0; i < b.N; i++ {
		res := sim.Run(prog, sim.Config{Input: input, Plan: plan})
		if res.Outcome != sim.OK {
			b.Fatalf("outcome %s", res.Outcome)
		}
		instret += res.Instret
	}
	b.ReportMetric(float64(instret)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkCompile measures the MiniC pipeline (parse, check, codegen,
// assemble) on the largest application source.
func BenchmarkCompile(b *testing.B) {
	a, _ := all.ByName("mpeg")
	src := a.Source()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minic.Build(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures the control-data analysis per policy on the
// largest text segment.
func BenchmarkAnalyze(b *testing.B) {
	a, _ := all.ByName("mpeg")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []core.Policy{core.PolicyControl, core.PolicyControlAddr, core.PolicyConservative} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(prog, pol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInjectionTrial measures one full protected fault-injection trial
// per application (build amortized outside the loop).
func BenchmarkInjectionTrial(b *testing.B) {
	for _, a := range all.Apps() {
		a := a
		b.Run(a.Name(), func(b *testing.B) {
			prog, err := minic.Build(a.Source())
			if err != nil {
				b.Fatal(err)
			}
			rep, err := core.Analyze(prog, core.PolicyControlAddr)
			if err != nil {
				b.Fatal(err)
			}
			camp, err := fault.NewCampaign(prog, rep.Tagged, sim.Config{Input: a.Input()})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				camp.Run(10, int64(i))
			}
		})
	}
}

// BenchmarkCampaignLateInjection is the engine's headline comparison: a
// trial whose single injection lands in the last sixteenth of the
// eligible stream, run from instruction zero (the pre-engine baseline)
// versus resumed from the nearest checkpoint. The checkpointed variant
// must win by a wide margin (the acceptance target is ≥3×).
func BenchmarkCampaignLateInjection(b *testing.B) {
	a, _ := all.ByName("blowfish")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := campaign.New(prog, rep.Tagged, sim.Config{Input: a.Input()}, campaign.Config{})
	if err != nil {
		b.Fatal(err)
	}
	stream := eng.Clean.EligibleExec
	window := stream / 16
	latePlan := func(i int) *sim.FaultPlan {
		at := stream - window + uint64(i)%window + 1
		if at > stream {
			at = stream
		}
		return &sim.FaultPlan{
			Eligible:   eng.Eligible,
			Injections: []sim.Injection{{At: at, Bit: uint8(i % 32)}},
		}
	}
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := sim.Config{Input: a.Input(), MaxInstr: eng.Budget, Plan: latePlan(i)}
			sim.Run(prog, cfg)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	})
	b.Run("checkpointed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.RunPlan(latePlan(i))
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	})
}

// BenchmarkCampaignPoint measures end-to-end sharded point throughput on
// the engine (plan generation, checkpoint resume, scoring, aggregation).
func BenchmarkCampaignPoint(b *testing.B) {
	a, _ := all.ByName("adpcm")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := campaign.New(prog, rep.Tagged, sim.Config{Input: a.Input()}, campaign.Config{})
	if err != nil {
		b.Fatal(err)
	}
	eng.Score = apps.Scorer(a)
	b.ResetTimer()
	trials := 0
	for i := 0; i < b.N; i++ {
		r := eng.RunPoint(context.Background(), campaign.Point{Errors: 5, HiBit: 31, MaxTrials: 64, Seed: int64(i + 1)}, nil)
		trials += r.Trials
	}
	b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkCampaignPruning measures the trials/s effect of static
// injection pruning at a low error count, where single-site plans give
// the dead-destination classifier the most trials to skip. Blowfish has
// the highest dynamic benign fraction of the suite (~3% of eligible
// executions), so it is where the win is visible. The two sub-benchmarks
// run the identical point with pruning on and off; the streams are
// bit-identical (TestPruningDifferential), so the delta is pure avoided
// simulation.
func BenchmarkCampaignPruning(b *testing.B) {
	a, _ := all.ByName("blowfish")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		errors  int
		disable bool
	}{
		// errors=0: the sweep's fidelity baseline — every plan is vacuously
		// benign, so the pruned engine synthesizes the whole point.
		{"errors=0/pruned", 0, false},
		{"errors=0/full", 0, true},
		{"errors=1/pruned", 1, false},
		{"errors=1/full", 1, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng, err := campaign.New(prog, rep.Tagged, sim.Config{Input: a.Input()},
				campaign.Config{DisablePrune: bc.disable})
			if err != nil {
				b.Fatal(err)
			}
			eng.Score = apps.Scorer(a)
			b.ResetTimer()
			trials := 0
			for i := 0; i < b.N; i++ {
				r := eng.RunPoint(context.Background(), campaign.Point{Errors: bc.errors, HiBit: 31, MaxTrials: 64, Seed: int64(i + 1)}, nil)
				trials += r.Trials
			}
			b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
			if !bc.disable {
				b.ReportMetric(eng.StaticPruneFraction(), "prune-fraction")
			}
		})
	}
}

// BenchmarkPlanGeneration measures error-schedule construction.
func BenchmarkPlanGeneration(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("errors=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fault.NewPlan(nil, 5_000_000, n, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHardenOverhead measures the harden rewriter and the simulated
// instruction overhead of the hardened program versus baseline: the
// realized cost of the protection the paper's idealized model assumes is
// free. The reported metrics are the static and dynamic hardened/original
// instruction ratios.
func BenchmarkHardenOverhead(b *testing.B) {
	a, _ := all.ByName("adpcm")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		b.Fatal(err)
	}
	res, err := harden.Harden(rep, harden.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	input := a.Input()
	base := sim.Run(prog, sim.Config{Input: input})
	if base.Outcome != sim.OK {
		b.Fatalf("baseline outcome %s", base.Outcome)
	}
	b.ResetTimer()
	var hardInstret uint64
	for i := 0; i < b.N; i++ {
		r := sim.Run(res.Prog, sim.Config{Input: input})
		if r.Outcome != sim.OK {
			b.Fatalf("hardened outcome %s", r.Outcome)
		}
		hardInstret = r.Instret
	}
	b.ReportMetric(res.StaticOverhead(), "static-x")
	b.ReportMetric(float64(hardInstret)/float64(base.Instret), "dynamic-x")
}

// BenchmarkEngineScratch compares the predecoded engine against the
// reference interpreter on identical from-scratch runs and reports raw
// ns/instruction for each — the engine's headline per-step cost
// (docs/PERF.md tracks this number across revisions).
func BenchmarkEngineScratch(b *testing.B) {
	a, _ := all.ByName("blowfish")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	input := a.Input()
	run := func(b *testing.B, exec func(*isa.Program, sim.Config) sim.Result) {
		b.Helper()
		var instret uint64
		for i := 0; i < b.N; i++ {
			res := exec(prog, sim.Config{Input: input})
			if res.Outcome != sim.OK {
				b.Fatalf("outcome %s", res.Outcome)
			}
			instret += res.Instret
		}
		b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(instret), "ns/instruction")
	}
	b.Run("engine", func(b *testing.B) { run(b, sim.Run) })
	b.Run("reference", func(b *testing.B) { run(b, sim.ReferenceRun) })
}

// BenchmarkEngineRestore measures a checkpoint-resumed trial on the pooled
// Runner: one late injection, machine state restored copy-on-write, cost
// reported per re-executed instruction.
func BenchmarkEngineRestore(b *testing.B) {
	a, _ := all.ByName("blowfish")
	prog, err := minic.Build(a.Source())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		b.Fatal(err)
	}
	plan := &sim.FaultPlan{Eligible: rep.Tagged}
	rec, err := sim.Record(prog, sim.Config{Input: a.Input(), Plan: plan}, sim.RecordOptions{})
	if err != nil {
		b.Fatal(err)
	}
	stream := rec.Result.EligibleExec
	rn := rec.NewRunner()
	defer rn.Close()
	b.ResetTimer()
	var replayed uint64
	for i := 0; i < b.N; i++ {
		at := stream - stream/16 + uint64(i)%(stream/16)
		trial := &sim.FaultPlan{
			Eligible:   rep.Tagged,
			Injections: []sim.Injection{{At: at, Bit: uint8(i % 32)}},
		}
		idx := rec.SnapshotBefore(at)
		res := rn.RunFrom(idx, trial, rec.Result.Instret*2)
		delta := res.Instret
		if idx >= 0 {
			delta -= rec.Snapshots()[idx].Instret
		}
		replayed += delta
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(replayed), "ns/instruction")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkMaskingDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Masking(context.Background(), benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}
