// Command etbench runs the repo's performance harness outside `go test`
// and emits a schema'd BENCH_<rev>.json artifact, so every revision
// leaves a comparable perf trajectory point: simulator speed
// (ns/instruction), campaign throughput (trials/sec), recovery
// throughput (recovered trials/sec on a hardened detection point) and a
// fixed campaign's wall-clock. CI runs it in -short mode on every push and
// uploads the artifact; docs/OBSERVABILITY.md documents the schema.
//
// Usage:
//
//	etbench [-short] [-out dir] [-rev id] [-baseline BENCH_prev.json]
//
// The artifact name uses the VCS revision stamped into the binary
// (internal/version); -rev overrides it for unstamped builds (go run,
// test binaries), where it would otherwise be "unknown". With -baseline,
// a previous revision's artifact is loaded and per-metric deltas are
// printed after the run; a missing or malformed baseline only warns, so
// CI can pass the previous push's artifact opportunistically.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"etap/internal/apps"
	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/minic"
	"etap/internal/sim"
	"etap/internal/version"
)

// benchSchema identifies the artifact layout; bump it when fields
// change meaning.
const benchSchema = "etap-bench/v1"

// Metric is one measured figure.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Artifact is the BENCH_<rev>.json payload.
type Artifact struct {
	Schema    string    `json:"schema"`
	Revision  string    `json:"revision"`
	Dirty     bool      `json:"dirty,omitempty"`
	Go        string    `json:"go"`
	Timestamp time.Time `json:"timestamp"`
	Short     bool      `json:"short"`
	Metrics   []Metric  `json:"metrics"`
}

func main() {
	short := flag.Bool("short", false, "cheaper measurements (CI mode): smaller trial budgets, same shapes")
	outDir := flag.String("out", ".", "directory the BENCH_<rev>.json artifact is written into")
	revFlag := flag.String("rev", "", "revision id for the artifact name (default: the stamped VCS revision)")
	baseline := flag.String("baseline", "", "previous BENCH_<rev>.json to print per-metric deltas against (warn-only)")
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *showVersion {
		version.Fprint(os.Stdout, "etbench")
		return
	}
	if err := run(*short, *outDir, *revFlag, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "etbench:", err)
		os.Exit(1)
	}
}

func run(short bool, outDir, revFlag, baseline string) error {
	info := version.Get()
	rev := info.Short()
	if revFlag != "" {
		rev = revFlag
	}

	metrics, err := measure(short)
	if err != nil {
		return err
	}
	art := Artifact{
		Schema:    benchSchema,
		Revision:  info.Revision,
		Dirty:     info.Dirty,
		Go:        info.Go,
		Timestamp: time.Now().UTC().Truncate(time.Second),
		Short:     short,
		Metrics:   metrics,
	}
	if revFlag != "" {
		art.Revision = revFlag
	}

	path := filepath.Join(outDir, "BENCH_"+rev+".json")
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	for _, m := range metrics {
		fmt.Printf("  %-32s %14.4f %s\n", m.Name, m.Value, m.Unit)
	}
	if baseline != "" {
		printDeltas(baseline, metrics)
	}
	return nil
}

// lowerIsBetter flags metrics where a negative delta is an improvement
// (per-step costs and wall-clocks, as opposed to throughputs).
var lowerIsBetter = map[string]bool{
	"sim_ns_per_instruction": true,
	"campaign_sweep_seconds": true,
}

// printDeltas compares the run's metrics against a previous artifact.
// Every failure mode is a warning, never an error: the perf trajectory is
// informational, and CI must stay green when the previous artifact has
// expired or the schema moved.
func printDeltas(path string, metrics []Metric) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etbench: baseline unavailable: %v\n", err)
		return
	}
	var prev Artifact
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "etbench: baseline %s unreadable: %v\n", path, err)
		return
	}
	if prev.Schema != benchSchema {
		fmt.Fprintf(os.Stderr, "etbench: baseline schema %q != %q; skipping deltas\n", prev.Schema, benchSchema)
		return
	}
	base := make(map[string]Metric, len(prev.Metrics))
	for _, m := range prev.Metrics {
		base[m.Name] = m
	}
	fmt.Printf("vs baseline %s (revision %s):\n", path, prev.Revision)
	for _, m := range metrics {
		b, ok := base[m.Name]
		if !ok || b.Value == 0 {
			fmt.Printf("  %-32s %14.4f %s (no baseline value)\n", m.Name, m.Value, m.Unit)
			continue
		}
		pct := (m.Value - b.Value) / b.Value * 100
		marker := ""
		switch improved := pct < 0 == lowerIsBetter[m.Name]; {
		case pct == 0:
		case improved:
			marker = "  (improved)"
		default:
			marker = "  (regressed)"
		}
		fmt.Printf("  %-32s %14.4f -> %14.4f %s  %+7.1f%%%s\n",
			m.Name, b.Value, m.Value, m.Unit, pct, marker)
	}
}

// measure runs the three headline measurements. Each uses
// testing.Benchmark, so iteration counts self-calibrate exactly as the
// bench_test.go harness does.
func measure(short bool) ([]Metric, error) {
	simApp, _ := all.ByName("blowfish")
	simProg, err := minic.Build(simApp.Source())
	if err != nil {
		return nil, fmt.Errorf("building blowfish: %w", err)
	}
	campApp, _ := all.ByName("adpcm")
	campProg, err := minic.Build(campApp.Source())
	if err != nil {
		return nil, fmt.Errorf("building adpcm: %w", err)
	}
	rep, err := core.Analyze(campProg, core.PolicyControlAddr)
	if err != nil {
		return nil, fmt.Errorf("analyzing adpcm: %w", err)
	}

	maxTrials := 64
	points := 4
	if short {
		maxTrials = 16
		points = 2
	}

	var metrics []Metric

	// Simulator speed: clean blowfish runs, no fault accounting.
	var benchErr error
	simRes := testing.Benchmark(func(b *testing.B) {
		var instret uint64
		for i := 0; i < b.N; i++ {
			res := sim.Run(simProg, sim.Config{Input: simApp.Input()})
			if res.Outcome != sim.OK {
				benchErr = fmt.Errorf("clean run outcome %s", res.Outcome)
				return
			}
			instret += res.Instret
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instret), "ns/instr")
	})
	if benchErr != nil {
		return nil, benchErr
	}
	metrics = append(metrics, Metric{
		Name:  "sim_ns_per_instruction",
		Value: simRes.Extra["ns/instr"],
		Unit:  "ns/instruction",
	})

	// Campaign throughput: sharded points on the checkpointing engine,
	// the per-trial cost a characterization job pays.
	eng, err := campaign.New(campProg, rep.Tagged, sim.Config{Input: campApp.Input()}, campaign.Config{})
	if err != nil {
		return nil, fmt.Errorf("engine setup: %w", err)
	}
	eng.Score = apps.Scorer(campApp)
	campRes := testing.Benchmark(func(b *testing.B) {
		trials := 0
		for i := 0; i < b.N; i++ {
			r := eng.RunPoint(context.Background(), campaign.Point{
				Errors: 5, HiBit: 31, MaxTrials: maxTrials, Seed: int64(i + 1),
			}, nil)
			trials += r.Trials
		}
		b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
	})
	metrics = append(metrics, Metric{
		Name:  "campaign_trials_per_second",
		Value: campRes.Extra["trials/s"],
		Unit:  "trials/second",
	})

	// Fixed-campaign wall-clock: one deterministic sweep, timed once —
	// the end-to-end figure a service job's latency tracks.
	start := time.Now()
	total := 0
	for p := 0; p < points; p++ {
		r := eng.RunPoint(context.Background(), campaign.Point{
			Errors: 1 << p, HiBit: 31, MaxTrials: maxTrials, Seed: 1,
		}, nil)
		total += r.Trials
	}
	elapsed := time.Since(start)
	metrics = append(metrics,
		Metric{Name: "campaign_sweep_seconds", Value: elapsed.Seconds(), Unit: "seconds"},
		Metric{Name: "campaign_sweep_trials", Value: float64(total), Unit: "trials"},
	)

	// Recovery throughput: a hardened detection point with
	// checkpoint-restore recovery enabled — the per-trial cost of the
	// detect→rollback→replay loop, reported as recovered trials per
	// wall-second so regressions in snapshot restore or replay show up
	// directly.
	hardRes, err := harden.Harden(rep, harden.Options{DupCompare: true, Signatures: true})
	if err != nil {
		return nil, fmt.Errorf("hardening adpcm: %w", err)
	}
	hardEng, err := campaign.New(hardRes.Prog, hardRes.PrimaryProtected, sim.Config{Input: campApp.Input()}, campaign.Config{})
	if err != nil {
		return nil, fmt.Errorf("hardened engine setup: %w", err)
	}
	hardEng.Score = apps.Scorer(campApp)
	recRes := testing.Benchmark(func(b *testing.B) {
		recovered := 0
		for i := 0; i < b.N; i++ {
			r := hardEng.RunPoint(context.Background(), campaign.Point{
				Errors: 1, HiBit: 31, MaxTrials: maxTrials, Seed: int64(i + 1), MaxRecoveries: 3,
			}, nil)
			recovered += r.Recovered
		}
		if recovered == 0 {
			benchErr = fmt.Errorf("recovery benchmark recovered no trials")
			return
		}
		b.ReportMetric(float64(recovered)/b.Elapsed().Seconds(), "recovered/s")
	})
	if benchErr != nil {
		return nil, benchErr
	}
	metrics = append(metrics, Metric{
		Name:  "recovered_trials_per_sec",
		Value: recRes.Extra["recovered/s"],
		Unit:  "trials/second",
	})

	// Static-pruning reach: the dynamic share of eligible executions the
	// analyzer proves benign — the fraction of injection ordinals a
	// campaign answers without simulating (docs/ANALYSIS.md). Measured on
	// blowfish, the suite's most prunable workload, so regressions in the
	// liveness analysis show up as a drop here.
	simRep, err := core.Analyze(simProg, core.PolicyControlAddr)
	if err != nil {
		return nil, fmt.Errorf("analyzing blowfish: %w", err)
	}
	pruneEng, err := campaign.New(simProg, simRep.Tagged, sim.Config{Input: simApp.Input()}, campaign.Config{})
	if err != nil {
		return nil, fmt.Errorf("prune engine setup: %w", err)
	}
	metrics = append(metrics,
		Metric{Name: "static_prune_fraction", Value: pruneEng.StaticPruneFraction(), Unit: "fraction"},
	)
	return metrics, nil
}
