// Command etcamp runs fault-injection campaigns on the checkpointed,
// sharded campaign engine and exports the aggregated results as text,
// JSON or CSV artifacts.
//
// Usage:
//
//	etcamp -app susan[,gsm,...|all] [-mode protected|unprotected|both]
//	       [-errors 1,2,5,10] [-trials N] [-ci W] [-min-trials N]
//	       [-workers N] [-seed S] [-policy control|control+addr|conservative]
//	       [-format text|json|csv] [-out file]
//
// Each (application, mode, error-count) point runs up to -trials trials;
// with -ci set, a point stops early once the Wilson 95% confidence
// interval on its catastrophic-failure rate is narrower than W (for any
// worker count, the numbers come out identical). Results go to stdout (or
// -out); live per-trial progress and diagnostics go to stderr. SIGINT or
// SIGTERM cancels the campaign between trials: the points finished so
// far (plus the partial, flagged point) are still exported before the
// tool exits non-zero. The exit code is non-zero on any failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"etap/internal/apps"
	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/minic"
	"etap/internal/sim"
	"etap/internal/termprog"
	"etap/internal/textplot"
	"etap/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "etcamp:", err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

type usageError string

func (e usageError) Error() string { return string(e) }

type options struct {
	apps      []apps.App
	modes     []string
	errors    []int
	trials    int
	minTrials int
	ciWidth   float64
	workers   int
	seed      int64
	policy    core.Policy
	format    string
	outFile   string
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("etcamp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appFlag := fs.String("app", "", "benchmark names, comma-separated, or 'all'")
	modeFlag := fs.String("mode", "both", "eligibility mode: protected, unprotected or both")
	errorsFlag := fs.String("errors", "1,2,5,10", "error counts per trial, comma-separated")
	trials := fs.Int("trials", 100, "trial budget per measurement point")
	minTrials := fs.Int("min-trials", 0, "trial floor before early stopping (0 = engine default)")
	ciWidth := fs.Float64("ci", 0, "early-stop Wilson CI width on the failure and detection rates, as a fraction (0 = run the full budget)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; never changes results)")
	seed := fs.Int64("seed", 1, "campaign seed")
	policy := fs.String("policy", "control+addr", "analysis policy: control, control+addr, conservative")
	format := fs.String("format", "text", "output format: text, json or csv")
	outFile := fs.String("out", "", "write results to this file instead of stdout")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return usageError(err.Error())
	}
	if *showVersion {
		version.Fprint(stdout, "etcamp")
		return nil
	}

	opt := options{
		trials:    *trials,
		minTrials: *minTrials,
		ciWidth:   *ciWidth,
		workers:   *workers,
		seed:      *seed,
		format:    *format,
		outFile:   *outFile,
	}
	var err error
	if opt.apps, err = parseApps(*appFlag); err != nil {
		return err
	}
	if opt.modes, err = parseModes(*modeFlag); err != nil {
		return err
	}
	if opt.errors, err = parseInts(*errorsFlag); err != nil {
		return usageError(fmt.Sprintf("bad -errors: %v", err))
	}
	var ok bool
	if opt.policy, ok = core.ParsePolicy(*policy); !ok {
		return usageError(fmt.Sprintf("unknown -policy %q (have control, control+addr, conservative)", *policy))
	}
	switch opt.format {
	case "text", "json", "csv":
	default:
		return usageError(fmt.Sprintf("unknown -format %q (have text, json, csv)", opt.format))
	}
	if opt.trials <= 0 {
		return usageError("-trials must be positive")
	}

	// Open the artifact file before running anything so a bad path fails
	// in milliseconds, not after the campaign.
	out := stdout
	if opt.outFile != "" {
		f, cerr := os.Create(opt.outFile)
		if cerr != nil {
			return cerr
		}
		defer f.Close()
		out = f
	}

	reports, err := runCampaigns(ctx, opt, stderr)
	if err != nil {
		return err
	}
	var werr error
	switch opt.format {
	case "json":
		werr = campaign.WriteJSON(out, reports)
	case "csv":
		werr = campaign.WriteCSV(out, reports)
	default:
		werr = writeText(out, reports)
	}
	if werr != nil {
		return werr
	}
	// A cancelled campaign still exports what it measured, but exits
	// non-zero so scripts know the sweep is incomplete.
	return ctx.Err()
}

func runCampaigns(ctx context.Context, opt options, stderr io.Writer) ([]*campaign.Report, error) {
	var reports []*campaign.Report
	for _, a := range opt.apps {
		if ctx.Err() != nil {
			break
		}
		prog, err := minic.Build(a.Source())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name(), err)
		}
		rep, err := core.Analyze(prog, opt.policy)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name(), err)
		}
		for _, mode := range opt.modes {
			if ctx.Err() != nil {
				break
			}
			eligible := rep.Tagged
			if mode == "unprotected" {
				eligible = core.EligibleAll(prog)
			}
			eng, err := campaign.New(prog, eligible, sim.Config{Input: a.Input()},
				campaign.Config{Workers: opt.workers, Seed: opt.seed})
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", a.Name(), mode, err)
			}
			eng.Score = apps.Scorer(a)
			fmt.Fprintf(stderr, "[%s/%s] golden pass: %d instructions, %d checkpoints, %.1f%% eligible\n",
				a.Name(), mode, eng.Clean.Instret, eng.Checkpoints(), 100*eng.EligibleFraction())
			var points []campaign.PointResult
			for _, n := range opt.errors {
				start := time.Now()
				prog := termprog.New(stderr)
				p := eng.RunPoint(ctx, campaign.Point{
					Errors:    n,
					HiBit:     31,
					MaxTrials: opt.trials,
					MinTrials: opt.minTrials,
					StopWidth: opt.ciWidth,
				}, func(trial int, tr campaign.Trial) {
					prog.Printf("[%s/%s] errors=%d trial %d/%d", a.Name(), mode, n, trial+1, opt.trials)
				})
				prog.Clear()
				note := ""
				if p.EarlyStopped {
					note = " (early stop)"
				}
				if p.Cancelled {
					note = " (cancelled)"
				}
				fmt.Fprintf(stderr, "[%s/%s] errors=%d trials=%d fail=%.1f%% [%.1f, %.1f] accept=%.1f%% in %.2fs%s\n",
					a.Name(), mode, n, p.Trials, p.FailPct, p.FailLoPct, p.FailHiPct, p.AcceptPct,
					time.Since(start).Seconds(), note)
				points = append(points, p)
				if p.Cancelled {
					break
				}
			}
			reports = append(reports, eng.NewReport(a.Name(), mode, points))
		}
	}
	return reports, nil
}

func writeText(w io.Writer, reports []*campaign.Report) error {
	for _, r := range reports {
		fmt.Fprintf(w, "%s (%s): %d clean instructions, %.1f%% of the dynamic stream eligible\n\n",
			r.Benchmark, r.Mode, r.CleanInstructions, 100*r.EligibleFraction)
		rows := make([][]string, len(r.Points))
		for i, p := range r.Points {
			mean := "-"
			if p.MeanValue == p.MeanValue { // not NaN
				mean = fmt.Sprintf("%.1f", p.MeanValue)
			}
			stopped := ""
			if p.EarlyStopped {
				stopped = "early"
			}
			rows[i] = []string{
				strconv.Itoa(p.Errors),
				strconv.Itoa(p.Trials),
				fmt.Sprintf("%.1f%%", p.FailPct),
				fmt.Sprintf("[%.1f, %.1f]", p.FailLoPct, p.FailHiPct),
				fmt.Sprintf("%.1f%%", p.AcceptPct),
				mean,
				stopped,
			}
		}
		if _, err := io.WriteString(w, textplot.Table(
			[]string{"Errors", "Trials", "Fail", "Fail 95% CI", "Accept", "Mean fidelity", ""}, rows)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func parseApps(s string) ([]apps.App, error) {
	if s == "" {
		return nil, usageError("missing -app (try -app all)")
	}
	sel, err := all.Parse(s)
	if err != nil {
		return nil, usageError(err.Error())
	}
	return sel, nil
}

func parseModes(s string) ([]string, error) {
	switch s {
	case "protected", "unprotected":
		return []string{s}, nil
	case "both":
		return []string{"protected", "unprotected"}, nil
	}
	return nil, usageError(fmt.Sprintf("unknown -mode %q (have protected, unprotected, both)", s))
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("negative error count %d", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
