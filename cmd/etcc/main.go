// Command etcc compiles a MiniC source file to the toolchain's MIPS-like
// assembly.
//
// Usage:
//
//	etcc [-o out.s] prog.mc
//	etcc -verify [-policy control+addr] prog.mc
//
// With -o omitted, the assembly is written to stdout. With -verify, etcc
// instead compiles the program, hardens it under -policy with both
// transforms, and statically verifies the result against the protection
// contract (see internal/analysis): exit 0 and a summary on PASS, exit 1
// and the escape sites on FAIL. Diagnostics go to stderr; the exit code
// is 2 for usage errors and 1 for any failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"etap/internal/analysis"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/minic"
	"etap/internal/version"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	verifyFlag := flag.Bool("verify", false, "harden the program and statically verify the protection contract")
	policy := flag.String("policy", "control+addr", "analysis policy for -verify: control, control+addr, conservative")
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *showVersion {
		version.Fprint(os.Stdout, "etcc")
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: etcc [-o out.s] prog.mc | etcc -verify [-policy p] prog.mc")
		os.Exit(2)
	}
	if *verifyFlag {
		ok, err := runVerify(flag.Arg(0), *policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "etcc:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	if err := run(flag.Arg(0), *out); err != nil {
		fmt.Fprintln(os.Stderr, "etcc:", err)
		os.Exit(1)
	}
}

// runVerify compiles, hardens and statically verifies one source file.
func runVerify(srcFile, policyStr string) (bool, error) {
	pol, ok := core.ParsePolicy(policyStr)
	if !ok {
		return false, fmt.Errorf("unknown -policy %q (have control, control+addr, conservative)", policyStr)
	}
	src, err := os.ReadFile(srcFile)
	if err != nil {
		return false, err
	}
	prog, err := minic.Build(string(src))
	if err != nil {
		return false, err
	}
	rep, err := core.Analyze(prog, pol)
	if err != nil {
		return false, err
	}
	res, err := harden.Harden(rep, harden.DefaultOptions())
	if err != nil {
		return false, err
	}
	v, err := analysis.Verify(res)
	if err != nil {
		return false, err
	}
	if !v.OK() {
		fmt.Printf("FAIL %s (%s): %d contract violations\n", srcFile, pol, len(v.Violations))
		for _, viol := range v.Violations {
			fmt.Printf("  %s\n", viol)
		}
		return false, nil
	}
	fmt.Printf("PASS %s (%s): %d signature blocks (%d checked), %d dup checks, %d protected sites\n",
		srcFile, pol, v.SigBlocks, v.SigChecked, v.DupChecks, v.DupSites)
	return true, nil
}

func run(srcFile, outFile string) error {
	src, err := os.ReadFile(srcFile)
	if err != nil {
		return err
	}
	asm, err := minic.Compile(string(src))
	if err != nil {
		return err
	}
	if outFile == "" {
		_, err = fmt.Print(asm)
		return err
	}
	return os.WriteFile(outFile, []byte(asm), 0o644)
}
