// Command etcc compiles a MiniC source file to the toolchain's MIPS-like
// assembly.
//
// Usage:
//
//	etcc [-o out.s] prog.mc
//
// With -o omitted, the assembly is written to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"etap/internal/minic"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: etcc [-o out.s] prog.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	asm, err := minic.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(asm)
		return
	}
	if err := os.WriteFile(*out, []byte(asm), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
