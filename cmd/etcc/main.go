// Command etcc compiles a MiniC source file to the toolchain's MIPS-like
// assembly.
//
// Usage:
//
//	etcc [-o out.s] prog.mc
//
// With -o omitted, the assembly is written to stdout. Diagnostics go to
// stderr; the exit code is 2 for usage errors and 1 for any failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"etap/internal/minic"
	"etap/internal/version"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *showVersion {
		version.Fprint(os.Stdout, "etcc")
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: etcc [-o out.s] prog.mc")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *out); err != nil {
		fmt.Fprintln(os.Stderr, "etcc:", err)
		os.Exit(1)
	}
}

func run(srcFile, outFile string) error {
	src, err := os.ReadFile(srcFile)
	if err != nil {
		return err
	}
	asm, err := minic.Compile(string(src))
	if err != nil {
		return err
	}
	if outFile == "" {
		_, err = fmt.Print(asm)
		return err
	}
	return os.WriteFile(outFile, []byte(asm), 0o644)
}
