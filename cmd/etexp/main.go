// Command etexp regenerates the paper's tables and figures.
//
// Usage:
//
//	etexp [-exp all|table1|table2|table3|figure1..figure6|ablation]
//	      [-trials N] [-out file]
//
// Results render as text tables and ASCII charts. With -out, output is
// also written to the named file (this is how the data blocks in
// EXPERIMENTS.md are produced). Progress and diagnostics go to stderr;
// the exit code is non-zero on any failure — a partial -out file is never
// left behind silently.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"etap"
)

func main() {
	which := flag.String("exp", "all", "experiment id or 'all'")
	trials := flag.Int("trials", 0, "trials per measurement point (0 = default 40)")
	outFile := flag.String("out", "", "also write results to this file")
	flag.Parse()
	if err := run(*which, *trials, *outFile); err != nil {
		fmt.Fprintln(os.Stderr, "etexp:", err)
		os.Exit(1)
	}
}

func run(which string, trials int, outFile string) error {
	ids := etap.ExperimentIDs()
	if which != "all" {
		ids = strings.Split(which, ",")
	}

	var b strings.Builder
	for _, id := range ids {
		start := time.Now()
		text, err := etap.RunExperiment(strings.TrimSpace(id), trials)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s\n", text)
		fmt.Fprintf(&b, "[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
		fmt.Print(text + "\n")
		fmt.Fprintf(os.Stderr, "[%s completed in %.1fs]\n", id, time.Since(start).Seconds())
	}
	if outFile != "" {
		if err := os.WriteFile(outFile, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
