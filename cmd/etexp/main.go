// Command etexp regenerates the paper's tables and figures through the
// etap/v2 experiment registry.
//
// Usage:
//
//	etexp [-exp all|table1|table2|table3|figure1..figure6|ablation|...]
//	      [-trials N] [-seed S] [-workers N]
//	      [-policy control|control+addr|conservative]
//	      [-format text|json|csv] [-out file]
//
// With -format text (the default) each report renders as the classic
// text table or ASCII chart; json emits one array of structured reports
// (named columns, typed cells with confidence bounds, figure series);
// csv emits one block per report. Live per-trial progress goes to
// stderr, and SIGINT/SIGTERM cancels the run cleanly between trials —
// the partial -out file is never left behind silently (the artifact is
// written only after every requested experiment finished). The exit
// code is non-zero on any failure, including cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"etap"
	"etap/internal/termprog"
	"etap/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "etexp:", err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

type usageError string

func (e usageError) Error() string { return string(e) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("etexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	trials := fs.Int("trials", 0, "trials per measurement point (0 = default 40)")
	seed := fs.Int64("seed", 0, "injection-schedule seed (0 = default 1)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; never changes results)")
	policy := fs.String("policy", "", "analysis policy: control, control+addr, conservative (default control+addr)")
	format := fs.String("format", "text", "output format: text, json or csv")
	outFile := fs.String("out", "", "also write results to this file")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return usageError(err.Error())
	}
	if *showVersion {
		version.Fprint(stdout, "etexp")
		return nil
	}

	switch *format {
	case "text", "json", "csv":
	default:
		return usageError(fmt.Sprintf("unknown -format %q (have text, json, csv)", *format))
	}

	var opts []etap.Option
	if *trials > 0 {
		opts = append(opts, etap.WithTrials(*trials))
	}
	if *seed != 0 {
		opts = append(opts, etap.WithSeed(*seed))
	}
	if *workers > 0 {
		opts = append(opts, etap.WithWorkers(*workers))
	}
	if *policy != "" {
		p, ok := etap.ParsePolicy(*policy)
		if !ok {
			return usageError(fmt.Sprintf("unknown -policy %q (have control, control+addr, conservative)", *policy))
		}
		opts = append(opts, etap.WithPolicy(p))
	}

	var selected []etap.Experiment
	if *which == "all" {
		selected = etap.Experiments()
	} else {
		for _, id := range strings.Split(*which, ",") {
			e, ok := etap.ExperimentByID(strings.TrimSpace(id))
			if !ok {
				return usageError(fmt.Sprintf("unknown experiment %q (have %s)",
					strings.TrimSpace(id), strings.Join(etap.ExperimentIDs(), ", ")))
			}
			selected = append(selected, e)
		}
	}

	var reports []*etap.Report
	for _, e := range selected {
		start := time.Now()
		prog := termprog.New(stderr)
		trials := 0
		r, err := e.Run(ctx, append(opts, etap.WithProgress(func(etap.ProgressEvent) {
			// A point restarts trial indices at 0; the running total
			// across all of the experiment's points is the useful live
			// signal.
			trials++
			prog.Printf("[%s] %d trials", e.ID, trials)
		}))...)
		prog.Clear()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		reports = append(reports, r)
		if *format == "text" {
			fmt.Fprint(stdout, r.RenderText()+"\n")
		}
		fmt.Fprintf(stderr, "[%s completed in %.1fs]\n", e.ID, time.Since(start).Seconds())
	}

	switch *format {
	case "json":
		if err := etap.WriteReportsJSON(stdout, reports); err != nil {
			return err
		}
	case "csv":
		if err := etap.WriteReportsCSV(stdout, reports); err != nil {
			return err
		}
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		switch *format {
		case "json":
			err = etap.WriteReportsJSON(f, reports)
		case "csv":
			err = etap.WriteReportsCSV(f, reports)
		default:
			err = writeText(f, reports)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeText renders the text artifact: every report followed by a blank
// line. Unlike pre-v2 etexp -out, the per-report "[id completed in Xs]"
// timing lines are intentionally omitted — they made otherwise-identical
// artifacts diff on every regeneration; timings now go to stderr only.
func writeText(w io.Writer, reports []*etap.Report) error {
	for _, r := range reports {
		if _, err := io.WriteString(w, r.RenderText()+"\n\n"); err != nil {
			return err
		}
	}
	return nil
}
