// Command etharden applies the real software protection transforms of
// internal/harden to the bundled benchmarks and reports, per application
// and analysis policy, the realized detection coverage and the
// instruction-count overhead the idealized model of the paper's §4
// hides.
//
// Usage:
//
//	etharden [-app susan[,gsm,...]|all] [-policy control|control+addr|conservative|all]
//	         [-transforms dup+cfs|dup|cfs] [-errors 1] [-trials 200]
//	         [-workers N] [-seed S] [-format text|csv] [-out file]
//
// For every (application, policy) pair the tool hardens the program,
// verifies the hardened zero-fault run is bit-identical to the baseline
// (a rewriter miscompile aborts the run), and then injects -errors
// single-bit faults per trial into the primary copies of the protected
// instructions — exactly the faults the idealized model assumes are
// harmless. Detection coverage is the fraction of trials stopped by a
// trapdet check, with a Wilson 95% confidence interval, and the
// detection-latency p50/p95 (injection to trapdet, in retired
// instructions) bounds the recovery window; crashes, timeouts and silent
// corruptions are escapes. Results go to stdout (or -out), live
// per-trial progress to stderr; SIGINT/SIGTERM cancels between trials
// and the rows finished so far are still exported before the tool exits
// non-zero. The exit code is non-zero on any failure.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/minic"
	"etap/internal/sim"
	"etap/internal/termprog"
	"etap/internal/textplot"
	"etap/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "etharden:", err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

type usageError string

func (e usageError) Error() string { return string(e) }

// row is one (application, policy) measurement.
type row struct {
	app        string
	policy     core.Policy
	opts       harden.Options
	sites      int
	staticOvh  float64
	dynamicOvh float64
	point      campaign.PointResult
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("etharden", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appFlag := fs.String("app", "all", "benchmark names, comma-separated, or 'all'")
	policyFlag := fs.String("policy", "all", "analysis policy: control, control+addr, conservative or all")
	transforms := fs.String("transforms", "dup+cfs", "protection transforms: dup+cfs, dup or cfs")
	errorsN := fs.Int("errors", 1, "bit flips per trial")
	trials := fs.Int("trials", 200, "trial budget per (app, policy) point")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS; never changes results)")
	seed := fs.Int64("seed", 1, "campaign seed")
	format := fs.String("format", "text", "output format: text or csv")
	outFile := fs.String("out", "", "write results to this file instead of stdout")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return usageError(err.Error())
	}
	if *showVersion {
		version.Fprint(stdout, "etharden")
		return nil
	}

	sel, err := all.Parse(*appFlag)
	if err != nil {
		return usageError(err.Error())
	}
	policies, err := parsePolicies(*policyFlag)
	if err != nil {
		return err
	}
	opts, ok := harden.ParseOptions(*transforms)
	if !ok {
		return usageError(fmt.Sprintf("unknown -transforms %q (have dup+cfs, dup, cfs)", *transforms))
	}
	if *format != "text" && *format != "csv" {
		return usageError(fmt.Sprintf("unknown -format %q (have text, csv)", *format))
	}
	if *trials <= 0 {
		return usageError("-trials must be positive")
	}
	if *errorsN <= 0 {
		return usageError("-errors must be positive")
	}

	out := stdout
	if *outFile != "" {
		f, cerr := os.Create(*outFile)
		if cerr != nil {
			return cerr
		}
		defer f.Close()
		out = f
	}

	var rows []row
	for _, a := range sel {
		if ctx.Err() != nil {
			break
		}
		prog, err := minic.Build(a.Source())
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name(), err)
		}
		base := sim.Run(prog, sim.Config{Input: a.Input()})
		if base.Outcome != sim.OK {
			return fmt.Errorf("%s: baseline run %s", a.Name(), base.Outcome)
		}
		for _, pol := range policies {
			if ctx.Err() != nil {
				break
			}
			rep, err := core.Analyze(prog, pol)
			if err != nil {
				return fmt.Errorf("%s (%s): %w", a.Name(), pol, err)
			}
			res, err := harden.Harden(rep, opts)
			if err != nil {
				return fmt.Errorf("%s (%s): %w", a.Name(), pol, err)
			}

			eng, err := campaign.New(res.Prog, res.PrimaryProtected, sim.Config{Input: a.Input()},
				campaign.Config{Workers: *workers, Seed: *seed})
			if err != nil {
				return fmt.Errorf("%s (%s): %w", a.Name(), pol, err)
			}
			eng.DetectClass = func(pc int) string { return res.CheckKindAt(pc).String() }

			// Differential gate: the hardened program must be a faithful
			// compile of the original before its coverage means anything.
			// The engine's golden pass is bit-identical to a plain run, so
			// it doubles as the hardened zero-fault reference.
			hard := eng.Clean
			if hard.ExitCode != base.ExitCode || !bytes.Equal(hard.Output, base.Output) {
				return fmt.Errorf("%s (%s): hardened zero-fault run diverged from baseline", a.Name(), pol)
			}
			sites := 0
			for _, on := range res.PrimaryProtected {
				if on {
					sites++
				}
			}
			fmt.Fprintf(stderr, "[%s/%s] verified bit-identical; %d protected sites (%d duplicated, %d checks), overhead %.2fx static %.2fx dynamic\n",
				a.Name(), pol, sites, res.DupSites, res.Checks,
				res.StaticOverhead(), float64(hard.Instret)/float64(base.Instret))

			start := time.Now()
			prog := termprog.New(stderr)
			pt := eng.RunPoint(ctx, campaign.Point{
				Errors:    *errorsN,
				HiBit:     31,
				MaxTrials: *trials,
			}, func(trial int, tr campaign.Trial) {
				prog.Printf("[%s/%s] trial %d/%d", a.Name(), pol, trial+1, *trials)
			})
			prog.Clear()
			note := ""
			if pt.Cancelled {
				note = " (cancelled)"
			}
			fmt.Fprintf(stderr, "[%s/%s] %d trials: %.1f%% detected [%.1f, %.1f] latency p50=%d p95=%d in %.2fs%s\n",
				a.Name(), pol, pt.Trials, pt.DetectPct, pt.DetectLoPct, pt.DetectHiPct,
				pt.DetectLatencyP50, pt.DetectLatencyP95,
				time.Since(start).Seconds(), note)

			rows = append(rows, row{
				app:        a.Name(),
				policy:     pol,
				opts:       opts,
				sites:      sites,
				staticOvh:  res.StaticOverhead(),
				dynamicOvh: float64(hard.Instret) / float64(base.Instret),
				point:      pt,
			})
		}
	}

	var werr error
	if *format == "csv" {
		werr = writeCSV(out, rows)
	} else {
		werr = writeText(out, rows, opts, *errorsN)
	}
	if werr != nil {
		return werr
	}
	return ctx.Err()
}

func writeText(w io.Writer, rows []row, opts harden.Options, errors int) error {
	fmt.Fprintf(w, "Realized protection (%s transforms), %d error(s) per trial into protected primaries.\n", opts, errors)
	fmt.Fprintf(w, "The idealized model assumes 100%% coverage and 1.00x overhead for these faults.\n\n")
	header := []string{"App", "Policy", "Sites", "Static", "Dynamic", "Coverage", "95% CI", "Lat p50", "Lat p95", "Crash", "Timeout", "SDC", "Masked"}
	cells := make([][]string, len(rows))
	for i, r := range rows {
		p := r.point
		sdc := p.Completed - p.Masked
		cells[i] = []string{
			r.app,
			r.policy.String(),
			strconv.Itoa(r.sites),
			fmt.Sprintf("%.2fx", r.staticOvh),
			fmt.Sprintf("%.2fx", r.dynamicOvh),
			fmt.Sprintf("%.1f%%", p.DetectPct),
			fmt.Sprintf("[%.1f, %.1f]", p.DetectLoPct, p.DetectHiPct),
			strconv.FormatUint(p.DetectLatencyP50, 10),
			strconv.FormatUint(p.DetectLatencyP95, 10),
			strconv.Itoa(p.Crashes),
			strconv.Itoa(p.Timeouts),
			strconv.Itoa(sdc),
			strconv.Itoa(p.Masked),
		}
	}
	if _, err := io.WriteString(w, textplot.Table(header, cells)); err != nil {
		return err
	}
	return nil
}

func writeCSV(w io.Writer, rows []row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "policy", "transforms", "sites", "static_overhead", "dynamic_overhead",
		"trials", "detected", "crashes", "timeouts", "sdc", "masked",
		"detect_pct", "detect_lo_pct", "detect_hi_pct",
		"detect_latency_p50", "detect_latency_p95",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		p := r.point
		if err := cw.Write([]string{
			r.app, r.policy.String(), r.opts.String(), strconv.Itoa(r.sites),
			strconv.FormatFloat(r.staticOvh, 'f', 4, 64),
			strconv.FormatFloat(r.dynamicOvh, 'f', 4, 64),
			strconv.Itoa(p.Trials), strconv.Itoa(p.Detected),
			strconv.Itoa(p.Crashes), strconv.Itoa(p.Timeouts),
			strconv.Itoa(p.Completed - p.Masked), strconv.Itoa(p.Masked),
			strconv.FormatFloat(p.DetectPct, 'f', 2, 64),
			strconv.FormatFloat(p.DetectLoPct, 'f', 2, 64),
			strconv.FormatFloat(p.DetectHiPct, 'f', 2, 64),
			strconv.FormatUint(p.DetectLatencyP50, 10),
			strconv.FormatUint(p.DetectLatencyP95, 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func parsePolicies(s string) ([]core.Policy, error) {
	if s == "all" {
		return []core.Policy{core.PolicyControl, core.PolicyControlAddr, core.PolicyConservative}, nil
	}
	p, ok := core.ParsePolicy(s)
	if !ok {
		return nil, usageError(fmt.Sprintf("unknown -policy %q (have control, control+addr, conservative, all)", s))
	}
	return []core.Policy{p}, nil
}
