// Command etserve runs the HTTP characterization service: the etap
// campaign surface behind a JSON API. Clients POST source + policy +
// campaign options to /api/v1/jobs, poll job status, stream per-trial
// progress over SSE (disconnecting a ?cancel=1 stream cancels the
// campaign between trials), and fetch the final report as JSON, CSV or
// text. All jobs share one Lab, so identical (source, policy, harden)
// keys compile exactly once. See docs/SERVE.md for the wire surface and
// a curl walkthrough.
//
// Usage:
//
//	etserve [-addr :8372] [-workers N] [-queue N]
//	        [-state jobs.json] [-lab-capacity N] [-quiet]
//	        [-otlp http://collector:4318] [-trace-sample 0.1]
//
// SIGINT/SIGTERM shuts down gracefully: running campaigns stop between
// trials, their partial aggregates persist as cancelled, and -state
// gets a final snapshot so a restarted server still answers for
// finished jobs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"etap"
	"etap/internal/version"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "etserve:", err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

type usageError string

func (e usageError) Error() string { return string(e) }

func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("etserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8372", "listen address")
	workers := fs.Int("workers", 0, "concurrent campaign workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "queued-job bound before submissions get 503 (0 = 64)")
	state := fs.String("state", "", "persist the job table to this JSON file (restart-safe)")
	labCapacity := fs.Int("lab-capacity", etap.DefaultLabCapacity, "compile-cache entries before LRU eviction (<= 0 = unbounded)")
	maxJobs := fs.Int("max-jobs", 0, "job-table bound; oldest finished jobs evict past it (0 = 1024, < 0 = unbounded)")
	pprofFlag := fs.Bool("pprof", false, "mount /debug/pprof/ (exposes internals; keep off on public deployments)")
	otlp := fs.String("otlp", "", "push sampled traces to this OTLP/HTTP JSON collector (e.g. http://collector:4318)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of traces exported over OTLP (0 = all, < 0 = none); GET /traces always works")
	jsonLog := fs.Bool("log-json", false, "emit structured JSON logs (slog) instead of plain lines")
	quiet := fs.Bool("quiet", false, "suppress per-job log lines")
	showVersion := fs.Bool("version", false, "print build identity and exit")
	if err := fs.Parse(args); err != nil {
		return usageError(err.Error())
	}
	if *showVersion {
		version.Fprint(os.Stdout, "etserve")
		return nil
	}
	if fs.NArg() > 0 {
		return usageError(fmt.Sprintf("unexpected arguments: %v", fs.Args()))
	}

	logger := log.New(stderr, "etserve: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	opts := []etap.ServeOption{
		etap.WithServeLab(etap.NewLabCapacity(*labCapacity)),
		etap.WithServeWorkers(*workers),
		etap.WithServeQueueDepth(*queue),
		etap.WithServeMaxJobs(*maxJobs),
	}
	switch {
	case *jsonLog && !*quiet:
		opts = append(opts, etap.WithServeLogger(slog.New(slog.NewJSONHandler(stderr, nil))))
	default:
		opts = append(opts, etap.WithServeLog(logf))
	}
	if *pprofFlag {
		opts = append(opts, etap.WithServePprof())
	}
	if *state != "" {
		opts = append(opts, etap.WithServeStateFile(*state))
	}
	if *otlp != "" {
		opts = append(opts, etap.WithServeOTLP(*otlp))
	}
	if *traceSample != 0 {
		opts = append(opts, etap.WithServeTraceSample(*traceSample))
	}
	logf("listening on %s (state: %s)", *addr, orNone(*state))
	return etap.Serve(ctx, *addr, opts...)
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
