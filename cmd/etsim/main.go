// Command etsim runs a program on the functional simulator.
//
// Usage:
//
//	etsim [-in input.bin] [-max N] [-errors N -seed S [-unprotected]] prog.{mc,s}
//
// MiniC sources (.mc) are compiled first; anything else is treated as
// assembly. The program's output bytes go to stdout; run statistics and
// diagnostics go to stderr. With -errors, single-bit faults are injected
// into the analysis-tagged instructions (or all arithmetic with
// -unprotected).
//
// Exit codes: 0 for a run that completed normally, 1 for a simulated
// crash/hang or any tool error (compile failure, unreadable input, failed
// campaign setup), 2 for usage errors. Errors never exit 0, so campaign
// scripts can trust the status.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"etap/internal/asm"
	"etap/internal/core"
	"etap/internal/fault"
	"etap/internal/isa"
	"etap/internal/minic"
	"etap/internal/sim"
	"etap/internal/version"
)

func main() {
	inFile := flag.String("in", "", "input stream file")
	maxInstr := flag.Uint64("max", 0, "instruction budget (0 = default)")
	errors := flag.Int("errors", 0, "single-bit errors to inject")
	seed := flag.Int64("seed", 1, "injection seed")
	unprotected := flag.Bool("unprotected", false, "inject into all arithmetic instructions")
	policy := flag.String("policy", "control+addr", "analysis policy: control, control+addr, conservative")
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *showVersion {
		version.Fprint(os.Stdout, "etsim")
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: etsim [flags] prog.{mc,s}")
		os.Exit(2)
	}
	pol, ok := core.ParsePolicy(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "etsim: unknown -policy %q (have control, control+addr, conservative)\n", *policy)
		os.Exit(2)
	}

	res, err := run(flag.Arg(0), *inFile, *maxInstr, *errors, *seed, *unprotected, pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "etsim:", err)
		os.Exit(1)
	}
	os.Stdout.Write(res.Output)
	fmt.Fprintf(os.Stderr, "outcome: %s", res.Outcome)
	if res.Outcome == sim.Crash {
		fmt.Fprintf(os.Stderr, " (%s)", res.Trap)
	}
	fmt.Fprintf(os.Stderr, "; exit=%d; instructions=%d; injected=%d\n",
		res.ExitCode, res.Instret, res.Injected)
	if res.Outcome != sim.OK {
		os.Exit(1)
	}
}

func run(progFile, inFile string, maxInstr uint64, errors int, seed int64, unprotected bool, pol core.Policy) (sim.Result, error) {
	srcBytes, err := os.ReadFile(progFile)
	if err != nil {
		return sim.Result{}, err
	}
	var prog *isa.Program
	if strings.HasSuffix(progFile, ".mc") {
		prog, err = minic.Build(string(srcBytes))
	} else {
		prog, err = asm.Assemble(string(srcBytes))
	}
	if err != nil {
		return sim.Result{}, err
	}

	var input []byte
	if inFile != "" {
		input, err = os.ReadFile(inFile)
		if err != nil {
			return sim.Result{}, err
		}
	}

	if errors <= 0 {
		return sim.Run(prog, sim.Config{Input: input, MaxInstr: maxInstr}), nil
	}
	var eligible []bool
	if unprotected {
		eligible = core.EligibleAll(prog)
	} else {
		rep, aerr := core.Analyze(prog, pol)
		if aerr != nil {
			return sim.Result{}, aerr
		}
		eligible = rep.Tagged
	}
	camp, cerr := fault.NewCampaign(prog, eligible, sim.Config{Input: input, MaxInstr: maxInstr})
	if cerr != nil {
		return sim.Result{}, cerr
	}
	return camp.Run(errors, seed), nil
}
