// Command etsim runs a program on the functional simulator.
//
// Usage:
//
//	etsim [-in input.bin] [-max N] [-errors N -seed S [-unprotected]] prog.{mc,s}
//
// MiniC sources (.mc) are compiled first; anything else is treated as
// assembly. The program's output bytes go to stdout; run statistics go to
// stderr. With -errors, single-bit faults are injected into the
// analysis-tagged instructions (or all arithmetic with -unprotected).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"etap/internal/asm"
	"etap/internal/core"
	"etap/internal/fault"
	"etap/internal/isa"
	"etap/internal/minic"
	"etap/internal/sim"
)

func main() {
	inFile := flag.String("in", "", "input stream file")
	maxInstr := flag.Uint64("max", 0, "instruction budget (0 = default)")
	errors := flag.Int("errors", 0, "single-bit errors to inject")
	seed := flag.Int64("seed", 1, "injection seed")
	unprotected := flag.Bool("unprotected", false, "inject into all arithmetic instructions")
	policy := flag.String("policy", "control+addr", "analysis policy: control, control+addr, conservative")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: etsim [flags] prog.{mc,s}")
		os.Exit(2)
	}

	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	var prog *isa.Program
	if strings.HasSuffix(flag.Arg(0), ".mc") {
		prog, err = minic.Build(string(srcBytes))
	} else {
		prog, err = asm.Assemble(string(srcBytes))
	}
	if err != nil {
		fail(err)
	}

	var input []byte
	if *inFile != "" {
		input, err = os.ReadFile(*inFile)
		if err != nil {
			fail(err)
		}
	}

	var res sim.Result
	if *errors > 0 {
		var eligible []bool
		if *unprotected {
			eligible = core.EligibleAll(prog)
		} else {
			rep, aerr := core.Analyze(prog, parsePolicy(*policy))
			if aerr != nil {
				fail(aerr)
			}
			eligible = rep.Tagged
		}
		camp, cerr := fault.NewCampaign(prog, eligible, sim.Config{Input: input, MaxInstr: *maxInstr})
		if cerr != nil {
			fail(cerr)
		}
		res = camp.Run(*errors, *seed)
	} else {
		res = sim.Run(prog, sim.Config{Input: input, MaxInstr: *maxInstr})
	}

	os.Stdout.Write(res.Output)
	fmt.Fprintf(os.Stderr, "outcome: %s", res.Outcome)
	if res.Outcome == sim.Crash {
		fmt.Fprintf(os.Stderr, " (%s)", res.Trap)
	}
	fmt.Fprintf(os.Stderr, "; exit=%d; instructions=%d; injected=%d\n",
		res.ExitCode, res.Instret, res.Injected)
	if res.Outcome != sim.OK {
		os.Exit(1)
	}
}

func parsePolicy(s string) core.Policy {
	switch s {
	case "control":
		return core.PolicyControl
	case "conservative":
		return core.PolicyConservative
	default:
		return core.PolicyControlAddr
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
