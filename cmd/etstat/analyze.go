package main

import (
	"fmt"

	"etap/internal/analysis"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/minic"
)

// runAnalyze prints the static-analysis report for one program: the
// injection-pruning classification, CFG and dominator shape, the §5.1
// escape profile, and hardening verification for every shipped
// transform.
func runAnalyze(source, policyStr string) error {
	pol, ok := core.ParsePolicy(policyStr)
	if !ok {
		return fmt.Errorf("unknown policy %q", policyStr)
	}
	prog, err := minic.Build(source)
	if err != nil {
		return err
	}

	cls, err := analysis.Classify(prog)
	if err != nil {
		return err
	}
	li := cls.Live
	fmt.Printf("== injection pruning (policy-independent) ==\n")
	fmt.Printf("liveness:             %s\n", preciseStr(li))
	benignAll := 0
	for _, b := range cls.Benign {
		if b {
			benignAll++
		}
	}
	fmt.Printf("text sites benign:    %d/%d\n", benignAll, len(prog.Text))
	fmt.Printf("injectable sites:     %d\n", cls.Injectable)
	fmt.Printf("injectable benign:    %d (%.1f%%)\n", cls.BenignInjectable, 100*cls.BenignFraction())

	fmt.Printf("\n== control-flow graph ==\n")
	blocks, edges, maxDepth := 0, 0, 0
	for _, cfg := range li.CFGs {
		blocks += len(cfg.Blocks)
		dom := analysis.Dominators(cfg)
		for b := range cfg.Blocks {
			edges += len(cfg.Blocks[b].Succs)
			if d := dom.Depth(b); d > maxDepth {
				maxDepth = d
			}
		}
	}
	fmt.Printf("functions:            %d\n", len(prog.Funcs))
	fmt.Printf("basic blocks:         %d\n", blocks)
	fmt.Printf("cfg edges:            %d\n", edges)
	fmt.Printf("max dominator depth:  %d\n", maxDepth)

	rep, err := core.Analyze(prog, pol)
	if err != nil {
		return err
	}
	sites, err := analysis.Escapes(rep)
	if err != nil {
		return err
	}
	fmt.Printf("\n== memory escapes (%s) ==\n", pol)
	fmt.Printf("tagged defs stored untracked: %d sites\n", len(sites))
	for _, row := range analysis.EscapesByFunc(prog, sites) {
		fmt.Printf("  %-16s defs=%-3d stores=%-3d pairs=%d\n", row.Func, row.Defs, row.Stores, row.Escapes)
	}

	fmt.Printf("\n== hardening verification (%s) ==\n", pol)
	for _, opts := range []harden.Options{harden.DefaultOptions(), {DupCompare: true}, {Signatures: true}} {
		res, err := harden.Harden(rep, opts)
		if err != nil {
			return err
		}
		v, err := analysis.Verify(res)
		if err != nil {
			return err
		}
		status := "PASS"
		if !v.OK() {
			status = "FAIL"
		}
		fmt.Printf("%-28s %s  (sig blocks %d/%d checked, dup checks %d, dup sites %d)\n",
			optsName(opts), status, v.SigChecked, v.SigBlocks, v.DupChecks, v.DupSites)
		for _, viol := range v.Violations {
			fmt.Printf("  escape: %s\n", viol)
		}
	}
	return nil
}

func preciseStr(li *analysis.LiveInfo) string {
	if li.Precise {
		return "precise (interprocedural)"
	}
	return "imprecise: " + li.Imprecision
}

func optsName(o harden.Options) string {
	switch {
	case o.DupCompare && o.Signatures:
		return "dup-compare + signatures:"
	case o.DupCompare:
		return "dup-compare:"
	case o.Signatures:
		return "signatures:"
	}
	return "(no transform):"
}
