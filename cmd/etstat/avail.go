package main

import (
	"context"
	"fmt"

	"etap"
)

// availConfig carries the -avail campaign knobs.
type availConfig struct {
	errors   int
	trials   int
	recovery int
	seed     int64
}

// runAvail hardens the program, runs the detection campaign once with
// detection terminal and once with checkpoint-restore recovery, and
// prints the availability table in the tolerated/detected/untolerated
// style: tolerated work completed acceptably (or recovered
// bit-identically), detected trials failed fast, untolerated trials
// crashed, hung or produced unacceptable output.
func runAvail(source string, input []byte, score func(golden, corrupted []byte) (float64, bool), pol etap.Policy, cfg availConfig) error {
	sys, err := etap.Build(source, pol)
	if err != nil {
		return err
	}
	hs, err := sys.Harden(etap.HardenOptions{DupCompare: true, Signatures: true})
	if err != nil {
		return err
	}
	camp, err := hs.NewDetectionCampaign(input)
	if err != nil {
		return err
	}
	if score != nil {
		camp.SetScore(score)
	}

	ctx := context.Background()
	opts := []etap.Option{etap.WithTrials(cfg.trials), etap.WithSeed(cfg.seed)}
	off := camp.RunPoint(ctx, cfg.errors, opts...)
	on := camp.RunPoint(ctx, cfg.errors, append(opts, etap.WithRecovery(cfg.recovery))...)

	fmt.Printf("== availability (policy %s, errors=%d, trials=%d, seed=%d) ==\n",
		pol, cfg.errors, off.Trials, cfg.seed)
	fmt.Printf("%-22s %-22s %s\n", "", "no recovery", fmt.Sprintf("recovery x%d", cfg.recovery))
	bin := func(name string, a, b int) {
		fmt.Printf("%-22s %-22s %s\n", name, cell(a, off.Trials), cell(b, on.Trials))
	}
	bin("tolerated", off.Tolerated, on.Tolerated)
	bin("detected", off.Detected, on.Detected)
	bin("untolerated", off.Untolerated, on.Untolerated)
	fmt.Printf("%-22s %-22s %s\n", "availability",
		ci(off.AvailabilityPct, off.AvailabilityLowPct, off.AvailabilityHighPct),
		ci(on.AvailabilityPct, on.AvailabilityLowPct, on.AvailabilityHighPct))
	fmt.Printf("%-22s %-22d %d\n", "recovered", off.Recovered, on.Recovered)
	fmt.Printf("%-22s %-22d %d\n", "degraded", off.Degraded, on.Degraded)
	fmt.Printf("%-22s %-22d %d\n", "replay rounds", off.RecoveryAttempts, on.RecoveryAttempts)
	fmt.Printf("%-22s %-22s %s\n", "replay p50/p95",
		fmt.Sprintf("%d/%d", off.RecoverLatencyP50, off.RecoverLatencyP95),
		fmt.Sprintf("%d/%d", on.RecoverLatencyP50, on.RecoverLatencyP95))
	return nil
}

func cell(n, trials int) string {
	if trials == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%% (%d)", 100*float64(n)/float64(trials), n)
}

func ci(pct, lo, hi float64) string {
	return fmt.Sprintf("%.1f%% [%.1f, %.1f]", pct, lo, hi)
}
