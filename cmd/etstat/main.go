// Command etstat prints control-data analysis statistics for a benchmark
// application or a MiniC source file, optionally with the annotated
// disassembly (tag markers and CVar sets).
//
// Usage:
//
//	etstat -app susan [-policy control] [-v]
//	etstat -app susan -analyze
//	etstat prog.mc [-v]
//
// With -analyze, etstat prints the static-analysis report instead: the
// injection-pruning classification (liveness precision, benign site
// counts), CFG and dominator shape, the memory escape profile, and
// PASS/FAIL hardening verification for every shipped transform.
//
// With -avail, etstat hardens the program, runs the detection campaign
// with and without checkpoint-restore recovery, and prints the
// availability table: tolerated (acceptable completion or bit-identical
// recovery), detected (fail-fast stop left unrecovered) and untolerated
// (crash, hang or unacceptable output), with Wilson 95% intervals on the
// availability rate. Tune it with -errors, -trials, -recovery and -seed.
//
// Statistics go to stdout; diagnostics go to stderr. The exit code is 2
// for usage errors (including unknown benchmarks and policies) and 1 for
// any analysis failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"etap"
	"etap/internal/version"
)

func main() {
	appName := flag.String("app", "", "benchmark name (susan, mpeg, mcf, blowfish, gsm, art, adpcm)")
	policy := flag.String("policy", "control+addr", "analysis policy: control, control+addr, conservative")
	verbose := flag.Bool("v", false, "print the annotated disassembly")
	analyze := flag.Bool("analyze", false, "print the static-analysis report: pruning classification, CFG shape, escape profile, hardening verification")
	avail := flag.Bool("avail", false, "harden the program and print the tolerated/detected/untolerated availability table, with and without checkpoint-restore recovery")
	errors := flag.Int("errors", 1, "errors per trial for -avail")
	trials := flag.Int("trials", 100, "trials for -avail")
	recovery := flag.Int("recovery", 3, "max restore-replay rounds per detected trial for -avail")
	seed := flag.Int64("seed", 1, "campaign seed for -avail")
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *showVersion {
		version.Fprint(os.Stdout, "etstat")
		return
	}

	pol, ok := etap.ParsePolicy(*policy)
	if !ok {
		fmt.Fprintf(os.Stderr, "etstat: unknown -policy %q (have control, control+addr, conservative)\n", *policy)
		os.Exit(2)
	}

	var source string
	var input []byte
	var score func(golden, corrupted []byte) (float64, bool)
	switch {
	case *appName != "":
		b, ok := etap.BenchmarkByName(*appName)
		if !ok {
			fmt.Fprintf(os.Stderr, "etstat: unknown benchmark %q\n", *appName)
			os.Exit(2)
		}
		source = b.Source()
		input = b.Input()
		score = b.Score
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "etstat:", err)
			os.Exit(1)
		}
		source = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: etstat -app name | etstat prog.mc")
		os.Exit(2)
	}

	if *analyze {
		if err := runAnalyze(source, *policy); err != nil {
			fmt.Fprintln(os.Stderr, "etstat:", err)
			os.Exit(1)
		}
		return
	}
	if *avail {
		cfg := availConfig{errors: *errors, trials: *trials, recovery: *recovery, seed: *seed}
		if err := runAvail(source, input, score, pol, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "etstat:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(source, pol, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "etstat:", err)
		os.Exit(1)
	}
}

func run(source string, pol etap.Policy, verbose bool) error {
	sys, err := etap.Build(source, pol)
	if err != nil {
		return err
	}
	st := sys.Stats()
	fmt.Printf("policy:               %s\n", pol)
	fmt.Printf("text instructions:    %d\n", st.TextInstructions)
	fmt.Printf("tagged (low-rel):     %d (%.1f%%)\n", st.TaggedStatic,
		100*float64(st.TaggedStatic)/float64(st.TextInstructions))
	fmt.Printf("control slice:        %d (%.1f%%)\n", st.ControlSliceStatic,
		100*float64(st.ControlSliceStatic)/float64(st.TextInstructions))
	fmt.Printf("tolerant functions:   %d\n", st.TolerantFunctions)
	if verbose {
		fmt.Println(sys.Listing())
	}
	return nil
}
