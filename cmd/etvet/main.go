// Command etvet runs the repo's custom vet passes (see
// internal/analysis/lint): hotpathcheck, which keeps //etap:hotpath
// functions free of allocations, metrics and clock reads, and
// determcheck, which bans unordered map iteration in the packages whose
// output ordering is part of the reproducibility contract. CI runs it as
// a required step; any finding fails the build.
//
// Usage:
//
//	etvet [import paths...]
//
// Without arguments it checks the default scope: the simulator and
// predecode hot paths, the campaign engine and the experiment harness.
// Findings print as path:line:col: [analyzer] message; the exit code is
// 1 when there are findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"etap/internal/analysis/lint"
	"etap/internal/version"
)

// defaultPaths is the required-by-CI scope.
var defaultPaths = []string{
	"etap/internal/sim",
	"etap/internal/campaign",
	"etap/internal/exp",
}

// determScope is where map-iteration order can leak into campaign
// aggregation or rendered reports.
var determScope = map[string]bool{
	"etap/internal/campaign": true,
	"etap/internal/exp":      true,
}

func main() {
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *showVersion {
		version.Fprint(os.Stdout, "etvet")
		return
	}
	paths := flag.Args()
	if len(paths) == 0 {
		paths = defaultPaths
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "etvet:", err)
		os.Exit(2)
	}
	l := lint.NewLoader(root, "etap")
	var diags []lint.Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "etvet:", err)
			os.Exit(2)
		}
		analyzers := []*lint.Analyzer{lint.HotPath}
		if determScope[path] {
			analyzers = append(analyzers, lint.Determ)
		}
		diags = append(diags, lint.RunAnalyzers([]*lint.Package{pkg}, analyzers)...)
	}
	for _, d := range diags {
		fmt.Println(lint.Format(l.Fset(), d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "etvet: %d findings\n", len(diags))
		os.Exit(1)
	}
	fmt.Printf("etvet: %d packages clean\n", len(paths))
}

// findModuleRoot walks up from the working directory to the directory
// holding go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
