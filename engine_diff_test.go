package etap

// The top-level differential harness for the predecoded execution engine:
// every benchmark application — original and hardened — must produce
// bit-identical sim.Results on the fast engine and on the reference
// interpreter, clean and under injection plans spread across the eligible
// stream. This is the acceptance gate that lets the engine replace the
// interpreter in every campaign path (docs/PERF.md).

import (
	"reflect"
	"testing"

	"etap/internal/apps/all"
	"etap/internal/core"
	"etap/internal/sim"
)

// diffApp runs prog under cfg on both engines and requires equal Results.
func diffApp(t *testing.T, name string, s *System, cfg sim.Config) sim.Result {
	t.Helper()
	got := sim.Run(s.prog, cfg)
	want := sim.ReferenceRun(s.prog, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: engine diverges from reference:\nengine:    %+v\nreference: %+v", name, got, want)
	}
	return got
}

// injectionOrdinals picks first, interior and last positions of an
// eligible stream of length n.
func injectionOrdinals(n uint64) []uint64 {
	ats := []uint64{1, n / 3, n / 2, n}
	out := ats[:0]
	for _, at := range ats {
		if at >= 1 && at <= n {
			out = append(out, at)
		}
	}
	return out
}

func TestEngineMatchesReferenceOnApps(t *testing.T) {
	appsList := all.Apps()
	if testing.Short() {
		appsList = appsList[:2]
	}
	for _, app := range appsList {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			t.Parallel()
			sys, err := Build(app.Source(), PolicyControlAddr)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			input := app.Input()

			clean := diffApp(t, "clean", sys, sim.Config{Input: input})
			if clean.Outcome != sim.OK {
				t.Fatalf("clean run: %s (trap %s)", clean.Outcome, clean.Trap)
			}
			budget := clean.Instret * 2

			// Injections under the protected mask (tagged low-reliability
			// instructions) and the unprotected everything-mask.
			masks := map[string][]bool{
				"tagged": sys.report.Tagged,
				"all":    core.EligibleAll(sys.prog),
			}
			for maskName, mask := range masks {
				probe := diffApp(t, maskName+"/probe", sys,
					sim.Config{Input: input, Plan: &sim.FaultPlan{Eligible: mask}})
				if probe.EligibleExec == 0 {
					t.Fatalf("mask %s: no eligible executions", maskName)
				}
				for _, at := range injectionOrdinals(probe.EligibleExec) {
					for _, bit := range []uint8{0, 31} {
						plan := &sim.FaultPlan{
							Eligible:   mask,
							Injections: []sim.Injection{{At: at, Bit: bit}},
						}
						diffApp(t, maskName+"/injected", sys,
							sim.Config{Input: input, Plan: plan, MaxInstr: budget})
					}
				}
			}
		})
	}
}

func TestEngineMatchesReferenceOnHardenedApps(t *testing.T) {
	if testing.Short() {
		t.Skip("hardened differential sweep skipped in -short")
	}
	for _, app := range all.Apps() {
		app := app
		t.Run(app.Name(), func(t *testing.T) {
			t.Parallel()
			sys, err := Build(app.Source(), PolicyControlAddr)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			h, err := sys.Harden(DefaultHardenOptions())
			if err != nil {
				t.Fatalf("harden: %v", err)
			}
			input := app.Input()
			clean := diffApp(t, "clean", h.System, sim.Config{Input: input})
			if clean.Outcome != sim.OK {
				t.Fatalf("hardened clean run: %s (trap %s)", clean.Outcome, clean.Trap)
			}

			// Unprotected mask over the hardened program: flips can land in
			// the duplicated slice, so some trials end Detected — both
			// engines must agree on the detection point too.
			mask := core.EligibleAll(h.prog)
			probe := diffApp(t, "probe", h.System,
				sim.Config{Input: input, Plan: &sim.FaultPlan{Eligible: mask}})
			detected := 0
			for _, at := range injectionOrdinals(probe.EligibleExec) {
				for _, bit := range []uint8{0, 31} {
					plan := &sim.FaultPlan{
						Eligible:   mask,
						Injections: []sim.Injection{{At: at, Bit: bit}},
					}
					res := diffApp(t, "injected", h.System,
						sim.Config{Input: input, Plan: plan, MaxInstr: clean.Instret * 2})
					if res.Outcome == sim.Detected {
						detected++
					}
				}
			}
			t.Logf("%s hardened: %d/%d injected trials detected", app.Name(), detected,
				len(injectionOrdinals(probe.EligibleExec))*2)
		})
	}
}
