// Package etap reproduces "Characterization of Error-Tolerant Applications
// when Protecting Control Data" (Thaker et al., IISWC 2006): a toolchain
// that compiles C-like programs to a MIPS-like ISA, statically identifies
// the instructions that cannot influence control flow (the paper's CVar
// def-use analysis), and characterizes application fidelity under
// single-bit fault injection with and without control-data protection.
//
// The public API covers the full pipeline:
//
//	sys, _ := etap.Build(source, etap.PolicyControlAddr)
//	fmt.Println(sys.Stats())            // how much is low-reliability
//	camp, _ := sys.NewCampaign(input, true)
//	res := camp.Run(10, 42)             // 10 bit flips, seed 42
//
// The seven benchmark applications of the paper's Table 1 are available
// through Benchmarks, and the paper's tables and figures can be regenerated
// with RunExperiment. Everything underneath lives in internal/ packages:
// the ISA and assembler, the functional simulator with SimpleScalar-style
// lazy memory and checkpoint/restore, the MiniC compiler, the control-data
// analysis, the fault injector, the campaign engine, the fidelity
// measures, and the experiment harness.
//
// Campaigns run on a checkpointed, sharded engine: one golden pass records
// copy-on-write machine checkpoints, each faulty trial resumes from the
// checkpoint nearest its injection point, and multi-trial measurement
// points (RunPoint, Sweep) fan out over a worker pool with per-shard
// deterministic RNG streams and online Wilson-interval aggregation. See
// docs/CAMPAIGN.md for the architecture, and cmd/etcamp for the CLI that
// exports campaign artifacts as JSON or CSV.
package etap

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"etap/internal/apps"
	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/isa"
	"etap/internal/minic"
	"etap/internal/sim"
)

// Policy selects the protection policy of the static analysis.
type Policy int

const (
	// PolicyControl is the paper's Section 3 analysis: only control
	// instructions (branches, indirect jumps, syscalls, faultable
	// divisions) seed the CVar set, and definitions propagate backward
	// through registers. Memory is untracked.
	PolicyControl Policy = iota
	// PolicyControlAddr additionally protects every memory-address
	// computation. It is the default for reproducing the paper's
	// failure-rate results (see DESIGN.md).
	PolicyControlAddr
	// PolicyConservative additionally protects every stored value, closing
	// the memory-aliasing hole at the cost of tagging almost nothing.
	PolicyConservative
)

func (p Policy) String() string { return toCore(p).String() }

// ParsePolicy resolves a policy name as printed by Policy.String
// ("control", "control+addr", "conservative").
func ParsePolicy(s string) (Policy, bool) {
	switch cp, ok := core.ParsePolicy(s); {
	case !ok:
		return 0, false
	case cp == core.PolicyControlAddr:
		return PolicyControlAddr, true
	case cp == core.PolicyConservative:
		return PolicyConservative, true
	default:
		return PolicyControl, true
	}
}

func toCore(p Policy) core.Policy {
	switch p {
	case PolicyControlAddr:
		return core.PolicyControlAddr
	case PolicyConservative:
		return core.PolicyConservative
	default:
		return core.PolicyControl
	}
}

// Outcome classifies a simulated run.
type Outcome int

const (
	// Completed means the program exited normally.
	Completed Outcome = iota
	// Crashed means a trap fired (bad jump, misaligned access, division by
	// zero, bad syscall, resource exhaustion) — the paper's "crashing"
	// catastrophic failure.
	Crashed
	// TimedOut means the instruction budget was exhausted — the paper's
	// "infinite execution time" catastrophic failure.
	TimedOut
	// Detected means a hardened program's redundancy check caught a
	// mismatch and stopped the run (see System.Harden). Unhardened
	// programs never report it.
	Detected
	// Recovered means a detected trial was rolled back to a checkpoint,
	// replayed, and completed with output bit-identical to the fault-free
	// run. Only campaigns configured with WithRecovery report it.
	Recovered
)

func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Crashed:
		return "crashed"
	case TimedOut:
		return "timed out"
	case Detected:
		return "detected"
	case Recovered:
		return "recovered"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// RunResult reports one simulated execution.
type RunResult struct {
	Outcome      Outcome
	Output       []byte
	ExitCode     int32
	Instructions uint64
	// InjectedErrors is how many scheduled bit flips actually fired before
	// the run ended.
	InjectedErrors int
	// TrapDescription explains a crash ("bad program counter at pc=...").
	TrapDescription string
}

func fromSim(r sim.Result) RunResult {
	out := RunResult{
		Outcome:        outcomeFromSim(r.Outcome),
		Output:         r.Output,
		ExitCode:       r.ExitCode,
		Instructions:   r.Instret,
		InjectedErrors: r.Injected,
	}
	if r.Outcome == sim.Crash {
		out.TrapDescription = r.Trap.String()
	}
	return out
}

// AnalysisStats summarizes the control-data analysis of a program.
type AnalysisStats struct {
	// TextInstructions is the static instruction count.
	TextInstructions int
	// TaggedStatic counts instructions tagged low-reliability (legal
	// injection sites under protection).
	TaggedStatic int
	// ControlSliceStatic counts instructions in the control slice.
	ControlSliceStatic int
	// TolerantFunctions counts functions the programmer marked tolerant.
	TolerantFunctions int
}

// System is a compiled and analyzed program.
type System struct {
	prog   *isa.Program
	report *core.Report
}

// Build compiles MiniC source and runs the control-data analysis under the
// given policy. The source marks error-tolerant functions with the
// `tolerant` qualifier; only instructions inside those functions can be
// tagged low-reliability.
func Build(source string, policy Policy) (*System, error) {
	prog, err := minic.Build(source)
	if err != nil {
		return nil, err
	}
	rep, err := core.Analyze(prog, toCore(policy))
	if err != nil {
		return nil, err
	}
	return &System{prog: prog, report: rep}, nil
}

// Stats returns the static analysis summary.
func (s *System) Stats() AnalysisStats {
	st := s.report.Stats()
	return AnalysisStats{
		TextInstructions:   st.TextInstrs,
		TaggedStatic:       st.TaggedStatic,
		ControlSliceStatic: st.ControlStatic,
		TolerantFunctions:  st.TolerantFuncs,
	}
}

// Listing renders the annotated disassembly: per instruction, a marker
// ('T' = tagged low-reliability, 'C' = control slice) and the CVar set at
// the point below it, in the bracket notation of the paper's worked
// example.
func (s *System) Listing() string {
	var b strings.Builder
	labels := make(map[int][]string)
	for name, idx := range s.prog.Symbols {
		labels[idx] = append(labels[idx], name)
	}
	for _, names := range labels {
		sort.Strings(names)
	}
	fi := 0
	for idx, in := range s.prog.Text {
		for fi < len(s.prog.Funcs) && s.prog.Funcs[fi].Start == idx {
			f := s.prog.Funcs[fi]
			attr := ""
			if f.Tolerant {
				attr = " tolerant"
			}
			fmt.Fprintf(&b, "\n%s:%s\n", f.Name, attr)
			fi++
		}
		mark := ' '
		switch {
		case s.report.Tagged[idx]:
			mark = 'T'
		case s.report.ControlSlice[idx]:
			mark = 'C'
		}
		fmt.Fprintf(&b, "%6d  %c  %-32s %s\n", idx, mark, isa.Disasm(in), s.report.CVarIn[idx])
	}
	return b.String()
}

// Run executes the program once without fault injection.
func (s *System) Run(input []byte) RunResult {
	return fromSim(sim.Run(s.prog, sim.Config{Input: input}))
}

// RunLimited is Run with an instruction budget: a run retiring more
// than maxInstr instructions ends as TimedOut. It is how services
// validate untrusted programs without betting a worker on termination.
// A maxInstr of zero selects the simulator's default budget (2^32),
// the same bound Run applies.
func (s *System) RunLimited(input []byte, maxInstr uint64) RunResult {
	return fromSim(sim.Run(s.prog, sim.Config{Input: input, MaxInstr: maxInstr}))
}

// HardenOptions selects the software protection transforms System.Harden
// applies (see internal/harden and docs/HARDEN.md). The zero value is
// invalid; DefaultHardenOptions enables both transforms.
type HardenOptions struct {
	// DupCompare duplicates every control-slice computation and compares
	// registers against their shadow copies at control uses (branch
	// inputs, indirect-jump targets, divisors, syscall arguments, and —
	// policy-dependent — address bases and stored values).
	DupCompare bool
	// Signatures inserts control-flow signature checks at basic-block
	// entries, catching control transfers that leave the legal CFG edges.
	Signatures bool
}

// DefaultHardenOptions enables both transforms.
func DefaultHardenOptions() HardenOptions {
	return HardenOptions{DupCompare: true, Signatures: true}
}

// HardenedSystem is a System whose program carries real protection
// transforms instead of the idealized §4 protection model. It behaves
// like any System — Run, NewCampaign, Stats and Listing all operate on
// the hardened program (re-analyzed under the original policy) — and
// additionally exposes the detection-coverage campaign and the overhead
// relative to the original program.
type HardenedSystem struct {
	*System
	base *System
	res  *harden.Result

	// overheadMu guards overheads, the per-input cache of fault-free
	// instruction counts DynamicOverhead compares. Both runs are
	// deterministic for a given input, so they are simulated at most once
	// per input per receiver.
	overheadMu sync.Mutex
	overheads  map[string]overheadRuns
}

// overheadRuns caches the fault-free dynamic instruction counts of the
// original and hardened programs for one input.
type overheadRuns struct {
	base, hardened uint64
}

// Harden rewrites the system's program with the selected transforms. A
// mismatch detected at runtime ends the run with the Detected outcome;
// campaigns on the hardened system count such trials separately from
// completions and catastrophic failures.
func (s *System) Harden(opts HardenOptions) (*HardenedSystem, error) {
	res, err := harden.Harden(s.report, harden.Options(opts))
	if err != nil {
		return nil, err
	}
	rep, err := core.Analyze(res.Prog, s.report.Policy)
	if err != nil {
		return nil, fmt.Errorf("etap: hardened program failed re-analysis: %w", err)
	}
	return &HardenedSystem{
		System: &System{prog: res.Prog, report: rep},
		base:   s,
		res:    res,
	}, nil
}

// StaticOverhead is the hardened/original static instruction-count
// ratio.
func (h *HardenedSystem) StaticOverhead() float64 { return h.res.StaticOverhead() }

// DynamicOverhead returns the hardened/original dynamic
// instruction-count ratio for fault-free runs on the input. The two
// simulations run once per distinct input and are cached on the
// receiver, so repeated calls (overhead tables, concurrent Lab callers)
// cost a map lookup.
func (h *HardenedSystem) DynamicOverhead(input []byte) float64 {
	key := string(input)
	h.overheadMu.Lock()
	runs, ok := h.overheads[key]
	h.overheadMu.Unlock()
	if !ok {
		// Simulate outside the lock: inputs are typically distinct only
		// across callers, and a duplicated race costs two identical
		// deterministic runs, not wrong numbers.
		runs = overheadRuns{
			base:     h.base.Run(input).Instructions,
			hardened: h.Run(input).Instructions,
		}
		h.overheadMu.Lock()
		if h.overheads == nil {
			h.overheads = make(map[string]overheadRuns)
		}
		h.overheads[key] = runs
		h.overheadMu.Unlock()
	}
	if runs.base == 0 {
		return 0
	}
	return float64(runs.hardened) / float64(runs.base)
}

// ProtectedSites is the number of duplicated control-slice instructions.
func (h *HardenedSystem) ProtectedSites() int { return h.res.DupSites }

// MapToOriginal translates a hardened text index to the original
// instruction it was copied from, or -1 for inserted protection code.
func (h *HardenedSystem) MapToOriginal(idx int) int {
	if idx < 0 || idx >= len(h.res.OrigOf) {
		return -1
	}
	return h.res.OrigOf[idx]
}

// NewDetectionCampaign prepares injections against the primary copies of
// the duplicated (protected) instructions: exactly the faults the
// idealized model assumes are harmless. PointStats.DetectPct over such a
// campaign is the transforms' realized detection coverage; crashes,
// timeouts and unacceptable completions are escapes the idealized model
// pretends cannot happen.
func (h *HardenedSystem) NewDetectionCampaign(input []byte) (*Campaign, error) {
	c, err := campaign.New(h.prog, h.res.PrimaryProtected, sim.Config{Input: input}, campaign.Config{})
	if err != nil {
		return nil, err
	}
	// Attribute each detection to the transform whose trapdet fired, so
	// latency histograms and trial events split by dup vs cfs.
	res := h.res
	c.DetectClass = func(pc int) string { return res.CheckKindAt(pc).String() }
	return &Campaign{c: c}, nil
}

// Campaign is a reusable fault-injection setup for one input, backed by
// the checkpointed campaign engine: construction runs one golden pass and
// records copy-on-write checkpoints, and every trial resumes from the
// checkpoint nearest its first injection point.
type Campaign struct {
	c *campaign.Engine
}

// NewCampaign prepares injections against this system. With protected
// true, errors strike only analysis-tagged instructions (the rest is
// assumed protected by redundancy, as in the paper's §4); with protected
// false, every result-writing arithmetic instruction is exposed — the
// unchanged application on unreliable hardware.
func (s *System) NewCampaign(input []byte, protected bool) (*Campaign, error) {
	eligible := s.report.Tagged
	if !protected {
		eligible = core.EligibleAll(s.prog)
	}
	c, err := campaign.New(s.prog, eligible, sim.Config{Input: input}, campaign.Config{})
	if err != nil {
		return nil, err
	}
	return &Campaign{c: c}, nil
}

// CleanOutput is the fault-free output (the golden reference for fidelity
// comparison).
func (c *Campaign) CleanOutput() []byte { return c.c.Clean.Output }

// CleanInstructions is the fault-free dynamic instruction count.
func (c *Campaign) CleanInstructions() uint64 { return c.c.Clean.Instret }

// Checkpoints is the number of machine checkpoints the golden pass
// captured; trials whose injection point lands after a checkpoint skip the
// simulation up to it.
func (c *Campaign) Checkpoints() int { return c.c.Checkpoints() }

// LowReliabilityFraction is the fraction of the dynamic instruction stream
// eligible for injection (Table 3's measure when protection is on).
func (c *Campaign) LowReliabilityFraction() float64 { return c.c.EligibleFraction() }

// SetScore installs the fidelity measure RunPoint and Sweep grade
// completed trials with. Without one, a trial counts as acceptable only
// when its output is bit-identical to the fault-free output.
func (c *Campaign) SetScore(score func(golden, corrupted []byte) (value float64, acceptable bool)) {
	c.c.Score = score
}

// Run injects n single-bit errors, uniformly distributed over the dynamic
// eligible instructions, deterministically in seed.
func (c *Campaign) Run(n int, seed int64) RunResult {
	return fromSim(c.c.Run(n, seed))
}

// PointStats aggregates one measurement point.
type PointStats struct {
	Errors   int
	Trials   int
	Crashes  int
	Timeouts int
	// Detected counts trials a hardened program stopped via a redundancy
	// check; always zero for unhardened systems.
	Detected  int
	Completed int
	// Masked counts completed trials whose output was bit-identical to
	// the fault-free output.
	Masked int
	// Accepted counts completed trials that passed the fidelity
	// threshold.
	Accepted int
	// MeanValue is the mean fidelity value over completed trials (NaN
	// without a scorer or completions).
	MeanValue float64
	FailPct   float64
	AcceptPct float64
	// FailLowPct/FailHighPct bound the catastrophic-failure rate with a
	// Wilson 95% confidence interval.
	FailLowPct  float64
	FailHighPct float64
	// DetectPct is the percentage of trials stopped by redundancy checks,
	// bounded by the Wilson 95% interval [DetectLowPct, DetectHighPct].
	// Over a detection campaign this is the realized detection coverage.
	DetectPct     float64
	DetectLowPct  float64
	DetectHighPct float64
	// DetectLatencyP50/P95 are nearest-rank percentiles, over Detected
	// trials, of the distance (in retired instructions) between the first
	// injected fault and the redundancy check that caught it; 0 when
	// nothing was detected. The window bounds how long corrupted state
	// was live — i.e. how far a checkpoint-rollback recovery must rewind.
	DetectLatencyP50 uint64
	DetectLatencyP95 uint64
	// Recovered counts trials that trapped, rolled back to a checkpoint
	// and completed with output bit-identical to the fault-free run;
	// Degraded counts completions that survived one or more replays with
	// output still differing from it. Both are zero without WithRecovery.
	// RecoveryAttempts totals restore-replay rounds across all trials, and
	// RecoverLatencyP50/P95 are nearest-rank percentiles, over Recovered
	// trials, of the instructions their replays retired.
	Recovered         int
	Degraded          int
	RecoveryAttempts  int
	RecoverPct        float64
	RecoverLowPct     float64
	RecoverHighPct    float64
	RecoverLatencyP50 uint64
	RecoverLatencyP95 uint64
	// Availability accounting in the tolerated/detected/untolerated style:
	// Tolerated = Accepted + Recovered, Untolerated is everything except
	// Tolerated and Detected, and Tolerated + Detected + Untolerated ==
	// Trials. AvailabilityPct = 100 * Tolerated / Trials with a Wilson 95%
	// interval [AvailabilityLowPct, AvailabilityHighPct].
	Tolerated           int
	Untolerated         int
	AvailabilityPct     float64
	AvailabilityLowPct  float64
	AvailabilityHighPct float64
	EarlyStopped        bool
	// Cancelled marks a partial aggregate from a point whose context was
	// cancelled mid-run. Cancelled numbers are not reproducible; an
	// uncancelled re-run of the same point is.
	Cancelled bool
}

func fromPoint(r campaign.PointResult) PointStats {
	return PointStats{
		Errors:           r.Errors,
		Trials:           r.Trials,
		Crashes:          r.Crashes,
		Timeouts:         r.Timeouts,
		Detected:         r.Detected,
		Completed:        r.Completed,
		Masked:           r.Masked,
		Accepted:         r.Accepted,
		MeanValue:        r.MeanValue,
		FailPct:          r.FailPct,
		AcceptPct:        r.AcceptPct,
		FailLowPct:       r.FailLoPct,
		FailHighPct:      r.FailHiPct,
		DetectPct:        r.DetectPct,
		DetectLowPct:     r.DetectLoPct,
		DetectHighPct:    r.DetectHiPct,
		DetectLatencyP50: r.DetectLatencyP50,
		DetectLatencyP95: r.DetectLatencyP95,

		Recovered:           r.Recovered,
		Degraded:            r.Degraded,
		RecoveryAttempts:    r.RecoveryAttempts,
		RecoverPct:          r.RecoverPct,
		RecoverLowPct:       r.RecoverLoPct,
		RecoverHighPct:      r.RecoverHiPct,
		RecoverLatencyP50:   r.RecoverLatencyP50,
		RecoverLatencyP95:   r.RecoverLatencyP95,
		Tolerated:           r.Tolerated,
		Untolerated:         r.Untolerated,
		AvailabilityPct:     r.AvailabilityPct,
		AvailabilityLowPct:  r.AvailabilityLoPct,
		AvailabilityHighPct: r.AvailabilityHiPct,

		EarlyStopped: r.EarlyStopped,
		Cancelled:    r.Cancelled,
	}
}

// RunPoint executes up to WithTrials independent trials with the given
// error count, sharded across the worker pool, and aggregates them
// online. Results depend only on the options, never on scheduling or
// worker count. Cancelling ctx stops the point between trials and
// returns the partial aggregate with Cancelled set.
func (c *Campaign) RunPoint(ctx context.Context, errors int, opts ...Option) PointStats {
	cfg := applyOptions(opts)
	return fromPoint(c.c.RunPoint(ctx, cfg.point(errors), cfg.observer()))
}

// Sweep runs RunPoint for each error count, stopping early (with the
// points so far) when ctx is cancelled.
func (c *Campaign) Sweep(ctx context.Context, errorCounts []int, opts ...Option) []PointStats {
	cfg := applyOptions(opts)
	out := make([]PointStats, 0, len(errorCounts))
	for _, n := range errorCounts {
		if ctx.Err() != nil {
			return out
		}
		out = append(out, fromPoint(c.c.RunPoint(ctx, cfg.point(n), cfg.observer())))
	}
	return out
}

// Benchmark is one of the paper's Table 1 applications.
type Benchmark struct {
	app apps.App
}

// Benchmarks returns the seven applications in Table 1 order.
func Benchmarks() []*Benchmark {
	as := all.Apps()
	out := make([]*Benchmark, len(as))
	for i, a := range as {
		out[i] = &Benchmark{app: a}
	}
	return out
}

// BenchmarkByName fetches one application ("susan", "mpeg", "mcf",
// "blowfish", "gsm", "art", "adpcm").
func BenchmarkByName(name string) (*Benchmark, bool) {
	a, ok := all.ByName(name)
	if !ok {
		return nil, false
	}
	return &Benchmark{app: a}, true
}

// Name is the short identifier.
func (b *Benchmark) Name() string { return b.app.Name() }

// Title describes the application.
func (b *Benchmark) Title() string { return b.app.Title() }

// FidelityName labels the fidelity measure.
func (b *Benchmark) FidelityName() string { return b.app.FidelityName() }

// Source is the application's MiniC program.
func (b *Benchmark) Source() string { return b.app.Source() }

// Input is the deterministic benchmark input.
func (b *Benchmark) Input() []byte { return b.app.Input() }

// Score evaluates a corrupted output against the fault-free output,
// returning the application's fidelity value and whether it passes the
// fidelity threshold.
func (b *Benchmark) Score(golden, corrupted []byte) (value float64, acceptable bool) {
	s := b.app.Score(golden, corrupted)
	return s.Value, s.Acceptable
}

// Build compiles and analyzes the benchmark.
func (b *Benchmark) Build(policy Policy) (*System, error) {
	return Build(b.app.Source(), policy)
}
