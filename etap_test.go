package etap

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

const testSource = `
char data[64];

tolerant void scale(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = p[i] * 2;
    }
}

int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) { data[i] = inb(); }
    scale(data, 64);
    for (i = 0; i < 64; i = i + 1) { outb(data[i]); }
    return 0;
}
`

var bgctx = context.Background()

func testInput() []byte {
	in := make([]byte, 64)
	for i := range in {
		in[i] = byte(i)
	}
	return in
}

func TestBuildAndRun(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(testInput())
	if res.Outcome != Completed {
		t.Fatalf("outcome %s (%s)", res.Outcome, res.TrapDescription)
	}
	if len(res.Output) != 64 || res.Output[10] != 20 {
		t.Fatalf("output wrong: len %d", len(res.Output))
	}
	if res.Instructions == 0 {
		t.Fatalf("no instructions counted")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("int main() { return x; }", PolicyControl); err == nil {
		t.Fatalf("bad program accepted")
	}
	if _, err := Build("", PolicyControl); err == nil {
		t.Fatalf("empty program accepted")
	}
}

func TestStatsAndListing(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.TextInstructions == 0 || st.TolerantFunctions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.TaggedStatic == 0 {
		t.Fatalf("nothing tagged in a tolerant program")
	}
	if st.TaggedStatic+st.ControlSliceStatic > st.TextInstructions {
		t.Fatalf("tag/control sets overlap: %+v", st)
	}
	listing := sys.Listing()
	for _, want := range []string{"scale: tolerant", "main:", "  T  ", "  C  ", "["} {
		if !strings.Contains(listing, want) {
			t.Fatalf("listing missing %q", want)
		}
	}
}

func TestCampaignInjection(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := sys.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.CleanOutput()) != 64 {
		t.Fatalf("clean output length %d", len(camp.CleanOutput()))
	}
	if f := camp.LowReliabilityFraction(); f <= 0 || f >= 1 {
		t.Fatalf("low-rel fraction %f", f)
	}
	res := camp.Run(2, 1)
	if res.Outcome != Completed {
		t.Fatalf("protected 2-error run %s (%s)", res.Outcome, res.TrapDescription)
	}
	if res.InjectedErrors != 2 {
		t.Fatalf("injected %d", res.InjectedErrors)
	}
	// A negative error count degrades to a clean run, not a panic.
	if r := camp.Run(-1, 1); r.Outcome != Completed || r.InjectedErrors != 0 {
		t.Fatalf("negative error count: %s with %d injections", r.Outcome, r.InjectedErrors)
	}

	// Determinism.
	res2 := camp.Run(2, 1)
	if string(res.Output) != string(res2.Output) {
		t.Fatalf("same seed produced different outputs")
	}
	// Different seed (usually) different corruption; at minimum it must
	// not crash the protected pixel math.
	res3 := camp.Run(2, 99)
	if res3.Outcome != Completed {
		t.Fatalf("seed 99 run %s", res3.Outcome)
	}
}

func TestUnprotectedCampaign(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	on, err := sys.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	off, err := sys.NewCampaign(testInput(), false)
	if err != nil {
		t.Fatal(err)
	}
	// The unprotected eligible stream strictly contains the protected one.
	if on.LowReliabilityFraction() >= off.LowReliabilityFraction() {
		t.Fatalf("protected fraction %.3f >= unprotected %.3f",
			on.LowReliabilityFraction(), off.LowReliabilityFraction())
	}
}

func TestCampaignRunPoint(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := sys.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	camp.SetScore(func(golden, corrupted []byte) (float64, bool) {
		match := 0
		for i := range golden {
			if i < len(corrupted) && golden[i] == corrupted[i] {
				match++
			}
		}
		v := 100 * float64(match) / float64(len(golden))
		return v, v >= 90
	})

	clean := camp.RunPoint(bgctx, 0, WithTrials(8), WithSeed(3))
	if clean.Trials != 8 || clean.Masked != 8 || clean.AcceptPct != 100 || clean.FailPct != 0 {
		t.Fatalf("zero-error point: %+v", clean)
	}

	p := camp.RunPoint(bgctx, 2, WithTrials(24), WithSeed(3), WithWorkers(1))
	if p.Trials != 24 || p.Completed+p.Crashes+p.Timeouts != p.Trials {
		t.Fatalf("accounting: %+v", p)
	}
	if p.FailLowPct > p.FailPct || p.FailPct > p.FailHighPct {
		t.Fatalf("Wilson interval [%.2f, %.2f] does not bracket %.2f",
			p.FailLowPct, p.FailHighPct, p.FailPct)
	}
	// Worker count must not change the numbers.
	p2 := camp.RunPoint(bgctx, 2, WithTrials(24), WithSeed(3), WithWorkers(5))
	if p != p2 {
		t.Fatalf("points differ across worker counts:\n%+v\n%+v", p, p2)
	}

	sweep := camp.Sweep(bgctx, []int{0, 2}, WithTrials(8), WithSeed(3))
	if len(sweep) != 2 || sweep[0].Errors != 0 || sweep[1].Errors != 2 {
		t.Fatalf("sweep shape: %+v", sweep)
	}
}

func TestBenchmarksRegistry(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 7 {
		t.Fatalf("%d benchmarks", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name()] = true
		if b.Title() == "" || b.FidelityName() == "" || b.Source() == "" || len(b.Input()) == 0 {
			t.Fatalf("benchmark %s incomplete", b.Name())
		}
	}
	for _, want := range []string{"susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm"} {
		if !names[want] {
			t.Fatalf("missing benchmark %s", want)
		}
	}
	if _, ok := BenchmarkByName("nosuch"); ok {
		t.Fatalf("unknown benchmark resolved")
	}
	b, ok := BenchmarkByName("adpcm")
	if !ok {
		t.Fatalf("adpcm missing")
	}
	if v, acceptable := b.Score([]byte{1, 2}, []byte{1, 2}); v != 100 || !acceptable {
		t.Fatalf("identical score %f/%v", v, acceptable)
	}
}

func TestBenchmarkBuildAndInject(t *testing.T) {
	b, _ := BenchmarkByName("adpcm")
	sys, err := b.Build(PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := sys.NewCampaign(b.Input(), true)
	if err != nil {
		t.Fatal(err)
	}
	// ADPCM's predictor is recursive, so a single early flip can shift the
	// whole decoded stream: fidelity varies hugely by seed. The invariants
	// are that protected runs complete and scores stay in range.
	best := 0.0
	for seed := int64(1); seed <= 6; seed++ {
		res := camp.Run(3, seed)
		if res.Outcome != Completed {
			t.Fatalf("seed %d: run %s (%s)", seed, res.Outcome, res.TrapDescription)
		}
		v, _ := b.Score(camp.CleanOutput(), res.Output)
		if v < 0 || v > 100 {
			t.Fatalf("seed %d: fidelity %f out of range", seed, v)
		}
		if v > best {
			best = v
		}
	}
	if best < 50 {
		t.Fatalf("every seed collapsed fidelity (best %.1f%%); injection is likely broken", best)
	}
}

func TestRunExperimentTable1(t *testing.T) {
	out, err := RunExperiment("table1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "susan") || !strings.Contains(out, "Fidelity") {
		t.Fatalf("table1 output: %s", out)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("table99", 0); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"table1", "table2", "table3", "figure1", "figure2", "figure3", "figure4", "figure5", "figure6", "ablation", "potential", "bits", "masking", "availability"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyControl.String() != "control" ||
		PolicyControlAddr.String() != "control+addr" ||
		PolicyConservative.String() != "conservative" {
		t.Fatalf("policy strings: %s %s %s", PolicyControl, PolicyControlAddr, PolicyConservative)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Completed.String() != "completed" || Crashed.String() != "crashed" || TimedOut.String() != "timed out" ||
		Detected.String() != "detected" {
		t.Fatalf("outcome strings wrong")
	}
}

func TestHardenedSystem(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Harden(HardenOptions{}); err == nil {
		t.Fatalf("Harden accepted empty options")
	}
	h, err := sys.Harden(DefaultHardenOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Zero-fault equivalence through the public API.
	base, hard := sys.Run(testInput()), h.Run(testInput())
	if hard.Outcome != Completed || string(hard.Output) != string(base.Output) || hard.ExitCode != base.ExitCode {
		t.Fatalf("hardened run diverged: %s, %d output bytes", hard.Outcome, len(hard.Output))
	}

	if so := h.StaticOverhead(); so <= 1 {
		t.Fatalf("static overhead %.2f", so)
	}
	if do := h.DynamicOverhead(testInput()); do <= 1 {
		t.Fatalf("dynamic overhead %.2f", do)
	}
	if h.ProtectedSites() == 0 {
		t.Fatalf("no protected sites duplicated")
	}
	if h.MapToOriginal(-1) != -1 || h.MapToOriginal(1<<30) != -1 {
		t.Fatalf("MapToOriginal out-of-range handling")
	}

	// The detection campaign injects into protected primaries only; with
	// real redundancy a healthy share of those faults must be caught.
	camp, err := h.NewDetectionCampaign(testInput())
	if err != nil {
		t.Fatal(err)
	}
	pt := camp.RunPoint(bgctx, 1, WithTrials(48), WithSeed(7))
	if pt.Trials == 0 {
		t.Fatalf("no trials ran")
	}
	if pt.Detected == 0 {
		t.Fatalf("no faults detected over %d trials: %+v", pt.Trials, pt)
	}
	if pt.DetectPct <= 0 || pt.DetectLowPct > pt.DetectPct || pt.DetectHighPct < pt.DetectPct {
		t.Fatalf("detection CI inconsistent: %+v", pt)
	}
	if pt.Detected+pt.Crashes+pt.Timeouts+pt.Completed != pt.Trials {
		t.Fatalf("outcome counts do not partition trials: %+v", pt)
	}

	// The hardened system is a full System: ordinary protected campaigns
	// still work on it.
	pc, err := h.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	if r := pc.Run(1, 3); r.Outcome == Crashed && r.TrapDescription == "" {
		t.Fatalf("crash without trap description")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	es := Experiments()
	if len(es) != len(ExperimentIDs()) {
		t.Fatalf("%d experiments for %d ids", len(es), len(ExperimentIDs()))
	}
	for _, e := range es {
		if e.ID == "" || e.Title == "" {
			t.Fatalf("experiment incompletely registered: %+v", e)
		}
	}
	e, ok := ExperimentByID("table1")
	if !ok {
		t.Fatalf("table1 not registered")
	}
	r, err := e.Run(bgctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "table1" || len(r.Rows) != 7 || len(r.Columns) == 0 {
		t.Fatalf("table1 report: %+v", r)
	}
	if !strings.Contains(r.RenderText(), "susan") {
		t.Fatalf("table1 render missing susan")
	}
	if _, ok := ExperimentByID("nosuch"); ok {
		t.Fatalf("unknown experiment resolved")
	}
}

// TestRunExperimentShimMatchesRegistry: the deprecated string API must
// render exactly what the registry produces.
func TestRunExperimentShimMatchesRegistry(t *testing.T) {
	want, ok := ExperimentByID("table1")
	if !ok {
		t.Fatalf("table1 not registered")
	}
	r, err := want.Run(bgctx)
	if err != nil {
		t.Fatal(err)
	}
	shim, err := RunExperiment("table1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if shim != r.RenderText() {
		t.Fatalf("shim output diverged from registry render")
	}
}

func TestCampaignContextCancellation(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := sys.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := camp.RunPoint(cctx, 2, WithTrials(64), WithSeed(3))
	if !p.Cancelled || p.Trials != 0 {
		t.Fatalf("pre-cancelled point: %+v", p)
	}
	// Sweep under a cancelled context returns no points.
	if pts := camp.Sweep(cctx, []int{1, 2}, WithTrials(8)); len(pts) != 0 {
		t.Fatalf("cancelled sweep ran %d points", len(pts))
	}
	// The campaign is unharmed: a live-context run matches a fresh one.
	a := camp.RunPoint(bgctx, 2, WithTrials(16), WithSeed(3))
	b := camp.RunPoint(bgctx, 2, WithTrials(16), WithSeed(3))
	if math.IsNaN(a.MeanValue) && math.IsNaN(b.MeanValue) {
		a.MeanValue, b.MeanValue = 0, 0
	}
	if a.Cancelled || a != b {
		t.Fatalf("post-cancel runs diverge: %+v vs %+v", a, b)
	}
}

func TestWithProgressStreamsTrials(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := sys.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	p := camp.RunPoint(bgctx, 1, WithTrials(12), WithSeed(5), WithProgress(func(e ProgressEvent) {
		events = append(events, e)
	}))
	if len(events) != p.Trials {
		t.Fatalf("progress saw %d events for %d trials", len(events), p.Trials)
	}
	for i, e := range events {
		if e.Trial != i {
			t.Fatalf("event %d has trial index %d", i, e.Trial)
		}
		if e.Instructions == 0 {
			t.Fatalf("event %d has no instruction count", i)
		}
		if e.Shard < 0 {
			t.Fatalf("event %d has negative shard", i)
		}
	}
}

func TestDetectionLatencySurfaced(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Harden(DefaultHardenOptions())
	if err != nil {
		t.Fatal(err)
	}
	camp, err := h.NewDetectionCampaign(testInput())
	if err != nil {
		t.Fatal(err)
	}
	pt := camp.RunPoint(bgctx, 1, WithTrials(64), WithSeed(7))
	if pt.Detected == 0 {
		t.Fatalf("no detections; latency untestable: %+v", pt)
	}
	if pt.DetectLatencyP50 == 0 || pt.DetectLatencyP95 < pt.DetectLatencyP50 {
		t.Fatalf("implausible detection latency percentiles: %+v", pt)
	}
}

// TestDynamicOverheadCached: repeated calls must not re-simulate — the
// second call with the same input returns the identical cached ratio,
// and concurrent callers race safely.
func TestDynamicOverheadCached(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Harden(DefaultHardenOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := testInput()
	first := h.DynamicOverhead(in)
	if first <= 1 {
		t.Fatalf("dynamic overhead %.2f", first)
	}
	var wg sync.WaitGroup
	results := make([]float64, 8)
	for i := range results {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = h.DynamicOverhead(in)
		}()
	}
	wg.Wait()
	for i, r := range results {
		if r != first {
			t.Fatalf("call %d returned %.4f, first returned %.4f", i, r, first)
		}
	}
}

func TestLabCachesBuilds(t *testing.T) {
	lab := NewLab()
	s1, err := lab.Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := lab.Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("same key built twice")
	}
	s3, err := lab.Build(testSource, PolicyControl)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatalf("different policy shared a cache entry")
	}
	if lab.Len() != 2 {
		t.Fatalf("lab holds %d entries", lab.Len())
	}

	h1, err := lab.Harden(testSource, PolicyControlAddr, DefaultHardenOptions())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := lab.Harden(testSource, PolicyControlAddr, DefaultHardenOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same harden key built twice")
	}

	if _, err := lab.Build("int main() { return x; }", PolicyControl); err == nil {
		t.Fatalf("bad program accepted")
	}
	// Errors are cached too: the same bad source fails again, cheaply.
	if _, err := lab.Build("int main() { return x; }", PolicyControl); err == nil {
		t.Fatalf("bad program accepted on second lookup")
	}
	if _, err := lab.BuildBenchmark("nosuch", PolicyControl); err == nil {
		t.Fatalf("unknown benchmark accepted")
	}
	if _, err := lab.BuildBenchmark("adpcm", PolicyControlAddr); err != nil {
		t.Fatal(err)
	}
}

// TestLabConcurrentSingleBuild: concurrent requests for one key must
// produce one System, exercised under -race.
func TestLabConcurrentSingleBuild(t *testing.T) {
	lab := NewLab()
	var wg sync.WaitGroup
	systems := make([]*System, 8)
	for i := range systems {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := lab.Build(testSource, PolicyControlAddr)
			if err != nil {
				t.Error(err)
				return
			}
			systems[i] = s
		}()
	}
	wg.Wait()
	for i := 1; i < len(systems); i++ {
		if systems[i] != systems[0] {
			t.Fatalf("concurrent builds returned distinct systems")
		}
	}
}
