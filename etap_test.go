package etap

import (
	"strings"
	"testing"
)

const testSource = `
char data[64];

tolerant void scale(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = p[i] * 2;
    }
}

int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) { data[i] = inb(); }
    scale(data, 64);
    for (i = 0; i < 64; i = i + 1) { outb(data[i]); }
    return 0;
}
`

func testInput() []byte {
	in := make([]byte, 64)
	for i := range in {
		in[i] = byte(i)
	}
	return in
}

func TestBuildAndRun(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(testInput())
	if res.Outcome != Completed {
		t.Fatalf("outcome %s (%s)", res.Outcome, res.TrapDescription)
	}
	if len(res.Output) != 64 || res.Output[10] != 20 {
		t.Fatalf("output wrong: len %d", len(res.Output))
	}
	if res.Instructions == 0 {
		t.Fatalf("no instructions counted")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("int main() { return x; }", PolicyControl); err == nil {
		t.Fatalf("bad program accepted")
	}
	if _, err := Build("", PolicyControl); err == nil {
		t.Fatalf("empty program accepted")
	}
}

func TestStatsAndListing(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.TextInstructions == 0 || st.TolerantFunctions != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.TaggedStatic == 0 {
		t.Fatalf("nothing tagged in a tolerant program")
	}
	if st.TaggedStatic+st.ControlSliceStatic > st.TextInstructions {
		t.Fatalf("tag/control sets overlap: %+v", st)
	}
	listing := sys.Listing()
	for _, want := range []string{"scale: tolerant", "main:", "  T  ", "  C  ", "["} {
		if !strings.Contains(listing, want) {
			t.Fatalf("listing missing %q", want)
		}
	}
}

func TestCampaignInjection(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := sys.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.CleanOutput()) != 64 {
		t.Fatalf("clean output length %d", len(camp.CleanOutput()))
	}
	if f := camp.LowReliabilityFraction(); f <= 0 || f >= 1 {
		t.Fatalf("low-rel fraction %f", f)
	}
	res := camp.Run(2, 1)
	if res.Outcome != Completed {
		t.Fatalf("protected 2-error run %s (%s)", res.Outcome, res.TrapDescription)
	}
	if res.InjectedErrors != 2 {
		t.Fatalf("injected %d", res.InjectedErrors)
	}
	// A negative error count degrades to a clean run, not a panic.
	if r := camp.Run(-1, 1); r.Outcome != Completed || r.InjectedErrors != 0 {
		t.Fatalf("negative error count: %s with %d injections", r.Outcome, r.InjectedErrors)
	}

	// Determinism.
	res2 := camp.Run(2, 1)
	if string(res.Output) != string(res2.Output) {
		t.Fatalf("same seed produced different outputs")
	}
	// Different seed (usually) different corruption; at minimum it must
	// not crash the protected pixel math.
	res3 := camp.Run(2, 99)
	if res3.Outcome != Completed {
		t.Fatalf("seed 99 run %s", res3.Outcome)
	}
}

func TestUnprotectedCampaign(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	on, err := sys.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	off, err := sys.NewCampaign(testInput(), false)
	if err != nil {
		t.Fatal(err)
	}
	// The unprotected eligible stream strictly contains the protected one.
	if on.LowReliabilityFraction() >= off.LowReliabilityFraction() {
		t.Fatalf("protected fraction %.3f >= unprotected %.3f",
			on.LowReliabilityFraction(), off.LowReliabilityFraction())
	}
}

func TestCampaignRunPoint(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := sys.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	camp.SetScore(func(golden, corrupted []byte) (float64, bool) {
		match := 0
		for i := range golden {
			if i < len(corrupted) && golden[i] == corrupted[i] {
				match++
			}
		}
		v := 100 * float64(match) / float64(len(golden))
		return v, v >= 90
	})

	clean := camp.RunPoint(0, PointOptions{MaxTrials: 8, Seed: 3})
	if clean.Trials != 8 || clean.Masked != 8 || clean.AcceptPct != 100 || clean.FailPct != 0 {
		t.Fatalf("zero-error point: %+v", clean)
	}

	p := camp.RunPoint(2, PointOptions{MaxTrials: 24, Seed: 3, Workers: 1})
	if p.Trials != 24 || p.Completed+p.Crashes+p.Timeouts != p.Trials {
		t.Fatalf("accounting: %+v", p)
	}
	if p.FailLowPct > p.FailPct || p.FailPct > p.FailHighPct {
		t.Fatalf("Wilson interval [%.2f, %.2f] does not bracket %.2f",
			p.FailLowPct, p.FailHighPct, p.FailPct)
	}
	// Worker count must not change the numbers.
	p2 := camp.RunPoint(2, PointOptions{MaxTrials: 24, Seed: 3, Workers: 5})
	if p != p2 {
		t.Fatalf("points differ across worker counts:\n%+v\n%+v", p, p2)
	}

	sweep := camp.Sweep([]int{0, 2}, PointOptions{MaxTrials: 8, Seed: 3})
	if len(sweep) != 2 || sweep[0].Errors != 0 || sweep[1].Errors != 2 {
		t.Fatalf("sweep shape: %+v", sweep)
	}
}

func TestBenchmarksRegistry(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 7 {
		t.Fatalf("%d benchmarks", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name()] = true
		if b.Title() == "" || b.FidelityName() == "" || b.Source() == "" || len(b.Input()) == 0 {
			t.Fatalf("benchmark %s incomplete", b.Name())
		}
	}
	for _, want := range []string{"susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm"} {
		if !names[want] {
			t.Fatalf("missing benchmark %s", want)
		}
	}
	if _, ok := BenchmarkByName("nosuch"); ok {
		t.Fatalf("unknown benchmark resolved")
	}
	b, ok := BenchmarkByName("adpcm")
	if !ok {
		t.Fatalf("adpcm missing")
	}
	if v, acceptable := b.Score([]byte{1, 2}, []byte{1, 2}); v != 100 || !acceptable {
		t.Fatalf("identical score %f/%v", v, acceptable)
	}
}

func TestBenchmarkBuildAndInject(t *testing.T) {
	b, _ := BenchmarkByName("adpcm")
	sys, err := b.Build(PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := sys.NewCampaign(b.Input(), true)
	if err != nil {
		t.Fatal(err)
	}
	// ADPCM's predictor is recursive, so a single early flip can shift the
	// whole decoded stream: fidelity varies hugely by seed. The invariants
	// are that protected runs complete and scores stay in range.
	best := 0.0
	for seed := int64(1); seed <= 6; seed++ {
		res := camp.Run(3, seed)
		if res.Outcome != Completed {
			t.Fatalf("seed %d: run %s (%s)", seed, res.Outcome, res.TrapDescription)
		}
		v, _ := b.Score(camp.CleanOutput(), res.Output)
		if v < 0 || v > 100 {
			t.Fatalf("seed %d: fidelity %f out of range", seed, v)
		}
		if v > best {
			best = v
		}
	}
	if best < 50 {
		t.Fatalf("every seed collapsed fidelity (best %.1f%%); injection is likely broken", best)
	}
}

func TestRunExperimentTable1(t *testing.T) {
	out, err := RunExperiment("table1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "susan") || !strings.Contains(out, "Fidelity") {
		t.Fatalf("table1 output: %s", out)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("table99", 0); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"table1", "table2", "table3", "figure1", "figure2", "figure3", "figure4", "figure5", "figure6", "ablation", "potential", "bits", "masking"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyControl.String() != "control" ||
		PolicyControlAddr.String() != "control+addr" ||
		PolicyConservative.String() != "conservative" {
		t.Fatalf("policy strings: %s %s %s", PolicyControl, PolicyControlAddr, PolicyConservative)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if Completed.String() != "completed" || Crashed.String() != "crashed" || TimedOut.String() != "timed out" ||
		Detected.String() != "detected" {
		t.Fatalf("outcome strings wrong")
	}
}

func TestHardenedSystem(t *testing.T) {
	sys, err := Build(testSource, PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Harden(HardenOptions{}); err == nil {
		t.Fatalf("Harden accepted empty options")
	}
	h, err := sys.Harden(DefaultHardenOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Zero-fault equivalence through the public API.
	base, hard := sys.Run(testInput()), h.Run(testInput())
	if hard.Outcome != Completed || string(hard.Output) != string(base.Output) || hard.ExitCode != base.ExitCode {
		t.Fatalf("hardened run diverged: %s, %d output bytes", hard.Outcome, len(hard.Output))
	}

	if so := h.StaticOverhead(); so <= 1 {
		t.Fatalf("static overhead %.2f", so)
	}
	if do := h.DynamicOverhead(testInput()); do <= 1 {
		t.Fatalf("dynamic overhead %.2f", do)
	}
	if h.ProtectedSites() == 0 {
		t.Fatalf("no protected sites duplicated")
	}
	if h.MapToOriginal(-1) != -1 || h.MapToOriginal(1<<30) != -1 {
		t.Fatalf("MapToOriginal out-of-range handling")
	}

	// The detection campaign injects into protected primaries only; with
	// real redundancy a healthy share of those faults must be caught.
	camp, err := h.NewDetectionCampaign(testInput())
	if err != nil {
		t.Fatal(err)
	}
	pt := camp.RunPoint(1, PointOptions{MaxTrials: 48, Seed: 7})
	if pt.Trials == 0 {
		t.Fatalf("no trials ran")
	}
	if pt.Detected == 0 {
		t.Fatalf("no faults detected over %d trials: %+v", pt.Trials, pt)
	}
	if pt.DetectPct <= 0 || pt.DetectLowPct > pt.DetectPct || pt.DetectHighPct < pt.DetectPct {
		t.Fatalf("detection CI inconsistent: %+v", pt)
	}
	if pt.Detected+pt.Crashes+pt.Timeouts+pt.Completed != pt.Trials {
		t.Fatalf("outcome counts do not partition trials: %+v", pt)
	}

	// The hardened system is a full System: ordinary protected campaigns
	// still work on it.
	pc, err := h.NewCampaign(testInput(), true)
	if err != nil {
		t.Fatal(err)
	}
	if r := pc.Run(1, 3); r.Outcome == Crashed && r.TrapDescription == "" {
		t.Fatalf("crash without trap description")
	}
}
