// Custom: write your own error-tolerant application against the public
// API. The program is a small fixed-point FIR filter; the example shows
// the paper-style annotated listing (which instructions the analysis
// tagged, with the CVar sets of the worked example's bracket notation) and
// then measures fidelity under injection with live per-trial progress
// streamed through the v2 WithProgress option.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"etap"
)

const source = `
// 5-tap moving-average FIR over 16-bit samples, Q8 coefficients.
const int taps[5] = { 26, 51, 102, 51, 26 };

int hist[5];
int samples[512];

tolerant int fir(int x) {
    int acc = 0;
    int k;
    hist[4] = hist[3];
    hist[3] = hist[2];
    hist[2] = hist[1];
    hist[1] = hist[0];
    hist[0] = x;
    for (k = 0; k < 5; k = k + 1) {
        acc = acc + taps[k] * hist[k];
    }
    return acc >> 8;
}

int main() {
    int n = inw();
    int i;
    if (n > 512) { n = 512; }
    for (i = 0; i < n; i = i + 1) {
        int s = inh();
        if (s >= 32768) { s = s - 65536; }
        samples[i] = s;
    }
    for (i = 0; i < n; i = i + 1) {
        outh(fir(samples[i]) & 0xffff);
    }
    return 0;
}
`

func main() {
	ctx := context.Background()
	sys, err := etap.Build(source, etap.PolicyControlAddr)
	if err != nil {
		log.Fatal(err)
	}

	// Show the annotated fir() body: T = tagged low-reliability,
	// C = control slice, brackets = CVar below the instruction.
	fmt.Println("annotated listing (excerpt around fir):")
	listing := sys.Listing()
	if i := strings.Index(listing, "\nfir:"); i >= 0 {
		rest := listing[i+1:]
		if j := strings.Index(rest[1:], "\n\n"); j >= 0 {
			rest = rest[:j+1]
		}
		lines := strings.Split(rest, "\n")
		if len(lines) > 40 {
			lines = lines[:40]
		}
		fmt.Println(strings.Join(lines, "\n"))
	}

	// Input: a ramp with a glitch.
	input := []byte{0, 2, 0, 0} // n = 512 little-endian
	input[0] = 0
	input[1] = 2
	for i := 0; i < 512; i++ {
		v := uint16(i * 50 % 8192)
		input = append(input, byte(v), byte(v>>8))
	}

	camp, err := sys.NewCampaign(input, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclean run: %d instructions, %.1f%% of the dynamic stream is low-reliability\n",
		camp.CleanInstructions(), 100*camp.LowReliabilityFraction())

	// Score by output bytes intact, and watch each trial stream by.
	camp.SetScore(func(golden, corrupted []byte) (float64, bool) {
		diff := 0
		for i := range golden {
			if i >= len(corrupted) || corrupted[i] != golden[i] {
				diff++
			}
		}
		v := 100 * float64(len(golden)-diff) / float64(len(golden))
		return v, v >= 95
	})
	for _, errs := range []int{1, 5, 20} {
		outcomes := map[etap.Outcome]int{}
		p := camp.RunPoint(ctx, errs, etap.WithTrials(10), etap.WithSeed(1),
			etap.WithProgress(func(e etap.ProgressEvent) {
				outcomes[e.Outcome]++
				fmt.Printf("\r%2d errors: trial %2d (%s, %d instructions, shard %d)   ",
					errs, e.Trial+1, e.Outcome, e.Instructions, e.Shard)
			}))
		fmt.Printf("\r%2d errors: %d/%d failed, %.1f%% of output bytes intact on average (%d outcome kinds seen)\n",
			errs, p.Crashes+p.Timeouts, p.Trials, p.MeanValue, len(outcomes))
	}
}
