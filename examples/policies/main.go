// Policies: compare the three protection policies on the Blowfish
// benchmark — how much of the dynamic instruction stream each one leaves
// injectable, and what failure rate results at a fixed error count. This
// is the coverage/exposure trade-off DESIGN.md discusses: the paper's
// literal control-only slice tags the most work but leaves address
// computations exposed; protecting addresses removes most crashes; the
// conservative policy protects stored values too and tags almost nothing.
package main

import (
	"fmt"
	"log"

	"etap"
)

func main() {
	bench, ok := etap.BenchmarkByName("blowfish")
	if !ok {
		log.Fatal("blowfish benchmark not registered")
	}
	const errs = 20
	const trials = 15

	fmt.Printf("Blowfish, %d errors per run, %d trials per policy\n\n", errs, trials)
	fmt.Printf("%-14s  %12s  %10s  %14s\n", "policy", "low-rel %", "failures", "avg bytes ok")
	for _, pol := range []etap.Policy{etap.PolicyControl, etap.PolicyControlAddr, etap.PolicyConservative} {
		sys, err := bench.Build(pol)
		if err != nil {
			log.Fatal(err)
		}
		camp, err := sys.NewCampaign(bench.Input(), true)
		if err != nil {
			log.Fatal(err)
		}
		golden := camp.CleanOutput()
		fails := 0
		fidSum, fidN := 0.0, 0
		for seed := int64(1); seed <= trials; seed++ {
			res := camp.Run(errs, seed)
			if res.Outcome != etap.Completed {
				fails++
				continue
			}
			v, _ := bench.Score(golden, res.Output)
			fidSum += v
			fidN++
		}
		avg := 0.0
		if fidN > 0 {
			avg = fidSum / float64(fidN)
		}
		fmt.Printf("%-14s  %11.1f%%  %6d/%d  %13.1f%%\n",
			pol, 100*camp.LowReliabilityFraction(), fails, trials, avg)
	}
}
