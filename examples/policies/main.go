// Policies: compare the three protection policies on the Blowfish
// benchmark — how much of the dynamic instruction stream each one leaves
// injectable, and what failure rate results at a fixed error count. This
// is the coverage/exposure trade-off DESIGN.md discusses: the paper's
// literal control-only slice tags the most work but leaves address
// computations exposed; protecting addresses removes most crashes; the
// conservative policy protects stored values too and tags almost nothing.
//
// The example also shows the v2 session cache: all three builds go
// through one etap.Lab, so re-running a policy (as a characterization
// service would per request) costs a map lookup, not a recompile.
package main

import (
	"context"
	"fmt"
	"log"

	"etap"
)

func main() {
	ctx := context.Background()
	bench, ok := etap.BenchmarkByName("blowfish")
	if !ok {
		log.Fatal("blowfish benchmark not registered")
	}
	const errs = 20
	const trials = 15
	lab := etap.NewLab()

	fmt.Printf("Blowfish, %d errors per run, %d trials per policy\n\n", errs, trials)
	fmt.Printf("%-14s  %12s  %10s  %14s\n", "policy", "low-rel %", "failures", "avg bytes ok")
	for _, pol := range []etap.Policy{etap.PolicyControl, etap.PolicyControlAddr, etap.PolicyConservative} {
		sys, err := lab.Build(bench.Source(), pol)
		if err != nil {
			log.Fatal(err)
		}
		camp, err := sys.NewCampaign(bench.Input(), true)
		if err != nil {
			log.Fatal(err)
		}
		camp.SetScore(bench.Score)
		p := camp.RunPoint(ctx, errs, etap.WithTrials(trials), etap.WithSeed(1))
		fmt.Printf("%-14s  %11.1f%%  %6d/%d  %13.1f%%\n",
			pol, 100*camp.LowReliabilityFraction(), p.Crashes+p.Timeouts, p.Trials, p.MeanValue)
	}

	// The Lab now holds one compiled system per policy; a second pass over
	// the same keys rebuilds nothing.
	for _, pol := range []etap.Policy{etap.PolicyControl, etap.PolicyControlAddr, etap.PolicyConservative} {
		if _, err := lab.Build(bench.Source(), pol); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nlab cache: %d compiled systems after two passes over three policies\n", lab.Len())
}
