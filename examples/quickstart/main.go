// Quickstart: compile a tiny error-tolerant program, inject bit errors
// with and without control-data protection, and watch the paper's headline
// effect — protected runs degrade gracefully while unprotected runs crash
// or hang.
package main

import (
	"fmt"
	"log"

	"etap"
)

// The program applies a brightness threshold to a 256-byte "image" read
// from input. The pixel math is error-tolerant (a flipped pixel is just a
// speck); the loop bookkeeping is not — which is exactly what the static
// analysis separates.
const source = `
char img[256];

tolerant void threshold(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        int v = p[i];
        int boosted = v * 3 / 2;
        if (boosted > 255) { boosted = 255; }
        p[i] = boosted;
    }
}

int main() {
    int i;
    for (i = 0; i < 256; i = i + 1) { img[i] = inb(); }
    threshold(img, 256);
    for (i = 0; i < 256; i = i + 1) { outb(img[i]); }
    return 0;
}
`

func main() {
	sys, err := etap.Build(source, etap.PolicyControlAddr)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("program: %d instructions, %d tagged low-reliability (%.0f%%), %d in control slice\n\n",
		st.TextInstructions, st.TaggedStatic,
		100*float64(st.TaggedStatic)/float64(st.TextInstructions), st.ControlSliceStatic)

	input := make([]byte, 256)
	for i := range input {
		input[i] = byte(i / 2)
	}

	for _, protected := range []bool{true, false} {
		camp, err := sys.NewCampaign(input, protected)
		if err != nil {
			log.Fatal(err)
		}
		golden := camp.CleanOutput()
		label := "protection ON (errors hit only tagged instructions)"
		if !protected {
			label = "protection OFF (errors hit any arithmetic result)"
		}
		fmt.Println(label)
		for _, errs := range []int{1, 4, 16} {
			crashes, hangs, totalWrong := 0, 0, 0
			const trials = 20
			for seed := int64(0); seed < trials; seed++ {
				res := camp.Run(errs, seed)
				switch res.Outcome {
				case etap.Crashed:
					crashes++
				case etap.TimedOut:
					hangs++
				default:
					for i := range golden {
						if i < len(res.Output) && res.Output[i] != golden[i] {
							totalWrong++
						}
					}
				}
			}
			fmt.Printf("  %2d errors: %2d/%d crashed, %2d/%d hung, avg %.1f corrupted pixels per surviving run\n",
				errs, crashes, trials, hangs, trials,
				float64(totalWrong)/float64(trials-crashes-hangs))
		}
		fmt.Println()
	}
}
