// Quickstart: compile a tiny error-tolerant program, inject bit errors
// with and without control-data protection, and watch the paper's headline
// effect — protected runs degrade gracefully while unprotected runs crash
// or hang. Measurement points run on the v2 API: context-aware Sweep
// with functional options instead of hand-rolled seed loops.
package main

import (
	"context"
	"fmt"
	"log"

	"etap"
)

// The program applies a brightness threshold to a 256-byte "image" read
// from input. The pixel math is error-tolerant (a flipped pixel is just a
// speck); the loop bookkeeping is not — which is exactly what the static
// analysis separates.
const source = `
char img[256];

tolerant void threshold(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        int v = p[i];
        int boosted = v * 3 / 2;
        if (boosted > 255) { boosted = 255; }
        p[i] = boosted;
    }
}

int main() {
    int i;
    for (i = 0; i < 256; i = i + 1) { img[i] = inb(); }
    threshold(img, 256);
    for (i = 0; i < 256; i = i + 1) { outb(img[i]); }
    return 0;
}
`

func main() {
	ctx := context.Background()
	sys, err := etap.Build(source, etap.PolicyControlAddr)
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("program: %d instructions, %d tagged low-reliability (%.0f%%), %d in control slice\n\n",
		st.TextInstructions, st.TaggedStatic,
		100*float64(st.TaggedStatic)/float64(st.TextInstructions), st.ControlSliceStatic)

	input := make([]byte, 256)
	for i := range input {
		input[i] = byte(i / 2)
	}

	for _, protected := range []bool{true, false} {
		camp, err := sys.NewCampaign(input, protected)
		if err != nil {
			log.Fatal(err)
		}
		// Score a surviving run by how many pixels came out right.
		camp.SetScore(func(golden, corrupted []byte) (float64, bool) {
			ok := 0
			for i := range golden {
				if i < len(corrupted) && corrupted[i] == golden[i] {
					ok++
				}
			}
			v := 100 * float64(ok) / float64(len(golden))
			return v, v >= 99
		})
		label := "protection ON (errors hit only tagged instructions)"
		if !protected {
			label = "protection OFF (errors hit any arithmetic result)"
		}
		fmt.Println(label)
		for _, p := range camp.Sweep(ctx, []int{1, 4, 16}, etap.WithTrials(20), etap.WithSeed(1)) {
			fmt.Printf("  %2d errors: %2d/%d crashed, %2d/%d hung, %5.1f%% pixels correct in surviving runs\n",
				p.Errors, p.Crashes, p.Trials, p.Timeouts, p.Trials, p.MeanValue)
		}
		fmt.Println()
	}
}
