// Serve: the characterization service end to end, in process. Starts
// the HTTP service on a loopback listener, submits an ad-hoc MiniC
// program the way a remote client would (POST JSON), follows the job's
// SSE event stream trial by trial, and fetches the final report —
// first as the text table, then picking numbers out of the JSON form.
// Run `cmd/etserve` for the standalone server; docs/SERVE.md documents
// the wire surface this example speaks.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"etap"
)

// The service validates this at submit time: it must compile under the
// policy and its clean run must complete within the instruction budget.
const source = `
char data[128];

tolerant void smooth(char *p, int n) {
    int i;
    for (i = 1; i < n - 1; i = i + 1) {
        p[i] = (p[i-1] + p[i] + p[i+1]) / 3;
    }
}

int main() {
    int i;
    for (i = 0; i < 128; i = i + 1) { data[i] = inb(); }
    smooth(data, 128);
    for (i = 0; i < 128; i = i + 1) { outb(data[i]); }
    return 0;
}
`

func main() {
	// One shared Lab: every submission of the same (source, policy)
	// compiles once, however many clients race.
	lab := etap.NewLab()
	srv, err := etap.NewServer(etap.WithServeLab(lab), etap.WithServeWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // ends with the listener
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("service listening on", base)

	// Submit: source + input + campaign options, as JSON.
	req := map[string]any{
		"source": source,
		"input":  strings.Repeat("abcdefghijklmnop", 8),
		"errors": []int{1, 4, 16},
		"trials": 24,
		"seed":   7,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	var ack struct {
		ID    string            `json:"id"`
		Links map[string]string `json:"links"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted job %s\n\n", ack.ID)

	// Stream: the SSE feed replays from the start and ends with the
	// terminal state event, so reading it to EOF doubles as waiting.
	events, err := http.Get(base + ack.Links["events"])
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	trials := 0
	sc := bufio.NewScanner(events.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := strings.TrimPrefix(line, "data: ")
		var ev struct {
			State   string `json:"state"`
			Errors  int    `json:"errors"`
			Trial   int    `json:"trial"`
			Outcome string `json:"outcome"`
		}
		if json.Unmarshal([]byte(data), &ev) != nil {
			continue
		}
		switch {
		case ev.State != "":
			fmt.Println("state:", ev.State)
		default:
			trials++
			if ev.Trial == 0 {
				fmt.Printf("  point errors=%d running...\n", ev.Errors)
			}
		}
	}
	fmt.Printf("streamed %d trial events\n\n", trials)

	// Fetch: same report, three formats; text is the human one.
	report, err := http.Get(base + ack.Links["report"] + "?format=text")
	if err != nil {
		log.Fatal(err)
	}
	defer report.Body.Close()
	sc = bufio.NewScanner(report.Body)
	for sc.Scan() {
		fmt.Println(sc.Text())
	}
	fmt.Printf("\nlab compiled %d time(s) for this session\n", lab.Builds())
}
