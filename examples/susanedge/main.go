// Susanedge: reproduce the Figure 1 experiment interactively — run the
// Susan edge detector under increasing error counts and print the PSNR of
// each corrupted edge map against the fault-free one, with the analysis on
// and off.
package main

import (
	"fmt"
	"log"

	"etap"
)

func main() {
	bench, ok := etap.BenchmarkByName("susan")
	if !ok {
		log.Fatal("susan benchmark not registered")
	}
	sys, err := bench.Build(etap.PolicyControlAddr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — %s\nfidelity: %s (threshold 10 dB)\n\n", bench.Name(), bench.Title(), bench.FidelityName())

	const trials = 8
	fmt.Printf("%8s  %22s  %22s\n", "errors", "PSNR dB (analysis ON)", "PSNR dB (analysis OFF)")
	for _, errs := range []int{50, 200, 800, 1600, 2400} {
		var row [2]float64
		var fails [2]int
		for mode, protected := range map[int]bool{0: true, 1: false} {
			camp, err := sys.NewCampaign(bench.Input(), protected)
			if err != nil {
				log.Fatal(err)
			}
			golden := camp.CleanOutput()
			sum, n := 0.0, 0
			for seed := int64(1); seed <= trials; seed++ {
				res := camp.Run(errs, seed*31+int64(errs))
				if res.Outcome != etap.Completed {
					fails[mode]++
					continue
				}
				v, _ := bench.Score(golden, res.Output)
				sum += v
				n++
			}
			if n > 0 {
				row[mode] = sum / float64(n)
			}
		}
		fmt.Printf("%8d  %19.1f dB  %19.1f dB   (failed runs: on=%d off=%d of %d)\n",
			errs, row[0], row[1], fails[0], fails[1], trials)
	}
	fmt.Println("\nWith control data protected, fidelity degrades smoothly; without it,")
	fmt.Println("the same error counts crash the run or wreck the output entirely.")
}
