// Susanedge: reproduce the Figure 1 experiment interactively — run the
// Susan edge detector under increasing error counts and print the PSNR of
// each corrupted edge map against the fault-free one, with the analysis on
// and off. The sweep runs on the v2 API (context-aware Sweep with the
// benchmark's own fidelity scorer), and the same data is available as a
// structured report via the figure1 registry experiment.
package main

import (
	"context"
	"fmt"
	"log"

	"etap"
)

func main() {
	ctx := context.Background()
	bench, ok := etap.BenchmarkByName("susan")
	if !ok {
		log.Fatal("susan benchmark not registered")
	}
	sys, err := bench.Build(etap.PolicyControlAddr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s — %s\nfidelity: %s (threshold 10 dB)\n\n", bench.Name(), bench.Title(), bench.FidelityName())

	errorCounts := []int{50, 200, 800, 1600, 2400}
	sweeps := map[bool][]etap.PointStats{}
	for _, protected := range []bool{true, false} {
		camp, err := sys.NewCampaign(bench.Input(), protected)
		if err != nil {
			log.Fatal(err)
		}
		camp.SetScore(bench.Score)
		sweeps[protected] = camp.Sweep(ctx, errorCounts, etap.WithTrials(8), etap.WithSeed(31))
	}

	fmt.Printf("%8s  %22s  %22s\n", "errors", "PSNR dB (analysis ON)", "PSNR dB (analysis OFF)")
	for i, errs := range errorCounts {
		on, off := sweeps[true][i], sweeps[false][i]
		fmt.Printf("%8d  %19.1f dB  %19.1f dB   (failed runs: on=%d off=%d of %d)\n",
			errs, on.MeanValue, off.MeanValue,
			on.Crashes+on.Timeouts, off.Crashes+off.Timeouts, on.Trials)
	}
	fmt.Println("\nWith control data protected, fidelity degrades smoothly; without it,")
	fmt.Println("the same error counts crash the run or wreck the output entirely.")
}
