package etap

import (
	"context"
	"io"

	"etap/internal/exp"
	obstrace "etap/internal/obs/trace"
)

// Report is the structured result of one experiment: named, unit-tagged
// columns, typed rows (with Wilson confidence bounds on rate cells),
// figure series, and the options metadata to reproduce the run. Render
// it with RenderText, or serialize batches with WriteReportsJSON /
// WriteReportsCSV; the text rendering is byte-identical to the output of
// the pre-Report RunExperiment for the paper's tables and figures.
type Report = exp.Report

// WriteReportsJSON renders reports as one indented JSON array.
func WriteReportsJSON(w io.Writer, reports []*Report) error {
	return exp.WriteJSON(w, reports)
}

// WriteReportsCSV renders reports as CSV blocks, one per report, with
// confidence-bound companion columns where cells carry them.
func WriteReportsCSV(w io.Writer, reports []*Report) error {
	return exp.WriteCSV(w, reports)
}

// Experiment is one registered, runnable experiment from the paper's
// evaluation (or a DESIGN.md extension).
type Experiment struct {
	// ID is the stable identifier ("table2", "figure1", ...).
	ID string
	// Title is a one-line description.
	Title string

	run func(context.Context, exp.Options) (*exp.Report, error)
}

// Run executes the experiment. It honours WithTrials, WithSeed,
// WithWorkers, WithPolicy and WithProgress; cancelling ctx aborts the
// run between campaign trials and returns ctx's error.
func (e Experiment) Run(ctx context.Context, opts ...Option) (*Report, error) {
	if e.run == nil {
		return nil, exp.UnknownExperimentError(e.ID)
	}
	// Child span of whatever the caller carries (a served job span, or
	// nothing for library use); campaign points nest beneath it.
	ctx, span := obstrace.Start(ctx, "experiment.run", obstrace.String("experiment", e.ID))
	defer span.End()
	r, err := e.run(ctx, applyOptions(opts).expOptions())
	if err != nil {
		span.SetStatus(obstrace.StatusError, err.Error())
	}
	return r, err
}

// Experiments lists every registered experiment in canonical order.
func Experiments() []Experiment {
	es := exp.Experiments()
	out := make([]Experiment, len(es))
	for i, e := range es {
		out[i] = Experiment{ID: e.ID, Title: e.Title, run: e.Run}
	}
	return out
}

// ExperimentByID resolves one registered experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExperimentIDs lists the registered experiment IDs in canonical order.
func ExperimentIDs() []string { return exp.IDs() }

// RunExperiment regenerates one experiment and returns its rendered
// text. Trials ≤ 0 selects the default (40 per point).
//
// Deprecated: RunExperiment is a shim over the Experiments registry kept
// for pre-v2 callers. Use ExperimentByID(id).Run(ctx, opts...) to get a
// structured *Report with cancellation, progress and machine renderings.
func RunExperiment(id string, trials int) (string, error) {
	e, ok := ExperimentByID(id)
	if !ok {
		return "", unknownExperiment(id)
	}
	var opts []Option
	if trials > 0 {
		opts = append(opts, WithTrials(trials))
	}
	r, err := e.Run(context.Background(), opts...)
	if err != nil {
		return "", err
	}
	return r.RenderText(), nil
}

func unknownExperiment(id string) error { return exp.UnknownExperimentError(id) }
