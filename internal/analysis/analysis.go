// Package analysis is the static-analysis layer over isa.Program: basic
// blocks and dominators (on top of core's CFGs), interprocedural register
// liveness, and three consumers built from them:
//
//   - Injection pruning (prune.go): every fault site whose destination
//     register is dead on write — rewritten before any use on every path —
//     is classified statically Benign. The campaign engine skips those
//     trials and synthesizes their (provably clean) outcome, bit-identical
//     to running them, so characterization sweeps spend simulator time
//     only on faults that can matter.
//
//   - Hardening verification (verify.go): a checker that proves a
//     harden-transformed program carries a correctly chained CFCSS
//     signature prologue on every basic block and a duplicate-compare
//     check before every policy-covered use site, instead of trusting the
//     rewriter empirically.
//
//   - Escape profiling (escape.go): the concrete table of the paper's
//     §5.1 memory soundness hole — tagged (unprotected) definitions whose
//     values reach memory through a store — feeding selective hardening.
//
// docs/ANALYSIS.md states the analysis model and the pruning soundness
// argument, including the assumptions under which liveness degrades to
// the conservative "everything live" answer (Precise == false).
package analysis

import (
	"etap/internal/core"
	"etap/internal/isa"
)

// AllRegs is the conservative "everything live" register set: every
// architectural register except the hardwired zero register.
const AllRegs core.RegMask = 0xFFFFFFFE

// regBit is the singleton set {r}, empty for the zero register (which is
// not a variable and never appears in a mask).
func regBit(r isa.Reg) core.RegMask {
	return core.RegMask(1<<r) &^ 1
}
