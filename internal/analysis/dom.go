package analysis

import "etap/internal/core"

// DomTree is the dominator tree of one function's CFG, computed with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder. The
// hardening verifier uses it to prove that every duplicate-compare check
// dominates the use it guards in the rewritten program.
type DomTree struct {
	CFG *core.FuncCFG
	// Idom[b] is b's immediate dominator block ID; the entry block is its
	// own idom, and blocks unreachable from the entry have Idom -1.
	Idom []int

	poNum []int // postorder number per block, -1 if unreachable
}

// Dominators computes the dominator tree for cfg. Block 0 (the function
// entry) is the root.
func Dominators(cfg *core.FuncCFG) *DomTree {
	n := len(cfg.Blocks)
	d := &DomTree{CFG: cfg, Idom: make([]int, n), poNum: make([]int, n)}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.poNum[i] = -1
	}
	if n == 0 {
		return d
	}

	// Iterative DFS for postorder; Succs can contain duplicates and
	// self-loops, both harmless here.
	type frame struct{ b, next int }
	var postorder []int
	stack := []frame{{0, 0}}
	seen := make([]bool, n)
	seen[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := cfg.Blocks[f.b].Succs
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		d.poNum[f.b] = len(postorder)
		postorder = append(postorder, f.b)
		stack = stack[:len(stack)-1]
	}

	preds := make([][]int, n)
	for b, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	d.Idom[0] = 0
	for changed := true; changed; {
		changed = false
		// Reverse postorder, skipping the entry.
		for i := len(postorder) - 1; i >= 0; i-- {
			b := postorder[i]
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if d.Idom[p] < 0 {
					continue // unprocessed or unreachable
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = d.intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// intersect walks two blocks up the (partial) dominator tree to their
// common ancestor, comparing by postorder number.
func (d *DomTree) intersect(a, b int) int {
	for a != b {
		for d.poNum[a] < d.poNum[b] {
			a = d.Idom[a]
		}
		for d.poNum[b] < d.poNum[a] {
			b = d.Idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively).
// Unreachable blocks dominate nothing and are dominated by nothing but
// themselves.
func (d *DomTree) Dominates(a, b int) bool {
	if a == b {
		return true
	}
	if d.poNum[a] < 0 || d.poNum[b] < 0 {
		return false
	}
	for b != 0 {
		b = d.Idom[b]
		if b == a {
			return true
		}
	}
	return a == 0
}

// Depth is the dominator-tree depth of block b (entry = 0), or -1 for
// unreachable blocks.
func (d *DomTree) Depth(b int) int {
	if d.poNum[b] < 0 {
		return -1
	}
	depth := 0
	for b != 0 {
		b = d.Idom[b]
		depth++
	}
	return depth
}
