package analysis_test

import (
	"testing"

	"etap/internal/analysis"
	"etap/internal/apps/all"
	"etap/internal/core"
	"etap/internal/minic"
)

const diamondSrc = `
.text
.func __start
	li $t0, 1
	bnez $t0, other
	li $a0, 7
	j done
other:
	li $a0, 9
done:
	li $v0, 1
	syscall
.endfunc
`

// TestDominatorsDiamond pins the dominator tree of an if/else diamond:
// the entry dominates everything, neither arm dominates the join, and
// the join's immediate dominator is the entry.
func TestDominatorsDiamond(t *testing.T) {
	p := assemble(t, diamondSrc)
	cfgs, err := core.BuildCFG(p)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	cfg := cfgs[0]
	if len(cfg.Blocks) != 4 {
		t.Fatalf("diamond has %d blocks, want 4", len(cfg.Blocks))
	}
	dom := analysis.Dominators(cfg)
	if dom.Idom[0] != 0 {
		t.Fatalf("entry idom = %d, want itself", dom.Idom[0])
	}
	for b := 1; b < 4; b++ {
		if !dom.Dominates(0, b) {
			t.Fatalf("entry does not dominate block %d", b)
		}
	}
	// Blocks 1 and 2 are the two arms, block 3 the join.
	if dom.Idom[3] != 0 {
		t.Fatalf("join idom = %d, want entry", dom.Idom[3])
	}
	if dom.Dominates(1, 3) || dom.Dominates(2, 3) {
		t.Fatal("a branch arm dominates the join")
	}
	if dom.Dominates(1, 2) || dom.Dominates(2, 1) {
		t.Fatal("sibling arms dominate each other")
	}
	if dom.Depth(3) != 1 || dom.Depth(1) != 1 || dom.Depth(0) != 0 {
		t.Fatalf("depths entry=%d arm=%d join=%d, want 0/1/1",
			dom.Depth(0), dom.Depth(1), dom.Depth(3))
	}
}

const loopSrc = `
.text
.func __start
	li $t0, 4
	li $a0, 0
loop:
	add $a0, $a0, $t0
	addi $t0, $t0, -1
	bnez $t0, loop
	li $v0, 1
	syscall
.endfunc
`

// TestDominatorsLoop: a natural loop's header dominates its body and the
// exit block; the back edge does not disturb the tree.
func TestDominatorsLoop(t *testing.T) {
	p := assemble(t, loopSrc)
	cfgs, err := core.BuildCFG(p)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	cfg := cfgs[0]
	if len(cfg.Blocks) != 3 {
		t.Fatalf("loop program has %d blocks, want 3", len(cfg.Blocks))
	}
	dom := analysis.Dominators(cfg)
	// Block 0: preamble; block 1: loop body (branch target); block 2: exit.
	if dom.Idom[1] != 0 || dom.Idom[2] != 1 {
		t.Fatalf("idoms = %v, want [0 0 1]", dom.Idom)
	}
	if !dom.Dominates(1, 2) {
		t.Fatal("loop header does not dominate the loop exit")
	}
}

// TestDominatorsApps checks dominator-tree invariants over every
// function of all seven benchmark programs: the entry block is its own
// idom, every reachable block's idom strictly dominates it with smaller
// depth, and Dominates is reflexive and antisymmetric on distinct
// blocks.
func TestDominatorsApps(t *testing.T) {
	names := all.Names()
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			a, ok := all.ByName(name)
			if !ok {
				t.Fatalf("unknown app %s", name)
			}
			prog, err := minic.Build(a.Source())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			cfgs, err := core.BuildCFG(prog)
			if err != nil {
				t.Fatalf("cfg: %v", err)
			}
			for fi, cfg := range cfgs {
				if len(cfg.Blocks) == 0 {
					continue
				}
				dom := analysis.Dominators(cfg)
				if dom.Idom[0] != 0 {
					t.Fatalf("func %d: entry idom %d", fi, dom.Idom[0])
				}
				for b := 1; b < len(cfg.Blocks); b++ {
					id := dom.Idom[b]
					if id < 0 {
						continue // unreachable
					}
					if !dom.Dominates(id, b) || dom.Dominates(b, id) {
						t.Fatalf("func %d block %d: idom %d not a strict dominator", fi, b, id)
					}
					if dom.Depth(b) != dom.Depth(id)+1 {
						t.Fatalf("func %d block %d: depth %d, idom depth %d", fi, b, dom.Depth(b), dom.Depth(id))
					}
					if !dom.Dominates(0, b) {
						t.Fatalf("func %d: entry does not dominate reachable block %d", fi, b)
					}
					if !dom.Dominates(b, b) {
						t.Fatalf("func %d: Dominates not reflexive on %d", fi, b)
					}
				}
			}
		})
	}
}
