package analysis

import (
	"sort"

	"etap/internal/core"
	"etap/internal/isa"
)

// EscapeSite is one concrete instance of the paper's §5.1 memory
// soundness hole: a tagged (low-reliability) definition whose value
// reaches a store's value operand, entering memory untracked. A fault in
// the definition can survive the store/reload round trip and corrupt a
// later control computation without ever flowing through a register the
// analysis watches. PolicyConservative closes the hole by construction,
// so conservative reports produce no escapes.
type EscapeSite struct {
	// Def is the text index of the tagged definition, Reg the register
	// carrying its value into memory, Store the text index of the store
	// consuming it as the stored value.
	Def   int
	Reg   isa.Reg
	Store int
}

// Escapes computes the escape profile of an analysis report: every
// (tagged definition, store) pair where the definition's value is the
// stored operand. Results are ordered by definition then store index.
func Escapes(rep *core.Report) ([]EscapeSite, error) {
	dus, err := core.ReachingDefs(rep.Prog)
	if err != nil {
		return nil, err
	}
	var sites []EscapeSite
	for _, du := range dus {
		for id, useSites := range du.DefUses {
			def := du.Defs[id]
			if !rep.Tagged[def.Instr] {
				continue
			}
			for _, u := range useSites {
				in := rep.Prog.Text[u]
				if sv, ok := in.StoredValue(); ok && sv == def.Reg {
					sites = append(sites, EscapeSite{Def: def.Instr, Reg: def.Reg, Store: u})
				}
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].Def != sites[j].Def {
			return sites[i].Def < sites[j].Def
		}
		return sites[i].Store < sites[j].Store
	})
	return sites, nil
}

// EscapeStats summarises an escape profile per function for report
// tables: how many tagged definitions escape to memory in each function.
type EscapeStats struct {
	Func    string
	Defs    int // distinct escaping definitions
	Stores  int // distinct stores receiving tagged values
	Escapes int // (def, store) pairs
}

// EscapesByFunc folds an escape profile into per-function rows, ordered
// by function position in the program.
func EscapesByFunc(p *isa.Program, sites []EscapeSite) []EscapeStats {
	rows := make([]EscapeStats, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		defs := make(map[int]bool)
		stores := make(map[int]bool)
		n := 0
		for _, s := range sites {
			if s.Def >= f.Start && s.Def < f.End {
				defs[s.Def] = true
				stores[s.Store] = true
				n++
			}
		}
		if n == 0 {
			continue
		}
		rows = append(rows, EscapeStats{Func: f.Name, Defs: len(defs), Stores: len(stores), Escapes: n})
	}
	return rows
}
