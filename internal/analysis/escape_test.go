package analysis_test

import (
	"testing"

	"etap/internal/analysis"
	"etap/internal/apps/all"
	"etap/internal/core"
	"etap/internal/minic"
)

const escapeSrc = `
.text
.func __start
	li $a0, 5
	jal work
	move $a0, $v0
	li $v0, 1
	syscall
.endfunc
.func work tolerant
	addi $t0, $a0, 3
	sw $t0, 0x200($zero)
	lw $v0, 0x200($zero)
	jr $ra
.endfunc
`

// TestEscapesHandcrafted: a tagged (tolerant, non-control) definition
// whose value is stored to memory is an escape site under the
// control-only policy; the conservative policy pulls stored values into
// the control slice, closing the hole by construction.
func TestEscapesHandcrafted(t *testing.T) {
	p := assemble(t, escapeSrc)

	rep, err := core.Analyze(p, core.PolicyControl)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	sites, err := analysis.Escapes(rep)
	if err != nil {
		t.Fatalf("escapes: %v", err)
	}
	if len(sites) == 0 {
		t.Fatal("tagged stored value produced no escape site under PolicyControl")
	}
	def := nthDef(t, p, 8 /* $t0 */, 0)
	found := false
	for _, s := range sites {
		if s.Def == def {
			if sv, ok := p.Text[s.Store].StoredValue(); !ok || sv != s.Reg {
				t.Fatalf("escape site store %d does not store %s", s.Store, s.Reg)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("the $t0 definition at %d is not among the escape sites %v", def, sites)
	}

	rows := analysis.EscapesByFunc(p, sites)
	if len(rows) != 1 || rows[0].Func != "work" || rows[0].Escapes != len(sites) {
		t.Fatalf("per-function stats %+v do not fold the sites", rows)
	}

	cons, err := core.Analyze(p, core.PolicyConservative)
	if err != nil {
		t.Fatalf("analyze conservative: %v", err)
	}
	consSites, err := analysis.Escapes(cons)
	if err != nil {
		t.Fatalf("escapes conservative: %v", err)
	}
	if len(consSites) != 0 {
		t.Fatalf("conservative policy still has %d escape sites", len(consSites))
	}
}

// TestEscapesApps: the conservative policy admits no escapes on any
// benchmark, and the control-only profile is internally consistent.
func TestEscapesApps(t *testing.T) {
	names := all.Names()
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			a, ok := all.ByName(name)
			if !ok {
				t.Fatalf("unknown app %s", name)
			}
			prog, err := minic.Build(a.Source())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := core.Analyze(prog, core.PolicyControl)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			sites, err := analysis.Escapes(rep)
			if err != nil {
				t.Fatalf("escapes: %v", err)
			}
			for _, s := range sites {
				if !rep.Tagged[s.Def] {
					t.Fatalf("escape def %d is not tagged", s.Def)
				}
				if sv, ok := prog.Text[s.Store].StoredValue(); !ok || sv != s.Reg {
					t.Fatalf("escape store %d does not store %s", s.Store, s.Reg)
				}
			}
			cons, err := core.Analyze(prog, core.PolicyConservative)
			if err != nil {
				t.Fatalf("analyze conservative: %v", err)
			}
			consSites, err := analysis.Escapes(cons)
			if err != nil {
				t.Fatalf("escapes conservative: %v", err)
			}
			if len(consSites) != 0 {
				t.Fatalf("conservative policy has %d escapes", len(consSites))
			}
			t.Logf("%s: %d escape sites under PolicyControl", name, len(sites))
		})
	}
}
