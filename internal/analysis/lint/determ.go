package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UnorderedOKMarker waives one specific map range from determcheck. It
// must appear in a comment on the range statement's own line or the line
// directly above it.
const UnorderedOKMarker = "//etap:unordered-ok"

// Determ is the determcheck analyzer: Go's map iteration order is
// deliberately randomized, so a range over a map anywhere in a package
// that feeds campaign aggregation or report rendering is a
// reproducibility bug waiting to reorder trials, rows or series between
// runs. Sites that are genuinely order-insensitive (folding into a
// commutative aggregate, building another map) are waived explicitly
// with //etap:unordered-ok, which makes every such decision visible in
// review. The driver scopes this analyzer to the packages where ordering
// is part of the output contract.
var Determ = &Analyzer{
	Name: "determcheck",
	Doc:  "report unordered map iteration in determinism-sensitive packages",
	Run:  runDeterm,
}

func runDeterm(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		waived := waivedLines(pkg, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			line := pkg.Fset.Position(rng.Pos()).Line
			if waived[line] || waived[line-1] {
				return true
			}
			diags = append(diags, Diagnostic{Pos: rng.Pos(), Analyzer: "determcheck",
				Message: "map iteration order is random; sort the keys or waive with " + UnorderedOKMarker})
			return true
		})
	}
	return diags
}

// waivedLines collects the file lines carrying the waiver marker.
func waivedLines(pkg *Package, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), UnorderedOKMarker) {
				lines[pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
