package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// HotPathMarker is the doc-comment marker that opts a function into the
// hot-path discipline.
const HotPathMarker = "//etap:hotpath"

// HotPath is the hotpathcheck analyzer: a function whose doc comment
// carries //etap:hotpath promises that its hot statements — the bodies
// of its loops, or the entire body when the function is a loop-free leaf
// helper — stay allocation-free and observation-free. The analyzer
// flags, inside that scope:
//
//   - allocations: make, new, append, composite literals, closures;
//   - statements that allocate by construction: go and defer;
//   - calls into packages that observe or format: time, fmt, and the
//     metrics plane etap/internal/obs (including method calls on its
//     types, so a stray counter.Inc() in a simulator loop is caught).
//
// Calls within the marked function's own package are not flagged: slow
// paths legitimately live in sibling helpers, and marking those too is
// the reviewable act of extending the contract.
var HotPath = &Analyzer{
	Name: "hotpathcheck",
	Doc:  "report allocations, metrics and clock reads in //etap:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: n.Pos(), Analyzer: "hotpathcheck",
			Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasMarker(fn.Doc, HotPathMarker) {
				continue
			}
			checkHotFunc(pkg, fn, report)
		}
	}
	return diags
}

func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}

// checkHotFunc applies the hot-path rules to one marked function. If the
// function has loops, only loop bodies are hot (setup and teardown may
// allocate); a loop-free function is hot throughout.
func checkHotFunc(pkg *Package, fn *ast.FuncDecl, report func(ast.Node, string, ...any)) {
	hasLoop := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
			return false
		case *ast.FuncLit:
			return false // a nested closure's loops are its own problem
		}
		return true
	})
	if !hasLoop {
		checkHotStmts(pkg, fn.Name.Name, fn.Body, report)
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			checkHotStmts(pkg, fn.Name.Name, s.Body, report)
			return false
		case *ast.RangeStmt:
			checkHotStmts(pkg, fn.Name.Name, s.Body, report)
			return false
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

// checkHotStmts walks one hot region and reports every violation.
func checkHotStmts(pkg *Package, fname string, body ast.Node, report func(ast.Node, string, ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			report(x, "%s: go statement on a hot path", fname)
		case *ast.DeferStmt:
			report(x, "%s: defer on a hot path", fname)
		case *ast.FuncLit:
			report(x, "%s: closure allocated on a hot path", fname)
			return false
		case *ast.CompositeLit:
			report(x, "%s: composite literal allocated on a hot path", fname)
		case *ast.CallExpr:
			checkHotCall(pkg, fname, x, report)
		}
		return true
	})
}

// forbiddenPkg reports whether a callee package has no business on a hot
// path and, if so, why.
func forbiddenPkg(path string) (string, bool) {
	switch {
	case path == "time":
		return "reads the clock", true
	case path == "fmt":
		return "formats (allocates)", true
	case path == "etap/internal/obs" || strings.HasPrefix(path, "etap/internal/obs/"):
		return "records metrics", true
	}
	return "", false
}

func checkHotCall(pkg *Package, fname string, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make", "new", "append":
				report(call, "%s: %s on a hot path", fname, obj.Name())
			}
		}
	case *ast.SelectorExpr:
		// Package-qualified call: time.Now(), fmt.Sprintf(), obs.Default().
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
				if why, bad := forbiddenPkg(pn.Imported().Path()); bad {
					report(call, "%s: call into %s %s on a hot path", fname, pn.Imported().Path(), why)
				}
				return
			}
		}
		// Method call: counter.Inc() where the receiver type lives in a
		// forbidden package.
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if obj := sel.Obj(); obj != nil && obj.Pkg() != nil {
				if why, bad := forbiddenPkg(obj.Pkg().Path()); bad {
					report(call, "%s: %s.%s %s on a hot path", fname, obj.Pkg().Name(), obj.Name(), why)
				}
			}
		}
	}
}
