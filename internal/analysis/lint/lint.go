// Package lint is a self-contained mini framework for repo-specific
// static checks over Go source, built directly on go/ast and go/types so
// it needs nothing outside the standard library. It powers cmd/etvet,
// which CI runs as a required step.
//
// Two analyzers ship with it:
//
//   - hotpathcheck: functions marked //etap:hotpath must not allocate,
//     record metrics, or read the clock on their hot statements (the
//     bodies of their loops, or the whole body for loop-free helpers).
//   - determcheck: packages that feed campaign aggregation or report
//     rendering must not iterate maps in unordered fashion unless the
//     site is explicitly waived with //etap:unordered-ok.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked Go package ready for analysis.
type Package struct {
	// Path is the import path ("etap/internal/sim").
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Diagnostic is one finding, positioned in the package's file set.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one check. Run inspects a package and returns its
// findings; analyzers are pure — scoping decisions (which packages an
// analyzer applies to) belong to the driver.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Diagnostic
}

// TypeCheck builds a Package from parsed files, resolving imports
// through imp. It is the single type-checking entry point for both the
// module loader and tests feeding sources directly.
func TypeCheck(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined findings sorted by file position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags = append(diags, a.Run(pkg)...)
		}
	}
	// All packages sharing one driver share one FileSet, so global
	// position order is meaningful.
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			return pi.Offset < pj.Offset
		})
	}
	return diags
}

// Format renders a diagnostic the way compilers do:
// path:line:col: [analyzer] message.
func Format(fset *token.FileSet, d Diagnostic) string {
	p := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: [%s] %s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
}
