package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSrc type-checks one source string as a standalone package; std
// imports resolve through the GOROOT source importer.
func checkSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, err := TypeCheck("example/p", fset, []*ast.File{f}, importer.ForCompiler(fset, "source", nil))
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg
}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}

func wantDiag(t *testing.T, diags []Diagnostic, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Fatalf("no diagnostic containing %q in %q", substr, messages(diags))
}

const hotpathViolations = `
package p

import (
	"fmt"
	"time"
)

//etap:hotpath
func step(buf []int, n int) []int {
	setup := make([]int, 0, n) // setup before the loop: allowed
	for i := 0; i < n; i++ {
		buf = append(buf, i)
		tmp := make([]int, 4)
		_ = tmp
		s := struct{ a, b int }{i, n}
		_ = s
		f := func() int { return i }
		_ = f
		fmt.Sprintf("%d", i)
		_ = time.Now()
	}
	return setup
}

func cold(n int) []int {
	out := make([]int, n) // unmarked function: allowed
	return out
}
`

func TestHotPathFlagsLoopViolations(t *testing.T) {
	diags := HotPath.Run(checkSrc(t, hotpathViolations))
	for _, want := range []string{
		"append on a hot path",
		"make on a hot path",
		"composite literal allocated",
		"closure allocated",
		"call into fmt",
		"call into time",
	} {
		wantDiag(t, diags, want)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "cold") {
			t.Fatalf("unmarked function flagged: %s", d.Message)
		}
	}
	// The pre-loop make must not be flagged: exactly one make finding.
	makes := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "make on a hot path") {
			makes++
		}
	}
	if makes != 1 {
		t.Fatalf("%d make findings, want 1 (setup alloc must be exempt): %q", makes, messages(diags))
	}
}

const hotpathLeaf = `
package p

//etap:hotpath
func leaf(n int) []int {
	return make([]int, n)
}
`

func TestHotPathLoopFreeLeafIsHotThroughout(t *testing.T) {
	diags := HotPath.Run(checkSrc(t, hotpathLeaf))
	if len(diags) != 1 {
		t.Fatalf("%d findings, want 1: %q", len(diags), messages(diags))
	}
	wantDiag(t, diags, "make on a hot path")
}

const hotpathDeferGo = `
package p

//etap:hotpath
func dispatch(work []func(), n int) {
	for i := 0; i < n; i++ {
		defer work[i]()
		go work[i]()
	}
}
`

func TestHotPathFlagsDeferAndGo(t *testing.T) {
	diags := HotPath.Run(checkSrc(t, hotpathDeferGo))
	wantDiag(t, diags, "defer on a hot path")
	wantDiag(t, diags, "go statement on a hot path")
}

const determSrc = `
package p

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // not waived: flagged
		total += v
	}
	//etap:unordered-ok building another map is order-insensitive
	for k, v := range m {
		_ = k
		_ = v
	}
	for i, v := range []int{1, 2, 3} { // slice range: fine
		_ = i
		_ = v
	}
	return total
}
`

func TestDetermFlagsUnwaivedMapRange(t *testing.T) {
	diags := Determ.Run(checkSrc(t, determSrc))
	if len(diags) != 1 {
		t.Fatalf("%d findings, want exactly 1: %q", len(diags), messages(diags))
	}
	wantDiag(t, diags, "map iteration order is random")
}

// TestLoaderLoadsModulePackages exercises the module-aware source
// loader on a real package of this repo, including its module-internal
// imports.
func TestLoaderLoadsModulePackages(t *testing.T) {
	if testing.Short() {
		t.Skip("source-importing GOROOT is slow")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Clean(filepath.Join(wd, "..", "..", ".."))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	l := NewLoader(root, "etap")
	pkg, err := l.Load("etap/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || pkg.Types.Name() != "core" {
		t.Fatalf("loaded package %v", pkg.Types)
	}
	// The loader must have pulled in the module-internal dependency.
	if _, err := l.Load("etap/internal/isa"); err != nil {
		t.Fatalf("cached dependency load: %v", err)
	}
	// Analyzers run cleanly over real type-checked code.
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{HotPath})
	if len(diags) != 0 {
		t.Fatalf("unexpected findings in core: %q", messages(diags))
	}
}
