package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader loads and type-checks packages of one module from source. It is
// module-aware just enough for a vet driver inside this repo: import
// paths under the module prefix resolve to module directories (and are
// themselves loaded from source, recursively), everything else is
// delegated to the standard library's source importer, which covers
// GOROOT. The repo has no external dependencies, so that closure is
// complete.
type Loader struct {
	// ModRoot is the filesystem root of the module (the directory holding
	// go.mod); ModPath its module path.
	ModRoot string
	ModPath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at modRoot for module modPath.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
	}
}

// Fset is the file set every loaded package shares.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load loads the package with the given import path (which must be the
// module path or below), parsing its non-test sources with comments and
// type-checking them. Results are cached per path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(path, l.ModPath)
	if rel == path && path != l.ModPath {
		return nil, fmt.Errorf("lint: import path %q is outside module %s", path, l.ModPath)
	}
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg, err := TypeCheck(path, l.fset, files, (*moduleImporter)(l))
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter adapts the loader into the types.Importer the checker
// calls back into for each import: module-internal paths load recursively,
// the rest go to the GOROOT source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
