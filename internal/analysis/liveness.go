package analysis

import (
	"fmt"

	"etap/internal/core"
	"etap/internal/isa"
)

// LiveInfo is the interprocedural register-liveness result for one
// program: for every instruction, the set of registers whose current
// value may still be read before being overwritten, observed at the
// program point immediately after that instruction retires — the exact
// point where the fault model XORs a bit into the destination register.
//
// The analysis runs backward over the supergraph formed by the
// per-function CFGs plus call and return edges:
//
//   - a block ending in jal flows the callee's entry liveness into the
//     call (a corrupted $ra is caught there: the callee's return needs
//     it), and the call's continuation liveness into the callee's
//     return set;
//   - a block ending in jr uses the function's return set — the union
//     of the continuation liveness of every static call site — which is
//     sound under the toolchain contract that jr only ever returns to
//     the continuation of a call of the containing function;
//   - a Return block whose last instruction is not jr (a terminal exit
//     syscall, or text that falls off the function end) leaves the CFG
//     in a way liveness cannot model, so everything is live there.
//
// Programs containing jalr (an indirect call the compiler never emits)
// make the call graph unknowable statically; for those the analysis
// degrades to the conservative answer: Precise is false and every
// LiveOut set is AllRegs.
type LiveInfo struct {
	Prog *isa.Program
	CFGs []*core.FuncCFG
	// LiveOut[i] is the live set immediately after instruction i retires.
	LiveOut []core.RegMask
	// BlockIn[f][b] is the live set at block b's entry in function f.
	BlockIn [][]core.RegMask
	// RetLive[f] is the live set at function f's jr exits: the union of
	// what every static caller still needs after the call returns.
	RetLive []core.RegMask
	// Precise reports whether the dataflow result is usable for
	// dead-destination reasoning. When false (Imprecision says why),
	// every LiveOut is AllRegs.
	Precise     bool
	Imprecision string
}

type liveState struct {
	prog        *isa.Program
	cfgs        []*core.FuncCFG
	entryToFunc map[int]int
	blockIn     [][]core.RegMask
	retLive     []core.RegMask
	liveOut     []core.RegMask
	changed     bool
}

// Liveness computes interprocedural register liveness for a validated
// program.
func Liveness(p *isa.Program) (*LiveInfo, error) {
	cfgs, err := core.BuildCFG(p)
	if err != nil {
		return nil, err
	}
	li := &LiveInfo{
		Prog:    p,
		CFGs:    cfgs,
		LiveOut: make([]core.RegMask, len(p.Text)),
		BlockIn: make([][]core.RegMask, len(p.Funcs)),
		RetLive: make([]core.RegMask, len(p.Funcs)),
		Precise: true,
	}
	for fi, cfg := range cfgs {
		li.BlockIn[fi] = make([]core.RegMask, len(cfg.Blocks))
	}
	for idx, in := range p.Text {
		if in.Op == isa.JALR {
			li.Precise = false
			li.Imprecision = fmt.Sprintf("instr %d (%s): indirect call makes the call graph unknowable", idx, isa.Disasm(in))
			break
		}
	}
	if !li.Precise {
		for i := range li.LiveOut {
			li.LiveOut[i] = AllRegs
		}
		for fi := range li.BlockIn {
			for bi := range li.BlockIn[fi] {
				li.BlockIn[fi][bi] = AllRegs
			}
			li.RetLive[fi] = AllRegs
		}
		return li, nil
	}

	entryToFunc := make(map[int]int, len(p.Funcs))
	totalBlocks := 0
	for fi, f := range p.Funcs {
		entryToFunc[f.Start] = fi
		totalBlocks += len(cfgs[fi].Blocks)
	}
	s := &liveState{
		prog:        p,
		cfgs:        cfgs,
		entryToFunc: entryToFunc,
		blockIn:     li.BlockIn,
		retLive:     li.RetLive,
		liveOut:     li.LiveOut,
	}

	// Round-robin backward sweeps to fixpoint. All sets only grow, so
	// the round count is bounded by the total number of set bits that
	// can ever be added (31 registers per tracked set) plus the final
	// no-change sweep.
	bound := 31*(totalBlocks+len(p.Funcs)) + 2
	for round := 0; ; round++ {
		if round > bound {
			return nil, fmt.Errorf("analysis: liveness fixpoint failed to converge")
		}
		s.changed = false
		for fi := len(cfgs) - 1; fi >= 0; fi-- {
			for bi := len(cfgs[fi].Blocks) - 1; bi >= 0; bi-- {
				in := s.walk(fi, bi, false)
				if in != s.blockIn[fi][bi] {
					s.blockIn[fi][bi] = in
					s.changed = true
				}
			}
		}
		if !s.changed {
			break
		}
	}
	// One recording pass over the converged state fills per-instruction
	// LiveOut; at fixpoint it cannot change anything.
	for fi := range cfgs {
		for bi := range cfgs[fi].Blocks {
			s.walk(fi, bi, true)
		}
	}
	return li, nil
}

// walk applies the backward transfer function over block bi of function
// fi starting from the block's live-out set and returns the block's
// live-in. With record set it also stores each instruction's live-out.
// Continuation liveness observed at calls grows the callee's return set
// (flagging s.changed), which is what makes the fixpoint
// interprocedural.
func (s *liveState) walk(fi, bi int, record bool) core.RegMask {
	cfg := s.cfgs[fi]
	b := cfg.Blocks[bi]
	p := s.prog
	var usesBuf [3]isa.Reg

	// succ is the liveness at the block's in-CFG continuation points; it
	// is also the post-return liveness a call made by this block resumes
	// into.
	succ := core.RegMask(0)
	for _, sb := range b.Succs {
		succ |= s.blockIn[fi][sb]
	}
	if b.Return {
		if p.Text[b.End-1].Op == isa.JR {
			succ |= s.retLive[fi]
		} else {
			// The block leaves the CFG without a return: a terminal
			// syscall that may be exit, or text falling off the function
			// end. Liveness cannot see past that point.
			succ |= AllRegs
		}
	}

	cur := succ
	for idx := b.End - 1; idx >= b.Start; idx-- {
		in := p.Text[idx]
		if in.Op == isa.JAL {
			// The CFG builder guarantees a call is its block's last
			// instruction and targets a function entry.
			callee := s.entryToFunc[int(in.Imm)]
			if nr := s.retLive[callee] | succ; nr != s.retLive[callee] {
				s.retLive[callee] = nr
				s.changed = true
			}
			// The point right after the jal retires is the callee's
			// entry: what the callee (transitively) reads is what is
			// live, including the just-written $ra.
			if len(s.cfgs[callee].Blocks) > 0 {
				cur = s.blockIn[callee][0]
			} else {
				cur = AllRegs
			}
			if record {
				s.liveOut[idx] = cur
			}
			cur &^= regBit(isa.RegRA)
			continue
		}
		if record {
			s.liveOut[idx] = cur
		}
		if d, ok := in.Dest(); ok {
			cur &^= regBit(d)
		}
		for _, u := range in.Uses(usesBuf[:0]) {
			cur |= regBit(u)
		}
	}
	return cur
}
