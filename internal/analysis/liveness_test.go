package analysis_test

import (
	"testing"

	"etap/internal/analysis"
	"etap/internal/asm"
	"etap/internal/isa"
)

func assemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func liveness(t *testing.T, src string) (*isa.Program, *analysis.LiveInfo) {
	t.Helper()
	p := assemble(t, src)
	li, err := analysis.Liveness(p)
	if err != nil {
		t.Fatalf("liveness: %v", err)
	}
	return p, li
}

// nthDef returns the text index of the n-th (0-based) instruction whose
// destination is r.
func nthDef(t *testing.T, p *isa.Program, r isa.Reg, n int) int {
	t.Helper()
	for idx, in := range p.Text {
		if d, ok := in.Dest(); ok && d == r {
			if n == 0 {
				return idx
			}
			n--
		}
	}
	t.Fatalf("no %d-th definition of %s", n, r)
	return -1
}

// firstOp returns the text index of the n-th instruction with opcode op.
func nthOp(t *testing.T, p *isa.Program, op isa.Op, n int) int {
	t.Helper()
	for idx, in := range p.Text {
		if in.Op == op {
			if n == 0 {
				return idx
			}
			n--
		}
	}
	t.Fatalf("no %d-th %s instruction", n, op)
	return -1
}

const deadWriteSrc = `
.text
.func __start
	li $t0, 1
	li $t1, 2
	li $t0, 3
	add $a0, $t0, $t1
	li $v0, 1
	syscall
.endfunc
`

// TestDeadWriteLiveness: a register rewritten before any read is dead at
// its first definition and live at its second.
func TestDeadWriteLiveness(t *testing.T) {
	p, li := liveness(t, deadWriteSrc)
	if !li.Precise {
		t.Fatalf("straight-line program imprecise: %s", li.Imprecision)
	}
	first := nthDef(t, p, isa.RegT0, 0)
	second := nthDef(t, p, isa.RegT0, 1)
	if li.LiveOut[first].Has(isa.RegT0) {
		t.Fatalf("instr %d: dead write of $t0 reported live (liveout %s)", first, li.LiveOut[first])
	}
	if !li.LiveOut[second].Has(isa.RegT0) {
		t.Fatalf("instr %d: $t0 feeds the add but is reported dead", second)
	}
	t1 := nthDef(t, p, isa.RegT0+1, 0)
	if !li.LiveOut[t1].Has(isa.RegT0 + 1) {
		t.Fatalf("instr %d: $t1 feeds the add but is reported dead", t1)
	}
}

const branchJoinSrc = `
.text
.func __start
	li $t0, 1
	li $t1, 7
	li $t2, 9
	bnez $t0, other
	move $a0, $t1
	j done
other:
	move $a0, $t2
done:
	li $v0, 1
	syscall
.endfunc
`

// TestBranchJoinLiveness: a value used on only one side of a branch is
// still live at the branch (path-insensitive must-dead).
func TestBranchJoinLiveness(t *testing.T) {
	p, li := liveness(t, branchJoinSrc)
	br := nthOp(t, p, isa.BNE, 0)
	for _, r := range []isa.Reg{isa.RegT0 + 1, isa.RegT0 + 2} {
		if !li.LiveOut[br].Has(r) {
			t.Fatalf("%s used on one branch arm but dead at the branch (liveout %s)", r, li.LiveOut[br])
		}
	}
}

const callSrc = `
.text
.func __start
	li $a0, 12
	li $s0, 5
	jal double
	add $a0, $v0, $s0
	li $v0, 1
	syscall
.endfunc
.func double
	add $v0, $a0, $a0
	jr $ra
.endfunc
`

// TestCallLiveness checks the interprocedural edges: the argument and
// the freshly written return address are live at the call (the callee
// reads both), a callee-preserved register used after the call is live
// across it, and the callee's result register is live at its definition
// because a caller consumes it.
func TestCallLiveness(t *testing.T) {
	p, li := liveness(t, callSrc)
	jal := nthOp(t, p, isa.JAL, 0)
	for _, r := range []isa.Reg{isa.RegA0, isa.RegRA, isa.RegS0} {
		if !li.LiveOut[jal].Has(r) {
			t.Fatalf("%s dead at call site (liveout %s)", r, li.LiveOut[jal])
		}
	}
	// The caller's argument setup is live-before-call; the point after
	// `li $a0` must carry $a0 (flows into the callee's entry).
	a0 := nthDef(t, p, isa.RegA0, 0)
	if !li.LiveOut[a0].Has(isa.RegA0) {
		t.Fatalf("argument $a0 dead after its definition")
	}
	// Inside the callee, $v0 is live after its definition: the return set
	// carries the caller's use.
	v0 := nthDef(t, p, isa.RegV0, 0)
	if !li.LiveOut[v0].Has(isa.RegV0) {
		t.Fatalf("callee result $v0 dead at definition; return liveness not propagated")
	}
	// And the jr itself: $v0 and $s0 survive the return.
	jr := nthOp(t, p, isa.JR, 0)
	if !li.LiveOut[jr].Has(isa.RegV0) || !li.LiveOut[jr].Has(isa.RegS0) {
		t.Fatalf("return liveness %s misses caller's continuation needs", li.LiveOut[jr])
	}
}

const jalrSrc = `
.text
.func __start
	li $t0, 0
	jalr $t1, $t0
	li $v0, 1
	syscall
.endfunc
`

// TestJALRDisablesPrecision: an indirect call makes the call graph
// unknowable, so liveness degrades to the conservative answer.
func TestJALRDisablesPrecision(t *testing.T) {
	_, li := liveness(t, jalrSrc)
	if li.Precise {
		t.Fatal("program with jalr reported precise liveness")
	}
	for idx, m := range li.LiveOut {
		if m != analysis.AllRegs {
			t.Fatalf("imprecise liveness must be all-live; instr %d has %s", idx, m)
		}
	}
}

// TestTerminalSyscallConservative: a block that leaves the CFG without a
// jr (the exit syscall falling off the function end) must treat
// everything as live past it.
func TestTerminalSyscallConservative(t *testing.T) {
	p, li := liveness(t, deadWriteSrc)
	sys := nthOp(t, p, isa.SYSCALL, 0)
	if li.LiveOut[sys] != analysis.AllRegs {
		t.Fatalf("terminal syscall liveout %s, want all-live", li.LiveOut[sys])
	}
}
