package analysis

import "etap/internal/isa"

// Classification is the static fault-site triage for one program: which
// text indices are provably Benign injection sites. A site is Benign
// when flipping any bit of its destination register immediately after
// writeback cannot change the execution:
//
//   - the instruction writes no register, or writes the zero register
//     (the simulator discards the flip outright — sink-redirected
//     destinations never carry a fault);
//   - or its destination is dead at the post-writeback point: on every
//     path the register is rewritten before being read, so the flipped
//     value is never observed (requires LiveInfo.Precise).
//
// Benignity is per-site, not per-bit: a dead register is dead in every
// bit lane. Soundness rests on the same toolchain CFG contract the rest
// of the repo assumes (jr only returns to a call continuation; functions
// are entered only at their entry); see docs/ANALYSIS.md for the full
// argument.
type Classification struct {
	Prog *isa.Program
	Live *LiveInfo
	// Benign[i] reports that any injection at text index i is provably
	// outcome-preserving.
	Benign []bool
	// Injectable and BenignInjectable count static sites under the
	// paper's fault model (result-writing arithmetic), for reporting.
	Injectable       int
	BenignInjectable int
}

// Classify computes the static Benign classification for a validated
// program.
func Classify(p *isa.Program) (*Classification, error) {
	li, err := Liveness(p)
	if err != nil {
		return nil, err
	}
	c := &Classification{
		Prog:   p,
		Live:   li,
		Benign: make([]bool, len(p.Text)),
	}
	for idx, in := range p.Text {
		d, ok := in.Dest()
		switch {
		case !ok || d == isa.RegZero:
			c.Benign[idx] = true
		case li.Precise && !li.LiveOut[idx].Has(d):
			c.Benign[idx] = true
		}
		if in.IsInjectable() {
			c.Injectable++
			if c.Benign[idx] {
				c.BenignInjectable++
			}
		}
	}
	return c, nil
}

// BenignFraction is the benign share of the static injectable sites.
func (c *Classification) BenignFraction() float64 {
	if c.Injectable == 0 {
		return 0
	}
	return float64(c.BenignInjectable) / float64(c.Injectable)
}
