package analysis_test

import (
	"testing"

	"etap/internal/analysis"
	"etap/internal/apps/all"
	"etap/internal/isa"
	"etap/internal/minic"
)

func classify(t *testing.T, src string) (*isa.Program, *analysis.Classification) {
	t.Helper()
	p := assemble(t, src)
	c, err := analysis.Classify(p)
	if err != nil {
		t.Fatalf("classify: %v", err)
	}
	return p, c
}

// TestClassifyDeadDest: a flip into a register that is rewritten before
// any read cannot change the architectural outcome, so the site is
// statically benign; the live rewrite is not.
func TestClassifyDeadDest(t *testing.T) {
	p, c := classify(t, deadWriteSrc)
	dead := nthDef(t, p, isa.RegT0, 0)
	live := nthDef(t, p, isa.RegT0, 1)
	if !c.Benign[dead] {
		t.Fatalf("instr %d: dead-destination site not classified benign", dead)
	}
	if c.Benign[live] {
		t.Fatalf("instr %d: live-destination site classified benign", live)
	}
	if c.Injectable == 0 || c.BenignInjectable == 0 {
		t.Fatalf("counters: injectable=%d benign=%d", c.Injectable, c.BenignInjectable)
	}
	if f := c.BenignFraction(); f <= 0 || f >= 1 {
		t.Fatalf("benign fraction %v out of (0,1)", f)
	}
}

const zeroSinkSrc = `
.text
.func __start
	li $t0, 3
	add $zero, $t0, $t0
	sw $t0, 0x200($zero)
	li $t1, 0
	jalr $t2, $t1
	li $v0, 1
	syscall
.endfunc
`

// TestClassifyZeroAndNoDest: sites whose destination is the hardwired
// $zero sink, and sites with no destination at all, are benign even when
// liveness is imprecise — the simulator discards the flip before it can
// be observed. The jalr here forces the imprecise path, making this the
// regression for sink-redirected destinations being pruned without a
// trial.
func TestClassifyZeroAndNoDest(t *testing.T) {
	p, c := classify(t, zeroSinkSrc)
	if c.Live.Precise {
		t.Fatal("jalr program unexpectedly precise")
	}
	zeroDest := nthOp(t, p, isa.ADD, 0)
	if d, ok := p.Text[zeroDest].Dest(); !ok || d != isa.RegZero {
		t.Fatalf("instr %d is not the $zero-destination add", zeroDest)
	}
	if !c.Benign[zeroDest] {
		t.Fatal("$zero-destination site not classified benign under imprecise liveness")
	}
	store := nthOp(t, p, isa.SW, 0)
	if !c.Benign[store] {
		t.Fatal("destination-less store not classified benign")
	}
	// Anything with a real destination must stay non-benign when imprecise.
	t0 := nthDef(t, p, isa.RegT0, 0)
	if c.Benign[t0] {
		t.Fatal("real-destination site classified benign under imprecise liveness")
	}
}

// TestClassifyApps smoke-checks classification over all seven benchmark
// programs: the compiler never emits jalr so every program is precise,
// some sites are injectable, and every benign injectable site is indeed
// dead at its destination.
func TestClassifyApps(t *testing.T) {
	names := all.Names()
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			a, ok := all.ByName(name)
			if !ok {
				t.Fatalf("unknown app %s", name)
			}
			prog, err := minic.Build(a.Source())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			c, err := analysis.Classify(prog)
			if err != nil {
				t.Fatalf("classify: %v", err)
			}
			if !c.Live.Precise {
				t.Fatalf("compiled program imprecise: %s", c.Live.Imprecision)
			}
			if c.Injectable == 0 {
				t.Fatal("no injectable sites")
			}
			benign := 0
			for idx, in := range prog.Text {
				if !c.Benign[idx] {
					continue
				}
				benign++
				d, ok := in.Dest()
				if !ok || d == isa.RegZero {
					continue
				}
				if c.Live.LiveOut[idx].Has(d) {
					t.Fatalf("instr %d: benign site writes live register %s", idx, d)
				}
			}
			t.Logf("%s: %d/%d text sites benign (%.1f%% of injectable)",
				name, benign, len(prog.Text), 100*c.BenignFraction())
		})
	}
}
