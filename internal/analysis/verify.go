package analysis

import (
	"fmt"

	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/isa"
)

// Verification is the result of statically checking a hardened program
// against the protection contract its transforms promise.
type Verification struct {
	Policy core.Policy
	Opts   harden.Options

	// SigBlocks is the number of basic blocks whose signature prologue
	// parsed and verified; SigChecked of those carry a full
	// predecessor-check form (the rest re-synchronize).
	SigBlocks  int
	SigChecked int
	// DupChecks is the number of verified compare-against-shadow triples;
	// DupSites is the number of verified duplicated computations.
	DupChecks int
	DupSites  int

	// Violations lists every place the program fails the contract. Empty
	// means the program verifies.
	Violations []string
}

// OK reports whether the program satisfies the full protection contract.
func (v *Verification) OK() bool { return len(v.Violations) == 0 }

const maxViolations = 64

func (v *Verification) addf(format string, args ...any) {
	if len(v.Violations) < maxViolations {
		v.Violations = append(v.Violations, fmt.Sprintf(format, args...))
	}
}

// sigEvent is one parsed signature prologue in the hardened text.
type sigEvent struct {
	start   int  // hardened index of the prologue's first instruction
	install int  // hardened index of the "addi $k0, $zero, sig" install
	check   bool // full predecessor-check form (vs. resync)
	sig     int32
	preds   []int32 // accepted predecessor signatures (check form)
	bad     bool    // the event failed to parse; details already reported
}

// sigOf mirrors the rewriter's compile-time signature assignment. The
// verifier recomputes it independently so a rewriter that mis-numbers
// blocks cannot vouch for itself.
func sigOf(fi, bi int) int32 { return 0x51<<24 | int32(fi)<<12 | int32(bi) }

// Verify statically checks a hardened program: under Signatures, every
// basic block of the original program must carry a correctly chained
// CFCSS prologue (legal-predecessor check or resync, matching the block's
// position in the CFG) and every copied branch must land exactly on the
// target block's prologue; under DupCompare, every policy-covered use
// site must be guarded by a dominating compare-against-shadow triple and
// every control-slice computation must have its shadow duplicate.
//
// The returned error reports structural problems (the result does not
// describe a coherent rewrite); contract failures land in
// Verification.Violations.
func Verify(res *harden.Result) (*Verification, error) {
	if res == nil || res.Prog == nil || res.Orig == nil {
		return nil, fmt.Errorf("analysis: nil harden result")
	}
	if len(res.OrigOf) != len(res.Prog.Text) || len(res.NewOf) != len(res.Orig.Text) {
		return nil, fmt.Errorf("analysis: harden result maps do not match program sizes")
	}
	origCFGs, err := core.BuildCFG(res.Orig)
	if err != nil {
		return nil, fmt.Errorf("analysis: original program: %w", err)
	}
	v := &Verification{Policy: res.Policy, Opts: res.Opts}
	if res.Opts.Signatures {
		v.verifySignatures(res, origCFGs)
	}
	if res.Opts.DupCompare {
		if err := v.verifyDup(res); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// verifySignatures parses every signature prologue out of the hardened
// text and checks chaining, placement and branch targeting against the
// original CFG.
func (v *Verification) verifySignatures(res *harden.Result, origCFGs []*core.FuncCFG) {
	h := res.Prog
	seenSig := make(map[int32]string)
	// hardenedStart[fi] maps block index to the hardened index a branch
	// into that block must target.
	hardenedStart := make([]map[int]int, len(h.Funcs))

	for fi, cfg := range origCFGs {
		events := v.parseSigEvents(res, h.Funcs[fi])
		if len(events) != len(cfg.Blocks) {
			v.addf("%s: %d signature prologues for %d basic blocks", cfg.Func.Name, len(events), len(cfg.Blocks))
			continue
		}
		preds, callCont := blockPreds(res.Orig, cfg)
		hardenedStart[fi] = make(map[int]int, len(cfg.Blocks))
		for bi, ev := range events {
			if bi == 0 {
				// Function entries may be preceded by inserted seed code
				// (the entry $sp shadow refresh), so calls and the reset pc
				// target the function start, not the prologue.
				hardenedStart[fi][bi] = h.Funcs[fi].Start
			} else {
				hardenedStart[fi][bi] = ev.start
			}
			if ev.bad {
				continue
			}
			v.SigBlocks++
			want := sigOf(fi, bi)
			if ev.sig != want {
				v.addf("%s block %d: installs signature %#x, want %#x", cfg.Func.Name, bi, ev.sig, want)
			}
			if prev, dup := seenSig[ev.sig]; dup {
				v.addf("%s block %d: signature %#x already used by %s", cfg.Func.Name, bi, ev.sig, prev)
			}
			seenSig[ev.sig] = fmt.Sprintf("%s block %d", cfg.Func.Name, bi)

			wantResync := bi == 0 || callCont[bi] || len(preds[bi]) == 0
			if wantResync && ev.check {
				v.addf("%s block %d: has a predecessor check but must resync (entry/call continuation)", cfg.Func.Name, bi)
				continue
			}
			if !wantResync && !ev.check {
				v.addf("%s block %d: resyncs without checking its %d predecessors", cfg.Func.Name, bi, len(preds[bi]))
				continue
			}
			if ev.check {
				v.SigChecked++
				wantPreds := make(map[int32]bool, len(preds[bi]))
				for _, p := range preds[bi] {
					wantPreds[sigOf(fi, p)] = true
				}
				got := make(map[int32]bool, len(ev.preds))
				for _, s := range ev.preds {
					got[s] = true
				}
				for s := range wantPreds {
					if !got[s] {
						v.addf("%s block %d: predecessor signature %#x not accepted", cfg.Func.Name, bi, s)
					}
				}
				for s := range got {
					if !wantPreds[s] {
						v.addf("%s block %d: accepts signature %#x of a non-predecessor", cfg.Func.Name, bi, s)
					}
				}
			}
		}
	}
	if v.SigBlocks != res.SigBlocks && len(v.Violations) == 0 {
		v.addf("verified %d signature blocks but the rewrite reports %d", v.SigBlocks, res.SigBlocks)
	}
	v.verifyBranchTargets(res, origCFGs, hardenedStart)
}

// parseSigEvents scans one hardened function linearly for signature
// prologues. Both forms are anchored on unmistakable instructions — a
// load from or store to SigAddr via $k0, which no other inserted or
// copied code produces — so a stripped or mangled prologue surfaces as a
// missing or malformed event.
func (v *Verification) parseSigEvents(res *harden.Result, f isa.FuncInfo) []sigEvent {
	h := res.Prog.Text
	var events []sigEvent
	inserted := func(i int) bool { return res.OrigOf[i] < 0 }
	for i := f.Start; i < f.End; i++ {
		in := h[i]
		switch {
		case in.Op == isa.LW && in.Rd == isa.RegK0 && in.Rs == isa.RegZero && in.Imm == int32(harden.SigAddr):
			// Check form: lw; (addi $k1; beq)+; trapdet; addi $k0; sw.
			ev := sigEvent{start: i, check: true}
			j := i + 1
			var beqTargets []int32
			for j+1 < f.End && h[j].Op == isa.ADDI && h[j].Rd == isa.RegK1 && h[j].Rs == isa.RegZero &&
				h[j+1].Op == isa.BEQ && h[j+1].Rs == isa.RegK0 && h[j+1].Rt == isa.RegK1 {
				ev.preds = append(ev.preds, h[j].Imm)
				beqTargets = append(beqTargets, h[j+1].Imm)
				j += 2
			}
			ok := len(ev.preds) > 0 &&
				j+2 < f.End &&
				h[j].Op == isa.TRAPDET && res.TrapKinds[j] == harden.CheckCFS &&
				h[j+1].Op == isa.ADDI && h[j+1].Rd == isa.RegK0 && h[j+1].Rs == isa.RegZero &&
				h[j+2].Op == isa.SW && h[j+2].Rt == isa.RegK0 && h[j+2].Rs == isa.RegZero && h[j+2].Imm == int32(harden.SigAddr)
			if !ok {
				v.addf("%s: malformed signature check at hardened instr %d", f.Name, i)
				events = append(events, sigEvent{start: i, bad: true})
				i = j
				continue
			}
			ev.install = j + 1
			ev.sig = h[j+1].Imm
			for _, t := range beqTargets {
				if int(t) != ev.install {
					v.addf("%s: signature check at %d skips to %d, want %d", f.Name, i, t, ev.install)
					ev.bad = true
				}
			}
			for k := i; k <= j+2; k++ {
				if !inserted(k) {
					v.addf("%s: signature code at %d is attributed to an original instruction", f.Name, k)
					ev.bad = true
				}
			}
			events = append(events, ev)
			i = j + 2

		case in.Op == isa.ADDI && in.Rd == isa.RegK0 && in.Rs == isa.RegZero &&
			i+1 < f.End && h[i+1].Op == isa.SW && h[i+1].Rt == isa.RegK0 && h[i+1].Rs == isa.RegZero && h[i+1].Imm == int32(harden.SigAddr):
			// Resync form: addi $k0, $zero, sig; sw $k0, SigAddr($zero).
			if !inserted(i) || !inserted(i+1) {
				v.addf("%s: signature resync at %d is attributed to an original instruction", f.Name, i)
			}
			events = append(events, sigEvent{start: i, install: i, sig: in.Imm})
			i++
		}
	}
	return events
}

// verifyBranchTargets checks that every copied branch, jump and call in
// the hardened program lands exactly where the signature chain expects:
// block targets on the target block's prologue, calls on the callee's
// entry. A fixup pass that skipped an instruction — leaving a branch
// into the middle of a block, past its signature check — is a chaining
// escape and is reported.
func (v *Verification) verifyBranchTargets(res *harden.Result, origCFGs []*core.FuncCFG, hardenedStart []map[int]int) {
	orig := res.Orig
	entryToFunc := make(map[int]int, len(orig.Funcs))
	funcOf := make([]int, len(orig.Text))
	for fi, f := range orig.Funcs {
		entryToFunc[f.Start] = fi
		for i := f.Start; i < f.End; i++ {
			funcOf[i] = fi
		}
	}
	for i, in := range res.Prog.Text {
		oi := res.OrigOf[i]
		if oi < 0 {
			continue
		}
		origTarget := int(orig.Text[oi].Imm)
		var want int
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ, isa.J:
			tfi := funcOf[origTarget]
			tbi, ok := origCFGs[tfi].BlockAt(origTarget)
			if !ok || origCFGs[tfi].Blocks[tbi].Start != origTarget {
				v.addf("hardened instr %d: original target %d is not a block leader", i, origTarget)
				continue
			}
			if hardenedStart[tfi] == nil {
				continue // block map unavailable (prologue count mismatch already reported)
			}
			want = hardenedStart[tfi][tbi]
		case isa.JAL:
			want = res.Prog.Funcs[entryToFunc[origTarget]].Start
		default:
			continue
		}
		if int(in.Imm) != want {
			v.addf("hardened instr %d (%s): targets %d, bypassing the signature prologue at %d",
				i, isa.Disasm(in), in.Imm, want)
		}
	}
}

// requiredChecks mirrors the rewriter's policy-dependent compare set for
// one original instruction: which registers must be compared against
// their shadows immediately before it runs. The zero register never
// needs a check.
func requiredChecks(in isa.Instr, pol core.Policy) []isa.Reg {
	var regs []isa.Reg
	add := func(r isa.Reg) {
		if r == isa.RegZero {
			return
		}
		for _, have := range regs {
			if have == r {
				return
			}
		}
		regs = append(regs, r)
	}
	switch in.Op {
	case isa.DIV, isa.REM:
		add(in.Rt)
	case isa.BEQ, isa.BNE:
		add(in.Rs)
		add(in.Rt)
	case isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
		add(in.Rs)
	case isa.JR, isa.JALR:
		add(in.Rs)
	case isa.SYSCALL:
		add(isa.RegV0)
		add(isa.RegA0)
		add(isa.RegA1)
	}
	switch in.Class() {
	case isa.ClassLoad:
		if pol >= core.PolicyControlAddr {
			add(in.Rs)
		}
	case isa.ClassStore:
		if pol >= core.PolicyControlAddr {
			add(in.Rs)
		}
		if pol >= core.PolicyConservative {
			add(in.Rt)
		}
	}
	return regs
}

func shadowAddr(r isa.Reg) int32 { return int32(harden.ShadowBase) + 4*int32(r) }

// verifyDup checks the duplicate-and-compare contract: every original
// instruction's expansion carries exactly the policy-required
// compare-against-shadow triples, each triple dominates the primary it
// guards in the hardened CFG, and every control-slice arithmetic
// instruction has its shadow recomputation.
func (v *Verification) verifyDup(res *harden.Result) error {
	rep, err := core.Analyze(res.Orig, res.Policy)
	if err != nil {
		return fmt.Errorf("analysis: re-analyzing original: %w", err)
	}
	protected := rep.ProtectedSites()
	h := res.Prog.Text

	hCFGs, err := core.BuildCFG(res.Prog)
	if err != nil {
		v.addf("hardened program has no valid CFG: %v", err)
		hCFGs = nil
	}
	hFuncOf := make([]int, len(h))
	for fi, f := range res.Prog.Funcs {
		for i := f.Start; i < f.End; i++ {
			hFuncOf[i] = fi
		}
	}
	doms := make([]*DomTree, len(res.Prog.Funcs))

	// dominates reports whether hardened instruction a dominates b.
	dominates := func(a, b int) bool {
		if hCFGs == nil {
			return true // already reported; avoid cascading noise
		}
		fi := hFuncOf[a]
		if fi != hFuncOf[b] {
			return false
		}
		if doms[fi] == nil {
			doms[fi] = Dominators(hCFGs[fi])
		}
		ba, okA := hCFGs[fi].BlockAt(a)
		bb, okB := hCFGs[fi].BlockAt(b)
		if !okA || !okB {
			return false
		}
		if ba == bb {
			return a <= b
		}
		return doms[fi].Dominates(ba, bb)
	}

	prevPrimary := -1
	for oi, in := range res.Orig.Text {
		pi := res.NewOf[oi]
		// The expansion window: everything emitted after the previous
		// primary and before this one — the previous instruction's
		// trailing refresh/mirror code, this block's prologue if oi leads
		// it, and this instruction's checks and shadow compute. Dup-check
		// triples in the window belong to oi by construction (trailing
		// code and signature prologues contain none).
		var got []isa.Reg
		hasShadowStore := false
		var wantShadow int32
		if protected[oi] {
			wantShadow = shadowAddr(in.Rd)
		}
		for j := prevPrimary + 1; j < pi; j++ {
			if res.OrigOf[j] >= 0 {
				v.addf("original instr %d: expansion window contains copied instruction at %d", oi, j)
				continue
			}
			if j+2 < pi &&
				h[j].Op == isa.LW && h[j].Rd == isa.RegK0 && h[j].Rs == isa.RegZero &&
				h[j+1].Op == isa.BEQ && h[j+1].Rs == isa.RegK0 &&
				h[j+2].Op == isa.TRAPDET && res.TrapKinds[j+2] == harden.CheckDup {
				r := h[j+1].Rt
				if h[j].Imm != shadowAddr(r) {
					v.addf("original instr %d: check at %d compares %s against shadow slot %#x", oi, j, r, h[j].Imm)
				}
				if int(h[j+1].Imm) != j+3 {
					v.addf("original instr %d: check at %d skips to %d, want %d", oi, j, h[j+1].Imm, j+3)
				}
				if !dominates(j+1, pi) {
					v.addf("original instr %d: check of %s at %d does not dominate its use at %d", oi, r, j, pi)
				}
				got = append(got, r)
				v.DupChecks++
				j += 2
				continue
			}
			if protected[oi] && h[j].Op == isa.SW && h[j].Rt == isa.RegK0 && h[j].Rs == isa.RegZero && h[j].Imm == wantShadow {
				hasShadowStore = true
			}
		}
		want := requiredChecks(in, res.Policy)
		if len(got) != len(want) {
			v.addf("original instr %d (%s): %d shadow checks, want %d", oi, isa.Disasm(in), len(got), len(want))
		} else {
			for k := range want {
				if got[k] != want[k] {
					v.addf("original instr %d (%s): check %d compares %s, want %s", oi, isa.Disasm(in), k, got[k], want[k])
				}
			}
		}
		if protected[oi] {
			if hasShadowStore {
				v.DupSites++
			} else {
				v.addf("original instr %d (%s): control-slice computation has no shadow duplicate", oi, isa.Disasm(in))
			}
		}
		prevPrimary = pi
	}
	if v.DupChecks != res.Checks && len(v.Violations) == 0 {
		v.addf("verified %d shadow checks but the rewrite reports %d", v.DupChecks, res.Checks)
	}
	if v.DupSites != res.DupSites && len(v.Violations) == 0 {
		v.addf("verified %d duplicated sites but the rewrite reports %d", v.DupSites, res.DupSites)
	}
	return nil
}

// blockPreds mirrors the rewriter's predecessor computation: the
// deduplicated intra-procedural predecessor list per block, and whether
// the block is a call continuation (some predecessor ends in a call).
func blockPreds(p *isa.Program, cfg *core.FuncCFG) (preds [][]int, callCont []bool) {
	preds = make([][]int, len(cfg.Blocks))
	callCont = make([]bool, len(cfg.Blocks))
	for pb, blk := range cfg.Blocks {
		last := p.Text[blk.End-1]
		isCall := last.Op == isa.JAL || last.Op == isa.JALR
		for _, s := range blk.Succs {
			seen := false
			for _, have := range preds[s] {
				if have == pb {
					seen = true
					break
				}
			}
			if !seen {
				preds[s] = append(preds[s], pb)
			}
			if isCall {
				callCont[s] = true
			}
		}
	}
	return preds, callCont
}
