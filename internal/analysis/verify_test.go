package analysis_test

import (
	"strings"
	"testing"

	"etap/internal/analysis"
	"etap/internal/apps/all"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/isa"
	"etap/internal/minic"
)

// sumSrc and callSrc2 mirror the harden package's own test programs: a
// protected loop, and calls/spills/reloads followed by a loop so the
// signature scheme has full predecessor-checking blocks.
const sumSrc = `
.text
.func __start
	li $t5, 0
	li $t6, 0
loop:
	add $t6, $t6, $t5
	addi $t5, $t5, 1
	slti $at, $t5, 100
	bnez $at, loop
	move $a0, $t6
	li $v0, 1
	syscall
.endfunc
`

const callSrc2 = `
.text
.func __start
	li $a0, 12
	jal double
	move $a0, $v0
	jal double
	move $a0, $v0
	li $t5, 0
acc:
	addi $a0, $a0, 2
	addi $t5, $t5, 1
	slti $at, $t5, 8
	bnez $at, acc
	li $v0, 1
	syscall
.endfunc
.func double
	addi $sp, $sp, -8
	sw $ra, 0($sp)
	sw $s0, 4($sp)
	move $s0, $a0
	add $v0, $s0, $s0
	lw $s0, 4($sp)
	lw $ra, 0($sp)
	addi $sp, $sp, 8
	jr $ra
.endfunc
`

func hardenSrc(t *testing.T, src string, pol core.Policy, opts harden.Options) *harden.Result {
	t.Helper()
	p := assemble(t, src)
	rep, err := core.Analyze(p, pol)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	res, err := harden.Harden(rep, opts)
	if err != nil {
		t.Fatalf("harden: %v", err)
	}
	return res
}

func verify(t *testing.T, res *harden.Result) *analysis.Verification {
	t.Helper()
	v, err := analysis.Verify(res)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return v
}

// TestVerifyShippedTransforms: every transform the rewriter ships, over
// every policy, must satisfy its own contract on the handcrafted
// programs.
func TestVerifyShippedTransforms(t *testing.T) {
	for _, src := range []string{sumSrc, callSrc2} {
		for _, pol := range []core.Policy{core.PolicyControl, core.PolicyControlAddr, core.PolicyConservative} {
			for _, opts := range []harden.Options{harden.DefaultOptions(), {DupCompare: true}, {Signatures: true}} {
				res := hardenSrc(t, src, pol, opts)
				v := verify(t, res)
				if !v.OK() {
					t.Fatalf("%s/%+v: shipped transform fails verification:\n%s",
						pol, opts, strings.Join(v.Violations, "\n"))
				}
				if opts.Signatures && (v.SigBlocks == 0 || v.SigBlocks != res.SigBlocks) {
					t.Fatalf("%s/%+v: verified %d signature blocks, rewrite reports %d", pol, opts, v.SigBlocks, res.SigBlocks)
				}
				if opts.DupCompare && (v.DupChecks != res.Checks || v.DupSites != res.DupSites) {
					t.Fatalf("%s/%+v: verified checks/sites %d/%d, rewrite reports %d/%d",
						pol, opts, v.DupChecks, v.DupSites, res.Checks, res.DupSites)
				}
			}
		}
	}
}

// TestVerifyApps: the full transform on all seven benchmark programs
// verifies, and the loop-bearing ones exercise the predecessor-checking
// signature form.
func TestVerifyApps(t *testing.T) {
	names := all.Names()
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			a, ok := all.ByName(name)
			if !ok {
				t.Fatalf("unknown app %s", name)
			}
			prog, err := minic.Build(a.Source())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			rep, err := core.Analyze(prog, core.PolicyControlAddr)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			res, err := harden.Harden(rep, harden.DefaultOptions())
			if err != nil {
				t.Fatalf("harden: %v", err)
			}
			v := verify(t, res)
			if !v.OK() {
				t.Fatalf("hardened %s fails verification:\n%s", name, strings.Join(v.Violations, "\n"))
			}
			if v.SigChecked == 0 {
				t.Fatalf("%s: no full predecessor-check prologues verified", name)
			}
			if v.DupChecks == 0 || v.DupSites == 0 {
				t.Fatalf("%s: dup contract vacuous (checks=%d sites=%d)", name, v.DupChecks, v.DupSites)
			}
		})
	}
}

// mutate returns a deep-enough copy of res that tests can corrupt the
// hardened text without touching the original result.
func mutate(res *harden.Result) *harden.Result {
	c := *res
	p := *res.Prog
	p.Text = append([]isa.Instr(nil), res.Prog.Text...)
	c.Prog = &p
	return &c
}

// trapIndex finds the lowest hardened index holding a trapdet of the
// given kind.
func trapIndex(t *testing.T, res *harden.Result, kind harden.CheckKind) int {
	t.Helper()
	best := -1
	for i, k := range res.TrapKinds {
		if k == kind && res.Prog.Text[i].Op == isa.TRAPDET && (best < 0 || i < best) {
			best = i
		}
	}
	if best < 0 {
		t.Fatalf("no %v trapdet in hardened program", kind)
	}
	return best
}

// TestVerifyCatchesStrippedSignatureCheck: replacing a CFCSS trapdet
// with a nop breaks the prologue parse and must be reported.
func TestVerifyCatchesStrippedSignatureCheck(t *testing.T) {
	res := hardenSrc(t, sumSrc, core.PolicyControlAddr, harden.DefaultOptions())
	m := mutate(res)
	m.Prog.Text[trapIndex(t, res, harden.CheckCFS)] = isa.Instr{Op: isa.NOP}
	if v := verify(t, m); v.OK() {
		t.Fatal("signature-stripped program still verifies")
	}
}

// TestVerifyCatchesStrippedResync: nopping out a resync install pair
// leaves a basic block with no signature prologue at all.
func TestVerifyCatchesStrippedResync(t *testing.T) {
	res := hardenSrc(t, callSrc2, core.PolicyControlAddr, harden.Options{Signatures: true})
	m := mutate(res)
	found := false
	h := m.Prog.Text
	for i := 0; i+1 < len(h) && !found; i++ {
		if h[i].Op == isa.ADDI && h[i].Rd == isa.RegK0 && h[i].Rs == isa.RegZero &&
			h[i+1].Op == isa.SW && h[i+1].Rt == isa.RegK0 && h[i+1].Rs == isa.RegZero &&
			h[i+1].Imm == int32(harden.SigAddr) {
			h[i] = isa.Instr{Op: isa.NOP}
			h[i+1] = isa.Instr{Op: isa.NOP}
			found = true
		}
	}
	if !found {
		t.Fatal("no resync prologue found to strip")
	}
	if v := verify(t, m); v.OK() {
		t.Fatal("resync-stripped program still verifies")
	}
}

// TestVerifyCatchesStrippedDupCheck: removing one compare-against-shadow
// triple leaves a policy-covered use unguarded.
func TestVerifyCatchesStrippedDupCheck(t *testing.T) {
	res := hardenSrc(t, sumSrc, core.PolicyControlAddr, harden.Options{DupCompare: true})
	m := mutate(res)
	ti := trapIndex(t, res, harden.CheckDup)
	// The triple is lw/beq/trapdet ending at ti.
	for i := ti - 2; i <= ti; i++ {
		m.Prog.Text[i] = isa.Instr{Op: isa.NOP}
	}
	if v := verify(t, m); v.OK() {
		t.Fatal("dup-check-stripped program still verifies")
	}
}

// TestVerifyCatchesRetargetedBranch: bending a copied branch past its
// target block's signature prologue is a chaining escape.
func TestVerifyCatchesRetargetedBranch(t *testing.T) {
	res := hardenSrc(t, sumSrc, core.PolicyControlAddr, harden.Options{Signatures: true})
	m := mutate(res)
	found := false
	for i, in := range m.Prog.Text {
		if m.OrigOf[i] >= 0 && in.Op == isa.BNE {
			m.Prog.Text[i].Imm++
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no copied branch found to retarget")
	}
	if v := verify(t, m); v.OK() {
		t.Fatal("retargeted-branch program still verifies")
	}
}

// TestVerifyCatchesMissingShadowStore: a protected computation whose
// shadow write is stripped no longer duplicates into its shadow slot.
func TestVerifyCatchesMissingShadowStore(t *testing.T) {
	res := hardenSrc(t, sumSrc, core.PolicyControlAddr, harden.Options{DupCompare: true})
	rep, err := core.Analyze(res.Orig, res.Policy)
	if err != nil {
		t.Fatal(err)
	}
	protected := rep.ProtectedSites()
	m := mutate(res)
	found := false
	for oi := range res.Orig.Text {
		if !protected[oi] {
			continue
		}
		want := int32(harden.ShadowBase) + 4*int32(res.Orig.Text[oi].Rd)
		// The shadow compute-and-store precedes the primary copy in its
		// expansion window.
		for j := res.NewOf[oi] - 1; j >= 0 && m.OrigOf[j] < 0; j-- {
			in := m.Prog.Text[j]
			if in.Op == isa.SW && in.Rt == isa.RegK0 && in.Rs == isa.RegZero && in.Imm == want {
				m.Prog.Text[j] = isa.Instr{Op: isa.NOP}
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no shadow store found to strip")
	}
	if v := verify(t, m); v.OK() {
		t.Fatal("shadow-store-stripped program still verifies")
	}
}
