// Package adpcm is the paper's ADPCM benchmark: the IMA/DVI ADPCM
// encode/decode pair from Jack Jansen's adpcm.c, as shipped in MiBench.
// 16-bit PCM samples are compressed 4:1 to 4-bit codes and decompressed
// again; the fidelity measure is the percentage of output bytes that match
// the fault-free output (the paper's "% similarity of the output PCM
// data"), because the benchmark does not separate header and data and its
// output is not directly a playable file.
package adpcm

import (
	"encoding/binary"
	"fmt"
	"math"

	"etap/internal/apps"
	"etap/internal/fidelity"
)

// NumSamples is the synthetic speech-sample length.
const NumSamples = 4000

// stepsizeTable is the IMA ADPCM step size table (89 entries).
var stepsizeTable = [89]int32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// indexTable is the IMA index adjustment table.
var indexTable = [16]int32{
	-1, -1, -1, -1, 2, 4, 6, 8,
	-1, -1, -1, -1, 2, 4, 6, 8,
}

// EncodeIMA compresses 16-bit samples to 4-bit IMA codes, two per byte,
// high nibble first (Jansen's packing).
func EncodeIMA(samples []int16) []byte {
	out := make([]byte, 0, (len(samples)+1)/2)
	var valpred, index, outputbuffer int32
	step := stepsizeTable[0]
	bufferstep := true
	for _, s := range samples {
		val := int32(s)
		diff := val - valpred
		var sign int32
		if diff < 0 {
			sign = 8
			diff = -diff
		}
		var delta int32
		vpdiff := step >> 3
		if diff >= step {
			delta = 4
			diff -= step
			vpdiff += step
		}
		step >>= 1
		if diff >= step {
			delta |= 2
			diff -= step
			vpdiff += step
		}
		step >>= 1
		if diff >= step {
			delta |= 1
			vpdiff += step
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		if valpred > 32767 {
			valpred = 32767
		} else if valpred < -32768 {
			valpred = -32768
		}
		delta |= sign
		index += indexTable[delta]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		step = stepsizeTable[index]
		if bufferstep {
			outputbuffer = (delta << 4) & 0xf0
		} else {
			out = append(out, byte((delta&0x0f)|outputbuffer))
		}
		bufferstep = !bufferstep
	}
	if !bufferstep {
		out = append(out, byte(outputbuffer))
	}
	return out
}

// DecodeIMA expands n samples from IMA codes.
func DecodeIMA(codes []byte, n int) []int16 {
	out := make([]int16, 0, n)
	var valpred, index, inputbuffer int32
	step := stepsizeTable[0]
	bufferstep := false
	pos := 0
	for i := 0; i < n; i++ {
		var delta int32
		if bufferstep {
			delta = inputbuffer & 0xf
		} else {
			if pos >= len(codes) {
				break
			}
			inputbuffer = int32(codes[pos])
			pos++
			delta = (inputbuffer >> 4) & 0xf
		}
		bufferstep = !bufferstep
		index += indexTable[delta]
		if index < 0 {
			index = 0
		}
		if index > 88 {
			index = 88
		}
		sign := delta & 8
		delta &= 7
		vpdiff := step >> 3
		if delta&4 != 0 {
			vpdiff += step
		}
		if delta&2 != 0 {
			vpdiff += step >> 1
		}
		if delta&1 != 0 {
			vpdiff += step >> 2
		}
		if sign != 0 {
			valpred -= vpdiff
		} else {
			valpred += vpdiff
		}
		if valpred > 32767 {
			valpred = 32767
		} else if valpred < -32768 {
			valpred = -32768
		}
		step = stepsizeTable[index]
		out = append(out, int16(valpred))
	}
	return out
}

// Speech generates the deterministic speech-like test signal: two tones
// with slow envelopes plus low-level deterministic noise.
func Speech(n int) []int16 {
	out := make([]int16, n)
	lcg := uint32(0x2545F491)
	for i := 0; i < n; i++ {
		t := float64(i) / 8000.0
		env1 := 0.5 + 0.5*math.Sin(2*math.Pi*3.1*t)
		env2 := 0.5 + 0.5*math.Sin(2*math.Pi*1.7*t+1.0)
		v := 6000*math.Sin(2*math.Pi*180*t)*env1 +
			2500*math.Sin(2*math.Pi*560*t+0.7)*env2
		lcg = lcg*1664525 + 1013904223
		v += float64(int32(lcg>>20)%97) - 48
		if v > 32000 {
			v = 32000
		}
		if v < -32000 {
			v = -32000
		}
		out[i] = int16(v)
	}
	return out
}

// App is the ADPCM benchmark instance.
type App struct {
	samples []int16
}

// New creates the benchmark with the default synthetic speech input.
func New() *App { return &App{samples: Speech(NumSamples)} }

func (*App) Name() string  { return "adpcm" }
func (*App) Title() string { return "ADPCM speech encode/decode (IMA, 4:1)" }
func (*App) FidelityName() string {
	return "% bytes matching fault-free output"
}

// Input encodes the sample count followed by the little-endian samples.
func (a *App) Input() []byte {
	buf := make([]byte, 4, 4+2*len(a.samples))
	binary.LittleEndian.PutUint32(buf, uint32(len(a.samples)))
	for _, s := range a.samples {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(s))
	}
	return buf
}

// Reference runs the Go codec on the same input.
func (a *App) Reference() []byte {
	codes := EncodeIMA(a.samples)
	dec := DecodeIMA(codes, len(a.samples))
	return fidelity.PCMToBytes(dec)
}

// Score is the byte-match percentage against the golden output; the run is
// acceptable at 90% or better.
func (a *App) Score(golden, corrupted []byte) apps.Score {
	pct := 100 * fidelity.ByteMatch(golden, corrupted)
	return apps.Score{Value: pct, Acceptable: pct >= 90}
}

// Source returns the MiniC program: read PCM, encode, decode, emit PCM.
func (a *App) Source() string {
	return fmt.Sprintf(adpcmSrc, NumSamples)
}

const adpcmSrc = `
// IMA ADPCM encode/decode (Jack Jansen's adpcm.c, MiBench variant).
const int NSAMP = %d;

const int stepsizeTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
};
const int indexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8
};

int pcmin[NSAMP];
char codes[2048];
int pcmout[NSAMP];

tolerant void encode(int *inp, char *out, int n) {
    int valpred = 0;
    int index = 0;
    int step = 7;
    int bufferstep = 1;
    int outputbuffer = 0;
    int outp = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        int val = inp[i];
        int diff = val - valpred;
        int sign = 0;
        if (diff < 0) { sign = 8; diff = -diff; }
        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) { delta = 4; diff = diff - step; vpdiff = vpdiff + step; }
        step = step >> 1;
        if (diff >= step) { delta = delta | 2; diff = diff - step; vpdiff = vpdiff + step; }
        step = step >> 1;
        if (diff >= step) { delta = delta | 1; vpdiff = vpdiff + step; }
        if (sign) { valpred = valpred - vpdiff; }
        else { valpred = valpred + vpdiff; }
        if (valpred > 32767) { valpred = 32767; }
        else if (valpred < -32768) { valpred = -32768; }
        delta = delta | sign;
        index = index + indexTable[delta];
        if (index < 0) { index = 0; }
        if (index > 88) { index = 88; }
        step = stepsizeTable[index];
        if (bufferstep) {
            outputbuffer = (delta << 4) & 0xf0;
        } else {
            out[outp] = (delta & 0x0f) | outputbuffer;
            outp = outp + 1;
        }
        bufferstep = !bufferstep;
    }
    if (!bufferstep) { out[outp] = outputbuffer; }
}

tolerant void decode(char *inp, int *out, int n) {
    int valpred = 0;
    int index = 0;
    int step = 7;
    int inputbuffer = 0;
    int bufferstep = 0;
    int pos = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        int delta;
        if (bufferstep) {
            delta = inputbuffer & 0xf;
        } else {
            inputbuffer = inp[pos];
            pos = pos + 1;
            delta = (inputbuffer >> 4) & 0xf;
        }
        bufferstep = !bufferstep;
        index = index + indexTable[delta];
        if (index < 0) { index = 0; }
        if (index > 88) { index = 88; }
        int sign = delta & 8;
        delta = delta & 7;
        int vpdiff = step >> 3;
        if (delta & 4) { vpdiff = vpdiff + step; }
        if (delta & 2) { vpdiff = vpdiff + (step >> 1); }
        if (delta & 1) { vpdiff = vpdiff + (step >> 2); }
        if (sign) { valpred = valpred - vpdiff; }
        else { valpred = valpred + vpdiff; }
        if (valpred > 32767) { valpred = 32767; }
        else if (valpred < -32768) { valpred = -32768; }
        step = stepsizeTable[index];
        out[i] = valpred;
    }
}

int main() {
    int n = inw();
    int i;
    if (n > NSAMP) { n = NSAMP; }
    for (i = 0; i < n; i = i + 1) {
        int s = inh();
        if (s >= 32768) { s = s - 65536; }
        pcmin[i] = s;
    }
    encode(pcmin, codes, n);
    decode(codes, pcmout, n);
    for (i = 0; i < n; i = i + 1) {
        outh(pcmout[i] & 0xffff);
    }
    return 0;
}
`
