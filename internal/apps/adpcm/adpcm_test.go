package adpcm

import (
	"testing"
	"testing/quick"

	"etap/internal/apps/apptest"
	"etap/internal/fidelity"
)

func TestSimMatchesReference(t *testing.T) {
	apptest.CheckReference(t, New())
}

func TestCodecRoundTripQuality(t *testing.T) {
	samples := Speech(NumSamples)
	codes := EncodeIMA(samples)
	if len(codes) != NumSamples/2 {
		t.Fatalf("code length = %d, want %d (4:1 compression)", len(codes), NumSamples/2)
	}
	dec := DecodeIMA(codes, NumSamples)
	snr := fidelity.SNR16(samples, dec)
	if snr < 20 {
		t.Fatalf("round-trip SNR = %.1f dB, want >= 20 (codec broken)", snr)
	}
}

func TestDecodeClampsOutOfRangeIndex(t *testing.T) {
	// All-0xFF codes drive the index to its ceiling; decode must not panic
	// and must produce the requested number of samples.
	codes := make([]byte, 64)
	for i := range codes {
		codes[i] = 0xFF
	}
	dec := DecodeIMA(codes, 128)
	if len(dec) != 128 {
		t.Fatalf("decoded %d samples, want 128", len(dec))
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	codes := EncodeIMA(Speech(100))
	dec := DecodeIMA(codes[:10], 100)
	if len(dec) != 20 {
		t.Fatalf("decoded %d samples from 10 bytes, want 20", len(dec))
	}
}

// TestEncodeDecodeTracksInput: property — the decoded signal never drifts
// unboundedly from the input for arbitrary sample streams.
func TestEncodeDecodeTracksInput(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		// Smooth the raw stream: ADPCM only tracks band-limited signals.
		sm := make([]int16, len(raw))
		var acc int32
		for i, v := range raw {
			acc = (acc*7 + int32(v)) / 8
			sm[i] = int16(acc)
		}
		dec := DecodeIMA(EncodeIMA(sm), len(sm))
		if len(dec) != len(sm) {
			return false
		}
		// The predictor adapts within ~one step-table sweep; allow a very
		// loose absolute envelope to catch gross breakage only.
		for i := 40; i < len(sm); i++ {
			d := int32(sm[i]) - int32(dec[i])
			if d < -20000 || d > 20000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInputFormat(t *testing.T) {
	a := New()
	in := a.Input()
	if len(in) != 4+2*NumSamples {
		t.Fatalf("input length = %d, want %d", len(in), 4+2*NumSamples)
	}
}

func TestScoreThreshold(t *testing.T) {
	a := New()
	golden := a.Reference()
	if s := a.Score(golden, golden); !s.Acceptable || s.Value != 100 {
		t.Fatalf("identical output score = %+v, want 100%% acceptable", s)
	}
	bad := make([]byte, len(golden))
	if s := a.Score(golden, bad); s.Acceptable {
		t.Fatalf("all-zero output should be unacceptable, got %+v", s)
	}
}

func TestProtectedInjectionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Table 2: the paper reports 2% failures at 3 errors; allow 1/8.
	apptest.CheckProtectedTolerance(t, New(), 3, 8, 1)
}
