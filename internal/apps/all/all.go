// Package all registers the seven benchmark applications of the paper's
// Table 1. It exists apart from package apps so the individual application
// packages can import the shared interface without an import cycle.
package all

import (
	"etap/internal/apps"
	"etap/internal/apps/adpcm"
	"etap/internal/apps/art"
	"etap/internal/apps/blowfish"
	"etap/internal/apps/gsm"
	"etap/internal/apps/mcf"
	"etap/internal/apps/mpegenc"
	"etap/internal/apps/susan"
)

// Apps returns fresh instances of every benchmark, in the paper's Table 1
// order.
func Apps() []apps.App {
	return []apps.App{
		susan.New(),
		mpegenc.New(),
		mcf.New(),
		blowfish.New(),
		gsm.New(),
		art.New(),
		adpcm.New(),
	}
}

// ByName returns the named benchmark.
func ByName(name string) (apps.App, bool) {
	for _, a := range Apps() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Names lists the benchmark names in registry order.
func Names() []string {
	as := Apps()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name()
	}
	return names
}
