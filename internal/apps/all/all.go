// Package all registers the seven benchmark applications of the paper's
// Table 1. It exists apart from package apps so the individual application
// packages can import the shared interface without an import cycle.
package all

import (
	"fmt"
	"strings"

	"etap/internal/apps"
	"etap/internal/apps/adpcm"
	"etap/internal/apps/art"
	"etap/internal/apps/blowfish"
	"etap/internal/apps/gsm"
	"etap/internal/apps/mcf"
	"etap/internal/apps/mpegenc"
	"etap/internal/apps/susan"
)

// Apps returns fresh instances of every benchmark, in the paper's Table 1
// order.
func Apps() []apps.App {
	return []apps.App{
		susan.New(),
		mpegenc.New(),
		mcf.New(),
		blowfish.New(),
		gsm.New(),
		art.New(),
		adpcm.New(),
	}
}

// ByName returns the named benchmark.
func ByName(name string) (apps.App, bool) {
	for _, a := range Apps() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Names lists the benchmark names in registry order.
func Names() []string {
	as := Apps()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name()
	}
	return names
}

// Parse resolves a CLI benchmark selection: a comma-separated name list
// or "all" for the whole registry. The empty string is rejected — a CLI
// whose -app defaults to everything says "all" explicitly — so an unset
// shell variable cannot silently select a full sweep. The CLIs share
// Parse so their -app flags cannot drift.
func Parse(s string) ([]apps.App, error) {
	if s == "" {
		return nil, fmt.Errorf("empty benchmark selection (try \"all\")")
	}
	if s == "all" {
		return Apps(), nil
	}
	var out []apps.App
	for _, name := range strings.Split(s, ",") {
		a, ok := ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
