// Package apps defines the benchmark-application abstraction shared by the
// experiment harness and collects the seven workloads of the paper's
// Table 1 (Susan, MPEG, MCF, Blowfish, ADPCM, GSM, ART). Each application
// provides its MiniC source (with error-tolerant functions marked), a
// deterministic synthetic input, a pure-Go reference implementation used to
// differentially test the compiler/simulator pipeline, and its fidelity
// measure.
package apps

// Score is the result of evaluating one corrupted output against the
// fault-free golden output.
type Score struct {
	// Value is the application's natural fidelity measure (Table 1):
	// PSNR in dB for Susan, % bad frames for MPEG, % extra schedule cost
	// for MCF, % bytes correct for Blowfish and ADPCM, % SNR from optimal
	// for GSM, and confidence error (%) for ART.
	Value float64
	// Acceptable reports whether Value passes the application's fidelity
	// threshold.
	Acceptable bool
}

// App is one benchmark application.
type App interface {
	// Name is the short identifier (table row), e.g. "susan".
	Name() string
	// Title is the one-line description from Table 1.
	Title() string
	// FidelityName labels the fidelity measure, e.g. "PSNR (dB)".
	FidelityName() string
	// Source returns the MiniC program.
	Source() string
	// Input returns the deterministic input byte stream.
	Input() []byte
	// Reference returns the expected fault-free output, computed by a
	// pure-Go implementation of the same algorithm. The simulated clean
	// output must equal it exactly.
	Reference() []byte
	// Score evaluates a corrupted output against the golden output.
	Score(golden, corrupted []byte) Score
}

// Scorer adapts an App's fidelity measure to the (value, acceptable)
// function shape the campaign engine and experiment harness consume.
func Scorer(a App) func(golden, corrupted []byte) (float64, bool) {
	return func(golden, corrupted []byte) (float64, bool) {
		s := a.Score(golden, corrupted)
		return s.Value, s.Acceptable
	}
}
