// Package apptest provides shared test support for the benchmark
// applications: it builds an app's MiniC source, runs it cleanly on the
// simulator, and checks the output against the app's pure-Go reference.
// This differential check pins the whole pipeline — compiler, assembler,
// simulator, and the app implementation pair — in one assertion.
package apptest

import (
	"bytes"
	"testing"

	"etap/internal/apps"
	"etap/internal/core"
	"etap/internal/fault"
	"etap/internal/isa"
	"etap/internal/minic"
	"etap/internal/sim"
)

// Build compiles the app's source, failing the test on any error.
func Build(t *testing.T, app apps.App) *isa.Program {
	t.Helper()
	prog, err := minic.Build(app.Source())
	if err != nil {
		t.Fatalf("%s: compile: %v", app.Name(), err)
	}
	return prog
}

// RunClean executes the app without faults and returns the output.
func RunClean(t *testing.T, app apps.App) ([]byte, sim.Result) {
	t.Helper()
	prog := Build(t, app)
	res := sim.Run(prog, sim.Config{Input: app.Input(), MaxInstr: 1 << 31})
	if res.Outcome != sim.OK {
		t.Fatalf("%s: clean run ended with %s (trap: %s)", app.Name(), res.Outcome, res.Trap)
	}
	return res.Output, res
}

// CheckReference asserts the simulated clean output equals the Go
// reference implementation's output byte for byte, and that it scores as
// perfectly acceptable fidelity against itself.
func CheckReference(t *testing.T, app apps.App) {
	t.Helper()
	got, _ := RunClean(t, app)
	want := app.Reference()
	if !bytes.Equal(got, want) {
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		diff := -1
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				diff = i
				break
			}
		}
		t.Fatalf("%s: simulated output (len %d) != reference (len %d); first diff at byte %d",
			app.Name(), len(got), len(want), diff)
	}
	if s := app.Score(want, got); !s.Acceptable {
		t.Fatalf("%s: clean output scores unacceptable fidelity %v", app.Name(), s.Value)
	}
}

// Campaign builds a fault campaign for the app under the experiments'
// default analysis policy (protection on) or the all-arithmetic mask
// (protection off).
func Campaign(t *testing.T, app apps.App, protected bool) *fault.Campaign {
	t.Helper()
	prog := Build(t, app)
	var eligible []bool
	if protected {
		rep, err := core.Analyze(prog, core.PolicyControlAddr)
		if err != nil {
			t.Fatalf("%s: analyze: %v", app.Name(), err)
		}
		eligible = rep.Tagged
	} else {
		eligible = core.EligibleAll(prog)
	}
	c, err := fault.NewCampaign(prog, eligible, sim.Config{Input: app.Input()})
	if err != nil {
		t.Fatalf("%s: campaign: %v", app.Name(), err)
	}
	return c
}

// CheckProtectedTolerance runs `trials` protected injections with the
// paper's error count and asserts that at most maxFailures end
// catastrophically and that every completed run scores a fidelity value
// in range. This is each application's Table 2 protected column, asserted
// as a regression test.
func CheckProtectedTolerance(t *testing.T, app apps.App, errors, trials, maxFailures int) {
	t.Helper()
	c := Campaign(t, app, true)
	golden := c.Clean.Output
	failures := 0
	for seed := int64(1); seed <= int64(trials); seed++ {
		res := c.Run(errors, seed*131)
		if res.Outcome != sim.OK {
			failures++
			continue
		}
		s := app.Score(golden, res.Output)
		if s.Value < 0 || s.Value > 1e6 {
			t.Fatalf("%s: seed %d: fidelity value %v out of range", app.Name(), seed, s.Value)
		}
	}
	if failures > maxFailures {
		t.Fatalf("%s: %d/%d protected runs failed at %d errors (allowed %d)",
			app.Name(), failures, trials, errors, maxFailures)
	}
}
