// Package art is the paper's ART benchmark: SPEC CPU2000's Adaptive
// Resonance Theory neural network, which trains on object templates and
// then scans a thermal image with a window, reporting where and with what
// confidence it recognizes a learned object. We implement the fuzzy-ART
// core in binary32 floating point: fast-learning training normalizes each
// template into bottom-up weights; recognition computes the fuzzy choice
// function Σ min(x,w) / (α + |w|) per category over every window, with a
// vigilance test rejecting weak matches. The fidelity measure is Table 1's
// "error in confidence of match", and Figure 6 counts the share of runs
// that still recognize the right object at the right place.
package art

import (
	"fmt"

	"etap/internal/apps"
)

// Geometry and model parameters.
const (
	ImgW   = 24
	Win    = 8
	NumCat = 3
	// Rho is the vigilance threshold.
	Rho = float32(0.55)
	// Alpha is the choice parameter.
	Alpha = float32(0.1)
	// ConfTolerance is the acceptable relative confidence error (%).
	ConfTolerance = 10.0
)

const (
	tmplPix = Win * Win
	imgPix  = ImgW * ImgW
)

// Templates returns the three learned 8×8 object patterns (byte
// intensities): a plane (cross), a helicopter (X with rotor), and a tank
// (solid hull with turret).
func Templates() [][]byte {
	mk := func(rows [8]string) []byte {
		out := make([]byte, tmplPix)
		for y, row := range rows {
			for x := 0; x < 8; x++ {
				if row[x] == '#' {
					out[y*8+x] = 230
				} else if row[x] == '+' {
					out[y*8+x] = 120
				}
			}
		}
		return out
	}
	plane := mk([8]string{
		"...##...",
		"...##...",
		"########",
		"########",
		"...##...",
		"...##...",
		"..####..",
		"..####..",
	})
	helicopter := mk([8]string{
		"#......#",
		".#....#.",
		"..####..",
		"...##...",
		"..####..",
		".#....#.",
		"#......#",
		"...++...",
	})
	tank := mk([8]string{
		"........",
		"...++...",
		"..####..",
		"..####..",
		"########",
		"########",
		"########",
		".+.+.+.+",
	})
	return [][]byte{plane, helicopter, tank}
}

// TargetCat/TargetX/TargetY locate the embedded object in the default
// thermal image.
const (
	TargetCat = 1
	TargetX   = 10
	TargetY   = 6
)

// Thermal generates the deterministic thermal image: noisy warm background
// with the target template embedded at (TargetX, TargetY).
func Thermal() []byte {
	img := make([]byte, imgPix)
	lcg := uint32(0xA5A5F00D)
	for i := range img {
		lcg = lcg*1664525 + 1013904223
		img[i] = byte(20 + lcg>>27) // 20..51
	}
	tmpl := Templates()[TargetCat]
	for y := 0; y < Win; y++ {
		for x := 0; x < Win; x++ {
			v := int32(tmpl[y*8+x])
			v = v * 9 / 10
			p := (TargetY+y)*ImgW + TargetX + x
			if v > int32(img[p]) {
				img[p] = byte(v)
			}
		}
	}
	return img
}

// Result is one recognition outcome.
type Result struct {
	Cat  int32
	X, Y int32
	Conf float32
}

// Recognize is the Go reference: train on the templates, scan the image,
// return the best match. Float32 operation order matches the MiniC
// program exactly.
func Recognize(templates [][]byte, image []byte) Result {
	var wgt [NumCat][tmplPix]float32
	var wsum [NumCat]float32
	for j := 0; j < NumCat; j++ {
		var s float32
		tf := make([]float32, tmplPix)
		for k := 0; k < tmplPix; k++ {
			tf[k] = float32(int32(templates[j][k])) / 255.0
			s = s + tf[k]
		}
		d := 0.5 + s
		var ws float32
		for k := 0; k < tmplPix; k++ {
			w := tf[k] / d
			wgt[j][k] = w
			ws = ws + w
		}
		wsum[j] = ws
	}

	img := make([]float32, imgPix)
	for i := range img {
		img[i] = float32(int32(image[i])) / 255.0
	}

	res := Result{Cat: -1, X: -1, Y: -1}
	for y := 0; y+Win <= ImgW; y++ {
		for x := 0; x+Win <= ImgW; x++ {
			var xsum float32
			for j2 := 0; j2 < Win; j2++ {
				for i2 := 0; i2 < Win; i2++ {
					xsum = xsum + img[(y+j2)*ImgW+x+i2]
				}
			}
			xd := 0.5 + xsum
			for j := 0; j < NumCat; j++ {
				var num float32
				for j2 := 0; j2 < Win; j2++ {
					for i2 := 0; i2 < Win; i2++ {
						xv := img[(y+j2)*ImgW+x+i2] / xd
						wv := wgt[j][j2*8+i2]
						if xv < wv {
							num = num + xv
						} else {
							num = num + wv
						}
					}
				}
				if num >= Rho {
					act := num / (Alpha + wsum[j])
					if act > res.Conf {
						res.Conf = act
						res.Cat = int32(j)
						res.X = int32(x)
						res.Y = int32(y)
					}
				}
			}
		}
	}
	return res
}

// App is the ART benchmark instance.
type App struct {
	templates [][]byte
	image     []byte
	golden    Result
}

// New creates the benchmark with the default templates and thermal image.
func New() *App {
	a := &App{templates: Templates(), image: Thermal()}
	a.golden = Recognize(a.templates, a.image)
	return a
}

func (*App) Name() string         { return "art" }
func (*App) Title() string        { return "ART neural-network thermal image recognition" }
func (*App) FidelityName() string { return "confidence-of-match error (%)" }

// Golden exposes the expected recognition (tests, reports).
func (a *App) Golden() Result { return a.golden }

// Input is the three templates followed by the image, as raw bytes.
func (a *App) Input() []byte {
	buf := make([]byte, 0, NumCat*tmplPix+imgPix)
	for _, t := range a.templates {
		buf = append(buf, t...)
	}
	return append(buf, a.image...)
}

// Reference formats the Go recognizer result as the program prints it.
func (a *App) Reference() []byte {
	return encodeResult(a.golden)
}

func encodeResult(r Result) []byte {
	le := func(v int32) []byte {
		return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	}
	out := append([]byte(nil), le(r.Cat)...)
	out = append(out, le(r.X)...)
	out = append(out, le(r.Y)...)
	out = append(out, le(int32(r.Conf*1000000))...)
	return out
}

func decodeResult(b []byte) (Result, bool) {
	if len(b) != 16 {
		return Result{}, false
	}
	le := func(off int) int32 {
		return int32(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
	}
	return Result{Cat: le(0), X: le(4), Y: le(8), Conf: float32(le(12)) / 1000000}, true
}

// Score: the image is recognized when the corrupted run reports the golden
// category within ±1 pixel and its confidence error stays within
// ConfTolerance percent. Value is the confidence error (100 for malformed
// output or misidentification).
func (a *App) Score(golden, corrupted []byte) apps.Score {
	g, ok := decodeResult(golden)
	if !ok {
		return apps.Score{Value: 100}
	}
	c, ok := decodeResult(corrupted)
	if !ok {
		return apps.Score{Value: 100}
	}
	abs32 := func(v int32) int32 {
		if v < 0 {
			return -v
		}
		return v
	}
	if c.Cat != g.Cat || abs32(c.X-g.X) > 1 || abs32(c.Y-g.Y) > 1 {
		return apps.Score{Value: 100}
	}
	confErr := float64(0)
	if g.Conf != 0 {
		d := float64(c.Conf-g.Conf) / float64(g.Conf) * 100
		if d < 0 {
			d = -d
		}
		confErr = d
	}
	return apps.Score{Value: confErr, Acceptable: confErr <= ConfTolerance}
}

func (a *App) Source() string {
	return fmt.Sprintf(artSrc, ImgW, NumCat, Win)
}

const artSrc = `
// Fuzzy-ART recognizer: fast-learning training on templates, windowed
// scan with the choice function and vigilance test.
const int IW = %[1]d;
const int NCAT = %[2]d;
const int WIN = %[3]d;
const int TPIX = 64;
const int IPIX = 576;

float tmpl[192];
float wgt[192];
float wsum[3];
float img[576];

int bestCat;
int bestX;
int bestY;
float bestT;

tolerant void train() {
    int j;
    int k;
    for (j = 0; j < NCAT; j = j + 1) {
        float s = 0.0;
        for (k = 0; k < TPIX; k = k + 1) { s = s + tmpl[j * 64 + k]; }
        float d = 0.5 + s;
        float ws = 0.0;
        for (k = 0; k < TPIX; k = k + 1) {
            float w = tmpl[j * 64 + k] / d;
            wgt[j * 64 + k] = w;
            ws = ws + w;
        }
        wsum[j] = ws;
    }
}

tolerant void scan() {
    int x;
    int y;
    int j;
    int i2;
    int j2;
    bestCat = -1;
    bestX = -1;
    bestY = -1;
    bestT = 0.0;
    for (y = 0; y + WIN <= IW; y = y + 1) {
        for (x = 0; x + WIN <= IW; x = x + 1) {
            float xsum = 0.0;
            for (j2 = 0; j2 < WIN; j2 = j2 + 1) {
                for (i2 = 0; i2 < WIN; i2 = i2 + 1) {
                    xsum = xsum + img[(y + j2) * IW + x + i2];
                }
            }
            float xd = 0.5 + xsum;
            for (j = 0; j < NCAT; j = j + 1) {
                float num = 0.0;
                for (j2 = 0; j2 < WIN; j2 = j2 + 1) {
                    for (i2 = 0; i2 < WIN; i2 = i2 + 1) {
                        float xv = img[(y + j2) * IW + x + i2] / xd;
                        float wv = wgt[j * 64 + j2 * 8 + i2];
                        if (xv < wv) { num = num + xv; }
                        else { num = num + wv; }
                    }
                }
                if (num >= 0.55) {
                    float act = num / (0.1 + wsum[j]);
                    if (act > bestT) {
                        bestT = act;
                        bestCat = j;
                        bestX = x;
                        bestY = y;
                    }
                }
            }
        }
    }
}

int main() {
    int i;
    for (i = 0; i < NCAT * TPIX; i = i + 1) {
        tmpl[i] = (float)inb() / 255.0;
    }
    for (i = 0; i < IPIX; i = i + 1) {
        img[i] = (float)inb() / 255.0;
    }
    train();
    scan();
    outw(bestCat);
    outw(bestX);
    outw(bestY);
    outw((int)(bestT * 1000000.0));
    return 0;
}
`
