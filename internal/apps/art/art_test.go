package art

import (
	"testing"

	"etap/internal/apps/apptest"
)

func TestSimMatchesReference(t *testing.T) {
	apptest.CheckReference(t, New())
}

func TestRecognizesTarget(t *testing.T) {
	a := New()
	g := a.Golden()
	if g.Cat != TargetCat {
		t.Fatalf("recognized category %d, want %d (conf %f at %d,%d)", g.Cat, TargetCat, g.Conf, g.X, g.Y)
	}
	if abs(g.X-TargetX) > 1 || abs(g.Y-TargetY) > 1 {
		t.Fatalf("recognized at (%d,%d), want near (%d,%d)", g.X, g.Y, TargetX, TargetY)
	}
	if g.Conf <= 0.5 {
		t.Fatalf("confidence %f too low", g.Conf)
	}
}

func TestEachTemplateRecognizable(t *testing.T) {
	// Embed each template into a fresh background and verify it wins.
	for cat := 0; cat < NumCat; cat++ {
		img := make([]byte, imgPix)
		lcg := uint32(12345 + cat)
		for i := range img {
			lcg = lcg*1664525 + 1013904223
			img[i] = byte(18 + lcg>>27)
		}
		tmpl := Templates()[cat]
		const px, py = 8, 12
		for y := 0; y < Win; y++ {
			for x := 0; x < Win; x++ {
				v := int32(tmpl[y*8+x]) * 9 / 10
				p := (py+y)*ImgW + px + x
				if v > int32(img[p]) {
					img[p] = byte(v)
				}
			}
		}
		r := Recognize(Templates(), img)
		if r.Cat != int32(cat) {
			t.Errorf("template %d recognized as %d (conf %f at %d,%d)", cat, r.Cat, r.Conf, r.X, r.Y)
			continue
		}
		if abs(r.X-px) > 1 || abs(r.Y-py) > 1 {
			t.Errorf("template %d found at (%d,%d), want near (%d,%d)", cat, r.X, r.Y, px, py)
		}
	}
}

func TestNoFalsePositiveOnNoise(t *testing.T) {
	img := make([]byte, imgPix)
	lcg := uint32(777)
	for i := range img {
		lcg = lcg*1664525 + 1013904223
		img[i] = byte(15 + lcg>>27)
	}
	r := Recognize(Templates(), img)
	if r.Cat != -1 && r.Conf > 0.8 {
		t.Fatalf("background noise recognized as %d with confidence %f", r.Cat, r.Conf)
	}
}

func TestScoreSemantics(t *testing.T) {
	a := New()
	g := a.Reference()
	if s := a.Score(g, g); !s.Acceptable || s.Value != 0 {
		t.Fatalf("clean score = %+v", s)
	}
	// Wrong category.
	wrong := append([]byte(nil), g...)
	wrong[0] ^= 0x02
	if s := a.Score(g, wrong); s.Acceptable {
		t.Fatalf("misidentification accepted: %+v", s)
	}
	// Truncated output.
	if s := a.Score(g, g[:8]); s.Acceptable {
		t.Fatalf("truncated output accepted")
	}
	// Position off by more than one.
	moved := append([]byte(nil), g...)
	moved[4] += 3
	if s := a.Score(g, moved); s.Acceptable {
		t.Fatalf("distant match accepted")
	}
}

func TestTemplatesDistinct(t *testing.T) {
	ts := Templates()
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			same := true
			for k := range ts[i] {
				if ts[i][k] != ts[j][k] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("templates %d and %d identical", i, j)
			}
		}
	}
}

func abs(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestProtectedInjectionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Table 2: ART "never suffers from catastrophic error" at 4 errors.
	apptest.CheckProtectedTolerance(t, New(), 4, 8, 0)
}
