// Package blowfish is the paper's Blowfish benchmark: Schneier's symmetric
// block cipher with its standard π-derived subkeys, run over an ASCII text
// in ECB mode — encrypt, then decrypt, and compare the round trip against
// the original. The fidelity measure is the percentage of matching bytes
// (Table 1). Only the data-path functions (the Feistel rounds applied to
// the text) are marked error-tolerant; key expansion is protected, so an
// injected error corrupts at most the blocks it touches rather than every
// block through a poisoned subkey.
package blowfish

import (
	"encoding/binary"
	"fmt"
	"strings"

	"etap/internal/apps"
	"etap/internal/fidelity"
)

// DataLen is the plaintext length (a multiple of the 8-byte block).
const DataLen = 2048

// Cipher is the Go reference implementation.
type Cipher struct {
	p [18]uint32
	s [4][256]uint32
}

// NewCipher performs the standard Blowfish key expansion. Keys of 4 to 56
// bytes are accepted.
func NewCipher(key []byte) *Cipher {
	c := &Cipher{}
	c.p, c.s = initialState()
	j := 0
	for i := 0; i < 18; i++ {
		var d uint32
		for k := 0; k < 4; k++ {
			d = d<<8 | uint32(key[j])
			j = (j + 1) % len(key)
		}
		c.p[i] ^= d
	}
	var l, r uint32
	for i := 0; i < 18; i += 2 {
		l, r = c.EncryptBlock(l, r)
		c.p[i], c.p[i+1] = l, r
	}
	for b := 0; b < 4; b++ {
		for i := 0; i < 256; i += 2 {
			l, r = c.EncryptBlock(l, r)
			c.s[b][i], c.s[b][i+1] = l, r
		}
	}
	return c
}

func (c *Cipher) f(x uint32) uint32 {
	return ((c.s[0][x>>24] + c.s[1][x>>16&0xFF]) ^ c.s[2][x>>8&0xFF]) + c.s[3][x&0xFF]
}

// EncryptBlock encrypts one 64-bit block given as two halves.
func (c *Cipher) EncryptBlock(l, r uint32) (uint32, uint32) {
	for i := 0; i < 16; i++ {
		l ^= c.p[i]
		r ^= c.f(l)
		l, r = r, l
	}
	l, r = r, l
	r ^= c.p[16]
	l ^= c.p[17]
	return l, r
}

// DecryptBlock inverts EncryptBlock.
func (c *Cipher) DecryptBlock(l, r uint32) (uint32, uint32) {
	for i := 17; i > 1; i-- {
		l ^= c.p[i]
		r ^= c.f(l)
		l, r = r, l
	}
	l, r = r, l
	r ^= c.p[1]
	l ^= c.p[0]
	return l, r
}

// ECB applies fn to each big-endian 8-byte block of src.
func ecb(src []byte, fn func(l, r uint32) (uint32, uint32)) []byte {
	dst := make([]byte, len(src))
	for i := 0; i+8 <= len(src); i += 8 {
		l := binary.BigEndian.Uint32(src[i:])
		r := binary.BigEndian.Uint32(src[i+4:])
		l, r = fn(l, r)
		binary.BigEndian.PutUint32(dst[i:], l)
		binary.BigEndian.PutUint32(dst[i+4:], r)
	}
	return dst
}

// Encrypt encrypts src (length must be a multiple of 8) in ECB mode.
func (c *Cipher) Encrypt(src []byte) []byte { return ecb(src, c.EncryptBlock) }

// Decrypt decrypts src in ECB mode.
func (c *Cipher) Decrypt(src []byte) []byte { return ecb(src, c.DecryptBlock) }

// Text generates the deterministic ASCII plaintext.
func Text(n int) []byte {
	words := []string{
		"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dogs",
		"error", "tolerant", "applications", "protect", "control", "data",
		"schedule", "vehicle", "network", "simplex", "cipher", "block",
	}
	var b strings.Builder
	lcg := uint32(0xB5297A4D)
	for b.Len() < n {
		lcg = lcg*1664525 + 1013904223
		b.WriteString(words[lcg>>24%uint32(len(words))])
		if lcg&0x10000 != 0 {
			b.WriteByte(' ')
		} else {
			b.WriteByte('.')
		}
	}
	return []byte(b.String()[:n])
}

// Key is the fixed 16-byte test key.
func Key() []byte { return []byte("etap-blowfish-k1") }

// App is the Blowfish benchmark instance.
type App struct {
	key  []byte
	text []byte
}

// New creates the benchmark with the default key and plaintext.
func New() *App { return &App{key: Key(), text: Text(DataLen)} }

func (*App) Name() string         { return "blowfish" }
func (*App) Title() string        { return "Blowfish encryption round trip (ECB)" }
func (*App) FidelityName() string { return "% bytes correct after decrypt(encrypt(text))" }

// Input is: data length (word), 16-byte key, plaintext bytes.
func (a *App) Input() []byte {
	buf := make([]byte, 4, 4+len(a.key)+len(a.text))
	binary.LittleEndian.PutUint32(buf, uint32(len(a.text)))
	buf = append(buf, a.key...)
	buf = append(buf, a.text...)
	return buf
}

// Reference round-trips the plaintext through the Go cipher.
func (a *App) Reference() []byte {
	c := NewCipher(a.key)
	return c.Decrypt(c.Encrypt(a.text))
}

// Score is the byte-match percentage; acceptable at 90% or better.
func (a *App) Score(golden, corrupted []byte) apps.Score {
	pct := 100 * fidelity.ByteMatch(golden, corrupted)
	return apps.Score{Value: pct, Acceptable: pct >= 90}
}

// Source generates the MiniC program with the π tables inlined. The block
// cipher exists twice: a protected copy used by key expansion (xb/xf) and a
// tolerant copy used on the data path (eb/db/tf), mirroring the paper's
// per-function eligibility.
func (a *App) Source() string {
	w := PiWords()
	pvals := make([]string, 18)
	for i := range pvals {
		pvals[i] = fmt.Sprintf("%d", w[i])
	}
	svals := make([]string, 4*256)
	for i := range svals {
		svals[i] = fmt.Sprintf("%d", w[18+i])
	}
	return fmt.Sprintf(blowfishSrc, DataLen, strings.Join(pvals, ", "), joinWrapped(svals))
}

func joinWrapped(vals []string) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteString(", ")
			if i%16 == 0 {
				b.WriteString("\n    ")
			}
		}
		b.WriteString(v)
	}
	return b.String()
}

const blowfishSrc = `
// Blowfish (Schneier, 1993) with standard pi-derived subkeys, ECB mode.
const int NDATA = %[1]d;

int P[18] = { %[2]s };
int S[1024] = { %[3]s
};

char key[16];
char buf[2080];

int xl;
int xr;

// Protected copies for key expansion.
int xf(int x) {
    return ((S[(x >> 24) & 0xff] + S[256 + ((x >> 16) & 0xff)])
            ^ S[512 + ((x >> 8) & 0xff)]) + S[768 + (x & 0xff)];
}

void xb() {
    int l = xl;
    int r = xr;
    int i;
    for (i = 0; i < 16; i = i + 1) {
        int t;
        l = l ^ P[i];
        r = r ^ xf(l);
        t = l; l = r; r = t;
    }
    xl = r ^ P[17];
    xr = l ^ P[16];
}

void expand_key() {
    int i;
    int j = 0;
    for (i = 0; i < 18; i = i + 1) {
        int d = 0;
        int k;
        for (k = 0; k < 4; k = k + 1) {
            d = (d << 8) | key[j];
            j = (j + 1) %% 16;
        }
        P[i] = P[i] ^ d;
    }
    xl = 0;
    xr = 0;
    for (i = 0; i < 18; i = i + 2) {
        xb();
        P[i] = xl;
        P[i + 1] = xr;
    }
    for (i = 0; i < 1024; i = i + 2) {
        xb();
        S[i] = xl;
        S[i + 1] = xr;
    }
}

// Tolerant data path.
tolerant int tf(int x) {
    return ((S[(x >> 24) & 0xff] + S[256 + ((x >> 16) & 0xff)])
            ^ S[512 + ((x >> 8) & 0xff)]) + S[768 + (x & 0xff)];
}

tolerant void eb() {
    int l = xl;
    int r = xr;
    int i;
    for (i = 0; i < 16; i = i + 1) {
        int t;
        l = l ^ P[i];
        r = r ^ tf(l);
        t = l; l = r; r = t;
    }
    xl = r ^ P[17];
    xr = l ^ P[16];
}

tolerant void db() {
    int l = xl;
    int r = xr;
    int i;
    for (i = 17; i > 1; i = i - 1) {
        int t;
        l = l ^ P[i];
        r = r ^ tf(l);
        t = l; l = r; r = t;
    }
    xl = r ^ P[0];
    xr = l ^ P[1];
}

tolerant void crypt_data(int n, int decrypt) {
    int i;
    for (i = 0; i + 8 <= n; i = i + 8) {
        xl = (buf[i] << 24) | (buf[i+1] << 16) | (buf[i+2] << 8) | buf[i+3];
        xr = (buf[i+4] << 24) | (buf[i+5] << 16) | (buf[i+6] << 8) | buf[i+7];
        if (decrypt) { db(); } else { eb(); }
        buf[i]   = (xl >> 24) & 0xff;
        buf[i+1] = (xl >> 16) & 0xff;
        buf[i+2] = (xl >> 8) & 0xff;
        buf[i+3] = xl & 0xff;
        buf[i+4] = (xr >> 24) & 0xff;
        buf[i+5] = (xr >> 16) & 0xff;
        buf[i+6] = (xr >> 8) & 0xff;
        buf[i+7] = xr & 0xff;
    }
}

int main() {
    int n = inw();
    int i;
    if (n > NDATA) { n = NDATA; }
    for (i = 0; i < 16; i = i + 1) { key[i] = inb(); }
    for (i = 0; i < n; i = i + 1) { buf[i] = inb(); }
    expand_key();
    crypt_data(n, 0);
    crypt_data(n, 1);
    for (i = 0; i < n; i = i + 1) { outb(buf[i]); }
    return 0;
}
`
