package blowfish

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"etap/internal/apps/apptest"
)

// TestPiTables pins well-known leading Blowfish constants, which verifies
// the entire big-integer π derivation.
func TestPiTables(t *testing.T) {
	w := PiWords()
	known := map[int]uint32{
		0:  0x243F6A88, // P[0]
		1:  0x85A308D3, // P[1]
		2:  0x13198A2E,
		3:  0x03707344,
		15: 0xB5470917, // P[15]
		16: 0x9216D5D9, // P[16]
		17: 0x8979FB1B, // P[17]
		18: 0xD1310BA6, // S[0][0]
		19: 0x98DFB5AC, // S[0][1]
	}
	for i, want := range known {
		if w[i] != want {
			t.Errorf("pi word %d = %08X, want %08X", i, w[i], want)
		}
	}
	if last := w[len(w)-1]; last != 0x3AC372E6 {
		t.Errorf("S[3][255] = %08X, want 3AC372E6", last)
	}
}

// TestKnownVectors checks the cipher against published Blowfish test
// vectors (Schneier's vector set).
func TestKnownVectors(t *testing.T) {
	cases := []struct {
		key    string
		plain  uint64
		cipher uint64
	}{
		{"0000000000000000", 0x0000000000000000, 0x4EF997456198DD78},
		{"FFFFFFFFFFFFFFFF", 0xFFFFFFFFFFFFFFFF, 0x51866FD5B85ECB8A},
		{"3000000000000000", 0x1000000000000001, 0x7D856F9A613063F2},
		{"1111111111111111", 0x1111111111111111, 0x2466DD878B963C9D},
		{"0123456789ABCDEF", 0x1111111111111111, 0x61F9C3802281B096},
		{"FEDCBA9876543210", 0x0123456789ABCDEF, 0x0ACEAB0FC6A0A28D},
	}
	for _, c := range cases {
		var key [8]byte
		for i := 0; i < 8; i++ {
			var b byte
			_, err := fmtSscanHex(c.key[2*i:2*i+2], &b)
			if err != nil {
				t.Fatalf("bad key literal: %v", err)
			}
			key[i] = b
		}
		ci := NewCipher(key[:])
		l, r := uint32(c.plain>>32), uint32(c.plain)
		l, r = ci.EncryptBlock(l, r)
		got := uint64(l)<<32 | uint64(r)
		if got != c.cipher {
			t.Errorf("key %s: encrypt = %016X, want %016X", c.key, got, c.cipher)
			continue
		}
		l, r = ci.DecryptBlock(l, r)
		if back := uint64(l)<<32 | uint64(r); back != c.plain {
			t.Errorf("key %s: decrypt = %016X, want %016X", c.key, back, c.plain)
		}
	}
}

func fmtSscanHex(s string, out *byte) (int, error) {
	var v int
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v*16 + int(c-'0')
		case c >= 'A' && c <= 'F':
			v = v*16 + int(c-'A'+10)
		case c >= 'a' && c <= 'f':
			v = v*16 + int(c-'a'+10)
		}
	}
	*out = byte(v)
	return 1, nil
}

func TestSimMatchesReference(t *testing.T) {
	apptest.CheckReference(t, New())
}

func TestRoundTripIsIdentity(t *testing.T) {
	a := New()
	if !bytes.Equal(a.Reference(), a.text) {
		t.Fatalf("decrypt(encrypt(text)) != text")
	}
}

// TestEncryptDecryptProperty: round-trip identity for arbitrary blocks and
// keys.
func TestEncryptDecryptProperty(t *testing.T) {
	f := func(key [16]byte, block uint64) bool {
		c := NewCipher(key[:])
		l, r := uint32(block>>32), uint32(block)
		el, er := c.EncryptBlock(l, r)
		dl, dr := c.DecryptBlock(el, er)
		return dl == l && dr == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAvalanche: flipping one plaintext bit changes roughly half the
// ciphertext bits.
func TestAvalanche(t *testing.T) {
	c := NewCipher(Key())
	l0, r0 := c.EncryptBlock(0x01234567, 0x89ABCDEF)
	l1, r1 := c.EncryptBlock(0x01234567^1, 0x89ABCDEF)
	diff := popcount64(uint64(l0^l1)<<32 | uint64(r0^r1))
	if diff < 16 || diff > 48 {
		t.Fatalf("avalanche flipped %d/64 bits, want roughly half", diff)
	}
}

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestECBBlockIndependence(t *testing.T) {
	c := NewCipher(Key())
	src := Text(64)
	enc := c.Encrypt(src)
	// Corrupt one ciphertext block; only that block decrypts wrong.
	enc[20] ^= 0x40
	dec := c.Decrypt(enc)
	for i := range src {
		inCorruptBlock := i >= 16 && i < 24
		if inCorruptBlock {
			continue
		}
		if dec[i] != src[i] {
			t.Fatalf("byte %d corrupted outside the damaged block", i)
		}
	}
	if bytes.Equal(dec[16:24], src[16:24]) {
		t.Fatalf("damaged block decrypted correctly, expected garbage")
	}
}

func TestInputFormat(t *testing.T) {
	a := New()
	in := a.Input()
	if len(in) != 4+16+DataLen {
		t.Fatalf("input length %d, want %d", len(in), 4+16+DataLen)
	}
	if n := binary.LittleEndian.Uint32(in); n != DataLen {
		t.Fatalf("header says %d, want %d", n, DataLen)
	}
}

func TestTextIsPrintableASCII(t *testing.T) {
	for i, b := range Text(512) {
		if b < 0x20 || b > 0x7E {
			t.Fatalf("byte %d = 0x%02X is not printable ASCII", i, b)
		}
	}
}

func TestProtectedInjectionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Table 2: protected blowfish tolerates 20 errors (paper: 19% fail;
	// our key schedule is protected, so we demand better).
	apptest.CheckProtectedTolerance(t, New(), 20, 8, 1)
}
