package blowfish

import (
	"math/big"
	"sync"
)

// Blowfish's initial P-array and S-boxes are the leading 1042 32-bit words
// of the fractional part of π. Rather than embedding the constant blob, we
// derive it with Machin's formula (π = 16·atan(1/5) − 4·atan(1/239)) in
// fixed-point big-integer arithmetic; a unit test pins the well-known
// leading words (P[0] = 0x243F6A88 ...) so a generation bug cannot slip
// through.

const piWords = 18 + 4*256

// piPrec is the fixed-point precision in bits: enough for all words plus
// guard bits against rounding in the series tails.
const piPrec = piWords*32 + 96

var (
	piOnce sync.Once
	piTab  []uint32
)

// atanInv returns atan(1/x) · 2^piPrec as an integer, by the alternating
// series atan(1/x) = Σ (−1)^k / ((2k+1)·x^(2k+1)).
func atanInv(x int64) *big.Int {
	sum := new(big.Int)
	term := new(big.Int).Lsh(big.NewInt(1), piPrec)
	term.Quo(term, big.NewInt(x))
	xx := big.NewInt(x * x)
	t := new(big.Int)
	for k := int64(0); term.Sign() != 0; k++ {
		t.Quo(term, big.NewInt(2*k+1))
		if k%2 == 0 {
			sum.Add(sum, t)
		} else {
			sum.Sub(sum, t)
		}
		term.Quo(term, xx)
	}
	return sum
}

// PiWords returns the first piWords 32-bit words of π's fractional part.
func PiWords() []uint32 {
	piOnce.Do(func() {
		pi := new(big.Int).Mul(big.NewInt(16), atanInv(5))
		pi.Sub(pi, new(big.Int).Mul(big.NewInt(4), atanInv(239)))
		// Fractional part: π − 3.
		frac := new(big.Int).Sub(pi, new(big.Int).Lsh(big.NewInt(3), piPrec))
		piTab = make([]uint32, piWords)
		shifted := new(big.Int)
		mask := big.NewInt(0xFFFFFFFF)
		for i := 0; i < piWords; i++ {
			shifted.Rsh(frac, uint(piPrec-32*(i+1)))
			shifted.And(shifted, mask)
			piTab[i] = uint32(shifted.Uint64())
		}
	})
	return piTab
}

// initialState returns fresh copies of the initial P-array and S-boxes.
func initialState() ([18]uint32, [4][256]uint32) {
	w := PiWords()
	var p [18]uint32
	var s [4][256]uint32
	copy(p[:], w[:18])
	for b := 0; b < 4; b++ {
		copy(s[b][:], w[18+b*256:18+(b+1)*256])
	}
	return p, s
}
