// Package gsm is the paper's GSM benchmark, substituted per DESIGN.md by a
// frame-based fixed-point LPC speech codec that keeps GSM 06.10's
// structure: per-frame short-term linear prediction (the LARc parameter
// role is played by a Q8 first-order predictor coefficient) plus
// block-adaptive PCM quantization of the residual (the role of GSM's RPE
// grid with its per-subframe scale). Encode and decode both run inside the
// simulator. The fidelity measure follows the paper: signal-to-noise of the
// decoded output with errors relative to the decoded output without, and
// Figure 5's "% SNR from optimal" (a 6 dB loss is the intelligibility
// threshold).
package gsm

import (
	"encoding/binary"
	"fmt"
	"math"

	"etap/internal/apps"
	"etap/internal/fidelity"
)

const (
	// NumSamples is the speech-sample count (a multiple of FrameLen).
	NumSamples = 4000
	// FrameLen is the analysis frame length, matching GSM 06.10.
	FrameLen = 160
	// ThresholdDB is the tolerable SNR loss from the paper ("a 6 dB loss
	// ... does not distort voice communications beyond recognition").
	ThresholdDB = 6.0
)

// SubLen is the subframe length over which the residual scale adapts,
// matching GSM 06.10's four 40-sample RPE subblocks per frame.
const SubLen = 40

// NumSub is the number of subframes per frame.
const NumSub = FrameLen / SubLen

// EncodeFrame compresses one frame: predictor coefficient a (Q8), one
// residual scale per subframe, and 4-bit residual codes packed two per
// byte. All arithmetic is 32-bit integer and mirrors the MiniC program
// exactly.
func EncodeFrame(x []int32) (a int32, scales [NumSub]int32, codes []byte) {
	var r0, r1 int32
	for n := 1; n < len(x); n++ {
		r0 += (x[n] >> 4) * (x[n] >> 4)
		r1 += (x[n] >> 4) * (x[n-1] >> 4)
	}
	if r0 > 0 {
		a = (r1 << 8) / r0
	}
	if a > 256 {
		a = 256
	}
	if a < -256 {
		a = -256
	}
	res := make([]int32, len(x))
	var prev int32
	for n := 0; n < len(x); n++ {
		res[n] = x[n] - (a*prev)>>8
		prev = x[n]
	}
	for s := 0; s < NumSub; s++ {
		var emax int32
		for n := s * SubLen; n < (s+1)*SubLen; n++ {
			e := res[n]
			if e < 0 {
				e = -e
			}
			if e > emax {
				emax = e
			}
		}
		scales[s] = emax/7 + 1
	}
	codes = make([]byte, 0, (len(x)+1)/2)
	var nib, have int32
	for n := 0; n < len(x); n++ {
		c := res[n] / scales[n/SubLen]
		if c > 7 {
			c = 7
		}
		if c < -7 {
			c = -7
		}
		c += 8
		if have == 0 {
			nib = c << 4
			have = 1
		} else {
			codes = append(codes, byte(nib|c))
			have = 0
		}
	}
	if have != 0 {
		codes = append(codes, byte(nib))
	}
	return a, scales, codes
}

// DecodeFrame reconstructs one frame from its parameters.
func DecodeFrame(a int32, scales [NumSub]int32, codes []byte, n int) []int32 {
	out := make([]int32, n)
	var prev int32
	for i := 0; i < n; i++ {
		var c int32
		if i%2 == 0 {
			c = int32(codes[i/2]>>4) - 8
		} else {
			c = int32(codes[i/2]&0xF) - 8
		}
		s := i / SubLen
		if s >= NumSub {
			s = NumSub - 1
		}
		v := c*scales[s] + (a*prev)>>8
		if v > 32767 {
			v = 32767
		}
		if v < -32768 {
			v = -32768
		}
		out[i] = v
		prev = v
	}
	return out
}

// Codec round-trips a full sample stream (Go reference of the simulated
// program's pipeline).
func Codec(samples []int16) []int16 {
	out := make([]int16, 0, len(samples))
	for f := 0; f+FrameLen <= len(samples); f += FrameLen {
		x := make([]int32, FrameLen)
		for i := range x {
			x[i] = int32(samples[f+i])
		}
		a, scales, codes := EncodeFrame(x)
		dec := DecodeFrame(a, scales, codes, FrameLen)
		for _, v := range dec {
			out = append(out, int16(v))
		}
	}
	return out
}

// Speech generates the deterministic voice-like signal: a pitch harmonic
// stack with formant-style amplitude modulation and deterministic noise.
func Speech(n int) []int16 {
	out := make([]int16, n)
	lcg := uint32(0x1F2E3D4C)
	for i := 0; i < n; i++ {
		t := float64(i) / 8000.0
		pitch := 120 + 30*math.Sin(2*math.Pi*1.3*t)
		v := 7000 * math.Sin(2*math.Pi*pitch*t) * (0.6 + 0.4*math.Sin(2*math.Pi*2.2*t))
		v += 2200 * math.Sin(2*math.Pi*3.1*pitch*t+0.5)
		lcg = lcg*1664525 + 1013904223
		v += float64(int32(lcg>>21)%129) - 64
		if v > 32000 {
			v = 32000
		}
		if v < -32000 {
			v = -32000
		}
		out[i] = int16(v)
	}
	return out
}

// App is the GSM benchmark instance.
type App struct {
	samples  []int16
	snrClean float64 // SNR of the clean round trip vs the original
}

// New creates the benchmark with the default speech input.
func New() *App {
	a := &App{samples: Speech(NumSamples)}
	a.snrClean = fidelity.SNR16(a.samples, Codec(a.samples))
	return a
}

func (*App) Name() string         { return "gsm" }
func (*App) Title() string        { return "GSM-style LPC speech encode/decode" }
func (*App) FidelityName() string { return "% SNR relative to fault-free decode" }

// Input is the sample count followed by little-endian samples.
func (a *App) Input() []byte {
	buf := make([]byte, 4, 4+2*len(a.samples))
	binary.LittleEndian.PutUint32(buf, uint32(len(a.samples)))
	for _, s := range a.samples {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(s))
	}
	return buf
}

func (a *App) Reference() []byte { return fidelity.PCMToBytes(Codec(a.samples)) }

// Score compares SNR (vs the original speech) of the corrupted decode with
// the clean decode, expressed as Figure 5's percentage; a loss of more
// than 6 dB is unacceptable.
func (a *App) Score(golden, corrupted []byte) apps.Score {
	snr := fidelity.SNR16(a.samples, fidelity.BytesToPCM(corrupted))
	pct := 0.0
	if a.snrClean > 0 {
		pct = 100 * snr / a.snrClean
	}
	if pct < 0 {
		pct = 0
	}
	return apps.Score{Value: pct, Acceptable: a.snrClean-snr <= ThresholdDB}
}

// SNRLoss reports the dB loss for a corrupted output (used in tests and
// EXPERIMENTS.md commentary).
func (a *App) SNRLoss(corrupted []byte) float64 {
	return a.snrClean - fidelity.SNR16(a.samples, fidelity.BytesToPCM(corrupted))
}

func (a *App) Source() string {
	return fmt.Sprintf(gsmSrc, NumSamples, FrameLen)
}

const gsmSrc = `
// Frame-based fixed-point LPC codec (GSM 06.10 structure: short-term
// prediction + block-adaptive residual quantization).
const int NSAMP = %d;
const int FRAME = %d;

const int SUB = 40;

int pcmin[NSAMP];
int pcmout[NSAMP];
int res[FRAME];
char codes[80];

int coefA;
int scales[4];

tolerant void encode_frame(int *x, int base) {
    int r0 = 0;
    int r1 = 0;
    int n;
    int s;
    for (n = 1; n < FRAME; n = n + 1) {
        int xn = x[base + n] >> 4;
        int xp = x[base + n - 1] >> 4;
        r0 = r0 + xn * xn;
        r1 = r1 + xn * xp;
    }
    int a = 0;
    if (r0 > 0) { a = (r1 << 8) / r0; }
    if (a > 256) { a = 256; }
    if (a < -256) { a = -256; }

    int prev = 0;
    for (n = 0; n < FRAME; n = n + 1) {
        res[n] = x[base + n] - ((a * prev) >> 8);
        prev = x[base + n];
    }
    for (s = 0; s < 4; s = s + 1) {
        int emax = 0;
        for (n = s * SUB; n < (s + 1) * SUB; n = n + 1) {
            int e = res[n];
            if (e < 0) { e = -e; }
            if (e > emax) { emax = e; }
        }
        scales[s] = emax / 7 + 1;
    }

    int nib = 0;
    int have = 0;
    int outp = 0;
    for (n = 0; n < FRAME; n = n + 1) {
        int c = res[n] / scales[n / SUB];
        if (c > 7) { c = 7; }
        if (c < -7) { c = -7; }
        c = c + 8;
        if (have == 0) {
            nib = c << 4;
            have = 1;
        } else {
            codes[outp] = nib | c;
            outp = outp + 1;
            have = 0;
        }
    }
    if (have) { codes[outp] = nib; }
    coefA = a;
}

tolerant void decode_frame(int *out, int base) {
    int prev = 0;
    int i;
    for (i = 0; i < FRAME; i = i + 1) {
        int c;
        if (i %% 2 == 0) { c = (codes[i / 2] >> 4) - 8; }
        else { c = (codes[i / 2] & 0xf) - 8; }
        int s = i / SUB;
        if (s > 3) { s = 3; }
        int v = c * scales[s] + ((coefA * prev) >> 8);
        if (v > 32767) { v = 32767; }
        if (v < -32768) { v = -32768; }
        out[base + i] = v;
        prev = v;
    }
}

int main() {
    int n = inw();
    int i;
    int f;
    if (n > NSAMP) { n = NSAMP; }
    for (i = 0; i < n; i = i + 1) {
        int s = inh();
        if (s >= 32768) { s = s - 65536; }
        pcmin[i] = s;
    }
    for (f = 0; f + FRAME <= n; f = f + FRAME) {
        encode_frame(pcmin, f);
        decode_frame(pcmout, f);
    }
    for (i = 0; i < n - n %% FRAME; i = i + 1) {
        outh(pcmout[i] & 0xffff);
    }
    return 0;
}
`
