package gsm

import (
	"testing"
	"testing/quick"

	"etap/internal/apps/apptest"
	"etap/internal/fidelity"
)

func TestSimMatchesReference(t *testing.T) {
	apptest.CheckReference(t, New())
}

func TestCodecQuality(t *testing.T) {
	orig := Speech(NumSamples)
	dec := Codec(orig)
	snr := fidelity.SNR16(orig, dec)
	if snr < 8 {
		t.Fatalf("clean codec SNR = %.1f dB, want >= 8 (codec broken)", snr)
	}
	t.Logf("clean codec SNR = %.2f dB", snr)
}

func TestFrameParameterRanges(t *testing.T) {
	orig := Speech(NumSamples)
	for f := 0; f+FrameLen <= len(orig); f += FrameLen {
		x := make([]int32, FrameLen)
		for i := range x {
			x[i] = int32(orig[f+i])
		}
		a, scales, codes := EncodeFrame(x)
		if a < -256 || a > 256 {
			t.Fatalf("frame %d: predictor %d out of Q8 range", f/FrameLen, a)
		}
		for s, sc := range scales {
			if sc < 1 {
				t.Fatalf("frame %d sub %d: scale %d < 1", f/FrameLen, s, sc)
			}
		}
		if len(codes) != FrameLen/2 {
			t.Fatalf("frame %d: %d code bytes, want %d", f/FrameLen, len(codes), FrameLen/2)
		}
	}
}

// TestDecodeBoundedProperty: decoded samples always stay within int16 for
// arbitrary (even hostile) parameters — the decoder must be robust to
// corrupted streams.
func TestDecodeBoundedProperty(t *testing.T) {
	f := func(a int16, rawScales [NumSub]int16, codes [80]byte) bool {
		var scales [NumSub]int32
		for i, s := range rawScales {
			scales[i] = int32(s)
			if scales[i] == 0 {
				scales[i] = 1
			}
		}
		av := int32(a)
		if av > 256 {
			av = 256
		}
		if av < -256 {
			av = -256
		}
		out := DecodeFrame(av, scales, codes[:], FrameLen)
		for _, v := range out {
			if v > 32767 || v < -32768 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSilentFrame: an all-zero frame round-trips to silence.
func TestSilentFrame(t *testing.T) {
	x := make([]int32, FrameLen)
	a, scales, codes := EncodeFrame(x)
	dec := DecodeFrame(a, scales, codes, FrameLen)
	for i, v := range dec {
		if v != 0 {
			t.Fatalf("silent frame decoded sample %d = %d", i, v)
		}
	}
}

func TestScoreSemantics(t *testing.T) {
	a := New()
	g := a.Reference()
	s := a.Score(g, g)
	if !s.Acceptable || s.Value < 99.9 {
		t.Fatalf("identical decode score = %+v, want 100%% acceptable", s)
	}
	// Zeroed output: massive SNR loss, unacceptable.
	if s := a.Score(g, make([]byte, len(g))); s.Acceptable {
		t.Fatalf("silence should be unacceptable, got %+v", s)
	}
	if loss := a.SNRLoss(g); loss > 0.001 {
		t.Fatalf("clean SNR loss = %f, want 0", loss)
	}
}

func TestProtectedInjectionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Table 2: 0% failures at 40 errors.
	apptest.CheckProtectedTolerance(t, New(), 40, 8, 0)
}
