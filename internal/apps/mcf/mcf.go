// Package mcf is the paper's MCF benchmark: SPEC CPU2000's single-depot
// vehicle scheduler. Per DESIGN.md the network simplex solver is
// substituted by an equivalent min-cost-flow formulation solved with
// successive shortest paths (Bellman-Ford augmentation): scheduling which
// trip follows which on the same vehicle is exactly a minimum-cost
// assignment, where chaining two compatible trips costs the deadhead and
// breaking the chain costs a pull-in plus a pull-out. The program prints
// the total schedule cost and the successor permutation; fidelity follows
// Table 1 ("% extra time in schedule") and Figure 3 counts the share of
// runs whose schedule is complete and exactly optimal.
package mcf

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"etap/internal/apps"
)

// NumTrips is the default instance size.
const NumTrips = 16

// MaxTrips is the MiniC program's capacity.
const MaxTrips = 16

// Instance is one vehicle-scheduling instance reduced to its successor
// cost matrix.
type Instance struct {
	N    int
	Cost []int32 // N×N, Cost[i*N+j] = cost of trip j following trip i
}

// Generate builds a deterministic instance: timetabled trips on a grid,
// deadhead costs for compatible pairs, pull-in/pull-out otherwise.
func Generate(n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	start := make([]int32, n)
	dur := make([]int32, n)
	x := make([]int32, n)
	y := make([]int32, n)
	for i := 0; i < n; i++ {
		start[i] = int32(rng.Intn(600))
		dur[i] = int32(20 + rng.Intn(70))
		x[i] = int32(rng.Intn(20))
		y[i] = int32(rng.Intn(20))
	}
	abs := func(v int32) int32 {
		if v < 0 {
			return -v
		}
		return v
	}
	inst := &Instance{N: n, Cost: make([]int32, n*n)}
	for i := 0; i < n; i++ {
		endI := start[i] + dur[i]
		depotI := abs(x[i]-10) + abs(y[i]-10)
		for j := 0; j < n; j++ {
			travel := abs(x[i]-x[j]) + abs(y[i]-y[j])
			depotJ := abs(x[j]-10) + abs(y[j]-10)
			var c int32
			if i != j && endI+travel+5 <= start[j] {
				wait := start[j] - endI - travel
				c = 2*travel + wait/4
			} else {
				c = 2*(depotI+depotJ) + 80 // end vehicle after i, new one before j
			}
			inst.Cost[i*n+j] = c
		}
	}
	return inst
}

// Solve runs the successive-shortest-paths assignment exactly as the MiniC
// program does (same arc order, same relaxation order), returning the total
// cost and the successor permutation. It returns ok=false if no perfect
// assignment exists (impossible for complete matrices).
func Solve(inst *Instance) (total int32, succ []int32, ok bool) {
	n := inst.N
	nv := 2 + 2*n
	type arc struct {
		from, to, cost, cap int32
	}
	arcs := make([]arc, 0, 2*(n*n+2*n))
	add := func(from, to, cost, cap int32) {
		arcs = append(arcs, arc{from, to, cost, cap})
		arcs = append(arcs, arc{to, from, -cost, 0})
	}
	for i := 0; i < n; i++ {
		add(0, int32(2+i), 0, 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			add(int32(2+i), int32(2+n+j), inst.Cost[i*n+j], 1)
		}
	}
	for j := 0; j < n; j++ {
		add(int32(2+n+j), 1, 0, 1)
	}

	const inf = int32(16_000_000)
	dist := make([]int32, nv)
	parent := make([]int32, nv)
	for k := 0; k < n; k++ {
		for v := 0; v < nv; v++ {
			dist[v] = inf
			parent[v] = -1
		}
		dist[0] = 0
		changed := true
		for it := 0; it < nv && changed; it++ {
			changed = false
			for e := range arcs {
				a := &arcs[e]
				if a.cap > 0 && dist[a.from] < inf && dist[a.from]+a.cost < dist[a.to] {
					dist[a.to] = dist[a.from] + a.cost
					parent[a.to] = int32(e)
					changed = true
				}
			}
		}
		if dist[1] >= inf {
			return 0, nil, false
		}
		total += dist[1]
		for v := int32(1); v != 0; {
			e := parent[v]
			arcs[e].cap--
			arcs[e^1].cap++
			v = arcs[e].from
		}
	}

	succ = make([]int32, n)
	for e := 2 * n; e < 2*n+2*n*n; e += 2 {
		if arcs[e].cap == 0 {
			i := arcs[e].from - 2
			j := arcs[e].to - 2 - int32(n)
			succ[i] = j
		}
	}
	return total, succ, true
}

// CostOf evaluates a successor permutation against the instance.
func (inst *Instance) CostOf(succ []int32) (int32, bool) {
	if len(succ) != inst.N {
		return 0, false
	}
	seen := make([]bool, inst.N)
	var total int32
	for i, j := range succ {
		if j < 0 || int(j) >= inst.N || seen[j] {
			return 0, false
		}
		seen[j] = true
		total += inst.Cost[i*inst.N+int(j)]
	}
	return total, true
}

// App is the MCF benchmark instance.
type App struct {
	inst    *Instance
	optimal int32
}

// New creates the benchmark with the default instance.
func New() *App {
	inst := Generate(NumTrips, 20060410)
	opt, _, ok := Solve(inst)
	if !ok {
		panic("mcf: default instance unsolvable")
	}
	return &App{inst: inst, optimal: opt}
}

func (*App) Name() string         { return "mcf" }
func (*App) Title() string        { return "MCF single-depot vehicle scheduler (min-cost flow)" }
func (*App) FidelityName() string { return "% extra cost over the optimal schedule" }

// Optimal exposes the instance's optimal cost (for tests and reports).
func (a *App) Optimal() int32 { return a.optimal }

// Input is: N, then the N×N cost matrix, as little-endian words.
func (a *App) Input() []byte {
	buf := make([]byte, 0, 4+4*len(a.inst.Cost))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.inst.N))
	for _, c := range a.inst.Cost {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	return buf
}

// Reference formats the Go solver's result the way the program prints it.
func (a *App) Reference() []byte {
	total, succ, _ := Solve(a.inst)
	buf := binary.LittleEndian.AppendUint32(nil, uint32(total))
	for _, s := range succ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s))
	}
	return buf
}

// Score validates the corrupted schedule: it must be a complete permutation
// whose recomputed cost matches both the claimed cost and the optimum.
// Value is the percentage of extra cost (100 when the schedule is invalid
// or incomplete, the paper's "not just inoptimal, but incomplete" case).
func (a *App) Score(golden, corrupted []byte) apps.Score {
	n := a.inst.N
	if len(corrupted) != 4+4*n {
		return apps.Score{Value: 100, Acceptable: false}
	}
	claimed := int32(binary.LittleEndian.Uint32(corrupted))
	succ := make([]int32, n)
	for i := 0; i < n; i++ {
		succ[i] = int32(binary.LittleEndian.Uint32(corrupted[4+4*i:]))
	}
	actual, valid := a.inst.CostOf(succ)
	if !valid || actual != claimed {
		return apps.Score{Value: 100, Acceptable: false}
	}
	extra := 100 * float64(actual-a.optimal) / float64(a.optimal)
	if extra < 0 {
		// Cheaper than optimal is impossible; the claimed matrix walk was
		// corrupted somewhere else.
		return apps.Score{Value: 100, Acceptable: false}
	}
	return apps.Score{Value: extra, Acceptable: extra == 0}
}

func (a *App) Source() string {
	return fmt.Sprintf(mcfSrc, MaxTrips)
}

const mcfSrc = `
// Min-cost-flow vehicle scheduler: successive shortest paths over the
// trip-successor assignment network.
const int MAXN = %[1]d;
const int MAXV = 34;
const int MAXARC = 576;
const int INF = 16000000;

int n;
int cost[256];
int arcFrom[MAXARC];
int arcTo[MAXARC];
int arcCost[MAXARC];
int arcCap[MAXARC];
int narcs;
int dist[MAXV];
int parent[MAXV];
int succ[MAXN];

void add_arc(int from, int to, int c, int cap) {
    arcFrom[narcs] = from;
    arcTo[narcs] = to;
    arcCost[narcs] = c;
    arcCap[narcs] = cap;
    narcs = narcs + 1;
    arcFrom[narcs] = to;
    arcTo[narcs] = from;
    arcCost[narcs] = -c;
    arcCap[narcs] = 0;
    narcs = narcs + 1;
}

tolerant void build() {
    int i;
    int j;
    narcs = 0;
    for (i = 0; i < n; i = i + 1) { add_arc(0, 2 + i, 0, 1); }
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            add_arc(2 + i, 2 + n + j, cost[i * n + j], 1);
        }
    }
    for (j = 0; j < n; j = j + 1) { add_arc(2 + n + j, 1, 0, 1); }
}

tolerant int bellman() {
    int v;
    int e;
    int it;
    int nv = 2 + n + n;
    for (v = 0; v < nv; v = v + 1) {
        dist[v] = INF;
        parent[v] = -1;
    }
    dist[0] = 0;
    int changed = 1;
    for (it = 0; it < nv && changed; it = it + 1) {
        changed = 0;
        for (e = 0; e < narcs; e = e + 1) {
            if (arcCap[e] > 0 && dist[arcFrom[e]] < INF) {
                int nd = dist[arcFrom[e]] + arcCost[e];
                if (nd < dist[arcTo[e]]) {
                    dist[arcTo[e]] = nd;
                    parent[arcTo[e]] = e;
                    changed = 1;
                }
            }
        }
    }
    return dist[1];
}

tolerant int augment() {
    int v = 1;
    while (v != 0) {
        int e = parent[v];
        if (e < 0) { return -1; }
        arcCap[e] = arcCap[e] - 1;
        arcCap[e ^ 1] = arcCap[e ^ 1] + 1;
        v = arcFrom[e];
    }
    return 0;
}

tolerant int solve() {
    int total = 0;
    int i;
    for (i = 0; i < n; i = i + 1) {
        int d = bellman();
        if (d >= INF) { return -1; }
        if (augment() < 0) { return -1; }
        total = total + d;
    }
    return total;
}

tolerant void extract() {
    int e;
    int last = 2 * n + 2 * n * n;
    for (e = 2 * n; e < last; e = e + 2) {
        if (arcCap[e] == 0) {
            succ[arcFrom[e] - 2] = arcTo[e] - 2 - n;
        }
    }
}

int main() {
    int i;
    n = inw();
    if (n > MAXN) { n = MAXN; }
    if (n < 1) { n = 1; }
    int nn = n * n;
    for (i = 0; i < nn; i = i + 1) { cost[i] = inw(); }
    build();
    int total = solve();
    extract();
    outw(total);
    for (i = 0; i < n; i = i + 1) { outw(succ[i]); }
    return 0;
}
`
