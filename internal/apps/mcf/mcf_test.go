package mcf

import (
	"testing"

	"etap/internal/apps/apptest"
)

func TestSimMatchesReference(t *testing.T) {
	apptest.CheckReference(t, New())
}

// TestSolverOptimalSmall cross-checks the SSP solver against brute-force
// enumeration of all permutations on small instances.
func TestSolverOptimalSmall(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		inst := Generate(7, seed)
		got, succ, ok := Solve(inst)
		if !ok {
			t.Fatalf("seed %d: solver failed", seed)
		}
		if c, valid := inst.CostOf(succ); !valid || c != got {
			t.Fatalf("seed %d: solver's own schedule costs %d (valid=%v), claimed %d", seed, c, valid, got)
		}
		want := bruteForce(inst)
		if got != want {
			t.Fatalf("seed %d: SSP cost %d, brute force %d", seed, got, want)
		}
	}
}

func bruteForce(inst *Instance) int32 {
	n := inst.N
	perm := make([]int32, n)
	used := make([]bool, n)
	best := int32(1 << 30)
	var rec func(i int, cost int32)
	rec = func(i int, cost int32) {
		if cost >= best {
			return
		}
		if i == n {
			best = cost
			return
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			perm[i] = int32(j)
			rec(i+1, cost+inst.Cost[i*n+j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

func TestCostOfValidation(t *testing.T) {
	inst := Generate(5, 3)
	if _, ok := inst.CostOf([]int32{0, 1, 2, 3}); ok {
		t.Fatalf("short schedule accepted")
	}
	if _, ok := inst.CostOf([]int32{0, 0, 2, 3, 4}); ok {
		t.Fatalf("duplicate successor accepted")
	}
	if _, ok := inst.CostOf([]int32{0, 1, 2, 3, 9}); ok {
		t.Fatalf("out-of-range successor accepted")
	}
	if _, ok := inst.CostOf([]int32{4, 3, 2, 1, 0}); !ok {
		t.Fatalf("valid permutation rejected")
	}
}

func TestScoreRejectsCorruption(t *testing.T) {
	a := New()
	g := a.Reference()
	if s := a.Score(g, g); !s.Acceptable || s.Value != 0 {
		t.Fatalf("clean schedule score = %+v, want optimal", s)
	}
	// Truncated output = incomplete schedule.
	if s := a.Score(g, g[:8]); s.Acceptable {
		t.Fatalf("truncated schedule accepted")
	}
	// Lying about the cost.
	lie := append([]byte(nil), g...)
	lie[0] ^= 0xFF
	if s := a.Score(g, lie); s.Acceptable {
		t.Fatalf("cost lie accepted")
	}
	// Swapping two successors keeps a valid permutation but (usually) a
	// suboptimal cost; it must not be scored optimal unless the costs tie.
	swapped := append([]byte(nil), g...)
	copy(swapped[4:8], g[8:12])
	copy(swapped[8:12], g[4:8])
	// Fix the claimed cost so validation passes.
	n := a.inst.N
	succ := make([]int32, n)
	for i := 0; i < n; i++ {
		succ[i] = int32(uint32(swapped[4+4*i]) | uint32(swapped[5+4*i])<<8 |
			uint32(swapped[6+4*i])<<16 | uint32(swapped[7+4*i])<<24)
	}
	if c, valid := a.inst.CostOf(succ); valid {
		swapped[0] = byte(c)
		swapped[1] = byte(c >> 8)
		swapped[2] = byte(c >> 16)
		swapped[3] = byte(c >> 24)
		s := a.Score(g, swapped)
		if c > a.optimal && s.Acceptable {
			t.Fatalf("suboptimal schedule (cost %d vs %d) accepted", c, a.optimal)
		}
		if c > a.optimal && s.Value <= 0 {
			t.Fatalf("extra-cost value = %v for suboptimal schedule", s.Value)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(NumTrips, 42)
	b := Generate(NumTrips, 42)
	for i := range a.Cost {
		if a.Cost[i] != b.Cost[i] {
			t.Fatalf("instance not deterministic at %d", i)
		}
	}
	c := Generate(NumTrips, 43)
	same := true
	for i := range a.Cost {
		if a.Cost[i] != c.Cost[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical instances")
	}
}

func TestCostsNonNegative(t *testing.T) {
	inst := Generate(NumTrips, 7)
	for i, c := range inst.Cost {
		if c < 0 {
			t.Fatalf("cost[%d] = %d < 0", i, c)
		}
	}
}

func TestProtectedInjectionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Table 2: 0% failures at 1 error with protection.
	apptest.CheckProtectedTolerance(t, New(), 1, 8, 0)
}
