package mpegenc

import (
	"testing"
	"testing/quick"

	"etap/internal/apps/apptest"
	"etap/internal/fidelity"
)

func TestSimMatchesReference(t *testing.T) {
	apptest.CheckReference(t, New())
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := make(map[int32]bool)
	for _, v := range zigzag {
		if v < 0 || v > 63 || seen[v] {
			t.Fatalf("zigzag is not a permutation: %v", zigzag)
		}
		seen[v] = true
	}
	// Standard leading order.
	want := []int32{0, 1, 8, 16, 9, 2, 3, 10}
	for i, w := range want {
		if zigzag[i] != w {
			t.Fatalf("zigzag[%d] = %d, want %d", i, zigzag[i], w)
		}
	}
}

func TestDCTRoundTrip(t *testing.T) {
	f := func(pix [64]uint8) bool {
		var blk, orig [64]int32
		for i, p := range pix {
			blk[i] = int32(p) - 128
			orig[i] = blk[i]
		}
		fdct(&blk)
		idct(&blk)
		for i := range blk {
			d := blk[i] - orig[i]
			if d < -2 || d > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTDCCoefficient(t *testing.T) {
	var blk [64]int32
	for i := range blk {
		blk[i] = 100
	}
	fdct(&blk)
	// Orthonormal DCT: DC = 8 * mean = 800; everything else ~0.
	if blk[0] < 790 || blk[0] > 810 {
		t.Fatalf("DC = %d, want ~800", blk[0])
	}
	for i := 1; i < 64; i++ {
		if blk[i] < -2 || blk[i] > 2 {
			t.Fatalf("AC[%d] = %d, want ~0", i, blk[i])
		}
	}
}

func TestRLERoundTrip(t *testing.T) {
	f := func(raw [64]int8) bool {
		c := &codec{}
		var blk, back [64]int32
		for i, v := range raw {
			// Sparsify: most coefficients zero, like real DCT output.
			if v%3 == 0 {
				blk[i] = 0
			} else {
				blk[i] = int32(v) / 2
				if blk[i] > 125 {
					blk[i] = 125
				}
				if blk[i] < -125 {
					blk[i] = -125
				}
			}
		}
		c.emitBlock(&blk)
		c.readBlock(&back)
		return blk == back
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineQuality(t *testing.T) {
	video := Video()
	out := Pipeline(video)
	if len(out) != NumFrames*(1+framePix) {
		t.Fatalf("output length %d, want %d", len(out), NumFrames*(1+framePix))
	}
	for f := 0; f < NumFrames; f++ {
		off := f * (1 + framePix)
		wantType := byte(typeP)
		if isIFrame(f) {
			wantType = typeI
		}
		if out[off] != wantType {
			t.Fatalf("frame %d type = %d, want %d", f, out[off], wantType)
		}
		src := video[f*framePix : (f+1)*framePix]
		dec := out[off+1 : off+1+framePix]
		if psnr := fidelity.PSNR(src, dec); psnr < 28 {
			t.Fatalf("frame %d decode PSNR = %.1f dB, want >= 28", f, psnr)
		}
	}
}

func TestBadFramesCounting(t *testing.T) {
	golden := Pipeline(Video())
	if n := BadFrames(golden, golden); n != 0 {
		t.Fatalf("clean run has %d bad frames", n)
	}
	// Truncated output: all missing frames are bad.
	if n := BadFrames(golden, golden[:1+framePix]); n != NumFrames-1 {
		t.Fatalf("truncated output: %d bad frames, want %d", n, NumFrames-1)
	}
	// Wreck one frame's pixels.
	wrecked := append([]byte(nil), golden...)
	off := 2 * (1 + framePix)
	for i := 0; i < framePix; i++ {
		wrecked[off+1+i] = byte(255 - wrecked[off+1+i])
	}
	if n := BadFrames(golden, wrecked); n != 1 {
		t.Fatalf("one wrecked frame counted as %d bad", n)
	}
	// Corrupt a type byte only.
	flipped := append([]byte(nil), golden...)
	flipped[0] = typeP
	if n := BadFrames(golden, flipped); n != 1 {
		t.Fatalf("type flip counted as %d bad", n)
	}
}

func TestDecoderResyncAfterGarbage(t *testing.T) {
	video := Video()
	c := &codec{}
	for f := 0; f < NumFrames; f++ {
		c.encodeFrame(video[f*framePix:(f+1)*framePix], isIFrame(f))
	}
	// Corrupt bytes inside the first frame's data (after its sync+type).
	for i := 4; i < 40; i++ {
		if c.bits[i] != markSync {
			c.bits[i] = byte(i * 7)
		}
	}
	types := make([]int32, 0, NumFrames)
	for f := 0; f < NumFrames; f++ {
		types = append(types, c.decodeFrame())
	}
	// Later frames must still be located via their sync markers.
	for f := 2; f < NumFrames; f++ {
		want := int32(typeP)
		if isIFrame(f) {
			want = typeI
		}
		if types[f] != want {
			t.Fatalf("frame %d type after resync = %d, want %d", f, types[f], want)
		}
	}
}

func TestScoreThreshold(t *testing.T) {
	a := New()
	g := a.Reference()
	if s := a.Score(g, g); !s.Acceptable || s.Value != 0 {
		t.Fatalf("clean score = %+v", s)
	}
	if s := a.Score(g, g[:100]); s.Acceptable || s.Value != 100 {
		t.Fatalf("empty decode score = %+v, want 100%% bad", s)
	}
}

func TestProtectedInjectionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Table 2: 0% failures at 20 errors with protection.
	apptest.CheckProtectedTolerance(t, New(), 20, 6, 0)
}
