// Package susan is the paper's Susan benchmark: SUSAN (Smallest Univalue
// Segment Assimilating Nucleus) edge detection from MiBench. Each pixel's
// circular 37-pixel mask is compared against the nucleus through the
// standard similarity lookup table c(d) = 100·exp(-(d/t)^6); the USAN area
// below the geometric threshold yields the edge response. The fidelity
// measure is PSNR between the corrupted and fault-free edge maps (the
// paper's ImageMagick comparison) with a 10 dB acceptability threshold.
package susan

import (
	"fmt"
	"math"
	"strings"

	"etap/internal/apps"
	"etap/internal/fidelity"
)

// Image dimensions and SUSAN parameters.
const (
	W = 64
	H = 64
	// T is the brightness difference threshold of the similarity LUT.
	T = 20
	// G is the geometric threshold: 3/4 of the maximum USAN area
	// (37 mask pixels × 100).
	G = 2775
	// ThresholdDB is the fidelity threshold from the paper.
	ThresholdDB = 10.0
)

// maskDX/maskDY are the offsets of the standard 37-pixel circular mask
// (radius ≈ 3.4), row widths 3,5,7,7,7,5,3.
var maskDX, maskDY = func() ([]int32, []int32) {
	widths := []int{3, 5, 7, 7, 7, 5, 3}
	var dxs, dys []int32
	for r, w := range widths {
		dy := r - 3
		for dx := -(w / 2); dx <= w/2; dx++ {
			dxs = append(dxs, int32(dx))
			dys = append(dys, int32(dy))
		}
	}
	return dxs, dys
}()

// lut is the brightness similarity table: c(d) = round(100·exp(-(d/T)^6)).
var lut = func() [256]int32 {
	var t [256]int32
	for d := 0; d < 256; d++ {
		t[d] = int32(math.Round(100 * math.Exp(-math.Pow(float64(d)/T, 6))))
	}
	return t
}()

// Edges computes the SUSAN edge response of a W×H image (Go reference).
func Edges(img []byte) []byte {
	out := make([]byte, W*H)
	for y := 3; y < H-3; y++ {
		for x := 3; x < W-3; x++ {
			nuc := int32(img[y*W+x])
			var n int32
			for k := range maskDX {
				p := int32(img[(y+int(maskDY[k]))*W+(x+int(maskDX[k]))])
				d := p - nuc
				if d < 0 {
					d = -d
				}
				n += lut[d]
			}
			var e int32
			if n < G {
				e = G - n
			}
			out[y*W+x] = byte(e * 255 / G)
		}
	}
	return out
}

// Scene generates the deterministic test image: a brightness gradient with
// two rectangles, a disc, and mild deterministic noise.
func Scene() []byte {
	img := make([]byte, W*H)
	lcg := uint32(0x9E3779B9)
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			v := 40 + x
			if x >= 10 && x < 30 && y >= 12 && y < 28 {
				v = 200
			}
			if x >= 35 && x < 55 && y >= 30 && y < 50 {
				v = 90
			}
			dx, dy := x-20, y-45
			if dx*dx+dy*dy <= 81 {
				v = 150
			}
			lcg = lcg*1664525 + 1013904223
			v += int(lcg>>28)%7 - 3
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*W+x] = byte(v)
		}
	}
	return img
}

// App is the Susan benchmark instance.
type App struct {
	img []byte
}

// New creates the benchmark with the default synthetic scene.
func New() *App { return &App{img: Scene()} }

func (*App) Name() string         { return "susan" }
func (*App) Title() string        { return "Susan edge detection (MiBench)" }
func (*App) FidelityName() string { return "PSNR vs fault-free output (dB)" }

func (a *App) Input() []byte { return a.img }

func (a *App) Reference() []byte { return Edges(a.img) }

// Score is the PSNR between corrupted and golden edge maps; the paper's
// threshold is 10 dB.
func (a *App) Score(golden, corrupted []byte) apps.Score {
	psnr := fidelity.PSNR(golden, corrupted)
	return apps.Score{Value: psnr, Acceptable: psnr >= ThresholdDB}
}

// Source generates the MiniC program with the LUT and mask tables inlined.
func (a *App) Source() string {
	return fmt.Sprintf(susanSrc, W, H, G,
		joinInts(lut[:]), joinInts(maskDX), joinInts(maskDY))
}

func joinInts(vals []int32) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ", ")
}

const susanSrc = `
// SUSAN edge detection over a %[1]dx%[2]d grayscale image.
const int W = %[1]d;
const int H = %[2]d;
const int G = %[3]d;
const int NPIX = 4096;

const char lut[256] = { %[4]s };
const int dxs[37] = { %[5]s };
const int dys[37] = { %[6]s };

char img[NPIX];
char edges[NPIX];

tolerant void usan(char *in, char *out) {
    int x;
    int y;
    int k;
    for (y = 3; y < H - 3; y = y + 1) {
        for (x = 3; x < W - 3; x = x + 1) {
            int nuc = in[y * W + x];
            int n = 0;
            for (k = 0; k < 37; k = k + 1) {
                int p = in[(y + dys[k]) * W + (x + dxs[k])];
                int d = p - nuc;
                if (d < 0) { d = -d; }
                n = n + lut[d];
            }
            int e = 0;
            if (n < G) { e = G - n; }
            out[y * W + x] = e * 255 / G;
        }
    }
}

int main() {
    int i;
    int npix = W * H;
    for (i = 0; i < npix; i = i + 1) { img[i] = inb(); }
    usan(img, edges);
    for (i = 0; i < npix; i = i + 1) { outb(edges[i]); }
    return 0;
}
`
