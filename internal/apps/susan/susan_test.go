package susan

import (
	"testing"

	"etap/internal/apps/apptest"
)

func TestSimMatchesReference(t *testing.T) {
	apptest.CheckReference(t, New())
}

func TestMaskShape(t *testing.T) {
	if len(maskDX) != 37 || len(maskDY) != 37 {
		t.Fatalf("mask has %d/%d offsets, want 37", len(maskDX), len(maskDY))
	}
	seen := map[[2]int32]bool{}
	for i := range maskDX {
		key := [2]int32{maskDX[i], maskDY[i]}
		if seen[key] {
			t.Fatalf("duplicate mask offset %v", key)
		}
		seen[key] = true
	}
	if !seen[[2]int32{0, 0}] {
		t.Fatalf("mask must include the nucleus")
	}
}

func TestLUTProperties(t *testing.T) {
	if lut[0] != 100 {
		t.Fatalf("lut[0] = %d, want 100 (identical brightness)", lut[0])
	}
	if lut[255] != 0 {
		t.Fatalf("lut[255] = %d, want 0", lut[255])
	}
	for d := 1; d < 256; d++ {
		if lut[d] > lut[d-1] {
			t.Fatalf("lut must be non-increasing, lut[%d]=%d > lut[%d]=%d", d, lut[d], d-1, lut[d-1])
		}
	}
}

func TestEdgesRespondToEdges(t *testing.T) {
	// A flat image has no edges; a step image has a strong response along
	// the step.
	flat := make([]byte, W*H)
	for i := range flat {
		flat[i] = 128
	}
	if out := Edges(flat); maxByte(out) != 0 {
		t.Fatalf("flat image produced edge response %d", maxByte(out))
	}

	step := make([]byte, W*H)
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			if x >= W/2 {
				step[y*W+x] = 220
			} else {
				step[y*W+x] = 30
			}
		}
	}
	out := Edges(step)
	// Strong response at the boundary column, none far away.
	if out[10*W+W/2] < 50 {
		t.Fatalf("step edge response %d too weak", out[10*W+W/2])
	}
	if out[10*W+10] != 0 {
		t.Fatalf("response %d far from the edge", out[10*W+10])
	}
}

func TestBordersAreZero(t *testing.T) {
	out := Edges(Scene())
	for x := 0; x < W; x++ {
		if out[x] != 0 || out[(H-1)*W+x] != 0 {
			t.Fatalf("border pixel nonzero")
		}
	}
}

func TestSceneIsDeterministic(t *testing.T) {
	a, b := Scene(), Scene()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scene differs at %d", i)
		}
	}
}

func TestScoreThreshold(t *testing.T) {
	a := New()
	g := a.Reference()
	if s := a.Score(g, g); !s.Acceptable {
		t.Fatalf("identical output must be acceptable, got %+v", s)
	}
	inv := make([]byte, len(g))
	for i := range inv {
		inv[i] = 255 - g[i]
	}
	if s := a.Score(g, inv); s.Acceptable {
		t.Fatalf("inverted output should fail the 10 dB threshold, got %+v", s)
	}
}

func maxByte(b []byte) byte {
	var m byte
	for _, v := range b {
		if v > m {
			m = v
		}
	}
	return m
}

func TestProtectedInjectionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Table 2: susan absorbs the paper's 2200 errors without failing.
	apptest.CheckProtectedTolerance(t, New(), 2200, 8, 0)
}
