// Package asm assembles the textual MIPS-like assembly emitted by the MiniC
// compiler (or written by hand in tests) into an isa.Program.
//
// Syntax summary:
//
//	# comment                       ; comment
//	        .text                   switch to text segment (default)
//	        .data                   switch to data segment
//	        .func name [tolerant]   begin function (text only)
//	        .endfunc                end function
//	        .entry name             set the entry symbol (default __start, else first instruction)
//	label:  add $t0, $t1, $t2       labels bind to the next instruction or datum
//	        lw $t0, 8($sp)
//	        beq $t0, $zero, done
//	buf:    .space 64               data directives: .word .half .byte .float
//	msg:    .asciiz "hi"            .ascii .space .align
//
// Pseudo-instructions: li, la, move, b, beqz, bnez, neg, not, blt, ble,
// bgt, bge. la always expands to lui+ori so instruction counts are
// deterministic before data layout completes; li sizes itself from the
// literal.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"etap/internal/isa"
)

// Error is an assembly diagnostic bound to a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type fixup struct {
	textIdx int
	sym     string
	half    uint8 // 0 = full (branch target), 1 = hi16, 2 = lo16
	line    int
}

type assembler struct {
	prog    *isa.Program
	fixups  []fixup
	inData  bool
	curFunc int // index into prog.Funcs, -1 when none open
	entry   string
	errs    []error
}

// Assemble parses and assembles src into a validated program.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{
		prog: &isa.Program{
			Symbols:  make(map[string]int),
			DataSyms: make(map[string]uint32),
		},
		curFunc: -1,
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		a.line(lineNo+1, raw)
		if len(a.errs) > 8 {
			break
		}
	}
	if a.curFunc >= 0 {
		a.prog.Funcs[a.curFunc].End = len(a.prog.Text)
	}
	a.resolve()
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	if len(a.prog.Funcs) == 0 && len(a.prog.Text) > 0 {
		a.prog.Funcs = []isa.FuncInfo{{Name: "__all", Start: 0, End: len(a.prog.Text)}}
	}
	switch {
	case a.entry != "":
		idx, ok := a.prog.Symbols[a.entry]
		if !ok {
			return nil, fmt.Errorf("asm: entry symbol %q not defined", a.entry)
		}
		a.prog.Entry = idx
	default:
		if idx, ok := a.prog.Symbols["__start"]; ok {
			a.prog.Entry = idx
		}
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, &Error{Line: line, Msg: fmt.Sprintf(format, args...)})
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case '#', ';':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func (a *assembler) line(lineNo int, raw string) {
	s := strings.TrimSpace(stripComment(raw))
	// Peel off leading labels.
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if !isIdent(name) {
			break
		}
		a.bindLabel(lineNo, name)
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return
	}
	if s[0] == '.' {
		a.directive(lineNo, s)
		return
	}
	a.instruction(lineNo, s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == '$' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (a *assembler) bindLabel(lineNo int, name string) {
	if a.inData {
		if _, dup := a.prog.DataSyms[name]; dup {
			a.errorf(lineNo, "duplicate data label %q", name)
			return
		}
		a.prog.DataSyms[name] = isa.DataBase + uint32(len(a.prog.Data))
		return
	}
	if _, dup := a.prog.Symbols[name]; dup {
		a.errorf(lineNo, "duplicate label %q", name)
		return
	}
	a.prog.Symbols[name] = len(a.prog.Text)
}

func (a *assembler) directive(lineNo int, s string) {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.inData = false
	case ".data":
		a.inData = true
	case ".entry":
		a.entry = rest
	case ".func":
		fields := strings.Fields(rest)
		if len(fields) == 0 || len(fields) > 2 {
			a.errorf(lineNo, ".func wants: .func name [tolerant]")
			return
		}
		tol := false
		if len(fields) == 2 {
			if fields[1] != "tolerant" {
				a.errorf(lineNo, "unknown .func attribute %q", fields[1])
				return
			}
			tol = true
		}
		if a.curFunc >= 0 {
			a.errorf(lineNo, ".func %s while %s is still open", fields[0], a.prog.Funcs[a.curFunc].Name)
			return
		}
		a.inData = false
		a.prog.Funcs = append(a.prog.Funcs, isa.FuncInfo{Name: fields[0], Start: len(a.prog.Text), Tolerant: tol})
		a.curFunc = len(a.prog.Funcs) - 1
		a.bindLabel(lineNo, fields[0])
	case ".endfunc":
		if a.curFunc < 0 {
			a.errorf(lineNo, ".endfunc without .func")
			return
		}
		if a.prog.Funcs[a.curFunc].Start == len(a.prog.Text) {
			a.errorf(lineNo, "function %q is empty", a.prog.Funcs[a.curFunc].Name)
			return
		}
		a.prog.Funcs[a.curFunc].End = len(a.prog.Text)
		a.curFunc = -1
	case ".word", ".half", ".byte", ".float", ".space", ".align", ".ascii", ".asciiz":
		if !a.inData {
			a.errorf(lineNo, "%s outside .data", name)
			return
		}
		a.dataDirective(lineNo, name, rest)
	default:
		a.errorf(lineNo, "unknown directive %s", name)
	}
}

func (a *assembler) dataDirective(lineNo int, name, rest string) {
	switch name {
	case ".space":
		n, err := strconv.ParseInt(rest, 0, 32)
		if err != nil || n < 0 {
			a.errorf(lineNo, "bad .space size %q", rest)
			return
		}
		a.prog.Data = append(a.prog.Data, make([]byte, n)...)
	case ".align":
		n, err := strconv.ParseInt(rest, 0, 32)
		if err != nil || n < 0 || n > 12 {
			a.errorf(lineNo, "bad .align %q", rest)
			return
		}
		size := 1 << n
		for len(a.prog.Data)%size != 0 {
			a.prog.Data = append(a.prog.Data, 0)
		}
	case ".ascii", ".asciiz":
		str, err := strconv.Unquote(rest)
		if err != nil {
			a.errorf(lineNo, "bad string %s", rest)
			return
		}
		a.prog.Data = append(a.prog.Data, str...)
		if name == ".asciiz" {
			a.prog.Data = append(a.prog.Data, 0)
		}
	case ".word", ".half", ".byte", ".float":
		for _, f := range splitOperands(rest) {
			switch name {
			case ".float":
				v, err := strconv.ParseFloat(f, 32)
				if err != nil {
					a.errorf(lineNo, "bad float %q", f)
					return
				}
				a.prog.Data = binary.LittleEndian.AppendUint32(a.prog.Data, math.Float32bits(float32(v)))
			default:
				v, err := strconv.ParseInt(f, 0, 64)
				if err != nil || v < math.MinInt32 || v > math.MaxUint32 {
					a.errorf(lineNo, "bad integer %q", f)
					return
				}
				switch name {
				case ".word":
					a.prog.Data = binary.LittleEndian.AppendUint32(a.prog.Data, uint32(v))
				case ".half":
					if v < math.MinInt16 || v > math.MaxUint16 {
						a.errorf(lineNo, ".half value %d out of range", v)
						return
					}
					a.prog.Data = binary.LittleEndian.AppendUint16(a.prog.Data, uint16(v))
				case ".byte":
					if v < math.MinInt8 || v > math.MaxUint8 {
						a.errorf(lineNo, ".byte value %d out of range", v)
						return
					}
					a.prog.Data = append(a.prog.Data, byte(v))
				}
			}
		}
	}
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) == 1 && parts[0] == "" {
		return nil
	}
	return parts
}

func (a *assembler) emit(in isa.Instr) {
	a.prog.Text = append(a.prog.Text, in)
}

func (a *assembler) instruction(lineNo int, s string) {
	if a.inData {
		a.errorf(lineNo, "instruction in .data segment")
		return
	}
	mn, rest, _ := strings.Cut(s, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	ops := splitOperands(strings.TrimSpace(rest))

	if a.pseudo(lineNo, mn, ops) {
		return
	}
	op, ok := isa.OpByName(mn)
	if !ok {
		a.errorf(lineNo, "unknown mnemonic %q", mn)
		return
	}
	in := isa.Instr{Op: op, Line: lineNo}
	want := func(n int) bool {
		if len(ops) != n {
			a.errorf(lineNo, "%s wants %d operands, got %d", mn, n, len(ops))
			return false
		}
		return true
	}
	switch isa.Format(op) {
	case isa.FmtNone:
		if !want(0) {
			return
		}
	case isa.Fmt3R:
		if !want(3) {
			return
		}
		in.Rd, in.Rs, in.Rt = a.reg(lineNo, ops[0]), a.reg(lineNo, ops[1]), a.reg(lineNo, ops[2])
	case isa.Fmt2RI:
		if !want(3) {
			return
		}
		in.Rd, in.Rs = a.reg(lineNo, ops[0]), a.reg(lineNo, ops[1])
		in.Imm = a.immFor(lineNo, op, ops[2])
	case isa.FmtRI:
		if !want(2) {
			return
		}
		in.Rd = a.reg(lineNo, ops[0])
		in.Imm = a.immRange(lineNo, ops[1], 0, 0xFFFF)
	case isa.Fmt2R:
		if !want(2) {
			return
		}
		in.Rd, in.Rs = a.reg(lineNo, ops[0]), a.reg(lineNo, ops[1])
	case isa.FmtMem:
		if !want(2) {
			return
		}
		r := a.reg(lineNo, ops[0])
		base, off, ok := parseMemOperand(ops[1])
		if !ok {
			a.errorf(lineNo, "bad memory operand %q (want off(reg))", ops[1])
			return
		}
		in.Rs = a.reg(lineNo, base)
		in.Imm = a.immRange(lineNo, off, math.MinInt16, math.MaxInt16)
		if isa.ClassOf(op) == isa.ClassStore {
			in.Rt = r
		} else {
			in.Rd = r
		}
	case isa.FmtBr2:
		if !want(3) {
			return
		}
		in.Rs, in.Rt = a.reg(lineNo, ops[0]), a.reg(lineNo, ops[1])
		a.target(lineNo, &in, ops[2])
	case isa.FmtBr1:
		if !want(2) {
			return
		}
		in.Rs = a.reg(lineNo, ops[0])
		a.target(lineNo, &in, ops[1])
	case isa.FmtJ:
		if !want(1) {
			return
		}
		a.target(lineNo, &in, ops[0])
	case isa.FmtJR:
		if !want(1) {
			return
		}
		in.Rs = a.reg(lineNo, ops[0])
	case isa.FmtJALR:
		if !want(2) {
			return
		}
		in.Rd, in.Rs = a.reg(lineNo, ops[0]), a.reg(lineNo, ops[1])
	}
	a.emit(in)
}

// pseudo expands pseudo-instructions; it reports whether mn was one.
func (a *assembler) pseudo(lineNo int, mn string, ops []string) bool {
	bad := func(usage string) bool {
		a.errorf(lineNo, "%s wants: %s", mn, usage)
		return true
	}
	switch mn {
	case "li":
		if len(ops) != 2 {
			return bad("li $r, imm32")
		}
		rd := a.reg(lineNo, ops[0])
		v64, err := strconv.ParseInt(ops[1], 0, 64)
		if err != nil || v64 < math.MinInt32 || v64 > math.MaxUint32 {
			a.errorf(lineNo, "bad li immediate %q", ops[1])
			return true
		}
		v := uint32(v64)
		switch {
		case int32(v) >= math.MinInt16 && int32(v) <= math.MaxInt16:
			a.emit(isa.Instr{Op: isa.ADDI, Rd: rd, Rs: isa.RegZero, Imm: int32(v), Line: lineNo})
		case v&0xFFFF == 0:
			a.emit(isa.Instr{Op: isa.LUI, Rd: rd, Imm: int32(v >> 16), Line: lineNo})
		default:
			a.emit(isa.Instr{Op: isa.LUI, Rd: rd, Imm: int32(v >> 16), Line: lineNo})
			a.emit(isa.Instr{Op: isa.ORI, Rd: rd, Rs: rd, Imm: int32(v & 0xFFFF), Line: lineNo})
		}
	case "la":
		if len(ops) != 2 {
			return bad("la $r, symbol")
		}
		rd := a.reg(lineNo, ops[0])
		a.fixups = append(a.fixups, fixup{textIdx: len(a.prog.Text), sym: ops[1], half: 1, line: lineNo})
		a.emit(isa.Instr{Op: isa.LUI, Rd: rd, Sym: ops[1], Line: lineNo})
		a.fixups = append(a.fixups, fixup{textIdx: len(a.prog.Text), sym: ops[1], half: 2, line: lineNo})
		a.emit(isa.Instr{Op: isa.ORI, Rd: rd, Rs: rd, Sym: ops[1], Line: lineNo})
	case "move":
		if len(ops) != 2 {
			return bad("move $d, $s")
		}
		a.emit(isa.Instr{Op: isa.OR, Rd: a.reg(lineNo, ops[0]), Rs: a.reg(lineNo, ops[1]), Rt: isa.RegZero, Line: lineNo})
	case "neg":
		if len(ops) != 2 {
			return bad("neg $d, $s")
		}
		a.emit(isa.Instr{Op: isa.SUB, Rd: a.reg(lineNo, ops[0]), Rs: isa.RegZero, Rt: a.reg(lineNo, ops[1]), Line: lineNo})
	case "not":
		if len(ops) != 2 {
			return bad("not $d, $s")
		}
		a.emit(isa.Instr{Op: isa.NOR, Rd: a.reg(lineNo, ops[0]), Rs: a.reg(lineNo, ops[1]), Rt: isa.RegZero, Line: lineNo})
	case "b":
		if len(ops) != 1 {
			return bad("b label")
		}
		in := isa.Instr{Op: isa.BEQ, Rs: isa.RegZero, Rt: isa.RegZero, Line: lineNo}
		a.target(lineNo, &in, ops[0])
		a.emit(in)
	case "beqz", "bnez":
		if len(ops) != 2 {
			return bad(mn + " $r, label")
		}
		op := isa.BEQ
		if mn == "bnez" {
			op = isa.BNE
		}
		in := isa.Instr{Op: op, Rs: a.reg(lineNo, ops[0]), Rt: isa.RegZero, Line: lineNo}
		a.target(lineNo, &in, ops[1])
		a.emit(in)
	case "blt", "bge", "bgt", "ble":
		if len(ops) != 3 {
			return bad(mn + " $a, $b, label")
		}
		x, y := a.reg(lineNo, ops[0]), a.reg(lineNo, ops[1])
		if mn == "bgt" || mn == "ble" {
			x, y = y, x
		}
		a.emit(isa.Instr{Op: isa.SLT, Rd: isa.RegAT, Rs: x, Rt: y, Line: lineNo})
		op := isa.BNE // blt, bgt: branch when x < y
		if mn == "bge" || mn == "ble" {
			op = isa.BEQ
		}
		in := isa.Instr{Op: op, Rs: isa.RegAT, Rt: isa.RegZero, Line: lineNo}
		a.target(lineNo, &in, ops[2])
		a.emit(in)
	default:
		return false
	}
	return true
}

func parseMemOperand(s string) (base, off string, ok bool) {
	i := strings.IndexByte(s, '(')
	if i < 0 || !strings.HasSuffix(s, ")") {
		return "", "", false
	}
	off = strings.TrimSpace(s[:i])
	if off == "" {
		off = "0"
	}
	base = strings.TrimSpace(s[i+1 : len(s)-1])
	return base, off, true
}

func (a *assembler) reg(lineNo int, s string) isa.Reg {
	if !strings.HasPrefix(s, "$") {
		a.errorf(lineNo, "bad register %q", s)
		return 0
	}
	r, ok := isa.RegByName(s[1:])
	if !ok {
		a.errorf(lineNo, "unknown register %q", s)
		return 0
	}
	return r
}

func (a *assembler) immFor(lineNo int, op isa.Op, s string) int32 {
	switch op {
	case isa.ANDI, isa.ORI, isa.XORI:
		return a.immRange(lineNo, s, 0, 0xFFFF)
	case isa.SLL, isa.SRL, isa.SRA:
		return a.immRange(lineNo, s, 0, 31)
	default:
		return a.immRange(lineNo, s, math.MinInt16, math.MaxInt16)
	}
}

func (a *assembler) immRange(lineNo int, s string, lo, hi int64) int32 {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		a.errorf(lineNo, "bad immediate %q", s)
		return 0
	}
	if v < lo || v > hi {
		a.errorf(lineNo, "immediate %d out of range [%d,%d]", v, lo, hi)
		return 0
	}
	return int32(v)
}

func (a *assembler) target(lineNo int, in *isa.Instr, s string) {
	if strings.HasPrefix(s, "@") {
		v, err := strconv.ParseInt(s[1:], 10, 32)
		if err != nil {
			a.errorf(lineNo, "bad absolute target %q", s)
			return
		}
		in.Imm = int32(v)
		return
	}
	in.Sym = s
	a.fixups = append(a.fixups, fixup{textIdx: len(a.prog.Text), sym: s, half: 0, line: lineNo})
}

func (a *assembler) resolve() {
	for _, f := range a.fixups {
		if f.textIdx >= len(a.prog.Text) {
			continue // emission failed earlier
		}
		in := &a.prog.Text[f.textIdx]
		switch f.half {
		case 0:
			idx, ok := a.prog.Symbols[f.sym]
			if !ok {
				a.errorf(f.line, "undefined label %q", f.sym)
				continue
			}
			in.Imm = int32(idx)
		case 1, 2:
			addr, ok := a.prog.DataSyms[f.sym]
			if !ok {
				// Allow la of text labels too (not used by the compiler).
				if idx, tok := a.prog.Symbols[f.sym]; tok {
					addr, ok = uint32(idx), true
				}
			}
			if !ok {
				a.errorf(f.line, "undefined data symbol %q", f.sym)
				continue
			}
			if f.half == 1 {
				in.Imm = int32(addr >> 16)
			} else {
				in.Imm = int32(addr & 0xFFFF)
			}
		}
	}
}
