package asm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"etap/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
.text
.func main
	addi $t0, $zero, 5
	add $t1, $t0, $t0
	jr $ra
.endfunc
`)
	if len(p.Text) != 3 {
		t.Fatalf("text length %d, want 3", len(p.Text))
	}
	if p.Text[0].Op != isa.ADDI || p.Text[0].Rd != isa.RegT0 || p.Text[0].Imm != 5 {
		t.Fatalf("instr 0 = %+v", p.Text[0])
	}
	f, ok := p.FuncByName("main")
	if !ok || f.Start != 0 || f.End != 3 || f.Tolerant {
		t.Fatalf("func = %+v", f)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
.text
.func f
top:
	addi $t0, $t0, 1
	bne $t0, $t1, top
	beq $t0, $t1, done
	j top
done:
	jr $ra
.endfunc
`)
	if p.Text[1].Imm != 0 {
		t.Fatalf("bne target = %d, want 0", p.Text[1].Imm)
	}
	if p.Text[2].Imm != 4 {
		t.Fatalf("beq target = %d, want 4", p.Text[2].Imm)
	}
	if p.Text[3].Imm != 0 {
		t.Fatalf("j target = %d, want 0", p.Text[3].Imm)
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
.text
.func f
	jr $ra
.endfunc
.data
w:	.word 1, -2, 0x10
h:	.half 1, 0xFFFF
b:	.byte 1, 2, 3
	.align 2
f32:	.float 1.5
s:	.asciiz "hi"
sp:	.space 5
`)
	if got := p.DataSyms["w"]; got != isa.DataBase {
		t.Fatalf("w at 0x%x", got)
	}
	// 3 words = 12 bytes, then halves at 12.
	if got := p.DataSyms["h"]; got != isa.DataBase+12 {
		t.Fatalf("h at 0x%x, want +12", got)
	}
	if got := p.DataSyms["b"]; got != isa.DataBase+16 {
		t.Fatalf("b at 0x%x, want +16", got)
	}
	// bytes end at 19, aligned to 20 for the float.
	if got := p.DataSyms["f32"]; got != isa.DataBase+20 {
		t.Fatalf("f32 at 0x%x, want +20", got)
	}
	if got := p.DataSyms["s"]; got != isa.DataBase+24 {
		t.Fatalf("s at 0x%x, want +24", got)
	}
	// Check encodings.
	if p.Data[4] != 0xFE || p.Data[5] != 0xFF {
		t.Fatalf("word -2 encoded as % x", p.Data[4:8])
	}
	if p.Data[24] != 'h' || p.Data[25] != 'i' || p.Data[26] != 0 {
		t.Fatalf("asciiz encoded as % x", p.Data[24:27])
	}
	if len(p.Data) != 27+5 {
		t.Fatalf("data length %d, want 32", len(p.Data))
	}
	// 1.5 as float32 = 0x3FC00000 little-endian.
	if p.Data[20] != 0 || p.Data[21] != 0 || p.Data[22] != 0xC0 || p.Data[23] != 0x3F {
		t.Fatalf("float 1.5 encoded as % x", p.Data[20:24])
	}
}

func TestPseudoLi(t *testing.T) {
	p := mustAssemble(t, `
.text
.func f
	li $t0, 5
	li $t1, -5
	li $t2, 0x10000
	li $t3, 0x12345678
	jr $ra
.endfunc
`)
	// small positive, small negative: one ADDI each; 0x10000: one LUI;
	// full word: LUI+ORI.
	want := []isa.Op{isa.ADDI, isa.ADDI, isa.LUI, isa.LUI, isa.ORI, isa.JR}
	if len(p.Text) != len(want) {
		t.Fatalf("text length %d, want %d", len(p.Text), len(want))
	}
	for i, op := range want {
		if p.Text[i].Op != op {
			t.Fatalf("instr %d op = %s, want %s", i, p.Text[i].Op, op)
		}
	}
	if p.Text[3].Imm != 0x1234 || p.Text[4].Imm != 0x5678 {
		t.Fatalf("li split = %x / %x", p.Text[3].Imm, p.Text[4].Imm)
	}
}

func TestPseudoLaResolvesDataSymbol(t *testing.T) {
	p := mustAssemble(t, `
.text
.func f
	la $t0, buf
	jr $ra
.endfunc
.data
	.space 100
buf:	.word 7
`)
	addr := p.DataSyms["buf"]
	hi, lo := p.Text[0], p.Text[1]
	if hi.Op != isa.LUI || lo.Op != isa.ORI {
		t.Fatalf("la expanded to %s/%s", hi.Op, lo.Op)
	}
	if uint32(hi.Imm)<<16|uint32(lo.Imm) != addr {
		t.Fatalf("la resolves to 0x%x, want 0x%x", uint32(hi.Imm)<<16|uint32(lo.Imm), addr)
	}
}

func TestPseudoBranches(t *testing.T) {
	p := mustAssemble(t, `
.text
.func f
	blt $t0, $t1, out
	bge $t0, $t1, out
	bgt $t0, $t1, out
	ble $t0, $t1, out
	beqz $t0, out
	bnez $t0, out
	b out
out:
	jr $ra
.endfunc
`)
	// blt/bge/bgt/ble = slt+branch (2 each), beqz/bnez/b = 1 each.
	if len(p.Text) != 4*2+3+1 {
		t.Fatalf("text length %d, want 12", len(p.Text))
	}
	if p.Text[0].Op != isa.SLT || p.Text[0].Rd != isa.RegAT {
		t.Fatalf("blt first instr %+v", p.Text[0])
	}
	if p.Text[1].Op != isa.BNE {
		t.Fatalf("blt second op %s", p.Text[1].Op)
	}
	if p.Text[3].Op != isa.BEQ {
		t.Fatalf("bge second op %s", p.Text[3].Op)
	}
	// bgt swaps operands.
	if p.Text[4].Rs != isa.RegT0+1 || p.Text[4].Rt != isa.RegT0 {
		t.Fatalf("bgt operands %+v", p.Text[4])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", ".text\nfrob $t0, $t1, $t2\n"},
		{"bad register", ".text\nadd $t0, $t1, $q9\n"},
		{"missing label", ".text\nj nowhere\n"},
		{"duplicate label", ".text\nx:\nnop\nx:\nnop\n"},
		{"imm out of range", ".text\naddi $t0, $t0, 99999\n"},
		{"shift out of range", ".text\nsll $t0, $t0, 35\n"},
		{"operand count", ".text\nadd $t0, $t1\n"},
		{"instr in data", ".data\nadd $t0, $t1, $t2\n"},
		{"word in text", ".text\n.word 5\n"},
		{"nested func", ".text\n.func a\nnop\n.func b\nnop\n.endfunc\n.endfunc\n"},
		{"endfunc alone", ".text\n.endfunc\n"},
		{"empty func", ".text\n.func a\n.endfunc\n"},
		{"bad mem operand", ".text\nlw $t0, $t1\n"},
		{"byte range", ".data\n.byte 300\n"},
		{"bad entry", ".entry nothere\n.text\nnop\n"},
		{"duplicate data label", ".data\nx: .word 1\nx: .word 2\n"},
		{"undefined la", ".text\nla $t0, missing\n"},
		{"bad string", `.data` + "\n" + `.asciiz "unterminated` + "\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Fatalf("assembled successfully, want error")
			}
		})
	}
}

func TestCommentsAndLabelsOnOneLine(t *testing.T) {
	p := mustAssemble(t, `
.text
.func f
start: addi $t0, $zero, 1   # trailing comment
next:  ; full line comment style
	add $t1, $t0, $t0 ; another
	jr $ra
.endfunc
`)
	if p.Symbols["start"] != 0 || p.Symbols["next"] != 1 {
		t.Fatalf("labels: %v", p.Symbols)
	}
	if len(p.Text) != 3 {
		t.Fatalf("text length %d", len(p.Text))
	}
}

func TestHashInsideStringIsNotComment(t *testing.T) {
	p := mustAssemble(t, `
.text
.func f
	nop
.endfunc
.data
s: .asciiz "a#b"
`)
	want := []byte{'a', '#', 'b', 0}
	for i, b := range want {
		if p.Data[i] != b {
			t.Fatalf("data = % x", p.Data[:4])
		}
	}
}

func TestEntrySelection(t *testing.T) {
	p := mustAssemble(t, `
.text
.func helper
	jr $ra
.endfunc
.func __start
	nop
.endfunc
`)
	if p.Entry != 1 {
		t.Fatalf("entry = %d, want 1 (__start)", p.Entry)
	}
	p2 := mustAssemble(t, `
.entry helper
.text
.func other
	nop
.endfunc
.func helper
	jr $ra
.endfunc
`)
	if p2.Entry != 1 {
		t.Fatalf("explicit entry = %d, want 1", p2.Entry)
	}
}

// TestDisasmRoundTrip: disassembling any assembled instruction and
// reassembling it reproduces the identical instruction (for ops without
// label operands).
func TestDisasmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	roundTrippable := []isa.Op{
		isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.NOR, isa.SLLV, isa.SRLV, isa.SRAV, isa.SLT, isa.SLTU,
		isa.ADDI, isa.SLTI, isa.LW, isa.SW, isa.LB, isa.LBU, isa.LH, isa.LHU,
		isa.SB, isa.SH, isa.JR, isa.CVTIF, isa.CVTFI, isa.ADDF, isa.SUBF,
		isa.MULF, isa.DIVF, isa.CEQF, isa.CLTF, isa.CLEF, isa.NOP, isa.SYSCALL,
	}
	for trial := 0; trial < 300; trial++ {
		op := roundTrippable[rng.Intn(len(roundTrippable))]
		in := isa.Instr{
			Op:  op,
			Rd:  isa.Reg(rng.Intn(32)),
			Rs:  isa.Reg(rng.Intn(32)),
			Rt:  isa.Reg(rng.Intn(32)),
			Imm: int32(rng.Intn(65536) - 32768),
		}
		// Restrict immediates to each format's legal range.
		switch op {
		case isa.ANDI, isa.ORI, isa.XORI:
			in.Imm = int32(rng.Intn(65536))
		case isa.SLL, isa.SRL, isa.SRA:
			in.Imm = int32(rng.Intn(32))
		}
		src := ".text\n.func f\n\t" + isa.Disasm(in) + "\n\tjr $ra\n.endfunc\n"
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("reassemble %q: %v", isa.Disasm(in), err)
		}
		got := p.Text[0]
		got.Line = 0
		// Normalize operands the format does not encode.
		norm := normalize(in)
		gotNorm := normalize(got)
		if gotNorm != norm {
			t.Fatalf("round trip %q: got %+v, want %+v", isa.Disasm(in), gotNorm, norm)
		}
	}
}

// normalize zeroes fields a format ignores so comparisons are meaningful.
func normalize(in isa.Instr) isa.Instr {
	in.Line = 0
	in.Sym = ""
	switch isa.Format(in.Op) {
	case isa.FmtNone:
		in.Rd, in.Rs, in.Rt, in.Imm = 0, 0, 0, 0
	case isa.Fmt3R:
		in.Imm = 0
	case isa.Fmt2RI, isa.FmtRI:
		in.Rt = 0
		if isa.Format(in.Op) == isa.FmtRI {
			in.Rs = 0
		}
	case isa.Fmt2R:
		in.Rt, in.Imm = 0, 0
	case isa.FmtMem:
		if in.Class() == isa.ClassStore {
			in.Rd = 0
		} else {
			in.Rt = 0
		}
	case isa.FmtJR:
		in.Rd, in.Rt, in.Imm = 0, 0, 0
	}
	return in
}

// TestProgramValidation: quick property — every successfully assembled
// program passes Validate.
func TestProgramValidation(t *testing.T) {
	f := func(nInstr uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nInstr%20) + 1
		var b strings.Builder
		b.WriteString(".text\n.func f\n")
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				b.WriteString("\tadd $t0, $t1, $t2\n")
			case 1:
				b.WriteString("\tlw $t0, 0($sp)\n")
			case 2:
				b.WriteString("\tnop\n")
			case 3:
				b.WriteString("\tli $t3, 123456\n")
			}
		}
		b.WriteString("\tjr $ra\n.endfunc\n")
		p, err := Assemble(b.String())
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
