package campaign

import (
	"math"
	"sort"

	"etap/internal/sim"
)

// aggregate is the online accumulator the collector folds trials into:
// outcome counters, fidelity sums and the Wilson interval inputs. The only
// per-trial data it retains are the detection latencies of Detected trials
// (needed for exact percentiles); everything else aggregates in constant
// space, and unhardened campaigns never detect, so points with millions of
// trials stay cheap.
type aggregate struct {
	trials    int
	crashes   int
	timeouts  int
	detected  int
	recovered int
	degraded  int
	completed int
	masked    int
	accepted  int
	valueN    int
	valueSum  float64
	valueSq   float64
	// recAttempts sums restore-replay rounds over every trial, whatever
	// its final outcome; recLatencies holds per-trial replayed-instruction
	// counts of Recovered trials only, for exact percentiles.
	recAttempts  int
	recLatencies []uint64
	latencies    []uint64
}

func (a *aggregate) add(t Trial) {
	a.trials++
	a.recAttempts += t.RecoveryAttempts
	switch t.Outcome {
	case sim.OK:
		a.completed++
		if t.Masked {
			a.masked++
		}
		if t.Acceptable {
			a.accepted++
		}
		if !math.IsNaN(t.Value) {
			a.valueN++
			a.valueSum += t.Value
			a.valueSq += t.Value * t.Value
		}
		if t.RecoveryAttempts > 0 {
			// Completed after rollback with output still different from
			// golden (an equal output would have classified Recovered):
			// the SDC survived recovery.
			a.degraded++
		}
	case sim.Crash:
		a.crashes++
	case sim.Detected:
		a.detected++
		if t.HasLatency {
			a.latencies = append(a.latencies, t.DetectLatency)
		}
	case sim.Recovered:
		a.recovered++
		a.recLatencies = append(a.recLatencies, t.RecoverInstret)
	default:
		a.timeouts++
	}
}

// failInterval is the Wilson 95% confidence interval (as fractions) on
// the catastrophic-failure rate so far.
func (a *aggregate) failInterval() (lo, hi float64) {
	return wilson(a.crashes+a.timeouts, a.trials, 1.96)
}

// ciWidth is the widest of the reported Wilson intervals — the
// catastrophic-failure rate and the detection rate — so an early stop
// guarantees every interval the point reports meets the target width.
// For unhardened programs detected is always zero and the detection
// interval shrinks deterministically with the trial count, so it only
// mildly delays stopping there.
func (a *aggregate) ciWidth() float64 {
	flo, fhi := a.failInterval()
	dlo, dhi := wilson(a.detected, a.trials, 1.96)
	if d := dhi - dlo; d > fhi-flo {
		return d
	}
	return fhi - flo
}

// PointResult aggregates one measurement point. Detected counts trials a
// hardened program stopped via trapdet (see internal/harden); for programs
// without redundancy checks it is always zero. Detected trials are neither
// completions nor catastrophic failures, so FailPct and AcceptPct exclude
// them by construction (both are fractions of all trials).
type PointResult struct {
	Errors      int     `json:"errors"`
	LoBit       uint8   `json:"lo_bit"`
	HiBit       uint8   `json:"hi_bit"`
	Trials      int     `json:"trials"`
	Crashes     int     `json:"crashes"`
	Timeouts    int     `json:"timeouts"`
	Detected    int     `json:"detected"`
	Completed   int     `json:"completed"`
	Masked      int     `json:"masked"`
	Accepted    int     `json:"accepted"`
	MeanValue   float64 `json:"mean_value"`
	ValueStddev float64 `json:"value_stddev"`
	FailPct     float64 `json:"fail_pct"`
	AcceptPct   float64 `json:"accept_pct"`
	DetectPct   float64 `json:"detect_pct"`
	FailLoPct   float64 `json:"fail_lo_pct"`
	FailHiPct   float64 `json:"fail_hi_pct"`
	DetectLoPct float64 `json:"detect_lo_pct"`
	DetectHiPct float64 `json:"detect_hi_pct"`
	// DetectLatencyP50/P95 are nearest-rank percentiles of the
	// injection→trapdet distance (retired instructions) over Detected
	// trials; 0 when no trial was detected. The latency window bounds how
	// long a corrupted value was architecturally live before a redundancy
	// check caught it — i.e. the recovery cost of checkpoint rollback.
	DetectLatencyP50 uint64 `json:"detect_latency_p50"`
	DetectLatencyP95 uint64 `json:"detect_latency_p95"`
	// Recovered counts trials that trapped, rolled back to a checkpoint
	// and finally completed with output bit-identical to the golden run
	// (Point.MaxRecoveries > 0; see sim.Recovered). Degraded counts the
	// subset of Completed that finished after one or more replays with
	// output still differing from golden — an SDC that survived rollback.
	// RecoveryAttempts totals restore-replay rounds across every trial of
	// the point, and RecoverLatencyP50/P95 are nearest-rank percentiles,
	// over Recovered trials, of the instructions their replays retired.
	Recovered         int     `json:"recovered"`
	Degraded          int     `json:"degraded"`
	RecoveryAttempts  int     `json:"recovery_attempts"`
	RecoverPct        float64 `json:"recover_pct"`
	RecoverLoPct      float64 `json:"recover_lo_pct"`
	RecoverHiPct      float64 `json:"recover_hi_pct"`
	RecoverLatencyP50 uint64  `json:"recover_latency_p50"`
	RecoverLatencyP95 uint64  `json:"recover_latency_p95"`
	// Availability accounting in the tolerated/detected/untolerated style
	// of freestore's fault-tolerance model: Tolerated counts trials whose
	// work still completed acceptably (threshold-passing completions plus
	// Recovered trials), the Detected counter above covers fail-fast
	// stops that recovery was unable (or not allowed) to absorb, and
	// Untolerated is everything else — crashes, timeouts and unacceptable
	// completions. Tolerated + Detected + Untolerated == Trials, and
	// AvailabilityPct = 100 * Tolerated / Trials with a Wilson 95%
	// interval [AvailabilityLoPct, AvailabilityHiPct].
	Tolerated         int     `json:"tolerated"`
	Untolerated       int     `json:"untolerated"`
	AvailabilityPct   float64 `json:"availability_pct"`
	AvailabilityLoPct float64 `json:"availability_lo_pct"`
	AvailabilityHiPct float64 `json:"availability_hi_pct"`
	EarlyStopped      bool    `json:"early_stopped"`
	// Cancelled marks a partial aggregate: the point's context was
	// cancelled before the trial budget (or early stop) was reached. A
	// cancelled point's numbers are not reproducible.
	Cancelled bool `json:"cancelled"`
}

func (a *aggregate) result(errors int, lo, hi uint8, stopped, cancelled bool) PointResult {
	r := PointResult{
		Errors:       errors,
		LoBit:        lo,
		HiBit:        hi,
		Trials:       a.trials,
		Crashes:      a.crashes,
		Timeouts:     a.timeouts,
		Detected:     a.detected,
		Completed:    a.completed,
		Masked:       a.masked,
		Accepted:     a.accepted,
		MeanValue:    math.NaN(),
		ValueStddev:  math.NaN(),
		EarlyStopped: stopped,
		Cancelled:    cancelled,
	}
	r.DetectLatencyP50 = percentile(a.latencies, 50)
	r.DetectLatencyP95 = percentile(a.latencies, 95)
	r.Recovered = a.recovered
	r.Degraded = a.degraded
	r.RecoveryAttempts = a.recAttempts
	r.RecoverLatencyP50 = percentile(a.recLatencies, 50)
	r.RecoverLatencyP95 = percentile(a.recLatencies, 95)
	r.Tolerated = a.accepted + a.recovered
	r.Untolerated = a.trials - r.Tolerated - a.detected
	if a.valueN > 0 {
		mean := a.valueSum / float64(a.valueN)
		r.MeanValue = mean
		if a.valueN > 1 {
			varr := (a.valueSq - float64(a.valueN)*mean*mean) / float64(a.valueN-1)
			if varr < 0 {
				varr = 0
			}
			r.ValueStddev = math.Sqrt(varr)
		}
	}
	if a.trials > 0 {
		r.FailPct = 100 * float64(a.crashes+a.timeouts) / float64(a.trials)
		r.AcceptPct = 100 * float64(a.accepted) / float64(a.trials)
		r.DetectPct = 100 * float64(a.detected) / float64(a.trials)
		r.RecoverPct = 100 * float64(a.recovered) / float64(a.trials)
		r.AvailabilityPct = 100 * float64(r.Tolerated) / float64(a.trials)
	}
	flo, fhi := a.failInterval()
	r.FailLoPct, r.FailHiPct = 100*flo, 100*fhi
	dlo, dhi := wilson(a.detected, a.trials, 1.96)
	r.DetectLoPct, r.DetectHiPct = 100*dlo, 100*dhi
	rlo, rhi := wilson(a.recovered, a.trials, 1.96)
	r.RecoverLoPct, r.RecoverHiPct = 100*rlo, 100*rhi
	alo, ahi := wilson(r.Tolerated, a.trials, 1.96)
	r.AvailabilityLoPct, r.AvailabilityHiPct = 100*alo, 100*ahi
	return r
}

// percentile is the nearest-rank p-th percentile of vs; it sorts a copy
// and returns 0 for an empty slice.
func percentile(vs []uint64, p int) uint64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]uint64, len(vs))
	copy(sorted, vs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// wilson returns the Wilson score interval for k successes in n trials at
// critical value z, as fractions in [0,1]. For n == 0 the interval is the
// vacuous [0,1].
func wilson(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	den := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - half) / den
	hi = (center + half) / den
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
