package campaign

import (
	"math"
	"sort"

	"etap/internal/sim"
)

// aggregate is the online accumulator the collector folds trials into:
// outcome counters, fidelity sums and the Wilson interval inputs. The only
// per-trial data it retains are the detection latencies of Detected trials
// (needed for exact percentiles); everything else aggregates in constant
// space, and unhardened campaigns never detect, so points with millions of
// trials stay cheap.
type aggregate struct {
	trials    int
	crashes   int
	timeouts  int
	detected  int
	completed int
	masked    int
	accepted  int
	valueN    int
	valueSum  float64
	valueSq   float64
	latencies []uint64
}

func (a *aggregate) add(t Trial) {
	a.trials++
	switch t.Outcome {
	case sim.OK:
		a.completed++
		if t.Masked {
			a.masked++
		}
		if t.Acceptable {
			a.accepted++
		}
		if !math.IsNaN(t.Value) {
			a.valueN++
			a.valueSum += t.Value
			a.valueSq += t.Value * t.Value
		}
	case sim.Crash:
		a.crashes++
	case sim.Detected:
		a.detected++
		if t.HasLatency {
			a.latencies = append(a.latencies, t.DetectLatency)
		}
	default:
		a.timeouts++
	}
}

// failInterval is the Wilson 95% confidence interval (as fractions) on
// the catastrophic-failure rate so far.
func (a *aggregate) failInterval() (lo, hi float64) {
	return wilson(a.crashes+a.timeouts, a.trials, 1.96)
}

// ciWidth is the widest of the reported Wilson intervals — the
// catastrophic-failure rate and the detection rate — so an early stop
// guarantees every interval the point reports meets the target width.
// For unhardened programs detected is always zero and the detection
// interval shrinks deterministically with the trial count, so it only
// mildly delays stopping there.
func (a *aggregate) ciWidth() float64 {
	flo, fhi := a.failInterval()
	dlo, dhi := wilson(a.detected, a.trials, 1.96)
	if d := dhi - dlo; d > fhi-flo {
		return d
	}
	return fhi - flo
}

// PointResult aggregates one measurement point. Detected counts trials a
// hardened program stopped via trapdet (see internal/harden); for programs
// without redundancy checks it is always zero. Detected trials are neither
// completions nor catastrophic failures, so FailPct and AcceptPct exclude
// them by construction (both are fractions of all trials).
type PointResult struct {
	Errors      int     `json:"errors"`
	LoBit       uint8   `json:"lo_bit"`
	HiBit       uint8   `json:"hi_bit"`
	Trials      int     `json:"trials"`
	Crashes     int     `json:"crashes"`
	Timeouts    int     `json:"timeouts"`
	Detected    int     `json:"detected"`
	Completed   int     `json:"completed"`
	Masked      int     `json:"masked"`
	Accepted    int     `json:"accepted"`
	MeanValue   float64 `json:"mean_value"`
	ValueStddev float64 `json:"value_stddev"`
	FailPct     float64 `json:"fail_pct"`
	AcceptPct   float64 `json:"accept_pct"`
	DetectPct   float64 `json:"detect_pct"`
	FailLoPct   float64 `json:"fail_lo_pct"`
	FailHiPct   float64 `json:"fail_hi_pct"`
	DetectLoPct float64 `json:"detect_lo_pct"`
	DetectHiPct float64 `json:"detect_hi_pct"`
	// DetectLatencyP50/P95 are nearest-rank percentiles of the
	// injection→trapdet distance (retired instructions) over Detected
	// trials; 0 when no trial was detected. The latency window bounds how
	// long a corrupted value was architecturally live before a redundancy
	// check caught it — i.e. the recovery cost of checkpoint rollback.
	DetectLatencyP50 uint64 `json:"detect_latency_p50"`
	DetectLatencyP95 uint64 `json:"detect_latency_p95"`
	EarlyStopped     bool   `json:"early_stopped"`
	// Cancelled marks a partial aggregate: the point's context was
	// cancelled before the trial budget (or early stop) was reached. A
	// cancelled point's numbers are not reproducible.
	Cancelled bool `json:"cancelled"`
}

func (a *aggregate) result(errors int, lo, hi uint8, stopped, cancelled bool) PointResult {
	r := PointResult{
		Errors:       errors,
		LoBit:        lo,
		HiBit:        hi,
		Trials:       a.trials,
		Crashes:      a.crashes,
		Timeouts:     a.timeouts,
		Detected:     a.detected,
		Completed:    a.completed,
		Masked:       a.masked,
		Accepted:     a.accepted,
		MeanValue:    math.NaN(),
		ValueStddev:  math.NaN(),
		EarlyStopped: stopped,
		Cancelled:    cancelled,
	}
	r.DetectLatencyP50 = percentile(a.latencies, 50)
	r.DetectLatencyP95 = percentile(a.latencies, 95)
	if a.valueN > 0 {
		mean := a.valueSum / float64(a.valueN)
		r.MeanValue = mean
		if a.valueN > 1 {
			varr := (a.valueSq - float64(a.valueN)*mean*mean) / float64(a.valueN-1)
			if varr < 0 {
				varr = 0
			}
			r.ValueStddev = math.Sqrt(varr)
		}
	}
	if a.trials > 0 {
		r.FailPct = 100 * float64(a.crashes+a.timeouts) / float64(a.trials)
		r.AcceptPct = 100 * float64(a.accepted) / float64(a.trials)
		r.DetectPct = 100 * float64(a.detected) / float64(a.trials)
	}
	flo, fhi := a.failInterval()
	r.FailLoPct, r.FailHiPct = 100*flo, 100*fhi
	dlo, dhi := wilson(a.detected, a.trials, 1.96)
	r.DetectLoPct, r.DetectHiPct = 100*dlo, 100*dhi
	return r
}

// percentile is the nearest-rank p-th percentile of vs; it sorts a copy
// and returns 0 for an empty slice.
func percentile(vs []uint64, p int) uint64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]uint64, len(vs))
	copy(sorted, vs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// wilson returns the Wilson score interval for k successes in n trials at
// critical value z, as fractions in [0,1]. For n == 0 the interval is the
// vacuous [0,1].
func wilson(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	den := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - half) / den
	hi = (center + half) / den
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
