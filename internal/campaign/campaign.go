// Package campaign is the high-throughput fault-injection campaign
// engine. It combines three mechanisms so that characterization sweeps
// run as fast as the hardware allows:
//
//   - Checkpointed trials: the engine records one golden pass with
//     sim.Record and starts every faulty trial from the latest checkpoint
//     before its first injection point instead of from instruction zero.
//     Checkpoint memory is shared copy-on-write, so trials are cheap to
//     fork and bit-identical to from-scratch runs.
//
//   - Sharded execution: trials are grouped into fixed-size shards, each
//     with its own deterministic RNG stream derived from (seed, point,
//     shard index). Workers pull whole shards, and the aggregator folds
//     shard results back in shard order, so a campaign's numbers are
//     reproducible for any worker count.
//
//   - Streaming aggregation: outcome counters and fidelity sums update
//     online as shards complete, with Wilson confidence intervals on the
//     catastrophic-failure rate; a point can stop early once its interval
//     is narrower than a target width.
//
// docs/CAMPAIGN.md describes the architecture and the reasoning behind
// the checkpoint-interval and early-stop choices.
package campaign

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"etap/internal/analysis"
	"etap/internal/fault"
	"etap/internal/isa"
	obstrace "etap/internal/obs/trace"
	"etap/internal/sim"
)

// ScoreFunc evaluates a completed trial's output against the golden
// output, returning the application's fidelity value and whether it passes
// the acceptability threshold. It must be a pure function of the byte
// contents: the engine synthesizes statically-pruned trials by scoring
// the golden output against itself, and purity is what keeps that
// bit-identical to scoring the (equal) simulated output.
type ScoreFunc func(golden, output []byte) (value float64, acceptable bool)

// Config parameterises an Engine.
type Config struct {
	// Interval is the initial checkpoint spacing in instructions; 0
	// selects the sim default (16384, with geometric thinning).
	Interval uint64
	// MaxSnapshots bounds the live checkpoint count (see
	// sim.RecordOptions); 0 selects the default of 128.
	MaxSnapshots int
	// Workers is the default worker-pool size for RunPoint; 0 means
	// GOMAXPROCS. Worker count never affects results.
	Workers int
	// ShardSize is the number of trials per shard, the unit of work
	// distribution, RNG streaming and early-stop decisions. Defaults
	// to 32.
	ShardSize int
	// Seed is the base seed for trial schedules. Defaults to 1.
	Seed int64
	// DisablePrune turns off static injection pruning, forcing every
	// trial through the simulator. Pruning never changes results — the
	// differential tests pin pruned and unpruned campaigns bit-identical
	// — so this exists for those tests and for benchmarking the win.
	DisablePrune bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Engine runs fault-injection campaigns for one program, input and
// eligibility mask. Constructing it performs the golden pass (recording
// checkpoints along the way); the engine is then safe for concurrent use.
type Engine struct {
	Prog     *isa.Program
	Eligible []bool
	// Clean is the fault-free reference run.
	Clean sim.Result
	// Budget is the instruction limit applied to faulty trials; exceeding
	// it classifies a trial as an infinite execution.
	Budget uint64
	// Score, when non-nil, grades completed trials. Without it a
	// completed trial counts as acceptable only when its output is
	// bit-identical to the clean output.
	Score ScoreFunc
	// DetectClass, when non-nil, classifies a Detected trial's
	// sim.Result.DetectPC into the transform kind that caught it
	// ("dup", "cfs"); hardened subjects wire it to
	// harden.Result.CheckKindAt. It labels the detection-latency
	// histogram and trial records; it never influences trial execution
	// or aggregation.
	DetectClass func(pc int) string

	rec *sim.Recording
	cfg Config

	// Static injection pruning: benignStream is a bitmap over the clean
	// run's eligible-stream ordinals (bit o-1 set means ordinal o strikes
	// a statically benign site), built during the golden pass by the
	// sim.Config.SiteVisit hook at zero extra passes. pruneOK gates use:
	// it is false when pruning is disabled, the program's CFG defeats
	// classification, or the observed stream length disagreed with the
	// clean run. benignDyn counts the set bits; pruned counts skipped
	// trials.
	benignStream []uint64
	benignDyn    uint64
	pruneOK      bool
	class        *analysis.Classification
	pruned       atomic.Uint64
}

// New prepares an engine. simCfg.Plan and simCfg.MaxInstr are managed by
// the engine and must be unset.
func New(p *isa.Program, eligible []bool, simCfg sim.Config, cfg Config) (*Engine, error) {
	if simCfg.Plan != nil {
		return nil, fmt.Errorf("campaign: simCfg.Plan is managed by the engine")
	}
	if simCfg.MaxInstr != 0 {
		return nil, fmt.Errorf("campaign: simCfg.MaxInstr is managed by the engine")
	}
	if len(eligible) != len(p.Text) {
		return nil, fmt.Errorf("campaign: eligibility mask has %d entries for %d instructions", len(eligible), len(p.Text))
	}
	if !fault.AnyEligible(eligible) {
		return nil, fmt.Errorf("campaign: eligibility mask marks no instructions; nothing to inject into")
	}
	cfg = cfg.withDefaults()
	probe := simCfg
	probe.Plan = &sim.FaultPlan{Eligible: eligible}

	// Static pruning setup: classify fault sites once, then let the
	// golden pass (which already walks the whole eligible stream) record
	// which ordinals strike benign sites. Classification failure — e.g. a
	// hand-written program whose control flow the CFG builder rejects —
	// silently disables pruning; the campaign still runs, every trial
	// simulated.
	var cls *analysis.Classification
	var benign []uint64
	var benignDyn, streamLen uint64
	if !cfg.DisablePrune {
		if c, err := analysis.Classify(p); err == nil {
			cls = c
			probe.SiteVisit = func(pc int) {
				if cls.Benign[pc] {
					w := streamLen >> 6
					for w >= uint64(len(benign)) {
						benign = append(benign, 0)
					}
					benign[w] |= 1 << (streamLen & 63)
					benignDyn++
				}
				streamLen++
			}
		}
	}

	rec, err := sim.Record(p, probe, sim.RecordOptions{Interval: cfg.Interval, MaxSnapshots: cfg.MaxSnapshots})
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	clean := rec.Result
	if clean.Outcome != sim.OK {
		return nil, fmt.Errorf("campaign: clean run did not complete: %s (trap: %s)", clean.Outcome, clean.Trap)
	}
	if clean.EligibleExec == 0 {
		return nil, fmt.Errorf("campaign: no eligible instructions executed; nothing to inject into")
	}
	e := &Engine{
		Prog:     p,
		Eligible: eligible,
		Clean:    clean,
		Budget:   clean.Instret*16 + 10_000_000,
		rec:      rec,
		cfg:      cfg,
	}
	// Plan ordinals index the clean eligible stream 1..EligibleExec; a
	// bitmap built over anything else would mis-prune, so it is dropped
	// unless the hook saw exactly that stream.
	if cls != nil && streamLen == clean.EligibleExec {
		e.benignStream = benign
		e.benignDyn = benignDyn
		e.class = cls
		e.pruneOK = true
	}
	return e, nil
}

// PruningEnabled reports whether static injection pruning is active.
func (e *Engine) PruningEnabled() bool { return e.pruneOK }

// Classification exposes the static fault-site triage pruning runs on
// (nil when pruning is off).
func (e *Engine) Classification() *analysis.Classification { return e.class }

// StaticPruneFraction is the fraction of the clean run's eligible
// stream that strikes statically benign sites — the share of the
// single-fault trial space the engine can skip without simulating.
func (e *Engine) StaticPruneFraction() float64 {
	if !e.pruneOK || e.Clean.EligibleExec == 0 {
		return 0
	}
	return float64(e.benignDyn) / float64(e.Clean.EligibleExec)
}

// PrunedTrials reports how many trials were answered statically instead
// of simulated, across all points run so far.
func (e *Engine) PrunedTrials() uint64 { return e.pruned.Load() }

// streamBenign reports whether eligible-stream ordinal at (1-based)
// strikes a statically benign site.
func (e *Engine) streamBenign(at uint64) bool {
	if at == 0 {
		return false
	}
	w := (at - 1) >> 6
	if w >= uint64(len(e.benignStream)) {
		return false
	}
	return e.benignStream[w]>>((at-1)&63)&1 == 1
}

// planBenign reports whether every injection of a plan strikes a
// statically benign site (vacuously true for fault-free plans), making
// the whole trial's outcome provably identical to the clean run.
func (e *Engine) planBenign(plan *sim.FaultPlan) bool {
	for _, inj := range plan.Injections {
		if !e.streamBenign(inj.At) {
			return false
		}
	}
	return true
}

// Checkpoints reports how many checkpoints the golden pass captured.
func (e *Engine) Checkpoints() int { return len(e.rec.Snapshots()) }

// EligibleFraction is the dynamic fraction of executed instructions that
// were eligible in the clean run.
func (e *Engine) EligibleFraction() float64 {
	if e.Clean.Instret == 0 {
		return 0
	}
	return float64(e.Clean.EligibleExec) / float64(e.Clean.Instret)
}

// RunPlan executes one trial under a prepared plan, resuming from the
// latest checkpoint before the plan's first injection (or, with no
// injections, from the final checkpoint). The plan's eligibility mask must
// be the engine's.
func (e *Engine) RunPlan(plan *sim.FaultPlan) sim.Result {
	return e.rec.RunFrom(e.planIdx(plan), plan, e.Budget)
}

// RunPlanRecover is RunPlan with checkpoint-restore recovery applied to
// Detected trials: up to maxAttempts restore-replay rounds per trial (see
// Point.MaxRecoveries). maxAttempts 0 degenerates to RunPlan.
func (e *Engine) RunPlanRecover(plan *sim.FaultPlan, maxAttempts int) sim.Result {
	return e.rec.RunRecover(e.planIdx(plan), plan, e.Budget, sim.RecoveryPolicy{MaxAttempts: maxAttempts})
}

// planIdx picks the checkpoint a trial plan resumes from.
func (e *Engine) planIdx(plan *sim.FaultPlan) int {
	if len(plan.Injections) > 0 {
		return e.rec.SnapshotBefore(plan.Injections[0].At)
	}
	return len(e.rec.Snapshots()) - 1
}

// Run executes one faulty trial with n errors, deterministic in seed.
func (e *Engine) Run(n int, seed int64) sim.Result {
	return e.RunBits(n, seed, 0, 31)
}

// RunBits is Run with the flipped bit restricted to [loBit, hiBit].
func (e *Engine) RunBits(n int, seed int64, loBit, hiBit uint8) sim.Result {
	plan, err := fault.NewPlanBits(e.Eligible, e.Clean.EligibleExec, n, seed, loBit, hiBit)
	if err != nil {
		// New rejects empty eligible streams, so a plan error here means
		// the engine was built by hand around its constructor.
		panic(err)
	}
	return e.RunPlan(plan)
}

// Point specifies one measurement point: how many errors per trial, where
// in the word they may land, and how much statistical work to do.
type Point struct {
	// Errors is the number of bit flips injected per trial.
	Errors int
	// LoBit/HiBit restrict flips to the inclusive bit lane
	// [LoBit, HiBit], with the same semantics as Engine.RunBits: pass
	// 0, 31 for the full word, 0, 0 for bit zero only. HiBit above 31
	// clamps to 31; LoBit above HiBit collapses to HiBit.
	LoBit, HiBit uint8
	// MaxTrials is the trial budget for the point.
	MaxTrials int
	// MinTrials is the floor before early stopping may trigger. Defaults
	// to 2 shards' worth, clamped to half the trial budget so StopWidth
	// stays meaningful for small budgets.
	MinTrials int
	// StopWidth, when positive, stops the point early once every
	// reported Wilson 95% interval — the catastrophic-failure rate and
	// the detection rate — is narrower than this fraction (e.g. 0.05
	// for ±2.5 points), so detection campaigns converge on the number
	// they exist to measure.
	StopWidth float64
	// Seed overrides the engine seed for this point; 0 keeps it.
	Seed int64
	// Workers overrides the engine worker count; 0 keeps it. Never
	// affects results.
	Workers int
	// MaxRecoveries enables checkpoint-restore recovery for Detected
	// trials: a trapdet rolls the trial back to the latest checkpoint
	// strictly before the detection point and replays it with the
	// injections that had not yet fired, up to this many restore-replay
	// rounds per trial (see sim.RecoveryPolicy). Zero, the default, keeps
	// detection terminal — the point is then bit-identical to one run
	// before recovery existed.
	MaxRecoveries int
}

// Trial is the record of one executed trial, as seen by RunPoint's
// observer.
type Trial struct {
	Outcome sim.Outcome
	// Value/Acceptable come from the engine's ScoreFunc and are
	// meaningful only for completed trials (Value is NaN without a
	// ScoreFunc).
	Value      float64
	Acceptable bool
	// Masked reports a completed trial whose output is bit-identical to
	// the clean output (the AVF bin).
	Masked   bool
	Instret  uint64
	Injected int
	// Shard is the index of the shard that executed the trial. The
	// trial→shard mapping depends only on the point, never on scheduling.
	Shard int
	// DetectLatency is the injection→trapdet distance in retired
	// instructions; HasLatency reports whether the trial was Detected with
	// a measurable window (see sim.Result.DetectLatency).
	DetectLatency uint64
	HasLatency    bool
	// DetectKind is the transform class ("dup", "cfs") of the trapdet
	// that ended a Detected trial, from the engine's DetectClass;
	// "unknown" for Detected trials without a classifier, "" otherwise.
	DetectKind string
	// RecoveryAttempts counts the checkpoint restore-replay rounds the
	// trial consumed (Point.MaxRecoveries), and RecoverInstret the
	// instructions those replays retired. Both are zero with recovery
	// disabled or for trials that never trapped.
	RecoveryAttempts int
	RecoverInstret   uint64
}

// Observer receives every aggregated trial of a point in deterministic
// order. It runs on the collector goroutine, so no locking is needed, but
// a slow observer backpressures aggregation.
type Observer func(trial int, tr Trial)

// RunPoint executes up to pt.MaxTrials trials, aggregating online and
// early-stopping once the failure-rate confidence interval is tight
// enough. observe, when non-nil, receives every aggregated trial in
// deterministic order (it runs on the collector goroutine; no locking
// needed). Results are identical for any worker count.
//
// Cancelling ctx stops the point between trials: in-flight trials finish
// (a trial is at most one budgeted simulation), no new trials start, and
// the partial aggregate comes back with Cancelled set. A cancelled
// point's numbers depend on how far work had progressed and are NOT
// reproducible; re-running the same point under a live context is
// bit-identical to a never-cancelled run at every worker count.
func (e *Engine) RunPoint(ctx context.Context, pt Point, observe Observer) PointResult {
	if ctx == nil {
		ctx = context.Background()
	}
	campPoints.Inc()
	// Tracing is observational only: spans nest via ctx (HTTP → job →
	// point → shard) and record what ran, never influencing RNG streams,
	// scheduling or aggregation (pinned by the root determinism guard).
	// With no tracer on ctx every span call is a nil no-op.
	ctx, pointSpan := obstrace.Start(ctx, "campaign.point",
		obstrace.Int("errors", int64(pt.Errors)),
		obstrace.Int("max_trials", int64(pt.MaxTrials)))
	defer pointSpan.End()
	// Clamp the lane the same way plan generation will, so reported
	// lanes, shard seeds and the actual flips all agree.
	lo, hi := pt.LoBit, pt.HiBit
	if hi > 31 {
		hi = 31
	}
	if lo > hi {
		lo = hi
	}
	if pt.MaxTrials <= 0 {
		pt.MaxTrials = 1
	}
	seed := pt.Seed
	if seed == 0 {
		seed = e.cfg.Seed
	}
	shardSize := e.cfg.ShardSize
	if pt.MinTrials <= 0 {
		pt.MinTrials = 2 * shardSize
		if half := pt.MaxTrials / 2; half < pt.MinTrials {
			pt.MinTrials = half
		}
	}
	numShards := (pt.MaxTrials + shardSize - 1) / shardSize
	workers := pt.Workers
	if workers <= 0 {
		workers = e.cfg.Workers
	}
	if workers > numShards {
		workers = numShards
	}

	type shardOut struct {
		idx    int
		trials []Trial
	}
	// curtailed records whether cancellation actually cut work short (a
	// shard skipped, truncated, or never fed). A cancel that lands after
	// the full budget ran leaves the point complete and un-flagged.
	var stop, curtailed atomic.Bool
	shardCh := make(chan int)
	outCh := make(chan shardOut, workers)

	go func() {
		defer close(shardCh)
		for s := 0; s < numShards; s++ {
			if stop.Load() {
				return
			}
			select {
			case shardCh <- s:
			case <-ctx.Done():
				curtailed.Store(true)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range shardCh {
				if stop.Load() {
					outCh <- shardOut{s, nil}
					continue
				}
				if ctx.Err() != nil {
					curtailed.Store(true)
					outCh <- shardOut{s, nil}
					continue
				}
				count := shardSize
				if rem := pt.MaxTrials - s*shardSize; rem < count {
					count = rem
				}
				trials := e.runShard(ctx, seed, pt.Errors, lo, hi, pt.MaxRecoveries, s, count)
				if len(trials) < count {
					curtailed.Store(true)
				}
				outCh <- shardOut{s, trials}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outCh)
	}()

	// The collector folds shards in index order so early-stop decisions —
	// and therefore the reported trial count — do not depend on worker
	// scheduling. Shards finished after the stop decision are discarded.
	var a aggregate
	pending := make(map[int][]Trial)
	next, trialBase := 0, 0
	stopped := false
	for out := range outCh {
		if stopped {
			continue
		}
		pending[out.idx] = out.trials
		for !stopped {
			trials, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			for i, tr := range trials {
				a.add(tr)
				if observe != nil {
					observe(trialBase+i, tr)
				}
			}
			trialBase += len(trials)
			next++
			if next < numShards && pt.StopWidth > 0 && a.trials >= pt.MinTrials {
				if a.ciWidth() < pt.StopWidth {
					stopped = true
					stop.Store(true)
				}
			}
		}
	}
	r := a.result(pt.Errors, lo, hi, stopped, curtailed.Load())
	pointSpan.SetAttr(
		obstrace.Int("trials_run", int64(r.Trials)),
		obstrace.Bool("stopped_early", r.EarlyStopped),
		obstrace.Bool("cancelled", r.Cancelled))
	return r
}

// runShard executes one shard's trials sequentially off the shard's own
// RNG stream. A cancelled context stops the shard between trials and
// returns the trials finished so far. The whole shard runs on one
// sim.Runner, so machine state, page tables and sparse maps are built once
// and reused across its trials (batched trial scheduling); results stay
// bit-identical to per-trial construction.
func (e *Engine) runShard(ctx context.Context, seed int64, errors int, lo, hi uint8, maxRec, shard, count int) []Trial {
	defer observeShard(time.Now())
	// One span per shard, never per trial: span creation stays off the
	// trial path, and per-trial data rides as bounded span events
	// recorded between trials (outside the engine step loop).
	_, span := obstrace.Start(ctx, "campaign.shard",
		obstrace.Int("shard", int64(shard)),
		obstrace.Int("trials", int64(count)))
	defer span.End()
	rng := rand.New(rand.NewSource(shardSeed(seed, errors, lo, hi, shard)))
	rn := e.rec.NewRunner()
	defer rn.Close()
	trials := make([]Trial, 0, count)
	for i := 0; i < count; i++ {
		if ctx.Err() != nil {
			return trials
		}
		plan, err := fault.NewPlanBitsRand(rng, e.Eligible, e.Clean.EligibleExec, errors, lo, hi)
		if err != nil {
			panic(err) // unreachable: New rejects empty eligible streams
		}
		if e.pruneOK && e.planBenign(plan) {
			// Every flip lands in a dead (or discarded) destination, so
			// the execution is provably the clean run: synthesize the
			// trial the simulator would have produced. The plan was still
			// drawn from the RNG stream, so subsequent trials are
			// unaffected. Bit-identity with a simulated run is pinned by
			// TestPruningDifferential.
			tr := Trial{Outcome: sim.OK, Value: math.NaN(), Masked: true,
				Instret: e.Clean.Instret, Injected: len(plan.Injections), Shard: shard}
			if e.Score != nil {
				tr.Value, tr.Acceptable = e.Score(e.Clean.Output, e.Clean.Output)
			} else {
				tr.Acceptable = true
			}
			e.pruned.Add(1)
			campTrialsPruned.Inc()
			countTrial(tr)
			if span != nil && span.EventRoom() > 0 {
				span.Event("trial",
					obstrace.Int("trial", int64(i)),
					obstrace.String("outcome", tr.Outcome.String()),
					obstrace.Int("instret", int64(tr.Instret)),
					obstrace.Bool("pruned", true))
			}
			trials = append(trials, tr)
			continue
		}
		res := rn.RunRecover(e.planIdx(plan), plan, e.Budget, sim.RecoveryPolicy{MaxAttempts: maxRec})
		tr := Trial{Outcome: res.Outcome, Value: math.NaN(), Instret: res.Instret, Injected: res.Injected, Shard: shard,
			RecoveryAttempts: res.RecoveryAttempts, RecoverInstret: res.RecoverInstret}
		tr.DetectLatency, tr.HasLatency = res.DetectLatency()
		if res.Outcome == sim.Detected {
			tr.DetectKind = "unknown"
			if e.DetectClass != nil {
				if k := e.DetectClass(res.DetectPC); k != "" {
					tr.DetectKind = k
				}
			}
		}
		if res.Outcome == sim.OK {
			tr.Masked = bytes.Equal(res.Output, e.Clean.Output)
			if e.Score != nil {
				tr.Value, tr.Acceptable = e.Score(e.Clean.Output, res.Output)
			} else {
				tr.Acceptable = tr.Masked
			}
		}
		countTrial(tr)
		if span != nil && span.EventRoom() > 0 {
			attrs := []obstrace.Attr{
				obstrace.Int("trial", int64(i)),
				obstrace.String("outcome", tr.Outcome.String()),
				obstrace.Int("instret", int64(tr.Instret)),
				obstrace.Int("inject_instret", int64(res.FirstInjectInstret)),
			}
			if tr.DetectKind != "" {
				attrs = append(attrs, obstrace.String("transform", tr.DetectKind))
			}
			span.Event("trial", attrs...)
		}
		trials = append(trials, tr)
	}
	return trials
}

// shardSeed derives a shard's RNG seed from the campaign seed and the
// point's identity via splitmix64 finalization, so streams for different
// (seed, errors, lane, shard) tuples are decorrelated.
func shardSeed(seed int64, errors int, lo, hi uint8, shard int) int64 {
	x := uint64(seed)
	for _, v := range [...]uint64{uint64(errors), uint64(lo)<<8 | uint64(hi), uint64(shard)} {
		x += 0x9e3779b97f4a7c15 + v
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return int64(x)
}
