package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"etap/internal/apps"
	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/minic"
	"etap/internal/sim"
)

// ctx is the live context shared by tests that never cancel.
var ctx = context.Background()

// buildEngine compiles a benchmark and prepares a protected-mode engine.
func buildEngine(t *testing.T, name string, cfg campaign.Config) (*campaign.Engine, apps.App, sim.Config) {
	t.Helper()
	a, ok := all.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	prog, err := minic.Build(a.Source())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{Input: a.Input()}
	e, err := campaign.New(prog, rep.Tagged, simCfg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Score = apps.Scorer(a)
	return e, a, simCfg
}

func resultsEqual(a, b sim.Result) bool {
	return a.Outcome == b.Outcome &&
		a.Trap == b.Trap &&
		a.ExitCode == b.ExitCode &&
		a.Instret == b.Instret &&
		a.EligibleExec == b.EligibleExec &&
		a.Injected == b.Injected &&
		bytes.Equal(a.Output, b.Output) &&
		a.ClassCounts == b.ClassCounts
}

// TestResumeBitIdenticalAllBenchmarks is the determinism contract of the
// checkpoint engine: for every benchmark, a trial resumed from a
// checkpoint produces a bit-identical sim.Result (outcome, output, trap,
// instruction count, class counts) to the same trial run from scratch,
// for injections early, midway and late in the eligible stream.
func TestResumeBitIdenticalAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range all.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, _, simCfg := buildEngine(t, name, campaign.Config{})
			if e.Checkpoints() == 0 {
				t.Fatalf("golden pass of %s (%d instructions) captured no checkpoints", name, e.Clean.Instret)
			}
			stream := e.Clean.EligibleExec
			ordinals := []uint64{1, stream / 4, stream / 2, stream - stream/8, stream}
			for i, at := range ordinals {
				if at < 1 {
					at = 1
				}
				plan := &sim.FaultPlan{
					Eligible:   e.Eligible,
					Injections: []sim.Injection{{At: at, Bit: uint8((i*7 + 3) % 32)}},
				}
				scratchCfg := simCfg
				scratchCfg.Plan = plan
				scratchCfg.MaxInstr = e.Budget
				scratch := sim.Run(e.Prog, scratchCfg)
				resumed := e.RunPlan(plan)
				if !resultsEqual(scratch, resumed) {
					t.Fatalf("%s: ordinal %d/%d: resumed trial differs from scratch\nscratch: outcome=%s trap=%s instret=%d out=%d bytes\nresumed: outcome=%s trap=%s instret=%d out=%d bytes",
						name, at, stream,
						scratch.Outcome, scratch.Trap, scratch.Instret, len(scratch.Output),
						resumed.Outcome, resumed.Trap, resumed.Instret, len(resumed.Output))
				}
			}
		})
	}
}

// TestRunPointReproducibleAcrossWorkers is the shard-RNG contract: the
// aggregate of a point is identical no matter how many workers execute it.
func TestRunPointReproducibleAcrossWorkers(t *testing.T) {
	e, _, _ := buildEngine(t, "adpcm", campaign.Config{Seed: 7, ShardSize: 8})
	pt := campaign.Point{Errors: 4, HiBit: 31, MaxTrials: 48}
	var results []campaign.PointResult
	for _, workers := range []int{1, 3, 8} {
		pt.Workers = workers
		results = append(results, e.RunPoint(ctx, pt, nil))
	}
	for i := 1; i < len(results); i++ {
		if !pointsEqual(results[0], results[i]) {
			t.Fatalf("results differ between worker counts:\n%+v\n%+v", results[0], results[i])
		}
	}
	if r := results[0]; r.Trials != 48 || r.Completed+r.Crashes+r.Timeouts != r.Trials {
		t.Fatalf("bad accounting: %+v", results[0])
	}
}

func pointsEqual(a, b campaign.PointResult) bool {
	na, nb := math.IsNaN(a.MeanValue), math.IsNaN(b.MeanValue)
	if na != nb {
		return false
	}
	if na {
		a.MeanValue, b.MeanValue = 0, 0
	}
	if math.IsNaN(a.ValueStddev) != math.IsNaN(b.ValueStddev) {
		return false
	}
	if math.IsNaN(a.ValueStddev) {
		a.ValueStddev, b.ValueStddev = 0, 0
	}
	return a == b
}

// TestObserverSeesTrialsInOrder checks the deterministic observer stream.
func TestObserverSeesTrialsInOrder(t *testing.T) {
	e, _, _ := buildEngine(t, "adpcm", campaign.Config{Seed: 5, ShardSize: 4, Workers: 4})
	var indices []int
	var trials []campaign.Trial
	r := e.RunPoint(ctx, campaign.Point{Errors: 2, HiBit: 31, MaxTrials: 24}, func(i int, tr campaign.Trial) {
		indices = append(indices, i)
		trials = append(trials, tr)
	})
	if len(indices) != r.Trials {
		t.Fatalf("observer saw %d trials, point reports %d", len(indices), r.Trials)
	}
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("observer indices out of order at %d: %v", i, indices[:i+1])
		}
	}
	// Re-running must replay the identical trial stream.
	var again []campaign.Trial
	e.RunPoint(ctx, campaign.Point{Errors: 2, HiBit: 31, MaxTrials: 24}, func(i int, tr campaign.Trial) {
		again = append(again, tr)
	})
	for i := range trials {
		a, b := trials[i], again[i]
		if math.IsNaN(a.Value) && math.IsNaN(b.Value) {
			a.Value, b.Value = 0, 0
		}
		if a != b {
			t.Fatalf("trial %d differs between runs: %+v vs %+v", i, trials[i], again[i])
		}
	}
}

// TestEarlyStopConverges checks that a point with a tight, quickly
// reachable confidence target stops well short of its trial budget, and
// deterministically so.
func TestEarlyStopConverges(t *testing.T) {
	e, _, _ := buildEngine(t, "adpcm", campaign.Config{Seed: 11, ShardSize: 16})
	// Zero errors → zero failures; the Wilson upper bound shrinks like
	// z²/n, so width < 0.05 needs ~75 trials out of the 2000 budget.
	pt := campaign.Point{Errors: 0, HiBit: 31, MaxTrials: 2000, StopWidth: 0.05}
	r1 := e.RunPoint(ctx, pt, nil)
	if !r1.EarlyStopped {
		t.Fatalf("point did not stop early: %+v", r1)
	}
	if r1.Trials >= 2000 || r1.Trials < 32 {
		t.Fatalf("unexpected early-stop trial count %d", r1.Trials)
	}
	if r1.FailHiPct-r1.FailLoPct >= 5 {
		t.Fatalf("stopped with wide interval [%.2f, %.2f]", r1.FailLoPct, r1.FailHiPct)
	}
	pt.Workers = 7
	r2 := e.RunPoint(ctx, pt, nil)
	if !pointsEqual(r1, r2) {
		t.Fatalf("early-stopped results differ across worker counts:\n%+v\n%+v", r1, r2)
	}
}

// TestZeroErrorTrialsMatchClean: with no injections every trial resumes
// from the last checkpoint and must reproduce the golden run.
func TestZeroErrorTrialsMatchClean(t *testing.T) {
	e, _, _ := buildEngine(t, "adpcm", campaign.Config{})
	r := e.RunPoint(ctx, campaign.Point{Errors: 0, HiBit: 31, MaxTrials: 8}, func(i int, tr campaign.Trial) {
		if tr.Outcome != sim.OK || !tr.Masked || tr.Instret != e.Clean.Instret {
			t.Fatalf("zero-error trial %d diverged from clean run: %+v", i, tr)
		}
	})
	if r.FailPct != 0 || r.AcceptPct != 100 || r.Masked != 8 {
		t.Fatalf("zero-error point: %+v", r)
	}
}

func TestExportJSONAndCSV(t *testing.T) {
	e, _, _ := buildEngine(t, "adpcm", campaign.Config{Seed: 3, ShardSize: 8})
	points := []campaign.PointResult{
		e.RunPoint(ctx, campaign.Point{Errors: 0, HiBit: 31, MaxTrials: 8}, nil),
		e.RunPoint(ctx, campaign.Point{Errors: 10, HiBit: 31, MaxTrials: 8}, nil),
	}
	rep := e.NewReport("adpcm", "protected", points)

	var jb bytes.Buffer
	if err := campaign.WriteJSON(&jb, []*campaign.Report{rep}); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON artifact: %v\n%s", err, jb.String())
	}
	if len(decoded) != 1 || decoded[0]["benchmark"] != "adpcm" {
		t.Fatalf("unexpected JSON shape: %s", jb.String())
	}

	var cb bytes.Buffer
	if err := campaign.WriteCSV(&cb, []*campaign.Report{rep}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV should have header + 2 rows, got %d lines:\n%s", len(lines), cb.String())
	}
	if !strings.HasPrefix(lines[0], "benchmark,mode,seed,errors") {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}
}

func TestNewRejectsManagedConfig(t *testing.T) {
	a, _ := all.ByName("adpcm")
	prog, err := minic.Build(a.Source())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.New(prog, rep.Tagged, sim.Config{Input: a.Input(), MaxInstr: 99}, campaign.Config{}); err == nil {
		t.Fatal("MaxInstr accepted")
	}
	if _, err := campaign.New(prog, rep.Tagged[:1], sim.Config{Input: a.Input()}, campaign.Config{}); err == nil {
		t.Fatal("short eligibility mask accepted")
	}
}

// TestCancelledPointReturnsPartialFlagged is the cancellation contract:
// cancelling mid-point stops the campaign promptly (no new trials start;
// in-flight trials finish), and the partial aggregate comes back flagged
// Cancelled with internally consistent accounting.
func TestCancelledPointReturnsPartialFlagged(t *testing.T) {
	e, _, _ := buildEngine(t, "adpcm", campaign.Config{Seed: 9, ShardSize: 4})
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Cancel from the observer after a handful of trials have aggregated,
	// with a budget far beyond what could run in the test's lifetime.
	const budget = 1 << 20
	seen := 0
	start := time.Now()
	r := e.RunPoint(cctx, campaign.Point{Errors: 2, HiBit: 31, MaxTrials: budget, Workers: 4},
		func(i int, tr campaign.Trial) {
			seen++
			if seen == 6 {
				cancel()
			}
		})
	elapsed := time.Since(start)

	if !r.Cancelled {
		t.Fatalf("cancelled point not flagged: %+v", r)
	}
	if r.Trials >= budget {
		t.Fatalf("cancelled point ran the whole budget (%d trials)", r.Trials)
	}
	if r.Trials < 6 {
		t.Fatalf("cancelled point lost aggregated trials: %d < 6", r.Trials)
	}
	if r.Completed+r.Crashes+r.Timeouts+r.Detected != r.Trials {
		t.Fatalf("partial accounting inconsistent: %+v", r)
	}
	// "Promptly" here is generous (CI machines vary), but a full budget of
	// ~1M adpcm trials would take hours, so any same-order-of-magnitude
	// bound proves cancellation cut the point short.
	if elapsed > 2*time.Minute {
		t.Fatalf("cancelled point took %s to return", elapsed)
	}
}

// TestCancelledBeforeStartRunsNothing: a context cancelled on entry yields
// an empty, flagged aggregate.
func TestCancelledBeforeStartRunsNothing(t *testing.T) {
	e, _, _ := buildEngine(t, "adpcm", campaign.Config{})
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := e.RunPoint(cctx, campaign.Point{Errors: 1, HiBit: 31, MaxTrials: 64}, nil)
	if !r.Cancelled {
		t.Fatalf("pre-cancelled point not flagged: %+v", r)
	}
	if r.Trials != 0 {
		t.Fatalf("pre-cancelled point ran %d trials", r.Trials)
	}
}

// TestRerunAfterCancelBitIdentical: cancellation must leave no trace in
// the engine. After a cancelled point, re-running the same point under a
// live context is bit-identical to a never-cancelled run at every worker
// count.
func TestRerunAfterCancelBitIdentical(t *testing.T) {
	pt := campaign.Point{Errors: 3, HiBit: 31, MaxTrials: 48}

	// Reference: a fresh engine that never saw a cancellation.
	ref, _, _ := buildEngine(t, "adpcm", campaign.Config{Seed: 13, ShardSize: 8})
	want := ref.RunPoint(ctx, pt, nil)

	e, _, _ := buildEngine(t, "adpcm", campaign.Config{Seed: 13, ShardSize: 8})
	cctx, cancel := context.WithCancel(context.Background())
	e.RunPoint(cctx, pt, func(i int, tr campaign.Trial) {
		if i == 2 {
			cancel()
		}
	})
	for _, workers := range []int{1, 3, 8} {
		p := pt
		p.Workers = workers
		got := e.RunPoint(ctx, p, nil)
		if !pointsEqual(want, got) {
			t.Fatalf("post-cancel re-run differs at %d workers:\n%+v\n%+v", workers, want, got)
		}
	}
}

// buildHardenedEngine compiles a benchmark, hardens it with both
// transforms, and prepares a detection campaign against the protected
// primaries.
func buildHardenedEngine(t *testing.T, name string) *campaign.Engine {
	t.Helper()
	a, ok := all.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	prog, err := minic.Build(a.Source())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := harden.Harden(rep, harden.Options{DupCompare: true, Signatures: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := campaign.New(res.Prog, res.PrimaryProtected, sim.Config{Input: a.Input()}, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDetectionLatencyPercentiles: a detection campaign on a hardened
// program must report latency percentiles consistent with its per-trial
// latencies, deterministically across worker counts.
func TestDetectionLatencyPercentiles(t *testing.T) {
	e := buildHardenedEngine(t, "adpcm")
	pt := campaign.Point{Errors: 1, HiBit: 31, MaxTrials: 64}
	var lats []uint64
	r := e.RunPoint(ctx, pt, func(i int, tr campaign.Trial) {
		if tr.Outcome == sim.Detected {
			if !tr.HasLatency {
				t.Fatalf("detected trial %d has no latency window", i)
			}
			lats = append(lats, tr.DetectLatency)
		} else if tr.HasLatency {
			t.Fatalf("non-detected trial %d claims a latency", i)
		}
	})
	if r.Detected == 0 {
		t.Fatalf("no detections over %d trials; latency untestable: %+v", r.Trials, r)
	}
	if len(lats) != r.Detected {
		t.Fatalf("observer saw %d latencies for %d detections", len(lats), r.Detected)
	}
	if r.DetectLatencyP50 == 0 || r.DetectLatencyP95 < r.DetectLatencyP50 {
		t.Fatalf("implausible latency percentiles: p50=%d p95=%d", r.DetectLatencyP50, r.DetectLatencyP95)
	}
	var lo, hi uint64 = lats[0], lats[0]
	for _, l := range lats {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if r.DetectLatencyP50 < lo || r.DetectLatencyP95 > hi {
		t.Fatalf("percentiles [%d, %d] outside observed range [%d, %d]",
			r.DetectLatencyP50, r.DetectLatencyP95, lo, hi)
	}
	pt.Workers = 5
	r2 := e.RunPoint(ctx, pt, nil)
	if !pointsEqual(r, r2) {
		t.Fatalf("latency percentiles differ across worker counts:\n%+v\n%+v", r, r2)
	}
}
