package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Report is the exportable artifact of one campaign: every measurement
// point for one (benchmark, eligibility mode) pair plus enough metadata to
// reproduce it.
type Report struct {
	// Benchmark names the workload, Mode the eligibility mask
	// ("protected"/"unprotected" in the standard harness).
	Benchmark string `json:"benchmark"`
	Mode      string `json:"mode"`
	Seed      int64  `json:"seed"`
	// CleanInstructions and EligibleFraction describe the golden pass.
	CleanInstructions uint64        `json:"clean_instructions"`
	EligibleFraction  float64       `json:"eligible_fraction"`
	Points            []PointResult `json:"points"`
}

// NewReport captures engine metadata for a finished set of points.
func (e *Engine) NewReport(benchmark, mode string, points []PointResult) *Report {
	return &Report{
		Benchmark:         benchmark,
		Mode:              mode,
		Seed:              e.cfg.Seed,
		CleanInstructions: e.Clean.Instret,
		EligibleFraction:  e.EligibleFraction(),
		Points:            points,
	}
}

// WriteJSON renders reports as an indented JSON array. NaN fidelity means
// (no completed trials) are emitted as null.
func WriteJSON(w io.Writer, reports []*Report) error {
	// encoding/json rejects NaN, so sanitize into pointers.
	type pointJSON struct {
		PointResult
		MeanValue   *float64 `json:"mean_value"`
		ValueStddev *float64 `json:"value_stddev"`
	}
	type reportJSON struct {
		*Report
		Points []pointJSON `json:"points"`
	}
	out := make([]reportJSON, len(reports))
	for i, r := range reports {
		pts := make([]pointJSON, len(r.Points))
		for j, p := range r.Points {
			pts[j] = pointJSON{PointResult: p}
			if !math.IsNaN(p.MeanValue) {
				v := p.MeanValue
				pts[j].MeanValue = &v
			}
			if !math.IsNaN(p.ValueStddev) {
				v := p.ValueStddev
				pts[j].ValueStddev = &v
			}
		}
		out[i] = reportJSON{Report: r, Points: pts}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// csvHeader is the flat per-point schema shared by every report row.
var csvHeader = []string{
	"benchmark", "mode", "seed", "errors", "lo_bit", "hi_bit",
	"trials", "crashes", "timeouts", "detected", "recovered", "degraded",
	"completed", "masked", "accepted", "tolerated", "untolerated",
	"mean_value", "value_stddev", "fail_pct", "accept_pct", "detect_pct",
	"recover_pct", "availability_pct",
	"fail_lo_pct", "fail_hi_pct", "detect_lo_pct", "detect_hi_pct",
	"recover_lo_pct", "recover_hi_pct", "availability_lo_pct", "availability_hi_pct",
	"detect_latency_p50", "detect_latency_p95",
	"recover_latency_p50", "recover_latency_p95", "recovery_attempts",
	"early_stopped", "cancelled",
}

// WriteCSV renders reports as one flat CSV table, one row per point. NaN
// fidelity means are emitted as empty cells.
func WriteCSV(w io.Writer, reports []*Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', 6, 64)
	}
	for _, r := range reports {
		for _, p := range r.Points {
			row := []string{
				r.Benchmark, r.Mode, strconv.FormatInt(r.Seed, 10),
				strconv.Itoa(p.Errors), strconv.Itoa(int(p.LoBit)), strconv.Itoa(int(p.HiBit)),
				strconv.Itoa(p.Trials), strconv.Itoa(p.Crashes), strconv.Itoa(p.Timeouts),
				strconv.Itoa(p.Detected), strconv.Itoa(p.Recovered), strconv.Itoa(p.Degraded),
				strconv.Itoa(p.Completed), strconv.Itoa(p.Masked), strconv.Itoa(p.Accepted),
				strconv.Itoa(p.Tolerated), strconv.Itoa(p.Untolerated),
				f(p.MeanValue), f(p.ValueStddev), f(p.FailPct), f(p.AcceptPct), f(p.DetectPct),
				f(p.RecoverPct), f(p.AvailabilityPct),
				f(p.FailLoPct), f(p.FailHiPct), f(p.DetectLoPct), f(p.DetectHiPct),
				f(p.RecoverLoPct), f(p.RecoverHiPct), f(p.AvailabilityLoPct), f(p.AvailabilityHiPct),
				strconv.FormatUint(p.DetectLatencyP50, 10), strconv.FormatUint(p.DetectLatencyP95, 10),
				strconv.FormatUint(p.RecoverLatencyP50, 10), strconv.FormatUint(p.RecoverLatencyP95, 10),
				strconv.Itoa(p.RecoveryAttempts),
				strconv.FormatBool(p.EarlyStopped), strconv.FormatBool(p.Cancelled),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("campaign: csv export: %w", err)
	}
	return nil
}
