package campaign

import (
	"time"

	"etap/internal/obs"
	"etap/internal/sim"
)

// Process-wide campaign metrics on the default obs registry. All
// updates happen on worker or collector goroutines through lock-free
// handles resolved here once; nothing reads them back, so shard RNG
// streams, trial ordering and aggregation stay bit-identical with
// metrics enabled or disabled (pinned by TestReportBytesIdentical at
// the repo root).
var (
	campTrials = obs.Default().CounterVec("etap_campaign_trials_total",
		"Fault-injection trials executed, by simulator outcome.",
		"outcome")
	// Index by sim.Outcome so the per-trial hot path is one array load
	// plus one atomic add.
	trialOutcome = [...]*obs.Counter{
		sim.OK:        campTrials.With(sim.OK.String()),
		sim.Crash:     campTrials.With(sim.Crash.String()),
		sim.Timeout:   campTrials.With(sim.Timeout.String()),
		sim.Detected:  campTrials.With(sim.Detected.String()),
		sim.Recovered: campTrials.With(sim.Recovered.String()),
	}

	campPoints = obs.Default().Counter("etap_campaign_points_total",
		"Measurement points (error-count sweeps) started.")
	campTrialsPruned = obs.Default().Counter("etap_campaign_trials_pruned_total",
		"Trials statically classified benign and skipped: their outcome was synthesized from the clean run instead of simulated. Pruned trials still count in etap_campaign_trials_total and every aggregate.")
	campShardSeconds = obs.Default().Histogram("etap_campaign_shard_seconds",
		"Wall-clock seconds one worker spent executing one shard of trials.",
		obs.ExpBuckets(0.0005, 4, 12))
	campDetectLatency = obs.Default().HistogramVec("etap_campaign_detect_latency_instructions",
		"Retired instructions between the first injected flip and the redundancy check that caught it (Detected trials only), by transform class.",
		obs.ExpBuckets(1, 4, 16), "transform")
	// Pre-resolved latency children, same reasoning as trialOutcome: the
	// per-trial path never pays a label lookup.
	latencyDup     = campDetectLatency.With("dup")
	latencyCFS     = campDetectLatency.With("cfs")
	latencyUnknown = campDetectLatency.With("unknown")

	campRecoverLatency = obs.Default().Histogram("etap_campaign_recover_latency_instructions",
		"Instructions replayed by checkpoint-restore recovery per Recovered trial (the rollback cost of absorbing a detected fault).",
		obs.ExpBuckets(1, 4, 16))
	campRecoveries = obs.Default().Counter("etap_campaign_recoveries_total",
		"Checkpoint restore-replay rounds executed across all trials, whatever the trial's final outcome.")
)

// latencyFor maps a trial's DetectKind to its pre-resolved histogram.
func latencyFor(kind string) *obs.Histogram {
	switch kind {
	case "dup":
		return latencyDup
	case "cfs":
		return latencyCFS
	}
	return latencyUnknown
}

// countTrial folds one executed trial into the process counters.
func countTrial(tr Trial) {
	if int(tr.Outcome) < len(trialOutcome) {
		trialOutcome[tr.Outcome].Inc()
	}
	if tr.HasLatency {
		latencyFor(tr.DetectKind).Observe(float64(tr.DetectLatency))
	}
	if tr.RecoveryAttempts > 0 {
		campRecoveries.Add(float64(tr.RecoveryAttempts))
	}
	if tr.Outcome == sim.Recovered {
		campRecoverLatency.Observe(float64(tr.RecoverInstret))
	}
}

// observeShard records one shard's wall-clock.
func observeShard(start time.Time) {
	campShardSeconds.Observe(time.Since(start).Seconds())
}
