package campaign

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"etap/internal/obs"
	"etap/internal/sim"
)

// TestDetectLatencyExposition pins the transform-labelled
// detection-latency family: one histogram child per transform class,
// exposed under the documented name with a `transform` label. Dashboards
// and the OBSERVABILITY.md catalog depend on these exact line shapes.
func TestDetectLatencyExposition(t *testing.T) {
	for _, kind := range []string{"dup", "cfs", ""} {
		countTrial(Trial{Outcome: sim.Detected, HasLatency: true, DetectLatency: 3, DetectKind: kind})
	}

	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	if !strings.Contains(out, "# TYPE etap_campaign_detect_latency_instructions histogram\n") {
		t.Fatal("detect-latency family missing or no longer a histogram")
	}
	// The empty kind folds into "unknown"; all three classes must expose
	// cumulative buckets and a count.
	for _, transform := range []string{"dup", "cfs", "unknown"} {
		bucket := `etap_campaign_detect_latency_instructions_bucket{transform="` + transform + `",le="4"} `
		if !strings.Contains(out, bucket) {
			t.Errorf("missing bucket line %q", bucket)
		}
		re := regexp.MustCompile(`etap_campaign_detect_latency_instructions_count\{transform="` + transform + `"\} (\d+)`)
		m := re.FindStringSubmatch(out)
		if m == nil {
			t.Errorf("missing count line for transform=%q", transform)
			continue
		}
		if n, _ := strconv.Atoi(m[1]); n < 1 {
			t.Errorf("transform=%q count = %d, want >= 1", transform, n)
		}
	}
}

// TestLatencyForMapping pins the DetectKind → child mapping, including
// the fold of unclassified detections into "unknown".
func TestLatencyForMapping(t *testing.T) {
	if latencyFor("dup") != latencyDup || latencyFor("cfs") != latencyCFS {
		t.Fatal("known kinds not mapped to their children")
	}
	if latencyFor("") != latencyUnknown || latencyFor("anything-else") != latencyUnknown {
		t.Fatal("unclassified kinds must fold into unknown")
	}
}
