package campaign_test

import (
	"bytes"
	"math"
	"testing"

	"etap/internal/apps/all"
	"etap/internal/asm"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/isa"
	"etap/internal/minic"
	"etap/internal/sim"
)

// trialsEqual compares two trials with NaN-valued scores normalized.
func trialsEqual(a, b campaign.Trial) bool {
	if math.IsNaN(a.Value) != math.IsNaN(b.Value) {
		return false
	}
	if math.IsNaN(a.Value) {
		a.Value, b.Value = 0, 0
	}
	return a == b
}

// diffPoint runs the same point on both engines and fails the test on
// any divergence in the aggregate result or the per-trial stream.
func diffPoint(t *testing.T, full, pruned *campaign.Engine, pt campaign.Point) (campaign.PointResult, campaign.PointResult) {
	t.Helper()
	var fullTrials, prunedTrials []campaign.Trial
	fr := full.RunPoint(ctx, pt, func(i int, tr campaign.Trial) { fullTrials = append(fullTrials, tr) })
	pr := pruned.RunPoint(ctx, pt, func(i int, tr campaign.Trial) { prunedTrials = append(prunedTrials, tr) })
	if !pointsEqual(fr, pr) {
		t.Fatalf("errors=%d: point results diverge\nfull:   %+v\npruned: %+v", pt.Errors, fr, pr)
	}
	if len(fullTrials) != len(prunedTrials) {
		t.Fatalf("errors=%d: trial streams %d vs %d", pt.Errors, len(fullTrials), len(prunedTrials))
	}
	for i := range fullTrials {
		if !trialsEqual(fullTrials[i], prunedTrials[i]) {
			t.Fatalf("errors=%d trial %d diverges\nfull:   %+v\npruned: %+v",
				pt.Errors, i, fullTrials[i], prunedTrials[i])
		}
	}
	return fr, pr
}

// TestPruningDifferential is the bit-identity contract of static
// injection pruning: for every benchmark, a campaign with pruning
// enabled produces exactly the same per-trial stream, aggregates,
// confidence intervals and serialized report bytes as one that simulates
// every trial — while actually skipping the statically benign ones.
func TestPruningDifferential(t *testing.T) {
	names := all.Names()
	if testing.Short() {
		names = names[:1]
	} else if raceEnabled {
		names = names[:2]
	}
	totalPruned := uint64(0)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := campaign.Config{Seed: 11, ShardSize: 8}
			fullCfg := cfg
			fullCfg.DisablePrune = true
			full, _, _ := buildEngine(t, name, fullCfg)
			pruned, _, _ := buildEngine(t, name, cfg)
			if full.PruningEnabled() {
				t.Fatal("DisablePrune engine reports pruning enabled")
			}
			if !pruned.PruningEnabled() {
				t.Fatal("compiled benchmark did not enable pruning")
			}

			var fullPts, prunedPts []campaign.PointResult
			for _, errors := range []int{0, 1, 2, 4} {
				pt := campaign.Point{Errors: errors, HiBit: 31, MaxTrials: 32}
				fr, pr := diffPoint(t, full, pruned, pt)
				fullPts = append(fullPts, fr)
				prunedPts = append(prunedPts, pr)
			}
			// A recovery-enabled point rides through the same contract:
			// synthesized all-benign trials are never Detected, so pruning
			// and recovery must compose without perturbing either stream.
			fr, pr := diffPoint(t, full, pruned, campaign.Point{Errors: 2, HiBit: 31, MaxTrials: 32, MaxRecoveries: 2})
			fullPts = append(fullPts, fr)
			prunedPts = append(prunedPts, pr)

			// The serialized artifacts must be byte-identical too.
			var fj, pj, fc, pc bytes.Buffer
			if err := campaign.WriteJSON(&fj, []*campaign.Report{full.NewReport(name, "full", fullPts)}); err != nil {
				t.Fatal(err)
			}
			if err := campaign.WriteJSON(&pj, []*campaign.Report{pruned.NewReport(name, "full", prunedPts)}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fj.Bytes(), pj.Bytes()) {
				t.Fatalf("JSON artifacts differ:\n%s\nvs\n%s", fj.String(), pj.String())
			}
			if err := campaign.WriteCSV(&fc, []*campaign.Report{full.NewReport(name, "full", fullPts)}); err != nil {
				t.Fatal(err)
			}
			if err := campaign.WriteCSV(&pc, []*campaign.Report{pruned.NewReport(name, "full", prunedPts)}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fc.Bytes(), pc.Bytes()) {
				t.Fatalf("CSV artifacts differ:\n%s\nvs\n%s", fc.String(), pc.String())
			}

			if full.PrunedTrials() != 0 {
				t.Fatalf("DisablePrune engine pruned %d trials", full.PrunedTrials())
			}
			// errors=0 plans are vacuously benign, so every engine with
			// pruning prunes at least those.
			if pruned.PrunedTrials() == 0 {
				t.Fatal("pruning engine simulated every trial")
			}
			if f := pruned.StaticPruneFraction(); f < 0 || f >= 1 {
				t.Fatalf("static prune fraction %v out of [0,1)", f)
			}
			totalPruned += pruned.PrunedTrials()
		})
	}
	_ = totalPruned
}

// TestPruningDifferentialHardened repeats the bit-identity check on a
// harden-transformed program, whose eligible sites are the primary
// protected copies.
func TestPruningDifferentialHardened(t *testing.T) {
	a, ok := all.ByName("adpcm")
	if !ok {
		t.Fatal("adpcm missing")
	}
	prog, err := minic.Build(a.Source())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := harden.Harden(rep, harden.Options{DupCompare: true, Signatures: true})
	if err != nil {
		t.Fatal(err)
	}
	build := func(cfg campaign.Config) *campaign.Engine {
		e, err := campaign.New(res.Prog, res.PrimaryProtected, sim.Config{Input: a.Input()}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	full := build(campaign.Config{Seed: 23, ShardSize: 8, DisablePrune: true})
	pruned := build(campaign.Config{Seed: 23, ShardSize: 8})
	if !pruned.PruningEnabled() {
		t.Fatal("hardened program did not enable pruning")
	}
	for _, errors := range []int{0, 1, 3} {
		diffPoint(t, full, pruned, campaign.Point{Errors: errors, HiBit: 31, MaxTrials: 24})
		// With recovery on, some Detected trials become Recovered; pruned
		// and fully simulated engines must agree on those too.
		fr, _ := diffPoint(t, full, pruned, campaign.Point{Errors: errors, HiBit: 31, MaxTrials: 24, MaxRecoveries: 2})
		if errors > 0 && fr.Recovered == 0 && fr.Detected == 0 && fr.RecoveryAttempts == 0 {
			t.Fatalf("errors=%d: hardened recovery point never trapped nor recovered: %+v", errors, fr)
		}
	}
}

// zeroSinkProgram has exactly one eligible site, an add whose
// destination is the hardwired $zero sink. Every trial against it is
// statically benign: the simulator discards the flip, so the campaign
// can synthesize the outcome without running the machine.
const zeroSinkProgram = `
.text
.func __start
	li $t0, 21
	add $zero, $t0, $t0
	add $a0, $t0, $t0
	li $v0, 1
	syscall
.endfunc
`

// TestZeroDestSitesPrunedWithoutSimulation is the regression for
// sink-redirected destinations: a campaign whose only eligible site
// writes $zero prunes every trial and still matches a fully simulated
// campaign bit for bit.
func TestZeroDestSitesPrunedWithoutSimulation(t *testing.T) {
	prog, err := asm.Assemble(zeroSinkProgram)
	if err != nil {
		t.Fatal(err)
	}
	eligible := make([]bool, len(prog.Text))
	marked := 0
	for i, in := range prog.Text {
		if d, okd := in.Dest(); okd && d == isa.RegZero {
			eligible[i] = true
			marked++
		}
	}
	if marked != 1 {
		t.Fatalf("marked %d $zero-destination sites, want 1", marked)
	}
	build := func(cfg campaign.Config) *campaign.Engine {
		e, err := campaign.New(prog, eligible, sim.Config{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	full := build(campaign.Config{Seed: 3, ShardSize: 4, DisablePrune: true})
	pruned := build(campaign.Config{Seed: 3, ShardSize: 4})
	if !pruned.PruningEnabled() {
		t.Fatal("pruning disabled on handcrafted program")
	}
	pt := campaign.Point{Errors: 1, HiBit: 31, MaxTrials: 8}
	diffPoint(t, full, pruned, pt)
	if got := pruned.PrunedTrials(); got != 8 {
		t.Fatalf("pruned %d of 8 all-benign trials", got)
	}
	if full.PrunedTrials() != 0 {
		t.Fatal("full engine pruned trials")
	}
}
