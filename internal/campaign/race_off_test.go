//go:build !race

package campaign_test

const raceEnabled = false
