//go:build race

package campaign_test

// raceEnabled reports that the race detector is compiled in. The
// all-benchmark differential sweeps trim themselves under it: the
// detector multiplies simulation cost by roughly an order of magnitude,
// and the concurrency it audits (shard dispatch, collector folding,
// recovery replay) is identical across benchmarks.
const raceEnabled = true
