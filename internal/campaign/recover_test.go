package campaign_test

import (
	"bytes"
	"testing"

	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/fault"
	"etap/internal/harden"
	"etap/internal/minic"
	"etap/internal/sim"
)

// buildHardened compiles a benchmark, applies the real protection
// transforms and prepares a detection-campaign engine over the primary
// protected copies — the same shape etap.HardenedSystem.NewDetectionCampaign
// constructs.
func buildHardened(t *testing.T, name string, cfg campaign.Config) *campaign.Engine {
	t.Helper()
	a, ok := all.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	prog, err := minic.Build(a.Source())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(prog, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := harden.Harden(rep, harden.Options{DupCompare: true, Signatures: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := campaign.New(res.Prog, res.PrimaryProtected, sim.Config{Input: a.Input()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.DetectClass = func(pc int) string { return res.CheckKindAt(pc).String() }
	return e
}

// collectPoint runs a point and returns its aggregate plus the ordered
// trial stream.
func collectPoint(t *testing.T, e *campaign.Engine, pt campaign.Point) (campaign.PointResult, []campaign.Trial) {
	t.Helper()
	var trials []campaign.Trial
	r := e.RunPoint(ctx, pt, func(i int, tr campaign.Trial) { trials = append(trials, tr) })
	if r.Tolerated+r.Detected+r.Untolerated != r.Trials {
		t.Fatalf("availability accounting does not partition the trials: tolerated %d + detected %d + untolerated %d != %d",
			r.Tolerated, r.Detected, r.Untolerated, r.Trials)
	}
	return r, trials
}

// TestRecoveryDifferential is the recovery bit-identity contract over
// every benchmark, original and hardened, errors 0–4:
//
//   - with recovery disabled (MaxRecoveries 0) a campaign is bit-identical
//     to the pre-recovery engine — pinned by comparing the disabled trial
//     stream against an enabled run on subjects that never trap, and
//     RunPlanRecover(plan, 0) against RunPlan on subjects that do;
//   - with recovery enabled, a trial that did not end Detected is
//     untouched, and every trial classified Recovered produced output
//     byte-identical to the golden run.
func TestRecoveryDifferential(t *testing.T) {
	names := all.Names()
	if testing.Short() {
		names = names[:1]
	} else if raceEnabled {
		names = names[:2]
	}
	errorCounts := []int{0, 1, 2, 3, 4}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()

			// Original (unhardened) program: no trapdet exists, so the
			// recovery knob must change nothing, bit for bit — which also
			// pins that MaxRecoveries 0 is exactly today's engine.
			orig, _, _ := buildEngine(t, name, campaign.Config{Seed: 31, ShardSize: 8})
			for _, errors := range errorCounts {
				off, offTrials := collectPoint(t, orig, campaign.Point{Errors: errors, HiBit: 31, MaxTrials: 16})
				on, onTrials := collectPoint(t, orig, campaign.Point{Errors: errors, HiBit: 31, MaxTrials: 16, MaxRecoveries: 3})
				if off.Recovered != 0 || off.RecoveryAttempts != 0 {
					t.Fatalf("errors=%d: disabled recovery reports recovery work: %+v", errors, off)
				}
				if !pointsEqual(off, on) {
					t.Fatalf("errors=%d: recovery knob perturbed an unhardened campaign\noff: %+v\non:  %+v", errors, off, on)
				}
				for i := range offTrials {
					if !trialsEqual(offTrials[i], onTrials[i]) {
						t.Fatalf("errors=%d trial %d: recovery knob perturbed an unhardened trial\noff: %+v\non:  %+v",
							errors, i, offTrials[i], onTrials[i])
					}
				}
			}

			// Hardened program: per-plan differential at the sim.Result
			// level, where trial output is visible.
			hard := buildHardened(t, name, campaign.Config{Seed: 33, ShardSize: 8})
			golden := hard.Clean.Output
			detected, recoveredTotal := 0, 0
			for _, errors := range errorCounts {
				for seed := int64(1); seed <= 8; seed++ {
					plan, err := fault.NewPlanBits(hard.Eligible, hard.Clean.EligibleExec, errors, seed*97+int64(errors), 0, 31)
					if err != nil {
						t.Fatal(err)
					}
					plain := hard.RunPlan(plan)
					if off := hard.RunPlanRecover(plan, 0); !resultsEqual(plain, off) || off.RecoveryAttempts != 0 {
						t.Fatalf("errors=%d seed=%d: MaxRecoveries 0 diverged from RunPlan", errors, seed)
					}
					rec := hard.RunPlanRecover(plan, 4)
					if plain.Outcome != sim.Detected {
						if !resultsEqual(plain, rec) || rec.RecoveryAttempts != 0 || rec.RecoverInstret != 0 {
							t.Fatalf("errors=%d seed=%d: recovery touched a %s trial", errors, seed, plain.Outcome)
						}
						continue
					}
					detected++
					if rec.RecoveryAttempts == 0 {
						t.Fatalf("errors=%d seed=%d: detected trial consumed no recovery attempt", errors, seed)
					}
					switch rec.Outcome {
					case sim.Recovered:
						recoveredTotal++
						if !bytes.Equal(rec.Output, golden) {
							t.Fatalf("errors=%d seed=%d: Recovered trial output is not byte-identical to golden", errors, seed)
						}
					case sim.OK:
						if bytes.Equal(rec.Output, golden) {
							t.Fatalf("errors=%d seed=%d: golden-identical completion classified OK, want Recovered", errors, seed)
						}
					case sim.Detected, sim.Crash, sim.Timeout:
						// Exhausted attempts/budget or a replay that failed
						// harder; legal end states.
					default:
						t.Fatalf("errors=%d seed=%d: unexpected recovery outcome %s", errors, seed, rec.Outcome)
					}
				}
			}
			if detected == 0 {
				t.Fatal("hardened differential never observed a detection; fixture is not exercising recovery")
			}
			if recoveredTotal == 0 {
				t.Fatal("hardened differential never recovered a trial")
			}
		})
	}
}

// TestAvailabilityAccounting pins the tolerated/detected/untolerated
// partition and the recovery aggregates of a hardened campaign point
// against its own trial stream.
func TestAvailabilityAccounting(t *testing.T) {
	e := buildHardened(t, "adpcm", campaign.Config{Seed: 5, ShardSize: 8})
	pt := campaign.Point{Errors: 1, HiBit: 31, MaxTrials: 64, MaxRecoveries: 3}
	r, trials := collectPoint(t, e, pt)

	recovered, degraded, attempts := 0, 0, 0
	for _, tr := range trials {
		attempts += tr.RecoveryAttempts
		switch {
		case tr.Outcome == sim.Recovered:
			recovered++
			if tr.RecoverInstret == 0 {
				t.Fatal("recovered trial reports zero replayed instructions")
			}
		case tr.Outcome == sim.OK && tr.RecoveryAttempts > 0:
			degraded++
			if tr.Masked {
				t.Fatal("degraded completion claims a golden-identical (masked) output")
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no trial recovered; single-bit faults on hardened adpcm should mostly be caught and replayed")
	}
	if r.Recovered != recovered || r.Degraded != degraded || r.RecoveryAttempts != attempts {
		t.Fatalf("aggregate recovery counters diverge from the trial stream: %+v vs recovered=%d degraded=%d attempts=%d",
			r, recovered, degraded, attempts)
	}
	if r.Tolerated != r.Accepted+r.Recovered {
		t.Fatalf("tolerated %d != accepted %d + recovered %d", r.Tolerated, r.Accepted, r.Recovered)
	}
	if r.AvailabilityPct < r.AvailabilityLoPct || r.AvailabilityPct > r.AvailabilityHiPct {
		t.Fatalf("availability %v outside its interval [%v, %v]", r.AvailabilityPct, r.AvailabilityLoPct, r.AvailabilityHiPct)
	}
	if r.RecoverLatencyP50 == 0 || r.RecoverLatencyP95 < r.RecoverLatencyP50 {
		t.Fatalf("implausible recovery latency percentiles: p50=%d p95=%d", r.RecoverLatencyP50, r.RecoverLatencyP95)
	}

	// Recovery converts detections, never invents or destroys other
	// outcomes: trial-by-trial, everything that was not Detected without
	// recovery is untouched with it.
	off, offTrials := collectPoint(t, e, campaign.Point{Errors: 1, HiBit: 31, MaxTrials: 64})
	if off.Recovered != 0 || off.Degraded != 0 || off.RecoveryAttempts != 0 {
		t.Fatalf("disabled recovery reports recovery work: %+v", off)
	}
	if off.Detected == 0 {
		t.Fatal("detection campaign detected nothing")
	}
	for i := range offTrials {
		if offTrials[i].Outcome != sim.Detected {
			if !trialsEqual(offTrials[i], trials[i]) {
				t.Fatalf("trial %d (%s) perturbed by recovery\noff: %+v\non:  %+v",
					i, offTrials[i].Outcome, offTrials[i], trials[i])
			}
		} else if trials[i].Outcome == sim.Detected && trials[i].RecoveryAttempts == 0 {
			t.Fatalf("trial %d stayed Detected without consuming a recovery attempt", i)
		}
	}
	if got := off.Detected - r.Detected; got != r.Recovered+r.Degraded+(r.Crashes-off.Crashes)+(r.Timeouts-off.Timeouts) {
		t.Fatalf("detection delta %d unaccounted for: %+v vs %+v", got, off, r)
	}
}
