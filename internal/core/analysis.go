package core

import (
	"fmt"
	"math/bits"
	"strings"

	"etap/internal/isa"
)

// Policy selects how aggressively the analysis extends the paper's basic
// control slice.
type Policy uint8

const (
	// PolicyControl is the paper's Section 3 analysis: only control
	// instructions seed CVar, and definitions (including loads) propagate
	// backward through registers. Memory is untracked, so a value that is
	// stored and later reloaded into a control computation escapes
	// protection — the residual failure source the paper discusses in §5.1.
	PolicyControl Policy = iota
	// PolicyControlAddr additionally treats every load/store address base
	// register as control-live, protecting all address computations (the
	// "address operations" class of the authors' companion MICRO-05 WS
	// paper). This removes misalignment crashes caused by corrupted
	// addresses at the cost of tagging fewer instructions.
	PolicyControlAddr
	// PolicyConservative additionally treats every stored value as
	// control-live, closing the memory-aliasing hole entirely (any value
	// that reaches memory is protected). It is the sound-but-expensive
	// upper bound used by the ablation benches.
	PolicyConservative
)

func (p Policy) String() string {
	switch p {
	case PolicyControl:
		return "control"
	case PolicyControlAddr:
		return "control+addr"
	case PolicyConservative:
		return "conservative"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy is the inverse of Policy.String, shared by every CLI flag
// that selects a policy.
func ParsePolicy(s string) (Policy, bool) {
	for _, p := range []Policy{PolicyControl, PolicyControlAddr, PolicyConservative} {
		if s == p.String() {
			return p, true
		}
	}
	return 0, false
}

// RegMask is a register set encoded as a bitmask (bit i = register i).
// The zero register never appears in a mask.
type RegMask uint32

// Has reports whether r is in the set.
func (m RegMask) Has(r isa.Reg) bool { return m&(1<<r) != 0 }

// Count returns the number of registers in the set.
func (m RegMask) Count() int { return bits.OnesCount32(uint32(m)) }

// String renders the set in the paper's bracket notation, e.g. "[$3, $2]".
// Registers print in descending numeric order to match the paper's example
// listing (most recently added first is not tracked; descending is stable).
func (m RegMask) String() string {
	var parts []string
	for r := isa.NumRegs - 1; r >= 0; r-- {
		if m.Has(isa.Reg(r)) {
			parts = append(parts, fmt.Sprintf("$%d", r))
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func maskOf(rs ...isa.Reg) RegMask {
	var m RegMask
	for _, r := range rs {
		m |= 1 << r
	}
	return m &^ 1 // $zero is not a variable
}

// callerSaved is the register set a call clobbers under the toolchain's
// convention: at, v0, v1, a0–a3, t0–t9, ra.
const callerSaved RegMask = 1<<isa.RegAT | 1<<isa.RegV0 | 1<<isa.RegV1 |
	0xF<<isa.RegA0 | 0xFF<<isa.RegT0 | 1<<isa.RegT8 | 1<<isa.RegT9 | 1<<isa.RegRA

// argRegs is the register-argument set.
const argRegs RegMask = 0xF << isa.RegA0

// Summary is the inter-procedural summary of one function.
type Summary struct {
	// ArgsControl is the subset of a0–a3 that is control-live at function
	// entry: a caller must protect the computations feeding those
	// arguments.
	ArgsControl RegMask
	// RetControl records that at least one caller feeds the function's
	// return value into a control computation, so definitions of v0 at the
	// function's exits are control-live.
	RetControl bool
}

// Report is the complete analysis result for one program.
type Report struct {
	Prog   *isa.Program
	Policy Policy

	// Tagged marks low-reliability instructions: arithmetic, destination
	// not control-live, inside a tolerant function. These are the legal
	// fault-injection sites when protection is on.
	Tagged []bool
	// ControlSlice marks instructions that are part of the control slice:
	// control/syscall instructions plus any instruction whose destination
	// is control-live at its program point.
	ControlSlice []bool
	// CVarOut[i] is the CVar set at the program point after instruction i
	// (what the backward walk sees before processing i); the tagging
	// decision for i tests its destination against this set.
	CVarOut []RegMask
	// CVarIn[i] is the CVar set after processing i — the values the
	// paper's worked example prints in brackets next to each instruction.
	CVarIn []RegMask

	// Summaries holds the fixpoint inter-procedural summaries, indexed
	// like Prog.Funcs.
	Summaries []Summary

	// CFGs are the per-function control-flow graphs the analysis ran
	// over, indexed like Prog.Funcs. The harden rewriter consumes them to
	// place control-flow signature checks at block entries.
	CFGs []*FuncCFG
}

// Analyze runs the control-data analysis over a validated program.
func Analyze(p *isa.Program, pol Policy) (*Report, error) {
	cfgs, err := BuildCFG(p)
	if err != nil {
		return nil, err
	}
	entryToFunc := make(map[int]int, len(p.Funcs))
	for fi, f := range p.Funcs {
		entryToFunc[f.Start] = fi
	}

	a := &analyzer{
		prog:        p,
		pol:         pol,
		cfgs:        cfgs,
		entryToFunc: entryToFunc,
		sums:        make([]Summary, len(p.Funcs)),
		blockIn:     make([][]RegMask, len(p.Funcs)),
	}
	for fi, cfg := range cfgs {
		a.blockIn[fi] = make([]RegMask, len(cfg.Blocks))
	}

	// Outer fixpoint over function summaries; inner fixpoint per function.
	// Summaries only grow, so this terminates.
	for round := 0; ; round++ {
		if round > 4*len(p.Funcs)+8 {
			return nil, fmt.Errorf("core: summary fixpoint failed to converge")
		}
		changed := false
		for fi := range cfgs {
			if a.analyzeFunc(fi) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	r := &Report{
		Prog:         p,
		Policy:       pol,
		Tagged:       make([]bool, len(p.Text)),
		ControlSlice: make([]bool, len(p.Text)),
		CVarOut:      make([]RegMask, len(p.Text)),
		CVarIn:       make([]RegMask, len(p.Text)),
		Summaries:    a.sums,
		CFGs:         cfgs,
	}
	for fi := range cfgs {
		a.classify(fi, r)
	}
	return r, nil
}

type analyzer struct {
	prog        *isa.Program
	pol         Policy
	cfgs        []*FuncCFG
	entryToFunc map[int]int
	sums        []Summary
	// blockIn[f][b] is the CVar set at block b's entry (the backward
	// analysis result), kept across rounds so work is incremental.
	blockIn [][]RegMask
}

// retMask is the control-live set at a function's exits.
func (a *analyzer) retMask(fi int) RegMask {
	if a.sums[fi].RetControl {
		return maskOf(isa.RegV0)
	}
	return 0
}

// analyzeFunc runs the intra-procedural backward fixpoint for function fi
// and reports whether any summary (its own ArgsControl or a callee's
// RetControl) changed.
func (a *analyzer) analyzeFunc(fi int) bool {
	cfg := a.cfgs[fi]
	in := a.blockIn[fi]
	changed := false

	// Worklist seeded with all blocks, processed in reverse order for
	// faster convergence on reducible graphs.
	dirty := make([]bool, len(cfg.Blocks))
	work := make([]int, 0, len(cfg.Blocks))
	for b := len(cfg.Blocks) - 1; b >= 0; b-- {
		work = append(work, b)
		dirty[b] = true
	}

	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		dirty[b] = false

		blk := cfg.Blocks[b]
		out := RegMask(0)
		if blk.Return {
			out = a.retMask(fi)
		}
		for _, s := range blk.Succs {
			out |= in[s]
		}
		newIn := a.transferBlock(blk, out, &changed)
		if newIn == in[b] {
			continue
		}
		in[b] = newIn
		// Predecessors are any blocks listing b as successor; rather than
		// maintain reverse edges, mark all blocks dirty whose successor
		// sets include b.
		for pb := range cfg.Blocks {
			if dirty[pb] {
				continue
			}
			for _, s := range cfg.Blocks[pb].Succs {
				if s == b {
					dirty[pb] = true
					work = append(work, pb)
					break
				}
			}
		}
	}

	entryIn := in[0]
	newArgs := a.sums[fi].ArgsControl | (entryIn & argRegs)
	if newArgs != a.sums[fi].ArgsControl {
		a.sums[fi].ArgsControl = newArgs
		changed = true
	}
	return changed
}

// transferBlock walks blk backward from out and returns the entry set.
// Callee RetControl discoveries set *changed.
func (a *analyzer) transferBlock(blk Block, out RegMask, changed *bool) RegMask {
	cv := out
	for idx := blk.End - 1; idx >= blk.Start; idx-- {
		cv = a.step(a.prog.Text[idx], cv, changed)
	}
	return cv
}

// step applies the backward transfer function of one instruction. It is the
// direct encoding of the paper's rules plus the policy extensions.
func (a *analyzer) step(in isa.Instr, cv RegMask, changed *bool) RegMask {
	var usesBuf [3]isa.Reg
	switch in.Class() {
	case isa.ClassControl:
		switch in.Op {
		case isa.JAL:
			callee := a.entryToFunc[int(in.Imm)]
			if cv.Has(isa.RegV0) && !a.sums[callee].RetControl {
				a.sums[callee].RetControl = true
				*changed = true
			}
			cv &^= callerSaved
			cv |= a.sums[callee].ArgsControl
		case isa.JALR:
			// Unknown callee: assume all register arguments are control and
			// the target register certainly is.
			cv &^= callerSaved
			cv |= argRegs | maskOf(in.Rs)
		default:
			cv |= maskOf(in.Uses(usesBuf[:0])...)
		}
	case isa.ClassSys:
		cv &^= maskOf(isa.RegV0)
		cv |= maskOf(isa.RegV0, isa.RegA0, isa.RegA1)
	case isa.ClassArith:
		// A division's divisor can raise a fault (divide by zero), which is
		// a control event just like a branch: the chain feeding it must be
		// protected even when the quotient itself is plain data.
		if in.Op == isa.DIV || in.Op == isa.REM {
			cv |= maskOf(in.Rt)
		}
		if in.Rd != isa.RegZero && cv.Has(in.Rd) {
			cv &^= maskOf(in.Rd)
			cv |= maskOf(in.Uses(usesBuf[:0])...)
		}
	case isa.ClassLoad:
		if in.Rd != isa.RegZero && cv.Has(in.Rd) {
			cv &^= maskOf(in.Rd)
			cv |= maskOf(in.Rs)
		}
		if a.pol >= PolicyControlAddr {
			cv |= maskOf(in.Rs)
		}
	case isa.ClassStore:
		if a.pol >= PolicyControlAddr {
			cv |= maskOf(in.Rs)
		}
		if a.pol >= PolicyConservative {
			cv |= maskOf(in.Rt)
		}
	}
	return cv &^ 1
}

// classify recomputes per-instruction sets from the converged block states
// and fills the report.
func (a *analyzer) classify(fi int, r *Report) {
	cfg := a.cfgs[fi]
	in := a.blockIn[fi]
	tolerant := cfg.Func.Tolerant
	var discard bool
	for b, blk := range cfg.Blocks {
		_ = b
		out := RegMask(0)
		if blk.Return {
			out = a.retMask(fi)
		}
		for _, s := range blk.Succs {
			out |= in[s]
		}
		cv := out
		for idx := blk.End - 1; idx >= blk.Start; idx-- {
			instr := a.prog.Text[idx]
			r.CVarOut[idx] = cv
			cv = a.step(instr, cv, &discard)
			r.CVarIn[idx] = cv

			switch instr.Class() {
			case isa.ClassControl, isa.ClassSys:
				r.ControlSlice[idx] = true
			case isa.ClassArith:
				if instr.Rd != isa.RegZero && r.CVarOut[idx].Has(instr.Rd) {
					r.ControlSlice[idx] = true
				} else if instr.IsInjectable() && tolerant {
					r.Tagged[idx] = true
				}
			case isa.ClassLoad:
				if instr.Rd != isa.RegZero && r.CVarOut[idx].Has(instr.Rd) {
					r.ControlSlice[idx] = true
				}
			}
		}
	}
}

// TraceSlice runs a single backward pass over a straight-line instruction
// sequence, starting from the given exit set, and returns the CVar set
// after processing each instruction (indexed like instrs). It reproduces
// the paper's worked example verbatim and is exposed for tests and
// documentation; the real analysis iterates the same transfer function to
// fixpoint over the CFG.
func TraceSlice(instrs []isa.Instr, exit RegMask, pol Policy) []RegMask {
	a := &analyzer{pol: pol}
	res := make([]RegMask, len(instrs))
	cv := exit
	var discard bool
	for i := len(instrs) - 1; i >= 0; i-- {
		if instrs[i].Op == isa.JAL || instrs[i].Op == isa.JALR {
			// TraceSlice has no call-graph context.
			cv &^= callerSaved
		} else {
			cv = a.step(instrs[i], cv, &discard)
		}
		res[i] = cv
	}
	return res
}

// ProtectedSites returns the mask of instructions a redundancy transform
// must duplicate to realize the protection this report assumes: every
// injectable arithmetic instruction inside the control slice. Control
// instructions and loads in the slice are not included — they are not
// injection sites under the paper's fault model, so a rewriter protects
// their inputs rather than their execution.
func (r *Report) ProtectedSites() []bool {
	sites := make([]bool, len(r.Prog.Text))
	for i, in := range r.Prog.Text {
		sites[i] = r.ControlSlice[i] && in.IsInjectable()
	}
	return sites
}

// EligibleAll returns the protection-off injection mask: every injectable
// (result-writing arithmetic) instruction in the whole program, regardless
// of analysis or tolerance annotations. This models running the unchanged
// application on unreliable hardware.
func EligibleAll(p *isa.Program) []bool {
	el := make([]bool, len(p.Text))
	for i, in := range p.Text {
		el[i] = in.IsInjectable()
	}
	return el
}

// Stats summarises a report for Table-3 style output.
type Stats struct {
	TextInstrs    int
	Injectable    int // static injectable instruction count
	TaggedStatic  int // static tagged (low-reliability) count
	ControlStatic int // static control-slice count
	TolerantFuncs int
}

// Stats computes static statistics from the report.
func (r *Report) Stats() Stats {
	s := Stats{TextInstrs: len(r.Prog.Text)}
	for i := range r.Prog.Text {
		if r.Prog.Text[i].IsInjectable() {
			s.Injectable++
		}
		if r.Tagged[i] {
			s.TaggedStatic++
		}
		if r.ControlSlice[i] {
			s.ControlStatic++
		}
	}
	for _, f := range r.Prog.Funcs {
		if f.Tolerant {
			s.TolerantFuncs++
		}
	}
	return s
}
