package core

import (
	"testing"

	"etap/internal/asm"
	"etap/internal/isa"
)

func assemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func analyze(t *testing.T, src string, pol Policy) *Report {
	t.Helper()
	r, err := Analyze(assemble(t, src), pol)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return r
}

// TestPaperWorkedExample reproduces the Section 3 example instruction by
// instruction, asserting both the CVar set evolution and the tag set
// {I0, I4, I6}.
func TestPaperWorkedExample(t *testing.T) {
	// I0: $2 = $4 + 1            *
	// I1: LD $3, addr            (absolute load)
	// I2: $2 = $3 + 2            [$3]
	// I3: $3 = $3 + 8            [$3, $2]
	// I4: $10 = $8 - $4          [$3, $2]   *
	// I5: $10 = $3 << $2         [$3, $2]
	// I6: $4 = $3 + $6           [$3, $10]  *
	// I7: $3 = $3 + 1            [$3, $10]
	// I8: BNE $3, $10, label     [$3, $10]
	text := []isa.Instr{
		{Op: isa.ADDI, Rd: 2, Rs: 4, Imm: 1}, // I0
		{Op: isa.LW, Rd: 3, Rs: isa.RegZero}, // I1
		{Op: isa.ADDI, Rd: 2, Rs: 3, Imm: 2}, // I2
		{Op: isa.ADDI, Rd: 3, Rs: 3, Imm: 8}, // I3
		{Op: isa.SUB, Rd: 10, Rs: 8, Rt: 4},  // I4
		{Op: isa.SLLV, Rd: 10, Rs: 3, Rt: 2}, // I5
		{Op: isa.ADD, Rd: 4, Rs: 3, Rt: 6},   // I6
		{Op: isa.ADDI, Rd: 3, Rs: 3, Imm: 1}, // I7
		{Op: isa.BNE, Rs: 3, Rt: 10, Imm: 0}, // I8
	}
	got := TraceSlice(text, 0, PolicyControl)

	want := []RegMask{
		0,             // after I0 (set was empty before I0 in backward order)
		0,             // after I1: LD removes $3, absolute address adds nothing
		maskOf(3),     // after I2
		maskOf(3, 2),  // after I3
		maskOf(3, 2),  // after I4
		maskOf(3, 2),  // after I5
		maskOf(3, 10), // after I6
		maskOf(3, 10), // after I7
		maskOf(3, 10), // after I8
	}
	for i := range text {
		if got[i] != want[i] {
			t.Errorf("I%d: CVar = %s, want %s", i, got[i], want[i])
		}
	}

	// Tag decision: arithmetic instructions whose destination is not in the
	// set that was live below them.
	wantTagged := map[int]bool{0: true, 4: true, 6: true}
	for i, in := range text {
		if in.Class() != isa.ClassArith {
			continue
		}
		below := RegMask(0)
		if i+1 < len(text) {
			below = got[i+1]
		}
		tagged := !below.Has(in.Rd)
		if tagged != wantTagged[i] {
			t.Errorf("I%d: tagged = %v, want %v", i, tagged, wantTagged[i])
		}
	}
}

// TestWorkedExampleViaFullAnalysis runs the same example through the real
// CFG-based analysis (with an exit appended so it is a complete function)
// and checks the tag set.
func TestWorkedExampleViaFullAnalysis(t *testing.T) {
	src := `
.text
.func example tolerant
	addi $v0, $a0, 1        # I0: tagged
	lw $v1, 4096($zero)     # I1
	addi $v0, $v1, 2        # I2
	addi $v1, $v1, 8        # I3
	sub $t2, $t0, $a0       # I4: tagged
	sllv $t2, $v1, $v0      # I5
	add $a0, $v1, $a2       # I6: tagged
	addi $v1, $v1, 1        # I7
	bne $v1, $t2, done      # I8
	nop
done:
	jr $ra
.endfunc
.func __start
	jal example
	li $v0, 1
	syscall
.endfunc
`
	r := analyze(t, src, PolicyControl)
	f, _ := r.Prog.FuncByName("example")
	var taggedIdx []int
	for i := f.Start; i < f.End; i++ {
		if r.Tagged[i] {
			taggedIdx = append(taggedIdx, i-f.Start)
		}
	}
	want := []int{0, 4, 6}
	if len(taggedIdx) != len(want) {
		t.Fatalf("tagged = %v, want %v", taggedIdx, want)
	}
	for i := range want {
		if taggedIdx[i] != want[i] {
			t.Fatalf("tagged = %v, want %v", taggedIdx, want)
		}
	}
}

// TestBranchConditionProtected: the chain feeding a branch is control.
func TestBranchConditionProtected(t *testing.T) {
	src := `
.text
.func f tolerant
	addi $t0, $zero, 5      # feeds the branch: control
	addi $t1, $zero, 9      # dead for control: tagged
	add  $t2, $t0, $t0      # feeds the branch: control
	beqz $t2, out
	addi $t3, $t1, 1        # tagged
out:
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	r := analyze(t, src, PolicyControl)
	f, _ := r.Prog.FuncByName("f")
	wantTag := []bool{false, true, false, false, true}
	for i, w := range wantTag {
		if r.Tagged[f.Start+i] != w {
			t.Errorf("instr %d: tagged=%v, want %v (cvar out %s)",
				i, r.Tagged[f.Start+i], w, r.CVarOut[f.Start+i])
		}
	}
}

// TestLoadTerminatesChain: per the paper, a load of a control variable ends
// the chain (memory is not tracked) but taints its address base register.
func TestLoadTerminatesChain(t *testing.T) {
	src := `
.text
.func f tolerant
	addi $t5, $zero, 4096   # address producer: becomes control via the lw
	addi $t1, $zero, 1      # value producer stored then reloaded: NOT control (the hole)
	sw   $t1, 0($t5)
	lw   $t0, 0($t5)
	beqz $t0, out
	nop
out:
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	r := analyze(t, src, PolicyControl)
	f, _ := r.Prog.FuncByName("f")
	if r.Tagged[f.Start+0] {
		t.Errorf("address producer should be protected (control), got tagged")
	}
	if !r.Tagged[f.Start+1] {
		t.Errorf("stored value should be tagged under PolicyControl (the paper's memory hole)")
	}

	// PolicyConservative closes the hole: the stored value is control too.
	rc := analyze(t, src, PolicyConservative)
	if rc.Tagged[f.Start+1] {
		t.Errorf("stored value should be protected under PolicyConservative")
	}
}

// TestPolicyControlAddrProtectsAllAddresses: a store address is control
// even when the loaded value never reaches a branch.
func TestPolicyControlAddrProtectsAllAddresses(t *testing.T) {
	src := `
.text
.func f tolerant
	addi $t5, $zero, 4096   # store address
	addi $t1, $zero, 1      # stored value
	sw   $t1, 0($t5)
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	rc := analyze(t, src, PolicyControl)
	f, _ := rc.Prog.FuncByName("f")
	if !rc.Tagged[f.Start+0] || !rc.Tagged[f.Start+1] {
		t.Errorf("PolicyControl: both producers should be tagged (nothing reaches control)")
	}
	ra := analyze(t, src, PolicyControlAddr)
	if ra.Tagged[f.Start+0] {
		t.Errorf("PolicyControlAddr: store-address producer should be protected")
	}
	if !ra.Tagged[f.Start+1] {
		t.Errorf("PolicyControlAddr: stored value should still be tagged")
	}
}

// TestInterproceduralArgument: an argument used for control in the callee
// protects the caller's computation feeding it.
func TestInterproceduralArgument(t *testing.T) {
	src := `
.text
.func callee tolerant
	beqz $a0, out           # a0 is control-live at entry
	nop
out:
	jr $ra
.endfunc
.func caller tolerant
	addi $t0, $zero, 3      # feeds a0: control
	addi $t1, $zero, 9      # feeds a1: data, tagged
	move $a0, $t0
	move $a1, $t1
	jal callee
	jr $ra
.endfunc
.func __start
	jal caller
	li $v0, 1
	syscall
.endfunc
`
	r := analyze(t, src, PolicyControl)
	callee, _ := r.Prog.FuncByName("callee")
	calleeID := -1
	for i, f := range r.Prog.Funcs {
		if f.Name == "callee" {
			calleeID = i
		}
	}
	if !r.Summaries[calleeID].ArgsControl.Has(isa.RegA0) {
		t.Fatalf("callee summary should mark a0 control, got %s", r.Summaries[calleeID].ArgsControl)
	}
	if r.Summaries[calleeID].ArgsControl.Has(isa.RegA1) {
		t.Fatalf("callee summary should not mark a1 control")
	}
	_ = callee

	caller, _ := r.Prog.FuncByName("caller")
	// addi $t0 (feeds a0) protected; addi $t1 (feeds a1) tagged;
	// move $a0 protected; move $a1 tagged.
	wantTag := []bool{false, true, false, true}
	for i, w := range wantTag {
		if r.Tagged[caller.Start+i] != w {
			t.Errorf("caller instr %d: tagged=%v, want %v (cvar out %s)",
				i, r.Tagged[caller.Start+i], w, r.CVarOut[caller.Start+i])
		}
	}
}

// TestInterproceduralReturnValue: a caller branching on a return value
// protects the callee's v0 definitions.
func TestInterproceduralReturnValue(t *testing.T) {
	src := `
.text
.func callee tolerant
	addi $v0, $zero, 1      # defines the return value: control because caller branches on it
	addi $t0, $zero, 2      # unrelated: tagged
	jr $ra
.endfunc
.func caller tolerant
	jal callee
	beqz $v0, out
	nop
out:
	jr $ra
.endfunc
.func __start
	jal caller
	li $v0, 1
	syscall
.endfunc
`
	r := analyze(t, src, PolicyControl)
	callee, _ := r.Prog.FuncByName("callee")
	if r.Tagged[callee.Start+0] {
		t.Errorf("v0 definition should be protected when a caller branches on the result")
	}
	if !r.Tagged[callee.Start+1] {
		t.Errorf("unrelated arithmetic in callee should stay tagged")
	}
}

// TestNonTolerantFunctionNeverTagged: tagging requires the user-supplied
// tolerance annotation, as in the paper's methodology.
func TestNonTolerantFunctionNeverTagged(t *testing.T) {
	src := `
.text
.func f
	addi $t0, $zero, 1
	addi $t1, $zero, 2
	add  $t2, $t0, $t1
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	r := analyze(t, src, PolicyControl)
	for i := range r.Prog.Text {
		if r.Tagged[i] {
			t.Fatalf("instruction %d tagged in non-tolerant program", i)
		}
	}
	if s := r.Stats(); s.TaggedStatic != 0 || s.TolerantFuncs != 0 {
		t.Fatalf("stats = %+v, want no tagged/tolerant", s)
	}
}

// TestSyscallArgumentsAreControl: computations feeding a syscall's v0/a0/a1
// are protected (a corrupted syscall number or buffer pointer is
// catastrophic).
func TestSyscallArgumentsAreControl(t *testing.T) {
	src := `
.text
.func __start tolerant
__entry:
	addi $a0, $zero, 4096   # buffer address: control
	addi $a1, $zero, 4      # length: control
	addi $t9, $zero, 123    # dead: tagged
	addi $v0, $zero, 4      # syscall number: control
	syscall
	li $v0, 1
	syscall
.endfunc
`
	r := analyze(t, src, PolicyControl)
	wantTag := []bool{false, false, true, false}
	for i, w := range wantTag {
		if r.Tagged[i] != w {
			t.Errorf("instr %d: tagged=%v, want %v (cvar out %s)", i, r.Tagged[i], w, r.CVarOut[i])
		}
	}
}

// TestLoopFixpoint: a value carried around a loop and eventually compared
// must be control-live everywhere in the loop.
func TestLoopFixpoint(t *testing.T) {
	src := `
.text
.func f tolerant
	addi $t0, $zero, 0      # i = 0: control (loop counter)
	addi $t1, $zero, 0      # acc = 0: data, tagged
loop:
	add  $t1, $t1, $t0      # acc += i: tagged
	addi $t0, $t0, 1        # i++: control
	slti $at, $t0, 10
	bnez $at, loop
	move $v0, $t1
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	r := analyze(t, src, PolicyControl)
	f, _ := r.Prog.FuncByName("f")
	wantTag := map[int]bool{0: false, 1: true, 2: true, 3: false}
	for i, w := range wantTag {
		if r.Tagged[f.Start+i] != w {
			t.Errorf("instr %d: tagged=%v, want %v (cvar out %s)", i, r.Tagged[f.Start+i], w, r.CVarOut[f.Start+i])
		}
	}
}

// TestPolicyMonotonicity: stronger policies can only shrink the tag set.
func TestPolicyMonotonicity(t *testing.T) {
	src := `
.text
.func f tolerant
	addi $t0, $zero, 4096
	addi $t1, $zero, 7
	sw   $t1, 0($t0)
	lw   $t2, 4($t0)
	add  $t3, $t2, $t1
	sw   $t3, 8($t0)
	slti $at, $t3, 100
	beqz $at, out
	addi $t4, $zero, 1
out:
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	prog := assemble(t, src)
	var tagged [3][]bool
	for i, pol := range []Policy{PolicyControl, PolicyControlAddr, PolicyConservative} {
		r, err := Analyze(prog, pol)
		if err != nil {
			t.Fatalf("analyze(%s): %v", pol, err)
		}
		tagged[i] = r.Tagged
	}
	for i := range prog.Text {
		if tagged[1][i] && !tagged[0][i] {
			t.Errorf("instr %d tagged under ControlAddr but not Control", i)
		}
		if tagged[2][i] && !tagged[1][i] {
			t.Errorf("instr %d tagged under Conservative but not ControlAddr", i)
		}
	}
}

func TestCFGErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"branch out of function", `
.text
.func a
	beqz $t0, other
	jr $ra
.endfunc
.func b
other:
	jr $ra
.endfunc
`},
		{"call to non-entry", `
.text
.func a
	addi $t0, $zero, 1
mid:
	jr $ra
.endfunc
.func b
	jal mid
	jr $ra
.endfunc
`},
		{"call in final slot", `
.text
.func a
	jr $ra
.endfunc
.func b
	jal a
.endfunc
`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := assemble(t, c.src)
			if _, err := Analyze(p, PolicyControl); err == nil {
				t.Fatalf("analyze succeeded, want error")
			}
		})
	}
}

func TestRegMaskString(t *testing.T) {
	if got := maskOf(3, 2).String(); got != "[$3, $2]" {
		t.Errorf("mask string = %q, want %q", got, "[$3, $2]")
	}
	if got := RegMask(0).String(); got != "[]" {
		t.Errorf("empty mask string = %q, want %q", got, "[]")
	}
}

func TestEligibleAll(t *testing.T) {
	src := `
.text
.func f
	addi $t0, $zero, 1
	lw $t1, 4096($zero)
	sw $t1, 4096($zero)
	beqz $t0, out
	nop
out:
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	p := assemble(t, src)
	el := EligibleAll(p)
	for i, in := range p.Text {
		want := in.IsInjectable()
		if el[i] != want {
			t.Errorf("instr %d (%s): eligible=%v, want %v", i, isa.Disasm(in), el[i], want)
		}
	}
}
