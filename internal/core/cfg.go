// Package core implements the paper's primary contribution: the static
// analysis of Section 3 that identifies, at the assembly level, which
// arithmetic instructions cannot influence a control-flow decision and may
// therefore run on low-reliability hardware (equivalently: are eligible for
// fault injection while the rest is protected).
//
// The analysis maintains CVar, the set of registers "likely to influence
// control flow", walking each basic block backward from its exit:
//
//   - control instructions (branches, indirect jumps, syscalls) add the
//     registers they read to CVar;
//   - an instruction that defines a register in CVar removes the defined
//     register and adds the registers used in the definition — this applies
//     uniformly to ALU instructions and loads (a load's "use" is its address
//     base register, matching the paper's worked example where an absolute
//     load empties the set);
//   - an arithmetic instruction whose destination is not in CVar is tagged
//     low-reliability.
//
// The analysis is inter-procedural via function summaries: which argument
// registers are control-live at a callee's entry, and whether any caller
// consumes the callee's return value for control. Memory is untracked —
// the paper's acknowledged soundness hole ("we perform no memory
// disambiguation", §5.1) — except under PolicyConservative.
package core

import (
	"fmt"

	"etap/internal/isa"
)

// Block is a basic block: the half-open instruction range [Start, End)
// within one function.
type Block struct {
	Start, End int
	// Succs are block IDs within the same function.
	Succs []int
	// Return marks a function exit: a block ending in jr, or one that
	// falls off the end of the function.
	Return bool
}

// FuncCFG is the control-flow graph of one function.
type FuncCFG struct {
	Func   isa.FuncInfo
	FuncID int
	Blocks []Block
	// blockAt maps absolute instruction index to block ID.
	blockAt map[int]int
}

// BlockAt returns the block ID containing absolute instruction index idx.
func (c *FuncCFG) BlockAt(idx int) (int, bool) {
	b, ok := c.blockAt[idx]
	return b, ok
}

// BuildCFG constructs per-function CFGs for a validated program. It rejects
// control flow the rest of the toolchain never produces: branches that
// leave their function, calls that target a non-entry instruction, and
// calls in a function's final slot.
func BuildCFG(p *isa.Program) ([]*FuncCFG, error) {
	entryToFunc := make(map[int]int, len(p.Funcs))
	for fi, f := range p.Funcs {
		entryToFunc[f.Start] = fi
	}

	cfgs := make([]*FuncCFG, len(p.Funcs))
	for fi, f := range p.Funcs {
		cfg, err := buildFuncCFG(p, f, fi, entryToFunc)
		if err != nil {
			return nil, err
		}
		cfgs[fi] = cfg
	}
	return cfgs, nil
}

func buildFuncCFG(p *isa.Program, f isa.FuncInfo, fi int, entryToFunc map[int]int) (*FuncCFG, error) {
	inFunc := func(idx int) bool { return idx >= f.Start && idx < f.End }

	leaders := map[int]bool{f.Start: true}
	for idx := f.Start; idx < f.End; idx++ {
		in := p.Text[idx]
		if in.Class() != isa.ClassControl {
			continue
		}
		if idx+1 < f.End {
			leaders[idx+1] = true
		}
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ, isa.J:
			t := int(in.Imm)
			if !inFunc(t) {
				return nil, fmt.Errorf("core: %s: instr %d (%s) targets %d outside function [%d,%d)",
					f.Name, idx, isa.Disasm(in), t, f.Start, f.End)
			}
			leaders[t] = true
		case isa.JAL:
			t := int(in.Imm)
			if _, ok := entryToFunc[t]; !ok {
				return nil, fmt.Errorf("core: %s: instr %d calls %d, which is not a function entry", f.Name, idx, t)
			}
			if idx+1 >= f.End {
				return nil, fmt.Errorf("core: %s: call in final slot of function", f.Name)
			}
		}
	}

	cfg := &FuncCFG{Func: f, FuncID: fi, blockAt: make(map[int]int)}
	start := f.Start
	for idx := f.Start; idx <= f.End; idx++ {
		atBoundary := idx == f.End || (idx > start && leaders[idx])
		if !atBoundary {
			continue
		}
		cfg.Blocks = append(cfg.Blocks, Block{Start: start, End: idx})
		start = idx
	}
	for bi, b := range cfg.Blocks {
		for idx := b.Start; idx < b.End; idx++ {
			cfg.blockAt[idx] = bi
		}
	}

	for bi := range cfg.Blocks {
		b := &cfg.Blocks[bi]
		last := p.Text[b.End-1]
		addSucc := func(idx int) {
			b.Succs = append(b.Succs, cfg.blockAt[idx])
		}
		switch last.Op {
		case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
			addSucc(int(last.Imm))
			if b.End < f.End {
				addSucc(b.End)
			} else {
				b.Return = true
			}
		case isa.J:
			addSucc(int(last.Imm))
		case isa.JR, isa.JALR:
			// jr is a return; jalr (never emitted by the compiler) is an
			// indirect call whose continuation is the next instruction.
			if last.Op == isa.JALR && b.End < f.End {
				addSucc(b.End)
			} else {
				b.Return = true
			}
		default:
			if b.End < f.End {
				addSucc(b.End)
			} else {
				// Falling off the end of the function: treated as a return
				// so hand-written test programs that end in a bare exit
				// syscall analyze cleanly.
				b.Return = true
			}
		}
	}
	return cfg, nil
}
