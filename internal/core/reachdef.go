package core

import (
	"fmt"

	"etap/internal/isa"
)

// This file implements classic reaching definitions and def-use chains —
// the "technique ... used in contemporary compilers" the paper's Section 3
// builds on — as an *independent* computation of the def-use structure.
// CrossValidate uses it to check the CVar analysis: a tagged
// (low-reliability) definition must never be directly consumed by a
// control-consuming site. Because the CVar transfer function marks every
// intermediate definition on a path to control as control-influencing, the
// one-step property over all instructions is equivalent to full-slice
// disjointness, but it is computed here by a structurally different
// algorithm (forward bitvector dataflow instead of the backward set walk),
// which is what makes the check meaningful.

// DefID identifies one register definition site.
type DefID int32

// DefSite describes a definition: instruction index and defined register.
type DefSite struct {
	Instr int
	Reg   isa.Reg
}

// DefUse holds reaching-definition results for one function.
type DefUse struct {
	Func isa.FuncInfo
	// Defs lists every definition site in the function, indexed by DefID.
	Defs []DefSite
	// UseDefs maps (instruction index − Func.Start) to, per use operand,
	// the definitions reaching it. Definitions made outside the function
	// (arguments, callee results) have no DefID and are simply absent.
	UseDefs map[int][]DefID
	// DefUses is the inverse: for each DefID, the instruction indices that
	// consume it.
	DefUses [][]int

	defsByInstr map[int][]DefID
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i DefID)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i DefID) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) orInto(other bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | other[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(other bitset) {
	copy(b, other)
}

// ReachingDefs computes per-function def-use chains for the whole program.
func ReachingDefs(p *isa.Program) ([]*DefUse, error) {
	cfgs, err := BuildCFG(p)
	if err != nil {
		return nil, err
	}
	out := make([]*DefUse, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = reachFunc(p, cfg)
	}
	return out, nil
}

func reachFunc(p *isa.Program, cfg *FuncCFG) *DefUse {
	du := &DefUse{Func: cfg.Func, UseDefs: make(map[int][]DefID)}

	// Enumerate definition sites. Calls clobber the caller-saved set; model
	// each clobber as a definition so stale defs do not flow past calls.
	defsOfReg := make([][]DefID, isa.NumRegs)
	addDef := func(idx int, r isa.Reg) DefID {
		id := DefID(len(du.Defs))
		du.Defs = append(du.Defs, DefSite{Instr: idx, Reg: r})
		defsOfReg[r] = append(defsOfReg[r], id)
		return id
	}
	for idx := cfg.Func.Start; idx < cfg.Func.End; idx++ {
		in := p.Text[idx]
		if d, ok := in.Dest(); ok && d != isa.RegZero {
			addDef(idx, d)
		}
		if in.Op == isa.JAL || in.Op == isa.JALR {
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if callerSaved.Has(r) {
					if d, ok := in.Dest(); ok && d == r {
						continue // already added above
					}
					addDef(idx, r)
				}
			}
		}
	}
	nd := len(du.Defs)
	du.DefUses = make([][]int, nd)

	// GEN/KILL per block.
	nb := len(cfg.Blocks)
	gen := make([]bitset, nb)
	kill := make([]bitset, nb)
	for b, blk := range cfg.Blocks {
		gen[b] = newBitset(nd)
		kill[b] = newBitset(nd)
		for idx := blk.Start; idx < blk.End; idx++ {
			for _, id := range defsAt(du, idx) {
				r := du.Defs[id].Reg
				for _, other := range defsOfReg[r] {
					if du.Defs[other].Instr != idx {
						kill[b].set(other)
					}
				}
				gen[b].set(id)
			}
		}
		// gen must exclude killed-then-redefined handled by order below; a
		// simple forward pass fixes intra-block precision when we resolve
		// uses, so block-level gen/kill only need the last defs. Recompute
		// gen precisely: last definition of each register wins.
		lastDef := map[isa.Reg]DefID{}
		for idx := blk.Start; idx < blk.End; idx++ {
			for _, id := range defsAt(du, idx) {
				lastDef[du.Defs[id].Reg] = id
			}
		}
		gen[b] = newBitset(nd)
		for _, id := range lastDef {
			gen[b].set(id)
		}
	}

	// Forward fixpoint: in[b] = ∪ out[pred]; out[b] = gen ∪ (in − kill).
	ins := make([]bitset, nb)
	outs := make([]bitset, nb)
	for b := 0; b < nb; b++ {
		ins[b] = newBitset(nd)
		outs[b] = newBitset(nd)
	}
	preds := make([][]int, nb)
	for b, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < nb; b++ {
			in := newBitset(nd)
			for _, pb := range preds[b] {
				in.orInto(outs[pb])
			}
			ins[b].copyFrom(in)
			out := newBitset(nd)
			out.copyFrom(in)
			for i := range out {
				out[i] &^= kill[b][i]
				out[i] |= gen[b][i]
			}
			prev := outs[b]
			for i := range out {
				if out[i] != prev[i] {
					changed = true
				}
			}
			outs[b].copyFrom(out)
		}
	}

	// Resolve uses with intra-block precision: walk each block forward
	// tracking the current definition of each register.
	var usesBuf [3]isa.Reg
	for b, blk := range cfg.Blocks {
		cur := make([]DefID, isa.NumRegs)
		for i := range cur {
			cur[i] = -1
		}
		live := ins[b]
		for idx := blk.Start; idx < blk.End; idx++ {
			in := p.Text[idx]
			uses := in.Uses(usesBuf[:0])
			if in.Op == isa.JAL || in.Op == isa.JALR {
				// Virtual uses: calls consume the argument registers; the
				// cross-validation decides via callee summaries whether a
				// given argument is control-live.
				uses = append(uses, isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3)
			}
			for _, r := range uses {
				if r == isa.RegZero {
					continue
				}
				if cur[r] >= 0 {
					du.record(idx, cur[r])
					continue
				}
				for _, id := range defsOfReg[r] {
					if live.has(id) {
						du.record(idx, id)
					}
				}
			}
			for _, id := range defsAt(du, idx) {
				cur[du.Defs[id].Reg] = id
			}
		}
	}
	return du
}

// defsAt returns the DefIDs whose site is instruction idx. Linear scan per
// block construction would be wasteful; build lazily with a map.
func defsAt(du *DefUse, idx int) []DefID {
	if du.defsByInstr == nil {
		du.defsByInstr = make(map[int][]DefID)
		for id, d := range du.Defs {
			du.defsByInstr[d.Instr] = append(du.defsByInstr[d.Instr], DefID(id))
		}
	}
	return du.defsByInstr[idx]
}

func (du *DefUse) record(useInstr int, id DefID) {
	du.UseDefs[useInstr] = append(du.UseDefs[useInstr], id)
	du.DefUses[id] = append(du.DefUses[id], useInstr)
}

// CrossValidate checks a Report against independently computed def-use
// chains: no tagged definition may be directly consumed by a
// control-consuming site under the report's policy. It returns a
// description of the first violation, or nil.
func CrossValidate(p *isa.Program, r *Report) error {
	dus, err := ReachingDefs(p)
	if err != nil {
		return err
	}
	entryToFunc := make(map[int]int, len(p.Funcs))
	for fi, f := range p.Funcs {
		entryToFunc[f.Start] = fi
	}
	for _, du := range dus {
		for id, useSites := range du.DefUses {
			def := du.Defs[id]
			if !r.Tagged[def.Instr] {
				continue
			}
			for _, u := range useSites {
				if why := controlConsumer(p, r, entryToFunc, u, def.Reg); why != "" {
					return fmt.Errorf("core: tagged instruction %d (%s) reaches %s at instruction %d (%s)",
						def.Instr, isa.Disasm(p.Text[def.Instr]), why, u, isa.Disasm(p.Text[u]))
				}
			}
		}
	}
	return nil
}

// controlConsumer reports why instruction u consuming register reg is a
// control-consuming site under the report's policy ("" if it is not).
func controlConsumer(p *isa.Program, r *Report, entryToFunc map[int]int, u int, reg isa.Reg) string {
	in := p.Text[u]
	switch in.Class() {
	case isa.ClassControl:
		if in.Op == isa.JAL {
			callee, ok := entryToFunc[int(in.Imm)]
			if ok && r.Summaries[callee].ArgsControl.Has(reg) {
				return "a control-live callee argument"
			}
			return ""
		}
		if in.Op == isa.JALR {
			if reg == in.Rs {
				return "an indirect call target"
			}
			return "a control-live callee argument (unknown callee)"
		}
		return "a control transfer"
	case isa.ClassSys:
		return "a syscall operand"
	case isa.ClassArith:
		if (in.Op == isa.DIV || in.Op == isa.REM) && in.Rt == reg {
			return "a faultable divisor"
		}
		if r.ControlSlice[u] {
			return "a control-influencing computation"
		}
	case isa.ClassLoad:
		if in.Rs == reg {
			if r.Policy >= PolicyControlAddr {
				return "a load address under an address-protecting policy"
			}
			if r.ControlSlice[u] {
				return "the address of a control-bound load"
			}
		}
	case isa.ClassStore:
		if in.Rs == reg && r.Policy >= PolicyControlAddr {
			return "a store address under an address-protecting policy"
		}
		if in.Rt == reg && r.Policy >= PolicyConservative {
			return "a stored value under the conservative policy"
		}
	}
	return ""
}
