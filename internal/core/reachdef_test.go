package core

import (
	"testing"

	"etap/internal/apps/all"
	"etap/internal/isa"
	"etap/internal/minic"
)

func TestReachingDefsStraightLine(t *testing.T) {
	src := `
.text
.func f tolerant
	addi $t0, $zero, 1    # def0 of t0
	addi $t0, $t0, 2      # uses def0; def of t0
	add  $t1, $t0, $t0    # uses def1 twice
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	p := assemble(t, src)
	dus, err := ReachingDefs(p)
	if err != nil {
		t.Fatal(err)
	}
	du := dus[0]
	// Instruction 1 must see exactly def 0; instruction 2 must see the
	// def made at instruction 1.
	defsAtUse := func(instr int) map[int]bool {
		out := map[int]bool{}
		for _, id := range du.UseDefs[instr] {
			out[du.Defs[id].Instr] = true
		}
		return out
	}
	if d := defsAtUse(1); !d[0] || len(d) != 1 {
		t.Fatalf("instr 1 sees defs %v, want {0}", d)
	}
	if d := defsAtUse(2); !d[1] || d[0] {
		t.Fatalf("instr 2 sees defs %v, want {1}", d)
	}
}

func TestReachingDefsMergeAtJoin(t *testing.T) {
	src := `
.text
.func f tolerant
	beqz $a0, alt
	addi $t0, $zero, 1    # def A
	j join
alt:
	addi $t0, $zero, 2    # def B
join:
	add $t1, $t0, $zero   # both defs reach
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	p := assemble(t, src)
	dus, err := ReachingDefs(p)
	if err != nil {
		t.Fatal(err)
	}
	du := dus[0]
	joinUse := -1
	for idx := range du.UseDefs {
		if p.Text[idx].Op == isa.ADD {
			joinUse = idx
		}
	}
	if joinUse < 0 {
		t.Fatalf("join use not found")
	}
	sites := map[int]bool{}
	for _, id := range du.UseDefs[joinUse] {
		sites[du.Defs[id].Instr] = true
	}
	if len(sites) != 2 {
		t.Fatalf("join sees %d defs (%v), want 2", len(sites), sites)
	}
}

func TestReachingDefsLoop(t *testing.T) {
	src := `
.text
.func f tolerant
	addi $t0, $zero, 0    # initial def
loop:
	addi $t0, $t0, 1      # loop def; use sees both defs
	slti $at, $t0, 10
	bnez $at, loop
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	p := assemble(t, src)
	dus, err := ReachingDefs(p)
	if err != nil {
		t.Fatal(err)
	}
	du := dus[0]
	sites := map[int]bool{}
	for _, id := range du.UseDefs[1] {
		sites[du.Defs[id].Instr] = true
	}
	if !sites[0] || !sites[1] {
		t.Fatalf("loop body use sees defs %v, want both initial and loop defs", sites)
	}
}

func TestCallClobbersCallerSaved(t *testing.T) {
	src := `
.text
.func g
	addi $v0, $zero, 7
	jr $ra
.endfunc
.func f tolerant
	addi $t0, $zero, 5    # def before the call
	jal g                 # clobbers t0
	add $t1, $t0, $zero   # must NOT see the pre-call def
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	p := assemble(t, src)
	dus, err := ReachingDefs(p)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := p.FuncByName("f")
	var du *DefUse
	for _, d := range dus {
		if d.Func.Name == "f" {
			du = d
		}
	}
	useInstr := f.Start + 2
	for _, id := range du.UseDefs[useInstr] {
		site := du.Defs[id]
		if site.Instr == f.Start && p.Text[site.Instr].Op == isa.ADDI {
			t.Fatalf("pre-call definition of $t0 survived the call")
		}
	}
}

// TestCrossValidateApps is the heavyweight consistency check: for every
// benchmark application and every policy, the independently computed
// def-use chains must agree that no tagged instruction feeds a
// control-consuming site.
func TestCrossValidateApps(t *testing.T) {
	for _, app := range all.Apps() {
		prog, err := minic.Build(app.Source())
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		for _, pol := range []Policy{PolicyControl, PolicyControlAddr, PolicyConservative} {
			rep, err := Analyze(prog, pol)
			if err != nil {
				t.Fatalf("%s/%s: %v", app.Name(), pol, err)
			}
			if err := CrossValidate(prog, rep); err != nil {
				t.Errorf("%s/%s: %v", app.Name(), pol, err)
			}
		}
	}
}

// TestCrossValidateFuzz extends the consistency check to random programs.
func TestCrossValidateFuzz(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 5
	}
	for seed := int64(500); seed < 500+int64(n); seed++ {
		prog, err := minic.Build(minic.GenProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, pol := range []Policy{PolicyControl, PolicyControlAddr, PolicyConservative} {
			rep, err := Analyze(prog, pol)
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, pol, err)
			}
			if err := CrossValidate(prog, rep); err != nil {
				t.Errorf("seed %d/%s: %v", seed, pol, err)
			}
		}
	}
}

// TestCrossValidateCatchesBadTags plants a deliberately wrong tag and
// checks the validator rejects it, so the consistency tests above cannot
// pass vacuously.
func TestCrossValidateCatchesBadTags(t *testing.T) {
	src := `
.text
.func f tolerant
	addi $t0, $zero, 5
	beqz $t0, out
	nop
out:
	jr $ra
.endfunc
.func __start
	jal f
	li $v0, 1
	syscall
.endfunc
`
	p := assemble(t, src)
	rep, err := Analyze(p, PolicyControl)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := p.FuncByName("f")
	if rep.Tagged[f.Start] {
		t.Fatalf("branch-feeding instruction tagged by the analysis itself")
	}
	rep.Tagged[f.Start] = true // sabotage
	if err := CrossValidate(p, rep); err == nil {
		t.Fatalf("validator accepted a tag on a branch-feeding instruction")
	}
}
