package exp

import (
	"context"
	"fmt"

	"etap/internal/apps"
	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/harden"
	"etap/internal/minic"
	"etap/internal/sim"
)

// availabilityRecoveries is the restore-replay budget per detected trial
// in the experiment's recovery configuration.
const availabilityRecoveries = 3

// buildHardenedEngine compiles one benchmark, applies the redundancy
// transforms and prepares a detection-campaign engine over the primary
// protected copies, with the app's fidelity scorer attached.
func buildHardenedEngine(a apps.App, pol core.Policy) (*campaign.Engine, error) {
	prog, err := minic.Build(a.Source())
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", a.Name(), err)
	}
	rep, err := core.Analyze(prog, pol)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", a.Name(), err)
	}
	res, err := harden.Harden(rep, harden.Options{DupCompare: true, Signatures: true})
	if err != nil {
		return nil, fmt.Errorf("exp: %s (harden): %w", a.Name(), err)
	}
	e, err := campaign.New(res.Prog, res.PrimaryProtected, sim.Config{Input: a.Input()}, campaign.Config{})
	if err != nil {
		return nil, fmt.Errorf("exp: %s (hardened): %w", a.Name(), err)
	}
	e.Score = apps.Scorer(a)
	e.DetectClass = func(pc int) string { return res.CheckKindAt(pc).String() }
	return e, nil
}

// Availability closes the detect→recover loop over every hardened
// benchmark: single-bit trials against the protected copies, once with
// detection terminal and once with checkpoint-restore recovery, binned
// in the tolerated/detected/untolerated style of freestore's
// fault-tolerance accounting. Tolerated = threshold-passing completions
// plus Recovered trials; Detected = fail-fast stops recovery could not
// (or was not allowed to) absorb; Untolerated = crashes, hangs and
// unacceptable completions. The availability column is the tolerated
// fraction with its Wilson 95% interval.
func Availability(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	r := &Report{
		ID:   "availability",
		Kind: KindTable,
		Title: fmt.Sprintf("Availability under single-bit faults on hardened benchmarks (%d trials):\ntolerated = acceptable completion or checkpoint-restore recovery;\ndetected = redundancy check stopped the run unrecovered; untolerated =\ncrash, hang or unacceptable output. Recovery replays up to %d rollbacks.",
			opt.Trials, availabilityRecoveries),
		Columns: []Column{
			{Name: "Algorithm"},
			{Name: "Recovery"},
			{Name: "Tolerated", Unit: "%"},
			{Name: "Detected", Unit: "%"},
			{Name: "Untolerated", Unit: "%"},
			{Name: "Availability", Unit: "%"},
			{Name: "Recovered", Unit: "count"},
			{Name: "Replay p50", Unit: "instructions"},
		},
		Trials: opt.Trials,
		Seed:   opt.Seed,
		Policy: opt.Policy.String(),
	}
	for _, a := range all.Apps() {
		e, err := buildHardenedEngine(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		for _, maxRec := range []int{0, availabilityRecoveries} {
			p := e.RunPoint(ctx, campaign.Point{
				Errors:        1,
				HiBit:         31,
				MaxTrials:     opt.Trials,
				Seed:          opt.Seed,
				Workers:       opt.Workers,
				MaxRecoveries: maxRec,
			}, opt.Observer)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			pcts := func(n int) float64 { return 100 * float64(n) / float64(p.Trials) }
			mode := "off"
			if maxRec > 0 {
				mode = fmt.Sprintf("×%d", maxRec)
			}
			r.Rows = append(r.Rows, []Cell{
				CellStr(a.Name()),
				CellStr(mode),
				CellNum(pct(pcts(p.Tolerated)), pcts(p.Tolerated)),
				CellNum(pct(p.DetectPct), p.DetectPct),
				CellNum(pct(pcts(p.Untolerated)), pcts(p.Untolerated)),
				CellCI(pct(p.AvailabilityPct), p.AvailabilityPct, p.AvailabilityLoPct, p.AvailabilityHiPct),
				CellInt(p.Recovered),
				CellNum(fmt.Sprintf("%d", p.RecoverLatencyP50), float64(p.RecoverLatencyP50)),
			})
		}
	}
	return r, nil
}
