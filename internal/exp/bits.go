package exp

import (
	"context"
	"fmt"

	"etap/internal/campaign"
)

// BitSensitivity is a DESIGN.md extension experiment: how much does it
// matter *where in the word* an upset lands? Flips are restricted to byte
// lanes of the 32-bit result. For data values the high lanes carry more
// numeric weight (larger fidelity dents), and for values that are secretly
// addresses or loop-bound material the high lanes are catastrophic —
// protected runs make the first effect visible in isolation, unprotected
// runs show the second. Blowfish and gsm are measured across the four
// byte lanes.
func BitSensitivity(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	const errs = 10
	r := &Report{
		ID:   "bits",
		Kind: KindTable,
		Title: fmt.Sprintf("Bit-lane sensitivity: %d errors restricted to one byte lane of the\nresult word (%d trials per point)",
			errs, opt.Trials),
		Columns: []Column{
			{Name: "Algorithm"},
			{Name: "Protection"},
			{Name: "Flipped lane"},
			{Name: "Fail %", Unit: "%"},
			{Name: "Mean fidelity"},
		},
		Trials: opt.Trials,
		Seed:   opt.Seed,
		Policy: opt.Policy.String(),
	}
	lanes := [][2]uint8{{0, 7}, {8, 15}, {16, 23}, {24, 31}}
	for _, name := range []string{"blowfish", "gsm"} {
		a, err := appByNameOrErr(name)
		if err != nil {
			return nil, err
		}
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		for _, protected := range []bool{true, false} {
			camp := b.On
			mode := "on"
			if !protected {
				camp = b.Off
				mode = "off"
			}
			for _, lane := range lanes {
				p := camp.RunPoint(ctx, campaign.Point{
					Errors:    errs,
					LoBit:     lane[0],
					HiBit:     lane[1],
					MaxTrials: opt.Trials,
					Seed:      opt.Seed,
					Workers:   opt.Workers,
				}, opt.Observer)
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				r.Rows = append(r.Rows, []Cell{
					CellStr(name),
					CellStr(mode),
					CellStr(fmt.Sprintf("bits %d-%d", lane[0], lane[1])),
					CellCI(pct(p.FailPct), p.FailPct, p.FailLoPct, p.FailHiPct),
					CellNum(num(p.MeanValue), p.MeanValue),
				})
			}
		}
	}
	return r, nil
}
