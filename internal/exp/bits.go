package exp

import (
	"fmt"

	"etap/internal/campaign"
	"etap/internal/textplot"
)

// BitSensitivity is a DESIGN.md extension experiment: how much does it
// matter *where in the word* an upset lands? Flips are restricted to byte
// lanes of the 32-bit result. For data values the high lanes carry more
// numeric weight (larger fidelity dents), and for values that are secretly
// addresses or loop-bound material the high lanes are catastrophic —
// protected runs make the first effect visible in isolation, unprotected
// runs show the second.

// BitsRow is one (application, protection, lane) measurement.
type BitsRow struct {
	App       string
	Protected bool
	LoBit     uint8
	HiBit     uint8
	FailPct   float64
	MeanValue float64
}

// BitsResult is the bit-lane sensitivity table.
type BitsResult struct {
	Rows   []BitsRow
	Errors int
	Trials int
}

// BitSensitivity measures blowfish and gsm across the four byte lanes.
func BitSensitivity(opt Options) (*BitsResult, error) {
	opt = opt.withDefaults()
	const errs = 10
	res := &BitsResult{Errors: errs, Trials: opt.Trials}
	lanes := [][2]uint8{{0, 7}, {8, 15}, {16, 23}, {24, 31}}
	for _, name := range []string{"blowfish", "gsm"} {
		a, err := appByNameOrErr(name)
		if err != nil {
			return nil, err
		}
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		for _, protected := range []bool{true, false} {
			camp := b.On
			if !protected {
				camp = b.Off
			}
			for _, lane := range lanes {
				p := camp.RunPoint(campaign.Point{
					Errors:    errs,
					LoBit:     lane[0],
					HiBit:     lane[1],
					MaxTrials: opt.Trials,
					Seed:      opt.Seed,
					Workers:   opt.Workers,
				}, nil)
				res.Rows = append(res.Rows, BitsRow{
					App:       name,
					Protected: protected,
					LoBit:     lane[0],
					HiBit:     lane[1],
					FailPct:   p.FailPct,
					MeanValue: p.MeanValue,
				})
			}
		}
	}
	return res, nil
}

// Render formats the table.
func (r *BitsResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		mode := "off"
		if row.Protected {
			mode = "on"
		}
		rows[i] = []string{
			row.App,
			mode,
			fmt.Sprintf("bits %d-%d", row.LoBit, row.HiBit),
			pct(row.FailPct),
			num(row.MeanValue),
		}
	}
	return fmt.Sprintf("Bit-lane sensitivity: %d errors restricted to one byte lane of the\nresult word (%d trials per point)\n\n", r.Errors, r.Trials) +
		textplot.Table([]string{"Algorithm", "Protection", "Flipped lane", "Fail %", "Mean fidelity"}, rows)
}
