// Package exp is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (Tables 1–3, Figures 1–6) plus the
// policy ablation described in DESIGN.md. Everything is deterministic
// given Options.Seed; trials run on the checkpointed, sharded campaign
// engine (internal/campaign), so results are reproducible for any worker
// count.
package exp

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"

	"etap/internal/apps"
	"etap/internal/campaign"
	"etap/internal/core"
	"etap/internal/isa"
	"etap/internal/minic"
	"etap/internal/sim"
)

// Options controls experiment scale and reproducibility.
type Options struct {
	// Trials per measurement point. Defaults to 40.
	Trials int
	// Policy for the protected configuration. The zero value,
	// PolicyControl, is the paper's literal Section 3 analysis; DESIGN.md
	// explains why the headline experiments use PolicyControlAddr (set by
	// DefaultOptions), which additionally protects address computations the
	// way the authors' companion work separates address operations.
	Policy core.Policy
	// Workers for the trial pool. Defaults to GOMAXPROCS.
	Workers int
	// Seed makes every injection schedule reproducible. Defaults to 1.
	Seed int64
	// Observer, when non-nil, receives every aggregated trial of every
	// campaign point an experiment runs, in deterministic order. It is
	// for progress display; it never changes results.
	Observer campaign.Observer
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 40
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DefaultOptions is the configuration used to regenerate EXPERIMENTS.md:
// the address-protecting policy and full trial counts.
func DefaultOptions() Options {
	return Options{Policy: core.PolicyControlAddr}.withDefaults()
}

// Built is one benchmark compiled, analyzed and ready for injection
// campaigns in both protection modes.
type Built struct {
	App    apps.App
	Prog   *isa.Program
	Report *core.Report
	// On injects only into analysis-tagged instructions (protection on);
	// Off injects into every arithmetic instruction (unchanged program on
	// unreliable hardware).
	On, Off *campaign.Engine
	Golden  []byte
}

// Build compiles and analyzes one benchmark and prepares both campaign
// engines (golden pass plus checkpoints each). It cross-checks the clean
// simulated output against the app's pure-Go reference so a toolchain
// regression cannot silently skew results.
func Build(app apps.App, pol core.Policy) (*Built, error) {
	prog, err := minic.Build(app.Source())
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", app.Name(), err)
	}
	rep, err := core.Analyze(prog, pol)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", app.Name(), err)
	}
	cfg := sim.Config{Input: app.Input()}
	score := apps.Scorer(app)
	on, err := campaign.New(prog, rep.Tagged, cfg, campaign.Config{})
	if err != nil {
		return nil, fmt.Errorf("exp: %s (protected): %w", app.Name(), err)
	}
	on.Score = score
	off, err := campaign.New(prog, core.EligibleAll(prog), cfg, campaign.Config{})
	if err != nil {
		return nil, fmt.Errorf("exp: %s (unprotected): %w", app.Name(), err)
	}
	off.Score = score
	if !bytes.Equal(on.Clean.Output, app.Reference()) {
		return nil, fmt.Errorf("exp: %s: simulated clean output differs from Go reference", app.Name())
	}
	return &Built{App: app, Prog: prog, Report: rep, On: on, Off: off, Golden: on.Clean.Output}, nil
}

// Point aggregates one (error count, protection mode) measurement.
type Point struct {
	Errors   int
	Trials   int
	Crashes  int
	Timeouts int
	// Detected counts trials stopped by a hardened program's redundancy
	// checks (always zero for the unhardened paper configurations).
	Detected  int
	Completed int
	// MeanValue is the mean fidelity value over completed runs (NaN when
	// every run failed).
	MeanValue float64
	// AcceptPct is the percentage of all trials that completed with
	// acceptable fidelity.
	AcceptPct float64
	// FailPct is the percentage of catastrophic failures (crash or
	// infinite run) over all trials, bounded by the Wilson 95% interval
	// [FailLoPct, FailHiPct].
	FailPct   float64
	FailLoPct float64
	FailHiPct float64
}

// RunPoint executes trials with n errors on campaign engine c. A
// cancelled context yields a partial point; callers that care check
// ctx.Err afterwards.
func (b *Built) RunPoint(ctx context.Context, c *campaign.Engine, n int, opt Options) Point {
	opt = opt.withDefaults()
	r := c.RunPoint(ctx, campaign.Point{
		Errors:    n,
		HiBit:     31,
		MaxTrials: opt.Trials,
		Seed:      opt.Seed,
		Workers:   opt.Workers,
	}, opt.Observer)
	return Point{
		Errors:    n,
		Trials:    r.Trials,
		Crashes:   r.Crashes,
		Timeouts:  r.Timeouts,
		Detected:  r.Detected,
		Completed: r.Completed,
		MeanValue: r.MeanValue,
		AcceptPct: r.AcceptPct,
		FailPct:   r.FailPct,
		FailLoPct: r.FailLoPct,
		FailHiPct: r.FailHiPct,
	}
}

// Sweep runs RunPoint for each error count, stopping early when ctx is
// cancelled.
func (b *Built) Sweep(ctx context.Context, c *campaign.Engine, errorCounts []int, opt Options) []Point {
	out := make([]Point, len(errorCounts))
	for i, n := range errorCounts {
		if ctx.Err() != nil {
			return out[:i]
		}
		out[i] = b.RunPoint(ctx, c, n, opt)
	}
	return out
}

// TaggedDynamicPct is Table 3's "% low reliability instructions": the
// dynamic fraction of the clean run spent in analysis-tagged instructions.
func (b *Built) TaggedDynamicPct() float64 { return 100 * b.On.EligibleFraction() }

func pct(f float64) string {
	if math.IsNaN(f) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", f)
}

func num(f float64) string {
	if math.IsNaN(f) {
		return "-"
	}
	return fmt.Sprintf("%.1f", f)
}
