package exp

import (
	"math"
	"strings"
	"testing"

	"etap/internal/apps/all"
	"etap/internal/core"
)

// fastOpt keeps harness tests quick.
var fastOpt = Options{Trials: 6, Policy: core.PolicyControlAddr, Seed: 3}

func TestBuildCrossChecksReference(t *testing.T) {
	a, _ := all.ByName("adpcm")
	b, err := Build(a, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if b.On.Clean.Instret == 0 || b.Off.Clean.Instret == 0 {
		t.Fatalf("clean runs missing")
	}
	if b.On.Clean.EligibleExec >= b.Off.Clean.EligibleExec {
		t.Fatalf("protected eligible stream (%d) should be smaller than unprotected (%d)",
			b.On.Clean.EligibleExec, b.Off.Clean.EligibleExec)
	}
	if len(b.Golden) == 0 {
		t.Fatalf("no golden output")
	}
}

func TestRunPointAggregates(t *testing.T) {
	a, _ := all.ByName("adpcm")
	b, err := Build(a, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	p := b.RunPoint(b.On, 3, fastOpt)
	if p.Trials != fastOpt.Trials {
		t.Fatalf("trials = %d", p.Trials)
	}
	if p.Completed+p.Crashes+p.Timeouts != p.Trials {
		t.Fatalf("outcome counts don't add up: %+v", p)
	}
	if p.FailPct < 0 || p.FailPct > 100 || p.AcceptPct < 0 || p.AcceptPct > 100 {
		t.Fatalf("percentages out of range: %+v", p)
	}
	if p.Completed > 0 && math.IsNaN(p.MeanValue) {
		t.Fatalf("mean value NaN with completions")
	}
}

func TestZeroErrorsIsPerfect(t *testing.T) {
	a, _ := all.ByName("gsm")
	b, err := Build(a, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	p := b.RunPoint(b.On, 0, fastOpt)
	if p.FailPct != 0 || p.AcceptPct != 100 {
		t.Fatalf("zero-error point: %+v", p)
	}
}

func TestRunPointDeterministic(t *testing.T) {
	a, _ := all.ByName("blowfish")
	b, err := Build(a, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	p1 := b.RunPoint(b.On, 5, fastOpt)
	p2 := b.RunPoint(b.On, 5, fastOpt)
	if p1 != p2 {
		t.Fatalf("points differ: %+v vs %+v", p1, p2)
	}
}

// TestProtectionReducesFailures is the paper's central claim, asserted
// statistically with fixed seeds on the unprotected-vs-protected pair.
func TestProtectionReducesFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"susan", "gsm"} {
		a, _ := all.ByName(name)
		b, err := Build(a, core.PolicyControlAddr)
		if err != nil {
			t.Fatal(err)
		}
		errs := 40
		on := b.RunPoint(b.On, errs, fastOpt)
		off := b.RunPoint(b.Off, errs, fastOpt)
		if on.FailPct > off.FailPct {
			t.Errorf("%s: protected failures %.0f%% exceed unprotected %.0f%%", name, on.FailPct, off.FailPct)
		}
		if on.FailPct > 20 {
			t.Errorf("%s: protected failure rate %.0f%% too high at %d errors", name, on.FailPct, errs)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 7 {
		t.Fatalf("table 1 has %d rows", len(r.Rows))
	}
	out := r.Render()
	for _, name := range all.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("table 1 missing %s", name)
		}
	}
}

func TestTable3Measures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := Table3(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("table 3 has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Instret == 0 {
			t.Errorf("%s: no instructions", row.App)
		}
		if row.LowRelPct <= 0 || row.LowRelPct > row.ArithPct {
			t.Errorf("%s: low-rel %.1f%% outside (0, arith %.1f%%]", row.App, row.LowRelPct, row.ArithPct)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Table 3") {
		t.Fatalf("render: %s", out)
	}
}

func TestFigureRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpt
	opt.Trials = 3
	f, err := Figure6(opt) // ART is the fastest sweep
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("figure 6 has %d series", len(f.Series))
	}
	out := f.Render()
	for _, want := range []string{"Figure 6", "errors inserted", "% images recognized", "errors"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if len(f.Points["% images recognized"]) != len(f.Errors) {
		t.Fatalf("points not recorded")
	}
}

func TestTable2ErrorCountsMatchPaper(t *testing.T) {
	// The experiment must use the paper's error pairs.
	want := map[string][]int{
		"susan":    {2200},
		"mpeg":     {20, 120},
		"mcf":      {1, 340},
		"blowfish": {2, 20},
		"gsm":      {10, 40},
		"art":      {4},
		"adpcm":    {3, 56},
	}
	for app, counts := range want {
		got := table2Errors[app]
		if len(got) != len(counts) {
			t.Fatalf("%s: error counts %v, want %v", app, got, counts)
		}
		for i := range counts {
			if got[i] != counts[i] {
				t.Fatalf("%s: error counts %v, want %v", app, got, counts)
			}
		}
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := appByNameOrErr("nosuch"); err == nil {
		t.Fatalf("unknown app accepted")
	}
}

func TestMaskingBins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpt
	opt.Trials = 10
	r, err := Masking(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		total := row.MaskedPct + row.ToleratedPct + row.DegradedPct + row.CatastrophicPct
		if total < 99.9 || total > 100.1 {
			t.Errorf("%s: bins sum to %.1f%%", row.App, total)
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Masked") || !strings.Contains(out, "Catastrophic") {
		t.Fatalf("render missing headers")
	}
}
