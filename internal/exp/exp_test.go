package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etap/internal/apps/all"
	"etap/internal/core"
)

// fastOpt keeps harness tests quick.
var fastOpt = Options{Trials: 6, Policy: core.PolicyControlAddr, Seed: 3}

// goldenOpt is the configuration internal/exp/testdata/*.golden were
// generated with (against the pre-Report renderers).
var goldenOpt = Options{Trials: 4, Policy: core.PolicyControlAddr, Seed: 3}

var ctx = context.Background()

func TestBuildCrossChecksReference(t *testing.T) {
	a, _ := all.ByName("adpcm")
	b, err := Build(a, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if b.On.Clean.Instret == 0 || b.Off.Clean.Instret == 0 {
		t.Fatalf("clean runs missing")
	}
	if b.On.Clean.EligibleExec >= b.Off.Clean.EligibleExec {
		t.Fatalf("protected eligible stream (%d) should be smaller than unprotected (%d)",
			b.On.Clean.EligibleExec, b.Off.Clean.EligibleExec)
	}
	if len(b.Golden) == 0 {
		t.Fatalf("no golden output")
	}
}

func TestRunPointAggregates(t *testing.T) {
	a, _ := all.ByName("adpcm")
	b, err := Build(a, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	p := b.RunPoint(ctx, b.On, 3, fastOpt)
	if p.Trials != fastOpt.Trials {
		t.Fatalf("trials = %d", p.Trials)
	}
	if p.Completed+p.Crashes+p.Timeouts != p.Trials {
		t.Fatalf("outcome counts don't add up: %+v", p)
	}
	if p.FailPct < 0 || p.FailPct > 100 || p.AcceptPct < 0 || p.AcceptPct > 100 {
		t.Fatalf("percentages out of range: %+v", p)
	}
	if p.FailLoPct > p.FailPct || p.FailPct > p.FailHiPct {
		t.Fatalf("Wilson interval [%.2f, %.2f] does not bracket %.2f", p.FailLoPct, p.FailHiPct, p.FailPct)
	}
	if p.Completed > 0 && math.IsNaN(p.MeanValue) {
		t.Fatalf("mean value NaN with completions")
	}
}

func TestZeroErrorsIsPerfect(t *testing.T) {
	a, _ := all.ByName("gsm")
	b, err := Build(a, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	p := b.RunPoint(ctx, b.On, 0, fastOpt)
	if p.FailPct != 0 || p.AcceptPct != 100 {
		t.Fatalf("zero-error point: %+v", p)
	}
}

func TestRunPointDeterministic(t *testing.T) {
	a, _ := all.ByName("blowfish")
	b, err := Build(a, core.PolicyControlAddr)
	if err != nil {
		t.Fatal(err)
	}
	p1 := b.RunPoint(ctx, b.On, 5, fastOpt)
	p2 := b.RunPoint(ctx, b.On, 5, fastOpt)
	if p1 != p2 {
		t.Fatalf("points differ: %+v vs %+v", p1, p2)
	}
}

// TestProtectionReducesFailures is the paper's central claim, asserted
// statistically with fixed seeds on the unprotected-vs-protected pair.
func TestProtectionReducesFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"susan", "gsm"} {
		a, _ := all.ByName(name)
		b, err := Build(a, core.PolicyControlAddr)
		if err != nil {
			t.Fatal(err)
		}
		errs := 40
		on := b.RunPoint(ctx, b.On, errs, fastOpt)
		off := b.RunPoint(ctx, b.Off, errs, fastOpt)
		if on.FailPct > off.FailPct {
			t.Errorf("%s: protected failures %.0f%% exceed unprotected %.0f%%", name, on.FailPct, off.FailPct)
		}
		if on.FailPct > 20 {
			t.Errorf("%s: protected failure rate %.0f%% too high at %d errors", name, on.FailPct, errs)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	r := Table1()
	if len(r.Rows) != 7 {
		t.Fatalf("table 1 has %d rows", len(r.Rows))
	}
	if r.Kind != KindTable || r.ID != "table1" {
		t.Fatalf("report identity: %s/%s", r.ID, r.Kind)
	}
	out := r.RenderText()
	for _, name := range all.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("table 1 missing %s", name)
		}
	}
}

func TestTable3Measures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := Table3(ctx, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("table 3 has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		app := row[0].Text
		if row[1].Num == nil || *row[1].Num == 0 {
			t.Errorf("%s: no instructions", app)
		}
		lowRel, arith := row[2].Num, row[4].Num
		if lowRel == nil || arith == nil || *lowRel <= 0 || *lowRel > *arith {
			t.Errorf("%s: low-rel outside (0, arith]: %+v", app, row)
		}
	}
	out := r.RenderText()
	if !strings.Contains(out, "Table 3") {
		t.Fatalf("render: %s", out)
	}
}

func TestFigureRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpt
	opt.Trials = 3
	f, err := Figure6(ctx, opt) // ART is the fastest sweep
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindFigure || f.App != "art" {
		t.Fatalf("figure identity: %+v", f)
	}
	if len(f.Series) != 2 {
		t.Fatalf("figure 6 has %d series", len(f.Series))
	}
	if len(f.Rows) != len(f.Series[0].X) || len(f.Columns) != 1+len(f.Series) {
		t.Fatalf("figure table misaligned: %d rows, %d columns", len(f.Rows), len(f.Columns))
	}
	out := f.RenderText()
	for _, want := range []string{"Figure 6", "errors inserted", "% images recognized", "errors"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ErrorCountsMatchPaper(t *testing.T) {
	// The experiment must use the paper's error pairs.
	want := map[string][]int{
		"susan":    {2200},
		"mpeg":     {20, 120},
		"mcf":      {1, 340},
		"blowfish": {2, 20},
		"gsm":      {10, 40},
		"art":      {4},
		"adpcm":    {3, 56},
	}
	for app, counts := range want {
		got := table2Errors[app]
		if len(got) != len(counts) {
			t.Fatalf("%s: error counts %v, want %v", app, got, counts)
		}
		for i := range counts {
			if got[i] != counts[i] {
				t.Fatalf("%s: error counts %v, want %v", app, got, counts)
			}
		}
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := appByNameOrErr("nosuch"); err == nil {
		t.Fatalf("unknown app accepted")
	}
}

func TestMaskingBins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpt
	opt.Trials = 10
	r, err := Masking(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		total := 0.0
		for _, c := range row[1:] {
			if c.Num == nil {
				t.Fatalf("%s: non-numeric bin cell %+v", row[0].Text, c)
			}
			total += *c.Num
		}
		if total < 99.9 || total > 100.1 {
			t.Errorf("%s: bins sum to %.1f%%", row[0].Text, total)
		}
	}
	out := r.RenderText()
	if !strings.Contains(out, "Masked") || !strings.Contains(out, "Catastrophic") {
		t.Fatalf("render missing headers")
	}
}

// TestAvailabilityExperiment checks the recovery experiment's accounting:
// rows partition into tolerated/detected/untolerated, the recovery-off
// row reports no recoveries, and enabling recovery never lowers the
// tolerated fraction at the same seed.
func TestAvailabilityExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpt
	opt.Trials = 16
	r, err := Availability(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "availability" || r.Kind != KindTable {
		t.Fatalf("report identity: %s/%s", r.ID, r.Kind)
	}
	if len(r.Rows) != 2*len(all.Names()) {
		t.Fatalf("availability has %d rows, want 2 per app", len(r.Rows))
	}
	anyRecovered := false
	for i, row := range r.Rows {
		app, mode := row[0].Text, row[1].Text
		tol, det, untol := *row[2].Num, *row[3].Num, *row[4].Num
		if s := tol + det + untol; s < 99.9 || s > 100.1 {
			t.Errorf("%s (%s): bins sum to %.2f%%", app, mode, s)
		}
		if avail := row[5]; avail.Num == nil || *avail.Num != tol || avail.Lo == nil {
			t.Errorf("%s (%s): availability cell inconsistent: %+v", app, mode, avail)
		}
		recovered := int(*row[6].Num)
		if mode == "off" {
			if recovered != 0 {
				t.Errorf("%s: recovery off but %d recovered", app, recovered)
			}
		} else {
			if recovered > 0 {
				anyRecovered = true
			}
			if offTol := *r.Rows[i-1][2].Num; tol < offTol {
				t.Errorf("%s: recovery lowered tolerated %.1f%% -> %.1f%%", app, offTol, tol)
			}
		}
	}
	if !anyRecovered {
		t.Error("no benchmark recovered a single trial")
	}
	out := r.RenderText()
	if !strings.Contains(out, "Untolerated") || !strings.Contains(out, "Availability") {
		t.Fatalf("render missing headers:\n%s", out)
	}
}

// TestRegistryComplete pins the canonical experiment set and its order.
func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "figure1", "figure2", "figure3",
		"figure4", "figure5", "figure6", "ablation", "potential", "bits", "masking",
		"availability"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v", got)
		}
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok || e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incompletely registered", id)
		}
	}
	if _, ok := ByID("nosuch"); ok {
		t.Fatalf("unknown experiment resolved")
	}
}

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRenderTextMatchesGolden is the redesign's compatibility contract:
// the structured reports must render, as text, byte-identically to the
// output of the pre-Report harness (captured in testdata at goldenOpt).
func TestRenderTextMatchesGolden(t *testing.T) {
	if got, want := Table1().RenderText(), golden(t, "table1.golden"); got != want {
		t.Errorf("table1 render diverged from pre-redesign output:\n got: %q\nwant: %q", got, want)
	}
	if testing.Short() {
		t.Skip("short mode: skipping campaign-backed goldens")
	}
	t3, err := Table3(ctx, goldenOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := t3.RenderText(), golden(t, "table3.golden"); got != want {
		t.Errorf("table3 render diverged from pre-redesign output:\n got: %q\nwant: %q", got, want)
	}
	f6, err := Figure6(ctx, goldenOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f6.RenderText(), golden(t, "figure6.golden"); got != want {
		t.Errorf("figure6 render diverged from pre-redesign output:\n got: %q\nwant: %q", got, want)
	}
}

// TestTable2RenderMatchesGolden runs the full Table 2 campaign at the
// golden options; it is the slowest golden and gets its own test so -run
// can select it.
func TestTable2RenderMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t2, err := Table2(ctx, goldenOpt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := t2.RenderText(), golden(t, "table2.golden"); got != want {
		t.Errorf("table2 render diverged from pre-redesign output:\n got: %q\nwant: %q", got, want)
	}
}

// TestReportJSONAndCSV checks the machine renderings: valid JSON with
// typed cells, and CSV blocks with CI companion columns.
func TestReportJSONAndCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := fastOpt
	opt.Trials = 3
	f, err := Figure6(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	reports := []*Report{Table1(), f}

	var jb bytes.Buffer
	if err := WriteJSON(&jb, reports); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON artifact: %v\n%s", err, jb.String())
	}
	if len(decoded) != 2 || decoded[0]["id"] != "table1" || decoded[1]["id"] != "figure6" {
		t.Fatalf("unexpected JSON shape: %s", jb.String())
	}
	if decoded[1]["series"] == nil {
		t.Fatalf("figure JSON missing series: %s", jb.String())
	}

	var cb bytes.Buffer
	if err := WriteCSV(&cb, reports); err != nil {
		t.Fatal(err)
	}
	out := cb.String()
	if !strings.Contains(out, "report,Application") || !strings.Contains(out, "table1,susan") {
		t.Fatalf("unexpected CSV: %s", out)
	}
}

// TestCancelledExperimentPropagates: a cancelled context aborts a
// campaign-backed experiment with the context's error.
func TestCancelledExperimentPropagates(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Table3(cctx, fastOpt); err == nil {
		t.Fatalf("cancelled table3 returned no error")
	}
	if _, err := BitSensitivity(cctx, fastOpt); err == nil {
		t.Fatalf("cancelled bits returned no error")
	}
}
