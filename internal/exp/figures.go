package exp

import (
	"fmt"

	"etap/internal/textplot"
)

// Figure is one reproduced figure: fidelity (and failure) series over an
// error-count sweep.
type Figure struct {
	ID     string
	Title  string
	App    string
	YLabel string
	// Errors is the x axis.
	Errors []int
	// Series are named y-value vectors aligned with Errors.
	Series []textplot.Series
	// Points preserves the raw measurements per series name.
	Points map[string][]Point
	// Threshold, when non-nil, draws the paper's fidelity threshold.
	Threshold *float64
}

func (f *Figure) xs() []float64 {
	xs := make([]float64, len(f.Errors))
	for i, e := range f.Errors {
		xs[i] = float64(e)
	}
	return xs
}

func (f *Figure) addSeries(name string, ys []float64, pts []Point) {
	f.Series = append(f.Series, textplot.Series{Name: name, X: f.xs(), Y: ys})
	if pts != nil {
		if f.Points == nil {
			f.Points = map[string][]Point{}
		}
		f.Points[name] = pts
	}
}

// Render draws the chart plus the numeric table behind it.
func (f *Figure) Render() string {
	series := f.Series
	if f.Threshold != nil {
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("fidelity threshold (%.0f)", *f.Threshold),
			X:    f.xs(),
			Y:    repeat(*f.Threshold, len(f.Errors)),
		})
	}
	out := textplot.Chart(fmt.Sprintf("%s: %s", f.ID, f.Title), "errors inserted", f.YLabel, 56, 14, series)
	headers := []string{"errors"}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, len(f.Errors))
	for i := range f.Errors {
		row := []string{fmt.Sprintf("%d", f.Errors[i])}
		for _, s := range f.Series {
			row = append(row, num(s.Y[i]))
		}
		rows[i] = row
	}
	return out + "\n" + textplot.Table(headers, rows)
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func values(pts []Point, f func(Point) float64) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = f(p)
	}
	return out
}

func meanValues(pts []Point) []float64 {
	return values(pts, func(p Point) float64 { return p.MeanValue })
}
func failValues(pts []Point) []float64 {
	return values(pts, func(p Point) float64 { return p.FailPct })
}
func acceptValues(pts []Point) []float64 {
	return values(pts, func(p Point) float64 { return p.AcceptPct })
}

// buildFor compiles one named benchmark for a figure.
func buildFor(name string, opt Options) (*Built, error) {
	a, err := appByNameOrErr(name)
	if err != nil {
		return nil, err
	}
	return Build(a, opt.Policy)
}

// Figure1 — Susan: PSNR of the edge map versus errors inserted, with the
// static analysis on and off, against the 10 dB threshold.
func Figure1(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	b, err := buildFor("susan", opt)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "Figure 1", Title: "Susan results", App: "susan",
		YLabel: "PSNR of pictures with error (dB)",
		Errors: []int{100, 500, 920, 1100, 1550, 2300},
	}
	thr := 10.0
	f.Threshold = &thr
	on := b.Sweep(b.On, f.Errors, opt)
	off := b.Sweep(b.Off, f.Errors, opt)
	f.addSeries("static analysis ON", meanValues(on), on)
	f.addSeries("static analysis OFF", meanValues(off), off)
	return f, nil
}

// Figure2 — MPEG: percentage of bad frames and failed executions versus
// errors, protection on.
func Figure2(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	b, err := buildFor("mpeg", opt)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "Figure 2", Title: "MPEG results", App: "mpeg",
		YLabel: "% of bad frames / % failed",
		Errors: []int{10, 50, 100, 150, 300, 500},
	}
	thr := 10.0
	f.Threshold = &thr
	on := b.Sweep(b.On, f.Errors, opt)
	f.addSeries("% bad frames (analysis ON)", meanValues(on), on)
	f.addSeries("% failed executions", failValues(on), nil)
	return f, nil
}

// Figure3 — MCF: percentage of optimal schedules found and failed runs.
func Figure3(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	b, err := buildFor("mcf", opt)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "Figure 3", Title: "MCF results", App: "mcf",
		YLabel: "% optimal schedules / % failed",
		Errors: []int{1, 20, 50, 100, 150, 200, 250, 300},
	}
	on := b.Sweep(b.On, f.Errors, opt)
	f.addSeries("% optimal schedules found", acceptValues(on), on)
	f.addSeries("% failed executions", failValues(on), nil)
	return f, nil
}

// Figure4 — Blowfish: percentage of bytes correct and failed executions.
func Figure4(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	b, err := buildFor("blowfish", opt)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "Figure 4", Title: "Blowfish results", App: "blowfish",
		YLabel: "% bytes correct / % failed",
		Errors: []int{5, 10, 15, 20, 25, 30, 35, 40},
	}
	on := b.Sweep(b.On, f.Errors, opt)
	f.addSeries("% bytes correct (fidelity)", meanValues(on), on)
	f.addSeries("% failed executions", failValues(on), nil)
	return f, nil
}

// Figure5 — GSM: SNR relative to the fault-free decode and failures.
func Figure5(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	b, err := buildFor("gsm", opt)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "Figure 5", Title: "GSM results", App: "gsm",
		YLabel: "% SNR from optimal / % failed",
		Errors: []int{5, 10, 15, 20, 25, 30, 35, 40},
	}
	on := b.Sweep(b.On, f.Errors, opt)
	f.addSeries("% SNR from optimal (fidelity)", meanValues(on), on)
	f.addSeries("% failed executions", failValues(on), nil)
	return f, nil
}

// Figure6 — ART: percentage of images recognized and failures.
func Figure6(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	b, err := buildFor("art", opt)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID: "Figure 6", Title: "ART results", App: "art",
		YLabel: "% images recognized / % failed",
		Errors: []int{1, 2, 3, 4},
	}
	on := b.Sweep(b.On, f.Errors, opt)
	f.addSeries("% images recognized", acceptValues(on), on)
	f.addSeries("% failed executions", failValues(on), nil)
	return f, nil
}

// Figures runs all six figures.
func Figures(opt Options) ([]*Figure, error) {
	builders := []func(Options) (*Figure, error){Figure1, Figure2, Figure3, Figure4, Figure5, Figure6}
	out := make([]*Figure, 0, len(builders))
	for _, fn := range builders {
		f, err := fn(opt)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
