package exp

import (
	"context"
)

// figure accumulates one figure report: an error-count sweep with named
// series, rendered as a chart plus the numeric table behind it.
type figure struct {
	rep    *Report
	errors []int
}

func newFigure(id, title, app, ylabel string, errors []int, opt Options) *figure {
	return &figure{
		rep: &Report{
			ID:      id,
			Kind:    KindFigure,
			Title:   title,
			App:     app,
			XLabel:  "errors inserted",
			YLabel:  ylabel,
			Columns: []Column{{Name: "errors", Unit: "count"}},
			Trials:  opt.Trials,
			Seed:    opt.Seed,
			Policy:  opt.Policy.String(),
		},
		errors: errors,
	}
}

func (f *figure) xs() []float64 {
	xs := make([]float64, len(f.errors))
	for i, e := range f.errors {
		xs[i] = float64(e)
	}
	return xs
}

func (f *figure) addSeries(name string, ys []float64) {
	f.rep.Series = append(f.rep.Series, Series{Name: name, X: f.xs(), Y: ys})
	f.rep.Columns = append(f.rep.Columns, Column{Name: name, Unit: f.rep.YLabel})
}

// report fills the numeric table from the accumulated series and returns
// the finished Report.
func (f *figure) report() *Report {
	f.rep.Rows = make([][]Cell, len(f.errors))
	for i, e := range f.errors {
		row := []Cell{CellInt(e)}
		for _, s := range f.rep.Series {
			row = append(row, CellNum(num(s.Y[i]), s.Y[i]))
		}
		f.rep.Rows[i] = row
	}
	return f.rep
}

func values(pts []Point, f func(Point) float64) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = f(p)
	}
	return out
}

func meanValues(pts []Point) []float64 {
	return values(pts, func(p Point) float64 { return p.MeanValue })
}
func failValues(pts []Point) []float64 {
	return values(pts, func(p Point) float64 { return p.FailPct })
}
func acceptValues(pts []Point) []float64 {
	return values(pts, func(p Point) float64 { return p.AcceptPct })
}

// buildFor compiles one named benchmark for a figure.
func buildFor(name string, opt Options) (*Built, error) {
	a, err := appByNameOrErr(name)
	if err != nil {
		return nil, err
	}
	return Build(a, opt.Policy)
}

// Figure1 — Susan: PSNR of the edge map versus errors inserted, with the
// static analysis on and off, against the 10 dB threshold.
func Figure1(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	b, err := buildFor("susan", opt)
	if err != nil {
		return nil, err
	}
	f := newFigure("figure1", "Figure 1: Susan results", "susan",
		"PSNR of pictures with error (dB)", []int{100, 500, 920, 1100, 1550, 2300}, opt)
	thr := 10.0
	f.rep.Threshold = &thr
	on := b.Sweep(ctx, b.On, f.errors, opt)
	off := b.Sweep(ctx, b.Off, f.errors, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.addSeries("static analysis ON", meanValues(on))
	f.addSeries("static analysis OFF", meanValues(off))
	return f.report(), nil
}

// Figure2 — MPEG: percentage of bad frames and failed executions versus
// errors, protection on.
func Figure2(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	b, err := buildFor("mpeg", opt)
	if err != nil {
		return nil, err
	}
	f := newFigure("figure2", "Figure 2: MPEG results", "mpeg",
		"% of bad frames / % failed", []int{10, 50, 100, 150, 300, 500}, opt)
	thr := 10.0
	f.rep.Threshold = &thr
	on := b.Sweep(ctx, b.On, f.errors, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.addSeries("% bad frames (analysis ON)", meanValues(on))
	f.addSeries("% failed executions", failValues(on))
	return f.report(), nil
}

// Figure3 — MCF: percentage of optimal schedules found and failed runs.
func Figure3(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	b, err := buildFor("mcf", opt)
	if err != nil {
		return nil, err
	}
	f := newFigure("figure3", "Figure 3: MCF results", "mcf",
		"% optimal schedules / % failed", []int{1, 20, 50, 100, 150, 200, 250, 300}, opt)
	on := b.Sweep(ctx, b.On, f.errors, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.addSeries("% optimal schedules found", acceptValues(on))
	f.addSeries("% failed executions", failValues(on))
	return f.report(), nil
}

// Figure4 — Blowfish: percentage of bytes correct and failed executions.
func Figure4(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	b, err := buildFor("blowfish", opt)
	if err != nil {
		return nil, err
	}
	f := newFigure("figure4", "Figure 4: Blowfish results", "blowfish",
		"% bytes correct / % failed", []int{5, 10, 15, 20, 25, 30, 35, 40}, opt)
	on := b.Sweep(ctx, b.On, f.errors, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.addSeries("% bytes correct (fidelity)", meanValues(on))
	f.addSeries("% failed executions", failValues(on))
	return f.report(), nil
}

// Figure5 — GSM: SNR relative to the fault-free decode and failures.
func Figure5(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	b, err := buildFor("gsm", opt)
	if err != nil {
		return nil, err
	}
	f := newFigure("figure5", "Figure 5: GSM results", "gsm",
		"% SNR from optimal / % failed", []int{5, 10, 15, 20, 25, 30, 35, 40}, opt)
	on := b.Sweep(ctx, b.On, f.errors, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.addSeries("% SNR from optimal (fidelity)", meanValues(on))
	f.addSeries("% failed executions", failValues(on))
	return f.report(), nil
}

// Figure6 — ART: percentage of images recognized and failures.
func Figure6(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	b, err := buildFor("art", opt)
	if err != nil {
		return nil, err
	}
	f := newFigure("figure6", "Figure 6: ART results", "art",
		"% images recognized / % failed", []int{1, 2, 3, 4}, opt)
	on := b.Sweep(ctx, b.On, f.errors, opt)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f.addSeries("% images recognized", acceptValues(on))
	f.addSeries("% failed executions", failValues(on))
	return f.report(), nil
}

// Figures runs all six figures.
func Figures(ctx context.Context, opt Options) ([]*Report, error) {
	builders := []func(context.Context, Options) (*Report, error){
		Figure1, Figure2, Figure3, Figure4, Figure5, Figure6,
	}
	out := make([]*Report, 0, len(builders))
	for _, fn := range builders {
		f, err := fn(ctx, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
