package exp

import (
	"bytes"
	"fmt"
	"sync"

	"etap/internal/apps/all"
	"etap/internal/sim"
	"etap/internal/textplot"
)

// Masking measures the paper's framing premise: the introduction positions
// error tolerance as the step beyond the architectural vulnerability
// factor ("the potential that a soft error is masked ... we take
// soft-error tolerance one step further"). With exactly one error injected
// into a protected (tagged-only) run, each trial lands in one of four
// bins:
//
//	masked      — output identical to the fault-free run (the AVF bin);
//	tolerated   — output differs but passes the fidelity threshold
//	              (the paper's contribution: errors an AVF analysis counts
//	              as failures that users never notice);
//	degraded    — output below the fidelity threshold;
//	catastrophic — crash or infinite run.

// MaskingRow is one application's single-error outcome distribution.
type MaskingRow struct {
	App             string
	MaskedPct       float64
	ToleratedPct    float64
	DegradedPct     float64
	CatastrophicPct float64
}

// MaskingResult is the single-error outcome table.
type MaskingResult struct {
	Rows   []MaskingRow
	Trials int
}

// Masking runs the single-error characterization for every benchmark.
func Masking(opt Options) (*MaskingResult, error) {
	opt = opt.withDefaults()
	res := &MaskingResult{Trials: opt.Trials}
	for _, a := range all.Apps() {
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		var mu sync.Mutex
		masked, tolerated, degraded, catastrophic := 0, 0, 0, 0
		var wg sync.WaitGroup
		sem := make(chan struct{}, opt.Workers)
		for trial := 0; trial < opt.Trials; trial++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(trial int) {
				defer wg.Done()
				defer func() { <-sem }()
				r := b.On.Run(1, opt.Seed+int64(trial)*6151)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case r.Outcome != sim.OK:
					catastrophic++
				case bytes.Equal(r.Output, b.Golden):
					masked++
				default:
					if b.App.Score(b.Golden, r.Output).Acceptable {
						tolerated++
					} else {
						degraded++
					}
				}
			}(trial)
		}
		wg.Wait()
		pcts := func(n int) float64 { return 100 * float64(n) / float64(opt.Trials) }
		res.Rows = append(res.Rows, MaskingRow{
			App:             a.Name(),
			MaskedPct:       pcts(masked),
			ToleratedPct:    pcts(tolerated),
			DegradedPct:     pcts(degraded),
			CatastrophicPct: pcts(catastrophic),
		})
	}
	return res, nil
}

// Render formats the table.
func (r *MaskingResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.App,
			pct(row.MaskedPct),
			pct(row.ToleratedPct),
			pct(row.DegradedPct),
			pct(row.CatastrophicPct),
		}
	}
	return fmt.Sprintf("Single-error outcome distribution under protection (%d trials):\nmasked = output identical (the AVF bin); tolerated = differs but passes\nthe fidelity threshold (the paper's added tolerance); degraded = below\nthreshold; catastrophic = crash/hang\n\n", r.Trials) +
		textplot.Table([]string{"Algorithm", "Masked", "Tolerated", "Degraded", "Catastrophic"}, rows)
}
