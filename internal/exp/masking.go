package exp

import (
	"context"
	"fmt"

	"etap/internal/apps/all"
	"etap/internal/campaign"
)

// Masking measures the paper's framing premise: the introduction positions
// error tolerance as the step beyond the architectural vulnerability
// factor ("the potential that a soft error is masked ... we take
// soft-error tolerance one step further"). With exactly one error injected
// into a protected (tagged-only) run, each trial lands in one of four
// bins:
//
//	masked      — output identical to the fault-free run (the AVF bin);
//	tolerated   — output differs but passes the fidelity threshold
//	              (the paper's contribution: errors an AVF analysis counts
//	              as failures that users never notice);
//	degraded    — output below the fidelity threshold;
//	catastrophic — crash or infinite run.
func Masking(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	r := &Report{
		ID:   "masking",
		Kind: KindTable,
		Title: fmt.Sprintf("Single-error outcome distribution under protection (%d trials):\nmasked = output identical (the AVF bin); tolerated = differs but passes\nthe fidelity threshold (the paper's added tolerance); degraded = below\nthreshold; catastrophic = crash/hang",
			opt.Trials),
		Columns: []Column{
			{Name: "Algorithm"},
			{Name: "Masked", Unit: "%"},
			{Name: "Tolerated", Unit: "%"},
			{Name: "Degraded", Unit: "%"},
			{Name: "Catastrophic", Unit: "%"},
		},
		Trials: opt.Trials,
		Seed:   opt.Seed,
		Policy: opt.Policy.String(),
	}
	for _, a := range all.Apps() {
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		// The engine's point aggregation already separates the four bins:
		// masked (bit-identical output), accepted ⊇ masked (passes the
		// threshold) and catastrophic (crash/hang).
		p := b.On.RunPoint(ctx, campaign.Point{
			Errors:    1,
			HiBit:     31,
			MaxTrials: opt.Trials,
			Seed:      opt.Seed,
			Workers:   opt.Workers,
		}, opt.Observer)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pcts := func(n int) float64 { return 100 * float64(n) / float64(p.Trials) }
		masked, tolerated := pcts(p.Masked), pcts(p.Accepted-p.Masked)
		degraded, catastrophic := pcts(p.Completed-p.Accepted), pcts(p.Crashes+p.Timeouts)
		r.Rows = append(r.Rows, []Cell{
			CellStr(a.Name()),
			CellNum(pct(masked), masked),
			CellNum(pct(tolerated), tolerated),
			CellNum(pct(degraded), degraded),
			CellNum(pct(catastrophic), catastrophic),
		})
	}
	return r, nil
}
