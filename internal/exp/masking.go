package exp

import (
	"fmt"

	"etap/internal/apps/all"
	"etap/internal/campaign"
	"etap/internal/textplot"
)

// Masking measures the paper's framing premise: the introduction positions
// error tolerance as the step beyond the architectural vulnerability
// factor ("the potential that a soft error is masked ... we take
// soft-error tolerance one step further"). With exactly one error injected
// into a protected (tagged-only) run, each trial lands in one of four
// bins:
//
//	masked      — output identical to the fault-free run (the AVF bin);
//	tolerated   — output differs but passes the fidelity threshold
//	              (the paper's contribution: errors an AVF analysis counts
//	              as failures that users never notice);
//	degraded    — output below the fidelity threshold;
//	catastrophic — crash or infinite run.

// MaskingRow is one application's single-error outcome distribution.
type MaskingRow struct {
	App             string
	MaskedPct       float64
	ToleratedPct    float64
	DegradedPct     float64
	CatastrophicPct float64
}

// MaskingResult is the single-error outcome table.
type MaskingResult struct {
	Rows   []MaskingRow
	Trials int
}

// Masking runs the single-error characterization for every benchmark.
func Masking(opt Options) (*MaskingResult, error) {
	opt = opt.withDefaults()
	res := &MaskingResult{Trials: opt.Trials}
	for _, a := range all.Apps() {
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		// The engine's point aggregation already separates the four bins:
		// masked (bit-identical output), accepted ⊇ masked (passes the
		// threshold) and catastrophic (crash/hang).
		p := b.On.RunPoint(campaign.Point{
			Errors:    1,
			HiBit:     31,
			MaxTrials: opt.Trials,
			Seed:      opt.Seed,
			Workers:   opt.Workers,
		}, nil)
		pcts := func(n int) float64 { return 100 * float64(n) / float64(p.Trials) }
		res.Rows = append(res.Rows, MaskingRow{
			App:             a.Name(),
			MaskedPct:       pcts(p.Masked),
			ToleratedPct:    pcts(p.Accepted - p.Masked),
			DegradedPct:     pcts(p.Completed - p.Accepted),
			CatastrophicPct: pcts(p.Crashes + p.Timeouts),
		})
	}
	return res, nil
}

// Render formats the table.
func (r *MaskingResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.App,
			pct(row.MaskedPct),
			pct(row.ToleratedPct),
			pct(row.DegradedPct),
			pct(row.CatastrophicPct),
		}
	}
	return fmt.Sprintf("Single-error outcome distribution under protection (%d trials):\nmasked = output identical (the AVF bin); tolerated = differs but passes\nthe fidelity threshold (the paper's added tolerance); degraded = below\nthreshold; catastrophic = crash/hang\n\n", r.Trials) +
		textplot.Table([]string{"Algorithm", "Masked", "Tolerated", "Degraded", "Catastrophic"}, rows)
}
