package exp

import (
	"context"
	"fmt"

	"etap/internal/apps/all"
	"etap/internal/core"
)

// Potential reproduces Section 5.3 of the paper ("Future Potential"): if
// a protected instruction costs r times an unprotected one (r = 2 for
// dual redundant execution with retry, r = 3 for TMR), the speedup of
// selective protection over protecting everything is
//
//	speedup(r) = (N·r) / (N_protected·r + N_tagged·1)
//
// where the counts are dynamic. The same figure reads as an
// energy-saving ratio under an energy-proportional cost model. The
// analysis runs over every benchmark, under both the paper's control-only
// slice and the address-protecting policy.
func Potential(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	r := &Report{
		ID:    "potential",
		Kind:  KindTable,
		Title: "Future potential (paper §5.3): speedup of protecting only control data\nover protecting everything, for dual-redundant (2x) and TMR (3x) hardware",
		Columns: []Column{
			{Name: "Algorithm"},
			{Name: "Policy"},
			{Name: "% low-rel (dynamic)", Unit: "%"},
			{Name: "Speedup (DMR)", Unit: "x"},
			{Name: "Speedup (TMR)", Unit: "x"},
		},
	}
	for _, a := range all.Apps() {
		for _, pol := range []core.Policy{core.PolicyControl, core.PolicyControlAddr} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b, err := Build(a, pol)
			if err != nil {
				return nil, err
			}
			frac := b.On.EligibleFraction() // tagged share of the dynamic stream
			speedup := func(r float64) float64 {
				return r / ((1-frac)*r + frac)
			}
			r.Rows = append(r.Rows, []Cell{
				CellStr(a.Name()),
				CellStr(pol.String()),
				CellNum(pct(100*frac), 100*frac),
				CellNum(fmt.Sprintf("%.2fx", speedup(2)), speedup(2)),
				CellNum(fmt.Sprintf("%.2fx", speedup(3)), speedup(3)),
			})
		}
	}
	return r, nil
}
