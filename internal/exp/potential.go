package exp

import (
	"fmt"

	"etap/internal/apps/all"
	"etap/internal/core"
	"etap/internal/textplot"
)

// Section 5.3 of the paper ("Future Potential") argues that error
// tolerance should buy cheaper or faster reliability: protect the control
// instructions with a known redundancy scheme and run the low-reliability
// instructions on unprotected hardware. Potential quantifies that: if a
// protected instruction costs r times an unprotected one (r = 2 for dual
// redundant execution with retry, r = 3 for TMR), the speedup of
// selective protection over protecting everything is
//
//	speedup(r) = (N·r) / (N_protected·r + N_tagged·1)
//
// where the counts are dynamic. The same figure reads as an
// energy-saving ratio under an energy-proportional cost model.

// PotentialRow is one application's selective-protection payoff under one
// policy.
type PotentialRow struct {
	App       string
	Policy    core.Policy
	LowRelPct float64
	// SpeedupDMR/SpeedupTMR are the selective-protection speedups for
	// redundancy factors 2 and 3.
	SpeedupDMR float64
	SpeedupTMR float64
}

// PotentialResult reproduces the §5.3 analysis over every benchmark, under
// both the paper's control-only slice and the address-protecting policy.
type PotentialResult struct {
	Rows []PotentialRow
}

// Potential computes the selective-protection payoff per application.
func Potential(opt Options) (*PotentialResult, error) {
	opt = opt.withDefaults()
	res := &PotentialResult{}
	for _, a := range all.Apps() {
		for _, pol := range []core.Policy{core.PolicyControl, core.PolicyControlAddr} {
			b, err := Build(a, pol)
			if err != nil {
				return nil, err
			}
			frac := b.On.EligibleFraction() // tagged share of the dynamic stream
			speedup := func(r float64) float64 {
				return r / ((1-frac)*r + frac)
			}
			res.Rows = append(res.Rows, PotentialRow{
				App:        a.Name(),
				Policy:     pol,
				LowRelPct:  100 * frac,
				SpeedupDMR: speedup(2),
				SpeedupTMR: speedup(3),
			})
		}
	}
	return res, nil
}

// Render formats the table.
func (r *PotentialResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.App,
			row.Policy.String(),
			pct(row.LowRelPct),
			fmt.Sprintf("%.2fx", row.SpeedupDMR),
			fmt.Sprintf("%.2fx", row.SpeedupTMR),
		}
	}
	return "Future potential (paper §5.3): speedup of protecting only control data\nover protecting everything, for dual-redundant (2x) and TMR (3x) hardware\n\n" +
		textplot.Table([]string{"Algorithm", "Policy", "% low-rel (dynamic)", "Speedup (DMR)", "Speedup (TMR)"}, rows)
}
