package exp

import (
	"context"
	"fmt"
	"strings"
)

// Experiment is one runnable, registered experiment: a stable ID, a
// human title, and a Run function producing a structured Report.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, opt Options) (*Report, error)
}

// Experiments lists every registered experiment in canonical order
// (tables, figures, then the DESIGN.md extensions).
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Applications and fidelity measures",
			Run: func(ctx context.Context, opt Options) (*Report, error) { return Table1(), nil }},
		{ID: "table2", Title: "Catastrophic failures with and without protecting control data", Run: Table2},
		{ID: "table3", Title: "Dynamic low-reliability instruction fractions", Run: Table3},
		{ID: "figure1", Title: "Susan: edge-map PSNR versus errors inserted", Run: Figure1},
		{ID: "figure2", Title: "MPEG: bad frames and failures versus errors", Run: Figure2},
		{ID: "figure3", Title: "MCF: optimal schedules and failures versus errors", Run: Figure3},
		{ID: "figure4", Title: "Blowfish: bytes correct and failures versus errors", Run: Figure4},
		{ID: "figure5", Title: "GSM: SNR and failures versus errors", Run: Figure5},
		{ID: "figure6", Title: "ART: images recognized and failures versus errors", Run: Figure6},
		{ID: "ablation", Title: "Coverage/failure trade-off of the analysis policies", Run: PolicyAblation},
		{ID: "potential", Title: "Selective-protection speedup (paper §5.3)", Run: Potential},
		{ID: "bits", Title: "Bit-lane sensitivity of injected upsets", Run: BitSensitivity},
		{ID: "masking", Title: "Single-error outcome distribution (AVF and beyond)", Run: Masking},
		{ID: "availability", Title: "Availability with checkpoint-restore recovery (tolerated/detected/untolerated)", Run: Availability},
	}
}

// ByID resolves one registered experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the registered experiment IDs in canonical order.
func IDs() []string {
	es := Experiments()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

// UnknownExperimentError names an ID ByID cannot resolve, listing the
// valid ones.
func UnknownExperimentError(id string) error {
	return fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}
