package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"etap/internal/textplot"
)

// Kind distinguishes tabular reports from figure (series) reports. Every
// report carries a table (Columns × Rows); a figure report additionally
// carries the plotted series and renders an ASCII chart above the table.
type Kind string

const (
	KindTable  Kind = "table"
	KindFigure Kind = "figure"
)

// Column names one report column. Unit is a machine-readable hint for
// consumers of the JSON/CSV renderings ("%", "count", "instructions",
// "x"); the text renderer ignores it.
type Column struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
}

// Cell is one table cell: the exact string the text renderer prints,
// the typed value behind it (nil for purely textual cells), and — for
// rate cells backed by a campaign point — the Wilson 95% confidence
// bounds.
type Cell struct {
	Text string   `json:"text"`
	Num  *float64 `json:"num,omitempty"`
	Lo   *float64 `json:"lo,omitempty"`
	Hi   *float64 `json:"hi,omitempty"`
}

// CellStr, CellInt, CellNum and CellCI construct cells under the
// renderers' conventions; report builders outside the package (the HTTP
// service's sweep reports) share them so the formatting contract has
// one implementation.
func CellStr(s string) Cell { return Cell{Text: s} }

func CellInt(n int) Cell {
	v := float64(n)
	return Cell{Text: strconv.Itoa(n), Num: &v}
}

// cellNum pairs a pre-formatted text with its numeric value; NaN leaves
// the cell textual so JSON consumers see null, not a broken number.
func CellNum(text string, v float64) Cell {
	c := Cell{Text: text}
	if !math.IsNaN(v) {
		c.Num = &v
	}
	return c
}

// cellCI is cellNum plus Wilson interval bounds.
func CellCI(text string, v, lo, hi float64) Cell {
	c := CellNum(text, v)
	if c.Num != nil {
		c.Lo, c.Hi = &lo, &hi
	}
	return c
}

// Series is one named curve of a figure report, aligned point-for-point
// with the report's rows.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// MarshalJSON emits NaN y-values (no completed trials at that point) as
// null, which encoding/json cannot do for plain float64 slices.
func (s Series) MarshalJSON() ([]byte, error) {
	ys := make([]*float64, len(s.Y))
	for i, y := range s.Y {
		if !math.IsNaN(y) {
			v := y
			ys[i] = &v
		}
	}
	return json.Marshal(struct {
		Name string     `json:"name"`
		X    []float64  `json:"x"`
		Y    []*float64 `json:"y"`
	}{s.Name, s.X, ys})
}

// Report is the structured result of one experiment: named columns, typed
// rows, optional figure series, and the options metadata needed to
// reproduce it. Renderers are separate — RenderText reproduces the
// classic terminal tables and charts byte-for-byte, WriteJSON and
// WriteCSV serve machine consumers.
type Report struct {
	// ID is the experiment identifier ("table2", "figure1", ...).
	ID string `json:"id"`
	// Title is the human heading: for tables the full preamble printed
	// above the table, for figures the chart title.
	Title string `json:"title"`
	Kind  Kind   `json:"kind"`
	// App names the single benchmark a figure sweeps; empty for
	// multi-benchmark tables.
	App    string `json:"app,omitempty"`
	XLabel string `json:"x_label,omitempty"`
	YLabel string `json:"y_label,omitempty"`

	Columns []Column `json:"columns"`
	Rows    [][]Cell `json:"rows"`

	Series []Series `json:"series,omitempty"`
	// Threshold is the paper's fidelity threshold line, when the figure
	// draws one.
	Threshold *float64 `json:"threshold,omitempty"`

	// Trials/Seed/Policy echo the options the experiment ran under.
	// Trials is 0 for static experiments that run no campaigns.
	Trials int    `json:"trials,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// RenderText renders the report the way the pre-Report harness did:
// tables as a preamble plus an aligned text table, figures as an ASCII
// chart over the numeric table behind it.
func (r *Report) RenderText() string {
	if r.Kind == KindFigure {
		series := make([]textplot.Series, 0, len(r.Series)+1)
		for _, s := range r.Series {
			series = append(series, textplot.Series{Name: s.Name, X: s.X, Y: s.Y})
		}
		if r.Threshold != nil && len(r.Series) > 0 {
			xs := r.Series[0].X
			ys := make([]float64, len(xs))
			for i := range ys {
				ys[i] = *r.Threshold
			}
			series = append(series, textplot.Series{
				Name: fmt.Sprintf("fidelity threshold (%.0f)", *r.Threshold),
				X:    xs,
				Y:    ys,
			})
		}
		return textplot.Chart(r.Title, r.XLabel, r.YLabel, 56, 14, series) + "\n" + r.renderTable()
	}
	return r.Title + "\n\n" + r.renderTable()
}

func (r *Report) renderTable() string {
	headers := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		headers[i] = c.Name
	}
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells := make([]string, len(row))
		for j, c := range row {
			cells[j] = c.Text
		}
		rows[i] = cells
	}
	return textplot.Table(headers, rows)
}

// WriteJSON renders reports as one indented JSON array.
func WriteJSON(w io.Writer, reports []*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// WriteCSV renders reports as CSV, one block per report separated by a
// blank line. Each block leads with a header row whose first column is
// "report" (the report ID repeats on every data row, so blocks stay
// self-describing when split apart). Columns carrying confidence bounds
// get companion "<name> (lo)"/"<name> (hi)" columns; numeric cells are
// written at full precision, textual cells verbatim.
func WriteCSV(w io.Writer, reports []*Report) error {
	for i, r := range reports {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := r.writeCSVBlock(w); err != nil {
			return fmt.Errorf("exp: csv export of %s: %w", r.ID, err)
		}
	}
	return nil
}

func (r *Report) writeCSVBlock(w io.Writer) error {
	hasCI := make([]bool, len(r.Columns))
	for _, row := range r.Rows {
		for j, c := range row {
			if j < len(hasCI) && c.Lo != nil {
				hasCI[j] = true
			}
		}
	}
	header := []string{"report"}
	for j, c := range r.Columns {
		header = append(header, c.Name)
		if hasCI[j] {
			header = append(header, c.Name+" (lo)", c.Name+" (hi)")
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	num := func(p *float64) string {
		if p == nil {
			return ""
		}
		return strconv.FormatFloat(*p, 'g', -1, 64)
	}
	for _, row := range r.Rows {
		rec := []string{r.ID}
		for j, c := range row {
			if c.Num != nil {
				rec = append(rec, num(c.Num))
			} else {
				rec = append(rec, c.Text)
			}
			if j < len(hasCI) && hasCI[j] {
				rec = append(rec, num(c.Lo), num(c.Hi))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
