package exp

import (
	"fmt"
	"strings"

	"etap/internal/apps"
	"etap/internal/apps/all"
	"etap/internal/core"
	"etap/internal/textplot"
)

// Table1Result reproduces Table 1: applications and fidelity measures.
type Table1Result struct {
	Rows [][3]string
}

// Table1 lists the registered benchmarks.
func Table1() *Table1Result {
	r := &Table1Result{}
	for _, a := range all.Apps() {
		r.Rows = append(r.Rows, [3]string{a.Name(), a.Title(), a.FidelityName()})
	}
	return r
}

// Render formats the table.
func (r *Table1Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = row[:]
	}
	return "Table 1: applications and fidelity measures\n\n" +
		textplot.Table([]string{"Application", "Description", "Fidelity measure"}, rows)
}

// table2Errors mirrors the paper's per-application error counts: the
// lowest rate at which the unprotected application failed everywhere, and
// a higher rate.
var table2Errors = map[string][]int{
	"susan":    {2200},
	"mpeg":     {20, 120},
	"mcf":      {1, 340},
	"blowfish": {2, 20},
	"gsm":      {10, 40},
	"art":      {4},
	"adpcm":    {3, 56},
}

// Table2Row is one (application, error count) measurement.
type Table2Row struct {
	App        string
	Errors     int
	TotalInstr uint64
	// Failure percentages (crash or infinite run) with and without
	// control-data protection.
	FailOnPct  float64
	FailOffPct float64
	CrashOn    int
	TimeoutOn  int
	CrashOff   int
	TimeoutOff int
}

// Table2Result reproduces Table 2: catastrophic failures with and without
// protecting control data.
type Table2Result struct {
	Rows   []Table2Row
	Trials int
}

// Table2 runs the failure-rate experiment for every benchmark.
func Table2(opt Options) (*Table2Result, error) {
	opt = opt.withDefaults()
	res := &Table2Result{Trials: opt.Trials}
	for _, a := range all.Apps() {
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		for _, n := range table2Errors[a.Name()] {
			on := b.RunPoint(b.On, n, opt)
			off := b.RunPoint(b.Off, n, opt)
			res.Rows = append(res.Rows, Table2Row{
				App:        a.Name(),
				Errors:     n,
				TotalInstr: b.On.Clean.Instret,
				FailOnPct:  on.FailPct,
				FailOffPct: off.FailPct,
				CrashOn:    on.Crashes,
				TimeoutOn:  on.Timeouts,
				CrashOff:   off.Crashes,
				TimeoutOff: off.Timeouts,
			})
		}
	}
	return res, nil
}

// Render formats the table.
func (r *Table2Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.App,
			fmt.Sprintf("%d", row.Errors),
			fmt.Sprintf("%dM", row.TotalInstr/1_000_000),
			pct(row.FailOnPct),
			pct(row.FailOffPct),
		}
	}
	return fmt.Sprintf("Table 2: %% catastrophic failures (crash or infinite run) with and without\nprotecting control data (%d trials per point)\n\n",
		r.Trials) +
		textplot.Table([]string{"Algorithm", "Errors", "Instructions", "Fail (protected)", "Fail (unprotected)"}, rows)
}

// Table3Row is one application's instruction profile.
type Table3Row struct {
	App string
	// Instret is the dynamic instruction count of the clean run.
	Instret uint64
	// LowRelPct is the dynamic percentage of instructions the analysis
	// tagged low-reliability.
	LowRelPct float64
	// StaticTaggedPct is the static tag percentage over the text segment.
	StaticTaggedPct float64
	// ArithPct is the dynamic percentage of arithmetic instructions (the
	// upper bound any tagging could reach).
	ArithPct float64
}

// Table3Result reproduces Table 3: dynamic low-reliability instruction
// fractions under the analysis.
type Table3Result struct {
	Policy core.Policy
	Rows   []Table3Row
}

// Table3 measures tagging on clean runs (no injection involved).
func Table3(opt Options) (*Table3Result, error) {
	opt = opt.withDefaults()
	res := &Table3Result{Policy: opt.Policy}
	for _, a := range all.Apps() {
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		st := b.Report.Stats()
		arith := b.On.Clean.ClassCounts[1] // isa.ClassArith
		res.Rows = append(res.Rows, Table3Row{
			App:             a.Name(),
			Instret:         b.On.Clean.Instret,
			LowRelPct:       b.TaggedDynamicPct(),
			StaticTaggedPct: 100 * float64(st.TaggedStatic) / float64(st.TextInstrs),
			ArithPct:        100 * float64(arith) / float64(b.On.Clean.Instret),
		})
	}
	return res, nil
}

// Render formats the table.
func (r *Table3Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.App,
			fmt.Sprintf("%.1fM", float64(row.Instret)/1e6),
			pct(row.LowRelPct),
			pct(row.StaticTaggedPct),
			pct(row.ArithPct),
		}
	}
	return fmt.Sprintf("Table 3: dynamic instructions identified as not leading to control\n(policy: %s) — these could run in a low-reliability environment\n\n", r.Policy) +
		textplot.Table([]string{"Algorithm", "Instructions", "% low-rel (dynamic)", "% tagged (static)", "% arith (dynamic)"}, rows)
}

// AblationRow is one (application, policy) measurement.
type AblationRow struct {
	App       string
	Policy    core.Policy
	LowRelPct float64
	FailPct   float64
	Errors    int
}

// AblationResult compares the three protection policies: how much of the
// program each leaves unprotected and what failure rate results.
type AblationResult struct {
	Rows   []AblationRow
	Trials int
}

// PolicyAblation measures susan, blowfish and mcf under all three
// policies at a fixed error count.
func PolicyAblation(opt Options) (*AblationResult, error) {
	opt = opt.withDefaults()
	res := &AblationResult{Trials: opt.Trials}
	errorsFor := map[string]int{"susan": 200, "blowfish": 20, "mcf": 40}
	for _, name := range []string{"susan", "blowfish", "mcf"} {
		a, ok := all.ByName(name)
		if !ok {
			return nil, fmt.Errorf("exp: unknown app %q", name)
		}
		for _, pol := range []core.Policy{core.PolicyControl, core.PolicyControlAddr, core.PolicyConservative} {
			b, err := Build(a, pol)
			if err != nil {
				return nil, err
			}
			p := b.RunPoint(b.On, errorsFor[name], opt)
			res.Rows = append(res.Rows, AblationRow{
				App:       name,
				Policy:    pol,
				LowRelPct: b.TaggedDynamicPct(),
				FailPct:   p.FailPct,
				Errors:    errorsFor[name],
			})
		}
	}
	return res, nil
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.App,
			row.Policy.String(),
			fmt.Sprintf("%d", row.Errors),
			pct(row.LowRelPct),
			pct(row.FailPct),
		}
	}
	return fmt.Sprintf("Policy ablation: coverage/failure trade-off of the analysis policies\n(%d trials per point, protection on)\n\n", r.Trials) +
		textplot.Table([]string{"Algorithm", "Policy", "Errors", "% low-rel (dynamic)", "Fail %"}, rows)
}

// appByNameOrErr fetches a registered app.
func appByNameOrErr(name string) (apps.App, error) {
	a, ok := all.ByName(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown app %q (have %s)", name, strings.Join(all.Names(), ", "))
	}
	return a, nil
}
