package exp

import (
	"context"
	"fmt"
	"strings"

	"etap/internal/apps"
	"etap/internal/apps/all"
	"etap/internal/core"
)

// Table1 reproduces Table 1: applications and fidelity measures. It is
// static — no campaigns run.
func Table1() *Report {
	r := &Report{
		ID:    "table1",
		Kind:  KindTable,
		Title: "Table 1: applications and fidelity measures",
		Columns: []Column{
			{Name: "Application"},
			{Name: "Description"},
			{Name: "Fidelity measure"},
		},
	}
	for _, a := range all.Apps() {
		r.Rows = append(r.Rows, []Cell{CellStr(a.Name()), CellStr(a.Title()), CellStr(a.FidelityName())})
	}
	return r
}

// table2Errors mirrors the paper's per-application error counts: the
// lowest rate at which the unprotected application failed everywhere, and
// a higher rate.
var table2Errors = map[string][]int{
	"susan":    {2200},
	"mpeg":     {20, 120},
	"mcf":      {1, 340},
	"blowfish": {2, 20},
	"gsm":      {10, 40},
	"art":      {4},
	"adpcm":    {3, 56},
}

// Table2 runs the failure-rate experiment for every benchmark: the
// paper's Table 2, catastrophic failures with and without protecting
// control data. The failure-rate cells carry Wilson 95% bounds in the
// JSON/CSV renderings.
func Table2(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	r := &Report{
		ID:   "table2",
		Kind: KindTable,
		Title: fmt.Sprintf("Table 2: %% catastrophic failures (crash or infinite run) with and without\nprotecting control data (%d trials per point)",
			opt.Trials),
		Columns: []Column{
			{Name: "Algorithm"},
			{Name: "Errors", Unit: "count"},
			{Name: "Instructions", Unit: "count"},
			{Name: "Fail (protected)", Unit: "%"},
			{Name: "Fail (unprotected)", Unit: "%"},
		},
		Trials: opt.Trials,
		Seed:   opt.Seed,
		Policy: opt.Policy.String(),
	}
	for _, a := range all.Apps() {
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		for _, n := range table2Errors[a.Name()] {
			on := b.RunPoint(ctx, b.On, n, opt)
			off := b.RunPoint(ctx, b.Off, n, opt)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			instr := b.On.Clean.Instret
			r.Rows = append(r.Rows, []Cell{
				CellStr(a.Name()),
				CellInt(n),
				CellNum(fmt.Sprintf("%dM", instr/1_000_000), float64(instr)),
				CellCI(pct(on.FailPct), on.FailPct, on.FailLoPct, on.FailHiPct),
				CellCI(pct(off.FailPct), off.FailPct, off.FailLoPct, off.FailHiPct),
			})
		}
	}
	return r, nil
}

// Table3 reproduces Table 3 — dynamic low-reliability instruction
// fractions under the analysis — measured on clean runs (no injection
// involved).
func Table3(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	r := &Report{
		ID:   "table3",
		Kind: KindTable,
		Title: fmt.Sprintf("Table 3: dynamic instructions identified as not leading to control\n(policy: %s) — these could run in a low-reliability environment",
			opt.Policy),
		Columns: []Column{
			{Name: "Algorithm"},
			{Name: "Instructions", Unit: "count"},
			{Name: "% low-rel (dynamic)", Unit: "%"},
			{Name: "% tagged (static)", Unit: "%"},
			{Name: "% arith (dynamic)", Unit: "%"},
		},
		Seed:   opt.Seed,
		Policy: opt.Policy.String(),
	}
	for _, a := range all.Apps() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := Build(a, opt.Policy)
		if err != nil {
			return nil, err
		}
		st := b.Report.Stats()
		arith := b.On.Clean.ClassCounts[1] // isa.ClassArith
		instret := b.On.Clean.Instret
		lowRel := b.TaggedDynamicPct()
		static := 100 * float64(st.TaggedStatic) / float64(st.TextInstrs)
		arithPct := 100 * float64(arith) / float64(instret)
		r.Rows = append(r.Rows, []Cell{
			CellStr(a.Name()),
			CellNum(fmt.Sprintf("%.1fM", float64(instret)/1e6), float64(instret)),
			CellNum(pct(lowRel), lowRel),
			CellNum(pct(static), static),
			CellNum(pct(arithPct), arithPct),
		})
	}
	return r, nil
}

// PolicyAblation measures susan, blowfish and mcf under all three
// policies at a fixed error count: the coverage/failure trade-off of the
// analysis policies.
func PolicyAblation(ctx context.Context, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	r := &Report{
		ID:   "ablation",
		Kind: KindTable,
		Title: fmt.Sprintf("Policy ablation: coverage/failure trade-off of the analysis policies\n(%d trials per point, protection on)",
			opt.Trials),
		Columns: []Column{
			{Name: "Algorithm"},
			{Name: "Policy"},
			{Name: "Errors", Unit: "count"},
			{Name: "% low-rel (dynamic)", Unit: "%"},
			{Name: "Fail %", Unit: "%"},
		},
		Trials: opt.Trials,
		Seed:   opt.Seed,
	}
	errorsFor := map[string]int{"susan": 200, "blowfish": 20, "mcf": 40}
	for _, name := range []string{"susan", "blowfish", "mcf"} {
		a, ok := all.ByName(name)
		if !ok {
			return nil, fmt.Errorf("exp: unknown app %q", name)
		}
		for _, pol := range []core.Policy{core.PolicyControl, core.PolicyControlAddr, core.PolicyConservative} {
			b, err := Build(a, pol)
			if err != nil {
				return nil, err
			}
			p := b.RunPoint(ctx, b.On, errorsFor[name], opt)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lowRel := b.TaggedDynamicPct()
			r.Rows = append(r.Rows, []Cell{
				CellStr(name),
				CellStr(pol.String()),
				CellInt(errorsFor[name]),
				CellNum(pct(lowRel), lowRel),
				CellCI(pct(p.FailPct), p.FailPct, p.FailLoPct, p.FailHiPct),
			})
		}
	}
	return r, nil
}

// appByNameOrErr fetches a registered app.
func appByNameOrErr(name string) (apps.App, error) {
	a, ok := all.ByName(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown app %q (have %s)", name, strings.Join(all.Names(), ", "))
	}
	return a, nil
}
