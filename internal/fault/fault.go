// Package fault builds and runs fault-injection campaigns following the
// paper's methodology (§4): single bit flips, uniformly distributed over
// the dynamic instances of the eligible instructions of a run, flipping one
// uniformly chosen bit of the instruction's result. Everything is
// deterministic given a seed, which the experiment harness and the tests
// rely on.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"etap/internal/isa"
	"etap/internal/sim"
)

// NewPlan schedules n single-bit flips uniformly over a dynamic eligible
// stream of length streamLen, with bit positions uniform over the full
// word. Ordinals are distinct; if n exceeds streamLen, the plan saturates
// at streamLen flips. A streamLen of zero (or an eligibility mask that
// marks nothing) is an error: there is nothing to inject into, and a
// silently empty plan would let a campaign report a 0% failure rate that
// measured nothing.
func NewPlan(eligible []bool, streamLen uint64, n int, seed int64) (*sim.FaultPlan, error) {
	return NewPlanBits(eligible, streamLen, n, seed, 0, 31)
}

// NewPlanBits is NewPlan with bit positions restricted to [loBit, hiBit]
// (inclusive), for sensitivity studies of where in the word an upset
// lands.
func NewPlanBits(eligible []bool, streamLen uint64, n int, seed int64, loBit, hiBit uint8) (*sim.FaultPlan, error) {
	return NewPlanBitsRand(rand.New(rand.NewSource(seed)), eligible, streamLen, n, loBit, hiBit)
}

// NewPlanBitsRand is NewPlanBits drawing from a caller-owned RNG stream
// instead of a one-shot seed. The campaign engine generates every plan of
// a shard from that shard's stream, so trial schedules depend only on
// (seed, shard, position-in-shard) and results are reproducible for any
// worker count.
func NewPlanBitsRand(rng *rand.Rand, eligible []bool, streamLen uint64, n int, loBit, hiBit uint8) (*sim.FaultPlan, error) {
	if streamLen == 0 {
		return nil, fmt.Errorf("fault: eligible stream is empty; nothing to inject into")
	}
	if len(eligible) > 0 && !AnyEligible(eligible) {
		return nil, fmt.Errorf("fault: eligibility mask marks no instructions; nothing to inject into")
	}
	if n < 0 {
		n = 0 // a negative budget schedules nothing, like n == 0
	}
	if hiBit > 31 {
		hiBit = 31
	}
	if loBit > hiBit {
		loBit = hiBit
	}
	if uint64(n) > streamLen {
		n = int(streamLen)
	}
	chosen := make(map[uint64]bool, n)
	inj := make([]sim.Injection, 0, n)
	for len(inj) < n {
		at := uint64(rng.Int63n(int64(streamLen))) + 1
		if chosen[at] {
			continue
		}
		chosen[at] = true
		bit := loBit + uint8(rng.Intn(int(hiBit-loBit)+1))
		inj = append(inj, sim.Injection{At: at, Bit: bit})
	}
	sort.Slice(inj, func(i, j int) bool { return inj[i].At < inj[j].At })
	return &sim.FaultPlan{Eligible: eligible, Injections: inj}, nil
}

// AnyEligible reports whether the mask marks at least one instruction.
// The plan constructors and both campaign engines share it to reject
// empty eligibility masks.
func AnyEligible(mask []bool) bool {
	for _, b := range mask {
		if b {
			return true
		}
	}
	return false
}

// Campaign is a reusable fault-injection setup for one program, input and
// eligibility mask. Constructing it runs the program once cleanly to learn
// the dynamic eligible-stream length and set the timeout budget.
type Campaign struct {
	Prog     *isa.Program
	Eligible []bool
	// Clean is the fault-free reference run.
	Clean sim.Result
	// Budget is the instruction limit applied to faulty runs; exceeding it
	// classifies the run as an infinite execution.
	Budget uint64

	baseCfg sim.Config
}

// NewCampaign prepares a campaign. cfg.Plan and cfg.MaxInstr are managed by
// the campaign and must be unset.
func NewCampaign(p *isa.Program, eligible []bool, cfg sim.Config) (*Campaign, error) {
	if cfg.Plan != nil {
		return nil, fmt.Errorf("fault: cfg.Plan is managed by the campaign")
	}
	if len(eligible) != len(p.Text) {
		return nil, fmt.Errorf("fault: eligibility mask has %d entries for %d instructions", len(eligible), len(p.Text))
	}
	if !AnyEligible(eligible) {
		return nil, fmt.Errorf("fault: eligibility mask marks no instructions; nothing to inject into")
	}
	probe := cfg
	probe.Plan = &sim.FaultPlan{Eligible: eligible}
	clean := sim.Run(p, probe)
	if clean.Outcome != sim.OK {
		return nil, fmt.Errorf("fault: clean run did not complete: %s (trap: %s)", clean.Outcome, clean.Trap)
	}
	if clean.EligibleExec == 0 {
		return nil, fmt.Errorf("fault: no eligible instructions executed; nothing to inject into")
	}
	c := &Campaign{
		Prog:     p,
		Eligible: eligible,
		Clean:    clean,
		Budget:   clean.Instret*16 + 10_000_000,
		baseCfg:  cfg,
	}
	return c, nil
}

// Run executes one faulty trial with n errors, deterministic in seed.
func (c *Campaign) Run(n int, seed int64) sim.Result {
	return c.RunBits(n, seed, 0, 31)
}

// RunBits is Run with the flipped bit restricted to [loBit, hiBit].
func (c *Campaign) RunBits(n int, seed int64, loBit, hiBit uint8) sim.Result {
	plan, err := NewPlanBits(c.Eligible, c.Clean.EligibleExec, n, seed, loBit, hiBit)
	if err != nil {
		// NewCampaign rejects empty eligible streams, so a plan error here
		// means the campaign was built by hand around its constructor.
		panic(err)
	}
	cfg := c.baseCfg
	cfg.MaxInstr = c.Budget
	cfg.Plan = plan
	return sim.Run(c.Prog, cfg)
}

// EligibleFraction is the dynamic fraction of executed instructions that
// were eligible in the clean run — Table 3's "% low reliability
// instructions" when the mask is the analysis tag set.
func (c *Campaign) EligibleFraction() float64 {
	if c.Clean.Instret == 0 {
		return 0
	}
	return float64(c.Clean.EligibleExec) / float64(c.Clean.Instret)
}
