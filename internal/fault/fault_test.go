package fault

import (
	"testing"
	"testing/quick"

	"etap/internal/asm"
	"etap/internal/core"
	"etap/internal/sim"
)

const loopProgram = `
.text
.func __start
	li $t5, 0
	li $t6, 0
loop:
	add $t6, $t6, $t5
	mul $t7, $t5, $t5
	add $t6, $t6, $t7
	addi $t5, $t5, 1
	slti $at, $t5, 200
	bnez $at, loop
	move $a0, $t6
	li $v0, 1
	syscall
.endfunc
`

func campaign(t *testing.T) *Campaign {
	t.Helper()
	p, err := asm.Assemble(loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCampaign(p, core.EligibleAll(p), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCleanRunRecorded(t *testing.T) {
	c := campaign(t)
	if c.Clean.Outcome != sim.OK {
		t.Fatalf("clean outcome %s", c.Clean.Outcome)
	}
	if c.Clean.EligibleExec == 0 {
		t.Fatalf("no eligible instructions recorded")
	}
	if c.Budget <= c.Clean.Instret {
		t.Fatalf("budget %d not above clean instret %d", c.Budget, c.Clean.Instret)
	}
}

func TestPlanProperties(t *testing.T) {
	f := func(seedRaw int64, nRaw uint8) bool {
		streamLen := uint64(1000)
		n := int(nRaw%100) + 1
		plan, err := NewPlan(nil, streamLen, n, seedRaw)
		if err != nil || len(plan.Injections) != n {
			return false
		}
		seen := map[uint64]bool{}
		prev := uint64(0)
		for _, inj := range plan.Injections {
			if inj.At < 1 || inj.At > streamLen {
				return false // outside the dynamic stream
			}
			if inj.At < prev {
				return false // not sorted
			}
			if seen[inj.At] {
				return false // duplicate ordinal
			}
			seen[inj.At] = true
			prev = inj.At
			if inj.Bit > 31 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSaturatesAtStreamLength(t *testing.T) {
	plan, err := NewPlan(nil, 5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Injections) != 5 {
		t.Fatalf("plan has %d injections, want 5 (saturated)", len(plan.Injections))
	}
}

func TestPlanRejectsEmptyStream(t *testing.T) {
	if _, err := NewPlan(nil, 0, 5, 1); err == nil {
		t.Fatalf("NewPlan accepted a zero-length eligible stream")
	}
	if _, err := NewPlan(nil, 0, 0, 1); err == nil {
		t.Fatalf("NewPlan accepted a zero-length eligible stream with zero errors")
	}
	if _, err := NewPlanBits(make([]bool, 16), 100, 5, 1, 0, 31); err == nil {
		t.Fatalf("NewPlanBits accepted an all-false eligibility mask")
	}
	// A negative error budget schedules nothing, like n == 0 — callers
	// like Campaign.Run(-1, seed) get a clean run, not a panic.
	plan, err := NewPlan(nil, 100, -1, 1)
	if err != nil || len(plan.Injections) != 0 {
		t.Fatalf("NewPlan(-1 errors) = %d injections, err %v; want empty plan", len(plan.Injections), err)
	}
}

func TestPlanDeterministicBySeed(t *testing.T) {
	a, err := NewPlan(nil, 10000, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(nil, 10000, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Injections) != len(b.Injections) {
		t.Fatalf("lengths differ")
	}
	for i := range a.Injections {
		if a.Injections[i] != b.Injections[i] {
			t.Fatalf("injection %d differs: %v vs %v", i, a.Injections[i], b.Injections[i])
		}
	}
	c, err := NewPlan(nil, 10000, 20, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Injections {
		if a.Injections[i] != c.Injections[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical plans")
	}
}

func TestRunInjectsAllErrors(t *testing.T) {
	c := campaign(t)
	res := c.Run(10, 7)
	// The program has fixed control flow on protected... here everything
	// is eligible, so the run may crash; but if it completes, all ten
	// injections must have fired.
	if res.Outcome == sim.OK && res.Injected != 10 {
		t.Fatalf("completed with %d/10 injections", res.Injected)
	}
}

func TestRunDeterministic(t *testing.T) {
	c := campaign(t)
	a := c.Run(5, 99)
	b := c.Run(5, 99)
	if a.Outcome != b.Outcome || a.ExitCode != b.ExitCode || a.Instret != b.Instret {
		t.Fatalf("runs diverged: %v/%d vs %v/%d", a.Outcome, a.ExitCode, b.Outcome, b.ExitCode)
	}
}

func TestZeroErrorsMatchesClean(t *testing.T) {
	c := campaign(t)
	res := c.Run(0, 1)
	if res.Outcome != sim.OK || res.ExitCode != c.Clean.ExitCode {
		t.Fatalf("zero-error run differs from clean: %v exit %d vs %d",
			res.Outcome, res.ExitCode, c.Clean.ExitCode)
	}
}

func TestCampaignRejectsBrokenPrograms(t *testing.T) {
	crash := `
.text
.func __start
	li $t0, 0
	li $t1, 1
	div $t2, $t1, $t0
	li $v0, 1
	syscall
.endfunc
`
	p, err := asm.Assemble(crash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCampaign(p, core.EligibleAll(p), sim.Config{}); err == nil {
		t.Fatalf("campaign accepted a program that crashes cleanly")
	}
}

func TestCampaignRejectsNoEligible(t *testing.T) {
	p, err := asm.Assemble(loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCampaign(p, make([]bool, len(p.Text)), sim.Config{}); err == nil {
		t.Fatalf("campaign accepted an empty eligibility mask")
	}
}

func TestCampaignRejectsBadMask(t *testing.T) {
	p, err := asm.Assemble(loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCampaign(p, make([]bool, 2), sim.Config{}); err == nil {
		t.Fatalf("campaign accepted a short mask")
	}
}

func TestEligibleFraction(t *testing.T) {
	c := campaign(t)
	f := c.EligibleFraction()
	if f <= 0 || f > 1 {
		t.Fatalf("eligible fraction %f out of range", f)
	}
}

func TestPlanBitsRestrictsLane(t *testing.T) {
	for _, lane := range [][2]uint8{{0, 7}, {8, 15}, {24, 31}, {5, 5}} {
		plan, err := NewPlanBits(nil, 10000, 50, 9, lane[0], lane[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, inj := range plan.Injections {
			if inj.Bit < lane[0] || inj.Bit > lane[1] {
				t.Fatalf("lane %v: bit %d outside range", lane, inj.Bit)
			}
		}
	}
	// Degenerate bit lanes are clamped, not rejected.
	plan, err := NewPlanBits(nil, 100, 5, 1, 40, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range plan.Injections {
		if inj.Bit > 31 {
			t.Fatalf("bit %d > 31 after clamping", inj.Bit)
		}
	}
}

func TestRunBitsDeterministic(t *testing.T) {
	c := campaign(t)
	a := c.RunBits(5, 3, 0, 7)
	b := c.RunBits(5, 3, 0, 7)
	if a.Outcome != b.Outcome || a.ExitCode != b.ExitCode {
		t.Fatalf("RunBits not deterministic")
	}
}
