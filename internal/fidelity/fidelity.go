// Package fidelity implements the application fidelity measures of Table 1:
// PSNR between images (the ImageMagick comparison used for Susan and the
// per-frame MPEG quality test), signal-to-noise ratio between PCM sample
// streams (GSM), and byte-level similarity (Blowfish, ADPCM). It also holds
// the small image/PCM containers the harness uses to move data between the
// simulated applications and the Go-side metrics.
package fidelity

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PSNRCap is the value reported when two signals are identical (infinite
// PSNR); 99 dB mirrors ImageMagick's convention of printing a large finite
// number.
const PSNRCap = 99.0

// MSE returns the mean squared error between two byte signals. Signals of
// different lengths are compared over the shorter prefix, and each missing
// byte counts as a maximal (255) error, so truncated outputs score poorly
// instead of panicking.
func MSE(a, b []byte) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	miss := (len(a) - n) + (len(b) - n)
	sum += float64(miss) * 255 * 255
	total := n + miss
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// PSNR returns the peak signal-to-noise ratio in dB between two 8-bit
// signals, capped at PSNRCap for identical inputs.
func PSNR(a, b []byte) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return PSNRCap
	}
	v := 10 * math.Log10(255*255/mse)
	if v > PSNRCap {
		return PSNRCap
	}
	return v
}

// ByteMatch returns the fraction (0..1) of positions where a and b agree.
// Length mismatches count as disagreement, as in the paper's Blowfish and
// ADPCM measures ("percent of bytes that match").
func ByteMatch(a, b []byte) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	match := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			match++
		}
	}
	total := len(a)
	if len(b) > total {
		total = len(b)
	}
	if total == 0 {
		return 1
	}
	return float64(match) / float64(total)
}

// SNR16 returns the signal-to-noise ratio in dB of test against the
// reference 16-bit PCM stream: 10*log10(sum(ref^2)/sum((ref-test)^2)).
// Identical streams return PSNRCap. A silent reference returns 0.
// Length mismatches are penalised by treating missing samples as zeros.
func SNR16(ref, test []int16) float64 {
	n := len(ref)
	if len(test) > n {
		n = len(test)
	}
	var sig, noise float64
	at := func(s []int16, i int) float64 {
		if i < len(s) {
			return float64(s[i])
		}
		return 0
	}
	for i := 0; i < n; i++ {
		r := at(ref, i)
		d := r - at(test, i)
		sig += r * r
		noise += d * d
	}
	if sig == 0 {
		return 0
	}
	if noise == 0 {
		return PSNRCap
	}
	v := 10 * math.Log10(sig/noise)
	if v > PSNRCap {
		v = PSNRCap
	}
	return v
}

// PCMToBytes encodes 16-bit samples little-endian.
func PCMToBytes(samples []int16) []byte {
	out := make([]byte, 2*len(samples))
	for i, s := range samples {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(s))
	}
	return out
}

// BytesToPCM decodes little-endian 16-bit samples; a trailing odd byte is
// dropped (corrupted runs can emit odd lengths).
func BytesToPCM(b []byte) []int16 {
	n := len(b) / 2
	out := make([]int16, n)
	for i := 0; i < n; i++ {
		out[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return out
}

// Image is a simple 8-bit grayscale raster.
type Image struct {
	W, H int
	Pix  []byte // row-major, len W*H
}

// NewImage allocates a zeroed W×H image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel value; out-of-bounds coordinates clamp to the edge,
// which matches the border handling of the Susan kernels.
func (im *Image) At(x, y int) byte {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes a pixel; out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// ImagePSNR compares two rasters with PSNR; dimension mismatch is an error.
func ImagePSNR(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("fidelity: image size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	return PSNR(a.Pix, b.Pix), nil
}
