package fidelity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMSE(t *testing.T) {
	if got := MSE([]byte{0, 0}, []byte{0, 0}); got != 0 {
		t.Fatalf("identical MSE = %f", got)
	}
	if got := MSE([]byte{10}, []byte{13}); got != 9 {
		t.Fatalf("MSE = %f, want 9", got)
	}
	// Missing bytes count as maximal error.
	if got := MSE([]byte{5, 5}, []byte{5}); got != 255*255/2.0 {
		t.Fatalf("truncated MSE = %f, want %f", got, 255*255/2.0)
	}
	if got := MSE(nil, nil); got != 0 {
		t.Fatalf("empty MSE = %f", got)
	}
}

func TestPSNR(t *testing.T) {
	if got := PSNR([]byte{1, 2, 3}, []byte{1, 2, 3}); got != PSNRCap {
		t.Fatalf("identical PSNR = %f, want cap", got)
	}
	// Single gray level off by 1 everywhere: PSNR = 20*log10(255) ≈ 48.13.
	a := make([]byte, 100)
	b := make([]byte, 100)
	for i := range b {
		b[i] = 1
	}
	got := PSNR(a, b)
	if math.Abs(got-48.13) > 0.01 {
		t.Fatalf("PSNR = %f, want ~48.13", got)
	}
	// Maximal difference.
	for i := range b {
		a[i], b[i] = 0, 255
	}
	if got := PSNR(a, b); got != 0 {
		t.Fatalf("max-difference PSNR = %f, want 0", got)
	}
}

// TestPSNRSymmetry: PSNR(a,b) == PSNR(b,a).
func TestPSNRSymmetry(t *testing.T) {
	f := func(a, b []byte) bool {
		return PSNR(a, b) == PSNR(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPSNRRange: PSNR is always within [0, cap].
func TestPSNRRange(t *testing.T) {
	f := func(a, b []byte) bool {
		p := PSNR(a, b)
		return p >= 0 && p <= PSNRCap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestByteMatch(t *testing.T) {
	if got := ByteMatch([]byte("abcd"), []byte("abcd")); got != 1 {
		t.Fatalf("identical = %f", got)
	}
	if got := ByteMatch([]byte("abcd"), []byte("abXd")); got != 0.75 {
		t.Fatalf("3/4 = %f", got)
	}
	if got := ByteMatch([]byte("abcd"), []byte("ab")); got != 0.5 {
		t.Fatalf("truncated = %f", got)
	}
	if got := ByteMatch([]byte("ab"), []byte("abcd")); got != 0.5 {
		t.Fatalf("extended = %f", got)
	}
	if got := ByteMatch(nil, nil); got != 1 {
		t.Fatalf("empty = %f", got)
	}
}

// TestByteMatchBounds: result always within [0, 1], and 1 only for equal
// slices.
func TestByteMatchBounds(t *testing.T) {
	f := func(a, b []byte) bool {
		m := ByteMatch(a, b)
		if m < 0 || m > 1 {
			return false
		}
		if m == 1 && len(a) == len(b) {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSNR16(t *testing.T) {
	ref := []int16{1000, -1000, 1000, -1000}
	if got := SNR16(ref, ref); got != PSNRCap {
		t.Fatalf("identical SNR = %f", got)
	}
	// Half-amplitude error: SNR = 10*log10(sum(sig²)/sum((sig/2)²)) ≈ 6.02.
	half := []int16{500, -500, 500, -500}
	if got := SNR16(ref, half); math.Abs(got-6.02) > 0.01 {
		t.Fatalf("half SNR = %f, want ~6.02", got)
	}
	if got := SNR16(nil, nil); got != 0 {
		t.Fatalf("empty SNR = %f", got)
	}
	if got := SNR16(make([]int16, 4), []int16{1, 2, 3, 4}); got != 0 {
		t.Fatalf("silent reference SNR = %f", got)
	}
}

func TestSNR16Truncation(t *testing.T) {
	ref := []int16{1000, 1000, 1000, 1000}
	// Missing samples count as zeros: huge noise.
	if got := SNR16(ref, ref[:2]); got > 3.1 {
		t.Fatalf("truncated SNR = %f, want ~3", got)
	}
}

func TestPCMRoundTrip(t *testing.T) {
	f := func(samples []int16) bool {
		back := BytesToPCM(PCMToBytes(samples))
		if len(back) != len(samples) {
			return false
		}
		for i := range samples {
			if back[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesToPCMOddLength(t *testing.T) {
	got := BytesToPCM([]byte{1, 0, 2})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("odd-length decode = %v", got)
	}
}

func TestImage(t *testing.T) {
	im := NewImage(4, 3)
	im.Set(1, 2, 77)
	if im.At(1, 2) != 77 {
		t.Fatalf("set/get failed")
	}
	// Clamped reads.
	im.Set(0, 0, 10)
	if im.At(-5, -5) != 10 {
		t.Fatalf("clamped read = %d", im.At(-5, -5))
	}
	im.Set(3, 2, 20)
	if im.At(99, 99) != 20 {
		t.Fatalf("clamped read high = %d", im.At(99, 99))
	}
	// Ignored out-of-bounds writes.
	im.Set(-1, 0, 99)
	im.Set(4, 0, 99)
	if im.At(0, 0) != 10 {
		t.Fatalf("out-of-bounds write leaked")
	}
}

func TestImagePSNR(t *testing.T) {
	a, b := NewImage(2, 2), NewImage(2, 2)
	v, err := ImagePSNR(a, b)
	if err != nil || v != PSNRCap {
		t.Fatalf("identical images: %f, %v", v, err)
	}
	c := NewImage(3, 2)
	if _, err := ImagePSNR(a, c); err == nil {
		t.Fatalf("size mismatch accepted")
	}
}
