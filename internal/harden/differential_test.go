package harden

import (
	"bytes"
	"testing"

	"etap/internal/apps/all"
	"etap/internal/core"
	"etap/internal/minic"
	"etap/internal/sim"
)

// TestDifferentialAllApps is the rewriter's miscompile harness: for every
// bundled application, the hardened program with zero faults must produce
// bit-identical output and the same exit status as the baseline. Every
// app runs under the default policy with both transforms; the first app
// additionally sweeps every (policy, transform) combination.
func TestDifferentialAllApps(t *testing.T) {
	allPolicies := []core.Policy{core.PolicyControl, core.PolicyControlAddr, core.PolicyConservative}
	allOpts := []Options{DefaultOptions(), {DupCompare: true}, {Signatures: true}}
	for i, app := range all.Apps() {
		app := app
		pols, opts := allPolicies[1:2], allOpts[:1]
		if i == 0 {
			pols, opts = allPolicies, allOpts
		}
		t.Run(app.Name(), func(t *testing.T) {
			prog, err := minic.Build(app.Source())
			if err != nil {
				t.Fatal(err)
			}
			base := sim.Run(prog, sim.Config{Input: app.Input()})
			if base.Outcome != sim.OK {
				t.Fatalf("baseline outcome %s", base.Outcome)
			}
			for _, pol := range pols {
				rep, err := core.Analyze(prog, pol)
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range opts {
					res, err := Harden(rep, o)
					if err != nil {
						t.Fatalf("%s/%s: %v", pol, o, err)
					}
					hard := sim.Run(res.Prog, sim.Config{Input: app.Input()})
					if hard.Outcome != sim.OK {
						t.Fatalf("%s/%s: hardened outcome %s (trap %s, detect pc %d)",
							pol, o, hard.Outcome, hard.Trap, hard.DetectPC)
					}
					if hard.ExitCode != base.ExitCode {
						t.Fatalf("%s/%s: exit %d, baseline %d", pol, o, hard.ExitCode, base.ExitCode)
					}
					if !bytes.Equal(hard.Output, base.Output) {
						t.Fatalf("%s/%s: hardened output differs from baseline (%d vs %d bytes)",
							pol, o, len(hard.Output), len(base.Output))
					}
					if hard.Instret <= base.Instret {
						t.Fatalf("%s/%s: hardened instret %d not above baseline %d",
							pol, o, hard.Instret, base.Instret)
					}
				}
			}
		})
	}
}
