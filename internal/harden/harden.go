// Package harden rewrites assembled programs with real software
// protection transforms, replacing the idealized protection model the
// paper assumes in §4. The paper's campaigns model protection by simply
// not injecting into control-slice instructions — implicitly assuming a
// redundancy mechanism that catches every control-data error for free.
// This package implements that redundancy, so the repo can measure
// *realized* detection coverage and instruction overhead against the
// idealized bound.
//
// Two transforms are available, separately or together:
//
//   - Duplicate-and-compare (EDDI/SWIFT style): every arithmetic
//     instruction in the control slice is recomputed from shadow copies
//     of its sources, and every control consumption of a register — a
//     branch input, an indirect-jump target, a divisor, a syscall
//     argument, and (policy-dependent) a memory-address base or stored
//     value — is preceded by a comparison of the register against its
//     shadow. A mismatch executes trapdet, which ends the run with the
//     sim.Detected outcome.
//
//   - Control-flow signatures (CFCSS style): every basic block gets a
//     compile-time signature; block entry code checks that the runtime
//     signature word holds the signature of a legal predecessor and then
//     installs the block's own signature. Illegal control transfers into
//     a block entry — e.g. through a corrupted return address that still
//     lands inside the text segment — are detected at the next block
//     boundary.
//
// The shadow state lives in an ABI carved out of resources the
// toolchain reserves but never uses: registers $k0/$k1 are scratch for
// the inserted code, the never-allocated low page below the data
// segment holds a 32-word shadow register file and the signature word,
// and stack slots are mirrored at a fixed negative offset (the shadow
// stack) so spilled values keep their redundant copy across memory.
// docs/HARDEN.md specifies the ABI and its assumptions.
package harden

import (
	"fmt"

	"etap/internal/core"
	"etap/internal/isa"
)

// The shadow ABI. All addresses live in the page below isa.DataBase,
// which the assembler never allocates and compiled programs never touch.
const (
	// ShadowBase is the address of the 32-word shadow register file:
	// shadow($r) lives at ShadowBase + 4*r. Slot 0 (the zero register) is
	// never written, so it reads as zero — exactly the shadow $zero needs.
	ShadowBase uint32 = 0x0100
	// SigAddr holds the runtime control-flow signature word.
	SigAddr uint32 = 0x0180
	// ShadowStackGap is the displacement of the shadow stack: the mirror
	// of stack slot addr is addr - ShadowStackGap. It must exceed the
	// deepest stack the program reaches and keep the mirror region clear
	// of the data segment; 1 MiB holds comfortably for every bundled app
	// under the simulator's default 8 MiB fast region.
	ShadowStackGap int32 = 1 << 20
)

// Options selects which transforms to apply.
type Options struct {
	// DupCompare duplicates control-slice computations and compares
	// registers against their shadows at control uses.
	DupCompare bool
	// Signatures inserts per-basic-block control-flow signature checks.
	Signatures bool
}

// DefaultOptions enables both transforms.
func DefaultOptions() Options { return Options{DupCompare: true, Signatures: true} }

func (o Options) String() string {
	switch {
	case o.DupCompare && o.Signatures:
		return "dup+cfs"
	case o.DupCompare:
		return "dup"
	case o.Signatures:
		return "cfs"
	}
	return "none"
}

// ParseOptions resolves a transform name as printed by Options.String
// ("dup+cfs", "dup", "cfs").
func ParseOptions(s string) (Options, bool) {
	for _, o := range []Options{DefaultOptions(), {DupCompare: true}, {Signatures: true}} {
		if s == o.String() {
			return o, true
		}
	}
	return Options{}, false
}

// Result is a hardened program plus the maps relating it to the original.
type Result struct {
	// Prog is the rewritten program.
	Prog *isa.Program
	// Orig is the program the rewrite started from.
	Orig *isa.Program
	// Policy is the analysis policy whose control slice was protected.
	Policy core.Policy
	// Opts records the applied transforms.
	Opts Options

	// OrigOf maps each hardened text index to the original index it was
	// copied from, or -1 for inserted protection code.
	OrigOf []int
	// NewOf maps each original text index to the hardened index of its
	// primary copy (every original instruction has exactly one).
	NewOf []int
	// PrimaryProtected marks, in hardened text indices, the primary
	// copies of the control-slice arithmetic instructions — the
	// injection sites whose faults the idealized model assumes away and
	// the transforms are supposed to detect. Under DupCompare these are
	// exactly the duplicated sites; under a signatures-only rewrite they
	// are still marked, so detection campaigns measure what signatures
	// alone catch of the same fault population.
	PrimaryProtected []bool

	// DupSites is the number of duplicated (protected) instructions.
	DupSites int
	// Checks is the number of compare-against-shadow checks inserted.
	Checks int
	// SigBlocks is the number of basic blocks that received signature
	// code.
	SigBlocks int

	// TrapKinds classifies every inserted trapdet by the transform that
	// emitted it, keyed by hardened text index. Query via CheckKindAt
	// with a Detected trial's sim.Result.DetectPC to attribute a
	// detection to its transform.
	TrapKinds map[int]CheckKind
}

// CheckKind names the transform class behind one trapdet site.
type CheckKind uint8

const (
	// CheckUnknown means the queried pc is not a trapdet of this
	// rewrite.
	CheckUnknown CheckKind = iota
	// CheckDup is a duplicate-and-compare shadow-register check.
	CheckDup
	// CheckCFS is a control-flow signature check.
	CheckCFS
)

func (k CheckKind) String() string {
	switch k {
	case CheckDup:
		return "dup"
	case CheckCFS:
		return "cfs"
	}
	return "unknown"
}

// CheckKindAt classifies the trapdet at hardened text index pc —
// CheckDup for a duplicate-and-compare check, CheckCFS for a
// control-flow signature check, CheckUnknown for anything else
// (including pc < 0, the "no detection" DetectPC sentinel).
func (r *Result) CheckKindAt(pc int) CheckKind {
	return r.TrapKinds[pc]
}

// StaticOverhead is the hardened/original static instruction-count ratio.
func (r *Result) StaticOverhead() float64 {
	return float64(len(r.Prog.Text)) / float64(len(r.Orig.Text))
}

// PrimaryMask lifts an original-program instruction mask (e.g. the
// analysis tag set) onto the hardened program: the primary copy of each
// masked instruction is masked, inserted protection code never is.
func (r *Result) PrimaryMask(origMask []bool) ([]bool, error) {
	if len(origMask) != len(r.Orig.Text) {
		return nil, fmt.Errorf("harden: mask has %d entries for %d original instructions",
			len(origMask), len(r.Orig.Text))
	}
	out := make([]bool, len(r.Prog.Text))
	for origIdx, on := range origMask {
		if on {
			out[r.NewOf[origIdx]] = true
		}
	}
	return out, nil
}

// Harden rewrites the report's program under the given options. The
// report must come from core.Analyze on the same program; its policy
// decides which instructions are duplicated and which uses are checked.
func Harden(rep *core.Report, opts Options) (*Result, error) {
	if !opts.DupCompare && !opts.Signatures {
		return nil, fmt.Errorf("harden: no transforms selected")
	}
	p := rep.Prog
	for idx, in := range p.Text {
		if in.Op == isa.TRAPDET {
			return nil, fmt.Errorf("harden: instr %d is already a trapdet; refusing to harden twice", idx)
		}
		var uses [3]isa.Reg
		for _, r := range append(in.Uses(uses[:0]), destOrZero(in)) {
			if r == isa.RegK0 || r == isa.RegK1 {
				return nil, fmt.Errorf("harden: instr %d (%s) touches reserved register %s",
					idx, isa.Disasm(in), r)
			}
		}
	}
	if len(rep.CFGs) != len(p.Funcs) {
		return nil, fmt.Errorf("harden: report has %d CFGs for %d functions", len(rep.CFGs), len(p.Funcs))
	}
	w := &rewriter{rep: rep, p: p, opts: opts}
	res, err := w.rewrite()
	if err != nil {
		return nil, err
	}
	if err := res.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("harden: rewritten program is invalid: %w", err)
	}
	return res, nil
}

func destOrZero(in isa.Instr) isa.Reg {
	if d, ok := in.Dest(); ok {
		return d
	}
	return isa.RegZero
}
