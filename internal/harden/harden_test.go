package harden

import (
	"bytes"
	"testing"

	"etap/internal/asm"
	"etap/internal/core"
	"etap/internal/isa"
	"etap/internal/sim"
)

// sumProgram exercises a protected loop: the counter and bound feed the
// branch, so their arithmetic is in the control slice under every
// policy, while the accumulator arithmetic is pure data.
const sumProgram = `
.text
.func __start
	li $t5, 0
	li $t6, 0
loop:
	add $t6, $t6, $t5
	addi $t5, $t5, 1
	slti $at, $t5, 100
	bnez $at, loop
	move $a0, $t6
	li $v0, 1
	syscall
.endfunc
`

// callProgram exercises calls, returns, spills and reloads, with a loop
// after the calls so the signature scheme has checking blocks (function
// entries and call continuations only re-synchronize).
const callProgram = `
.text
.func __start
	li $a0, 12
	jal double
	move $a0, $v0
	jal double
	move $a0, $v0
	li $t5, 0
acc:
	addi $a0, $a0, 2
	addi $t5, $t5, 1
	slti $at, $t5, 8
	bnez $at, acc
	li $v0, 1
	syscall
.endfunc
.func double
	addi $sp, $sp, -8
	sw $ra, 0($sp)
	sw $s0, 4($sp)
	move $s0, $a0
	add $v0, $s0, $s0
	lw $s0, 4($sp)
	lw $ra, 0($sp)
	addi $sp, $sp, 8
	jr $ra
.endfunc
`

func build(t *testing.T, src string, pol core.Policy) (*isa.Program, *core.Report) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Analyze(p, pol)
	if err != nil {
		t.Fatal(err)
	}
	return p, rep
}

func TestHardenedZeroFaultMatchesBaseline(t *testing.T) {
	for _, src := range []string{sumProgram, callProgram} {
		for _, pol := range []core.Policy{core.PolicyControl, core.PolicyControlAddr, core.PolicyConservative} {
			for _, opts := range []Options{DefaultOptions(), {DupCompare: true}, {Signatures: true}} {
				p, rep := build(t, src, pol)
				res, err := Harden(rep, opts)
				if err != nil {
					t.Fatalf("%s/%s: %v", pol, opts, err)
				}
				base := sim.Run(p, sim.Config{})
				hard := sim.Run(res.Prog, sim.Config{})
				if hard.Outcome != sim.OK {
					t.Fatalf("%s/%s: hardened outcome %s (trap %s)", pol, opts, hard.Outcome, hard.Trap)
				}
				if hard.ExitCode != base.ExitCode || !bytes.Equal(hard.Output, base.Output) {
					t.Fatalf("%s/%s: hardened run diverged: exit %d vs %d", pol, opts, hard.ExitCode, base.ExitCode)
				}
				if hard.Instret <= base.Instret {
					t.Fatalf("%s/%s: hardened instret %d not above baseline %d", pol, opts, hard.Instret, base.Instret)
				}
			}
		}
	}
}

func TestMapsAndMasks(t *testing.T) {
	p, rep := build(t, sumProgram, core.PolicyControlAddr)
	res, err := Harden(rep, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.DupSites == 0 || res.Checks == 0 || res.SigBlocks == 0 {
		t.Fatalf("transform counters empty: dup=%d checks=%d sig=%d", res.DupSites, res.Checks, res.SigBlocks)
	}
	if res.StaticOverhead() <= 1 {
		t.Fatalf("static overhead %.2f not above 1", res.StaticOverhead())
	}
	for origIdx := range p.Text {
		ni := res.NewOf[origIdx]
		if res.OrigOf[ni] != origIdx {
			t.Fatalf("NewOf/OrigOf disagree at orig %d (new %d -> %d)", origIdx, ni, res.OrigOf[ni])
		}
		if res.Prog.Text[ni].Op != p.Text[origIdx].Op {
			t.Fatalf("primary copy of %d changed opcode", origIdx)
		}
	}
	nprim := 0
	for ni, on := range res.PrimaryProtected {
		if !on {
			continue
		}
		nprim++
		if res.OrigOf[ni] < 0 {
			t.Fatalf("inserted instruction %d marked primary-protected", ni)
		}
	}
	if nprim != res.DupSites {
		t.Fatalf("%d primary-protected sites for %d dup sites", nprim, res.DupSites)
	}
	mask, err := res.PrimaryMask(rep.Tagged)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, b := range rep.Tagged {
		if b {
			want++
		}
	}
	got := 0
	for _, b := range mask {
		if b {
			got++
		}
	}
	if got != want {
		t.Fatalf("PrimaryMask carries %d bits, want %d", got, want)
	}
}

// TestDupCompareDetects injects single-bit flips into every dynamic
// execution of the protected primaries and asserts the transform
// detects them: a flipped control value must hit a compare (or crash)
// before it can silently corrupt the run.
func TestDupCompareDetects(t *testing.T) {
	_, rep := build(t, sumProgram, core.PolicyControlAddr)
	res, err := Harden(rep, Options{DupCompare: true})
	if err != nil {
		t.Fatal(err)
	}
	clean := sim.Run(res.Prog, sim.Config{Plan: &sim.FaultPlan{Eligible: res.PrimaryProtected}})
	if clean.Outcome != sim.OK || clean.EligibleExec == 0 {
		t.Fatalf("clean hardened run: %s, %d eligible", clean.Outcome, clean.EligibleExec)
	}
	detected, other := 0, 0
	for at := uint64(1); at <= clean.EligibleExec && at <= 64; at++ {
		plan := &sim.FaultPlan{
			Eligible:   res.PrimaryProtected,
			Injections: []sim.Injection{{At: at, Bit: uint8(at % 32)}},
		}
		r := sim.Run(res.Prog, sim.Config{Plan: plan, MaxInstr: clean.Instret * 4})
		switch r.Outcome {
		case sim.Detected:
			detected++
			if r.DetectPC < 0 || r.DetectPC >= len(res.Prog.Text) {
				t.Fatalf("DetectPC %d out of range", r.DetectPC)
			}
		case sim.OK:
			if !bytes.Equal(r.Output, clean.Output) {
				t.Fatalf("injection at %d completed with corrupted output (escaped detection)", at)
			}
			other++ // masked before any control use
		default:
			other++
		}
	}
	if detected == 0 {
		t.Fatalf("no injection into protected primaries was detected (%d other outcomes)", other)
	}
}

// TestSignaturesDetectWildReturn corrupts the link register written by
// a call (not an injectable site under the paper's model, but a legal
// sim injection) and asserts the signature scheme catches returns that
// land inside the text segment but off the legal control-flow edges.
func TestSignaturesDetectWildReturn(t *testing.T) {
	_, rep := build(t, callProgram, core.PolicyControlAddr)
	res, err := Harden(rep, Options{Signatures: true})
	if err != nil {
		t.Fatal(err)
	}
	// Mark only the jal primaries eligible: the flip lands in $ra.
	eligible := make([]bool, len(res.Prog.Text))
	for ni, in := range res.Prog.Text {
		if res.OrigOf[ni] >= 0 && in.Op == isa.JAL {
			eligible[ni] = true
		}
	}
	clean := sim.Run(res.Prog, sim.Config{Plan: &sim.FaultPlan{Eligible: eligible}})
	if clean.Outcome != sim.OK || clean.EligibleExec == 0 {
		t.Fatalf("clean run: %s, %d eligible jals", clean.Outcome, clean.EligibleExec)
	}
	detected := 0
	for at := uint64(1); at <= clean.EligibleExec; at++ {
		for bit := uint8(0); bit < 8; bit++ {
			plan := &sim.FaultPlan{
				Eligible:   eligible,
				Injections: []sim.Injection{{At: at, Bit: bit}},
			}
			r := sim.Run(res.Prog, sim.Config{Plan: plan, MaxInstr: clean.Instret * 4})
			if r.Outcome == sim.Detected {
				detected++
			}
		}
	}
	if detected == 0 {
		t.Fatalf("no corrupted return was caught by the signature checks")
	}
}

func TestHardenRejectsMisuse(t *testing.T) {
	_, rep := build(t, sumProgram, core.PolicyControl)
	if _, err := Harden(rep, Options{}); err == nil {
		t.Fatalf("Harden accepted empty options")
	}
	res, err := Harden(rep, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := core.Analyze(res.Prog, core.PolicyControl)
	if err != nil {
		t.Fatalf("hardened program does not re-analyze: %v", err)
	}
	if _, err := Harden(rep2, DefaultOptions()); err == nil {
		t.Fatalf("Harden accepted an already-hardened program")
	}
	if _, err := res.PrimaryMask(make([]bool, 3)); err == nil {
		t.Fatalf("PrimaryMask accepted a short mask")
	}
}
