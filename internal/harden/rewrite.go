package harden

import (
	"fmt"

	"etap/internal/core"
	"etap/internal/isa"
)

// rewriter performs the single forward pass over the original program.
// Each original instruction expands to [checks] [shadow compute | mirror]
// primary [refresh | mirror], and each basic block optionally gains a
// signature prologue. Branch targets are emitted in original text indices
// and remapped to the start of the target block's emitted code in a
// fixup pass; inserted branches (check skips) are emitted with final
// indices directly and are excluded from the fixup.
type rewriter struct {
	rep  *core.Report
	p    *isa.Program
	opts Options

	protected []bool // orig: duplicated sites (control-slice arithmetic)
	out       []isa.Instr
	origOf    []int
	newOf     []int       // orig -> primary copy
	expStart  []int       // orig -> start of its expansion
	blockAt   map[int]int // orig block-leader idx -> new idx of block start

	dupSites  int
	checks    int
	sigBlocks int

	trapKinds map[int]CheckKind // hardened trapdet idx -> transform class
}

func (w *rewriter) rewrite() (*Result, error) {
	p := w.p
	w.protected = w.rep.ProtectedSites()
	w.newOf = make([]int, len(p.Text))
	w.expStart = make([]int, len(p.Text))
	w.blockAt = make(map[int]int)
	w.trapKinds = make(map[int]CheckKind)
	newFuncs := make([]isa.FuncInfo, len(p.Funcs))

	if w.opts.Signatures {
		if len(p.Funcs) >= 1<<12 {
			return nil, fmt.Errorf("harden: %d functions exceed the signature space", len(p.Funcs))
		}
		for fi, cfg := range w.rep.CFGs {
			if len(cfg.Blocks) >= 1<<12 {
				return nil, fmt.Errorf("harden: function %d has %d blocks, exceeding the signature space", fi, len(cfg.Blocks))
			}
		}
	}

	for fi, cfg := range w.rep.CFGs {
		f := p.Funcs[fi]
		start := len(w.out)
		preds, callCont := blockPreds(w.p, cfg)
		for bi, blk := range cfg.Blocks {
			w.blockAt[blk.Start] = len(w.out)
			if blk.Start == p.Entry && w.opts.DupCompare {
				// The simulator seeds $sp at reset without executing an
				// instruction; seed its shadow the same way so the first
				// address check does not trip on pristine state. Every
				// other register resets to zero, matching its never-written
				// shadow slot.
				w.refresh(isa.RegSP)
			}
			if w.opts.Signatures {
				w.sigPrologue(fi, bi, preds[bi], callCont[bi])
			}
			for idx := blk.Start; idx < blk.End; idx++ {
				w.instr(idx)
			}
		}
		newFuncs[fi] = isa.FuncInfo{Name: f.Name, Start: start, End: len(w.out), Tolerant: f.Tolerant}
	}

	// Remap copied branch and jump targets onto the rewritten layout.
	// Every target is a block leader (the CFG builder guarantees it), so
	// the jump lands on the block's signature check, not past it.
	for i := range w.out {
		if w.origOf[i] < 0 {
			continue
		}
		switch w.out[i].Op {
		case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ, isa.J, isa.JAL:
			ns, ok := w.blockAt[int(w.out[i].Imm)]
			if !ok {
				return nil, fmt.Errorf("harden: instr %d targets %d, which is not a block leader",
					w.origOf[i], w.out[i].Imm)
			}
			w.out[i].Imm = int32(ns)
		}
	}

	newSyms := make(map[string]int, len(p.Symbols))
	for name, idx := range p.Symbols {
		if ns, ok := w.blockAt[idx]; ok {
			newSyms[name] = ns
		} else {
			newSyms[name] = w.expStart[idx]
		}
	}

	entry, ok := w.blockAt[p.Entry]
	if !ok {
		return nil, fmt.Errorf("harden: entry %d is not a block leader", p.Entry)
	}
	hardened := &isa.Program{
		Text:     w.out,
		Data:     p.Data,
		Symbols:  newSyms,
		DataSyms: p.DataSyms,
		Funcs:    newFuncs,
		Entry:    entry,
	}
	res := &Result{
		Prog:             hardened,
		Orig:             p,
		Policy:           w.rep.Policy,
		Opts:             w.opts,
		OrigOf:           w.origOf,
		NewOf:            w.newOf,
		PrimaryProtected: make([]bool, len(w.out)),
		DupSites:         w.dupSites,
		Checks:           w.checks,
		SigBlocks:        w.sigBlocks,
		TrapKinds:        w.trapKinds,
	}
	for origIdx, prot := range w.protected {
		if prot {
			res.PrimaryProtected[w.newOf[origIdx]] = true
		}
	}
	return res, nil
}

func (w *rewriter) emit(in isa.Instr, orig int) {
	w.out = append(w.out, in)
	w.origOf = append(w.origOf, orig)
}

func shadowAddr(r isa.Reg) int32 { return int32(ShadowBase) + 4*int32(r) }

// loadShadow emits k = shadow(r).
func (w *rewriter) loadShadow(k, r isa.Reg) {
	w.emit(isa.Instr{Op: isa.LW, Rd: k, Rs: isa.RegZero, Imm: shadowAddr(r)}, -1)
}

// storeShadow emits shadow(r) = k.
func (w *rewriter) storeShadow(r, k isa.Reg) {
	w.emit(isa.Instr{Op: isa.SW, Rt: k, Rs: isa.RegZero, Imm: shadowAddr(r)}, -1)
}

// refresh emits shadow(r) = r, re-synchronizing the shadow after a
// definition the transform does not duplicate (loads from non-stack
// memory, untagged arithmetic, syscall results). A fault that reaches r
// through such a definition is copied into the shadow and escapes
// detection — the realized counterpart of the paper's §5.1 memory hole.
func (w *rewriter) refresh(r isa.Reg) {
	if r != isa.RegZero {
		w.storeShadow(r, r)
	}
}

// check emits the compare-against-shadow sequence for one register:
//
//	lw   $k0, shadow(r)
//	beq  $k0, r, +2
//	trapdet
func (w *rewriter) check(r isa.Reg) {
	if r == isa.RegZero {
		return
	}
	w.loadShadow(isa.RegK0, r)
	w.emit(isa.Instr{Op: isa.BEQ, Rs: isa.RegK0, Rt: r, Imm: int32(len(w.out) + 2)}, -1)
	w.trapKinds[len(w.out)] = CheckDup
	w.emit(isa.Instr{Op: isa.TRAPDET}, -1)
	w.checks++
}

func isStackBase(r isa.Reg) bool { return r == isa.RegSP || r == isa.RegFP }

// checksFor emits the policy-dependent compare set for one original
// instruction, before the instruction itself runs: branch inputs,
// indirect-jump targets, divisors and syscall arguments are always
// control; memory-address bases join under PolicyControlAddr and stored
// values under PolicyConservative, mirroring core's transfer function.
func (w *rewriter) checksFor(in isa.Instr) {
	var regs [3]isa.Reg
	n := 0
	add := func(r isa.Reg) {
		for i := 0; i < n; i++ {
			if regs[i] == r {
				return
			}
		}
		regs[n] = r
		n++
	}
	switch in.Op {
	case isa.DIV, isa.REM:
		add(in.Rt)
	case isa.BEQ, isa.BNE:
		add(in.Rs)
		add(in.Rt)
	case isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
		add(in.Rs)
	case isa.JR, isa.JALR:
		add(in.Rs)
	case isa.SYSCALL:
		add(isa.RegV0)
		add(isa.RegA0)
		add(isa.RegA1)
	}
	switch in.Class() {
	case isa.ClassLoad:
		if w.rep.Policy >= core.PolicyControlAddr {
			add(in.Rs)
		}
	case isa.ClassStore:
		if w.rep.Policy >= core.PolicyControlAddr {
			add(in.Rs)
		}
		if w.rep.Policy >= core.PolicyConservative {
			add(in.Rt)
		}
	}
	for i := 0; i < n; i++ {
		w.check(regs[i])
	}
}

// shadowCompute emits the duplicate of a protected arithmetic
// instruction: the same operation over shadow sources, landing in the
// shadow of the destination. It runs before the primary so an injection
// at the primary (which strikes after writeback) cannot leak into the
// shadow.
func (w *rewriter) shadowCompute(in isa.Instr) {
	switch isa.Format(in.Op) {
	case isa.Fmt3R:
		w.loadShadow(isa.RegK0, in.Rs)
		w.loadShadow(isa.RegK1, in.Rt)
		w.emit(isa.Instr{Op: in.Op, Rd: isa.RegK0, Rs: isa.RegK0, Rt: isa.RegK1}, -1)
	case isa.Fmt2RI:
		w.loadShadow(isa.RegK0, in.Rs)
		w.emit(isa.Instr{Op: in.Op, Rd: isa.RegK0, Rs: isa.RegK0, Imm: in.Imm}, -1)
	case isa.FmtRI: // lui
		w.emit(isa.Instr{Op: in.Op, Rd: isa.RegK0, Imm: in.Imm}, -1)
	case isa.Fmt2R: // cvtif, cvtfi
		w.loadShadow(isa.RegK0, in.Rs)
		w.emit(isa.Instr{Op: in.Op, Rd: isa.RegK0, Rs: isa.RegK0}, -1)
	}
	w.storeShadow(in.Rd, isa.RegK0)
	w.dupSites++
}

// instr expands one original instruction.
func (w *rewriter) instr(idx int) {
	in := w.p.Text[idx]
	w.expStart[idx] = len(w.out)
	if !w.opts.DupCompare {
		w.primary(in, idx)
		return
	}
	w.checksFor(in)

	switch {
	case w.protected[idx]:
		w.shadowCompute(in)
		w.primary(in, idx)

	case in.Class() == isa.ClassLoad && isStackBase(in.Rs) && in.Rd != isa.RegZero:
		// Stack reload: refill the shadow from the shadow stack so a
		// corrupted value that was spilled stays detectable. The mirror
		// load runs first because the primary may clobber its own base
		// (the epilogue's lw $fp, -8($fp)).
		w.emit(isa.Instr{Op: in.Op, Rd: isa.RegK0, Rs: in.Rs, Imm: in.Imm - ShadowStackGap}, -1)
		w.storeShadow(in.Rd, isa.RegK0)
		w.primary(in, idx)

	case in.Class() == isa.ClassLoad:
		w.primary(in, idx)
		w.refresh(in.Rd)

	case in.Class() == isa.ClassStore && isStackBase(in.Rs):
		// Stack spill: mirror the shadow of the stored register into the
		// shadow stack at the same frame offset.
		w.primary(in, idx)
		w.loadShadow(isa.RegK0, in.Rt)
		w.emit(isa.Instr{Op: in.Op, Rt: isa.RegK0, Rs: in.Rs, Imm: in.Imm - ShadowStackGap}, -1)

	case in.Op == isa.JAL:
		// The link register is written by the jump itself; seed its
		// shadow with the (compile-time-known) return address first.
		ret := int32(isa.TextBase) + int32(len(w.out)+3)
		w.emit(isa.Instr{Op: isa.ADDI, Rd: isa.RegK0, Rs: isa.RegZero, Imm: ret}, -1)
		w.storeShadow(isa.RegRA, isa.RegK0)
		w.primary(in, idx)

	case in.Op == isa.JALR:
		ret := int32(isa.TextBase) + int32(len(w.out)+3)
		w.emit(isa.Instr{Op: isa.ADDI, Rd: isa.RegK0, Rs: isa.RegZero, Imm: ret}, -1)
		w.storeShadow(in.Rd, isa.RegK0)
		w.primary(in, idx)

	case in.Op == isa.SYSCALL:
		w.primary(in, idx)
		w.refresh(isa.RegV0)

	case in.Class() == isa.ClassArith:
		w.primary(in, idx)
		w.refresh(in.Rd)

	default: // nop, branches, j, jr
		w.primary(in, idx)
	}
}

func (w *rewriter) primary(in isa.Instr, orig int) {
	w.newOf[orig] = len(w.out)
	w.emit(in, orig)
}

// sigOf is the compile-time signature of block bi of function fi.
func sigOf(fi, bi int) int32 { return 0x51<<24 | int32(fi)<<12 | int32(bi) }

// sigPrologue emits the control-flow signature code at a block entry.
// Blocks with intra-procedural predecessors check that the signature
// word holds a legal predecessor's signature before installing their
// own; function entries and call continuations re-synchronize without a
// check (the signature chain is intra-procedural, see docs/HARDEN.md).
func (w *rewriter) sigPrologue(fi, bi int, preds []int, callCont bool) {
	w.sigBlocks++
	if bi == 0 || callCont || len(preds) == 0 {
		w.emit(isa.Instr{Op: isa.ADDI, Rd: isa.RegK0, Rs: isa.RegZero, Imm: sigOf(fi, bi)}, -1)
		w.emit(isa.Instr{Op: isa.SW, Rt: isa.RegK0, Rs: isa.RegZero, Imm: int32(SigAddr)}, -1)
		return
	}
	// lw k0, SIG; (addi k1, sig_p; beq k0, k1, ok)*; trapdet; ok: ...
	ok := len(w.out) + 1 + 2*len(preds) + 1
	w.emit(isa.Instr{Op: isa.LW, Rd: isa.RegK0, Rs: isa.RegZero, Imm: int32(SigAddr)}, -1)
	for _, p := range preds {
		w.emit(isa.Instr{Op: isa.ADDI, Rd: isa.RegK1, Rs: isa.RegZero, Imm: sigOf(fi, p)}, -1)
		w.emit(isa.Instr{Op: isa.BEQ, Rs: isa.RegK0, Rt: isa.RegK1, Imm: int32(ok)}, -1)
	}
	w.trapKinds[len(w.out)] = CheckCFS
	w.emit(isa.Instr{Op: isa.TRAPDET}, -1)
	w.emit(isa.Instr{Op: isa.ADDI, Rd: isa.RegK0, Rs: isa.RegZero, Imm: sigOf(fi, bi)}, -1)
	w.emit(isa.Instr{Op: isa.SW, Rt: isa.RegK0, Rs: isa.RegZero, Imm: int32(SigAddr)}, -1)
}

// blockPreds builds, per block, the deduplicated intra-procedural
// predecessor list and whether any predecessor ends in a call (making
// the block a call continuation, which re-synchronizes instead of
// checking: the signature word holds the callee's exit signature there).
func blockPreds(p *isa.Program, cfg *core.FuncCFG) (preds [][]int, callCont []bool) {
	preds = make([][]int, len(cfg.Blocks))
	callCont = make([]bool, len(cfg.Blocks))
	for pb, blk := range cfg.Blocks {
		last := p.Text[blk.End-1]
		isCall := last.Op == isa.JAL || last.Op == isa.JALR
		for _, s := range blk.Succs {
			if !contains(preds[s], pb) {
				preds[s] = append(preds[s], pb)
			}
			if isCall {
				callCont[s] = true
			}
		}
	}
	return preds, callCont
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
