package harden

import (
	"testing"

	"etap/internal/core"
	"etap/internal/isa"
)

// TestTrapKindsClassifyEveryTrapdet pins that every trapdet emitted by
// the rewrite is classified, that the classes match the transform that
// emitted them, and that non-trapdet indices classify as unknown —
// DetectPC attribution depends on exactly this map.
func TestTrapKindsClassifyEveryTrapdet(t *testing.T) {
	cases := []struct {
		opts     Options
		wantKind map[CheckKind]bool // kinds that must appear
	}{
		{Options{DupCompare: true}, map[CheckKind]bool{CheckDup: true}},
		{Options{Signatures: true}, map[CheckKind]bool{CheckCFS: true}},
		{DefaultOptions(), map[CheckKind]bool{CheckDup: true, CheckCFS: true}},
	}
	for _, tc := range cases {
		t.Run(tc.opts.String(), func(t *testing.T) {
			_, rep := build(t, callProgram, core.PolicyControlAddr)
			res, err := Harden(rep, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[CheckKind]bool{}
			traps := 0
			for idx, in := range res.Prog.Text {
				kind := res.CheckKindAt(idx)
				if in.Op == isa.TRAPDET {
					traps++
					if kind == CheckUnknown {
						t.Fatalf("trapdet at %d unclassified", idx)
					}
					seen[kind] = true
				} else if kind != CheckUnknown {
					t.Fatalf("non-trapdet at %d classified as %s", idx, kind)
				}
			}
			if traps == 0 {
				t.Fatal("rewrite emitted no trapdets")
			}
			for k := range tc.wantKind {
				if !seen[k] {
					t.Fatalf("transform %s emitted no %s trapdet (saw %v)", tc.opts, k, seen)
				}
			}
			for k := range seen {
				if !tc.wantKind[k] {
					t.Fatalf("transform %s emitted unexpected %s trapdet", tc.opts, k)
				}
			}
			if res.CheckKindAt(-1) != CheckUnknown || res.CheckKindAt(len(res.Prog.Text)+7) != CheckUnknown {
				t.Fatal("out-of-range pc not CheckUnknown")
			}
		})
	}
}

func TestCheckKindString(t *testing.T) {
	if CheckDup.String() != "dup" || CheckCFS.String() != "cfs" || CheckUnknown.String() != "unknown" {
		t.Fatalf("CheckKind strings drifted: %s %s %s", CheckDup, CheckCFS, CheckUnknown)
	}
}
