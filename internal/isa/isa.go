// Package isa defines the MIPS-like 32-bit instruction set used by the
// whole toolchain: the MiniC compiler emits it, the assembler encodes it,
// the simulator executes it, and the control-data analysis reasons about it.
//
// The ISA is deliberately close to the MIPS subset the paper's examples use
// (three-register ALU ops, load/store with register+offset addressing,
// compare-and-branch, jump-and-link) with a small word-oriented float
// extension: float values live in the same 32 general registers as integers
// and float opcodes reinterpret the register bits as IEEE-754 binary32.
// Keeping a single register file makes the paper's fault model ("flip a bit
// in the result of an instruction") uniform across integer and float code.
package isa

import "fmt"

// Reg names a general-purpose register. Register 0 is hardwired to zero,
// as on MIPS.
type Reg uint8

// NumRegs is the size of the register file.
const NumRegs = 32

// Conventional register assignments (MIPS o32 names).
const (
	RegZero Reg = 0  // always zero
	RegAT   Reg = 1  // assembler temporary
	RegV0   Reg = 2  // return value / syscall number
	RegV1   Reg = 3  // second return value
	RegA0   Reg = 4  // argument 0
	RegA1   Reg = 5  // argument 1
	RegA2   Reg = 6  // argument 2
	RegA3   Reg = 7  // argument 3
	RegT0   Reg = 8  // temporaries t0..t7 = r8..r15
	RegT7   Reg = 15 //
	RegS0   Reg = 16 // callee-saved s0..s7 = r16..r23
	RegS7   Reg = 23 //
	RegT8   Reg = 24 // extra temporaries
	RegT9   Reg = 25 //
	RegK0   Reg = 26 // reserved (unused)
	RegK1   Reg = 27 // reserved (unused)
	RegGP   Reg = 28 // global pointer (unused by the compiler)
	RegSP   Reg = 29 // stack pointer
	RegFP   Reg = 30 // frame pointer
	RegRA   Reg = 31 // return address
)

var regNames = [NumRegs]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// String returns the conventional dollar-prefixed register name, e.g. "$sp".
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "$" + regNames[r]
	}
	return fmt.Sprintf("$r%d", uint8(r))
}

// RegByName resolves a register name without the '$' prefix. Both symbolic
// names ("sp", "t3") and numeric names ("29", "11") are accepted.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "%d", &n); err == nil && n >= 0 && n < NumRegs {
		// Reject trailing junk such as "1x".
		if fmt.Sprintf("%d", n) == name {
			return Reg(n), true
		}
	}
	return 0, false
}

// Op is an opcode.
type Op uint8

// Opcodes. The groupings matter: the analysis and the fault injector use
// Class to decide which instructions are arithmetic (injectable), which are
// control (seed the CVar set), and which touch memory.
const (
	NOP Op = iota

	// Integer ALU, register forms: Rd = Rs op Rt.
	ADD
	SUB
	MUL
	DIV // traps on divide-by-zero
	REM // traps on divide-by-zero
	AND
	OR
	XOR
	NOR
	SLLV
	SRLV
	SRAV
	SLT
	SLTU

	// Integer ALU, immediate forms: Rd = Rs op Imm.
	ADDI
	ANDI
	ORI
	XORI
	SLL
	SRL
	SRA
	SLTI
	LUI // Rd = Imm << 16 (Rs ignored)

	// Float ALU (operands reinterpreted as binary32): Rd = Rs op Rt.
	ADDF
	SUBF
	MULF
	DIVF
	CVTIF // Rd = float(int(Rs))
	CVTFI // Rd = int(truncate(float(Rs)))
	CEQF  // Rd = 1 if float(Rs) == float(Rt) else 0
	CLTF  // Rd = 1 if float(Rs) <  float(Rt) else 0
	CLEF  // Rd = 1 if float(Rs) <= float(Rt) else 0

	// Memory: address is Rs + Imm.
	LW  // Rd = mem32[addr]
	LH  // Rd = sign-extended mem16[addr]
	LHU // Rd = zero-extended mem16[addr]
	LB  // Rd = sign-extended mem8[addr]
	LBU // Rd = zero-extended mem8[addr]
	SW  // mem32[addr] = Rt
	SH  // mem16[addr] = low 16 bits of Rt
	SB  // mem8[addr] = low 8 bits of Rt

	// Control. Branch/jump targets are absolute text indices in Imm after
	// assembly (the assembler resolves labels).
	BEQ  // if Rs == Rt goto Imm
	BNE  // if Rs != Rt goto Imm
	BLEZ // if int32(Rs) <= 0 goto Imm
	BGTZ // if int32(Rs) > 0 goto Imm
	BLTZ // if int32(Rs) < 0 goto Imm
	BGEZ // if int32(Rs) >= 0 goto Imm
	J    // goto Imm
	JAL  // ra = pc+1; goto Imm
	JR   // goto Rs (used only for returns: jr $ra)
	JALR // Rd = pc+1; goto Rs

	// Environment call: v0 selects the call, a0/a1 are arguments, v0
	// receives the result. See the sim package for the call table.
	SYSCALL

	// Error-detection trap. Emitted only by the internal/harden rewriter:
	// a redundancy check (duplicate-compare mismatch or control-flow
	// signature mismatch) branches here, and the simulator ends the run
	// with the Detected outcome. It reads and writes no registers.
	TRAPDET

	numOps // sentinel
)

// NumOps is the number of defined opcodes (excluding the sentinel).
const NumOps = int(numOps)

// Class partitions opcodes by their role in the analysis and fault model.
type Class uint8

const (
	// ClassNop is the no-op.
	ClassNop Class = iota
	// ClassArith covers every result-writing ALU instruction, integer and
	// float. These are the paper's injectable/taggable instructions.
	ClassArith
	// ClassLoad covers memory reads (they define a register but are not
	// injection sites; per the paper they terminate CVar def-use chains).
	ClassLoad
	// ClassStore covers memory writes.
	ClassStore
	// ClassControl covers branches, jumps, calls and returns.
	ClassControl
	// ClassSys is the environment call.
	ClassSys
)

type opInfo struct {
	name  string
	class Class
	// format controls disassembly and assembly operand shapes.
	format opFormat
}

type opFormat uint8

const (
	fmtNone opFormat = iota // nop, syscall
	fmt3R                   // op rd, rs, rt
	fmt2RI                  // op rd, rs, imm
	fmtRI                   // op rd, imm          (lui)
	fmt2R                   // op rd, rs           (cvtif, cvtfi)
	fmtMem                  // op r, imm(rs)       (loads: r=rd; stores: r=rt)
	fmtBr2                  // op rs, rt, target
	fmtBr1                  // op rs, target
	fmtJ                    // op target
	fmtJR                   // op rs
	fmtJALR                 // op rd, rs
)

var opTable = [numOps]opInfo{
	NOP: {"nop", ClassNop, fmtNone},

	ADD:  {"add", ClassArith, fmt3R},
	SUB:  {"sub", ClassArith, fmt3R},
	MUL:  {"mul", ClassArith, fmt3R},
	DIV:  {"div", ClassArith, fmt3R},
	REM:  {"rem", ClassArith, fmt3R},
	AND:  {"and", ClassArith, fmt3R},
	OR:   {"or", ClassArith, fmt3R},
	XOR:  {"xor", ClassArith, fmt3R},
	NOR:  {"nor", ClassArith, fmt3R},
	SLLV: {"sllv", ClassArith, fmt3R},
	SRLV: {"srlv", ClassArith, fmt3R},
	SRAV: {"srav", ClassArith, fmt3R},
	SLT:  {"slt", ClassArith, fmt3R},
	SLTU: {"sltu", ClassArith, fmt3R},

	ADDI: {"addi", ClassArith, fmt2RI},
	ANDI: {"andi", ClassArith, fmt2RI},
	ORI:  {"ori", ClassArith, fmt2RI},
	XORI: {"xori", ClassArith, fmt2RI},
	SLL:  {"sll", ClassArith, fmt2RI},
	SRL:  {"srl", ClassArith, fmt2RI},
	SRA:  {"sra", ClassArith, fmt2RI},
	SLTI: {"slti", ClassArith, fmt2RI},
	LUI:  {"lui", ClassArith, fmtRI},

	ADDF:  {"addf", ClassArith, fmt3R},
	SUBF:  {"subf", ClassArith, fmt3R},
	MULF:  {"mulf", ClassArith, fmt3R},
	DIVF:  {"divf", ClassArith, fmt3R},
	CVTIF: {"cvtif", ClassArith, fmt2R},
	CVTFI: {"cvtfi", ClassArith, fmt2R},
	CEQF:  {"ceqf", ClassArith, fmt3R},
	CLTF:  {"cltf", ClassArith, fmt3R},
	CLEF:  {"clef", ClassArith, fmt3R},

	LW:  {"lw", ClassLoad, fmtMem},
	LH:  {"lh", ClassLoad, fmtMem},
	LHU: {"lhu", ClassLoad, fmtMem},
	LB:  {"lb", ClassLoad, fmtMem},
	LBU: {"lbu", ClassLoad, fmtMem},
	SW:  {"sw", ClassStore, fmtMem},
	SH:  {"sh", ClassStore, fmtMem},
	SB:  {"sb", ClassStore, fmtMem},

	BEQ:  {"beq", ClassControl, fmtBr2},
	BNE:  {"bne", ClassControl, fmtBr2},
	BLEZ: {"blez", ClassControl, fmtBr1},
	BGTZ: {"bgtz", ClassControl, fmtBr1},
	BLTZ: {"bltz", ClassControl, fmtBr1},
	BGEZ: {"bgez", ClassControl, fmtBr1},
	J:    {"j", ClassControl, fmtJ},
	JAL:  {"jal", ClassControl, fmtJ},
	JR:   {"jr", ClassControl, fmtJR},
	JALR: {"jalr", ClassControl, fmtJALR},

	SYSCALL: {"syscall", ClassSys, fmtNone},
	TRAPDET: {"trapdet", ClassControl, fmtNone},
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpByName resolves a mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// ClassOf reports the instruction class of an opcode.
func ClassOf(o Op) Class {
	if int(o) < len(opTable) {
		return opTable[o].class
	}
	return ClassNop
}

// Instr is one decoded instruction. Operand meaning depends on the opcode:
// Rd is the destination register, Rs and Rt are sources, and Imm holds an
// immediate, a shift amount, a memory offset, or (after label resolution)
// an absolute text index for branch and jump targets.
type Instr struct {
	Op  Op
	Rd  Reg
	Rs  Reg
	Rt  Reg
	Imm int32

	// Sym is the unresolved target label for branches/jumps, or the data
	// symbol an immediate was derived from. It survives assembly purely for
	// diagnostics and round-trip tests.
	Sym string
	// Line is the 1-based source line in the assembly text, for diagnostics.
	Line int
}

// Class reports the instruction's class.
func (i Instr) Class() Class { return ClassOf(i.Op) }

// Dest returns the register this instruction writes, if any. The zero
// register is reported like any other destination; writes to it are
// discarded by the simulator but the analysis still sees the definition.
func (i Instr) Dest() (Reg, bool) {
	switch i.Class() {
	case ClassArith, ClassLoad:
		return i.Rd, true
	case ClassControl:
		switch i.Op {
		case JAL:
			return RegRA, true
		case JALR:
			return i.Rd, true
		}
	case ClassSys:
		return RegV0, true
	}
	return 0, false
}

// Uses returns the registers this instruction reads. The result is appended
// to buf to let hot paths avoid allocation.
func (i Instr) Uses(buf []Reg) []Reg {
	switch i.Op {
	case NOP, J, JAL, LUI, TRAPDET:
		return buf
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, NOR, SLLV, SRLV, SRAV, SLT, SLTU,
		ADDF, SUBF, MULF, DIVF, CEQF, CLTF, CLEF:
		return append(buf, i.Rs, i.Rt)
	case ADDI, ANDI, ORI, XORI, SLL, SRL, SRA, SLTI:
		return append(buf, i.Rs)
	case CVTIF, CVTFI:
		return append(buf, i.Rs)
	case LW, LH, LHU, LB, LBU:
		return append(buf, i.Rs)
	case SW, SH, SB:
		return append(buf, i.Rt, i.Rs)
	case BEQ, BNE:
		return append(buf, i.Rs, i.Rt)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return append(buf, i.Rs)
	case JR, JALR:
		return append(buf, i.Rs)
	case SYSCALL:
		return append(buf, RegV0, RegA0, RegA1)
	}
	return buf
}

// IsBranchOrJump reports whether executing the instruction can change the
// program counter to something other than pc+1.
func (i Instr) IsBranchOrJump() bool { return i.Class() == ClassControl }

// BranchTarget returns the statically known control-transfer target (an
// absolute text index, valid after label resolution) for direct branches
// and jumps. Register-indirect transfers (JR, JALR) and non-control
// instructions report ok == false. Predecoding uses this to pre-convert
// targets once per build instead of once per taken branch.
func (i Instr) BranchTarget() (target int, ok bool) {
	switch i.Op {
	case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, J, JAL:
		return int(i.Imm), true
	}
	return 0, false
}

// IsInjectable reports whether the instruction is a legal fault-injection
// site under the paper's model: a result-writing arithmetic instruction.
// Writes to the zero register are excluded (flipping a discarded result is
// not observable, and the compiler never emits them).
func (i Instr) IsInjectable() bool {
	return i.Class() == ClassArith && i.Rd != RegZero
}

// MemBase returns the address base register for loads and stores.
func (i Instr) MemBase() (Reg, bool) {
	switch i.Class() {
	case ClassLoad, ClassStore:
		return i.Rs, true
	}
	return 0, false
}

// StoredValue returns the register holding the value written by a store.
func (i Instr) StoredValue() (Reg, bool) {
	if i.Class() == ClassStore {
		return i.Rt, true
	}
	return 0, false
}
