package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{
		RegZero: "$zero", RegAT: "$at", RegV0: "$v0", RegA0: "$a0",
		RegT0: "$t0", RegT8: "$t8", RegS0: "$s0", RegSP: "$sp",
		RegFP: "$fp", RegRA: "$ra",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("reg %d = %q, want %q", r, r, want)
		}
	}
}

func TestRegByName(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		r := Reg(i)
		name := r.String()[1:]
		got, ok := RegByName(name)
		if !ok || got != r {
			t.Errorf("RegByName(%q) = %v,%v", name, got, ok)
		}
	}
	// Numeric aliases.
	if r, ok := RegByName("29"); !ok || r != RegSP {
		t.Errorf("RegByName(29) = %v,%v", r, ok)
	}
	for _, bad := range []string{"", "q1", "32", "-1", "1x", "sp2"} {
		if _, ok := RegByName(bad); ok {
			t.Errorf("RegByName(%q) succeeded", bad)
		}
	}
}

func TestOpNameRoundTrip(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		name := op.String()
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v, want %v", name, got, ok, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Errorf("OpByName(bogus) succeeded")
	}
}

func TestClassPartition(t *testing.T) {
	// Every opcode has exactly one class and the partition matches the
	// documented grouping.
	arith := []Op{ADD, SUB, MUL, DIV, REM, AND, OR, XOR, NOR, SLLV, SRLV, SRAV,
		SLT, SLTU, ADDI, ANDI, ORI, XORI, SLL, SRL, SRA, SLTI, LUI,
		ADDF, SUBF, MULF, DIVF, CVTIF, CVTFI, CEQF, CLTF, CLEF}
	for _, op := range arith {
		if ClassOf(op) != ClassArith {
			t.Errorf("%s class = %v, want arith", op, ClassOf(op))
		}
	}
	for _, op := range []Op{LW, LH, LHU, LB, LBU} {
		if ClassOf(op) != ClassLoad {
			t.Errorf("%s class = %v, want load", op, ClassOf(op))
		}
	}
	for _, op := range []Op{SW, SH, SB} {
		if ClassOf(op) != ClassStore {
			t.Errorf("%s class = %v, want store", op, ClassOf(op))
		}
	}
	for _, op := range []Op{BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, J, JAL, JR, JALR} {
		if ClassOf(op) != ClassControl {
			t.Errorf("%s class = %v, want control", op, ClassOf(op))
		}
	}
	if ClassOf(SYSCALL) != ClassSys || ClassOf(NOP) != ClassNop {
		t.Errorf("syscall/nop misclassified")
	}
}

func TestDest(t *testing.T) {
	cases := []struct {
		in     Instr
		reg    Reg
		hasDst bool
	}{
		{Instr{Op: ADD, Rd: 5}, 5, true},
		{Instr{Op: LW, Rd: 7}, 7, true},
		{Instr{Op: SW, Rt: 7}, 0, false},
		{Instr{Op: BEQ}, 0, false},
		{Instr{Op: J}, 0, false},
		{Instr{Op: JAL}, RegRA, true},
		{Instr{Op: JALR, Rd: 31}, 31, true},
		{Instr{Op: JR}, 0, false},
		{Instr{Op: SYSCALL}, RegV0, true},
		{Instr{Op: NOP}, 0, false},
	}
	for _, c := range cases {
		r, ok := c.in.Dest()
		if ok != c.hasDst || (ok && r != c.reg) {
			t.Errorf("%s Dest() = %v,%v, want %v,%v", c.in.Op, r, ok, c.reg, c.hasDst)
		}
	}
}

func TestUses(t *testing.T) {
	has := func(rs []Reg, want ...Reg) bool {
		if len(rs) != len(want) {
			return false
		}
		for i := range rs {
			if rs[i] != want[i] {
				return false
			}
		}
		return true
	}
	if u := (Instr{Op: ADD, Rs: 1, Rt: 2}).Uses(nil); !has(u, 1, 2) {
		t.Errorf("add uses %v", u)
	}
	if u := (Instr{Op: ADDI, Rs: 3}).Uses(nil); !has(u, 3) {
		t.Errorf("addi uses %v", u)
	}
	if u := (Instr{Op: LUI}).Uses(nil); !has(u) {
		t.Errorf("lui uses %v", u)
	}
	if u := (Instr{Op: SW, Rs: 4, Rt: 5}).Uses(nil); !has(u, 5, 4) {
		t.Errorf("sw uses %v", u)
	}
	if u := (Instr{Op: SYSCALL}).Uses(nil); !has(u, RegV0, RegA0, RegA1) {
		t.Errorf("syscall uses %v", u)
	}
	if u := (Instr{Op: JR, Rs: RegRA}).Uses(nil); !has(u, RegRA) {
		t.Errorf("jr uses %v", u)
	}
}

// TestInjectablePredicate: injectable iff arithmetic with non-zero dest.
func TestInjectablePredicate(t *testing.T) {
	f := func(opRaw, rd uint8) bool {
		op := Op(opRaw % uint8(NumOps))
		in := Instr{Op: op, Rd: Reg(rd % 32)}
		want := ClassOf(op) == ClassArith && in.Rd != RegZero
		return in.IsInjectable() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemHelpers(t *testing.T) {
	if base, ok := (Instr{Op: LW, Rs: 9}).MemBase(); !ok || base != 9 {
		t.Errorf("lw MemBase = %v,%v", base, ok)
	}
	if base, ok := (Instr{Op: SB, Rs: 8}).MemBase(); !ok || base != 8 {
		t.Errorf("sb MemBase = %v,%v", base, ok)
	}
	if _, ok := (Instr{Op: ADD}).MemBase(); ok {
		t.Errorf("add has MemBase")
	}
	if v, ok := (Instr{Op: SW, Rt: 3}).StoredValue(); !ok || v != 3 {
		t.Errorf("sw StoredValue = %v,%v", v, ok)
	}
	if _, ok := (Instr{Op: LW}).StoredValue(); ok {
		t.Errorf("lw has StoredValue")
	}
}

func TestBranchTarget(t *testing.T) {
	// Every direct branch and jump resolves its Imm as an absolute text
	// index; register-indirect and non-control ops resolve nothing.
	direct := []Op{BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, J, JAL}
	for _, op := range direct {
		if tgt, ok := (Instr{Op: op, Imm: 17}).BranchTarget(); !ok || tgt != 17 {
			t.Errorf("%s BranchTarget = %v,%v, want 17,true", op, tgt, ok)
		}
	}
	for _, op := range []Op{JR, JALR, ADD, ADDI, LW, SW, SYSCALL, TRAPDET, NOP} {
		if _, ok := (Instr{Op: op, Imm: 17}).BranchTarget(); ok {
			t.Errorf("%s has a BranchTarget", op)
		}
	}
	// BranchTarget covers exactly the direct-transfer subset of the
	// control class: everything except register-indirect jumps and the
	// fall-through trapdet check.
	for op := Op(0); int(op) < NumOps; op++ {
		_, ok := (Instr{Op: op}).BranchTarget()
		noTarget := op == JR || op == JALR || op == TRAPDET
		if ok != ((Instr{Op: op}).IsBranchOrJump() && !noTarget) {
			t.Errorf("%s: BranchTarget ok=%v inconsistent with IsBranchOrJump", op, ok)
		}
	}
}

func TestValidate(t *testing.T) {
	good := &Program{
		Text:  []Instr{{Op: ADDI, Rd: 2}, {Op: BEQ, Imm: 0}, {Op: JR, Rs: RegRA}},
		Funcs: []FuncInfo{{Name: "f", Start: 0, End: 3}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good program invalid: %v", err)
	}
	bad := &Program{Text: []Instr{{Op: J, Imm: 99}}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("out-of-range target accepted")
	}
	empty := &Program{}
	if err := empty.Validate(); err == nil {
		t.Fatalf("empty program accepted")
	}
	overlap := &Program{
		Text:  []Instr{{Op: NOP}, {Op: NOP}},
		Funcs: []FuncInfo{{Name: "a", Start: 0, End: 2}, {Name: "b", Start: 1, End: 2}},
	}
	if err := overlap.Validate(); err == nil {
		t.Fatalf("overlapping functions accepted")
	}
	gap := &Program{
		Text:  []Instr{{Op: NOP}, {Op: NOP}},
		Funcs: []FuncInfo{{Name: "a", Start: 0, End: 1}},
	}
	if err := gap.Validate(); err == nil {
		t.Fatalf("function gap accepted")
	}
}

func TestFuncAt(t *testing.T) {
	p := &Program{
		Text: make([]Instr, 10),
		Funcs: []FuncInfo{
			{Name: "a", Start: 0, End: 4},
			{Name: "b", Start: 4, End: 10},
		},
	}
	for idx, want := range map[int]string{0: "a", 3: "a", 4: "b", 9: "b"} {
		f, ok := p.FuncAt(idx)
		if !ok || f.Name != want {
			t.Errorf("FuncAt(%d) = %v,%v, want %s", idx, f.Name, ok, want)
		}
	}
	if _, ok := p.FuncAt(10); ok {
		t.Errorf("FuncAt(10) succeeded")
	}
}

func TestDisasmFormats(t *testing.T) {
	cases := map[string]Instr{
		"add $t0, $t1, $t2": {Op: ADD, Rd: 8, Rs: 9, Rt: 10},
		"addi $t0, $t1, -4": {Op: ADDI, Rd: 8, Rs: 9, Imm: -4},
		"lui $t0, 18":       {Op: LUI, Rd: 8, Imm: 18},
		"cvtif $t0, $t1":    {Op: CVTIF, Rd: 8, Rs: 9},
		"lw $t0, 8($sp)":    {Op: LW, Rd: 8, Rs: RegSP, Imm: 8},
		"sw $t0, -4($fp)":   {Op: SW, Rt: 8, Rs: RegFP, Imm: -4},
		"beq $t0, $t1, @7":  {Op: BEQ, Rs: 8, Rt: 9, Imm: 7},
		"blez $t0, @3":      {Op: BLEZ, Rs: 8, Imm: 3},
		"j @0":              {Op: J},
		"jal target":        {Op: JAL, Sym: "target"},
		"jr $ra":            {Op: JR, Rs: RegRA},
		"jalr $ra, $t0":     {Op: JALR, Rd: RegRA, Rs: 8},
		"syscall":           {Op: SYSCALL},
		"nop":               {Op: NOP},
	}
	for want, in := range cases {
		if got := Disasm(in); got != want {
			t.Errorf("Disasm(%v) = %q, want %q", in.Op, got, want)
		}
	}
}

func TestDumpContainsFunctionsAndLabels(t *testing.T) {
	p := &Program{
		Text:    []Instr{{Op: ADDI, Rd: 2, Imm: 1}, {Op: JR, Rs: RegRA}},
		Symbols: map[string]int{"f": 0, "exit": 1},
		Funcs:   []FuncInfo{{Name: "f", Start: 0, End: 2, Tolerant: true}},
	}
	d := p.Dump()
	for _, want := range []string{".func f tolerant", "exit:", "addi $v0, $zero, 1"} {
		if !contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
