package isa

import (
	"fmt"
	"sort"
	"strings"
)

// DataBase is the address at which the data segment is loaded.
const DataBase uint32 = 0x1000

// TextBase is the architectural address of text index 0. Code addresses
// held in registers (return addresses written by jal, targets consumed by
// jr) are TextBase + index, mirroring the conventional MIPS .text base, so
// a corrupted return address of 0 or garbage lands outside the text segment
// and crashes, exactly as a wild jump does under SimpleScalar.
const TextBase uint32 = 0x0040_0000

// FuncInfo describes one assembled function: the half-open text index range
// [Start, End) and whether the programmer marked it error-tolerant. Only
// instructions inside tolerant functions may be tagged low-reliability by
// the analysis, mirroring the paper's "user-identified eligible functions".
type FuncInfo struct {
	Name     string
	Start    int
	End      int
	Tolerant bool
}

// Program is a fully assembled program: text, initial data image, and the
// symbol tables needed by the analysis, the simulator, and diagnostics.
type Program struct {
	Text []Instr
	// Data is the initial data segment image, loaded at DataBase.
	Data []byte
	// Symbols maps text labels to instruction indices.
	Symbols map[string]int
	// DataSyms maps data labels to absolute addresses.
	DataSyms map[string]uint32
	// Funcs lists functions in text order. Every instruction belongs to
	// exactly one function.
	Funcs []FuncInfo
	// Entry is the text index where execution starts.
	Entry int
}

// FuncByName returns the named function.
func (p *Program) FuncByName(name string) (FuncInfo, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return FuncInfo{}, false
}

// FuncAt returns the function containing text index idx.
func (p *Program) FuncAt(idx int) (FuncInfo, bool) {
	// Funcs are sorted by Start.
	i := sort.Search(len(p.Funcs), func(i int) bool { return p.Funcs[i].End > idx })
	if i < len(p.Funcs) && idx >= p.Funcs[i].Start {
		return p.Funcs[i], true
	}
	return FuncInfo{}, false
}

// Validate checks structural invariants: branch/jump targets in range,
// functions sorted, non-overlapping and covering, entry in range. The
// assembler and compiler always produce valid programs; Validate exists so
// tests and hand-built programs fail fast.
func (p *Program) Validate() error {
	if len(p.Text) == 0 {
		return fmt.Errorf("isa: empty text segment")
	}
	if p.Entry < 0 || p.Entry >= len(p.Text) {
		return fmt.Errorf("isa: entry %d out of range [0,%d)", p.Entry, len(p.Text))
	}
	for idx, in := range p.Text {
		switch in.Op {
		case BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ, J, JAL:
			if in.Imm < 0 || int(in.Imm) >= len(p.Text) {
				return fmt.Errorf("isa: instr %d (%s) target %d out of range", idx, in.Op, in.Imm)
			}
		}
	}
	prevEnd := 0
	for _, f := range p.Funcs {
		if f.Start != prevEnd {
			return fmt.Errorf("isa: function %q starts at %d, want %d (functions must tile the text)", f.Name, f.Start, prevEnd)
		}
		if f.End <= f.Start || f.End > len(p.Text) {
			return fmt.Errorf("isa: function %q has bad range [%d,%d)", f.Name, f.Start, f.End)
		}
		prevEnd = f.End
	}
	if len(p.Funcs) > 0 && prevEnd != len(p.Text) {
		return fmt.Errorf("isa: functions cover [0,%d) but text has %d instructions", prevEnd, len(p.Text))
	}
	return nil
}

// Disasm formats one instruction the way the assembler would accept it.
func (p *Program) Disasm(i Instr) string { return Disasm(i) }

// Disasm formats one instruction in assembler syntax. Branch and jump
// targets are printed as absolute text indices prefixed with '@' when no
// symbol is attached.
func Disasm(i Instr) string {
	target := func() string {
		if i.Sym != "" {
			return i.Sym
		}
		return fmt.Sprintf("@%d", i.Imm)
	}
	switch opTable[i.Op].format {
	case fmtNone:
		return i.Op.String()
	case fmt3R:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs, i.Rt)
	case fmt2RI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs, i.Imm)
	case fmtRI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case fmt2R:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs)
	case fmtMem:
		r := i.Rd
		if i.Class() == ClassStore {
			r = i.Rt
		}
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, r, i.Imm, i.Rs)
	case fmtBr2:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rs, i.Rt, target())
	case fmtBr1:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rs, target())
	case fmtJ:
		return fmt.Sprintf("%s %s", i.Op, target())
	case fmtJR:
		return fmt.Sprintf("%s %s", i.Op, i.Rs)
	case fmtJALR:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs)
	}
	return i.Op.String()
}

// Dump renders the whole text segment with labels and function headers,
// mainly for debugging compiler output.
func (p *Program) Dump() string {
	labels := make(map[int][]string)
	for name, idx := range p.Symbols {
		labels[idx] = append(labels[idx], name)
	}
	for _, names := range labels {
		sort.Strings(names)
	}
	var b strings.Builder
	fi := 0
	for idx, in := range p.Text {
		for fi < len(p.Funcs) && p.Funcs[fi].Start == idx {
			attr := ""
			if p.Funcs[fi].Tolerant {
				attr = " tolerant"
			}
			fmt.Fprintf(&b, "\n.func %s%s\n", p.Funcs[fi].Name, attr)
			fi++
		}
		for _, l := range labels[idx] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%6d\t%s\n", idx, Disasm(in))
	}
	return b.String()
}

// Format returns the operand format discriminator for an opcode; the
// assembler uses it to parse operands uniformly.
func Format(o Op) uint8 { return uint8(opTable[o].format) }

// Operand format constants exported for the assembler. They mirror the
// internal opFormat values.
const (
	FmtNone = uint8(fmtNone)
	Fmt3R   = uint8(fmt3R)
	Fmt2RI  = uint8(fmt2RI)
	FmtRI   = uint8(fmtRI)
	Fmt2R   = uint8(fmt2R)
	FmtMem  = uint8(fmtMem)
	FmtBr2  = uint8(fmtBr2)
	FmtBr1  = uint8(fmtBr1)
	FmtJ    = uint8(fmtJ)
	FmtJR   = uint8(fmtJR)
	FmtJALR = uint8(fmtJALR)
)
