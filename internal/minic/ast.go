package minic

// Type is a MiniC value type. Expressions only ever have type int or float;
// char exists as a storage type for byte arrays (loads zero-extend to int,
// stores truncate).
type Type uint8

const (
	TypeVoid Type = iota
	TypeInt
	TypeChar
	TypeFloat
)

func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeFloat:
		return "float"
	}
	return "?"
}

// value returns the expression type a load of this storage type produces.
func (t Type) value() Type {
	if t == TypeChar {
		return TypeInt
	}
	return t
}

// Program is a parsed and checked compilation unit.
type Program struct {
	Globals []*Global
	Funcs   []*Func
}

// Global is a file-scope variable: a scalar or a one-dimensional array.
type Global struct {
	Name    string
	Elem    Type // element (or scalar) storage type
	IsArray bool
	Size    int // elements; 1 for scalars
	// Init holds initializer constants, one per element (missing elements
	// are zero). Ints hold int/char values; float constants are stored in
	// Floats at the same index with Ints entry ignored.
	Init []constVal
	// Const marks `const` declarations; const int scalars with literal
	// initializers may be used as array sizes.
	Const bool
	Line  int
}

type constVal struct {
	f       float64
	i       int64
	isFloat bool
}

// Param is a function parameter: a scalar or a pointer to an element type.
type Param struct {
	Name string
	Elem Type
	Ptr  bool
	Line int

	decl *Decl // synthesized by the checker
}

// Func is a function definition.
type Func struct {
	Name     string
	Ret      Type
	Params   []Param
	Body     *Block
	Tolerant bool
	Line     int

	allDecls []*Decl // params + locals, collected by the checker
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list introducing a scope.
type Block struct {
	Stmts []Stmt
	Line  int
}

// Decl declares a scalar local with an optional initializer. The checker
// also synthesizes one Decl per function parameter (pointer parameters set
// isPtr and elem).
type Decl struct {
	Name string
	T    Type
	Init Expr
	Line int

	isPtr bool
	elem  Type
	// Location, assigned by codegen: the first eight declarations of a
	// function (parameters first) live in callee-saved registers $s0–$s7,
	// the rest in fp-relative stack slots. Register residency matters
	// beyond speed: the paper's analysis tracks def-use chains through
	// registers only, so loop counters must stay in registers for their
	// protection to mirror compiled C code.
	inReg  bool
	regIdx int
	slot   int
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	E    Expr
	Line int
}

// If is if/else.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// While is a while loop.
type While struct {
	Cond Expr
	Body Stmt
	Line int
}

// For is for(init; cond; post). Any clause may be nil; init and post are
// expressions (typically assignments).
type For struct {
	Init Expr
	Cond Expr
	Post Expr
	Body Stmt
	Line int
}

// Break exits the innermost loop.
type Break struct{ Line int }

// Continue jumps to the innermost loop's next iteration.
type Continue struct{ Line int }

// Return returns from the function, with a value unless the function is void.
type Return struct {
	E    Expr // nil for void
	Line int
}

func (*Block) stmtNode()    {}
func (*Decl) stmtNode()     {}
func (*ExprStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Return) stmtNode()   {}

// Expr is an expression node. The checker fills in typ.
type Expr interface {
	exprNode()
	Type() Type
	Pos() int
}

type exprBase struct {
	typ  Type
	line int
}

func (e *exprBase) exprNode()  {}
func (e *exprBase) Type() Type { return e.typ }
func (e *exprBase) Pos() int   { return e.line }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	V int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	V float64
}

// refKind classifies what an identifier resolved to.
type refKind uint8

const (
	refLocal  refKind = iota // scalar local or scalar parameter (in a stack slot)
	refGlobal                // global scalar
	refArray                 // global array (usable as pointer argument or indexed)
	refPtr                   // pointer parameter (in a stack slot)
)

// VarRef is an identifier use.
type VarRef struct {
	exprBase
	Name string

	kind refKind
	elem Type // element type for refArray/refPtr; storage type otherwise
	decl *Decl
	gbl  *Global
	slot int // stack slot for locals/params, assigned by codegen
}

// Index is base[idx] where base names a global array or pointer parameter.
type Index struct {
	exprBase
	Base *VarRef
	Idx  Expr
}

// Unary is -x, !x or ~x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is a binary operation. Assignments are separate.
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Assign is lhs = rhs, usable as an expression whose value is rhs.
type Assign struct {
	exprBase
	LHS Expr // *VarRef or *Index
	RHS Expr
}

// Call invokes a function or builtin.
type Call struct {
	exprBase
	Name string
	Args []Expr

	fn      *Func // nil for builtins
	builtin *builtinInfo
}

// Cast is (int)x or (float)x.
type Cast struct {
	exprBase
	To Type
	X  Expr
}

// builtinInfo describes one I/O builtin.
type builtinInfo struct {
	name    string
	ret     Type
	nargs   int
	runtime string // runtime assembly symbol
}

var builtins = map[string]*builtinInfo{
	"inb":  {"inb", TypeInt, 0, "__inb"},
	"inh":  {"inh", TypeInt, 0, "__inh"},
	"inw":  {"inw", TypeInt, 0, "__inw"},
	"outb": {"outb", TypeVoid, 1, "__outb"},
	"outh": {"outh", TypeVoid, 1, "__outh"},
	"outw": {"outw", TypeVoid, 1, "__outw"},
	"exit": {"exit", TypeVoid, 1, "__exit"},
}
