package minic

import "fmt"

// Check resolves names and types across the program. It must succeed before
// Gen is called; Gen assumes a fully annotated AST.
func Check(prog *Program) error {
	c := &checker{
		prog:    prog,
		funcs:   make(map[string]*Func),
		globals: make(map[string]*Global),
	}
	c.collect()
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

type checker struct {
	prog    *Program
	funcs   map[string]*Func
	globals map[string]*Global
	errs    []*Error

	cur       *Func
	scopes    []map[string]*Decl
	loopDepth int
}

func (c *checker) errorf(line int, format string, args ...any) {
	if len(c.errs) < 16 {
		c.errs = append(c.errs, &Error{Line: line, Col: 1, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) collect() {
	for _, g := range c.prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			c.errorf(g.Line, "duplicate global %q", g.Name)
			continue
		}
		if builtins[g.Name] != nil {
			c.errorf(g.Line, "%q is a builtin name", g.Name)
			continue
		}
		if !g.IsArray && g.Elem == TypeChar {
			g.Elem = TypeInt // scalar char globals are stored as words
		}
		c.globals[g.Name] = g
	}
	for _, f := range c.prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			c.errorf(f.Line, "duplicate function %q", f.Name)
			continue
		}
		if builtins[f.Name] != nil {
			c.errorf(f.Line, "%q is a builtin name", f.Name)
			continue
		}
		if _, clash := c.globals[f.Name]; clash {
			c.errorf(f.Line, "%q is already a global", f.Name)
			continue
		}
		c.funcs[f.Name] = f
	}
	main, ok := c.funcs["main"]
	switch {
	case !ok:
		c.errorf(1, "missing function main")
	case main.Ret != TypeInt || len(main.Params) != 0:
		c.errorf(main.Line, "main must be: int main()")
	}
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*Decl)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(d *Decl) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[d.Name]; dup {
		c.errorf(d.Line, "duplicate declaration of %q", d.Name)
		return
	}
	top[d.Name] = d
	c.cur.allDecls = append(c.cur.allDecls, d)
}

func (c *checker) lookup(name string) *Decl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d, ok := c.scopes[i][name]; ok {
			return d
		}
	}
	return nil
}

func (c *checker) checkFunc(f *Func) {
	c.cur = f
	c.scopes = nil
	c.loopDepth = 0
	c.pushScope()
	if len(f.Params) > 10 {
		c.errorf(f.Line, "too many parameters (%d > 10)", len(f.Params))
	}
	for i := range f.Params {
		pr := &f.Params[i]
		d := &Decl{Name: pr.Name, T: pr.Elem.value(), Line: pr.Line, isPtr: pr.Ptr, elem: pr.Elem}
		pr.decl = d
		c.declare(d)
	}
	c.checkBlock(f.Body)
	c.popScope()
	c.cur = nil
}

func (c *checker) checkBlock(b *Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		c.checkBlock(s)
	case *Decl:
		if s.Init != nil {
			t := c.checkExpr(s.Init, false)
			if t != s.T {
				c.errorf(s.Line, "cannot initialize %s %q with %s", s.T, s.Name, t)
			}
		}
		c.declare(s)
	case *ExprStmt:
		c.checkExpr(s.E, false)
	case *If:
		c.cond(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *While:
		c.cond(s.Cond)
		c.loopDepth++
		c.checkStmt(s.Body)
		c.loopDepth--
	case *For:
		if s.Init != nil {
			c.checkExpr(s.Init, false)
		}
		if s.Cond != nil {
			c.cond(s.Cond)
		}
		if s.Post != nil {
			c.checkExpr(s.Post, false)
		}
		c.loopDepth++
		c.checkStmt(s.Body)
		c.loopDepth--
	case *Break:
		if c.loopDepth == 0 {
			c.errorf(s.Line, "break outside loop")
		}
	case *Continue:
		if c.loopDepth == 0 {
			c.errorf(s.Line, "continue outside loop")
		}
	case *Return:
		switch {
		case c.cur.Ret == TypeVoid && s.E != nil:
			c.errorf(s.Line, "void function %q returns a value", c.cur.Name)
		case c.cur.Ret != TypeVoid && s.E == nil:
			c.errorf(s.Line, "function %q must return %s", c.cur.Name, c.cur.Ret)
		case s.E != nil:
			if t := c.checkExpr(s.E, false); t != c.cur.Ret {
				c.errorf(s.Line, "function %q returns %s, not %s", c.cur.Name, c.cur.Ret, t)
			}
		}
	}
}

func (c *checker) cond(e Expr) {
	if t := c.checkExpr(e, false); t != TypeInt {
		c.errorf(e.Pos(), "condition must be int, found %s", t)
	}
}

// checkExpr types e and returns its type. allowPtr permits a bare array or
// pointer name (used only for pointer arguments in calls).
func (c *checker) checkExpr(e Expr, allowPtr bool) Type {
	switch e := e.(type) {
	case *IntLit:
		e.typ = TypeInt
	case *FloatLit:
		e.typ = TypeFloat
	case *VarRef:
		c.resolve(e)
		if (e.kind == refArray || e.kind == refPtr) && !allowPtr {
			c.errorf(e.Pos(), "%q is an array/pointer and cannot be used as a value", e.Name)
			e.typ = TypeInt
		}
	case *Index:
		c.resolve(e.Base)
		if e.Base.kind != refArray && e.Base.kind != refPtr {
			c.errorf(e.Pos(), "%q is not indexable", e.Base.Name)
			e.typ = TypeInt
			c.checkExpr(e.Idx, false)
			return e.typ
		}
		if t := c.checkExpr(e.Idx, false); t != TypeInt {
			c.errorf(e.Idx.Pos(), "array index must be int, found %s", t)
		}
		e.typ = e.Base.elem.value()
	case *Unary:
		t := c.checkExpr(e.X, false)
		switch e.Op {
		case "-":
			if t != TypeInt && t != TypeFloat {
				c.errorf(e.Pos(), "operator - needs int or float, found %s", t)
				t = TypeInt
			}
			e.typ = t
		case "!", "~":
			if t != TypeInt {
				c.errorf(e.Pos(), "operator %s needs int, found %s", e.Op, t)
			}
			e.typ = TypeInt
		}
	case *Binary:
		lt := c.checkExpr(e.L, false)
		rt := c.checkExpr(e.R, false)
		if lt != rt {
			c.errorf(e.Pos(), "operator %s has mismatched operands %s and %s (use explicit casts)", e.Op, lt, rt)
			rt = lt
		}
		switch e.Op {
		case "&&", "||", "<<", ">>", "&", "|", "^", "%":
			if lt != TypeInt {
				c.errorf(e.Pos(), "operator %s needs int operands, found %s", e.Op, lt)
			}
			e.typ = TypeInt
		case "==", "!=", "<", "<=", ">", ">=":
			e.typ = TypeInt
		default: // + - * /
			if lt != TypeInt && lt != TypeFloat {
				c.errorf(e.Pos(), "operator %s needs numeric operands, found %s", e.Op, lt)
				lt = TypeInt
			}
			e.typ = lt
		}
	case *Assign:
		rt := c.checkExpr(e.RHS, false)
		var lt Type
		switch lhs := e.LHS.(type) {
		case *VarRef:
			c.resolve(lhs)
			switch lhs.kind {
			case refLocal:
				lt = lhs.decl.T
			case refGlobal:
				lt = lhs.gbl.Elem.value()
			default:
				c.errorf(e.Pos(), "cannot assign to array/pointer %q", lhs.Name)
				lt = rt
			}
		case *Index:
			lt = c.checkExpr(lhs, false)
		default:
			c.errorf(e.Pos(), "left side of assignment is not assignable")
			lt = rt
		}
		if lt != rt {
			c.errorf(e.Pos(), "cannot assign %s to %s lvalue (use explicit casts)", rt, lt)
		}
		e.typ = rt
	case *Call:
		c.checkCall(e)
	case *Cast:
		t := c.checkExpr(e.X, false)
		if t != TypeInt && t != TypeFloat {
			c.errorf(e.Pos(), "cannot cast %s", t)
		}
		e.typ = e.To
	}
	return e.Type()
}

func (c *checker) checkCall(e *Call) {
	if b, ok := builtins[e.Name]; ok {
		e.builtin = b
		e.typ = b.ret
		if len(e.Args) != b.nargs {
			c.errorf(e.Pos(), "%s takes %d arguments, got %d", b.name, b.nargs, len(e.Args))
			return
		}
		for _, a := range e.Args {
			if t := c.checkExpr(a, false); t != TypeInt {
				c.errorf(a.Pos(), "%s argument must be int, found %s", b.name, t)
			}
		}
		return
	}
	f, ok := c.funcs[e.Name]
	if !ok {
		c.errorf(e.Pos(), "undefined function %q", e.Name)
		e.typ = TypeInt
		for _, a := range e.Args {
			c.checkExpr(a, true)
		}
		return
	}
	e.fn = f
	e.typ = f.Ret
	if len(e.Args) != len(f.Params) {
		c.errorf(e.Pos(), "%s takes %d arguments, got %d", f.Name, len(f.Params), len(e.Args))
		return
	}
	for i, a := range e.Args {
		p := f.Params[i]
		if p.Ptr {
			v, isRef := a.(*VarRef)
			if !isRef {
				c.errorf(a.Pos(), "argument %d of %s must be an array or pointer name", i+1, f.Name)
				continue
			}
			c.checkExpr(v, true)
			if v.kind != refArray && v.kind != refPtr {
				c.errorf(a.Pos(), "argument %d of %s must be an array or pointer, %q is not", i+1, f.Name, v.Name)
				continue
			}
			if v.elem != p.Elem {
				c.errorf(a.Pos(), "argument %d of %s wants %s*, found %s*", i+1, f.Name, p.Elem, v.elem)
			}
			continue
		}
		if t := c.checkExpr(a, false); t != p.Elem.value() {
			c.errorf(a.Pos(), "argument %d of %s wants %s, found %s", i+1, f.Name, p.Elem.value(), t)
		}
	}
}

func (c *checker) resolve(v *VarRef) {
	if d := c.lookup(v.Name); d != nil {
		v.decl = d
		if d.isPtr {
			v.kind = refPtr
			v.elem = d.elem
			v.typ = TypeInt
		} else {
			v.kind = refLocal
			v.typ = d.T
		}
		return
	}
	if g, ok := c.globals[v.Name]; ok {
		v.gbl = g
		if g.IsArray {
			v.kind = refArray
			v.elem = g.Elem
			v.typ = TypeInt
		} else {
			v.kind = refGlobal
			v.typ = g.Elem.value()
		}
		return
	}
	c.errorf(v.Pos(), "undefined variable %q", v.Name)
	v.kind = refLocal
	v.decl = &Decl{Name: v.Name, T: TypeInt}
	v.typ = TypeInt
}
