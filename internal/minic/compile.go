package minic

import (
	"etap/internal/asm"
	"etap/internal/isa"
)

// Build compiles MiniC source all the way to an executable program:
// parse → check → generate assembly → assemble.
func Build(src string) (*isa.Program, error) {
	text, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(text)
}
