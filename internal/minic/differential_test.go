package minic

import (
	"bytes"
	"math/rand"
	"testing"

	"etap/internal/sim"
)

// TestInterpreterAgreesOnHandwritten runs the interpreter over a few
// hand-written programs with known answers.
func TestInterpreterAgreesOnHandwritten(t *testing.T) {
	cases := []struct {
		name string
		src  string
		in   []byte
		exit int32
		out  []byte
	}{
		{
			name: "fib",
			src: `int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
                  int main() { return fib(12); }`,
			exit: 144,
		},
		{
			name: "io echo",
			src: `int main() {
                      int c = inb();
                      while (c >= 0) { outb(c + 1); c = inb(); }
                      return 0;
                  }`,
			in:  []byte{10, 20, 30},
			out: []byte{11, 21, 31},
		},
		{
			name: "floats",
			src: `int main() {
                      float acc = 0.0;
                      int i;
                      for (i = 1; i <= 4; i = i + 1) { acc = acc + (float)i / 2.0; }
                      return (int)acc; // 0.5+1+1.5+2 = 5
                  }`,
			exit: 5,
		},
		{
			name: "exit builtin",
			src:  `int main() { exit(9); return 1; }`,
			exit: 9,
		},
		{
			name: "globals and arrays",
			src: `int total;
                  int data[4] = {3, 1, 4, 1};
                  void sum(int *p, int n) {
                      int i;
                      for (i = 0; i < n; i = i + 1) { total = total + p[i]; }
                  }
                  int main() { sum(data, 4); return total; }`,
			exit: 9,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Interpret(c.src, c.in)
			if err != nil {
				t.Fatalf("interpret: %v", err)
			}
			if res.ExitCode != c.exit {
				t.Fatalf("exit = %d, want %d", res.ExitCode, c.exit)
			}
			if c.out != nil && !bytes.Equal(res.Output, c.out) {
				t.Fatalf("output = %v, want %v", res.Output, c.out)
			}
		})
	}
}

func TestInterpreterTraps(t *testing.T) {
	if _, err := Interpret(`int main() { int z = 0; return 5 / z; }`, nil); err == nil {
		t.Fatalf("division by zero not trapped")
	}
	if _, err := Interpret(`int a[4]; int main() { int i = 9; return a[i]; }`, nil); err == nil {
		t.Fatalf("out-of-bounds read not trapped")
	}
	if _, err := Interpret(`int main() { while (1) { } return 0; }`, nil); err == nil {
		t.Fatalf("infinite loop not trapped by step budget")
	}
}

// TestDifferentialRandomPrograms is the heavyweight cross-check: random
// well-defined programs must behave identically under (compile → assemble
// → simulate) and under direct AST interpretation — same output bytes,
// same exit code — across random inputs.
func TestDifferentialRandomPrograms(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		src := GenProgram(seed)
		prog, err := Build(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if err := Check(parsed); err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
		interp := NewInterp(parsed)

		inRng := rand.New(rand.NewSource(seed * 977))
		for trial := 0; trial < 3; trial++ {
			input := make([]byte, 3*genArraySize)
			inRng.Read(input)

			want, err := interp.Run(input)
			if err != nil {
				t.Fatalf("seed %d: interpreter trapped on a generated program: %v\n%s", seed, err, src)
			}
			got := sim.Run(prog, sim.Config{Input: input, MaxInstr: 1 << 28})
			if got.Outcome != sim.OK {
				t.Fatalf("seed %d trial %d: simulation %s (trap %s)\n%s", seed, trial, got.Outcome, got.Trap, src)
			}
			if got.ExitCode != want.ExitCode {
				t.Fatalf("seed %d trial %d: exit %d (sim) != %d (interp)\n%s",
					seed, trial, got.ExitCode, want.ExitCode, src)
			}
			if !bytes.Equal(got.Output, want.Output) {
				idx := firstDiff(got.Output, want.Output)
				t.Fatalf("seed %d trial %d: outputs differ at byte %d (sim len %d, interp len %d)\n%s",
					seed, trial, idx, len(got.Output), len(want.Output), src)
			}
		}
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestDifferentialAppSources: the interpreter agrees with the simulator on
// the real benchmark kernels too (via their shared reference outputs this
// is implied, but running it directly exercises the interpreter's pointer
// and float paths at scale).
func TestDifferentialAppKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	src := `
int hist[8];
float w[8];
tolerant int quantize(int v, int levels) {
    int step = 256 / levels;
    int q = v / step;
    if (q >= levels) { q = levels - 1; }
    return q * step + step / 2;
}
int main() {
    int i;
    int n = inw();
    if (n > 4096) { n = 4096; }
    float sum = 0.0;
    for (i = 0; i < 8; i = i + 1) { w[i] = (float)(i + 1) / 8.0; }
    for (i = 0; i < n; i = i + 1) {
        int v = inb();
        if (v < 0) { break; }
        int q = quantize(v, 8);
        hist[(q >> 5) & 7] = hist[(q >> 5) & 7] + 1;
        sum = sum + (float)q * w[i & 7];
    }
    for (i = 0; i < 8; i = i + 1) { outw(hist[i]); }
    outw((int)sum);
    return 0;
}
`
	input := []byte{64, 0, 0, 0}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 64; i++ {
		input = append(input, byte(rng.Intn(256)))
	}
	want, err := Interpret(src, input)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build(src)
	if err != nil {
		t.Fatal(err)
	}
	got := sim.Run(prog, sim.Config{Input: input})
	if got.Outcome != sim.OK {
		t.Fatalf("sim %s (%s)", got.Outcome, got.Trap)
	}
	if !bytes.Equal(got.Output, want.Output) || got.ExitCode != want.ExitCode {
		t.Fatalf("sim and interp disagree")
	}
}

// TestGeneratedProgramsCompile keeps the generator itself honest across a
// wider seed range than the differential loop covers.
func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := int64(100); seed < 160; seed++ {
		if _, err := Compile(GenProgram(seed)); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, GenProgram(seed))
		}
	}
}
