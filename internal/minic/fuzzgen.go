package minic

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenProgram produces a random, guaranteed-terminating MiniC program for
// differential testing: the compiled-and-simulated execution must match
// the AST interpreter on output bytes and exit code.
//
// Construction rules keep every generated program well-defined:
//   - array indices are masked to the (power-of-two) array size;
//   - divisors and shift amounts are masked to safe ranges;
//   - loops have literal bounds, so termination is structural;
//   - functions call only later-defined functions (no recursion);
//   - all arithmetic is 32-bit wrapping, matching both semantics.
func GenProgram(seed int64) string {
	g := &pgen{rng: rand.New(rand.NewSource(seed)), loopVars: map[string]bool{"i": true}}
	return g.program()
}

type pgen struct {
	rng    *rand.Rand
	b      strings.Builder
	indent int
	// scalar variables in scope, by name.
	scope []string
	// helper functions already emitted, each taking (int, int) -> int.
	helpers []string
	// nest bounds control-structure nesting so total iteration counts stay
	// small (every loop has a ≤8 bound; depth ≤3 keeps the worst case at
	// a few thousand iterations).
	nest int
	// loopVars are live loop counters; they may be read but never
	// assigned, so every generated loop terminates structurally.
	loopVars map[string]bool
}

const (
	genArraySize = 16 // power of two so "& 15" bounds every index
	genArrayMask = genArraySize - 1
)

func (g *pgen) program() string {
	g.line("// generated program (differential fuzz corpus)")
	g.line("int A[%d];", genArraySize)
	g.line("int B[%d];", genArraySize)
	g.line("char C[%d];", genArraySize)
	g.line("int acc;")
	g.line("")

	nHelpers := 1 + g.rng.Intn(3)
	for i := 0; i < nHelpers; i++ {
		g.helper(i)
	}
	g.mainFunc()
	return g.b.String()
}

func (g *pgen) line(format string, args ...any) {
	g.b.WriteString(strings.Repeat("    ", g.indent))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *pgen) helper(i int) {
	name := fmt.Sprintf("h%d", i)
	tol := ""
	if g.rng.Intn(2) == 0 {
		tol = "tolerant "
	}
	g.line("%sint %s(int p, int q) {", tol, name)
	g.indent++
	g.scope = []string{"p", "q"}
	nLocals := g.rng.Intn(3)
	for j := 0; j < nLocals; j++ {
		v := fmt.Sprintf("l%d", j)
		g.line("int %s = %s;", v, g.expr(2))
		g.scope = append(g.scope, v)
	}
	g.stmts(2 + g.rng.Intn(3))
	g.line("return %s;", g.expr(2))
	g.indent--
	g.line("}")
	g.line("")
	g.helpers = append(g.helpers, name)
	g.scope = nil
}

func (g *pgen) mainFunc() {
	g.line("int main() {")
	g.indent++
	g.scope = nil
	// Seed state from input so different inputs exercise different paths.
	g.line("int i;")
	g.line("for (i = 0; i < %d; i = i + 1) { A[i] = inb(); B[i] = inb() * 3; C[i] = inb(); }", genArraySize)
	g.scope = append(g.scope, "i")
	nLocals := 2 + g.rng.Intn(3)
	for j := 0; j < nLocals; j++ {
		v := fmt.Sprintf("m%d", j)
		g.line("int %s = %s;", v, g.expr(2))
		g.scope = append(g.scope, v)
	}
	g.stmts(4 + g.rng.Intn(5))
	// Observable state: arrays, acc and a final expression.
	g.line("for (i = 0; i < %d; i = i + 1) { outw(A[i]); outw(B[i]); outb(C[i]); }", genArraySize)
	g.line("outw(acc);")
	g.line("return %s & 0xff;", g.expr(1))
	g.indent--
	g.line("}")
}

func (g *pgen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *pgen) stmt() {
	kind := g.rng.Intn(10)
	if (kind == 5 || kind == 6) && g.nest >= 3 {
		kind = g.rng.Intn(3) // too deep: degrade to an assignment
	}
	switch kind {
	case 0, 1, 2: // scalar assignment
		g.line("%s = %s;", g.lvalue(), g.expr(3))
	case 3, 4: // array store
		switch g.rng.Intn(3) {
		case 0:
			g.line("A[%s & %d] = %s;", g.expr(1), genArrayMask, g.expr(2))
		case 1:
			g.line("B[%s & %d] = %s;", g.expr(1), genArrayMask, g.expr(2))
		default:
			g.line("C[%s & %d] = %s;", g.expr(1), genArrayMask, g.expr(2))
		}
	case 5: // if/else
		g.nest++
		g.line("if (%s) {", g.cond())
		g.indent++
		g.stmts(1 + g.rng.Intn(2))
		g.indent--
		if g.rng.Intn(2) == 0 {
			g.line("} else {")
			g.indent++
			g.stmts(1 + g.rng.Intn(2))
			g.indent--
		}
		g.line("}")
		g.nest--
	case 6: // bounded for loop over a fresh variable
		g.nest++
		v := fmt.Sprintf("k%d", g.rng.Intn(1000))
		for g.loopVars[v] {
			v += "x"
		}
		bound := 1 + g.rng.Intn(8)
		g.line("{")
		g.indent++
		g.line("int %s;", v)
		g.scope = append(g.scope, v)
		g.loopVars[v] = true
		g.line("for (%s = 0; %s < %d; %s = %s + 1) {", v, v, bound, v, v)
		g.indent++
		g.stmts(1 + g.rng.Intn(2))
		if g.rng.Intn(4) == 0 {
			g.line("if (%s) { break; }", g.cond())
		}
		g.indent--
		g.line("}")
		g.scope = g.scope[:len(g.scope)-1]
		delete(g.loopVars, v)
		g.indent--
		g.line("}")
		g.nest--
	case 7: // accumulate
		g.line("acc = acc + (%s);", g.expr(2))
	case 8: // helper call for effect
		if len(g.helpers) > 0 {
			g.line("acc = acc ^ %s;", g.callExpr())
		} else {
			g.line("acc = acc + 1;")
		}
	case 9: // float round trip
		g.line("%s = (int)((float)(%s & 1023) / 2.0);", g.lvalue(), g.expr(1))
	}
}

func (g *pgen) lvalue() string {
	if len(g.scope) == 0 || g.rng.Intn(4) == 0 {
		return "acc"
	}
	for try := 0; try < 4; try++ {
		v := g.scope[g.rng.Intn(len(g.scope))]
		if !g.loopVars[v] {
			return v
		}
	}
	return "acc"
}

func (g *pgen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.expr(1), ops[g.rng.Intn(len(ops))], g.expr(1))
}

func (g *pgen) callExpr() string {
	name := g.helpers[g.rng.Intn(len(g.helpers))]
	return fmt.Sprintf("%s(%s, %s)", name, g.expr(1), g.expr(1))
}

// expr emits a random int expression of bounded depth.
func (g *pgen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		return g.atom()
	}
	switch g.rng.Intn(11) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 3: // safe division
		return fmt.Sprintf("(%s / (1 + (%s & 7)))", g.expr(depth-1), g.expr(depth-1))
	case 4: // safe modulo
		return fmt.Sprintf("(%s %% (1 + (%s & 7)))", g.expr(depth-1), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("(%s & %s)", g.expr(depth-1), g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(%s | %s)", g.expr(depth-1), g.expr(depth-1))
	case 7:
		return fmt.Sprintf("(%s ^ %s)", g.expr(depth-1), g.expr(depth-1))
	case 8: // safe shifts
		return fmt.Sprintf("(%s << (%s & 7))", g.expr(depth-1), g.expr(depth-1))
	case 9:
		return fmt.Sprintf("(%s >> (%s & 7))", g.expr(depth-1), g.expr(depth-1))
	default:
		return fmt.Sprintf("(-%s)", g.expr(depth-1))
	}
}

func (g *pgen) atom() string {
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(2048)-1024)
	case 1:
		if len(g.scope) > 0 {
			return g.scope[g.rng.Intn(len(g.scope))]
		}
		return "acc"
	case 2:
		return fmt.Sprintf("A[%d]", g.rng.Intn(genArraySize))
	case 3:
		return fmt.Sprintf("B[%d]", g.rng.Intn(genArraySize))
	case 4:
		return fmt.Sprintf("C[%d]", g.rng.Intn(genArraySize))
	default:
		return "acc"
	}
}
