package minic

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Interp is a direct AST interpreter for checked MiniC programs. It exists
// as an independent executable semantics: the test suite generates random
// programs and requires the compiled-and-simulated execution to agree with
// the interpreter on every observable (output bytes and exit code), which
// differentially pins the compiler, the assembler and the simulator
// against each other.
//
// Semantics mirror the compiled target exactly: 32-bit wrapping integers,
// arithmetic right shift for >>, truncating division (trapping on zero),
// binary32 floats, char arrays as unsigned bytes, locals zero-initialized.
type Interp struct {
	prog    *Program
	globals map[string]*gslot
	funcs   map[string]*Func

	input  []byte
	inPos  int
	output []byte

	steps    uint64
	maxSteps uint64
}

type gslot struct {
	words []uint32 // scalar = 1 word; char arrays pack 1 byte per entry
	isChr bool
	bytes []byte
}

// InterpResult mirrors the observables of a simulated run.
type InterpResult struct {
	Output   []byte
	ExitCode int32
}

// interpTrap reports a runtime fault (division by zero, out-of-bounds
// array access, step budget exhaustion).
type interpTrap struct{ msg string }

func (t *interpTrap) Error() string { return "minic interp: " + t.msg }

// exitSignal unwinds on the exit builtin.
type exitSignal struct{ code int32 }

// returnSignal unwinds a function return.
type returnSignal struct{ val uint32 }

type breakSignal struct{}
type continueSignal struct{}

// NewInterp prepares an interpreter for a parsed-and-checked program.
func NewInterp(prog *Program) *Interp {
	in := &Interp{
		prog:     prog,
		funcs:    make(map[string]*Func),
		maxSteps: 200_000_000,
	}
	for _, f := range prog.Funcs {
		in.funcs[f.Name] = f
	}
	in.resetGlobals()
	return in
}

// resetGlobals (re)initializes the global data image, so every Run starts
// from the same state a fresh simulated machine would.
func (in *Interp) resetGlobals() {
	in.globals = make(map[string]*gslot)
	for _, g := range in.prog.Globals {
		s := &gslot{}
		if g.Elem == TypeChar {
			s.isChr = true
			s.bytes = make([]byte, g.Size)
			for i, c := range g.Init {
				s.bytes[i] = byte(c.i)
			}
		} else {
			s.words = make([]uint32, g.Size)
			for i, c := range g.Init {
				if g.Elem == TypeFloat {
					s.words[i] = math.Float32bits(float32(c.f))
				} else {
					s.words[i] = uint32(c.i)
				}
			}
		}
		in.globals[g.Name] = s
	}
}

// frame is one function activation: scalar slots plus pointer bindings.
type frame struct {
	vars map[*Decl]uint32
	ptrs map[*Decl]*gslot
}

// Run executes main with the given input stream, starting from a fresh
// global data image (as a fresh simulated machine would).
func (in *Interp) Run(input []byte) (res InterpResult, err error) {
	in.resetGlobals()
	in.input = input
	in.inPos = 0
	in.output = nil
	in.steps = 0
	defer func() {
		switch r := recover().(type) {
		case nil:
		case *interpTrap:
			err = r
		case exitSignal:
			res = InterpResult{Output: in.output, ExitCode: r.code}
		default:
			panic(r)
		}
	}()
	v := in.call(in.funcs["main"], nil)
	return InterpResult{Output: in.output, ExitCode: int32(v)}, nil
}

func (in *Interp) trap(format string, args ...any) {
	panic(&interpTrap{msg: fmt.Sprintf(format, args...)})
}

func (in *Interp) step() {
	in.steps++
	if in.steps > in.maxSteps {
		in.trap("step budget exceeded (infinite loop?)")
	}
}

// call binds arguments and runs a function body.
func (in *Interp) call(f *Func, args []argVal) uint32 {
	fr := &frame{vars: make(map[*Decl]uint32), ptrs: make(map[*Decl]*gslot)}
	for i := range f.Params {
		d := f.Params[i].decl
		if f.Params[i].Ptr {
			fr.ptrs[d] = args[i].ptr
		} else {
			fr.vars[d] = args[i].val
		}
	}
	ret := uint32(0)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if rs, ok := r.(returnSignal); ok {
					ret = rs.val
					return
				}
				panic(r)
			}
		}()
		in.execBlock(f.Body, fr)
	}()
	return ret
}

type argVal struct {
	val uint32
	ptr *gslot
}

func (in *Interp) execBlock(b *Block, fr *frame) {
	for _, s := range b.Stmts {
		in.execStmt(s, fr)
	}
}

func (in *Interp) execStmt(s Stmt, fr *frame) {
	in.step()
	switch s := s.(type) {
	case *Block:
		in.execBlock(s, fr)
	case *Decl:
		v := uint32(0)
		if s.Init != nil {
			v = in.eval(s.Init, fr)
		}
		fr.vars[s] = v
	case *ExprStmt:
		in.eval(s.E, fr)
	case *If:
		if in.eval(s.Cond, fr) != 0 {
			in.execStmt(s.Then, fr)
		} else if s.Else != nil {
			in.execStmt(s.Else, fr)
		}
	case *While:
		for in.eval(s.Cond, fr) != 0 {
			in.step()
			if in.loopBody(s.Body, fr) {
				break
			}
		}
	case *For:
		if s.Init != nil {
			in.eval(s.Init, fr)
		}
		for s.Cond == nil || in.eval(s.Cond, fr) != 0 {
			in.step()
			if in.loopBody(s.Body, fr) {
				break
			}
			if s.Post != nil {
				in.eval(s.Post, fr)
			}
		}
	case *Break:
		panic(breakSignal{})
	case *Continue:
		panic(continueSignal{})
	case *Return:
		v := uint32(0)
		if s.E != nil {
			v = in.eval(s.E, fr)
		}
		panic(returnSignal{val: v})
	}
}

// loopBody runs one iteration, returning true when a break unwound.
func (in *Interp) loopBody(body Stmt, fr *frame) (brk bool) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case breakSignal:
			brk = true
		case continueSignal:
		default:
			panic(r)
		}
	}()
	in.execStmt(body, fr)
	return false
}

func (in *Interp) eval(e Expr, fr *frame) uint32 {
	in.step()
	switch e := e.(type) {
	case *IntLit:
		return uint32(e.V)
	case *FloatLit:
		return math.Float32bits(float32(e.V))
	case *VarRef:
		switch e.kind {
		case refLocal:
			return fr.vars[e.decl]
		case refGlobal:
			return in.globals[e.Name].words[0]
		default:
			in.trap("array %q used as value", e.Name)
			return 0
		}
	case *Index:
		slot, idx := in.element(e, fr)
		if slot.isChr {
			return uint32(slot.bytes[idx])
		}
		return slot.words[idx]
	case *Unary:
		x := in.eval(e.X, fr)
		switch e.Op {
		case "-":
			if e.typ == TypeFloat {
				return math.Float32bits(0 - math.Float32frombits(x))
			}
			return uint32(-int32(x))
		case "!":
			if x == 0 {
				return 1
			}
			return 0
		default: // ~
			return ^x
		}
	case *Binary:
		return in.evalBinary(e, fr)
	case *Assign:
		v := in.eval(e.RHS, fr)
		switch lhs := e.LHS.(type) {
		case *VarRef:
			switch lhs.kind {
			case refLocal:
				fr.vars[lhs.decl] = v
			case refGlobal:
				in.globals[lhs.Name].words[0] = v
			}
		case *Index:
			slot, idx := in.element(lhs, fr)
			if slot.isChr {
				slot.bytes[idx] = byte(v)
			} else {
				slot.words[idx] = v
			}
		}
		return v
	case *Call:
		return in.evalCall(e, fr)
	case *Cast:
		x := in.eval(e.X, fr)
		from := e.X.Type()
		switch {
		case from == TypeInt && e.To == TypeFloat:
			return math.Float32bits(float32(int32(x)))
		case from == TypeFloat && e.To == TypeInt:
			f := math.Float32frombits(x)
			switch {
			case f != f:
				return 0
			case f >= math.MaxInt32:
				return math.MaxInt32
			case f <= math.MinInt32:
				return 0x80000000
			}
			return uint32(int32(f))
		}
		return x
	}
	in.trap("unhandled expression %T", e)
	return 0
}

// element resolves an Index to its slot and a bounds-checked offset.
// Unlike the simulator (whose lazily allocated memory absorbs wild
// addresses), the interpreter traps on out-of-bounds accesses — clean
// programs never perform them, and the differential tests only compare
// clean runs.
func (in *Interp) element(e *Index, fr *frame) (*gslot, int32) {
	var slot *gslot
	switch e.Base.kind {
	case refArray:
		slot = in.globals[e.Base.Name]
	case refPtr:
		slot = fr.ptrs[e.Base.decl]
	}
	idx := int32(in.eval(e.Idx, fr))
	limit := int32(len(slot.words))
	if slot.isChr {
		limit = int32(len(slot.bytes))
	}
	if idx < 0 || idx >= limit {
		in.trap("index %d out of bounds for %q (size %d)", idx, e.Base.Name, limit)
	}
	return slot, idx
}

func (in *Interp) evalBinary(e *Binary, fr *frame) uint32 {
	// Short-circuit first.
	switch e.Op {
	case "&&":
		if in.eval(e.L, fr) == 0 {
			return 0
		}
		if in.eval(e.R, fr) == 0 {
			return 0
		}
		return 1
	case "||":
		if in.eval(e.L, fr) != 0 {
			return 1
		}
		if in.eval(e.R, fr) != 0 {
			return 1
		}
		return 0
	}
	l := in.eval(e.L, fr)
	r := in.eval(e.R, fr)
	if e.L.Type() == TypeFloat {
		fl, fr32 := math.Float32frombits(l), math.Float32frombits(r)
		switch e.Op {
		case "+":
			return math.Float32bits(fl + fr32)
		case "-":
			return math.Float32bits(fl - fr32)
		case "*":
			return math.Float32bits(fl * fr32)
		case "/":
			return math.Float32bits(fl / fr32)
		case "==":
			return b2u(fl == fr32)
		case "!=":
			return b2u(fl != fr32)
		case "<":
			return b2u(fl < fr32)
		case "<=":
			return b2u(fl <= fr32)
		case ">":
			return b2u(fl > fr32)
		case ">=":
			return b2u(fl >= fr32)
		}
	}
	li, ri := int32(l), int32(r)
	switch e.Op {
	case "+":
		return uint32(li + ri)
	case "-":
		return uint32(li - ri)
	case "*":
		return uint32(li * ri)
	case "/":
		if ri == 0 {
			in.trap("division by zero")
		}
		if li == math.MinInt32 && ri == -1 {
			return 0x80000000
		}
		return uint32(li / ri)
	case "%":
		if ri == 0 {
			in.trap("division by zero")
		}
		if li == math.MinInt32 && ri == -1 {
			return 0
		}
		return uint32(li % ri)
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<<":
		return l << (r & 31)
	case ">>":
		return uint32(li >> (r & 31))
	case "==":
		return b2u(l == r)
	case "!=":
		return b2u(l != r)
	case "<":
		return b2u(li < ri)
	case "<=":
		return b2u(li <= ri)
	case ">":
		return b2u(li > ri)
	case ">=":
		return b2u(li >= ri)
	}
	in.trap("unhandled operator %q", e.Op)
	return 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (in *Interp) evalCall(e *Call, fr *frame) uint32 {
	if e.builtin != nil {
		var arg uint32
		if len(e.Args) == 1 {
			arg = in.eval(e.Args[0], fr)
		}
		switch e.builtin.name {
		case "exit":
			panic(exitSignal{code: int32(arg)})
		case "outb":
			in.output = append(in.output, byte(arg))
		case "outh":
			in.output = binary.LittleEndian.AppendUint16(in.output, uint16(arg))
		case "outw":
			in.output = binary.LittleEndian.AppendUint32(in.output, arg)
		case "inb":
			if in.inPos >= len(in.input) {
				return uint32(0xFFFFFFFF)
			}
			v := uint32(in.input[in.inPos])
			in.inPos++
			return v
		case "inh":
			if in.inPos+2 > len(in.input) {
				in.inPos = len(in.input)
				return uint32(0xFFFFFFFF)
			}
			v := uint32(binary.LittleEndian.Uint16(in.input[in.inPos:]))
			in.inPos += 2
			return v
		case "inw":
			if in.inPos+4 > len(in.input) {
				in.inPos = len(in.input)
				return uint32(0xFFFFFFFF)
			}
			v := binary.LittleEndian.Uint32(in.input[in.inPos:])
			in.inPos += 4
			return v
		}
		return 0
	}
	args := make([]argVal, len(e.Args))
	for i, a := range e.Args {
		if e.fn.Params[i].Ptr {
			v := a.(*VarRef)
			switch v.kind {
			case refArray:
				args[i] = argVal{ptr: in.globals[v.Name]}
			case refPtr:
				args[i] = argVal{ptr: fr.ptrs[v.decl]}
			}
		} else {
			args[i] = argVal{val: in.eval(a, fr)}
		}
	}
	return in.call(e.fn, args)
}

// Interpret parses, checks and interprets src in one step.
func Interpret(src string, input []byte) (InterpResult, error) {
	prog, err := Parse(src)
	if err != nil {
		return InterpResult{}, err
	}
	if err := Check(prog); err != nil {
		return InterpResult{}, err
	}
	return NewInterp(prog).Run(input)
}
