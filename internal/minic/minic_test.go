package minic

import (
	"bytes"
	"strings"
	"testing"

	"etap/internal/sim"
)

// run compiles src, runs it on the simulator with the given input, and
// returns the result. It fails the test on compile errors or crashes.
func run(t *testing.T, src string, input []byte) sim.Result {
	t.Helper()
	res := runRaw(t, src, input)
	if res.Outcome != sim.OK {
		t.Fatalf("run ended with %s (trap: %s)", res.Outcome, res.Trap)
	}
	return res
}

func runRaw(t *testing.T, src string, input []byte) sim.Result {
	t.Helper()
	prog, err := Build(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return sim.Run(prog, sim.Config{Input: input, MaxInstr: 200_000_000})
}

// expectOut asserts the program's raw output bytes.
func expectOut(t *testing.T, src string, input, want []byte) {
	t.Helper()
	res := run(t, src, input)
	if !bytes.Equal(res.Output, want) {
		got := res.Output
		if len(got) > 64 {
			got = got[:64]
		}
		w := want
		if len(w) > 64 {
			w = w[:64]
		}
		t.Fatalf("output mismatch:\n got  %v (len %d)\n want %v (len %d)", got, len(res.Output), w, len(want))
	}
}

// expectExit asserts main's return value.
func expectExit(t *testing.T, src string, want int32) {
	t.Helper()
	res := run(t, src, nil)
	if res.ExitCode != want {
		t.Fatalf("exit code = %d, want %d", res.ExitCode, want)
	}
}

func TestReturnConstant(t *testing.T) {
	expectExit(t, `int main() { return 42; }`, 42)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int32
	}{
		{"1 + 2", 3},
		{"10 - 4", 6},
		{"6 * 7", 42},
		{"45 / 7", 6},
		{"45 % 7", 3},
		{"-45 / 7", -6},
		{"-45 % 7", -3},
		{"(1 + 2) * (3 + 4)", 21},
		{"1 << 10", 1024},
		{"-16 >> 2", -4},
		{"255 & 15", 15},
		{"240 | 15", 255},
		{"255 ^ 15", 240},
		{"~0", -1},
		{"-(5)", -5},
		{"!0", 1},
		{"!7", 0},
		{"1 < 2", 1},
		{"2 < 1", 0},
		{"2 <= 2", 1},
		{"3 <= 2", 0},
		{"3 > 2", 1},
		{"2 > 3", 0},
		{"2 >= 2", 1},
		{"1 >= 2", 0},
		{"5 == 5", 1},
		{"5 == 6", 0},
		{"5 != 6", 1},
		{"5 != 5", 0},
		{"1 && 1", 1},
		{"1 && 0", 0},
		{"0 && 1", 0},
		{"0 || 0", 0},
		{"0 || 3", 1},
		{"2 || 0", 1},
		{"1 + 2 * 3", 7},
		{"(1 | 2) ^ (2 | 4)", 5},
		{"100 / 3 % 7", 5},
		{"-2147483647 - 1", -2147483648},
		{"2147483647 + 1", -2147483648}, // wraparound
	}
	for _, c := range cases {
		src := "int main() { return " + c.expr + "; }"
		res := run(t, src, nil)
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.expr, res.ExitCode, c.want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int32
	}{
		{"(int)(1.5 + 2.25)", 3},
		{"(int)(10.0 / 4.0)", 2},
		{"(int)(1.5 * 4.0)", 6},
		{"(int)(7.5 - 0.25)", 7},
		{"(int)(-2.5)", -2},
		{"1.5 < 2.5", 1},
		{"2.5 < 1.5", 0},
		{"2.5 <= 2.5", 1},
		{"2.5 > 1.0", 1},
		{"2.5 >= 2.5", 1},
		{"2.5 == 2.5", 1},
		{"2.5 != 2.5", 0},
		{"1.0 != 2.0", 1},
		{"(int)((float)7 / 2.0)", 3},
		{"(int)(0.0 - 1.5)", -1},
		{"(int)(1e3)", 1000},
		{"(int)(2.5e-1 * 8.0)", 2},
	}
	for _, c := range cases {
		src := "int main() { return " + c.expr + "; }"
		res := run(t, src, nil)
		if res.ExitCode != c.want {
			t.Errorf("%s = %d, want %d", c.expr, res.ExitCode, c.want)
		}
	}
}

func TestLocalsAndAssignment(t *testing.T) {
	expectExit(t, `
int main() {
    int a = 5;
    int b;
    b = a * 3;
    a = b - 2;
    return a; // 13
}`, 13)
}

func TestAssignmentAsExpression(t *testing.T) {
	expectExit(t, `
int main() {
    int a;
    int b;
    a = (b = 7) + 1;
    return a * 10 + b; // 87
}`, 87)
}

func TestUninitializedLocalsAreZero(t *testing.T) {
	expectExit(t, `
int main() {
    int a;
    int b;
    return a + b;
}`, 0)
}

func TestIfElse(t *testing.T) {
	src := `
int classify(int x) {
    if (x < 0) { return -1; }
    else if (x == 0) { return 0; }
    else { return 1; }
}
int main() { return classify(-5)*100 + classify(0)*10 + classify(9); }`
	expectExit(t, src, -99) // -100 + 0 + 1
}

func TestWhileLoop(t *testing.T) {
	expectExit(t, `
int main() {
    int i = 0;
    int sum = 0;
    while (i < 10) { sum = sum + i; i = i + 1; }
    return sum; // 45
}`, 45)
}

func TestForLoop(t *testing.T) {
	expectExit(t, `
int main() {
    int sum = 0;
    int i;
    for (i = 1; i <= 10; i = i + 1) { sum = sum + i; }
    return sum; // 55
}`, 55)
}

func TestBreakContinue(t *testing.T) {
	expectExit(t, `
int main() {
    int sum = 0;
    int i;
    for (i = 0; i < 100; i = i + 1) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        sum = sum + i; // 1+3+5+7+9
    }
    return sum;
}`, 25)
}

func TestNestedLoops(t *testing.T) {
	expectExit(t, `
int main() {
    int total = 0;
    int i;
    int j;
    for (i = 0; i < 5; i = i + 1) {
        for (j = 0; j < 5; j = j + 1) {
            if (j == 3) { break; }
            total = total + 1;
        }
    }
    return total; // 5*3
}`, 15)
}

func TestRecursionFibonacci(t *testing.T) {
	expectExit(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }`, 610)
}

func TestGlobalScalars(t *testing.T) {
	expectExit(t, `
int counter = 10;
int step;
int bump() { counter = counter + step; return counter; }
int main() {
    step = 7;
    bump();
    bump();
    return counter; // 24
}`, 24)
}

func TestGlobalArrays(t *testing.T) {
	expectExit(t, `
int vals[8] = {1, 2, 3, 4};
int main() {
    int i;
    int sum = 0;
    vals[4] = 10;
    vals[7] = vals[0] + vals[3]; // 5
    for (i = 0; i < 8; i = i + 1) { sum = sum + vals[i]; }
    return sum; // 1+2+3+4+10+0+0+5
}`, 25)
}

func TestCharArrays(t *testing.T) {
	expectExit(t, `
char text[8] = "AB";
int main() {
    text[2] = 67;          // 'C'
    text[3] = text[0] + 3; // 'D'
    return text[0] + text[1] + text[2] + text[3]; // 65+66+67+68
}`, 266)
}

func TestCharArrayTruncation(t *testing.T) {
	expectExit(t, `
char buf[4];
int main() {
    buf[0] = 300; // truncates to 44
    return buf[0];
}`, 44)
}

func TestConstArraySize(t *testing.T) {
	expectExit(t, `
const int N = 6;
int data[N];
int main() {
    int i;
    for (i = 0; i < N; i = i + 1) { data[i] = i * i; }
    return data[5]; // 25
}`, 25)
}

func TestPointerParams(t *testing.T) {
	expectExit(t, `
int src[5] = {5, 4, 3, 2, 1};
int dst[5];
void copyArr(int *from, int *to, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { to[i] = from[i]; }
}
int sumArr(int *a, int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
    return s;
}
int main() {
    copyArr(src, dst, 5);
    return sumArr(dst, 5); // 15
}`, 15)
}

func TestPointerPassThrough(t *testing.T) {
	expectExit(t, `
char img[4] = {1, 2, 3, 4};
int inner(char *p, int i) { return p[i]; }
int outer(char *p, int i) { return inner(p, i) * 10; }
int main() { return outer(img, 2); } // 30`, 30)
}

func TestManyArguments(t *testing.T) {
	expectExit(t, `
int sum7(int a, int b, int c, int d, int e, int f, int g) {
    return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g;
}
int main() { return sum7(1, 1, 1, 1, 1, 1, 1); } // 28`, 28)
}

func TestManyArgumentsWithPointers(t *testing.T) {
	expectExit(t, `
int buf[3] = {100, 200, 300};
int pick(int a, int b, int c, int d, int *arr, int idx) {
    return a + b + c + d + arr[idx];
}
int main() { return pick(1, 2, 3, 4, buf, 2); } // 310`, 310)
}

func TestNestedCallsInArguments(t *testing.T) {
	expectExit(t, `
int id(int x) { return x; }
int add(int a, int b) { return a + b; }
int main() { return add(id(3) + id(4), add(id(5), id(6))); } // 18`, 18)
}

func TestCallPreservesTemporaries(t *testing.T) {
	// The multiply's left operand must survive the call on the right.
	expectExit(t, `
int f(int x) { return x + 1; }
int main() {
    int a = 10;
    return (a + 5) * f(2); // 15 * 3
}`, 45)
}

func TestFloatGlobalsAndArrays(t *testing.T) {
	expectExit(t, `
float scale = 2.5;
float tab[4] = {0.5, 1.5, 2.5, 3.5};
int main() {
    float acc = 0.0;
    int i;
    for (i = 0; i < 4; i = i + 1) { acc = acc + tab[i] * scale; }
    return (int)acc; // 2.5*(8.0) = 20
}`, 20)
}

func TestFloatIntCasts(t *testing.T) {
	expectExit(t, `
int main() {
    int i = 7;
    float f = (float)i / 2.0;
    int j = (int)(f * 10.0);
    return j; // 35
}`, 35)
}

func TestOutputBuiltins(t *testing.T) {
	expectOut(t, `
int main() {
    outb(65);
    outb(66);
    outh(0x4443);        // little-endian: C D
    outw(0x48474645);    // E F G H
    return 0;
}`, nil, []byte("ABCDEFGH"))
}

func TestInputBuiltins(t *testing.T) {
	expectOut(t, `
int main() {
    int a = inb();
    int b = inb();
    int h = inh();
    int w = inw();
    outb(b);
    outb(a);
    outw(h + w);
    return 0;
}`, []byte{1, 2, 0x10, 0x00, 0x01, 0x00, 0x00, 0x00},
		[]byte{2, 1, 0x11, 0, 0, 0})
}

func TestInputEOF(t *testing.T) {
	expectExit(t, `
int main() {
    int n = 0;
    while (inb() >= 0) { n = n + 1; }
    return n;
}`, 0)
	res := run(t, `
int main() {
    int n = 0;
    while (inb() >= 0) { n = n + 1; }
    return n;
}`, nil)
	if res.ExitCode != 0 {
		t.Fatalf("EOF loop returned %d", res.ExitCode)
	}
}

func TestInputCounting(t *testing.T) {
	src := `
int main() {
    int n = 0;
    while (inb() >= 0) { n = n + 1; }
    return n;
}`
	res := run(t, src, bytes.Repeat([]byte{7}, 123))
	if res.ExitCode != 123 {
		t.Fatalf("counted %d bytes, want 123", res.ExitCode)
	}
}

func TestExitBuiltin(t *testing.T) {
	res := run(t, `
int main() {
    exit(7);
    return 1; // unreachable
}`, nil)
	if res.ExitCode != 7 {
		t.Fatalf("exit code = %d, want 7", res.ExitCode)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	expectExit(t, `
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
    int r = 0;
    if (0 && bump()) { r = 1; }
    if (1 || bump()) { r = r + 2; }
    return calls * 10 + r; // bump never called; r = 2
}`, 2)
}

func TestDivisionByZeroTraps(t *testing.T) {
	res := runRaw(t, `
int main() {
    int zero = 0;
    return 5 / zero;
}`, nil)
	if res.Outcome != sim.Crash || res.Trap.Kind != sim.TrapDivZero {
		t.Fatalf("got %s (trap %s), want crash with division by zero", res.Outcome, res.Trap)
	}
}

func TestInfiniteLoopTimesOut(t *testing.T) {
	prog, err := Build(`int main() { while (1) { } return 0; }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := sim.Run(prog, sim.Config{MaxInstr: 10000})
	if res.Outcome != sim.Timeout {
		t.Fatalf("got %s, want timeout", res.Outcome)
	}
}

func TestCommentsAndFormats(t *testing.T) {
	expectExit(t, `
// line comment
/* block
   comment */
int main() {
    int hex = 0xFF;   // 255
    int ch = 'A';     // 65
    return hex - ch - '\n'; // 255-65-10
}`, 180)
}

func TestSieveOfEratosthenes(t *testing.T) {
	expectExit(t, `
char composite[100];
int main() {
    int i;
    int j;
    int count = 0;
    for (i = 2; i < 100; i = i + 1) {
        if (composite[i] == 0) {
            count = count + 1;
            for (j = i + i; j < 100; j = j + i) { composite[j] = 1; }
        }
    }
    return count; // 25 primes below 100
}`, 25)
}

func TestIterativeGCD(t *testing.T) {
	expectExit(t, `
int gcd(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}
int main() { return gcd(1071, 462); } // 21`, 21)
}

func TestMutualRecursion(t *testing.T) {
	expectExit(t, `
int isEven(int n) {
    if (n == 0) { return 1; }
    return isOdd(n - 1);
}
int isOdd(int n) {
    if (n == 0) { return 0; }
    return isEven(n - 1);
}
int main() { return isEven(10)*10 + isOdd(7); } // 11`, 11)
}

func TestDeepExpression(t *testing.T) {
	expectExit(t, `
int main() {
    return ((((1 + 2) * 3 - 4) / 5) + ((6 * 7) % 8)) * 2; // (1+2)=3*3=9-4=5/5=1; 42%8=2; 3*2=6
}`, 6)
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"missing main", `int notmain() { return 0; }`},
		{"bad main signature", `void main() { }`},
		{"undefined variable", `int main() { return x; }`},
		{"undefined function", `int main() { return f(); }`},
		{"duplicate local", `int main() { int a; int a; return 0; }`},
		{"duplicate global", `int g; int g; int main() { return 0; }`},
		{"duplicate function", `int f() { return 0; } int f() { return 1; } int main() { return 0; }`},
		{"type mismatch add", `int main() { return 1 + 1.5; }`},
		{"type mismatch assign", `int main() { int a; a = 1.5; return a; }`},
		{"float condition", `int main() { if (1.5) { } return 0; }`},
		{"float modulo", `int main() { return (int)(1.5 % 2.5); }`},
		{"break outside loop", `int main() { break; return 0; }`},
		{"continue outside loop", `int main() { continue; return 0; }`},
		{"void value", `void f() { } int main() { return f(); }`},
		{"missing return value", `int f() { return; } int main() { return f(); }`},
		{"return value from void", `void f() { return 3; } int main() { f(); return 0; }`},
		{"wrong arity", `int f(int a) { return a; } int main() { return f(1, 2); }`},
		{"array as value", `int a[3]; int main() { return a; }`},
		{"scalar as pointer", `int f(int *p) { return p[0]; } int main() { int x; return f(x); }`},
		{"pointer elem mismatch", `char c[3]; int f(int *p) { return p[0]; } int main() { return f(c); }`},
		{"assign to array", `int a[3]; int main() { a = 1; return 0; }`},
		{"builtin arity", `int main() { outb(); return 0; }`},
		{"builtin redefinition", `int outb(int x) { return x; } int main() { return 0; }`},
		{"tolerant variable", `tolerant int x; int main() { return 0; }`},
		{"bad array size", `int a[0]; int main() { return 0; }`},
		{"non-const array size", `int n; int a[n]; int main() { return 0; }`},
		{"string init on int array", `int a[4] = "abc"; int main() { return 0; }`},
		{"too many initializers", `int a[2] = {1,2,3}; int main() { return 0; }`},
		{"unterminated comment", `int main() { return 0; } /* oops`},
		{"unterminated string", `char s[4] = "ab`},
		{"lone else", `int main() { else { } return 0; }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Compile(c.src); err == nil {
				t.Fatalf("compile succeeded, want error")
			}
		})
	}
}

// TestForwardReference documents that MiniC resolves function calls at
// check time against all parsed definitions, so lexical forward references
// work without prototypes (which the grammar does not have).
func TestForwardReference(t *testing.T) {
	expectExit(t, `
int main() { return later(4); }
int later(int x) { return x * x; }`, 16)
}

func TestTolerantFunctionsAreMarked(t *testing.T) {
	prog, err := Build(`
tolerant int work(int x) { return x * 2; }
int main() { return work(21); }`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f, ok := prog.FuncByName("work")
	if !ok {
		t.Fatalf("function work not found")
	}
	if !f.Tolerant {
		t.Fatalf("work should be tolerant")
	}
	m, _ := prog.FuncByName("main")
	if m.Tolerant {
		t.Fatalf("main should not be tolerant")
	}
	res := sim.Run(prog, sim.Config{})
	if res.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", res.ExitCode)
	}
}

func TestManyLocalsSpillToStack(t *testing.T) {
	// More than eight declarations: later ones live in stack slots; all
	// must behave identically to register-resident ones.
	expectExit(t, `
int main() {
    int a = 1;
    int b = 2;
    int c = 3;
    int d = 4;
    int e = 5;
    int f = 6;
    int g = 7;
    int h = 8;
    int i = 9;
    int j = 10;
    int k = 11;
    int l = 12;
    return a + b + c + d + e + f + g + h + i + j + k + l; // 78
}`, 78)
}

func TestSpilledLoopCounter(t *testing.T) {
	// Force the loop counter into a stack slot (ninth declaration) and
	// check loops still work.
	expectExit(t, `
int main() {
    int a0 = 0;
    int a1 = 0;
    int a2 = 0;
    int a3 = 0;
    int a4 = 0;
    int a5 = 0;
    int a6 = 0;
    int a7 = 0;
    int i;
    int sum = 0;
    for (i = 0; i < 10; i = i + 1) { sum = sum + i; }
    return sum + a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7; // 45
}`, 45)
}

func TestCalleePreservesCallerRegisterLocals(t *testing.T) {
	// The callee uses its own $s registers; the caller's register-resident
	// locals must survive the call.
	expectExit(t, `
int clobber() {
    int x = 100;
    int y = 200;
    int z = 300;
    return x + y + z;
}
int main() {
    int a = 1;
    int b = 2;
    int c = 3;
    int ignored = clobber();
    return a * 100 + b * 10 + c; // 123
}`, 123)
}

func TestRecursionWithRegisterLocals(t *testing.T) {
	// Each activation's register locals are independent across recursion.
	expectExit(t, `
int fact(int n) {
    int local = n;
    if (n <= 1) { return 1; }
    int sub = fact(n - 1);
    return local * sub;
}
int main() { return fact(6); } // 720`, 720)
}

func TestMixedSpilledAndRegisterParams(t *testing.T) {
	// Seven parameters: four in registers, three on the stack; plus enough
	// locals that some spill.
	expectExit(t, `
int mix(int a, int b, int c, int d, int e, int f, int g) {
    int l0 = a + b;
    int l1 = c + d;
    int l2 = e + f;
    int l3 = g;
    int l4 = 1;
    return l0 + l1 * 10 + l2 * 100 + l3 * 1000 + l4;
}
int main() { return mix(1, 2, 3, 4, 5, 6, 7); } // 3+70+1100+7000+1 = 8174`, 8174)
}

func TestPointerParamInRegister(t *testing.T) {
	expectExit(t, `
int arr[4] = {10, 20, 30, 40};
int pick(int *p, int i) { return p[i]; }
int main() { return pick(arr, 2); } // 30`, 30)
}

func TestGeneratedAssemblyUsesSRegisters(t *testing.T) {
	asmText, err := Compile(`
int main() {
    int x = 5;
    int y = 7;
    return x + y;
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"$s0", "$s1", "move $s0", "sw $s0"} {
		if !strings.Contains(asmText, want) {
			t.Fatalf("assembly missing %q:\n%s", want, asmText)
		}
	}
}
