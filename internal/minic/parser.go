package minic

import "fmt"

type parser struct {
	lx   *lexer
	tok  token
	peek token
	errs []*Error
}

// Parse lexes and parses src. It returns the first error encountered; the
// checker (Check) must run before code generation.
func Parse(src string) (*Program, error) {
	p := &parser{lx: newLexer(src)}
	p.tok = p.lx.next()
	p.peek = p.lx.next()
	prog := p.parseProgram()
	if len(p.lx.errs) > 0 {
		return nil, p.lx.errs[0]
	}
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return prog, nil
}

func (p *parser) errorf(t token, format string, args ...any) {
	if len(p.errs) < 16 {
		p.errs = append(p.errs, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)})
	}
}

func (p *parser) next() token {
	t := p.tok
	p.tok = p.peek
	p.peek = p.lx.next()
	return t
}

func (p *parser) isPunct(s string) bool { return p.tok.kind == tokPunct && p.tok.text == s }
func (p *parser) isKw(s string) bool    { return p.tok.kind == tokKeyword && p.tok.text == s }

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptKw(s string) bool {
	if p.isKw(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) {
	if !p.acceptPunct(s) {
		p.errorf(p.tok, "expected %q, found %s", s, p.tok)
		p.next()
	}
}

func (p *parser) expectIdent() string {
	if p.tok.kind != tokIdent {
		p.errorf(p.tok, "expected identifier, found %s", p.tok)
		p.next()
		return "_"
	}
	return p.next().text
}

func (p *parser) typeName() (Type, bool) {
	if p.tok.kind != tokKeyword {
		return TypeVoid, false
	}
	switch p.tok.text {
	case "int":
		return TypeInt, true
	case "char":
		return TypeChar, true
	case "float":
		return TypeFloat, true
	case "void":
		return TypeVoid, true
	}
	return TypeVoid, false
}

func (p *parser) parseProgram() *Program {
	prog := &Program{}
	for p.tok.kind != tokEOF {
		start := p.tok
		isConst := p.acceptKw("const")
		isTolerant := !isConst && p.acceptKw("tolerant")

		t, ok := p.typeName()
		if !ok {
			p.errorf(p.tok, "expected declaration, found %s", p.tok)
			p.next()
			continue
		}
		p.next()
		name := p.expectIdent()

		if p.isPunct("(") {
			if isConst {
				p.errorf(start, "functions cannot be const")
			}
			prog.Funcs = append(prog.Funcs, p.parseFunc(t, name, isTolerant, start.line))
			continue
		}
		if isTolerant {
			p.errorf(start, "only functions can be tolerant")
		}
		if t == TypeVoid {
			p.errorf(start, "variables cannot be void")
			t = TypeInt
		}
		prog.Globals = append(prog.Globals, p.parseGlobal(t, name, isConst, start.line, prog))
	}
	return prog
}

// constScalar resolves a declared const int scalar by name, for array sizes.
func constScalar(prog *Program, name string) (int64, bool) {
	for _, g := range prog.Globals {
		if g.Name == name && g.Const && !g.IsArray && g.Elem == TypeInt && len(g.Init) == 1 {
			return g.Init[0].i, true
		}
	}
	return 0, false
}

func (p *parser) parseGlobal(t Type, name string, isConst bool, line int, prog *Program) *Global {
	g := &Global{Name: name, Elem: t, Size: 1, Const: isConst, Line: line}
	if p.acceptPunct("[") {
		g.IsArray = true
		switch {
		case p.tok.kind == tokIntLit:
			g.Size = int(p.next().ival)
		case p.tok.kind == tokIdent:
			sz, ok := constScalar(prog, p.tok.text)
			if !ok {
				p.errorf(p.tok, "array size %q is not a const int", p.tok.text)
				sz = 1
			}
			g.Size = int(sz)
			p.next()
		default:
			p.errorf(p.tok, "expected array size, found %s", p.tok)
		}
		if g.Size <= 0 || g.Size > 1<<22 {
			p.errorf(p.tok, "array size %d out of range", g.Size)
			g.Size = 1
		}
		p.expectPunct("]")
	}
	if p.acceptPunct("=") {
		p.parseGlobalInit(g)
	}
	p.expectPunct(";")
	return g
}

func (p *parser) parseGlobalInit(g *Global) {
	if g.IsArray {
		if p.tok.kind == tokStringLit {
			if g.Elem != TypeChar {
				p.errorf(p.tok, "string initializer requires a char array")
			}
			s := p.next().text
			if len(s) > g.Size {
				p.errorf(p.tok, "string initializer longer than array (%d > %d)", len(s), g.Size)
				s = s[:g.Size]
			}
			for i := 0; i < len(s); i++ {
				g.Init = append(g.Init, constVal{i: int64(s[i])})
			}
			return
		}
		p.expectPunct("{")
		for !p.isPunct("}") && p.tok.kind != tokEOF {
			g.Init = append(g.Init, p.constant(g.Elem))
			if !p.acceptPunct(",") {
				break
			}
		}
		p.expectPunct("}")
		if len(g.Init) > g.Size {
			p.errorf(p.tok, "%d initializers for array of %d", len(g.Init), g.Size)
			g.Init = g.Init[:g.Size]
		}
		return
	}
	g.Init = []constVal{p.constant(g.Elem)}
}

// constant parses a literal with optional unary minus, for initializers.
func (p *parser) constant(want Type) constVal {
	neg := p.acceptPunct("-")
	t := p.next()
	switch t.kind {
	case tokIntLit, tokCharLit:
		if want == TypeFloat {
			p.errorf(t, "float initializer required")
		}
		v := t.ival
		if neg {
			v = -v
		}
		return constVal{i: v}
	case tokFloatLit:
		if want != TypeFloat {
			p.errorf(t, "integer initializer required")
		}
		v := t.fval
		if neg {
			v = -v
		}
		return constVal{f: v, isFloat: true}
	default:
		p.errorf(t, "expected constant, found %s", t)
		return constVal{}
	}
}

func (p *parser) parseFunc(ret Type, name string, tolerant bool, line int) *Func {
	f := &Func{Name: name, Ret: ret, Tolerant: tolerant, Line: line}
	p.expectPunct("(")
	if p.acceptKw("void") {
		// (void) parameter list
	} else if !p.isPunct(")") {
		for {
			pt, ok := p.typeName()
			if !ok || pt == TypeVoid {
				p.errorf(p.tok, "expected parameter type, found %s", p.tok)
				break
			}
			pl := p.tok.line
			p.next()
			ptr := p.acceptPunct("*")
			pname := p.expectIdent()
			if pt == TypeChar && !ptr {
				pt = TypeInt // scalar char parameters behave as int
			}
			f.Params = append(f.Params, Param{Name: pname, Elem: pt, Ptr: ptr, Line: pl})
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	p.expectPunct(")")
	f.Body = p.parseBlock()
	return f
}

func (p *parser) parseBlock() *Block {
	b := &Block{Line: p.tok.line}
	p.expectPunct("{")
	for !p.isPunct("}") && p.tok.kind != tokEOF {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expectPunct("}")
	return b
}

func (p *parser) parseStmt() Stmt {
	t := p.tok
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isPunct(";"):
		p.next()
		return &Block{Line: t.line}
	case p.isKw("if"):
		p.next()
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		then := p.parseStmt()
		var els Stmt
		if p.acceptKw("else") {
			els = p.parseStmt()
		}
		return &If{Cond: cond, Then: then, Else: els, Line: t.line}
	case p.isKw("while"):
		p.next()
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		return &While{Cond: cond, Body: p.parseStmt(), Line: t.line}
	case p.isKw("for"):
		p.next()
		p.expectPunct("(")
		f := &For{Line: t.line}
		if !p.isPunct(";") {
			f.Init = p.parseExpr()
		}
		p.expectPunct(";")
		if !p.isPunct(";") {
			f.Cond = p.parseExpr()
		}
		p.expectPunct(";")
		if !p.isPunct(")") {
			f.Post = p.parseExpr()
		}
		p.expectPunct(")")
		f.Body = p.parseStmt()
		return f
	case p.isKw("break"):
		p.next()
		p.expectPunct(";")
		return &Break{Line: t.line}
	case p.isKw("continue"):
		p.next()
		p.expectPunct(";")
		return &Continue{Line: t.line}
	case p.isKw("return"):
		p.next()
		r := &Return{Line: t.line}
		if !p.isPunct(";") {
			r.E = p.parseExpr()
		}
		p.expectPunct(";")
		return r
	case p.isKw("int") || p.isKw("char") || p.isKw("float"):
		dt, _ := p.typeName()
		p.next()
		if dt == TypeChar {
			dt = TypeInt // scalar char locals behave as int
		}
		name := p.expectIdent()
		d := &Decl{Name: name, T: dt, Line: t.line}
		if p.acceptPunct("=") {
			d.Init = p.parseExpr()
		}
		p.expectPunct(";")
		return d
	case p.isKw("const") || p.isKw("void") || p.isKw("tolerant") || p.isKw("else"):
		p.errorf(t, "unexpected %q", t.text)
		p.next()
		return &Block{Line: t.line}
	default:
		e := p.parseExpr()
		p.expectPunct(";")
		return &ExprStmt{E: e, Line: t.line}
	}
}

// Expression parsing: precedence climbing.

func (p *parser) parseExpr() Expr { return p.parseAssign() }

func (p *parser) parseAssign() Expr {
	lhs := p.parseBinary(0)
	if p.isPunct("=") {
		t := p.next()
		rhs := p.parseAssign()
		switch lhs.(type) {
		case *VarRef, *Index:
		default:
			p.errorf(t, "left side of assignment is not assignable")
		}
		return &Assign{exprBase: exprBase{line: t.line}, LHS: lhs, RHS: rhs}
	}
	return lhs
}

// binary operator precedence, lowest first.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		if p.tok.kind != tokPunct {
			return lhs
		}
		prec, ok := binPrec[p.tok.text]
		if !ok || prec < minPrec {
			return lhs
		}
		op := p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &Binary{exprBase: exprBase{line: op.line}, Op: op.text, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() Expr {
	t := p.tok
	switch {
	case p.isPunct("-") || p.isPunct("!") || p.isPunct("~"):
		p.next()
		x := p.parseUnary()
		// Fold negated literals so "-5" and "-1.5" are constants.
		if t.text == "-" {
			switch lit := x.(type) {
			case *IntLit:
				lit.V = -lit.V
				return lit
			case *FloatLit:
				lit.V = -lit.V
				return lit
			}
		}
		return &Unary{exprBase: exprBase{line: t.line}, Op: t.text, X: x}
	case p.isPunct("(") && p.peek.kind == tokKeyword && (p.peek.text == "int" || p.peek.text == "float"):
		p.next()
		to, _ := p.typeName()
		p.next()
		p.expectPunct(")")
		return &Cast{exprBase: exprBase{line: t.line}, To: to, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() Expr {
	t := p.tok
	switch t.kind {
	case tokIntLit, tokCharLit:
		p.next()
		return &IntLit{exprBase: exprBase{line: t.line}, V: t.ival}
	case tokFloatLit:
		p.next()
		return &FloatLit{exprBase: exprBase{line: t.line}, V: t.fval}
	case tokIdent:
		name := p.next().text
		if p.isPunct("(") {
			p.next()
			c := &Call{exprBase: exprBase{line: t.line}, Name: name}
			for !p.isPunct(")") && p.tok.kind != tokEOF {
				c.Args = append(c.Args, p.parseExpr())
				if !p.acceptPunct(",") {
					break
				}
			}
			p.expectPunct(")")
			return c
		}
		v := &VarRef{exprBase: exprBase{line: t.line}, Name: name}
		if p.acceptPunct("[") {
			idx := p.parseExpr()
			p.expectPunct("]")
			return &Index{exprBase: exprBase{line: t.line}, Base: v, Idx: idx}
		}
		return v
	default:
		if p.acceptPunct("(") {
			e := p.parseExpr()
			p.expectPunct(")")
			return e
		}
		p.errorf(t, "expected expression, found %s", t)
		p.next()
		return &IntLit{exprBase: exprBase{line: t.line}}
	}
}
