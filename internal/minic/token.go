// Package minic implements a small C-like language and its compiler to the
// toolchain's MIPS-like assembly. It stands in for the paper's "automatic
// compiler" operating at the MIPS assembly level: the programmer writes the
// application in MiniC, marks the error-tolerant functions with the
// `tolerant` qualifier (the paper's "user identifies which functions can
// tolerate some error to their data"), and the toolchain tags instructions
// via the control-data analysis in internal/core.
//
// The language: `int`, `char` (unsigned byte, arrays only), `float`
// (binary32); global scalars and one-dimensional global arrays with
// constant initializers; functions with scalar and pointer parameters;
// `if`/`else`, `while`, `for`, `break`, `continue`, `return`; C operator
// set with short-circuit `&&`/`||`; explicit casts `(int)`/`(float)` and no
// implicit numeric conversions. I/O happens through the builtins
// `inb/inh/inw/outb/outh/outw` (byte/halfword/word read and write on the
// simulator's input and output streams) and `exit`.
package minic

import (
	"fmt"
	"strings"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokIntLit
	tokFloatLit
	tokCharLit
	tokStringLit
	tokKeyword
	tokPunct
)

var keywords = map[string]bool{
	"int": true, "char": true, "float": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"break": true, "continue": true, "return": true,
	"const": true, "tolerant": true,
}

// token is one lexical token.
type token struct {
	kind tokKind
	text string  // identifier, punctuation, or keyword text
	ival int64   // tokIntLit, tokCharLit
	fval float64 // tokFloatLit
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokIntLit:
		return fmt.Sprintf("%d", t.ival)
	case tokFloatLit:
		return fmt.Sprintf("%g", t.fval)
	case tokCharLit:
		return fmt.Sprintf("%q", rune(t.ival))
	case tokStringLit:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// Error is a compile diagnostic with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: %d:%d: %s", e.Line, e.Col, e.Msg) }

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	errs []*Error
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errorf(line, col int, format string, args ...any) {
	lx.errs = append(lx.errs, &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)})
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekByte2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekByte2() == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByte2() == '*':
			line, col := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByte2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(line, col, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// multi-byte punctuation, longest first.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ",", ";",
}

func (lx *lexer) next() token {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}
	}
	c := lx.peekByte()

	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}

	case isDigit(c):
		return lx.number(line, col)

	case c == '\'':
		return lx.charLit(line, col)

	case c == '"':
		return lx.stringLit(line, col)
	}

	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			for range p {
				lx.advance()
			}
			return token{kind: tokPunct, text: p, line: line, col: col}
		}
	}
	lx.errorf(line, col, "unexpected character %q", rune(c))
	lx.advance()
	return lx.next()
}

func (lx *lexer) number(line, col int) token {
	start := lx.pos
	if lx.peekByte() == '0' && (lx.peekByte2() == 'x' || lx.peekByte2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && isHex(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		var v uint64
		if _, err := fmt.Sscanf(text, "0x%x", &v); err != nil {
			if _, err := fmt.Sscanf(text, "0X%x", &v); err != nil {
				lx.errorf(line, col, "bad hex literal %q", text)
			}
		}
		if v > 0xFFFFFFFF {
			lx.errorf(line, col, "hex literal %q exceeds 32 bits", text)
		}
		return token{kind: tokIntLit, ival: int64(v), line: line, col: col}
	}
	isFloat := false
	for lx.pos < len(lx.src) && (isDigit(lx.peekByte()) || lx.peekByte() == '.') {
		if lx.peekByte() == '.' {
			if isFloat || !isDigit(lx.peekByte2()) {
				break
			}
			isFloat = true
		}
		lx.advance()
	}
	// Exponent part, e.g. 1e6 or 2.5e-3.
	if lx.pos < len(lx.src) && (lx.peekByte() == 'e' || lx.peekByte() == 'E') {
		save := lx.pos
		lx.advance()
		if lx.peekByte() == '+' || lx.peekByte() == '-' {
			lx.advance()
		}
		if isDigit(lx.peekByte()) {
			isFloat = true
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		} else {
			lx.pos = save // it was an identifier boundary, not an exponent
		}
	}
	text := lx.src[start:lx.pos]
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			lx.errorf(line, col, "bad float literal %q", text)
		}
		return token{kind: tokFloatLit, fval: f, line: line, col: col}
	}
	var v int64
	if _, err := fmt.Sscanf(text, "%d", &v); err != nil || v > 0xFFFFFFFF {
		lx.errorf(line, col, "bad integer literal %q", text)
	}
	return token{kind: tokIntLit, ival: v, line: line, col: col}
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *lexer) charLit(line, col int) token {
	lx.advance() // opening quote
	var v int64
	switch c := lx.peekByte(); c {
	case 0, '\'':
		lx.errorf(line, col, "empty character literal")
	case '\\':
		lx.advance()
		switch e := lx.advance(); e {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			lx.errorf(line, col, "unknown escape '\\%c'", e)
		}
	default:
		v = int64(lx.advance())
	}
	if lx.peekByte() == '\'' {
		lx.advance()
	} else {
		lx.errorf(line, col, "unterminated character literal")
	}
	return token{kind: tokCharLit, ival: v, line: line, col: col}
}

func (lx *lexer) stringLit(line, col int) token {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) || lx.peekByte() == '\n' {
			lx.errorf(line, col, "unterminated string literal")
			break
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			switch e := lx.advance(); e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '0':
				b.WriteByte(0)
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				lx.errorf(line, col, "unknown escape '\\%c'", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	return token{kind: tokStringLit, text: b.String(), line: line, col: col}
}
