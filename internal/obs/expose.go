// Prometheus text exposition: the version-0.0.4 format every scraper
// speaks. Families render sorted by name and children sorted by label
// values, so output is deterministic and testable line-by-line.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler serves the registry as text exposition at any path — mount
// it at GET /metrics. Scrapers that send
// `Accept: application/openmetrics-text` get OpenMetrics 1.0 with
// exemplars; everyone else gets Prometheus 0.0.4.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", ContentTypeOpenMetrics)
			r.WriteOpenMetrics(w) //nolint:errcheck // the scraper is gone; nothing to do
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // the scraper is gone; nothing to do
	})
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.Lock()
	fn := f.fn
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	if fn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, fmtFloat(fn()))
		return nil
	}
	sort.Slice(children, func(i, j int) bool {
		return labelKey(children[i].labelVals) < labelKey(children[j].labelVals)
	})
	for _, c := range children {
		if f.kind == KindHistogram {
			c.writeHistogram(w)
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, c.labelVals, ""), fmtFloat(math.Float64frombits(c.bits.Load())))
	}
	return nil
}

func (c *child) writeHistogram(w *bufio.Writer) {
	f := c.fam
	var cum uint64
	for i, le := range f.buckets {
		cum += c.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labelVals, fmtFloat(le)), cum)
	}
	// The +Inf bucket equals the total count by definition.
	count := c.count.Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labelVals, "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labelVals, ""), fmtFloat(math.Float64frombits(c.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, c.labelVals, ""), count)
}

// labelString renders {a="x",b="y"} (plus le when non-empty), or ""
// when there are no labels at all.
func labelString(names, vals []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// fmtFloat renders values the way Prometheus clients conventionally do:
// integers without an exponent or trailing zeros, everything else via
// strconv's shortest representation.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
