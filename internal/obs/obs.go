// Package obs is the zero-dependency observability plane: race-safe
// Counter/Gauge/Histogram primitives with labels, a Registry, and a
// Prometheus text-exposition encoder — stdlib only, matching the
// module's empty dependency set.
//
// Metric updates are lock-free atomics on pre-resolved handles, so
// instrumented hot paths (the simulator inner loop boundary, campaign
// shards) pay one atomic add per event. Instrumentation is
// observationally pure: it never touches RNG streams, trial ordering or
// any value a campaign computes — a guard test at the repo root pins
// report bytes identical with metrics enabled and disabled.
//
// Collection is process-global by default: packages register families
// on Default() at init and the service exposes that registry at
// GET /metrics. Tests that need isolation construct private registries
// with NewRegistry. Registration is idempotent — asking for an existing
// (name, kind, labels) family returns the same family, and Func metrics
// re-registering under the same name replace their callback — so
// constructing many servers against one process-global registry is
// safe.
//
// docs/OBSERVABILITY.md holds the metric catalog and scrape examples.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates metric families.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Registry owns a set of metric families and renders them in Prometheus
// text exposition format. It is safe for concurrent registration,
// updates and collection. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	enabled  atomic.Bool
}

// NewRegistry creates an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.enabled.Store(true)
	return r
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default is the process-global registry instrumented packages (sim,
// campaign, server, the Lab) register into. It is enabled by default;
// SetEnabled(false) turns every update on it into a no-op without
// unregistering anything.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// SetEnabled flips metric collection on this registry. Disabled
// registries still expose their families (values frozen); updates
// return without writing.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Enabled reports whether updates are being collected.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// family is one named metric: fixed kind, help, label names, and a
// child per label-value combination (one child with the empty key for
// unlabelled metrics). Func families have fn set and no children.
type family struct {
	reg    *Registry
	name   string
	help   string
	kind   Kind
	labels []string

	mu       sync.Mutex
	children map[string]*child
	fn       func() float64 // Func families only
	buckets  []float64      // histogram families only
}

// child is one metric instance. Counters and gauges use bits (a float64
// as atomic bits); histograms use counts/sum/count.
type child struct {
	fam       *family
	labelVals []string

	bits atomic.Uint64 // counter/gauge value

	counts []atomic.Uint64 // histogram: per-bucket, cumulative at render
	sum    atomic.Uint64   // histogram: float64 bits
	count  atomic.Uint64   // histogram: observation count

	// exemplars holds one traced observation per bucket (last write
	// wins; index len(buckets) is the +Inf bucket). Only the
	// OpenMetrics encoder renders them; the 0.0.4 exposition is
	// byte-stable with or without exemplars.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one histogram observation to the trace that produced
// it — the OpenMetrics mechanism connecting latency buckets to trace
// IDs.
type exemplar struct {
	traceID string
	value   float64
	ts      time.Time
}

// validName reports whether s is a legal Prometheus metric or label
// name: [a-zA-Z_][a-zA-Z0-9_]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the family for (name, kind, labels), creating it on
// first use. Re-registering with a different kind or label set panics:
// that is a programming error, caught at init time.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		reg:      r,
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
		buckets:  buckets,
	}
	r.families[name] = f
	return f
}

// labelKey joins label values into the child-map key. Values are
// length-prefixed so ("a,b") and ("a","b") cannot collide.
func labelKey(vals []string) string {
	if len(vals) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&b, "%d:%s,", len(v), v)
	}
	return b.String()
}

func (f *family) child(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s takes %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := labelKey(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{fam: f, labelVals: append([]string(nil), vals...)}
	if f.kind == KindHistogram {
		c.counts = make([]atomic.Uint64, len(f.buckets))
		c.exemplars = make([]atomic.Pointer[exemplar], len(f.buckets)+1)
	}
	f.children[key] = c
	return c
}

// addFloat atomically adds delta to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{r.lookup(name, help, KindCounter, nil, nil).child(nil)}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(v float64) {
	if c == nil || c.c == nil || v < 0 || !c.c.fam.reg.Enabled() {
		return
	}
	addFloat(&c.c.bits, v)
}

// Value reads the current count.
func (c *Counter) Value() float64 {
	if c == nil || c.c == nil {
		return 0
	}
	return math.Float64frombits(c.c.bits.Load())
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.lookup(name, help, KindCounter, nil, labels)}
}

// With resolves the child for the given label values. Resolve once and
// reuse the handle on hot paths.
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	return &Counter{v.f.child(vals)}
}

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{r.lookup(name, help, KindGauge, nil, nil).child(nil)}
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.c == nil || !g.c.fam.reg.Enabled() {
		return
	}
	g.c.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative allowed).
func (g *Gauge) Add(delta float64) {
	if g == nil || g.c == nil || !g.c.fam.reg.Enabled() {
		return
	}
	addFloat(&g.c.bits, delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil || g.c == nil {
		return 0
	}
	return math.Float64frombits(g.c.bits.Load())
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.lookup(name, help, KindGauge, nil, labels)}
}

// With resolves the child for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	return &Gauge{v.f.child(vals)}
}

// CounterFunc registers a counter whose value is read from fn at
// collection time — for sources that already keep their own monotonic
// totals (Lab build counts, runtime stats). Re-registering the same
// name replaces the callback, so per-instance sources (a new Lab per
// server) can re-bind across constructions.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, KindCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at collection time, with the
// same replace-on-re-register semantics as CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// DefBuckets are general-purpose duration buckets in seconds, following
// the conventional Prometheus defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — the shape used for detection-latency (instructions) and
// shard wall-clock histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Histogram observes a distribution over fixed buckets.
type Histogram struct{ c *child }

// Histogram registers (or returns) an unlabelled histogram with the
// given ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return &Histogram{r.histFamily(name, help, buckets).child(nil)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r.histFamily(name, help, buckets, labels...)}
}

// With resolves the child for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	return &Histogram{v.f.child(vals)}
}

func (r *Registry) histFamily(name, help string, buckets []float64, labels ...string) *family {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %s buckets are not ascending", name))
	}
	return r.lookup(name, help, KindHistogram, buckets, labels)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.c == nil || !h.c.fam.reg.Enabled() {
		return
	}
	c := h.c
	// Buckets store non-cumulative counts; the encoder accumulates, so
	// one atomic add suffices per observation.
	i := sort.SearchFloat64s(c.fam.buckets, v)
	if i < len(c.counts) {
		c.counts[i].Add(1)
	}
	addFloat(&c.sum, v)
	c.count.Add(1)
}

// ObserveExemplar records v like Observe and additionally attaches the
// trace ID to the bucket v falls in as its exemplar (last write wins).
// The OpenMetrics exposition renders it as
// `... # {trace_id="..."} value timestamp`, letting a latency bucket be
// joined to the trace that produced it. An empty traceID degrades to a
// plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if h == nil || h.c == nil || !h.c.fam.reg.Enabled() || traceID == "" {
		return
	}
	c := h.c
	i := sort.SearchFloat64s(c.fam.buckets, v) // len(buckets) == +Inf slot
	c.exemplars[i].Store(&exemplar{traceID: traceID, value: v, ts: time.Now()})
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil || h.c == nil {
		return 0
	}
	return h.c.count.Load()
}

// Sum reads the total of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil || h.c == nil {
		return 0
	}
	return math.Float64frombits(h.c.sum.Load())
}
