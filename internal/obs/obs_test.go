package obs

import (
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_counter_total", "a counter")
	v := r.CounterVec("test_labelled_total", "a labelled counter", "who")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			who := v.With(fmt.Sprintf("g%d", g%4))
			for i := 0; i < perG; i++ {
				c.Inc()
				who.Add(2)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %v, want %d", got, goroutines*perG)
	}
	var total float64
	for g := 0; g < 4; g++ {
		total += v.With(fmt.Sprintf("g%d", g)).Value()
	}
	if total != goroutines*perG*2 {
		t.Errorf("labelled total = %v, want %d", total, goroutines*perG*2)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "a histogram", []float64{1, 10, 100})
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	var wantSum float64
	for i := 0; i < perG; i++ {
		wantSum += float64(i % 200)
	}
	wantSum *= goroutines
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}
}

func TestDisabledRegistryDropsUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	g := r.Gauge("test_g", "t")
	h := r.Histogram("test_h", "t", []float64{1})
	c.Inc()
	r.SetEnabled(false)
	c.Inc()
	g.Set(5)
	h.Observe(1)
	if c.Value() != 1 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled registry collected: c=%v g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 2 {
		t.Errorf("re-enabled counter = %v, want 2", c.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "x")
	c.Inc()
	c.Add(1)
	r.CounterVec("x", "x", "l").With("v").Inc()
	r.Gauge("x", "x").Set(1)
	r.GaugeVec("x", "x", "l").With("v").Add(1)
	r.Histogram("x", "x", nil).Observe(1)
	r.HistogramVec("x", "x", nil, "l").With("v").Observe(1)
	r.CounterFunc("x", "x", func() float64 { return 1 })
	r.GaugeFunc("x", "x", func() float64 { return 1 })
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "help")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Errorf("re-registered counters diverged: %v vs %v", a.Value(), b.Value())
	}
	calls := 0
	r.GaugeFunc("fn_gauge", "h", func() float64 { calls++; return 1 })
	r.GaugeFunc("fn_gauge", "h", func() float64 { calls += 100; return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if calls != 100 {
		t.Errorf("replaced func called %d times, want the replacement once (100)", calls)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("clash", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lead", "has-dash", "has space", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestExpositionFormat validates the rendered text line by line: every
// line is a comment or a well-formed sample, HELP/TYPE precede samples,
// families are sorted, histogram buckets are cumulative and end at
// +Inf, and the values match what was recorded.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("app_requests_total", "requests served", "route", "code")
	c.With("/jobs", "200").Add(3)
	c.With("/jobs", "404").Inc()
	r.Gauge("app_queue_depth", "queued jobs").Set(2)
	h := r.Histogram("app_latency_seconds", "request latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("app_uptime_seconds", "seconds since start", func() float64 { return 42.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	var (
		lastFamily string
		sawHelp    = map[string]bool{}
		sawType    = map[string]bool{}
		samples    = map[string]string{}
	)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if parts[0] < lastFamily {
				t.Errorf("line %d: family %q out of sort order (after %q)", ln+1, parts[0], lastFamily)
			}
			lastFamily = parts[0]
			sawHelp[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: unknown TYPE %q", ln+1, parts[1])
			}
			sawType[parts[0]] = true
			continue
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("line %d: value %q is not a float: %v", ln+1, val, err)
			}
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			name = key[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !sawHelp[base] && !sawHelp[name] {
			t.Errorf("line %d: sample %q before its HELP", ln+1, name)
		}
		samples[key] = val
	}
	for fam := range sawHelp {
		if !sawType[fam] {
			t.Errorf("family %q has HELP but no TYPE", fam)
		}
	}

	expect := map[string]string{
		`app_requests_total{route="/jobs",code="200"}`: "3",
		`app_requests_total{route="/jobs",code="404"}`: "1",
		`app_queue_depth`:                       "2",
		`app_latency_seconds_bucket{le="0.1"}`:  "1",
		`app_latency_seconds_bucket{le="1"}`:    "2",
		`app_latency_seconds_bucket{le="+Inf"}`: "3",
		`app_latency_seconds_count`:             "3",
		`app_uptime_seconds`:                    "42.5",
	}
	for k, want := range expect {
		if got, ok := samples[k]; !ok {
			t.Errorf("missing sample %s", k)
		} else if got != want {
			t.Errorf("sample %s = %s, want %s", k, got, want)
		}
	}
	if got, err := strconv.ParseFloat(samples["app_latency_seconds_sum"], 64); err != nil || math.Abs(got-5.55) > 1e-9 {
		t.Errorf("histogram sum = %q, want 5.55", samples["app_latency_seconds_sum"])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "h", "v").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "handler_total 1") {
		t.Errorf("body missing sample:\n%s", body)
	}
}

func TestLabelKeyCollision(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("coll_total", "h", "a", "b")
	v.With("x,y", "z").Inc()
	v.With("x", "y,z").Inc()
	if v.With("x,y", "z").Value() != 1 || v.With("x", "y,z").Value() != 1 {
		t.Error("distinct label tuples collided")
	}
}
