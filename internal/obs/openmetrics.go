// OpenMetrics 1.0 text exposition — the second wire format the
// registry speaks, alongside Prometheus 0.0.4 (expose.go). The formats
// differ in exactly three ways this encoder implements: counter
// families declare HELP/TYPE under the name with the `_total` suffix
// stripped, histogram bucket lines may carry exemplars
// (`# {trace_id="..."} value timestamp`), and the stream ends with
// `# EOF`. The 0.0.4 output is pinned byte-stable by tests, so
// exemplars render only here.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentTypeOpenMetrics is the media type WriteOpenMetrics produces;
// Handler switches to it when the scraper's Accept header asks for
// OpenMetrics.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders every family in OpenMetrics 1.0 text format,
// including histogram exemplars recorded via ObserveExemplar.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.writeOpen(bw)
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

func (f *family) writeOpen(w *bufio.Writer) {
	f.mu.Lock()
	fn := f.fn
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.Unlock()

	// OpenMetrics names counter families without the _total suffix; the
	// sample lines keep it. Every counter in this repo follows the
	// _total convention, so base+"_total" round-trips to f.name.
	base, sample := f.name, f.name
	if f.kind == KindCounter {
		base = strings.TrimSuffix(f.name, "_total")
		sample = base + "_total"
	}
	fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", base, f.kind)
	if fn != nil {
		fmt.Fprintf(w, "%s %s\n", sample, fmtFloat(fn()))
		return
	}
	sort.Slice(children, func(i, j int) bool {
		return labelKey(children[i].labelVals) < labelKey(children[j].labelVals)
	})
	for _, c := range children {
		if f.kind == KindHistogram {
			c.writeOpenHistogram(w)
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", sample, labelString(f.labels, c.labelVals, ""), fmtFloat(math.Float64frombits(c.bits.Load())))
	}
}

func (c *child) writeOpenHistogram(w *bufio.Writer) {
	f := c.fam
	var cum uint64
	for i, le := range f.buckets {
		cum += c.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, labelString(f.labels, c.labelVals, fmtFloat(le)), cum, c.exemplarSuffix(i))
	}
	count := c.count.Load()
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, labelString(f.labels, c.labelVals, "+Inf"), count, c.exemplarSuffix(len(f.buckets)))
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labelVals, ""), fmtFloat(math.Float64frombits(c.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, c.labelVals, ""), count)
}

// exemplarSuffix renders ` # {trace_id="..."} value timestamp` for the
// bucket's exemplar, or "" when none was recorded.
func (c *child) exemplarSuffix(i int) string {
	e := c.exemplars[i].Load()
	if e == nil {
		return ""
	}
	ts := strconv.FormatFloat(float64(e.ts.UnixNano())/1e9, 'f', 3, 64)
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s", escapeLabel(e.traceID), fmtFloat(e.value), ts)
}
