package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOpenMetricsFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("om_requests_total", "Requests.").Add(3)
	r.Gauge("om_depth", "Depth.").Set(2)
	h := r.Histogram("om_latency_seconds", "Latency.", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(0.5)
	h.ObserveExemplar(10, "00f067aa0ba902b700f067aa0ba902b7")

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Counter family declared without _total, sampled with it; exemplars
	// on the buckets that got them; gauge untouched.
	checks := []string{
		"# HELP om_requests Requests.\n",
		"# TYPE om_requests counter\n",
		"om_requests_total 3\n",
		"# TYPE om_depth gauge\n",
		"om_depth 2\n",
		"# TYPE om_latency_seconds histogram\n",
		`om_latency_seconds_bucket{le="0.1"} 1 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05 `,
		`om_latency_seconds_bucket{le="+Inf"} 3 # {trace_id="00f067aa0ba902b700f067aa0ba902b7"} 10 `,
		"om_latency_seconds_count 3\n",
	}
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q\n---\n%s", want, out)
		}
	}
	// Bucket without an exemplar has no suffix.
	if !strings.Contains(out, "om_latency_seconds_bucket{le=\"1\"} 2\n") {
		t.Errorf("exemplar leaked onto unexemplared bucket:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("missing # EOF terminator")
	}
}

// TestPrometheusUnchangedByExemplars pins that the 0.0.4 exposition
// ignores exemplars entirely.
func TestPrometheusUnchangedByExemplars(t *testing.T) {
	render := func(withExemplar bool) string {
		r := NewRegistry()
		h := r.Histogram("pin_seconds", "Pinned.", []float64{1})
		if withExemplar {
			h.ObserveExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736")
		} else {
			h.Observe(0.5)
		}
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		return buf.String()
	}
	if with, without := render(true), render(false); with != without {
		t.Fatalf("exemplars changed 0.0.4 output:\nwith:\n%s\nwithout:\n%s", with, without)
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("neg_total", "Neg.").Inc()

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("default content type = %q", ct)
	}
	if strings.Contains(rec.Body.String(), "# EOF") {
		t.Fatal("0.0.4 response carries OpenMetrics terminator")
	}

	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != ContentTypeOpenMetrics {
		t.Fatalf("negotiated content type = %q", ct)
	}
	if !strings.HasSuffix(rec.Body.String(), "# EOF\n") {
		t.Fatal("OpenMetrics response missing # EOF")
	}
}

func TestObserveExemplarDisabledRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dis_seconds", "Disabled.", []float64{1})
	r.SetEnabled(false)
	h.ObserveExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736")
	r.SetEnabled(true)
	var buf bytes.Buffer
	r.WriteOpenMetrics(&buf)
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatal("disabled registry recorded an exemplar")
	}
	if !strings.Contains(buf.String(), "dis_seconds_count 0\n") {
		t.Fatal("disabled registry recorded an observation")
	}
}
