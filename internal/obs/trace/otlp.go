package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"etap/internal/obs"
)

// OTLP/HTTP JSON export, hand-rolled against the OTLP 1.x JSON mapping
// (resourceSpans → scopeSpans → spans; IDs lowercase hex; timestamps as
// decimal-string unix nanos; attribute values tagged by kind). No SDK,
// no generated code — the subset below is what collectors actually
// require to ingest spans.

// otlpPath is appended to the configured endpoint when the URL carries
// no path, per the OTLP/HTTP spec.
const otlpPath = "/v1/traces"

type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"` // int64 as string, per mapping
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

type otlpAttr struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpEvent struct {
	TimeUnixNano string     `json:"timeUnixNano"`
	Name         string     `json:"name"`
	Attributes   []otlpAttr `json:"attributes,omitempty"`
}

type otlpStatus struct {
	Code    int    `json:"code,omitempty"` // 0 unset, 1 ok, 2 error
	Message string `json:"message,omitempty"`
}

type otlpSpan struct {
	TraceID           string      `json:"traceId"`
	SpanID            string      `json:"spanId"`
	ParentSpanID      string      `json:"parentSpanId,omitempty"`
	Name              string      `json:"name"`
	Kind              int         `json:"kind"` // 1 = SPAN_KIND_INTERNAL
	StartTimeUnixNano string      `json:"startTimeUnixNano"`
	EndTimeUnixNano   string      `json:"endTimeUnixNano"`
	Attributes        []otlpAttr  `json:"attributes,omitempty"`
	Events            []otlpEvent `json:"events,omitempty"`
	Status            *otlpStatus `json:"status,omitempty"`
	DroppedEventsCnt  int         `json:"droppedEventsCount,omitempty"`
}

type otlpScopeSpans struct {
	Scope struct {
		Name string `json:"name"`
	} `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource struct {
		Attributes []otlpAttr `json:"attributes"`
	} `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpPayload struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

func otlpAttrs(attrs []AttrData) []otlpAttr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]otlpAttr, 0, len(attrs))
	for _, a := range attrs {
		oa := otlpAttr{Key: a.Key}
		switch v := a.Value.(type) {
		case string:
			oa.Value.StringValue = &v
		case bool:
			oa.Value.BoolValue = &v
		case int64:
			s := fmt.Sprintf("%d", v)
			oa.Value.IntValue = &s
		case float64:
			oa.Value.DoubleValue = &v
		default:
			s := fmt.Sprintf("%v", v)
			oa.Value.StringValue = &s
		}
		out = append(out, oa)
	}
	return out
}

func unixNano(t time.Time) string { return fmt.Sprintf("%d", t.UnixNano()) }

// encodeOTLP renders one batch of traces as an OTLP/HTTP JSON
// ExportTraceServiceRequest body.
func encodeOTLP(service string, traces []*TraceData) ([]byte, error) {
	var spans []otlpSpan
	for _, td := range traces {
		for _, s := range td.Spans {
			os := otlpSpan{
				TraceID:           td.TraceID,
				SpanID:            s.SpanID,
				ParentSpanID:      s.ParentID,
				Name:              s.Name,
				Kind:              1,
				StartTimeUnixNano: unixNano(s.Start),
				EndTimeUnixNano:   unixNano(s.End),
				Attributes:        otlpAttrs(s.Attrs),
				DroppedEventsCnt:  s.DroppedEvents,
			}
			for _, e := range s.Events {
				os.Events = append(os.Events, otlpEvent{
					TimeUnixNano: unixNano(e.Time),
					Name:         e.Name,
					Attributes:   otlpAttrs(e.Attrs),
				})
			}
			switch s.Status {
			case "ok":
				os.Status = &otlpStatus{Code: 1}
			case "error":
				os.Status = &otlpStatus{Code: 2, Message: s.StatusMessage}
			}
			spans = append(spans, os)
		}
	}
	var rs otlpResourceSpans
	svc := service
	rs.Resource.Attributes = []otlpAttr{{Key: "service.name", Value: otlpValue{StringValue: &svc}}}
	var ss otlpScopeSpans
	ss.Scope.Name = "etap/internal/obs/trace"
	ss.Spans = spans
	rs.ScopeSpans = []otlpScopeSpans{ss}
	return json.Marshal(otlpPayload{ResourceSpans: []otlpResourceSpans{rs}})
}

// exporter pushes completed sampled traces to an OTLP/HTTP collector
// from a single background goroutine. The queue is bounded: when the
// collector is slow or down, traces are dropped and counted rather
// than ever blocking span End paths.
type exporter struct {
	url     string
	service string
	client  *http.Client

	queue chan *TraceData
	done  chan struct{}
	wg    sync.WaitGroup

	exported *obs.Counter
	dropped  *obs.Counter
	errors   *obs.Counter

	// test seams
	backoff func(attempt int) time.Duration
}

const exporterQueueDepth = 64

func newExporter(url string, reg *obs.Registry) *exporter {
	if !strings.Contains(strings.TrimPrefix(strings.TrimPrefix(url, "https://"), "http://"), "/") {
		url += otlpPath
	}
	e := &exporter{
		url:     url,
		service: "etap",
		client:  &http.Client{Timeout: 5 * time.Second},
		queue:   make(chan *TraceData, exporterQueueDepth),
		done:    make(chan struct{}),
		exported: reg.Counter("etap_trace_otlp_exported_total",
			"Traces successfully delivered to the OTLP endpoint."),
		dropped: reg.Counter("etap_trace_otlp_dropped_total",
			"Sampled traces dropped because the OTLP queue was full or delivery failed."),
		errors: reg.Counter("etap_trace_otlp_errors_total",
			"OTLP delivery attempts that failed (before retries exhaust)."),
		backoff: func(attempt int) time.Duration {
			return time.Duration(100*(1<<attempt)) * time.Millisecond
		},
	}
	e.wg.Add(1)
	go e.run()
	return e
}

// enqueue hands a completed trace to the background sender; drops (and
// counts) when the queue is full.
func (e *exporter) enqueue(td *TraceData) {
	select {
	case e.queue <- td:
	default:
		e.dropped.Inc()
	}
}

func (e *exporter) run() {
	defer e.wg.Done()
	for {
		select {
		case td := <-e.queue:
			e.send(td)
		case <-e.done:
			// Drain whatever is queued, then exit.
			for {
				select {
				case td := <-e.queue:
					e.send(td)
				default:
					return
				}
			}
		}
	}
}

// send delivers one trace with up to 3 attempts and exponential
// backoff; on exhaustion the trace is dropped and counted.
func (e *exporter) send(td *TraceData) {
	body, err := encodeOTLP(e.service, []*TraceData{td})
	if err != nil {
		e.dropped.Inc()
		return
	}
	const attempts = 3
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(e.backoff(i - 1)):
			case <-e.done:
				// Shutting down: one final immediate attempt, no wait.
			}
		}
		resp, err := e.client.Post(e.url, "application/json", bytes.NewReader(body))
		if err == nil {
			ok := resp.StatusCode >= 200 && resp.StatusCode < 300
			resp.Body.Close()
			if ok {
				e.exported.Inc()
				return
			}
			// 4xx is permanent: retrying identical bytes cannot help.
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				e.errors.Inc()
				e.dropped.Inc()
				return
			}
		}
		e.errors.Inc()
	}
	e.dropped.Inc()
}

// close stops the exporter after flushing queued traces.
func (e *exporter) close() {
	close(e.done)
	e.wg.Wait()
}
