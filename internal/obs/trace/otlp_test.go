package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"etap/internal/obs"
)

// TestOTLPEncodeGolden pins the OTLP/HTTP JSON mapping byte for byte:
// hex IDs, string-encoded unix nanos, tagged attribute values, status
// codes. Collectors parse exactly this shape.
func TestOTLPEncodeGolden(t *testing.T) {
	t0 := time.Unix(1700000000, 0).UTC()
	td := &TraceData{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		Spans: []SpanData{
			{
				SpanID: "00f067aa0ba902b7",
				Name:   "root",
				Start:  t0,
				End:    t0.Add(time.Millisecond),
				Status: "error", StatusMessage: "boom",
				Attrs: []AttrData{
					{Key: "s", Value: "str"},
					{Key: "i", Value: int64(-7)},
					{Key: "f", Value: 1.5},
					{Key: "b", Value: true},
				},
				Events: []EventData{
					{Name: "trial", Time: t0.Add(time.Microsecond), Attrs: []AttrData{{Key: "n", Value: int64(3)}}},
				},
				DroppedEvents: 2,
			},
			{
				SpanID:   "0102030405060708",
				ParentID: "00f067aa0ba902b7",
				Name:     "child",
				Start:    t0,
				End:      t0,
				Status:   "ok",
			},
		},
	}
	got, err := encodeOTLP("etap", []*TraceData{td})
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"resourceSpans":[{"resource":{"attributes":[{"key":"service.name","value":{"stringValue":"etap"}}]},"scopeSpans":[{"scope":{"name":"etap/internal/obs/trace"},"spans":[{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","spanId":"00f067aa0ba902b7","name":"root","kind":1,"startTimeUnixNano":"1700000000000000000","endTimeUnixNano":"1700000000001000000","attributes":[{"key":"s","value":{"stringValue":"str"}},{"key":"i","value":{"intValue":"-7"}},{"key":"f","value":{"doubleValue":1.5}},{"key":"b","value":{"boolValue":true}}],"events":[{"timeUnixNano":"1700000000000001000","name":"trial","attributes":[{"key":"n","value":{"intValue":"3"}}]}],"status":{"code":2,"message":"boom"},"droppedEventsCount":2},{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","spanId":"0102030405060708","parentSpanId":"00f067aa0ba902b7","name":"child","kind":1,"startTimeUnixNano":"1700000000000000000","endTimeUnixNano":"1700000000000000000","status":{"code":1}}]}]}]}`
	if string(got) != want {
		t.Fatalf("OTLP encoding drifted:\n got: %s\nwant: %s", got, want)
	}
}

// otlpSink is an httptest collector that records request bodies.
type otlpSink struct {
	mu     sync.Mutex
	bodies [][]byte
	fail   int // fail the first N requests with 503
	paths  []string
}

func (s *otlpSink) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		defer s.mu.Unlock()
		s.paths = append(s.paths, r.URL.Path)
		if s.fail > 0 {
			s.fail--
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		s.bodies = append(s.bodies, body)
	}
}

func (s *otlpSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bodies)
}

func TestOTLPExportEndToEnd(t *testing.T) {
	sink := &otlpSink{}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	reg := obs.NewRegistry()
	tr := New(Config{OTLPURL: srv.URL, Registry: reg})
	ctx, root := tr.Start(context.Background(), "req")
	_, child := tr.Start(ctx, "work")
	child.End()
	root.End()
	if err := tr.Close(); err != nil { // flushes the queue
		t.Fatal(err)
	}

	if sink.count() != 1 {
		t.Fatalf("collector received %d batches, want 1", sink.count())
	}
	sink.mu.Lock()
	path, body := sink.paths[0], sink.bodies[0]
	sink.mu.Unlock()
	if path != "/v1/traces" {
		t.Fatalf("posted to %q, want /v1/traces", path)
	}
	var payload struct {
		ResourceSpans []struct {
			ScopeSpans []struct {
				Spans []struct {
					TraceID string `json:"traceId"`
					Name    string `json:"name"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("collector body not JSON: %v", err)
	}
	spans := payload.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 2 || spans[0].TraceID != root.TraceID() {
		t.Fatalf("exported spans = %+v", spans)
	}
}

func TestOTLPRetryThenSuccess(t *testing.T) {
	sink := &otlpSink{fail: 2}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	reg := obs.NewRegistry()
	tr := New(Config{OTLPURL: srv.URL, Registry: reg})
	tr.exporter.backoff = func(int) time.Duration { return time.Millisecond }
	_, s := tr.Start(context.Background(), "flaky")
	s.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 {
		t.Fatalf("delivered %d, want 1 after retries", sink.count())
	}
}

func TestOTLPPermanentFailureDrops(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	tr := New(Config{OTLPURL: srv.URL, Registry: reg})
	tr.exporter.backoff = func(int) time.Duration { return time.Millisecond }
	_, s := tr.Start(context.Background(), "rejected")
	s.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if v := counterValue(t, reg, "etap_trace_otlp_dropped_total"); v != 1 {
		t.Fatalf("dropped = %v, want 1", v)
	}
}

func TestOTLPUnsampledNotExported(t *testing.T) {
	sink := &otlpSink{}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	reg := obs.NewRegistry()
	tr := New(Config{OTLPURL: srv.URL, SampleRatio: -1, Registry: reg})
	_, s := tr.Start(context.Background(), "quiet")
	s.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 0 {
		t.Fatalf("unsampled trace exported %d times", sink.count())
	}
	if tr.Get(s.TraceID()) == nil {
		t.Fatal("unsampled trace missing from flight recorder")
	}
}

func TestOTLPURLPathPreserved(t *testing.T) {
	e := newExporter("http://collector:4318", obs.NewRegistry())
	e.close()
	if e.url != "http://collector:4318/v1/traces" {
		t.Fatalf("bare URL: %q", e.url)
	}
	e = newExporter("http://collector:4318/custom/path", obs.NewRegistry())
	e.close()
	if e.url != "http://collector:4318/custom/path" {
		t.Fatalf("explicit path rewritten: %q", e.url)
	}
}

// counterValue scrapes one unlabelled counter out of the registry's
// text exposition.
func counterValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("counter %s not found in exposition", name)
	return 0
}
