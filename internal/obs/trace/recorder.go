package trace

import "time"

// TraceData is an immutable snapshot of one completed trace — what the
// flight recorder stores and GET /traces/{id} serves. JSON field names
// are the wire contract for the /traces API and the CI smoke.
type TraceData struct {
	TraceID string    `json:"trace_id"`
	Sampled bool      `json:"sampled"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	// Depth is the longest root-to-leaf chain in the span tree; the CI
	// smoke asserts a submitted job's trace reaches depth >= 3.
	Depth        int        `json:"depth"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// SpanData is one finished span inside a TraceData.
type SpanData struct {
	SpanID        string      `json:"span_id"`
	ParentID      string      `json:"parent_id,omitempty"`
	Name          string      `json:"name"`
	Start         time.Time   `json:"start"`
	End           time.Time   `json:"end"`
	DurationMS    float64     `json:"duration_ms"`
	Status        string      `json:"status,omitempty"`
	StatusMessage string      `json:"status_message,omitempty"`
	Attrs         []AttrData  `json:"attrs,omitempty"`
	Events        []EventData `json:"events,omitempty"`
	DroppedEvents int         `json:"dropped_events,omitempty"`
}

// AttrData is one attribute in JSON form.
type AttrData struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// EventData is one span event in JSON form.
type EventData struct {
	Name  string     `json:"name"`
	Time  time.Time  `json:"time"`
	Attrs []AttrData `json:"attrs,omitempty"`
}

// Summary is the listing row GET /traces serves, newest first.
type Summary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Depth      int       `json:"depth"`
	Sampled    bool      `json:"sampled"`
	Status     string    `json:"status,omitempty"`
}

func attrData(attrs []Attr) []AttrData {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]AttrData, len(attrs))
	for i, a := range attrs {
		out[i] = AttrData{Key: a.Key, Value: a.Value}
	}
	return out
}

// snapshotTrace freezes a completed liveTrace into TraceData. Called
// exactly once per trace, after done is set, so span lists are stable;
// individual span fields are still read under each span's lock.
func snapshotTrace(lt *liveTrace) *TraceData {
	lt.mu.Lock()
	spans := lt.spans
	dropped := lt.droppedSpans
	lt.mu.Unlock()

	td := &TraceData{
		TraceID:      lt.id.String(),
		Sampled:      lt.sampled,
		Start:        lt.start,
		End:          lt.start,
		DroppedSpans: dropped,
		Spans:        make([]SpanData, 0, len(spans)),
	}
	for _, s := range spans {
		s.mu.Lock()
		sd := SpanData{
			SpanID:        s.sc.SpanID.String(),
			Name:          s.name,
			Start:         s.start,
			End:           s.end,
			Status:        "",
			StatusMessage: s.statusMsg,
			Attrs:         attrData(s.attrs),
			DroppedEvents: s.droppedEvents,
		}
		if s.status != StatusUnset {
			sd.Status = s.status.String()
		}
		if !s.parent.IsZero() {
			sd.ParentID = s.parent.String()
		}
		if len(s.events) > 0 {
			sd.Events = make([]EventData, len(s.events))
			for i, e := range s.events {
				sd.Events[i] = EventData{Name: e.Name, Time: e.Time, Attrs: attrData(e.Attrs)}
			}
		}
		s.mu.Unlock()
		if sd.End.After(td.End) {
			td.End = sd.End
		}
		sd.DurationMS = float64(sd.End.Sub(sd.Start)) / float64(time.Millisecond)
		td.Spans = append(td.Spans, sd)
	}
	td.Depth = treeDepth(td.Spans)
	return td
}

// treeDepth computes the longest chain in the span forest. Spans whose
// parent is outside the snapshot (remote parents, dropped spans) count
// as roots.
func treeDepth(spans []SpanData) int {
	present := make(map[string]int, len(spans))
	for i, s := range spans {
		present[s.SpanID] = i
	}
	memo := make([]int, len(spans))
	var depth func(i int) int
	depth = func(i int) int {
		if memo[i] != 0 {
			return memo[i]
		}
		memo[i] = 1 // cycle guard; real trees never cycle
		d := 1
		if p, ok := present[spans[i].ParentID]; ok && p != i {
			d = depth(p) + 1
		}
		memo[i] = d
		return d
	}
	max := 0
	for i := range spans {
		if d := depth(i); d > max {
			max = d
		}
	}
	return max
}

// Traces lists flight-recorded traces, newest first.
func (t *Tracer) Traces() []Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Summary, 0, len(t.ring))
	for i := len(t.ring) - 1; i >= 0; i-- {
		td := t.ring[i]
		s := Summary{
			TraceID:    td.TraceID,
			Start:      td.Start,
			DurationMS: float64(td.End.Sub(td.Start)) / float64(time.Millisecond),
			Spans:      len(td.Spans),
			Depth:      td.Depth,
			Sampled:    td.Sampled,
		}
		for _, sp := range td.Spans {
			if sp.ParentID == "" {
				s.Root = sp.Name
				if sp.Status == "error" {
					s.Status = "error"
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// Get returns one flight-recorded trace by hex ID, or nil.
func (t *Tracer) Get(id string) *TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].TraceID == id {
			return t.ring[i]
		}
	}
	return nil
}
