// Package trace is the zero-dependency distributed-tracing subsystem:
// W3C-compatible trace/span identifiers, race-safe spans with bounded
// attributes and events, context propagation, deterministic sampling,
// an always-on flight recorder of recent completed traces, and an
// OTLP/HTTP JSON exporter — stdlib only, matching the module's empty
// dependency set.
//
// Like the metrics plane it extends (package obs), tracing is
// observationally pure: spans record what campaigns did, they never
// feed back into RNG streams, trial ordering or any computed value. A
// guard test at the repo root pins campaign results byte-identical
// with tracing enabled and disabled.
//
// Span creation is coarse by design: the simulator hot loop is never
// instrumented. The service creates one span per HTTP request, one per
// job, one per campaign point and one per shard; per-trial data rides
// as bounded, sampled span events recorded between trials. A process
// typically holds a few dozen live spans, so the subsystem optimizes
// for post-mortem value, not span throughput.
//
// docs/OBSERVABILITY.md documents the span model, the sampling knobs,
// the /traces API and the OTLP configuration.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"

	"etap/internal/obs"
)

// TraceID identifies one trace, W3C style: 16 random bytes, hex on the
// wire.
type TraceID [16]byte

// IsZero reports the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace: 8 random bytes.
type SpanID [8]byte

// IsZero reports the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated identity of a span: what traceparent
// carries across process boundaries.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the W3C sampled flag: whether the trace is selected
	// for export. Unsampled traces still enter the flight recorder.
	Sampled bool
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Attr is one key/value span or event attribute. Values are restricted
// to strings, bools, int64s and float64s — the OTLP value kinds the
// exporter encodes.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{k, v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{k, v} }

// Float builds a floating-point attribute.
func Float(k string, v float64) Attr { return Attr{k, v} }

// Status classifies how the operation a span covers ended.
type Status uint8

const (
	// StatusUnset is the default: nothing notable.
	StatusUnset Status = iota
	// StatusOK marks an explicitly successful span.
	StatusOK
	// StatusError marks a failed span; the message explains.
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusError:
		return "error"
	}
	return "unset"
}

// Event is one timestamped occurrence on a span — the vehicle for
// sampled per-trial records.
type Event struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// Span is one timed operation in a trace. All methods are safe for
// concurrent use and safe on a nil receiver, so instrumented code needs
// no tracer-present checks.
type Span struct {
	tracer *Tracer
	trace  *liveTrace
	sc     SpanContext
	parent SpanID

	mu            sync.Mutex
	name          string
	start, end    time.Time
	attrs         []Attr
	events        []Event
	droppedEvents int
	status        Status
	statusMsg     string
	ended         bool
}

// Context returns the span's propagated identity; the zero SpanContext
// on a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID is the hex trace identifier, "" on a nil span — the join key
// logs, exemplars and SSE payloads carry.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// Sampled reports whether the span's trace is selected for export.
func (s *Span) Sampled() bool { return s != nil && s.sc.Sampled }

// SetAttr appends attributes, bounded by the tracer's MaxAttrsPerSpan.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	room := s.tracer.cfg.MaxAttrsPerSpan - len(s.attrs)
	if room <= 0 {
		return
	}
	if len(attrs) > room {
		attrs = attrs[:room]
	}
	s.attrs = append(s.attrs, attrs...)
}

// Event records one timestamped event, bounded by the tracer's
// MaxEventsPerSpan; events beyond the bound are counted as dropped.
// This is the per-trial sampling mechanism: campaign shards record
// trial events until the span's budget is spent.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended || len(s.events) >= s.tracer.cfg.MaxEventsPerSpan {
		s.droppedEvents++
		s.tracer.eventsDropped.Inc()
		return
	}
	s.events = append(s.events, Event{Name: name, Time: time.Now(), Attrs: attrs})
}

// EventRoom reports how many more events the span will accept —
// instrumented loops can skip building attributes once the budget is
// spent.
func (s *Span) EventRoom() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return 0
	}
	return s.tracer.cfg.MaxEventsPerSpan - len(s.events)
}

// SetStatus records how the operation ended. Error status survives a
// later OK (first error wins).
func (s *Span) SetStatus(code Status, msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.status == StatusError {
		return
	}
	s.status, s.statusMsg = code, msg
}

// End finishes the span. The first End wins; later calls are no-ops.
// When the last open span of a trace ends, the trace moves to the
// flight recorder and, if sampled, to the exporter.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.mu.Unlock()
	s.tracer.spanEnded(s.trace)
}

// liveTrace is one in-flight trace: its spans and the open-span
// refcount that decides completion.
type liveTrace struct {
	id      TraceID
	sampled bool
	start   time.Time

	mu           sync.Mutex
	spans        []*Span
	open         int
	droppedSpans int
	done         bool
}

// Config parameterises a Tracer. The zero value selects sensible
// defaults: always sample, 64 recorded traces, 256 spans per trace,
// 16 events per span.
type Config struct {
	// Service names the producer in OTLP resource attributes and trace
	// listings. Defaults to "etap".
	Service string
	// SampleRatio selects the fraction of traces exported over OTLP,
	// decided deterministically from the trace ID (W3C style), so every
	// process samples the same traces. 0 means 1 (export everything);
	// negative means export nothing. The flight recorder is always on
	// regardless.
	SampleRatio float64
	// MaxRecorded bounds the flight-recorder ring of completed traces;
	// 0 means 64. The recorder is the post-mortem surface behind
	// GET /traces: it keeps the most recent completed traces even when
	// export sampling is off.
	MaxRecorded int
	// MaxLive bounds concurrently live traces; 0 means 256. Starting a
	// trace beyond the bound silently yields no-op spans (counted as
	// dropped) rather than growing without bound.
	MaxLive int
	// MaxSpansPerTrace bounds spans recorded per trace; 0 means 256.
	MaxSpansPerTrace int
	// MaxEventsPerSpan bounds events per span — the per-trial sampling
	// budget; 0 means 16.
	MaxEventsPerSpan int
	// MaxAttrsPerSpan bounds attributes per span; 0 means 32.
	MaxAttrsPerSpan int
	// OTLPURL, when set, pushes every sampled completed trace to an
	// OTLP/HTTP JSON collector ("http://host:4318"; the standard
	// /v1/traces path is appended when absent). Export is asynchronous
	// with retry/backoff; traces that cannot be delivered are dropped
	// and counted, never blocking the request path.
	OTLPURL string
	// Registry receives the tracer's drop/export counters; nil means
	// obs.Default().
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Service == "" {
		c.Service = "etap"
	}
	if c.SampleRatio == 0 {
		c.SampleRatio = 1
	}
	if c.MaxRecorded <= 0 {
		c.MaxRecorded = 64
	}
	if c.MaxLive <= 0 {
		c.MaxLive = 256
	}
	if c.MaxSpansPerTrace <= 0 {
		c.MaxSpansPerTrace = 256
	}
	if c.MaxEventsPerSpan <= 0 {
		c.MaxEventsPerSpan = 16
	}
	if c.MaxAttrsPerSpan <= 0 {
		c.MaxAttrsPerSpan = 32
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// Tracer creates spans, tracks live traces, owns the flight recorder
// and drives the optional OTLP exporter. All methods are safe for
// concurrent use and safe on a nil receiver (spans become no-ops), so
// a service can run untraced without conditional code.
type Tracer struct {
	cfg Config

	mu   sync.Mutex
	live map[TraceID]*liveTrace
	ring []*TraceData // completed traces, oldest first

	exporter *exporter

	spansStarted  *obs.Counter
	spansDropped  *obs.Counter
	eventsDropped *obs.Counter
	tracesDone    *obs.Counter
}

// New builds a tracer. Close it on shutdown when OTLP export is
// configured, so queued traces flush.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{
		cfg:  cfg,
		live: make(map[TraceID]*liveTrace),
		spansStarted: cfg.Registry.Counter("etap_trace_spans_total",
			"Spans started across all traces."),
		spansDropped: cfg.Registry.Counter("etap_trace_spans_dropped_total",
			"Spans dropped by the per-trace or live-trace bounds."),
		eventsDropped: cfg.Registry.Counter("etap_trace_events_dropped_total",
			"Span events dropped by the per-span event budget."),
		tracesDone: cfg.Registry.Counter("etap_trace_traces_completed_total",
			"Traces whose spans all finished (flight-recorded)."),
	}
	if cfg.OTLPURL != "" {
		t.exporter = newExporter(cfg.OTLPURL, cfg.Registry)
	}
	return t
}

// Close flushes and stops the OTLP exporter, if any. The tracer stays
// usable for recording afterwards (new sampled traces are just no
// longer exported).
func (t *Tracer) Close() error {
	if t == nil || t.exporter == nil {
		return nil
	}
	t.exporter.close()
	return nil
}

// ctxKey keys the span and remote-parent context values.
type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
)

// Start begins a child of the span ctx carries, using that span's
// tracer. Without a span in ctx it is a no-op (ctx unchanged, nil
// span). Instrumented libraries (campaign, exp) use this form so only
// tracer-owning layers — the server — decide whether tracing is on.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	p := FromContext(ctx)
	if p == nil {
		return ctx, nil
	}
	return p.tracer.Start(ctx, name, attrs...)
}

// ContextWithSpan returns a context carrying the span; Start uses it as
// the parent for child spans.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// FromContext returns the span the context carries, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextWithRemote returns a context carrying a remote parent span
// context (a parsed traceparent header). Start of a root span then
// joins the remote trace instead of minting a new ID.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// remoteFromContext returns the remote parent, if any.
func remoteFromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(remoteKey).(SpanContext)
	return sc, ok
}

func randTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return id
}

func randSpanID() SpanID {
	var id SpanID
	if _, err := rand.Read(id[:]); err != nil {
		panic(err)
	}
	return id
}

// sampleFromID decides export sampling deterministically from the
// trace ID, so retries and sibling processes agree.
func sampleFromID(id TraceID, ratio float64) bool {
	if ratio >= 1 {
		return true
	}
	if ratio <= 0 {
		return false
	}
	v := binary.BigEndian.Uint64(id[8:])
	return float64(v) < ratio*float64(^uint64(0))
}

// Start begins a span. The parent is resolved from ctx: a local span
// continues its trace, a remote parent (traceparent) joins the remote
// trace, and neither starts a new trace with a fresh sampling decision.
// The returned context carries the new span for further nesting. On a
// nil tracer both returns degrade gracefully (ctx unchanged, nil span).
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var (
		lt     *liveTrace
		parent SpanID
		sc     SpanContext
	)
	if p := FromContext(ctx); p != nil && p.tracer == t {
		lt = p.trace
		parent = p.sc.SpanID
		sc = SpanContext{TraceID: p.sc.TraceID, Sampled: p.sc.Sampled}
	} else if remote, ok := remoteFromContext(ctx); ok {
		sc = SpanContext{TraceID: remote.TraceID, Sampled: remote.Sampled}
		parent = remote.SpanID
	} else {
		id := randTraceID()
		sc = SpanContext{TraceID: id, Sampled: sampleFromID(id, t.cfg.SampleRatio)}
	}
	if lt == nil {
		lt = t.startTrace(sc)
		if lt == nil { // live-trace bound hit
			t.spansDropped.Inc()
			return ctx, nil
		}
	}
	sc.SpanID = randSpanID()
	s := &Span{
		tracer: t,
		trace:  lt,
		sc:     sc,
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	s.attrs = append(s.attrs, attrs...)

	lt.mu.Lock()
	if lt.done || len(lt.spans) >= t.cfg.MaxSpansPerTrace {
		// The trace already completed (a late child raced the last End)
		// or is full: record nothing, but keep the span usable so the
		// caller's End/SetAttr calls stay safe. Completion bookkeeping
		// skips it via trace == nil.
		lt.droppedSpans++
		lt.mu.Unlock()
		t.spansDropped.Inc()
		s.trace = nil
		return ContextWithSpan(ctx, s), s
	}
	lt.spans = append(lt.spans, s)
	lt.open++
	lt.mu.Unlock()
	t.spansStarted.Inc()
	return ContextWithSpan(ctx, s), s
}

// startTrace registers a new live trace, honouring the MaxLive bound.
func (t *Tracer) startTrace(sc SpanContext) *liveTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.live[sc.TraceID]; ok {
		return prev // remote parent re-entering an already-open trace
	}
	if len(t.live) >= t.cfg.MaxLive {
		return nil
	}
	lt := &liveTrace{id: sc.TraceID, sampled: sc.Sampled, start: time.Now()}
	t.live[sc.TraceID] = lt
	return lt
}

// spanEnded decrements the trace's open count and completes the trace
// when it hits zero.
func (t *Tracer) spanEnded(lt *liveTrace) {
	if lt == nil {
		return // span was dropped at start; nothing to account
	}
	lt.mu.Lock()
	lt.open--
	complete := lt.open == 0 && !lt.done
	if complete {
		lt.done = true
	}
	lt.mu.Unlock()
	if !complete {
		return
	}
	td := snapshotTrace(lt)
	t.mu.Lock()
	delete(t.live, lt.id)
	t.ring = append(t.ring, td)
	if len(t.ring) > t.cfg.MaxRecorded {
		t.ring = t.ring[len(t.ring)-t.cfg.MaxRecorded:]
	}
	t.mu.Unlock()
	t.tracesDone.Inc()
	if lt.sampled && t.exporter != nil {
		t.exporter.enqueue(td)
	}
}
