package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"etap/internal/obs"
)

func newTestTracer(t *testing.T, cfg Config) *Tracer {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	tr := New(cfg)
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestSpanTreeAndCompletion(t *testing.T) {
	tr := newTestTracer(t, Config{})
	ctx, root := tr.Start(context.Background(), "root", String("k", "v"))
	if root == nil {
		t.Fatal("nil root span")
	}
	ctx2, child := tr.Start(ctx, "child")
	_, grand := tr.Start(ctx2, "grandchild")
	grand.SetStatus(StatusError, "boom")
	grand.End()
	child.End()

	if got := tr.Traces(); len(got) != 0 {
		t.Fatalf("trace completed before root ended: %d recorded", len(got))
	}
	root.SetStatus(StatusOK, "")
	root.End()
	root.End() // idempotent

	sums := tr.Traces()
	if len(sums) != 1 {
		t.Fatalf("recorded traces = %d, want 1", len(sums))
	}
	if sums[0].Spans != 3 || sums[0].Depth != 3 || sums[0].Root != "root" {
		t.Fatalf("summary = %+v, want 3 spans depth 3 root 'root'", sums[0])
	}
	td := tr.Get(sums[0].TraceID)
	if td == nil {
		t.Fatal("Get returned nil for recorded trace")
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	if byName["root"].ParentID != "" {
		t.Fatalf("root has parent %q", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Fatal("child not parented to root")
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Fatal("grandchild not parented to child")
	}
	if byName["grandchild"].Status != "error" || byName["grandchild"].StatusMessage != "boom" {
		t.Fatalf("grandchild status = %q/%q", byName["grandchild"].Status, byName["grandchild"].StatusMessage)
	}
	if len(byName["root"].Attrs) != 1 || byName["root"].Attrs[0].Key != "k" {
		t.Fatalf("root attrs = %+v", byName["root"].Attrs)
	}
	if tr.Get("deadbeef") != nil {
		t.Fatal("Get of unknown id should be nil")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := newTestTracer(t, Config{MaxSpansPerTrace: 4096})
	ctx, root := tr.Start(context.Background(), "root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cctx, s := tr.Start(ctx, fmt.Sprintf("w%d", g))
				s.SetAttr(Int("i", int64(i)))
				s.Event("tick", Int("i", int64(i)))
				_, inner := tr.Start(cctx, "inner")
				inner.End()
				s.End()
			}
		}(g)
	}
	wg.Wait()
	root.End()
	sums := tr.Traces()
	if len(sums) != 1 {
		t.Fatalf("recorded = %d, want 1", len(sums))
	}
	if want := 1 + 8*50*2; sums[0].Spans != want {
		t.Fatalf("spans = %d, want %d", sums[0].Spans, want)
	}
	if sums[0].Depth != 3 {
		t.Fatalf("depth = %d, want 3", sums[0].Depth)
	}
}

func TestRingEvictionOrder(t *testing.T) {
	tr := newTestTracer(t, Config{MaxRecorded: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), fmt.Sprintf("t%d", i))
		ids = append(ids, s.TraceID())
		s.End()
	}
	sums := tr.Traces()
	if len(sums) != 3 {
		t.Fatalf("recorded = %d, want 3", len(sums))
	}
	// Newest first: t4, t3, t2; t0 and t1 evicted.
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if sums[i].TraceID != want {
			t.Fatalf("ring[%d] = %s, want %s", i, sums[i].TraceID, want)
		}
	}
	if tr.Get(ids[0]) != nil || tr.Get(ids[1]) != nil {
		t.Fatal("evicted traces still retrievable")
	}
}

func TestEventBudget(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newTestTracer(t, Config{MaxEventsPerSpan: 2, Registry: reg})
	_, s := tr.Start(context.Background(), "busy")
	for i := 0; i < 5; i++ {
		s.Event("e", Int("i", int64(i)))
	}
	if room := s.EventRoom(); room != 0 {
		t.Fatalf("EventRoom = %d, want 0", room)
	}
	s.End()
	td := tr.Get(s.TraceID())
	if len(td.Spans[0].Events) != 2 || td.Spans[0].DroppedEvents != 3 {
		t.Fatalf("events = %d dropped = %d, want 2/3", len(td.Spans[0].Events), td.Spans[0].DroppedEvents)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer should yield nil span")
	}
	// All nil-span methods must be safe no-ops.
	s.SetAttr(String("a", "b"))
	s.Event("e")
	s.SetStatus(StatusError, "m")
	s.End()
	if s.TraceID() != "" || s.Sampled() || s.EventRoom() != 0 {
		t.Fatal("nil span accessors not zero")
	}
	if got := FromContext(ctx); got != nil {
		t.Fatal("context should not carry a nil span")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Traces() != nil || tr.Get("x") != nil {
		t.Fatal("nil tracer recorder accessors not empty")
	}
}

func TestSamplingDeterministic(t *testing.T) {
	tr := newTestTracer(t, Config{SampleRatio: -1})
	_, s := tr.Start(context.Background(), "unsampled")
	if s.Sampled() {
		t.Fatal("ratio<0 must sample nothing")
	}
	s.End()
	// Flight recorder keeps it anyway.
	if tr.Get(s.TraceID()) == nil {
		t.Fatal("unsampled trace missing from flight recorder")
	}

	id := TraceID{15: 1}
	if !sampleFromID(id, 1) {
		t.Fatal("ratio 1 must sample everything")
	}
	if sampleFromID(id, -1) {
		t.Fatal("negative ratio sampled")
	}
	// Same ID, same decision, always.
	first := sampleFromID(id, 0.5)
	for i := 0; i < 3; i++ {
		if sampleFromID(id, 0.5) != first {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestRemoteParentJoinsTrace(t *testing.T) {
	tr := newTestTracer(t, Config{})
	remote := SpanContext{TraceID: TraceID{1, 2, 3}, SpanID: SpanID{4, 5}, Sampled: true}
	ctx := ContextWithRemote(context.Background(), remote)
	_, s := tr.Start(ctx, "server")
	if s.Context().TraceID != remote.TraceID {
		t.Fatal("did not join remote trace")
	}
	if !s.Sampled() {
		t.Fatal("did not inherit sampled flag")
	}
	s.End()
	td := tr.Get(remote.TraceID.String())
	if td == nil {
		t.Fatal("joined trace not recorded")
	}
	if td.Spans[0].ParentID != remote.SpanID.String() {
		t.Fatalf("parent = %q, want remote span id", td.Spans[0].ParentID)
	}
}

func TestSpanBoundPerTrace(t *testing.T) {
	tr := newTestTracer(t, Config{MaxSpansPerTrace: 2})
	ctx, root := tr.Start(context.Background(), "root")
	_, a := tr.Start(ctx, "a")
	_, b := tr.Start(ctx, "b") // over bound: dropped but usable
	b.SetAttr(String("k", "v"))
	b.Event("e")
	b.End()
	a.End()
	root.End()
	td := tr.Get(root.TraceID())
	if td == nil {
		t.Fatal("trace not recorded")
	}
	if len(td.Spans) != 2 || td.DroppedSpans != 1 {
		t.Fatalf("spans = %d dropped = %d, want 2/1", len(td.Spans), td.DroppedSpans)
	}
}

func TestTreeDepth(t *testing.T) {
	spans := []SpanData{
		{SpanID: "a"},
		{SpanID: "b", ParentID: "a"},
		{SpanID: "c", ParentID: "b"},
		{SpanID: "d", ParentID: "zz"}, // orphan: parent outside snapshot
	}
	if d := treeDepth(spans); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	if d := treeDepth(nil); d != 0 {
		t.Fatalf("empty depth = %d, want 0", d)
	}
}
