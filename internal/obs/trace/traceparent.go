package trace

import (
	"encoding/hex"
	"errors"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/), version 00:
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             ^^ ^^^^^^^^^^^^ trace-id ^^^^^^^^^ ^^ span-id ^^^^^ ^^ flags
//
// Only the sampled flag (bit 0) is interpreted; unknown flag bits and
// future versions with the 00 layout are tolerated per spec.

// Header is the canonical traceparent header name.
const Header = "traceparent"

var errTraceparent = errors.New("malformed traceparent")

// ParseTraceparent parses a traceparent header value into a
// SpanContext. It returns an error for anything that is not a
// well-formed version-00-compatible header with non-zero IDs.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	// 2 (version) + 1 + 32 (trace-id) + 1 + 16 (span-id) + 1 + 2 (flags)
	if len(h) < 55 {
		return sc, errTraceparent
	}
	// The spec mandates lowercase hex; encoding/hex would accept
	// uppercase, so screen it out first.
	for i := 0; i < 55; i++ {
		if c := h[i]; c >= 'A' && c <= 'F' {
			return sc, errTraceparent
		}
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, errTraceparent
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil || ver[0] == 0xff {
		return sc, errTraceparent
	}
	if ver[0] == 0 && len(h) != 55 {
		return sc, errTraceparent // version 00 is exactly 55 chars
	}
	if ver[0] > 0 && len(h) > 55 && h[55] != '-' {
		return sc, errTraceparent // future versions may append "-..." only
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return sc, errTraceparent
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return sc, errTraceparent
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return sc, errTraceparent
	}
	if !sc.Valid() {
		return sc, errTraceparent
	}
	sc.Sampled = flags[0]&1 != 0
	return sc, nil
}

// FormatTraceparent renders a SpanContext as a version-00 traceparent
// header value.
func FormatTraceparent(sc SpanContext) string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}
