package trace

import "testing"

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name    string
		in      string
		ok      bool
		sampled bool
	}{
		{"valid sampled", valid, true, true},
		{"valid unsampled", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true, false},
		{"unknown flag bits tolerated", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-03", true, true},
		{"future version with suffix", "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true, true},
		{"empty", "", false, false},
		{"garbage", "not-a-traceparent", false, false},
		{"short", "00-abc-def-01", false, false},
		{"bad separators", "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01", false, false},
		{"non-hex trace id", "00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false, false},
		{"non-hex span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-zzf067aa0ba902b7-01", false, false},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false, false},
		{"zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false, false},
		{"version ff forbidden", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false, false},
		{"version 00 with trailer", valid + "-extra", false, false},
		{"uppercase hex rejected", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := ParseTraceparent(tc.in)
			if (err == nil) != tc.ok {
				t.Fatalf("ParseTraceparent(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			}
			if !tc.ok {
				return
			}
			if sc.Sampled != tc.sampled {
				t.Fatalf("sampled = %v, want %v", sc.Sampled, tc.sampled)
			}
			if !sc.Valid() {
				t.Fatal("parsed context invalid")
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		in := SpanContext{TraceID: TraceID{0x4b, 0xf9, 1, 2, 3}, SpanID: SpanID{0xf0, 9}, Sampled: sampled}
		h := FormatTraceparent(in)
		out, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("round trip parse of %q: %v", h, err)
		}
		if out != in {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
}
