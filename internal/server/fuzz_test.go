package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzSubmitRequest fuzzes the JSON submission decoder: any body must
// yield either a validated request or a structured *RequestError — never
// a panic, and never a request that violates its own bounds (the
// invariant that lets a later worker trust the spec it dequeues).
func FuzzSubmitRequest(f *testing.F) {
	seeds := []string{
		``,
		`null`,
		`[]`,
		`{}`,
		`{nope`,
		`{"experiment":"table1"}`,
		`{"experiment":"table1"} trailing`,
		`{"experiment":"table1","bogus":1}`,
		`{"experiment":"table1","benchmark":"adpcm"}`,
		`{"benchmark":"adpcm","policy":"control","trials":16,"seed":7,"workers":2}`,
		`{"benchmark":"adpcm","errors":[1,2,4,8],"stop_ci":0.05}`,
		`{"benchmark":"adpcm","harden":{"dup_compare":true,"signatures":true}}`,
		`{"benchmark":"adpcm","harden":{}}`,
		`{"source":"int main() { return 0; }","input":"abc"}`,
		`{"source":"int main() { return 0; }","protected":false,"min_trials":8}`,
		`{"source":"","trials":-1}`,
		`{"source":"x","trials":1000001}`,
		`{"source":"x","errors":[70000]}`,
		`{"source":"x","workers":9999}`,
		`{"source":"x","stop_ci":1.5}`,
		`{"experiment":"table1","input":"x"}`,
		`{"trials":4}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := ParseSubmitRequest(body)
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("rejection is not a *RequestError: %T: %v", err, err)
			}
			if re.Code == "" || re.Message == "" {
				t.Fatalf("rejection lacks code or message: %+v", re)
			}
			return
		}
		if req == nil {
			t.Fatal("nil request with nil error")
		}
		// An accepted request satisfies its own validator...
		if err := req.validate(); err != nil {
			t.Fatalf("accepted request fails re-validation: %v", err)
		}
		// ...and is stable through its own wire form: marshal, re-parse,
		// re-marshal must agree, so a persisted spec replays identically.
		wire1, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not marshal: %v", err)
		}
		req2, err := ParseSubmitRequest(wire1)
		if err != nil {
			t.Fatalf("request's own wire form is rejected: %v\nwire: %s", err, wire1)
		}
		wire2, err := json.Marshal(req2)
		if err != nil {
			t.Fatalf("re-parsed request does not marshal: %v", err)
		}
		if !bytes.Equal(wire1, wire2) {
			t.Fatalf("wire form is unstable:\n%s\nvs\n%s", wire1, wire2)
		}
	})
}
