package server

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"etap/internal/exp"
)

// stubManager builds a Manager whose RunFunc blocks until release is
// closed (or the job's context cancels), so queue mechanics can be
// tested without real campaigns.
func stubManager(t *testing.T, workers, depth int) (*Manager, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	m, err := NewManager(Config{
		Run: func(ctx context.Context, req *SubmitRequest, progress func(TrialEvent)) (*exp.Report, error) {
			select {
			case <-release:
				return &exp.Report{ID: "stub"}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
		Workers:    workers,
		QueueDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, release
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.snapshot().State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.snapshot().State, want)
}

// TestCancelQueuedFreesSlot: cancelling a queued job releases its queue
// slot immediately — it does not hold the queue full until a worker
// happens to drain it.
func TestCancelQueuedFreesSlot(t *testing.T) {
	m, release := stubManager(t, 1, 1)

	running, err := m.Submit(context.Background(), &SubmitRequest{Benchmark: "a"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)

	queued, err := m.Submit(context.Background(), &SubmitRequest{Benchmark: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), &SubmitRequest{Benchmark: "c"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: %v, want ErrQueueFull", err)
	}

	if ok, err := m.Cancel(queued.ID); err != nil || !ok {
		t.Fatalf("cancel queued: %v %v", ok, err)
	}
	waitState(t, queued, StateCancelled)

	// The slot the cancelled job held is free again, with the worker
	// still busy.
	replacement, err := m.Submit(context.Background(), &SubmitRequest{Benchmark: "d"})
	if err != nil {
		t.Fatalf("submission after cancel: %v (cancelled job still holds the slot)", err)
	}

	close(release)
	waitState(t, running, StateDone)
	waitState(t, replacement, StateDone)
	if got := queued.snapshot().State; got != StateCancelled {
		t.Fatalf("cancelled job resurrected as %s", got)
	}
}

// TestLaggingSubscriberTerminalEvent: when a job publishes more events
// than a subscriber's channel holds and the subscriber never drains in
// time, the terminal state event is dropped from the channel — but
// lastEvent still hands the SSE handler the terminal frame, with a seq
// above everything the subscriber saw, so the stream can end with it.
func TestLaggingSubscriberTerminalEvent(t *testing.T) {
	subscribed := make(chan struct{})
	m, err := NewManager(Config{
		Run: func(ctx context.Context, req *SubmitRequest, progress func(TrialEvent)) (*exp.Report, error) {
			<-subscribed
			for i := 0; i < subChanCap+100; i++ {
				progress(TrialEvent{Trial: i, Outcome: "completed"})
			}
			return &exp.Report{ID: "stub"}, nil
		},
		Workers:    1,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	j, err := m.Submit(context.Background(), &SubmitRequest{Benchmark: "a"})
	if err != nil {
		t.Fatal(err)
	}
	_, ch, unsub := j.Subscribe()
	defer unsub()
	if ch == nil {
		t.Fatal("job finished before it started")
	}
	close(subscribed)
	waitState(t, j, StateDone)

	var last Event
	n := 0
	for ev := range ch {
		last = ev
		n++
	}
	if n == 0 {
		t.Fatal("subscriber channel delivered nothing")
	}
	if last.Name == "state" {
		t.Fatalf("expected the lagging channel to drop the terminal event, got %s as last of %d", last.Data, n)
	}
	fin, ok := j.lastEvent()
	if !ok || fin.Name != "state" || !bytes.Contains(fin.Data, []byte(`"done"`)) {
		t.Fatalf("lastEvent is not the terminal state: %v %s", ok, fin.Data)
	}
	if fin.Seq <= last.Seq {
		t.Fatalf("terminal seq %d not above last delivered %d", fin.Seq, last.Seq)
	}
}

// TestCompleteRunBeatsLateCancel: a cancel that lands after the RunFunc
// returned a full report must not relabel the finished job.
func TestCompleteRunBeatsLateCancel(t *testing.T) {
	returned := make(chan struct{})
	proceed := make(chan struct{})
	m, err := NewManager(Config{
		Run: func(ctx context.Context, req *SubmitRequest, progress func(TrialEvent)) (*exp.Report, error) {
			defer close(returned)
			<-proceed
			return &exp.Report{ID: "stub"}, nil
		},
		Workers:    1,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	j, err := m.Submit(context.Background(), &SubmitRequest{Benchmark: "a"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	// Let the run complete, then fire the cancel in the window before
	// (or while) runJob classifies the result.
	close(proceed)
	<-returned
	m.Cancel(j.ID) //nolint:errcheck // racing the classification on purpose
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.snapshot(); s.State.terminal() {
			if s.State != StateDone {
				t.Fatalf("complete run relabeled %s (error %q)", s.State, s.Error)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
}
