package server

import (
	"context"
	"log/slog"

	"etap/internal/obs"
)

// serverMetrics is the service's metric set, resolved once per Manager
// against the configured registry. Families are registered idempotently,
// so many managers (tests, embedded servers) may share one registry —
// counters then aggregate process-wide, which is what a scraper wants.
type serverMetrics struct {
	httpRequests *obs.CounterVec   // route, code
	httpDuration *obs.HistogramVec // route
	queueDepth   *obs.Gauge
	workersBusy  *obs.Gauge
	sseSubs      *obs.Gauge
	jobsTotal    *obs.CounterVec // state transitions
	jobsStored   *obs.Gauge
	jobsEvicted  *obs.Counter
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		httpRequests: r.CounterVec("etap_http_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"route", "code"),
		httpDuration: r.HistogramVec("etap_http_request_seconds",
			"HTTP request duration in seconds, by route pattern.",
			obs.DefBuckets, "route"),
		queueDepth: r.Gauge("etap_server_queue_depth",
			"Jobs waiting for a worker slot."),
		workersBusy: r.Gauge("etap_server_workers_busy",
			"Workers currently executing a job."),
		sseSubs: r.Gauge("etap_server_sse_subscribers",
			"Live SSE event-stream subscriptions."),
		jobsTotal: r.CounterVec("etap_server_jobs_total",
			"Job lifecycle transitions, by state entered.",
			"state"),
		jobsStored: r.Gauge("etap_server_jobs_stored",
			"Jobs held in the in-memory job table."),
		jobsEvicted: r.Counter("etap_server_jobs_evicted_total",
			"Finished jobs pruned from the job table by the max-jobs bound."),
	}
}

// enteredState counts one lifecycle transition.
func (sm *serverMetrics) enteredState(s State) {
	if sm == nil {
		return
	}
	sm.jobsTotal.With(string(s)).Inc()
}

// discardHandler drops every record; the default logger when neither
// Logger nor Logf is configured. (slog.DiscardHandler exists from Go
// 1.24; this keeps the module buildable with its declared go 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// logfHandler adapts a printf-style sink (the legacy Config.Logf /
// etap.WithServeLog surface) into a slog.Handler: one line per record,
// message first, attrs appended as key=value.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= slog.LevelInfo
}

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	line := r.Message
	emit := func(a slog.Attr) {
		line += " " + a.Key + "=" + a.Value.String()
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool { emit(a); return true })
	h.logf("%s", line)
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return h
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }
