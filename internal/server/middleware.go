package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"time"

	"etap/internal/obs/trace"
)

// statusWriter records the response status for metrics and logs while
// forwarding everything else. It exposes the wrapped writer through
// Unwrap so streaming handlers can still find http.Flusher underneath.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// status is the recorded code; a handler that never wrote anything
// implicitly answered 200.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "r" + hex.EncodeToString(b[:])
}

// requestIDKey keys the per-request ID in the request context.
type requestIDKey struct{}

// RequestIDFromContext returns the X-Request-Id the instrumentation
// middleware assigned, or "" outside a request (programmatic submits).
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// instrument wraps a handler with the service's HTTP observability:
// request counter and duration histogram labeled by route name (the
// pattern is not read off the request — http.Request.Pattern needs Go
// 1.23 and the module declares 1.22), an X-Request-Id response header
// (also threaded through the request context into job logs and SSE
// payloads), one structured log line per request, and — when a tracer
// is configured — a request span. An incoming W3C traceparent header
// joins the caller's trace; the response carries the request span's
// traceparent either way, and the duration histogram records the trace
// ID as an OpenMetrics exemplar.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	dur := s.m.metrics.httpDuration.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := newRequestID()
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		var span *trace.Span
		if tr := s.m.cfg.Tracer; tr != nil {
			if sc, err := trace.ParseTraceparent(r.Header.Get(trace.Header)); err == nil {
				ctx = trace.ContextWithRemote(ctx, sc)
			}
			ctx, span = tr.Start(ctx, "http "+route,
				trace.String("http.method", r.Method),
				trace.String("http.route", route),
				trace.String("http.path", r.URL.Path),
				trace.String("request_id", id))
			if span != nil {
				w.Header().Set(trace.Header, trace.FormatTraceparent(span.Context()))
			}
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		code := sw.status()
		s.m.metrics.httpRequests.With(route, strconv.Itoa(code)).Inc()
		log := s.m.log
		if span != nil {
			span.SetAttr(trace.Int("http.status", int64(code)))
			if code >= http.StatusInternalServerError {
				span.SetStatus(trace.StatusError, http.StatusText(code))
			}
			span.End()
			dur.ObserveExemplar(elapsed.Seconds(), span.TraceID())
			log = log.With("trace", span.TraceID())
		} else {
			dur.Observe(elapsed.Seconds())
		}
		log.Info("http request",
			"request", id, "route", route, "method", r.Method,
			"path", r.URL.Path, "code", code, "elapsed", elapsed)
	})
}
