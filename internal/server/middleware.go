package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"time"
)

// statusWriter records the response status for metrics and logs while
// forwarding everything else. It exposes the wrapped writer through
// Unwrap so streaming handlers can still find http.Flusher underneath.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// status is the recorded code; a handler that never wrote anything
// implicitly answered 200.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "r" + hex.EncodeToString(b[:])
}

// instrument wraps a handler with the service's HTTP observability:
// request counter and duration histogram labeled by route name (the
// pattern is not read off the request — http.Request.Pattern needs Go
// 1.23 and the module declares 1.22), an X-Request-Id response header,
// and one structured log line per request.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	dur := s.m.metrics.httpDuration.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := newRequestID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		code := sw.status()
		s.m.metrics.httpRequests.With(route, strconv.Itoa(code)).Inc()
		dur.Observe(elapsed.Seconds())
		s.m.log.Info("http request",
			"request", id, "route", route, "method", r.Method,
			"path", r.URL.Path, "code", code, "elapsed", elapsed)
	})
}
