// Observability-plane tests: the /metrics exposition during live jobs,
// concurrent scrapes under -race, max-jobs pruning, and the enriched
// healthz payload.
package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"etap"
	"etap/internal/server"
)

// scrapeMetrics fetches /metrics and returns the raw exposition text.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, data := doJSON(t, http.MethodGet, base+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	return string(data)
}

// metricSum sums every sample of the named family across label sets.
func metricSum(t *testing.T, text, name string) float64 {
	t.Helper()
	var sum float64
	found := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		// Exact family only: the next byte must open labels or be the
		// value separator, not extend the name (_bucket, _sum, ...).
		if !strings.HasPrefix(rest, "{") && !strings.HasPrefix(rest, " ") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("family %s absent from exposition:\n%s", name, text)
	}
	return sum
}

// TestMetricsScrapeDuringRunningJob: /metrics answers while a campaign
// executes, survives 8 concurrent scrapers (the -race run guards the
// registry), and the trial counters move while the job is live.
func TestMetricsScrapeDuringRunningJob(t *testing.T) {
	_, hs := newTestServer(t)
	body := fmt.Sprintf(`{"source":%s,"input":%s,"errors":[1],"trials":4000,"seed":7}`,
		jsonStr(slowSource), jsonStr(slowInput()))
	id := submitJob(t, hs.URL, body)
	waitForState(t, hs.URL, id, server.StateRunning, server.StateDone)

	// Poll the exposition until the live campaign has visibly retired
	// trials. (The registry is process-global, so `before` may already
	// be nonzero from earlier tests; require movement or completion.)
	before := metricSum(t, scrapeMetrics(t, hs.URL), "etap_campaign_trials_total")
	deadline := time.Now().Add(60 * time.Second)
	after := before
	for time.Now().Before(deadline) {
		after = metricSum(t, scrapeMetrics(t, hs.URL), "etap_campaign_trials_total")
		if after > before {
			break
		}
		st := jobStatus(t, hs.URL, id)
		if terminal(server.State(st["state"].(string))) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := http.Get(hs.URL + "/metrics")
			if resp != nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	// Don't wait out the full 4000-trial budget (a -race run is ~10x
	// slower); cancelling keeps the partial aggregates and the counters.
	doJSON(t, http.MethodDelete, hs.URL+"/api/v1/jobs/"+id, "")
	waitForState(t, hs.URL, id, server.StateDone, server.StateCancelled)
	text := scrapeMetrics(t, hs.URL)
	final := metricSum(t, text, "etap_campaign_trials_total")
	if final <= 0 {
		t.Fatalf("etap_campaign_trials_total = %v after a campaign ran", final)
	}
	if final < after {
		t.Fatalf("trial counter went backwards: %v then %v", after, final)
	}
	for _, fam := range []string{
		"etap_sim_instructions_total",
		"etap_sim_runs_total",
		"etap_campaign_points_total",
		"etap_http_requests_total",
		"etap_server_jobs_total",
		"etap_lab_builds_total",
	} {
		if metricSum(t, text, fam) <= 0 {
			t.Errorf("family %s scraped as zero after a completed job", fam)
		}
	}
	// Gauges exist even at rest.
	metricSum(t, text, "etap_server_queue_depth")
	metricSum(t, text, "etap_server_jobs_stored")
}

// TestRequestIDHeader: every response carries the X-Request-Id the
// structured request log references.
func TestRequestIDHeader(t *testing.T) {
	_, hs := newTestServer(t)
	resp, _ := doJSON(t, http.MethodGet, hs.URL+"/api/v1/healthz", "")
	id := resp.Header.Get("X-Request-Id")
	if len(id) != 13 || id[0] != 'r' {
		t.Fatalf("X-Request-Id = %q, want r + 12 hex chars", id)
	}
}

// TestMaxJobsPruning: the job table stays bounded — submitting past the
// bound evicts the oldest finished job, which then 404s.
func TestMaxJobsPruning(t *testing.T) {
	_, hs := newTestServer(t, etap.WithServeMaxJobs(2))
	body := fmt.Sprintf(`{"source":%s,"input":%s,"errors":[1],"trials":2,"seed":3}`,
		jsonStr(fastSource), jsonStr(fastInput()))
	var ids []string
	for i := 0; i < 3; i++ {
		id := submitJob(t, hs.URL, body)
		waitForState(t, hs.URL, id, server.StateDone)
		ids = append(ids, id)
	}

	resp, data := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+ids[0], "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job still answers: %d: %s", resp.StatusCode, data)
	}
	for _, id := range ids[1:] {
		resp, data := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("retained job %s: %d: %s", id, resp.StatusCode, data)
		}
	}
	hz := healthz(t, hs.URL)
	if got := hz["jobs_stored"].(float64); got != 2 {
		t.Fatalf("jobs_stored = %v, want 2", got)
	}
	if got := hz["evicted_jobs"].(float64); got != 1 {
		t.Fatalf("evicted_jobs = %v, want 1", got)
	}
	if got := hz["max_jobs"].(float64); got != 2 {
		t.Fatalf("max_jobs = %v, want 2", got)
	}
}

// healthz fetches and parses the health payload.
func healthz(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, data := doJSON(t, http.MethodGet, base+"/api/v1/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d: %s", resp.StatusCode, data)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("healthz does not parse: %v: %s", err, data)
	}
	return out
}

// TestHealthzEnriched: the health payload reports build identity,
// uptime and live worker/queue/table stats alongside the Lab counters.
func TestHealthzEnriched(t *testing.T) {
	_, hs := newTestServer(t)
	hz := healthz(t, hs.URL)
	if hz["status"] != "ok" {
		t.Fatalf("status = %v", hz["status"])
	}
	v, ok := hz["version"].(map[string]any)
	if !ok {
		t.Fatalf("version missing: %v", hz)
	}
	for _, k := range []string{"module", "revision", "go"} {
		if s, _ := v[k].(string); s == "" {
			t.Errorf("version.%s empty", k)
		}
	}
	if up, ok := hz["uptime_seconds"].(float64); !ok || up < 0 {
		t.Errorf("uptime_seconds = %v", hz["uptime_seconds"])
	}
	for _, k := range []string{"workers", "workers_busy", "queue", "queue_depth", "jobs_stored", "max_jobs", "evicted_jobs"} {
		if _, ok := hz[k].(float64); !ok {
			t.Errorf("healthz lacks numeric %s: %v", k, hz[k])
		}
	}
	lab, ok := hz["lab"].(map[string]any)
	if !ok {
		t.Fatalf("lab stats missing: %v", hz)
	}
	for _, k := range []string{"entries", "builds", "hits", "evictions"} {
		if _, ok := lab[k].(float64); !ok {
			t.Errorf("lab stats lack %s: %v", k, lab)
		}
	}
}

// TestPprofOptIn: /debug/pprof/ exists only behind WithServePprof.
func TestPprofOptIn(t *testing.T) {
	_, off := newTestServer(t)
	resp, _ := doJSON(t, http.MethodGet, off.URL+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mounted without opt-in: %d", resp.StatusCode)
	}
	_, on := newTestServer(t, etap.WithServePprof())
	resp, data := doJSON(t, http.MethodGet, on.URL+"/debug/pprof/", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "goroutine") {
		t.Fatalf("pprof index lacks profile links: %s", data)
	}
}
