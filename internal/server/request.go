package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Request size and shape bounds. They exist so one malformed or hostile
// submission cannot wedge a job slot or exhaust the process: oversized
// bodies, absurd trial budgets and runaway sweeps are rejected at the
// door with a structured 4xx.
const (
	// MaxSourceBytes bounds the MiniC source of one submission.
	MaxSourceBytes = 256 << 10
	// MaxInputBytes bounds the explicit input of one submission.
	MaxInputBytes = 1 << 20
	// MaxTrials bounds the per-point trial budget.
	MaxTrials = 100_000
	// MaxErrorPoints bounds the length of the errors sweep.
	MaxErrorPoints = 64
	// MaxErrorsPerTrial bounds the bit flips injected per trial.
	MaxErrorsPerTrial = 1 << 16
	// MaxWorkers bounds the per-job campaign worker pool.
	MaxWorkers = 64
	// MaxRecovery bounds the restore-replay rounds per detected trial.
	MaxRecovery = 64
)

// HardenSpec selects the protection transforms for a hardened job; it
// mirrors etap.HardenOptions.
type HardenSpec struct {
	DupCompare bool `json:"dup_compare"`
	Signatures bool `json:"signatures"`
}

// SubmitRequest is the wire form of one characterization job. Exactly
// one of Experiment, Benchmark or Source selects the subject:
//
//   - Experiment runs one registered experiment from the paper's
//     evaluation and reports its table or figure.
//   - Benchmark characterizes one registered Table 1 application with
//     its canonical input and fidelity scorer.
//   - Source characterizes an ad-hoc MiniC program (validated — i.e.
//     compiled and analyzed — at submit time) against Input, with
//     bit-identical output as the acceptability measure.
//
// The remaining fields tune the campaign and default like the etap
// options they mirror (trials 40, seed 1, sweep [1 2 4 8]).
type SubmitRequest struct {
	Experiment string `json:"experiment,omitempty"`
	Benchmark  string `json:"benchmark,omitempty"`
	Source     string `json:"source,omitempty"`

	// Policy names the analysis policy ("control", "control+addr",
	// "conservative"); empty selects control+addr.
	Policy string `json:"policy,omitempty"`
	// Protected selects the injection mask for benchmark/source jobs:
	// true (the default) injects only into analysis-tagged instructions,
	// false exposes every result-writing instruction.
	Protected *bool `json:"protected,omitempty"`
	// Harden, when set, rewrites the program with the selected transforms
	// and runs the detection campaign against the protected sites.
	Harden *HardenSpec `json:"harden,omitempty"`
	// Input is the program input for source jobs (benchmark jobs use the
	// registered input and ignore it).
	Input string `json:"input,omitempty"`

	// Errors lists the per-trial error counts to sweep for
	// benchmark/source jobs; experiment jobs ignore it.
	Errors []int `json:"errors,omitempty"`

	Trials    int     `json:"trials,omitempty"`
	MinTrials int     `json:"min_trials,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	StopCI    float64 `json:"stop_ci,omitempty"`
	// Recovery lets a detected trial of a hardened job roll back to a
	// checkpoint and replay, up to this many rounds per trial. Zero keeps
	// detection terminal; it only applies to harden jobs.
	Recovery int `json:"recovery,omitempty"`
}

// Subject describes what the request runs, for status displays.
func (r *SubmitRequest) Subject() string {
	switch {
	case r.Experiment != "":
		return "experiment " + r.Experiment
	case r.Benchmark != "":
		return "benchmark " + r.Benchmark
	default:
		return fmt.Sprintf("source (%d bytes)", len(r.Source))
	}
}

// RequestError is a submit-time rejection: a structured 4xx, never a
// panic or a job slot.
type RequestError struct {
	// Code is a stable machine-readable slug ("bad_json",
	// "invalid_job", ...).
	Code string `json:"code"`
	// Message is the human explanation.
	Message string `json:"message"`
}

func (e *RequestError) Error() string { return e.Message }

func badRequest(code, format string, args ...any) *RequestError {
	return &RequestError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ParseSubmitRequest decodes and statically validates one submission
// body. It is strict — unknown fields, trailing garbage and
// out-of-bounds knobs are errors — and total: any input yields either a
// validated request or a *RequestError, never a panic.
func ParseSubmitRequest(body []byte) (*SubmitRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("bad_json", "decoding request body: %v", jsonErr(err))
	}
	// Reject trailing non-whitespace after the object.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badRequest("bad_json", "request body holds more than one JSON value")
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// jsonErr strips the *json.SyntaxError offset jitter down to a stable
// message while keeping type errors verbatim.
func jsonErr(err error) string {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Sprintf("invalid JSON at offset %d: %s", syn.Offset, syn.Error())
	}
	return err.Error()
}

func (r *SubmitRequest) validate() error {
	subjects := 0
	for _, set := range []bool{r.Experiment != "", r.Benchmark != "", r.Source != ""} {
		if set {
			subjects++
		}
	}
	if subjects != 1 {
		return badRequest("invalid_job", "exactly one of experiment, benchmark or source must be set (got %d)", subjects)
	}
	if len(r.Source) > MaxSourceBytes {
		return badRequest("invalid_job", "source is %d bytes; the limit is %d", len(r.Source), MaxSourceBytes)
	}
	if len(r.Input) > MaxInputBytes {
		return badRequest("invalid_job", "input is %d bytes; the limit is %d", len(r.Input), MaxInputBytes)
	}
	if r.Experiment != "" {
		if r.Harden != nil || r.Protected != nil || len(r.Errors) > 0 || r.Input != "" ||
			r.MinTrials != 0 || r.StopCI != 0 || r.Recovery != 0 {
			return badRequest("invalid_job", "experiment jobs take only policy, trials, seed and workers")
		}
	}
	if r.Harden != nil && !r.Harden.DupCompare && !r.Harden.Signatures {
		return badRequest("invalid_job", "harden must enable at least one transform")
	}
	if r.Harden != nil && r.Protected != nil {
		return badRequest("invalid_job", "harden jobs run the detection campaign; protected does not apply")
	}
	if r.Trials < 0 || r.Trials > MaxTrials {
		return badRequest("invalid_job", "trials %d out of range [0, %d]", r.Trials, MaxTrials)
	}
	if r.MinTrials < 0 || r.MinTrials > MaxTrials {
		return badRequest("invalid_job", "min_trials %d out of range [0, %d]", r.MinTrials, MaxTrials)
	}
	if len(r.Errors) > MaxErrorPoints {
		return badRequest("invalid_job", "errors sweeps at most %d points (got %d)", MaxErrorPoints, len(r.Errors))
	}
	for _, n := range r.Errors {
		if n < 0 || n > MaxErrorsPerTrial {
			return badRequest("invalid_job", "error count %d out of range [0, %d]", n, MaxErrorsPerTrial)
		}
	}
	if r.Workers < 0 || r.Workers > MaxWorkers {
		return badRequest("invalid_job", "workers %d out of range [0, %d]", r.Workers, MaxWorkers)
	}
	if r.StopCI < 0 || r.StopCI > 1 {
		return badRequest("invalid_job", "stop_ci %v out of range [0, 1]", r.StopCI)
	}
	if r.Recovery < 0 || r.Recovery > MaxRecovery {
		return badRequest("invalid_job", "recovery %d out of range [0, %d]", r.Recovery, MaxRecovery)
	}
	if r.Recovery > 0 && r.Harden == nil {
		return badRequest("invalid_job", "recovery requires a harden job: only detected trials can roll back")
	}
	return nil
}
