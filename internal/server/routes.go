package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"etap/internal/apps/all"
	"etap/internal/exp"
	"etap/internal/obs/trace"
	"etap/internal/version"
)

// Server binds a Manager to its HTTP surface. Construct it with New,
// mount Handler somewhere, and Close it on shutdown.
type Server struct {
	m   *Manager
	cfg Config
	mux *http.ServeMux
}

// New builds the manager and its routes.
func New(cfg Config) (*Server, error) {
	m, err := NewManager(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{m: m, cfg: m.cfg}
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(name, h))
	}
	route("GET /api/v1/healthz", "healthz", s.handleHealthz)
	route("GET /api/v1/experiments", "experiments", s.handleExperiments)
	route("GET /api/v1/benchmarks", "benchmarks", s.handleBenchmarks)
	route("POST /api/v1/jobs", "submit", s.handleSubmit)
	route("GET /api/v1/jobs", "jobs", s.handleList)
	route("GET /api/v1/jobs/{id}", "job", s.handleStatus)
	route("DELETE /api/v1/jobs/{id}", "cancel", s.handleCancel)
	route("GET /api/v1/jobs/{id}/report", "report", s.handleReport)
	route("GET /api/v1/jobs/{id}/events", "events", s.handleEvents)
	route("GET /metrics", "metrics", m.cfg.Metrics.Handler().ServeHTTP)
	route("GET /traces", "traces", s.handleTraces)
	route("GET /traces/{id}", "trace", s.handleTrace)
	if m.cfg.EnablePprof {
		// Explicit mounts — importing net/http/pprof also registers on
		// http.DefaultServeMux, but this mux never exposes that.
		route("GET /debug/pprof/", "pprof", pprof.Index)
		route("GET /debug/pprof/cmdline", "pprof", pprof.Cmdline)
		route("GET /debug/pprof/profile", "pprof", pprof.Profile)
		route("GET /debug/pprof/symbol", "pprof", pprof.Symbol)
		route("GET /debug/pprof/trace", "pprof", pprof.Trace)
	}
	route("/", "notfound", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such endpoint: %s %s", r.Method, r.URL.Path)
	})
	s.mux = mux
	return s, nil
}

// Handler is the service's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the job manager (for embedding servers that submit
// jobs programmatically).
func (s *Server) Manager() *Manager { return s.m }

// Close shuts the manager down (see Manager.Close).
func (s *Server) Close() error { return s.m.Close() }

// errorBody is the structured error envelope of every non-2xx JSON
// response.
type errorBody struct {
	Error RequestError `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: *badRequest(code, format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	payload := map[string]any{
		"status":         "ok",
		"version":        version.Get(),
		"uptime_seconds": s.m.Uptime().Seconds(),
		"workers":        s.cfg.Workers,
		"workers_busy":   s.m.BusyWorkers(),
		"queue":          s.cfg.QueueDepth,
		"queue_depth":    s.m.QueueLen(),
		"jobs":           s.m.Counts(),
		"jobs_stored":    s.m.StoredJobs(),
		"max_jobs":       s.cfg.MaxJobs,
		"evicted_jobs":   s.m.EvictedJobs(),
	}
	if s.cfg.Stats != nil {
		for k, v := range s.cfg.Stats() {
			payload[k] = v
		}
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var out []item
	for _, e := range exp.Experiments() {
		out = append(out, item{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	type item struct {
		Name     string `json:"name"`
		Title    string `json:"title"`
		Fidelity string `json:"fidelity"`
	}
	var out []item
	for _, a := range all.Apps() {
		out = append(out, item{Name: a.Name(), Title: a.Title(), Fidelity: a.FidelityName()})
	}
	writeJSON(w, http.StatusOK, out)
}

// submitResponse acknowledges a queued job with the links a client
// needs next.
type submitResponse struct {
	Snapshot
	Links map[string]string `json:"links"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_body", "reading request body: %v", err)
		return
	}
	req, err := ParseSubmitRequest(body)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	job, err := s.m.Submit(r.Context(), req)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "queue_full",
			"all %d queue slots are taken; retry later", s.cfg.QueueDepth)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is shutting down")
		return
	case err != nil:
		writeRequestError(w, err)
		return
	}
	base := "/api/v1/jobs/" + job.ID
	writeJSON(w, http.StatusAccepted, submitResponse{
		Snapshot: job.snapshot(),
		Links: map[string]string{
			"self":   base,
			"report": base + "/report",
			"events": base + "/events",
		},
	})
}

// writeRequestError maps a submit-time error to 400, keeping the
// structured code when the error carries one.
func writeRequestError(w http.ResponseWriter, err error) {
	var re *RequestError
	if errors.As(err, &re) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: *re})
		return
	}
	writeError(w, http.StatusBadRequest, "invalid_job", "%v", err)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.List()
	if jobs == nil {
		jobs = []Snapshot{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

// handleTraces lists the flight recorder's completed traces, newest
// first. The summaries carry the trace IDs that job snapshots, SSE
// payloads, logs and exemplars reference.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.m.cfg.Tracer
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing_disabled", "no tracer is configured")
		return
	}
	traces := tr.Traces()
	if traces == nil {
		traces = []trace.Summary{}
	}
	writeJSON(w, http.StatusOK, traces)
}

// handleTrace serves one completed trace's full span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.m.cfg.Tracer
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing_disabled", "no tracer is configured")
		return
	}
	id := r.PathValue("id")
	td := tr.Get(id)
	if td == nil {
		writeError(w, http.StatusNotFound, "no_such_trace",
			"no completed trace %q in the flight recorder (still running, evicted, or never existed)", id)
		return
	}
	writeJSON(w, http.StatusOK, td)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no_such_job", "no job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	cancelled, err := s.m.Cancel(j.ID)
	if err != nil {
		writeError(w, http.StatusNotFound, "no_such_job", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "cancelled": cancelled})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	snap := j.snapshot()
	if !snap.Report {
		switch snap.State {
		case StateFailed:
			writeError(w, http.StatusConflict, "job_failed", "job failed: %s", snap.Error)
		case StateCancelled:
			writeError(w, http.StatusConflict, "job_cancelled", "job was cancelled before any aggregates existed")
		default:
			writeError(w, http.StatusConflict, "not_ready", "job is %s; no report yet", snap.State)
		}
		return
	}
	w.Header().Set("X-Etap-Job-State", string(snap.State))
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json":
		// The payload is exactly etap.WriteReportsJSON of the
		// one-report batch — byte-compatible with etexp artifacts and
		// with a direct Experiment.Run of the same options.
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode([]json.RawMessage{snap.reportJSON}) //nolint:errcheck
	case "csv":
		if snap.report == nil {
			writeError(w, http.StatusConflict, "not_renderable", "persisted report cannot render as csv")
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		exp.WriteCSV(w, []*exp.Report{snap.report}) //nolint:errcheck
	case "text":
		if snap.report == nil {
			writeError(w, http.StatusConflict, "not_renderable", "persisted report cannot render as text")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, snap.report.RenderText()+"\n") //nolint:errcheck
	default:
		writeError(w, http.StatusBadRequest, "bad_format", "unknown format %q (have json, csv, text)", format)
	}
}

// keepaliveInterval paces SSE comment lines so idle streams (a queued
// job waiting for a worker) keep intermediaries from timing out.
const keepaliveInterval = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	cancelOnDisconnect := false
	switch r.URL.Query().Get("cancel") {
	case "1", "true", "on-disconnect":
		cancelOnDisconnect = true
	}

	replay, ch, unsub := j.Subscribe()
	defer unsub()
	sw, err := newSSEWriter(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "no_streaming", "%v", err)
		return
	}
	// disconnected handles a dead client: propagate to the campaign when
	// this stream owns it, then end the handler.
	disconnected := func() {
		if cancelOnDisconnect {
			s.m.Cancel(j.ID) //nolint:errcheck // the job may have finished already
		}
	}
	lastSent := -1
	for _, ev := range replay {
		if sw.event(ev) != nil {
			disconnected()
			return
		}
		lastSent = ev.Seq
	}
	if ch == nil {
		return // finished job: the replay ended with its terminal event
	}
	ticker := time.NewTicker(keepaliveInterval)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Job is done. A subscriber that lagged hard enough may
				// have had the terminal state event dropped from its
				// channel; the contract is that the stream always ends
				// with it, so re-deliver the job's final event if this
				// client never saw it.
				if ev, ok := j.lastEvent(); ok && ev.Seq > lastSent {
					sw.event(ev) //nolint:errcheck // stream ends either way
				}
				return
			}
			if sw.event(ev) != nil {
				disconnected()
				return
			}
			lastSent = ev.Seq
		case <-ctx.Done():
			disconnected()
			return
		case <-ticker.C:
			if sw.comment("keepalive") != nil {
				disconnected()
				return
			}
		}
	}
}
