// Package server is the HTTP characterization service behind etap.Serve:
// a JSON API over the etap Lab/campaign surface where clients submit
// characterization jobs (source + policy + campaign options), poll
// status, fetch the final report (JSON/CSV/text, reusing the exp
// renderers), and stream per-trial progress over SSE.
//
// The package is deliberately ignorant of the public etap types: the
// root package injects a RunFunc (and a Prepare validator) via Config,
// so server owns jobs, queueing, persistence and transport while etap
// owns compilation, campaigns and reports. docs/SERVE.md documents the
// wire surface.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"etap/internal/exp"
	"etap/internal/obs"
	"etap/internal/obs/trace"
)

// State is one job's lifecycle position.
type State string

const (
	// StateQueued means the job waits for a worker slot.
	StateQueued State = "queued"
	// StateRunning means a worker is executing the campaign.
	StateRunning State = "running"
	// StateDone means the job finished and its report is available.
	StateDone State = "done"
	// StateFailed means the run errored; Error explains.
	StateFailed State = "failed"
	// StateCancelled means the job was cancelled (explicitly, by a
	// disconnecting streaming client, or by a server restart). A job
	// cancelled mid-campaign keeps its partial aggregates.
	StateCancelled State = "cancelled"
)

// terminal reports whether s is an end state.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// TrialEvent is one campaign trial as reported by a RunFunc's progress
// callback and streamed to SSE subscribers.
type TrialEvent struct {
	// Point is the index of the measurement point within the job (the
	// position in the errors sweep, or the running point count of an
	// experiment).
	Point int `json:"point"`
	// Errors is the point's per-trial error count; -1 when the run
	// cannot attribute it (experiment jobs).
	Errors int `json:"errors"`
	// Trial is the zero-based trial index within its point.
	Trial int `json:"trial"`
	// Outcome classifies the trial ("completed", "crashed", ...).
	Outcome string `json:"outcome"`
	// Instructions is the trial's retired instruction count.
	Instructions uint64 `json:"instructions"`
	// Shard is the engine shard that executed the trial.
	Shard int `json:"shard"`
}

// RunFunc executes one validated job: run the campaign(s), feed every
// trial to progress, and return the structured report. On context
// cancellation it should stop between trials and, when the run shape
// supports it, return the partial report alongside ctx.Err(), so the
// manager can persist the partial aggregates under StateCancelled. A
// RunFunc whose underlying harness cannot produce partial results
// (etap's experiment registry returns nil on cancellation) may return
// (nil, ctx.Err()); the job is then cancelled with no report and the
// report endpoint says so.
type RunFunc func(ctx context.Context, req *SubmitRequest, progress func(TrialEvent)) (*exp.Report, error)

// Config assembles a Manager.
type Config struct {
	// Run executes jobs. Required.
	Run RunFunc
	// Prepare, when set, validates a parsed submission synchronously at
	// submit time (e.g. compiling the source through the shared Lab). An
	// error rejects the submission with a structured 400 and never
	// occupies a job slot. At most Workers Prepare calls run at once;
	// excess submissions wait their turn before validating.
	Prepare func(*SubmitRequest) error
	// Workers is the job worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; a full queue rejects
	// submissions with 503. 0 means 64.
	QueueDepth int
	// Store persists the job table; nil means a fresh MemStore.
	Store Store
	// MaxBodyBytes bounds request bodies; 0 means 8 MiB — enough head
	// room for the per-field limits (MaxSourceBytes, MaxInputBytes) to
	// be reachable after JSON escaping, so oversized fields get their
	// structured invalid_job error instead of a blanket 413.
	MaxBodyBytes int64
	// MaxJobs bounds the in-memory job table: once it holds this many
	// jobs, submitting a new one prunes the oldest finished
	// (done/failed/cancelled) jobs first. Live jobs are never pruned, so
	// the table can transiently exceed the bound when everything stored
	// is still queued or running. 0 means DefaultMaxJobs; negative means
	// unbounded (the pre-bound behaviour).
	MaxJobs int
	// Stats, when set, contributes extra fields (e.g. Lab cache
	// counters) to the healthz payload.
	Stats func() map[string]any
	// Metrics is the registry the service instruments (HTTP, queue,
	// worker and job-lifecycle families) and serves at GET /metrics.
	// nil means obs.Default().
	Metrics *obs.Registry
	// Tracer, when set, gives every HTTP request and every job a span
	// tree: request → job → queued/run → campaign points and shards. It
	// also mounts GET /traces and GET /traces/{id} over the tracer's
	// flight recorder. nil disables tracing (spans become no-ops).
	Tracer *trace.Tracer
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in,
	// because profiles expose internals no public deployment should.
	EnablePprof bool
	// Logger receives structured logs (job lifecycle with job IDs, HTTP
	// requests with request IDs). nil falls back to an adapter over
	// Logf, or to a discard logger when that is nil too.
	Logger *slog.Logger
	// Logf, when set (and Logger is not), receives one line per job
	// state change. Deprecated in favour of Logger; kept so existing
	// callers keep their logs.
	Logf func(format string, args ...any)
}

// DefaultMaxJobs bounds the job table when Config.MaxJobs is zero: old
// finished jobs (and their report JSON) must not accumulate in memory
// forever.
const DefaultMaxJobs = 1024

func (c Config) withDefaults() (Config, error) {
	if c.Run == nil {
		return c, errors.New("server: Config.Run is required")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Store == nil {
		c.Store = NewMemStore()
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = DefaultMaxJobs
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.Logger == nil {
		if c.Logf != nil {
			c.Logger = slog.New(logfHandler{logf: c.Logf})
		} else {
			c.Logger = slog.New(discardHandler{})
		}
	}
	return c, nil
}

// ErrQueueFull rejects a submission when every queue slot is taken.
var ErrQueueFull = errors.New("server: job queue is full")

// ErrClosed rejects submissions after Close.
var ErrClosed = errors.New("server: manager is closed")

// eventBufferCap bounds the per-job replay buffer. Jobs emitting more
// events drop the oldest; SSE subscribers arriving later see a gap in
// seq but never a reordering.
const eventBufferCap = 8192

// subChanCap is the per-subscriber channel depth; a subscriber that
// lags further than this misses events (seq stays monotonic).
const subChanCap = 1024

// Event is one SSE-visible occurrence on a job: a state change or a
// trial. Seq increases by one per event per job.
type Event struct {
	// Name is the SSE event name ("state" or "trial").
	Name string
	// Seq is the job-wide event sequence number, also the SSE id.
	Seq int
	// Data is the marshaled payload; immutable once published.
	Data json.RawMessage
}

// stateEventData is the payload of "state" events and of the status
// endpoint's state snapshot. RequestID and TraceID join the stream to
// the submitting HTTP request's log lines and to the flight-recorded
// trace.
type stateEventData struct {
	State      State  `json:"state"`
	TrialsDone int    `json:"trials_done"`
	Error      string `json:"error,omitempty"`
	RequestID  string `json:"request_id,omitempty"`
	TraceID    string `json:"trace_id,omitempty"`
}

// trialEventData is the payload of "trial" events.
type trialEventData struct {
	Seq       int    `json:"seq"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	TrialEvent
}

// Job is one submitted characterization job.
type Job struct {
	ID      string
	Spec    *SubmitRequest
	Created time.Time

	// metrics is the owning manager's metric set (shared, never nil for
	// manager-created jobs); the job updates the SSE subscriber gauge.
	metrics *serverMetrics

	// requestID is the X-Request-Id of the submitting HTTP request
	// ("" for programmatic submissions); traceID joins the job to its
	// flight-recorded trace. Both are immutable after Submit.
	requestID string
	traceID   string

	// span covers the job's whole lifetime (child of the submitting
	// request's span); queuedSpan covers the wait for a worker. Nil when
	// tracing is off — all span methods are nil-safe.
	span       *trace.Span
	queuedSpan *trace.Span

	mu         sync.Mutex
	state      State
	err        string
	started    time.Time
	finished   time.Time
	trialsDone int
	report     *exp.Report     // live result, nil until done/cancelled
	reportJSON json.RawMessage // canonical JSON object of report
	cancel     context.CancelFunc

	seq    int
	buffer []Event
	subs   map[chan Event]struct{}
}

// Snapshot is an immutable copy of a job's observable state. TraceID,
// when tracing is on, is the key for GET /traces/{id} once the job's
// trace completes.
type Snapshot struct {
	ID         string          `json:"id"`
	Subject    string          `json:"subject"`
	State      State           `json:"state"`
	Error      string          `json:"error,omitempty"`
	Created    time.Time       `json:"created"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	TrialsDone int             `json:"trials_done"`
	Report     bool            `json:"report_ready"`
	RequestID  string          `json:"request_id,omitempty"`
	TraceID    string          `json:"trace_id,omitempty"`
	reportJSON json.RawMessage `json:"-"`
	report     *exp.Report
}

func (j *Job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:         j.ID,
		Subject:    j.Spec.Subject(),
		State:      j.state,
		Error:      j.err,
		Created:    j.Created,
		TrialsDone: j.trialsDone,
		Report:     len(j.reportJSON) > 0,
		RequestID:  j.requestID,
		TraceID:    j.traceID,
		reportJSON: j.reportJSON,
		report:     j.report,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// publish appends an event (assigning its seq) and fans it out.
// Callers hold j.mu.
func (j *Job) publishLocked(name string, data any) {
	var payload json.RawMessage
	switch d := data.(type) {
	case trialEventData:
		d.Seq = j.seq
		b, err := json.Marshal(d)
		if err != nil {
			return
		}
		payload = b
	default:
		b, err := json.Marshal(data)
		if err != nil {
			return
		}
		payload = b
	}
	ev := Event{Name: name, Seq: j.seq, Data: payload}
	j.seq++
	j.buffer = append(j.buffer, ev)
	if len(j.buffer) > eventBufferCap {
		j.buffer = j.buffer[len(j.buffer)-eventBufferCap:]
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // lagging subscriber: drop, seq shows the gap
		}
	}
}

func (j *Job) publishState() {
	j.publishLocked("state", stateEventData{
		State: j.state, TrialsDone: j.trialsDone, Error: j.err,
		RequestID: j.requestID, TraceID: j.traceID,
	})
}

// Subscribe returns the replayable event history so far and, for live
// jobs, a channel of subsequent events plus an unsubscribe func. For
// finished jobs the channel is nil: the replay already ends with the
// terminal state event.
func (j *Job) Subscribe() (replay []Event, ch <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.buffer...)
	if j.state.terminal() {
		return replay, nil, func() {}
	}
	c := make(chan Event, subChanCap)
	j.subs[c] = struct{}{}
	if j.metrics != nil {
		j.metrics.sseSubs.Inc()
	}
	return replay, c, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[c]; ok {
			delete(j.subs, c)
			close(c)
			if j.metrics != nil {
				j.metrics.sseSubs.Dec()
			}
		}
	}
}

// lastEvent returns the newest buffered event — after a job finishes,
// the terminal state event. SSE handlers use it to re-deliver a
// terminal frame a lagging subscriber's channel dropped.
func (j *Job) lastEvent() (Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.buffer) == 0 {
		return Event{}, false
	}
	return j.buffer[len(j.buffer)-1], true
}

// closeSubsLocked ends every subscription after the terminal event was
// published. Callers hold j.mu.
func (j *Job) closeSubsLocked() {
	for ch := range j.subs {
		delete(j.subs, ch)
		close(ch)
		if j.metrics != nil {
			j.metrics.sseSubs.Dec()
		}
	}
}

// Manager owns the job table, the bounded worker pool and persistence.
type Manager struct {
	cfg     Config
	log     *slog.Logger
	metrics *serverMetrics
	started time.Time

	busy    atomic.Int64 // workers currently executing a job
	evicted atomic.Int64 // finished jobs pruned by the MaxJobs bound

	baseCtx context.Context
	stop    context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond // signals workers when pending grows or closed flips
	jobs    map[string]*Job
	order   []string // creation order
	pending []*Job   // queued jobs awaiting a worker; bounded by QueueDepth
	closed  bool

	wg sync.WaitGroup

	// prepSem bounds concurrent Prepare calls: submit-time validation
	// compiles and clean-runs untrusted programs, and net/http gives
	// every connection its own goroutine — without a bound, N hostile
	// submissions run N simultaneous simulations outside the worker
	// pool. Excess submissions wait their turn here.
	prepSem chan struct{}

	saveMu sync.Mutex
}

// NewManager loads the store, marks jobs interrupted by the previous
// shutdown as cancelled, and starts the worker pool.
func NewManager(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		log:     cfg.Logger,
		metrics: newServerMetrics(cfg.Metrics),
		started: time.Now().UTC(),
		baseCtx: ctx,
		stop:    stop,
		jobs:    make(map[string]*Job),
		prepSem: make(chan struct{}, cfg.Workers),
	}
	m.cond = sync.NewCond(&m.mu)
	persisted, err := cfg.Store.Load()
	if err != nil {
		stop()
		return nil, err
	}
	for _, p := range persisted {
		p := p
		j := &Job{
			ID:        p.ID,
			Spec:      &p.Spec,
			Created:   p.Created,
			metrics:   m.metrics,
			requestID: p.RequestID,
			state:     p.State,
			err:       p.Error,
			started:   p.Started, finished: p.Finished,
			trialsDone: p.TrialsDone,
			reportJSON: p.Report,
			subs:       make(map[chan Event]struct{}),
		}
		if len(p.Report) > 0 {
			// Reports are served from the raw JSON byte-for-byte; the
			// decoded form only feeds the CSV/text renderers.
			var r exp.Report
			if json.Unmarshal(p.Report, &r) == nil {
				j.report = &r
			}
		}
		if !j.state.terminal() {
			j.state = StateCancelled
			j.err = "interrupted by server restart"
			if j.finished.IsZero() {
				j.finished = time.Now().UTC()
			}
		}
		// The restored buffer is empty; seed it with the terminal state
		// event so the events endpoint keeps its contract — the replay
		// always ends with a terminal state frame. (j is not shared yet,
		// so publishLocked's lock requirement is trivially met.)
		j.publishState()
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
	}
	sort.SliceStable(m.order, func(a, b int) bool {
		return m.jobs[m.order[a]].Created.Before(m.jobs[m.order[b]].Created)
	})
	// A reloaded table may exceed the bound the previous process ran
	// without (or a lowered one); prune before serving.
	m.mu.Lock()
	evicted := m.pruneLocked()
	m.mu.Unlock()
	m.forgetJobs(evicted)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				m.mu.Lock()
				for len(m.pending) == 0 && !m.closed {
					m.cond.Wait()
				}
				if len(m.pending) == 0 {
					m.mu.Unlock()
					return // closed and drained
				}
				j := m.pending[0]
				m.pending = m.pending[1:]
				m.metrics.queueDepth.Dec()
				m.mu.Unlock()
				m.runJob(j)
			}
		}()
	}
	return m, nil
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "j" + hex.EncodeToString(b[:])
}

// startJobSpan opens the job's lifetime span. With a configured tracer
// the span roots a fresh trace (or joins the submitting request's), so
// every job is traceable even when submitted programmatically; without
// one it degrades to a child of whatever span ctx carries, usually nil.
func (m *Manager) startJobSpan(ctx context.Context, j *Job) (context.Context, *trace.Span) {
	attrs := []trace.Attr{
		trace.String("job_id", j.ID),
		trace.String("subject", j.Spec.Subject()),
	}
	if j.requestID != "" {
		attrs = append(attrs, trace.String("request_id", j.requestID))
	}
	if m.cfg.Tracer != nil {
		return m.cfg.Tracer.Start(ctx, "job", attrs...)
	}
	return trace.Start(ctx, "job", attrs...)
}

// endSpans closes the job's spans at a terminal state. Safe to call
// from racing paths (Cancel vs runJob): End is idempotent.
func (j *Job) endSpans(state State, errText string) {
	j.queuedSpan.End()
	j.span.SetAttr(trace.String("state", string(state)))
	switch state {
	case StateDone:
		j.span.SetStatus(trace.StatusOK, "")
	case StateFailed:
		j.span.SetStatus(trace.StatusError, errText)
	}
	j.span.End()
}

// jobLog is the manager's logger enriched with the job's request and
// trace identifiers, so one grep joins HTTP access logs, job lifecycle
// lines and the flight-recorded trace.
func (m *Manager) jobLog(j *Job) *slog.Logger {
	l := m.log
	if j.requestID != "" {
		l = l.With("request", j.requestID)
	}
	if j.traceID != "" {
		l = l.With("trace", j.traceID)
	}
	return l
}

// Submit validates (via Prepare), registers and enqueues one job. ctx
// carries the submitting request's identity — its request ID and span
// (or remote traceparent) — which the job inherits; the job itself is
// not bound by ctx's lifetime.
func (m *Manager) Submit(ctx context.Context, req *SubmitRequest) (*Job, error) {
	if m.cfg.Prepare != nil {
		// Don't pay for validation when the submission cannot be accepted
		// anyway. (Racing submissions may still re-hit these checks at
		// enqueue time below; this one just keeps a full queue cheap.)
		m.mu.Lock()
		closed, full := m.closed, len(m.pending) >= m.cfg.QueueDepth
		m.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		if full {
			return nil, ErrQueueFull
		}
		m.prepSem <- struct{}{}
		err := m.cfg.Prepare(req)
		<-m.prepSem
		if err != nil {
			return nil, err
		}
	}
	j := &Job{
		ID:        newJobID(),
		Spec:      req,
		Created:   time.Now().UTC(),
		metrics:   m.metrics,
		requestID: RequestIDFromContext(ctx),
		state:     StateQueued,
		subs:      make(map[chan Event]struct{}),
	}
	jctx, span := m.startJobSpan(ctx, j)
	j.span = span
	j.traceID = span.TraceID()
	_, j.queuedSpan = trace.Start(jctx, "job.queued")
	j.mu.Lock()
	j.publishState()
	j.mu.Unlock()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		j.endSpans(StateFailed, ErrClosed.Error())
		return nil, ErrClosed
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		j.endSpans(StateFailed, ErrQueueFull.Error())
		return nil, ErrQueueFull
	}
	m.pending = append(m.pending, j)
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.metrics.queueDepth.Inc()
	evicted := m.pruneLocked()
	m.cond.Signal()
	m.mu.Unlock()

	m.metrics.enteredState(StateQueued)
	m.jobLog(j).Info("job queued", "job", j.ID, "subject", req.Subject())
	m.forgetJobs(evicted)
	m.persistJob(j)
	return j, nil
}

// pruneLocked evicts the oldest finished jobs while the table exceeds
// cfg.MaxJobs, returning the evicted IDs so the caller can drop them
// from an incremental store (outside m.mu — store I/O never runs under
// the table lock). Queued and running jobs are never evicted — the
// table may transiently exceed the bound when everything stored is
// live. Callers hold m.mu.
func (m *Manager) pruneLocked() (evicted []string) {
	if m.cfg.MaxJobs < 0 {
		return nil
	}
	for len(m.jobs) > m.cfg.MaxJobs {
		victim := -1
		for i, id := range m.order {
			j := m.jobs[id]
			j.mu.Lock()
			terminal := j.state.terminal()
			j.mu.Unlock()
			if terminal {
				victim = i
				break
			}
		}
		if victim < 0 {
			break // every stored job is live; nothing prunable
		}
		id := m.order[victim]
		m.order = append(m.order[:victim], m.order[victim+1:]...)
		delete(m.jobs, id)
		evicted = append(evicted, id)
		m.evicted.Add(1)
		m.metrics.jobsEvicted.Inc()
		m.log.Info("job evicted", "job", id, "stored", len(m.jobs), "max_jobs", m.cfg.MaxJobs)
	}
	m.metrics.jobsStored.Set(float64(len(m.jobs)))
	return evicted
}

// Get resolves one job.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every job in creation order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// Counts tallies jobs per state.
func (m *Manager) Counts() map[State]int {
	out := make(map[State]int)
	for _, s := range m.List() {
		out[s.State]++
	}
	return out
}

// Uptime is the time since the manager started.
func (m *Manager) Uptime() time.Duration { return time.Since(m.started) }

// BusyWorkers counts workers currently executing a job.
func (m *Manager) BusyWorkers() int { return int(m.busy.Load()) }

// QueueLen counts jobs waiting for a worker slot.
func (m *Manager) QueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// StoredJobs counts jobs held in the in-memory table.
func (m *Manager) StoredJobs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// EvictedJobs counts finished jobs pruned by the MaxJobs bound over the
// manager's lifetime.
func (m *Manager) EvictedJobs() int64 { return m.evicted.Load() }

// Cancel stops a job: queued jobs finish immediately as cancelled,
// running jobs get their context cancelled (the campaign stops between
// trials and keeps its partial aggregates). Cancelling a finished job
// is a no-op reporting false.
func (m *Manager) Cancel(id string) (bool, error) {
	j, ok := m.Get(id)
	if !ok {
		return false, fmt.Errorf("server: no job %q", id)
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = "cancelled before start"
		j.finished = time.Now().UTC()
		j.publishState()
		j.closeSubsLocked()
		j.mu.Unlock()
		j.endSpans(StateCancelled, "")
		// Free the queue slot now — a cancelled job must not hold the
		// queue full until a worker happens to drain it.
		m.dropPending(j)
		m.metrics.enteredState(StateCancelled)
		m.jobLog(j).Info("job cancelled while queued", "job", j.ID)
		m.persistJob(j)
		return true, nil
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true, nil
	default:
		j.mu.Unlock()
		return false, nil
	}
}

// dropPending removes j from the pending queue, if it is still there.
// (A worker may have popped it concurrently; runJob then discards it on
// seeing the non-queued state.)
func (m *Manager) dropPending(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, q := range m.pending {
		if q == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.metrics.queueDepth.Dec()
			return
		}
	}
}

// runJob executes one dequeued job through the configured RunFunc.
func (m *Manager) runJob(j *Job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.cancel = cancel
	j.publishState()
	j.mu.Unlock()
	// The submitting request's context is long gone; re-root the worker
	// context on the job's lifetime span so the run span — and the
	// campaign point/shard spans the RunFunc creates beneath it — nest
	// in the job's trace.
	j.queuedSpan.End()
	ctx = trace.ContextWithSpan(ctx, j.span)
	ctx, runSpan := trace.Start(ctx, "job.run")
	m.busy.Add(1)
	m.metrics.workersBusy.Inc()
	defer func() {
		m.busy.Add(-1)
		m.metrics.workersBusy.Dec()
	}()
	m.metrics.enteredState(StateRunning)
	m.jobLog(j).Info("job running", "job", j.ID)
	m.persistJob(j)

	progress := func(ev TrialEvent) {
		j.mu.Lock()
		j.trialsDone++
		j.publishLocked("trial", trialEventData{
			RequestID: j.requestID, TraceID: j.traceID, TrialEvent: ev,
		})
		j.mu.Unlock()
	}
	report, err := m.run(ctx, j, progress)

	j.mu.Lock()
	j.finished = time.Now().UTC()
	j.cancel = nil
	if report != nil {
		if raw, merr := json.Marshal(report); merr == nil {
			j.report = report
			j.reportJSON = raw
		} else if err == nil {
			err = fmt.Errorf("encoding report: %w", merr)
		}
	}
	switch {
	case err == nil && len(j.reportJSON) > 0:
		// A run that returned a complete report stays done even when a
		// cancel landed after the last trial — cancellation that did not
		// curtail anything must not relabel a finished result.
		j.state = StateDone
	case ctx.Err() != nil:
		j.state = StateCancelled
		j.err = "cancelled mid-campaign; partial aggregates kept"
		if report == nil {
			j.err = "cancelled mid-campaign"
		}
	case err != nil:
		j.state = StateFailed
		j.err = err.Error()
	default:
		j.state = StateFailed
		j.err = "run produced no report"
	}
	j.publishState()
	j.closeSubsLocked()
	state, errText, trials := j.state, j.err, j.trialsDone
	elapsed := j.finished.Sub(j.started)
	j.mu.Unlock()
	runSpan.SetAttr(trace.Int("trials", int64(trials)))
	if state == StateFailed {
		runSpan.SetStatus(trace.StatusError, errText)
	}
	runSpan.End()
	j.endSpans(state, errText)
	m.metrics.enteredState(state)
	if errText != "" {
		m.jobLog(j).Info("job finished", "job", j.ID, "state", state, "trials", trials, "elapsed", elapsed, "error", errText)
	} else {
		m.jobLog(j).Info("job finished", "job", j.ID, "state", state, "trials", trials, "elapsed", elapsed)
	}
	m.persistJob(j)
}

// run guards the RunFunc against panics so one bad job cannot wedge a
// worker slot.
func (m *Manager) run(ctx context.Context, j *Job, progress func(TrialEvent)) (report *exp.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			report, err = nil, fmt.Errorf("run panicked: %v", r)
		}
	}()
	return m.cfg.Run(ctx, j.Spec, progress)
}

// persisted builds the job's durable form.
func (j *Job) persisted() PersistedJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	return PersistedJob{
		ID:         j.ID,
		Spec:       *j.Spec,
		State:      j.state,
		Error:      j.err,
		Created:    j.Created,
		Started:    j.started,
		Finished:   j.finished,
		TrialsDone: j.trialsDone,
		RequestID:  j.requestID,
		Report:     j.reportJSON,
	}
}

// persistJob saves one job's durable state after a state change.
// Incremental stores (JobStore) get just that job — O(1) instead of
// rewriting the whole table, which dominated submit/finish latency once
// the table held many finished jobs with reports. Plain stores fall
// back to the full snapshot.
func (m *Manager) persistJob(j *Job) {
	js, ok := m.cfg.Store.(JobStore)
	if !ok {
		m.persist()
		return
	}
	m.saveMu.Lock()
	defer m.saveMu.Unlock()
	if err := js.SaveJob(j.persisted()); err != nil {
		m.log.Error("persisting job failed", "job", j.ID, "error", err)
	}
}

// forgetJobs drops evicted jobs from an incremental store. Plain
// stores need nothing: their next full snapshot simply omits the
// evicted jobs.
func (m *Manager) forgetJobs(ids []string) {
	if len(ids) == 0 {
		return
	}
	js, ok := m.cfg.Store.(JobStore)
	if !ok {
		return
	}
	m.saveMu.Lock()
	defer m.saveMu.Unlock()
	for _, id := range ids {
		if err := js.DeleteJob(id); err != nil {
			m.log.Error("dropping evicted job from store failed", "job", id, "error", err)
		}
	}
}

// persist snapshots the whole job table through the store. Saves are
// serialized; a late save always writes the newest table.
func (m *Manager) persist() {
	m.saveMu.Lock()
	defer m.saveMu.Unlock()
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]PersistedJob, len(jobs))
	for i, j := range jobs {
		out[i] = j.persisted()
	}
	if err := m.cfg.Store.Save(out); err != nil {
		m.log.Error("persisting job table failed", "error", err)
	}
}

// Close stops accepting submissions, cancels running jobs (their
// partial aggregates persist as cancelled), waits for the workers and
// writes a final snapshot.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
	m.persist()
	return nil
}
