// Package server_test drives the HTTP characterization service
// end-to-end: the real etap.NewServer handler (compiles, campaigns,
// reports) behind httptest, exercised the way a remote client would —
// submit, poll, stream SSE, fetch reports, disconnect mid-stream.
package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"etap"
	"etap/internal/server"
)

// fastSource is a small tolerant program: cheap golden pass, cheap
// trials.
const fastSource = `
char data[64];

tolerant void scale(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = p[i] * 2;
    }
}

int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) { data[i] = inb(); }
    scale(data, 64);
    for (i = 0; i < 64; i = i + 1) { outb(data[i]); }
    return 0;
}
`

// slowSource retires enough instructions per trial that a campaign with
// a large trial budget outlives the test's cancellation window.
const slowSource = `
char buf[128];

tolerant void churn(char *p, int n, int rounds) {
    int r;
    int i;
    for (r = 0; r < rounds; r = r + 1) {
        for (i = 0; i < n; i = i + 1) {
            p[i] = p[i] + r;
        }
    }
}

int main() {
    int i;
    for (i = 0; i < 128; i = i + 1) { buf[i] = inb(); }
    churn(buf, 128, 64);
    for (i = 0; i < 128; i = i + 1) { outb(buf[i]); }
    return 0;
}
`

func fastInput() string { return strings.Repeat("abcdefgh", 8) }
func slowInput() string { return strings.Repeat("abcdefgh", 16) }
func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// newTestServer starts the real service over httptest and tears it down
// with the test.
func newTestServer(t *testing.T, opts ...etap.ServeOption) (*etap.Server, *httptest.Server) {
	t.Helper()
	s, err := etap.NewServer(opts...)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// submitJob posts a job body and returns its id.
func submitJob(t *testing.T, base, body string) string {
	t.Helper()
	resp, data := doJSON(t, http.MethodPost, base+"/api/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var ack struct {
		ID    string            `json:"id"`
		State server.State      `json:"state"`
		Links map[string]string `json:"links"`
	}
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatalf("submit ack does not parse: %v: %s", err, data)
	}
	if ack.ID == "" || ack.State != server.StateQueued {
		t.Fatalf("submit ack: %s", data)
	}
	if ack.Links["report"] == "" || ack.Links["events"] == "" {
		t.Fatalf("submit ack lacks links: %s", data)
	}
	return ack.ID
}

// jobStatus fetches one job's status object.
func jobStatus(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, data := doJSON(t, http.MethodGet, base+"/api/v1/jobs/"+id, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d: %s", resp.StatusCode, data)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("status does not parse: %v", err)
	}
	return out
}

// waitForState polls until the job reaches one of the wanted states,
// failing fast when it lands in an unexpected terminal state.
func waitForState(t *testing.T, base, id string, want ...server.State) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := jobStatus(t, base, id)
		state := server.State(st["state"].(string))
		for _, w := range want {
			if state == w {
				return st
			}
		}
		if terminal(state) {
			t.Fatalf("job %s ended as %s (error: %v), wanted %v", id, state, st["error"], want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return nil
}

// terminal mirrors the manager's end-state test for polling loops.
func terminal(s server.State) bool {
	return s == server.StateDone || s == server.StateFailed || s == server.StateCancelled
}

// sseEvent is one parsed text/event-stream frame.
type sseEvent struct {
	id   int
	name string
	data string
}

// parseSSE reads frames from r, calling each per event; each returning
// false stops the read.
func parseSSE(r io.Reader, each func(sseEvent) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var ev sseEvent
	has := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if has && !each(ev) {
				return nil
			}
			ev, has = sseEvent{}, false
		case strings.HasPrefix(line, ":"):
		case strings.HasPrefix(line, "id: "):
			ev.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
			has = true
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
			has = true
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
			has = true
		}
	}
	return sc.Err()
}

// TestSubmitPollReportRoundTrip: an experiment job round-trips through
// submit → poll → report, and the served report JSON is byte-identical
// to WriteReportsJSON of a direct Experiment.Run with the same options.
func TestSubmitPollReportRoundTrip(t *testing.T) {
	_, hs := newTestServer(t)
	id := submitJob(t, hs.URL, `{"experiment":"table1"}`)
	st := waitForState(t, hs.URL, id, server.StateDone)
	if ready, _ := st["report_ready"].(bool); !ready {
		t.Fatalf("done job has no report: %v", st)
	}

	resp, got := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id+"/report", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("report content type %q", ct)
	}
	if state := resp.Header.Get("X-Etap-Job-State"); state != "done" {
		t.Fatalf("report job state header %q", state)
	}

	e, ok := etap.ExperimentByID("table1")
	if !ok {
		t.Fatal("no table1 experiment")
	}
	direct, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := etap.WriteReportsJSON(&want, []*etap.Report{direct}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served report differs from direct run:\nserved:\n%s\ndirect:\n%s", got, want.Bytes())
	}

	// The CSV and text renderings come from the same report.
	resp, csv := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id+"/report?format=csv", "")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(csv), "report,") {
		t.Fatalf("csv report: %d: %.80s", resp.StatusCode, csv)
	}
	resp, text := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id+"/report?format=text", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(text), "applications and fidelity measures") {
		t.Fatalf("text report: %d: %.80s", resp.StatusCode, text)
	}
}

// TestSourceJobSweepReport: an ad-hoc source characterization runs the
// sweep and reports one row per error count with consistent tallies.
func TestSourceJobSweepReport(t *testing.T) {
	_, hs := newTestServer(t)
	id := submitJob(t, hs.URL, fmt.Sprintf(
		`{"source":%s,"input":%s,"errors":[1,3],"trials":24,"seed":7,"workers":2}`,
		jsonStr(fastSource), jsonStr(fastInput())))
	waitForState(t, hs.URL, id, server.StateDone)

	resp, data := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id+"/report", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d: %s", resp.StatusCode, data)
	}
	var reports []struct {
		ID      string `json:"id"`
		Policy  string `json:"policy"`
		Trials  int    `json:"trials"`
		Seed    int64  `json:"seed"`
		Columns []struct {
			Name string `json:"name"`
		} `json:"columns"`
		Rows [][]struct {
			Text string   `json:"text"`
			Num  *float64 `json:"num"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &reports); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports", len(reports))
	}
	r := reports[0]
	if r.ID != "characterize" || r.Policy != "control+addr" || r.Trials != 24 || r.Seed != 7 {
		t.Fatalf("report metadata: %+v", r)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(r.Rows))
	}
	for i, row := range r.Rows {
		if got := *row[0].Num; got != float64([]int{1, 3}[i]) {
			t.Fatalf("row %d errors = %v", i, got)
		}
		if got := *row[1].Num; got != 24 {
			t.Fatalf("row %d trials = %v, want 24", i, got)
		}
		// crashes+timeouts+detected+recovered+completed == trials
		sum := *row[2].Num + *row[3].Num + *row[4].Num + *row[5].Num + *row[6].Num
		if sum != 24 {
			t.Fatalf("row %d outcome tallies sum to %v", i, sum)
		}
		// tolerated+detected+untolerated == trials (availability partition)
		if part := *row[9].Num + *row[4].Num + *row[10].Num; part != 24 {
			t.Fatalf("row %d availability partition sums to %v", i, part)
		}
		if row[19].Text != "ok" {
			t.Fatalf("row %d status %q", i, row[19].Text)
		}
	}
}

// TestSSEMonotonicTrials: the event stream replays from the start and
// delivers strictly increasing sequence numbers, one trial event per
// executed trial, ending with a terminal state event.
func TestSSEMonotonicTrials(t *testing.T) {
	_, hs := newTestServer(t)
	const trials, points = 48, 2
	id := submitJob(t, hs.URL, fmt.Sprintf(
		`{"source":%s,"input":%s,"errors":[1,2],"trials":%d,"workers":2}`,
		jsonStr(fastSource), jsonStr(fastInput()), trials))

	resp, err := http.Get(hs.URL + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	var events []sseEvent
	if err := parseSSE(resp.Body, func(ev sseEvent) bool {
		events = append(events, ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}

	lastSeq := -1
	trialCount := 0
	lastTrialPerPoint := map[int]int{}
	for _, ev := range events {
		if ev.id <= lastSeq {
			t.Fatalf("seq went %d -> %d (not increasing)", lastSeq, ev.id)
		}
		lastSeq = ev.id
		switch ev.name {
		case "trial":
			var tr struct {
				Seq     int    `json:"seq"`
				Point   int    `json:"point"`
				Errors  int    `json:"errors"`
				Trial   int    `json:"trial"`
				Outcome string `json:"outcome"`
			}
			if err := json.Unmarshal([]byte(ev.data), &tr); err != nil {
				t.Fatalf("trial event does not parse: %v: %s", err, ev.data)
			}
			if tr.Seq != ev.id {
				t.Fatalf("payload seq %d != frame id %d", tr.Seq, ev.id)
			}
			if last, ok := lastTrialPerPoint[tr.Point]; ok && tr.Trial != last+1 {
				t.Fatalf("point %d trials went %d -> %d", tr.Point, last, tr.Trial)
			}
			lastTrialPerPoint[tr.Point] = tr.Trial
			if tr.Outcome == "" {
				t.Fatalf("trial event without outcome: %s", ev.data)
			}
			trialCount++
		case "state":
		default:
			t.Fatalf("unknown event %q", ev.name)
		}
	}
	if want := trials * points; trialCount != want {
		t.Fatalf("streamed %d trial events, want %d", trialCount, want)
	}
	last := events[len(events)-1]
	if last.name != "state" || !strings.Contains(last.data, `"done"`) {
		t.Fatalf("stream did not end with a done state event: %s %s", last.name, last.data)
	}
}

// TestClientDisconnectCancelsJob: killing a ?cancel=1 streaming client
// cancels the campaign between trials; the job lands in cancelled with
// its partial aggregates intact and servable.
func TestClientDisconnectCancelsJob(t *testing.T) {
	_, hs := newTestServer(t)
	id := submitJob(t, hs.URL, fmt.Sprintf(
		`{"source":%s,"input":%s,"errors":[1],"trials":100000,"workers":2}`,
		jsonStr(slowSource), jsonStr(slowInput())))

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		hs.URL+"/api/v1/jobs/"+id+"/events?cancel=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	trialsSeen := 0
	parseSSE(resp.Body, func(ev sseEvent) bool { //nolint:errcheck // ends by ctx cancel
		if ev.name == "trial" {
			trialsSeen++
		}
		return trialsSeen < 3
	})
	if trialsSeen < 3 {
		t.Fatalf("saw only %d trial events before disconnecting", trialsSeen)
	}
	// Kill the streaming client.
	cancel()
	resp.Body.Close()

	st := waitForState(t, hs.URL, id, server.StateCancelled)
	if done, _ := st["trials_done"].(float64); done <= 0 {
		t.Fatalf("cancelled job kept no partial aggregates: %v", st)
	}
	if msg, _ := st["error"].(string); !strings.Contains(msg, "partial aggregates") {
		t.Fatalf("cancelled job error: %v", st["error"])
	}

	resp2, data := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id+"/report", "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("partial report: %d: %s", resp2.StatusCode, data)
	}
	if state := resp2.Header.Get("X-Etap-Job-State"); state != "cancelled" {
		t.Fatalf("partial report state header %q", state)
	}
	if !strings.Contains(string(data), "cancelled (partial)") {
		t.Fatalf("partial report rows not flagged cancelled:\n%s", data)
	}
}

// TestConcurrentJobsShareOneLab: 8 concurrent submissions of the same
// (source, policy) against one shared Lab pay exactly one compile
// (singleflight), and every job's report is byte-identical regardless of
// worker scheduling. This is the service-level race/load test — run it
// under -race.
func TestConcurrentJobsShareOneLab(t *testing.T) {
	lab := etap.NewLab()
	s, hs := newTestServer(t,
		etap.WithServeLab(lab),
		etap.WithServeWorkers(4),
		etap.WithServeQueueDepth(16))
	if s.Lab() != lab {
		t.Fatal("server did not adopt the shared lab")
	}

	const n = 8
	body := fmt.Sprintf(
		`{"source":%s,"input":%s,"errors":[1,2],"trials":16,"seed":9,"workers":2}`,
		jsonStr(fastSource), jsonStr(fastInput()))

	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("submit %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			var ack struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(data, &ack); err != nil || ack.ID == "" {
				errs[i] = fmt.Errorf("submit %d ack: %v: %s", i, err, data)
				return
			}
			ids[i] = ack.ID
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var first []byte
	for i, id := range ids {
		waitForState(t, hs.URL, id, server.StateDone)
		resp, data := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id+"/report", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %d: %d: %s", i, resp.StatusCode, data)
		}
		if i == 0 {
			first = data
			continue
		}
		if !bytes.Equal(data, first) {
			t.Fatalf("job %d report differs from job 0:\n%s\nvs\n%s", i, data, first)
		}
	}
	if got := lab.Builds(); got != 1 {
		t.Fatalf("%d concurrent identical submissions paid %d compiles, want exactly 1", n, got)
	}
}

// TestCancelEndpoint: DELETE cancels a running job.
func TestCancelEndpoint(t *testing.T) {
	_, hs := newTestServer(t)
	id := submitJob(t, hs.URL, fmt.Sprintf(
		`{"source":%s,"input":%s,"errors":[1],"trials":100000,"workers":2}`,
		jsonStr(slowSource), jsonStr(slowInput())))
	waitForState(t, hs.URL, id, server.StateRunning)
	resp, data := doJSON(t, http.MethodDelete, hs.URL+"/api/v1/jobs/"+id, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d: %s", resp.StatusCode, data)
	}
	waitForState(t, hs.URL, id, server.StateCancelled)
}

// TestRestartServesPersistedJobs: a server restarted on the same state
// file still lists finished jobs and serves their reports byte-for-byte.
func TestRestartServesPersistedJobs(t *testing.T) {
	state := filepath.Join(t.TempDir(), "jobs.json")
	s1, err := etap.NewServer(etap.WithServeStateFile(state))
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	id := submitJob(t, hs1.URL, `{"experiment":"table1"}`)
	waitForState(t, hs1.URL, id, server.StateDone)
	_, before := doJSON(t, http.MethodGet, hs1.URL+"/api/v1/jobs/"+id+"/report", "")
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	_, hs2 := newTestServer(t, etap.WithServeStateFile(state))
	st := jobStatus(t, hs2.URL, id)
	if st["state"] != "done" {
		t.Fatalf("restarted job state: %v", st)
	}
	resp, after := doJSON(t, http.MethodGet, hs2.URL+"/api/v1/jobs/"+id+"/report", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted report: %d: %s", resp.StatusCode, after)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("report changed across restart:\nbefore:\n%s\nafter:\n%s", before, after)
	}

	// The restored job's event stream still honors the contract: the
	// replay ends with a terminal state frame (not an empty stream).
	sresp, err := http.Get(hs2.URL + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var events []sseEvent
	if err := parseSSE(sresp.Body, func(ev sseEvent) bool {
		events = append(events, ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("restored job streams no events")
	}
	last := events[len(events)-1]
	if last.name != "state" || !strings.Contains(last.data, `"done"`) {
		t.Fatalf("restored stream does not end with the terminal state: %s %s", last.name, last.data)
	}
}

// TestHardenedRecoveryJob: a hardened job with recovery enabled reports
// the availability columns, recovers trials, and streams "recovered"
// outcomes over SSE.
func TestHardenedRecoveryJob(t *testing.T) {
	_, hs := newTestServer(t)
	id := submitJob(t, hs.URL,
		`{"benchmark":"adpcm","harden":{"dup_compare":true,"signatures":true},"errors":[1],"trials":24,"seed":9,"workers":2,"recovery":3}`)
	waitForState(t, hs.URL, id, server.StateDone)

	resp, data := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id+"/report", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d: %s", resp.StatusCode, data)
	}
	var reports []struct {
		Columns []struct {
			Name string `json:"name"`
		} `json:"columns"`
		Rows [][]struct {
			Text string   `json:"text"`
			Num  *float64 `json:"num"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &reports); err != nil || len(reports) != 1 {
		t.Fatalf("report does not parse: %v: %s", err, data)
	}
	col := map[string]int{}
	for i, c := range reports[0].Columns {
		col[c.Name] = i
	}
	for _, name := range []string{"recovered", "tolerated", "untolerated", "availability", "recover latency p50"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("report missing %q column (have %v)", name, col)
		}
	}
	if len(reports[0].Rows) != 1 {
		t.Fatalf("got %d rows", len(reports[0].Rows))
	}
	row := reports[0].Rows[0]
	recovered := *row[col["recovered"]].Num
	if recovered == 0 {
		t.Fatal("hardened recovery job recovered no trial")
	}
	if part := *row[col["tolerated"]].Num + *row[col["detected"]].Num + *row[col["untolerated"]].Num; part != 24 {
		t.Fatalf("availability partition sums to %v", part)
	}

	// The event stream labels recovered trials with the public outcome
	// string.
	resp, events := doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs/"+id+"/events", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if n := strings.Count(string(events), `"recovered"`); float64(n) < recovered {
		t.Fatalf("SSE stream has %d recovered outcomes, report says %v", n, recovered)
	}
}

// TestSubmitRejections: malformed submissions are structured 4xx and
// never occupy a job slot.
func TestSubmitRejections(t *testing.T) {
	_, hs := newTestServer(t, etap.WithServeMaxBody(16<<10))
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"empty body", ``, http.StatusBadRequest, "bad_json"},
		{"not json", `{nope`, http.StatusBadRequest, "bad_json"},
		{"trailing garbage", `{"experiment":"table1"} extra`, http.StatusBadRequest, "bad_json"},
		{"unknown field", `{"experiment":"table1","bogus":1}`, http.StatusBadRequest, "bad_json"},
		{"no subject", `{"trials":4}`, http.StatusBadRequest, "invalid_job"},
		{"two subjects", `{"experiment":"table1","benchmark":"adpcm"}`, http.StatusBadRequest, "invalid_job"},
		{"unknown experiment", `{"experiment":"table9"}`, http.StatusBadRequest, "invalid_job"},
		{"unknown benchmark", `{"benchmark":"quake"}`, http.StatusBadRequest, "invalid_job"},
		{"unknown policy", `{"benchmark":"adpcm","policy":"strict"}`, http.StatusBadRequest, "invalid_job"},
		{"trials out of range", `{"benchmark":"adpcm","trials":1000001}`, http.StatusBadRequest, "invalid_job"},
		{"experiment with sweep", `{"experiment":"table1","errors":[1]}`, http.StatusBadRequest, "invalid_job"},
		{"experiment with stop_ci", `{"experiment":"table1","stop_ci":0.1,"min_trials":8}`, http.StatusBadRequest, "invalid_job"},
		{"empty harden", fmt.Sprintf(`{"source":%s,"harden":{}}`, jsonStr(fastSource)), http.StatusBadRequest, "invalid_job"},
		{"experiment with recovery", `{"experiment":"table1","recovery":2}`, http.StatusBadRequest, "invalid_job"},
		{"recovery without harden", `{"benchmark":"adpcm","recovery":2}`, http.StatusBadRequest, "invalid_job"},
		{"recovery out of range", fmt.Sprintf(`{"source":%s,"harden":{"dup_compare":true},"recovery":65}`, jsonStr(fastSource)), http.StatusBadRequest, "invalid_job"},
		{"source does not compile", `{"source":"int main() { return x; }"}`, http.StatusBadRequest, "bad_source"},
		{"source crashes clean", `{"source":"int main() { int a; a = 1 / 0; return a; }"}`, http.StatusBadRequest, "bad_source"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := doJSON(t, http.MethodPost, hs.URL+"/api/v1/jobs", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			var body struct {
				Error server.RequestError `json:"error"`
			}
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatalf("error body does not parse: %v: %s", err, data)
			}
			if body.Error.Code != tc.code || body.Error.Message == "" {
				t.Fatalf("error %+v, want code %q", body.Error, tc.code)
			}
		})
	}

	// Oversized bodies are 413.
	big := fmt.Sprintf(`{"source":%s}`, jsonStr(strings.Repeat("x", 32<<10)))
	resp, data := doJSON(t, http.MethodPost, hs.URL+"/api/v1/jobs", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d: %.120s", resp.StatusCode, data)
	}

	// No jobs were created by any rejection.
	resp, data = doJSON(t, http.MethodGet, hs.URL+"/api/v1/jobs", "")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(data)) != "[]" {
		t.Fatalf("rejections left jobs behind: %s", data)
	}
}

// TestDiscoveryEndpoints: healthz, experiments and benchmarks answer.
func TestDiscoveryEndpoints(t *testing.T) {
	_, hs := newTestServer(t)
	resp, data := doJSON(t, http.MethodGet, hs.URL+"/api/v1/healthz", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"status": "ok"`) {
		t.Fatalf("healthz: %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), `"lab"`) {
		t.Fatalf("healthz lacks lab stats: %s", data)
	}
	resp, data = doJSON(t, http.MethodGet, hs.URL+"/api/v1/experiments", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"table2"`) {
		t.Fatalf("experiments: %d: %s", resp.StatusCode, data)
	}
	resp, data = doJSON(t, http.MethodGet, hs.URL+"/api/v1/benchmarks", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"susan"`) {
		t.Fatalf("benchmarks: %d: %s", resp.StatusCode, data)
	}
	resp, data = doJSON(t, http.MethodGet, hs.URL+"/api/v1/nope", "")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(data), "not_found") {
		t.Fatalf("unknown endpoint: %d: %s", resp.StatusCode, data)
	}
}
