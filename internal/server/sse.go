package server

import (
	"fmt"
	"net/http"
)

// sseWriter frames Events as text/event-stream messages:
//
//	id: <seq>
//	event: <name>
//	data: <one-line JSON payload>
//	<blank line>
//
// Payloads are single-line JSON (json.Marshal emits no newlines), so
// one data: line per event suffices and clients can json-decode each
// data field directly.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// newSSEWriter prepares the stream headers. It fails when the
// underlying writer cannot flush incrementally — buffering an SSE
// stream would defeat it.
func newSSEWriter(w http.ResponseWriter) (*sseWriter, error) {
	f := findFlusher(w)
	if f == nil {
		return nil, fmt.Errorf("server: response writer does not support streaming")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}, nil
}

// findFlusher resolves http.Flusher through any chain of middleware
// wrappers that expose Unwrap (the instrumentation's statusWriter
// does), the same convention http.ResponseController uses.
func findFlusher(w http.ResponseWriter) http.Flusher {
	for {
		if f, ok := w.(http.Flusher); ok {
			return f
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil
		}
		w = u.Unwrap()
	}
}

// event writes one framed event and flushes it to the client.
func (s *sseWriter) event(ev Event) error {
	if _, err := fmt.Fprintf(s.w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Name, ev.Data); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// comment writes an SSE comment line (a keep-alive that clients
// ignore).
func (s *sseWriter) comment(text string) error {
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}
