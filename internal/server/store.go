package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// PersistedJob is the durable form of one job: everything needed to
// answer status and report queries after a restart. The report is kept
// as raw JSON (the exact object the report endpoint serves inside its
// one-element array), so persistence cannot drift from the wire format.
type PersistedJob struct {
	ID         string          `json:"id"`
	Spec       SubmitRequest   `json:"spec"`
	State      State           `json:"state"`
	Error      string          `json:"error,omitempty"`
	Created    time.Time       `json:"created"`
	Started    time.Time       `json:"started,omitempty"`
	Finished   time.Time       `json:"finished,omitempty"`
	TrialsDone int             `json:"trials_done"`
	Report     json.RawMessage `json:"report,omitempty"`
}

// Store persists the job table. The manager keeps jobs in memory and
// snapshots the whole table through the Store on every state change;
// Load seeds the table on startup so a restarted server still answers
// for finished jobs.
//
// Implementations must be safe for concurrent use by one manager
// (Save calls are serialized by the manager, Load happens once).
type Store interface {
	Load() ([]PersistedJob, error)
	Save([]PersistedJob) error
}

// MemStore is a Store that remembers the last snapshot in memory — the
// default when no state file is configured, and the restart-simulation
// vehicle for tests.
type MemStore struct {
	jobs []PersistedJob
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Load returns the last saved snapshot.
func (m *MemStore) Load() ([]PersistedJob, error) { return m.jobs, nil }

// Save replaces the snapshot.
func (m *MemStore) Save(jobs []PersistedJob) error {
	m.jobs = append([]PersistedJob(nil), jobs...)
	return nil
}

// FileStore persists snapshots as one indented JSON file, written
// atomically (temp file + rename) so a crash mid-save never corrupts
// the previous snapshot.
type FileStore struct {
	path string
}

// NewFileStore creates a store writing to path. The file need not
// exist yet; its directory must.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// fileSnapshot is the on-disk envelope, versioned so a future format
// change can migrate instead of guessing.
type fileSnapshot struct {
	Version int            `json:"version"`
	Saved   time.Time      `json:"saved"`
	Jobs    []PersistedJob `json:"jobs"`
}

// Load reads the snapshot; a missing file is an empty store, not an
// error.
func (f *FileStore) Load() ([]PersistedJob, error) {
	data, err := os.ReadFile(f.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: load job store: %w", err)
	}
	var snap fileSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("server: job store %s is corrupt: %w", f.path, err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("server: job store %s has unknown version %d", f.path, snap.Version)
	}
	return snap.Jobs, nil
}

// Save atomically replaces the snapshot file.
func (f *FileStore) Save(jobs []PersistedJob) error {
	data, err := json.MarshalIndent(fileSnapshot{Version: 1, Saved: time.Now().UTC(), Jobs: jobs}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encode job store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(f.path), filepath.Base(f.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: save job store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("server: save job store: %w", werr)
		}
		return fmt.Errorf("server: save job store: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: save job store: %w", err)
	}
	return nil
}
