package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// PersistedJob is the durable form of one job: everything needed to
// answer status and report queries after a restart. The report is kept
// as raw JSON (the exact object the report endpoint serves inside its
// one-element array), so persistence cannot drift from the wire format.
type PersistedJob struct {
	ID         string          `json:"id"`
	Spec       SubmitRequest   `json:"spec"`
	State      State           `json:"state"`
	Error      string          `json:"error,omitempty"`
	Created    time.Time       `json:"created"`
	Started    time.Time       `json:"started,omitempty"`
	Finished   time.Time       `json:"finished,omitempty"`
	TrialsDone int             `json:"trials_done"`
	RequestID  string          `json:"request_id,omitempty"`
	Report     json.RawMessage `json:"report,omitempty"`
}

// Store persists the job table. Load seeds the table on startup so a
// restarted server still answers for finished jobs; Save writes a full
// snapshot (shutdown, and the fallback for every state change when the
// store is not a JobStore).
//
// Implementations must be safe for concurrent use by one manager
// (Save/SaveJob/DeleteJob calls are serialized by the manager, Load
// happens once).
type Store interface {
	Load() ([]PersistedJob, error)
	Save([]PersistedJob) error
}

// JobStore is an optional Store extension for incremental persistence:
// a manager whose store implements it saves only the changed job on
// each state change (and deletes evicted ones) instead of rewriting
// the whole table — O(1) per transition instead of O(jobs × report
// size).
type JobStore interface {
	SaveJob(PersistedJob) error
	DeleteJob(id string) error
}

// MemStore is a Store that remembers the last snapshot in memory — the
// default when no state file is configured, and the restart-simulation
// vehicle for tests.
type MemStore struct {
	jobs []PersistedJob
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Load returns the last saved snapshot.
func (m *MemStore) Load() ([]PersistedJob, error) { return m.jobs, nil }

// Save replaces the snapshot.
func (m *MemStore) Save(jobs []PersistedJob) error {
	m.jobs = append([]PersistedJob(nil), jobs...)
	return nil
}

// compactThreshold is how many journal records a FileStore accumulates
// before folding them into a fresh snapshot and truncating the journal.
const compactThreshold = 256

// FileStore persists the job table as a JSON snapshot plus an append
// journal ("<path>.journal", one JSON record per line). State changes
// append one record — O(1), instead of the former whole-table rewrite
// on every transition — and the journal folds into a fresh atomically
// renamed snapshot every compactThreshold records (and on every full
// Save, e.g. shutdown). Load replays the journal over the snapshot and
// tolerates a torn final line, so a crash mid-append loses at most the
// interrupted record, never the store.
type FileStore struct {
	path string

	mu      sync.Mutex
	journal *os.File       // open append handle, lazily created
	jobs    []PersistedJob // current table, snapshot ⊕ journal
	idx     map[string]int // job ID → index in jobs
	pending int            // journal records since the last snapshot
}

// NewFileStore creates a store writing to path. The file need not
// exist yet; its directory must.
func NewFileStore(path string) *FileStore {
	return &FileStore{path: path, idx: make(map[string]int)}
}

// journalPath is the sidecar append log.
func (f *FileStore) journalPath() string { return f.path + ".journal" }

// fileSnapshot is the on-disk envelope, versioned so a future format
// change can migrate instead of guessing.
type fileSnapshot struct {
	Version int            `json:"version"`
	Saved   time.Time      `json:"saved"`
	Jobs    []PersistedJob `json:"jobs"`
}

// journalEntry is one journal line: an upsert or a deletion.
type journalEntry struct {
	Put    *PersistedJob `json:"put,omitempty"`
	Delete string        `json:"delete,omitempty"`
}

// Load reads the snapshot, replays the journal over it, and seeds the
// store's in-memory mirror. A missing file is an empty store, not an
// error; a torn trailing journal line (crash mid-append) ends the
// replay silently.
func (f *FileStore) Load() ([]PersistedJob, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.jobs, f.idx, f.pending = nil, make(map[string]int), 0

	data, err := os.ReadFile(f.path)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return nil, fmt.Errorf("server: load job store: %w", err)
	default:
		var snap fileSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("server: job store %s is corrupt: %w", f.path, err)
		}
		if snap.Version != 1 {
			return nil, fmt.Errorf("server: job store %s has unknown version %d", f.path, snap.Version)
		}
		for _, j := range snap.Jobs {
			f.upsertLocked(j)
		}
	}

	jf, err := os.Open(f.journalPath())
	if err == nil {
		sc := bufio.NewScanner(jf)
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var e journalEntry
			if json.Unmarshal(line, &e) != nil {
				break // torn final record from a crash mid-append
			}
			switch {
			case e.Put != nil:
				f.upsertLocked(*e.Put)
			case e.Delete != "":
				f.deleteLocked(e.Delete)
			}
			f.pending++
		}
		jf.Close()
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("server: load job journal: %w", err)
	}
	return append([]PersistedJob(nil), f.jobs...), nil
}

// upsertLocked replaces or appends one job in the mirror, preserving
// first-seen order. Callers hold f.mu.
func (f *FileStore) upsertLocked(j PersistedJob) {
	if i, ok := f.idx[j.ID]; ok {
		f.jobs[i] = j
		return
	}
	f.idx[j.ID] = len(f.jobs)
	f.jobs = append(f.jobs, j)
}

// deleteLocked removes one job from the mirror. Callers hold f.mu.
func (f *FileStore) deleteLocked(id string) {
	i, ok := f.idx[id]
	if !ok {
		return
	}
	f.jobs = append(f.jobs[:i], f.jobs[i+1:]...)
	delete(f.idx, id)
	for k := i; k < len(f.jobs); k++ {
		f.idx[f.jobs[k].ID] = k
	}
}

// SaveJob appends one upsert to the journal, compacting into a fresh
// snapshot once enough records accumulate.
func (f *FileStore) SaveJob(j PersistedJob) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.upsertLocked(j)
	return f.appendLocked(journalEntry{Put: &j})
}

// DeleteJob appends one deletion to the journal.
func (f *FileStore) DeleteJob(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deleteLocked(id)
	return f.appendLocked(journalEntry{Delete: id})
}

// appendLocked writes one journal record and compacts past the
// threshold. Callers hold f.mu.
func (f *FileStore) appendLocked(e journalEntry) error {
	if f.journal == nil {
		jf, err := os.OpenFile(f.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("server: open job journal: %w", err)
		}
		f.journal = jf
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("server: encode job journal record: %w", err)
	}
	if _, err := f.journal.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("server: append job journal: %w", err)
	}
	f.pending++
	if f.pending >= compactThreshold {
		return f.compactLocked()
	}
	return nil
}

// Save atomically replaces the snapshot file with the given table and
// truncates the journal (the snapshot supersedes it).
func (f *FileStore) Save(jobs []PersistedJob) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.jobs, f.idx = nil, make(map[string]int)
	for _, j := range jobs {
		f.upsertLocked(j)
	}
	return f.compactLocked()
}

// compactLocked writes the mirror as an atomic snapshot, then resets
// the journal. Snapshot-then-truncate order keeps a crash between the
// two harmless: replaying the stale journal over the new snapshot is a
// sequence of idempotent upserts/deletes. Callers hold f.mu.
func (f *FileStore) compactLocked() error {
	if err := f.writeSnapshotLocked(); err != nil {
		return err
	}
	if f.journal != nil {
		f.journal.Close()
		f.journal = nil
	}
	if err := os.Remove(f.journalPath()); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("server: truncate job journal: %w", err)
	}
	f.pending = 0
	return nil
}

// writeSnapshotLocked atomically replaces the snapshot file (temp file
// + rename) so a crash mid-save never corrupts the previous snapshot.
// Callers hold f.mu.
func (f *FileStore) writeSnapshotLocked() error {
	data, err := json.MarshalIndent(fileSnapshot{Version: 1, Saved: time.Now().UTC(), Jobs: f.jobs}, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encode job store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(f.path), filepath.Base(f.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("server: save job store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("server: save job store: %w", werr)
		}
		return fmt.Errorf("server: save job store: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: save job store: %w", err)
	}
	return nil
}
