package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func storedJob(id string, state State, trials int) PersistedJob {
	return PersistedJob{
		ID:         id,
		Spec:       SubmitRequest{Benchmark: "b1"},
		State:      state,
		Created:    time.Unix(1700000000, 0).UTC(),
		TrialsDone: trials,
	}
}

// TestFileStoreJournalRoundTrip: per-job puts and deletes survive a
// reload without any full snapshot ever being written.
func TestFileStoreJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	f := NewFileStore(path)
	if err := f.SaveJob(storedJob("a", StateQueued, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveJob(storedJob("b", StateQueued, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveJob(storedJob("a", StateDone, 7)); err != nil {
		t.Fatal(err)
	}
	if err := f.DeleteJob("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot written before any compaction: %v", err)
	}

	jobs, err := NewFileStore(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "a" || jobs[0].State != StateDone || jobs[0].TrialsDone != 7 {
		t.Fatalf("reloaded table: %+v", jobs)
	}
}

// TestFileStoreCompaction: once compactThreshold records accumulate,
// the journal folds into an atomic snapshot and resets; nothing is
// lost across the fold or a subsequent reload.
func TestFileStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	f := NewFileStore(path)
	total := compactThreshold + 10
	for i := 0; i < total; i++ {
		if err := f.SaveJob(storedJob(fmt.Sprintf("j%03d", i%8), StateDone, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot after crossing the threshold: %v", err)
	}
	data, err := os.ReadFile(path + ".journal")
	if err != nil {
		t.Fatalf("journal after compaction: %v", err)
	}
	if lines := bytes.Count(data, []byte{'\n'}); lines >= compactThreshold {
		t.Fatalf("journal kept %d records after compaction", lines)
	}

	jobs, err := NewFileStore(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("reloaded %d jobs, want 8", len(jobs))
	}
	for _, j := range jobs {
		if j.State != StateDone {
			t.Fatalf("job %s state %s", j.ID, j.State)
		}
	}
}

// TestFileStoreTornJournalLine: a crash mid-append leaves a torn final
// record; Load keeps everything before it instead of failing.
func TestFileStoreTornJournalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	f := NewFileStore(path)
	if err := f.SaveJob(storedJob("a", StateDone, 3)); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveJob(storedJob("b", StateCancelled, 1)); err != nil {
		t.Fatal(err)
	}
	jf, err := os.OpenFile(path+".journal", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString(`{"put":{"id":"c","sp`); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	jobs, err := NewFileStore(path).Load()
	if err != nil {
		t.Fatalf("torn journal line failed the load: %v", err)
	}
	if len(jobs) != 2 || jobs[0].ID != "a" || jobs[1].ID != "b" {
		t.Fatalf("reloaded table: %+v", jobs)
	}
}

// TestFileStoreFullSaveSupersedesJournal: a full Save (shutdown path)
// compacts to a snapshot and drops the journal.
func TestFileStoreFullSaveSupersedesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	f := NewFileStore(path)
	if err := f.SaveJob(storedJob("a", StateQueued, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveJob(storedJob("b", StateQueued, 0)); err != nil {
		t.Fatal(err)
	}
	if err := f.Save([]PersistedJob{storedJob("a", StateDone, 9)}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".journal"); !os.IsNotExist(err) {
		t.Fatalf("journal survived a full save: %v", err)
	}
	jobs, err := NewFileStore(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "a" || jobs[0].TrialsDone != 9 {
		t.Fatalf("reloaded table: %+v", jobs)
	}
}

// TestFileStoreSnapshotPlusJournalReplay: journal records layered over
// an existing snapshot win on reload (put upserts, delete removes).
func TestFileStoreSnapshotPlusJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	f := NewFileStore(path)
	if err := f.Save([]PersistedJob{
		storedJob("a", StateDone, 1),
		storedJob("b", StateDone, 2),
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.SaveJob(storedJob("a", StateCancelled, 5)); err != nil {
		t.Fatal(err)
	}
	if err := f.DeleteJob("b"); err != nil {
		t.Fatal(err)
	}
	jobs, err := NewFileStore(path).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != "a" || jobs[0].State != StateCancelled || jobs[0].TrialsDone != 5 {
		t.Fatalf("reloaded table: %+v", jobs)
	}
}

// benchTable builds a job table shaped like a busy server: size
// finished jobs, each carrying a report of reportBytes raw JSON.
func benchTable(size, reportBytes int) []PersistedJob {
	report := json.RawMessage(`{"pad":"` + strings.Repeat("x", reportBytes) + `"}`)
	out := make([]PersistedJob, size)
	for i := range out {
		out[i] = storedJob(fmt.Sprintf("j%04d", i), StateDone, 40)
		out[i].Report = report
	}
	return out
}

// BenchmarkFileStorePerJobSave measures what one job state change now
// costs: a single journal append (amortizing periodic compaction).
func BenchmarkFileStorePerJobSave(b *testing.B) {
	path := filepath.Join(b.TempDir(), "jobs.json")
	f := NewFileStore(path)
	table := benchTable(256, 4096)
	if err := f.Save(table); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.SaveJob(table[i%len(table)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStoreFullSnapshot measures the former behavior: rewrite
// the whole table on every state change.
func BenchmarkFileStoreFullSnapshot(b *testing.B) {
	path := filepath.Join(b.TempDir(), "jobs.json")
	f := NewFileStore(path)
	table := benchTable(256, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Save(table); err != nil {
			b.Fatal(err)
		}
	}
}
