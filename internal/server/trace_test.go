package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"etap/internal/exp"
	"etap/internal/obs"
	"etap/internal/obs/trace"
)

// tracedServer builds a Server over a stub RunFunc that opens a
// point+shard span pair (the shape the real campaign engine produces)
// so trace-tree assertions don't need real simulations.
func tracedServer(t *testing.T, tracer *trace.Tracer) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Run: func(ctx context.Context, req *SubmitRequest, progress func(TrialEvent)) (*exp.Report, error) {
			ctx, point := trace.Start(ctx, "campaign.point")
			_, shard := trace.Start(ctx, "campaign.shard")
			shard.Event("trial", trace.String("outcome", "completed"))
			progress(TrialEvent{Trial: 0, Outcome: "completed"})
			shard.End()
			point.End()
			return &exp.Report{ID: "stub"}, nil
		},
		Workers:    1,
		QueueDepth: 4,
		Metrics:    obs.NewRegistry(),
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s does not parse: %v: %s", url, err, data)
		}
	}
	return resp.StatusCode
}

// TestSubmittedJobTraceRetrievable is the tentpole's acceptance path:
// a submitted job yields a trace retrievable from GET /traces/{id}
// whose tree runs HTTP request → job → run → point → shard, with the
// shard span carrying a sampled trial event.
func TestSubmittedJobTraceRetrievable(t *testing.T) {
	tracer := trace.New(trace.Config{Registry: obs.NewRegistry()})
	_, hs := tracedServer(t, tracer)

	resp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"b1"}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var ack Snapshot
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.TraceID == "" {
		t.Fatalf("submit snapshot carries no trace_id: %s", data)
	}
	if ack.RequestID == "" || ack.RequestID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("snapshot request_id %q vs header %q", ack.RequestID, resp.Header.Get("X-Request-Id"))
	}

	// The trace completes only after every span ends — poll briefly.
	var td trace.TraceData
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, hs.URL+"/traces/"+ack.TraceID, &td); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed", ack.TraceID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if td.Depth < 3 {
		t.Fatalf("trace depth %d, want >= 3", td.Depth)
	}
	names := map[string]bool{}
	var shard *trace.SpanData
	for i := range td.Spans {
		names[td.Spans[i].Name] = true
		if td.Spans[i].Name == "campaign.shard" {
			shard = &td.Spans[i]
		}
	}
	for _, want := range []string{"http submit", "job", "job.queued", "job.run", "campaign.point", "campaign.shard"} {
		if !names[want] {
			t.Fatalf("trace lacks span %q (have %v)", want, names)
		}
	}
	if shard == nil || len(shard.Events) == 0 {
		t.Fatalf("shard span carries no trial events: %+v", shard)
	}

	// The listing surfaces the same trace, newest first.
	var list []trace.Summary
	if code := getJSON(t, hs.URL+"/traces", &list); code != http.StatusOK {
		t.Fatalf("GET /traces: %d", code)
	}
	found := false
	for _, s := range list {
		found = found || s.TraceID == ack.TraceID
	}
	if !found {
		t.Fatalf("trace %s missing from /traces listing", ack.TraceID)
	}
}

// TestTraceparentJoinsRemoteTrace: a submission carrying a W3C
// traceparent joins the caller's trace — the job's trace_id is the
// remote one, and the response echoes a traceparent under the same
// trace with a fresh span ID.
func TestTraceparentJoinsRemoteTrace(t *testing.T) {
	tracer := trace.New(trace.Config{Registry: obs.NewRegistry()})
	_, hs := tracedServer(t, tracer)

	const remoteTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parent = "00-" + remoteTrace + "-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/api/v1/jobs",
		strings.NewReader(`{"benchmark":"b1"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(trace.Header, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}

	echo := resp.Header.Get(trace.Header)
	sc, err := trace.ParseTraceparent(echo)
	if err != nil {
		t.Fatalf("response traceparent %q does not parse: %v", echo, err)
	}
	if sc.TraceID.String() != remoteTrace {
		t.Fatalf("response joined trace %s, want %s", sc.TraceID, remoteTrace)
	}
	if sc.SpanID.String() == "00f067aa0ba902b7" {
		t.Fatal("response reused the caller's span ID instead of minting its own")
	}
	var ack Snapshot
	if err := json.Unmarshal(data, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.TraceID != remoteTrace {
		t.Fatalf("job trace_id %s, want the remote %s", ack.TraceID, remoteTrace)
	}
}

// TestRequestIDInSSEPayloads: the submitting request's X-Request-Id
// (and the trace ID) ride every SSE state and trial payload, so a
// streaming client can join its events to server logs and traces.
func TestRequestIDInSSEPayloads(t *testing.T) {
	tracer := trace.New(trace.Config{Registry: obs.NewRegistry()})
	m, hs := tracedServer(t, tracer)

	resp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"b1"}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	rid := resp.Header.Get("X-Request-Id")
	var ack Snapshot
	if err := json.Unmarshal(data, &ack); err != nil || rid == "" {
		t.Fatalf("submit ack: %v %q: %s", err, rid, data)
	}

	j, ok := m.Manager().Get(ack.ID)
	if !ok {
		t.Fatal("submitted job not found")
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.snapshot().State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", j.snapshot().State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	replay, _, unsub := j.Subscribe()
	defer unsub()
	if len(replay) == 0 {
		t.Fatal("no replayable events")
	}
	sawTrial := false
	for _, ev := range replay {
		var payload struct {
			RequestID string `json:"request_id"`
			TraceID   string `json:"trace_id"`
		}
		if err := json.Unmarshal(ev.Data, &payload); err != nil {
			t.Fatalf("event %d payload: %v: %s", ev.Seq, err, ev.Data)
		}
		if payload.RequestID != rid {
			t.Fatalf("%s event %d request_id %q, want %q: %s", ev.Name, ev.Seq, payload.RequestID, rid, ev.Data)
		}
		if payload.TraceID != ack.TraceID {
			t.Fatalf("%s event %d trace_id %q, want %q", ev.Name, ev.Seq, payload.TraceID, ack.TraceID)
		}
		sawTrial = sawTrial || ev.Name == "trial"
	}
	if !sawTrial {
		t.Fatal("replay held no trial events")
	}
}

// TestProgrammaticSubmitTraced: jobs submitted without an HTTP request
// still get a complete job trace (job → queued/run → point → shard)
// rooted at the configured tracer.
func TestProgrammaticSubmitTraced(t *testing.T) {
	tracer := trace.New(trace.Config{Registry: obs.NewRegistry()})
	m, _ := tracedServer(t, tracer)

	j, err := m.Manager().Submit(context.Background(), &SubmitRequest{Benchmark: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	if j.traceID == "" {
		t.Fatal("programmatic job has no trace")
	}
	waitState(t, j, StateDone)
	var td *trace.TraceData
	deadline := time.Now().Add(10 * time.Second)
	for td = tracer.Get(j.traceID); td == nil; td = tracer.Get(j.traceID) {
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed", j.traceID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if td.Depth < 3 {
		t.Fatalf("trace depth %d, want >= 3 (spans %d)", td.Depth, len(td.Spans))
	}
}

// TestTracesEndpointsWithoutTracer: a server without a tracer answers
// the trace endpoints with a structured 404 instead of panicking.
func TestTracesEndpointsWithoutTracer(t *testing.T) {
	_, hs := tracedServer(t, nil)
	for _, url := range []string{hs.URL + "/traces", hs.URL + "/traces/deadbeef"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(data), "tracing_disabled") {
			t.Fatalf("%s: %d: %s", url, resp.StatusCode, data)
		}
	}
}

// TestServerOTLPExport: traces the server completes reach a collector
// over OTLP/HTTP JSON — the httptest sink sees the job span tree after
// the tracer flushes.
func TestServerOTLPExport(t *testing.T) {
	got := make(chan []byte, 8)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got <- body
		w.WriteHeader(http.StatusOK)
	}))
	defer sink.Close()

	tracer := trace.New(trace.Config{OTLPURL: sink.URL, Registry: obs.NewRegistry()})
	m, _ := tracedServer(t, tracer)
	j, err := m.Manager().Submit(context.Background(), &SubmitRequest{Benchmark: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	// The trace enqueues for export only once every span ends; wait for
	// completion before flushing.
	deadline := time.Now().Add(10 * time.Second)
	for tracer.Get(j.traceID) == nil {
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed", j.traceID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	tracer.Close() // flush the export queue

	select {
	case body := <-got:
		for _, want := range []string{`"job"`, `"job.run"`, `"campaign.shard"`, j.traceID} {
			if !strings.Contains(string(body), want) {
				t.Fatalf("OTLP payload lacks %s:\n%s", want, body)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no OTLP payload arrived")
	}
}
