// The predecoded execution engine: the dispatch half of predecode.go.
// runEngine retires dinstr slots instead of raw isa.Instr, so the per-step
// cost drops to one bounds check, one budget check, and one switch on a
// dense byte — class resolution, destination extraction and eligibility
// all happened at compile time. The loop carries no tracing, recorder, or
// plan triple-check; instrumented runs use the reference interpreter
// (machine.run) instead, and the two are pinned bit-identical by
// engine_test.go, engine_diff_test.go and FuzzEngineEquivalence.
//
// Invariants a machine entering runEngine must satisfy: m.rec == nil and
// cfg.Trace == nil and cfg.SiteVisit == nil (instrumented paths are
// reference-only), and a flat
// (non-paged) machine has a dirty bitmap (it came from newScratch).
package sim

import (
	"encoding/binary"

	"etap/internal/isa"
)

//etap:hotpath
func (m *machine) runEngine(code []dinstr) {
	r := &m.regs
	max := m.cfg.MaxInstr
	// The retirement counters live in locals for the whole run — they are
	// incremented every step, and keeping them out of the machine struct
	// saves the load/store traffic. The deferred flush runs on every exit
	// path before the caller reads them back out of the machine.
	instret := m.instret
	eligCount := m.eligCount
	injected := m.injected
	injections := m.injections
	// cc is oversized to 8 so the cc[cls&7] increment needs no bounds
	// check; only the first 6 slots (the real classes) are flushed back.
	var cc [8]uint64
	copy(cc[:], m.classCounts[:])
	defer func() {
		m.instret = instret
		m.eligCount = eligCount
		m.injected = injected
		copy(m.classCounts[:], cc[:len(m.classCounts)])
	}()
	// nextAt is the eligible-stream ordinal of the next scheduled flip
	// (MaxUint64 when none remain), so the per-eligible-step check is one
	// register compare instead of a slice load.
	nextAt := uint64(1<<64 - 1)
	if injected < len(injections) {
		nextAt = injections[injected].At
	}
	// pc stays in a local for the whole run; m.pc is written back only on
	// the exit paths and before operations that can fault or observe it
	// (trap attribution reads m.pc). Every path that ends the run (fault,
	// exit syscall, trapdet, budget) returns directly, so the loop itself
	// needs no m.done check.
	pc := m.pc
	for {
		if uint(pc) >= uint(len(code)) {
			m.faultAt(TrapBadPC, pc, uint32(pc))
			return
		}
		if instret >= max {
			m.pc = pc
			m.outcome = Timeout
			return
		}
		d := &code[pc]
		instret++
		cc[d.cls&7]++
		next := pc + 1

		switch d.kind {
		case uint8(isa.NOP):
		case uint8(isa.ADD):
			r[d.rd] = uint32(int32(r[d.rs]) + int32(r[d.rt]))
		case uint8(isa.SUB):
			r[d.rd] = uint32(int32(r[d.rs]) - int32(r[d.rt]))
		case uint8(isa.MUL):
			r[d.rd] = uint32(int32(r[d.rs]) * int32(r[d.rt]))
		case uint8(isa.DIV):
			if r[d.rt] == 0 {
				m.faultAt(TrapDivZero, pc, 0)
				return
			}
			r[d.rd] = uint32(sdiv(int32(r[d.rs]), int32(r[d.rt])))
		case uint8(isa.REM):
			if r[d.rt] == 0 {
				m.faultAt(TrapDivZero, pc, 0)
				return
			}
			r[d.rd] = uint32(srem(int32(r[d.rs]), int32(r[d.rt])))
		case uint8(isa.AND):
			r[d.rd] = r[d.rs] & r[d.rt]
		case uint8(isa.OR):
			r[d.rd] = r[d.rs] | r[d.rt]
		case uint8(isa.XOR):
			r[d.rd] = r[d.rs] ^ r[d.rt]
		case uint8(isa.NOR):
			r[d.rd] = ^(r[d.rs] | r[d.rt])
		case uint8(isa.SLLV):
			r[d.rd] = r[d.rs] << (r[d.rt] & 31)
		case uint8(isa.SRLV):
			r[d.rd] = r[d.rs] >> (r[d.rt] & 31)
		case uint8(isa.SRAV):
			r[d.rd] = uint32(int32(r[d.rs]) >> (r[d.rt] & 31))
		case uint8(isa.SLT):
			r[d.rd] = b2u(int32(r[d.rs]) < int32(r[d.rt]))
		case uint8(isa.SLTU):
			r[d.rd] = b2u(r[d.rs] < r[d.rt])

		case uint8(isa.ADDI):
			r[d.rd] = uint32(int32(r[d.rs]) + d.imm)
		case uint8(isa.ANDI):
			r[d.rd] = r[d.rs] & uint32(d.imm)
		case uint8(isa.ORI):
			r[d.rd] = r[d.rs] | uint32(d.imm)
		case uint8(isa.XORI):
			r[d.rd] = r[d.rs] ^ uint32(d.imm)
		case uint8(isa.SLL):
			r[d.rd] = r[d.rs] << (uint32(d.imm) & 31)
		case uint8(isa.SRL):
			r[d.rd] = r[d.rs] >> (uint32(d.imm) & 31)
		case uint8(isa.SRA):
			r[d.rd] = uint32(int32(r[d.rs]) >> (uint32(d.imm) & 31))
		case uint8(isa.SLTI):
			r[d.rd] = b2u(int32(r[d.rs]) < d.imm)
		case uint8(isa.LUI):
			r[d.rd] = uint32(d.imm) << 16

		case uint8(isa.ADDF):
			r[d.rd] = bits(f32(r[d.rs]) + f32(r[d.rt]))
		case uint8(isa.SUBF):
			r[d.rd] = bits(f32(r[d.rs]) - f32(r[d.rt]))
		case uint8(isa.MULF):
			r[d.rd] = bits(f32(r[d.rs]) * f32(r[d.rt]))
		case uint8(isa.DIVF):
			r[d.rd] = bits(f32(r[d.rs]) / f32(r[d.rt]))
		case uint8(isa.CVTIF):
			r[d.rd] = bits(float32(int32(r[d.rs])))
		case uint8(isa.CVTFI):
			r[d.rd] = uint32(f2i(f32(r[d.rs])))
		case uint8(isa.CEQF):
			r[d.rd] = b2u(f32(r[d.rs]) == f32(r[d.rt]))
		case uint8(isa.CLTF):
			r[d.rd] = b2u(f32(r[d.rs]) < f32(r[d.rt]))
		case uint8(isa.CLEF):
			r[d.rd] = b2u(f32(r[d.rs]) <= f32(r[d.rt]))

		case uint8(isa.LW):
			v, ok := m.load32(uint32(int32(r[d.rs])+d.imm), pc)
			if !ok {
				return
			}
			r[d.rd] = v
		case uint8(isa.LH):
			v, ok := m.load16(uint32(int32(r[d.rs])+d.imm), pc)
			if !ok {
				return
			}
			r[d.rd] = uint32(int32(int16(v)))
		case uint8(isa.LHU):
			v, ok := m.load16(uint32(int32(r[d.rs])+d.imm), pc)
			if !ok {
				return
			}
			r[d.rd] = v
		case uint8(isa.LB):
			v, ok := m.load8(uint32(int32(r[d.rs])+d.imm), pc)
			if !ok {
				return
			}
			r[d.rd] = uint32(int32(int8(v)))
		case uint8(isa.LBU):
			v, ok := m.load8(uint32(int32(r[d.rs])+d.imm), pc)
			if !ok {
				return
			}
			r[d.rd] = v
		case uint8(isa.SW):
			if !m.store32(uint32(int32(r[d.rs])+d.imm), r[d.rt], pc) {
				return
			}
		case uint8(isa.SH):
			if !m.store16(uint32(int32(r[d.rs])+d.imm), r[d.rt], pc) {
				return
			}
		case uint8(isa.SB):
			if !m.store8(uint32(int32(r[d.rs])+d.imm), r[d.rt], pc) {
				return
			}

		case uint8(isa.BEQ):
			if r[d.rs] == r[d.rt] {
				next = int(d.imm)
			}
		case uint8(isa.BNE):
			if r[d.rs] != r[d.rt] {
				next = int(d.imm)
			}
		case uint8(isa.BLEZ):
			if int32(r[d.rs]) <= 0 {
				next = int(d.imm)
			}
		case uint8(isa.BGTZ):
			if int32(r[d.rs]) > 0 {
				next = int(d.imm)
			}
		case uint8(isa.BLTZ):
			if int32(r[d.rs]) < 0 {
				next = int(d.imm)
			}
		case uint8(isa.BGEZ):
			if int32(r[d.rs]) >= 0 {
				next = int(d.imm)
			}
		case uint8(isa.J):
			next = int(d.imm)
		case uint8(isa.JAL):
			r[d.rd] = isa.TextBase + uint32(pc+1)
			next = int(d.imm)
		case uint8(isa.JR):
			next = codeIdx(r[d.rs])
		case uint8(isa.JALR):
			// Link writes before the target read, as in the reference, so
			// jalr rd,rs with rd == rs jumps to the link address.
			r[d.rd] = isa.TextBase + uint32(pc+1)
			next = codeIdx(r[d.rs])

		case uint8(isa.SYSCALL):
			m.pc = pc
			if !m.syscall() {
				return
			}

		case uint8(isa.TRAPDET):
			m.pc = pc
			m.outcome = Detected
			m.done = true
			return

		// Fused superinstructions. Each retires two reference steps: the
		// A half executes, then the budget gate re-runs exactly where the
		// reference would have stopped between the two, then the B half
		// executes and the shared post-retire check below applies B's
		// eligibility and injection destination (A's slot is never
		// eligible — compile() refuses to fuse it otherwise). Fused memory
		// halves point m.pc at B's slot first so traps attribute to it.
		case kLuiOri:
			v := uint32(d.imm) << 16
			r[d.rd] = v
			if instret >= max {
				m.pc = pc + 1
				m.outcome = Timeout
				return
			}
			instret++
			cc[isa.ClassArith]++
			r[d.rd2] = v | uint32(d.imm2)
			next = pc + 2
		case kAddiLw:
			a := uint32(int32(r[d.rs]) + d.imm)
			r[d.rd] = a
			if instret >= max {
				m.pc = pc + 1
				m.outcome = Timeout
				return
			}
			instret++
			cc[isa.ClassLoad]++
			v, ok := m.load32(uint32(int32(a)+d.imm2), pc+1)
			if !ok {
				return
			}
			r[d.rd2] = v
			next = pc + 2
		case kAddiSw:
			a := uint32(int32(r[d.rs]) + d.imm)
			r[d.rd] = a
			if instret >= max {
				m.pc = pc + 1
				m.outcome = Timeout
				return
			}
			instret++
			cc[isa.ClassStore]++
			if !m.store32(uint32(int32(a)+d.imm2), r[d.rt], pc+1) {
				return
			}
			next = pc + 2
		case kSltBeq, kSltBne, kSltuBeq, kSltuBne:
			var c uint32
			if d.kind == kSltBeq || d.kind == kSltBne {
				c = b2u(int32(r[d.rs]) < int32(r[d.rt]))
			} else {
				c = b2u(r[d.rs] < r[d.rt])
			}
			r[d.rd] = c
			if instret >= max {
				m.pc = pc + 1
				m.outcome = Timeout
				return
			}
			instret++
			cc[isa.ClassControl]++
			taken := c == 0
			if d.kind == kSltBne || d.kind == kSltuBne {
				taken = !taken
			}
			if taken {
				next = int(d.imm2)
			} else {
				next = pc + 2
			}
		}

		// Post-retire fault accounting, mirroring the reference loop's
		// mask check with the eligibility bit folded into the slot.
		if d.elig {
			eligCount++
			if eligCount == nextAt {
				bit := injections[injected].Bit & 31
				if d.dst != noDest {
					r[d.dst] ^= 1 << bit
				}
				if injected == 0 {
					m.firstInjInstret = instret
				}
				injected++
				nextAt = 1<<64 - 1
				if injected < len(injections) {
					nextAt = injections[injected].At
				}
			}
		}

		pc = next
	}
}

// Per-size memory helpers: the engine's counterparts of machine.load and
// machine.store with the size switch resolved at compile time and the
// fast-region paths inlined for both flat and paged machines. An aligned
// access inside the fast region never straddles a page (paged MemSize is
// page-aligned), so the paged fast path is a single table lookup: pageTab
// for loads, wrTab for stores (hit only once the page is private).
// Everything else — sparse addresses, copy-on-write faults, page-limit
// accounting — shares the reference implementations so those semantics
// cannot drift.

//etap:hotpath
func (m *machine) load32(addr uint32, pc int) (uint32, bool) {
	if addr&3 != 0 {
		m.faultAt(TrapMemAlign, pc, addr)
		return 0, false
	}
	if addr+4 <= m.memSize && addr+4 > addr {
		if !m.paged {
			return binary.LittleEndian.Uint32(m.mem[addr:]), true
		}
		pg := m.pageTab[addr>>pageShift]
		if pg == nil {
			return 0, true
		}
		return binary.LittleEndian.Uint32(pg[addr&(pageSize-1):]), true
	}
	m.pc = pc
	return m.load(addr, 4)
}

//etap:hotpath
func (m *machine) load16(addr uint32, pc int) (uint32, bool) {
	if addr&1 != 0 {
		m.faultAt(TrapMemAlign, pc, addr)
		return 0, false
	}
	if addr+2 <= m.memSize && addr+2 > addr {
		if !m.paged {
			return uint32(binary.LittleEndian.Uint16(m.mem[addr:])), true
		}
		pg := m.pageTab[addr>>pageShift]
		if pg == nil {
			return 0, true
		}
		return uint32(binary.LittleEndian.Uint16(pg[addr&(pageSize-1):])), true
	}
	m.pc = pc
	return m.load(addr, 2)
}

//etap:hotpath
func (m *machine) load8(addr uint32, pc int) (uint32, bool) {
	if addr < m.memSize {
		if !m.paged {
			return uint32(m.mem[addr]), true
		}
		pg := m.pageTab[addr>>pageShift]
		if pg == nil {
			return 0, true
		}
		return uint32(pg[addr&(pageSize-1)]), true
	}
	m.pc = pc
	return m.load(addr, 1)
}

//etap:hotpath
func (m *machine) store32(addr, val uint32, pc int) bool {
	if addr&3 != 0 {
		m.faultAt(TrapMemAlign, pc, addr)
		return false
	}
	if addr+4 <= m.memSize && addr+4 > addr {
		pn := addr >> pageShift
		if !m.paged {
			m.dirty[pn>>6] |= 1 << (pn & 63)
			binary.LittleEndian.PutUint32(m.mem[addr:], val)
			return true
		}
		if pg := m.wrTab[pn]; pg != nil {
			binary.LittleEndian.PutUint32(pg[addr&(pageSize-1):], val)
			return true
		}
	}
	m.pc = pc
	return m.store(addr, 4, val)
}

//etap:hotpath
func (m *machine) store16(addr, val uint32, pc int) bool {
	if addr&1 != 0 {
		m.faultAt(TrapMemAlign, pc, addr)
		return false
	}
	if addr+2 <= m.memSize && addr+2 > addr {
		pn := addr >> pageShift
		if !m.paged {
			m.dirty[pn>>6] |= 1 << (pn & 63)
			binary.LittleEndian.PutUint16(m.mem[addr:], uint16(val))
			return true
		}
		if pg := m.wrTab[pn]; pg != nil {
			binary.LittleEndian.PutUint16(pg[addr&(pageSize-1):], uint16(val))
			return true
		}
	}
	m.pc = pc
	return m.store(addr, 2, val)
}

//etap:hotpath
func (m *machine) store8(addr, val uint32, pc int) bool {
	if addr < m.memSize {
		pn := addr >> pageShift
		if !m.paged {
			m.dirty[pn>>6] |= 1 << (pn & 63)
			m.mem[addr] = byte(val)
			return true
		}
		if pg := m.wrTab[pn]; pg != nil {
			pg[addr&(pageSize-1)] = byte(val)
			return true
		}
	}
	m.pc = pc
	return m.store(addr, 1, val)
}
