package sim

// Differential tests for the predecoded engine: every program here runs on
// both the fast engine (Run) and the reference interpreter (ReferenceRun)
// and the two Results must be bit-identical — outcome, trap, exit code,
// instruction and class counts, eligible-stream position, injection
// bookkeeping and output bytes. The programs are chosen to hit each
// superinstruction pattern, the mid-pair budget and trap edges, jumps that
// land on the second slot of a fused pair, and injections that retire on
// fused slots.

import (
	"reflect"
	"testing"

	"etap/internal/asm"
	"etap/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// diffRun executes p under cfg on both engines and fails unless the
// Results match exactly.
func diffRun(t *testing.T, p *isa.Program, cfg Config) Result {
	t.Helper()
	got := Run(p, cfg)
	want := ReferenceRun(p, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine diverges from reference:\nengine:    %+v\nreference: %+v", got, want)
	}
	return got
}

// Each source ends by exiting with a value derived from the computation so
// a wrong fused result changes the exit code, not just internal state.
var enginePrograms = []struct {
	name string
	src  string
}{
	{"lui+ori constants", exitWith(`
	li $t0, 0x12345678
	li $t1, 0xDEADBEEF
	xor $t2, $t0, $t1
	li $t3, 0xCAFE0001
	xor $v1, $t2, $t3`)},
	{"addi+lw addi+sw", exitWith(`
	li $t0, 0x2000
	li $t1, 0x0BADF00D
	addi $t2, $t0, 8
	sw $t1, 0($t2)
	addi $t3, $t0, 4
	sw $t1, 4($t3)
	addi $t4, $t0, 8
	lw $v1, 0($t4)`)},
	{"slt+bne loop", exitWith(`
	li $t0, 0
	li $t1, 10
	li $v1, 0
loop:
	add $v1, $v1, $t0
	addi $t0, $t0, 1
	slt $t2, $t0, $t1
	bne $t2, $zero, loop`)},
	{"sltu+beq loop", exitWith(`
	li $t0, 10
	li $v1, 0
loop:
	add $v1, $v1, $t0
	addi $t0, $t0, -1
	sltu $t2, $zero, $t0
	beq $t2, $zero, done
	j loop
done:`)},
	{"branch into pair middle", exitWith(`
	li $s0, 0
	lui $t0, 0x1234
mid:
	ori $t1, $t0, 0x5678
	addi $s0, $s0, 1
	li $t3, 3
	bne $s0, $t3, mid
	move $v1, $t1`)},
	{"jal jr around pairs", `
.text
.func __start
	li $a0, 0x00AB0000
	jal helper
	move $a0, $v0
	li $v0, 1
	syscall
.endfunc
.func helper
	li $t0, 0x0000CD00
	or $v0, $a0, $t0
	jr $ra
.endfunc
`},
	{"div by zero", exitWith(`
	li $t0, 5
	li $t1, 0
	div $v1, $t0, $t1`)},
	{"misaligned fused lw", exitWith(`
	li $t0, 0x2001
	addi $t2, $t0, 0
	lw $v1, 0($t2)`)},
	{"misaligned fused sw", exitWith(`
	li $t0, 0x2002
	li $t1, 7
	addi $t2, $t0, 0
	sw $t1, 0($t2)`)},
	{"wild jr", exitWith(`
	li $t0, 0x00700000
	jr $t0`)},
	{"bad syscall", exitWith(`
	li $v0, 99
	syscall`)},
	{"sparse region load store", exitWith(`
	li $t0, 0x00900000
	li $t1, 0x13572468
	addi $t2, $t0, 16
	sw $t1, 0($t2)
	addi $t3, $t0, 16
	lw $v1, 0($t3)`)},
	{"syscall echo", `
.text
.func __start
	li $a0, 0x2000
	li $a1, 8
	li $v0, 5
	syscall
	move $t5, $v0
	li $a0, 0x2000
	move $a1, $t5
	li $v0, 4
	syscall
	move $a0, $t5
	li $v0, 1
	syscall
.endfunc
`},
	{"byte and half memory", exitWith(`
	li $t0, 0x2000
	li $t1, 0x8081
	sh $t1, 0($t0)
	sb $t1, 3($t0)
	lh $t2, 0($t0)
	lb $t3, 3($t0)
	lbu $t4, 3($t0)
	add $t5, $t2, $t3
	add $v1, $t5, $t4`)},
}

// engineMasks builds eligibility masks that exercise the fusion guard from
// both sides: everything eligible (nothing fuses), alternating slots (some
// pairs fuse with an eligible B half), and a sparse every-third pattern.
func engineMasks(n int) map[string][]bool {
	all := make([]bool, n)
	even := make([]bool, n)
	odd := make([]bool, n)
	third := make([]bool, n)
	for i := 0; i < n; i++ {
		all[i] = true
		even[i] = i%2 == 0
		odd[i] = i%2 == 1
		third[i] = i%3 == 2
	}
	return map[string][]bool{
		"none": nil, "all": all, "even": even, "odd": odd, "third": third,
	}
}

func TestEngineMatchesReference(t *testing.T) {
	for _, tc := range enginePrograms {
		t.Run(tc.name, func(t *testing.T) {
			p := mustAssemble(t, tc.src)
			cfg := Config{Input: []byte("hello, engine")}
			diffRun(t, p, cfg)
			for name, mask := range engineMasks(len(p.Text)) {
				cfg := cfg
				if mask != nil {
					cfg.Plan = &FaultPlan{Eligible: mask}
				}
				res := diffRun(t, p, cfg)
				if mask != nil && res.EligibleExec == 0 && res.Instret > 1 {
					// Not fatal — some masks can legitimately miss the
					// dynamic path — but "all" must always count.
					if name == "all" {
						t.Errorf("mask %q counted no eligible executions over %d instructions", name, res.Instret)
					}
				}
			}
		})
	}
}

// TestEngineBudgetEquivalence sweeps the instruction budget across every
// small value so the Timeout edge lands on each slot in turn — including
// between the two halves of a fused pair, where the engine must stop with
// only the first half retired.
func TestEngineBudgetEquivalence(t *testing.T) {
	for _, tc := range enginePrograms {
		p := mustAssemble(t, tc.src)
		full := Run(p, Config{Input: []byte("hello, engine")})
		limit := full.Instret + 2
		if limit > 64 {
			limit = 64
		}
		for max := uint64(1); max <= limit; max++ {
			res := diffRun(t, p, Config{Input: []byte("hello, engine"), MaxInstr: max})
			if max < full.Instret && res.Outcome != Timeout {
				t.Fatalf("%s: budget %d of %d did not time out (%s)", tc.name, max, full.Instret, res.Outcome)
			}
		}
	}
}

// TestEngineInjectionEquivalence sweeps single-bit flips across the whole
// eligible stream of each program under each mask, so injections retire on
// plain slots and on the B halves of fused pairs alike. At values past the
// stream's end check the never-fires path.
func TestEngineInjectionEquivalence(t *testing.T) {
	for _, tc := range enginePrograms {
		t.Run(tc.name, func(t *testing.T) {
			p := mustAssemble(t, tc.src)
			for name, mask := range engineMasks(len(p.Text)) {
				if mask == nil {
					continue
				}
				clean := Run(p, Config{Input: []byte("hello, engine"), Plan: &FaultPlan{Eligible: mask}})
				sweep := clean.EligibleExec + 2
				if sweep > 48 {
					sweep = 48
				}
				for at := uint64(1); at <= sweep; at++ {
					for _, bit := range []uint8{0, 13, 31} {
						plan := &FaultPlan{
							Eligible:   mask,
							Injections: []Injection{{At: at, Bit: bit}},
						}
						// Budget the faulty run: a flipped loop counter can
						// legitimately run away, and both engines must agree
						// on exactly when it times out.
						cfg := Config{
							Input:    []byte("hello, engine"),
							Plan:     plan,
							MaxInstr: clean.Instret*4 + 64,
						}
						res := diffRun(t, p, cfg)
						if at <= clean.EligibleExec && res.Injected == 0 && res.Instret >= clean.Instret {
							t.Fatalf("mask %q at=%d bit=%d: full-length run but injection never fired", name, at, bit)
						}
					}
				}
			}
		})
	}
}

// TestEngineDoubleInjection drives two flips through one run, the second
// scheduled while the machine is already corrupted.
func TestEngineDoubleInjection(t *testing.T) {
	p := mustAssemble(t, enginePrograms[2].src) // slt+bne loop
	mask := make([]bool, len(p.Text))
	for i := range mask {
		mask[i] = true
	}
	clean := Run(p, Config{Plan: &FaultPlan{Eligible: mask}})
	for at1 := uint64(1); at1 < clean.EligibleExec; at1 += 3 {
		for at2 := at1 + 1; at2 <= clean.EligibleExec+1; at2 += 5 {
			plan := &FaultPlan{
				Eligible: mask,
				Injections: []Injection{
					{At: at1, Bit: 3},
					{At: at2, Bit: 30},
				},
			}
			diffRun(t, p, Config{Plan: plan, MaxInstr: clean.Instret*4 + 64})
		}
	}
}
