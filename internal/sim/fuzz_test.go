package sim

// FuzzEngineEquivalence feeds random short instruction sequences and random
// injection plans to the predecoded engine and the reference interpreter
// and requires bit-identical Results. The decoder below maps arbitrary
// bytes onto the full opcode space — traps, wild jumps, runaway loops and
// bad syscalls are all fair game, because the two engines must agree on
// those too, down to the trap detail and the instruction count at which
// the run ended.

import (
	"reflect"
	"testing"

	"etap/internal/isa"
)

// fuzzProgram decodes raw bytes into a program: six bytes per instruction,
// opcode and register fields taken modulo their ranges, branch targets
// folded to mostly-in-range text indices (one past the end stays reachable
// so the BadPC edge is exercised).
func fuzzProgram(raw []byte) *isa.Program {
	const instrBytes = 6
	n := len(raw) / instrBytes
	if n == 0 {
		return nil
	}
	if n > 48 {
		n = 48
	}
	text := make([]isa.Instr, n)
	for i := range text {
		b := raw[i*instrBytes:]
		in := isa.Instr{
			Op:  isa.Op(int(b[0]) % isa.NumOps),
			Rd:  isa.Reg(b[1] & 31),
			Rs:  isa.Reg(b[2] & 31),
			Rt:  isa.Reg(b[3] & 31),
			Imm: int32(int16(uint16(b[4]) | uint16(b[5])<<8)),
		}
		if _, ok := in.BranchTarget(); ok {
			in.Imm = int32(int(b[4]) % (n + 2))
		}
		text[i] = in
	}
	return &isa.Program{Text: text}
}

func FuzzEngineEquivalence(f *testing.F) {
	op := func(o isa.Op, rd, rs, rt byte, imm int16) []byte {
		return []byte{byte(o), rd, rs, rt, byte(uint16(imm)), byte(uint16(imm) >> 8)}
	}
	cat := func(chunks ...[]byte) []byte {
		var out []byte
		for _, c := range chunks {
			out = append(out, c...)
		}
		return out
	}
	// Seeds covering each superinstruction shape plus an exit and a loop.
	f.Add(cat(
		op(isa.LUI, 8, 0, 0, 0x1234),
		op(isa.ORI, 9, 8, 0, 0x5678),
		op(isa.ADDI, 10, 29, 0, -8),
		op(isa.SW, 0, 10, 9, 0),
		op(isa.ADDI, 11, 29, 0, -8),
		op(isa.LW, 12, 11, 0, 0),
		op(isa.SLT, 13, 12, 9, 0),
		op(isa.BNE, 0, 13, 0, 0),
	), []byte("in"), uint64(0), uint16(3), uint8(5), uint16(600))
	f.Add(cat(
		op(isa.ADDI, 2, 0, 0, 1), // $v0 = SysExit
		op(isa.TRAPDET, 0, 0, 0, 0),
		op(isa.SYSCALL, 0, 0, 0, 0),
	), []byte{}, ^uint64(0), uint16(1), uint8(31), uint16(50))
	f.Add(cat(
		op(isa.SLTU, 9, 8, 10, 0),
		op(isa.BEQ, 0, 0, 9, 1), // swapped-operand compare-branch
		op(isa.DIV, 11, 8, 9, 0),
		op(isa.JAL, 0, 0, 0, 0),
	), []byte("xyz"), uint64(0xAAAA), uint16(1), uint8(0), uint16(200))

	f.Fuzz(func(t *testing.T, raw []byte, input []byte, maskSeed uint64, at uint16, bit uint8, budget uint16) {
		p := fuzzProgram(raw)
		if p == nil {
			t.Skip()
		}
		cfg := Config{
			// Small bounds keep a hostile random program cheap: 64 KiB flat
			// region, 8 sparse pages, 4 KiB output, a few thousand steps.
			MemSize:   1 << 16,
			MaxPages:  8,
			MaxOutput: 4096,
			MaxInstr:  uint64(budget)%4096 + 1,
			Input:     input,
		}
		run := func(cfg Config) {
			t.Helper()
			got := Run(p, cfg)
			want := ReferenceRun(p, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("engine diverges from reference:\nengine:    %+v\nreference: %+v\nprogram:\n%s",
					got, want, disasmAll(p))
			}
		}
		run(cfg)

		mask := make([]bool, len(p.Text))
		for i := range mask {
			mask[i] = maskSeed>>(uint(i)%64)&1 == 1
		}
		cfg.Plan = &FaultPlan{
			Eligible:   mask,
			Injections: []Injection{{At: uint64(at)%512 + 1, Bit: bit & 31}},
		}
		run(cfg)
	})
}

func disasmAll(p *isa.Program) string {
	s := ""
	for i, in := range p.Text {
		s += isa.Disasm(in) + "\n"
		if i > 60 {
			break
		}
	}
	return s
}
