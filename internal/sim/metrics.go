package sim

import (
	"time"

	"etap/internal/obs"
)

// Process-wide simulator metrics, registered on the default obs
// registry. Updates happen once per finished execution (never per
// instruction), so the inner loop's speed and its determinism are
// untouched: nothing here reads RNG state or feeds back into results.
var (
	simRuns = obs.Default().CounterVec("etap_sim_runs_total",
		"Simulated executions by kind: scratch (from instruction zero), record (golden pass capturing checkpoints), restore (resumed from a checkpoint).",
		"kind")
	simRunsScratch = simRuns.With("scratch")
	simRunsRecord  = simRuns.With("record")
	simRunsRestore = simRuns.With("restore")

	simInstructions = obs.Default().Counter("etap_sim_instructions_total",
		"Instructions retired across all simulated executions.")
	simRunSeconds = obs.Default().Counter("etap_sim_run_seconds_total",
		"Wall-clock seconds spent executing simulated instructions.")
	simCheckpoints = obs.Default().Counter("etap_sim_checkpoints_total",
		"Machine checkpoints captured during golden-pass recordings.")
)

func init() {
	// ns/instruction is the simulator's headline cost metric (also
	// emitted per revision by cmd/etbench); exposing the running ratio
	// saves every dashboard the same division.
	obs.Default().GaugeFunc("etap_sim_ns_per_instruction",
		"Average wall-clock nanoseconds per retired instruction since process start.",
		func() float64 {
			instr := simInstructions.Value()
			if instr == 0 {
				return 0
			}
			return simRunSeconds.Value() / instr * 1e9
		})
}

// recordRunMetrics folds one finished execution into the process
// counters.
func recordRunMetrics(kind *obs.Counter, instret uint64, elapsed time.Duration) {
	kind.Inc()
	simInstructions.Add(float64(instret))
	simRunSeconds.Add(elapsed.Seconds())
}
