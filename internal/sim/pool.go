// Trial-state pooling: campaigns run millions of short trials, and before
// this file every one of them allocated a fresh 8 MiB memory image (scratch
// trials) or fresh page tables (restored trials). Both are
// now recycled. Scratch memory comes from a sync.Pool of scratchBufs whose
// per-page dirty bitmap — maintained by the flat store path — lets reset()
// zero only the pages a trial actually wrote. Restored trials run on a
// Runner, which keeps one machine, the page tables and the
// sparse-page maps alive across all trials of a campaign shard.
//
// Pooling invariants (see docs/PERF.md): a scratchBuf's mem is all-zero
// outside pages marked in dirty — every write path through the machine
// either goes via store()/store8/16/32 (which set the bit) or is followed
// by markRange — and a Runner is single-goroutine, its machine state fully
// reinitialised per trial, so no architectural state leaks between trials.
package sim

import (
	"fmt"
	mathbits "math/bits"
	"sync"
	"time"
)

// scratchBuf is a pooled flat memory image plus its page-dirty bitmap.
type scratchBuf struct {
	mem   []byte
	dirty []uint64
}

var scratchPool sync.Pool

// acquireScratch returns a zeroed flat image of exactly size bytes,
// reusing a pooled one when the geometry matches. Non-default sizes miss
// the pool and allocate fresh, which is what every run did before pooling.
func acquireScratch(size uint32) *scratchBuf {
	if v := scratchPool.Get(); v != nil {
		b := v.(*scratchBuf)
		if uint32(len(b.mem)) == size {
			return b
		}
	}
	pages := (uint64(size) + pageSize - 1) >> pageShift
	return &scratchBuf{
		mem:   make([]byte, size),
		dirty: make([]uint64, (pages+63)/64),
	}
}

// markRange flags the pages covering [base, base+n) as dirty, for writes
// that bypass the store path (the data-segment copy at machine setup).
func (b *scratchBuf) markRange(base, n uint32) {
	if n == 0 {
		return
	}
	lo := base >> pageShift
	hi := (base + n - 1) >> pageShift
	for pn := lo; pn <= hi; pn++ {
		b.dirty[pn>>6] |= 1 << (pn & 63)
	}
}

// reset zeroes every dirtied page and clears the bitmap, restoring the
// all-zero invariant.
func (b *scratchBuf) reset() {
	for w, word := range b.dirty {
		for word != 0 {
			bit := word & -word
			word ^= bit
			pn := w<<6 + mathbits.TrailingZeros64(bit)
			lo := pn << pageShift
			hi := lo + pageSize
			if hi > len(b.mem) {
				hi = len(b.mem)
			}
			clear(b.mem[lo:hi])
		}
		b.dirty[w] = 0
	}
}

// release resets the buffer and returns it to the pool. The owning machine
// must be dead: its Result has been taken and it will not run again.
func (b *scratchBuf) release() {
	b.reset()
	scratchPool.Put(b)
}

// restoreBuf holds the copy-on-write page tables a restored machine
// indexes by fast-region page number.
type restoreBuf struct {
	pageTab []*[pageSize]byte
	wrTab   []*[pageSize]byte
}

var restorePool sync.Pool

func acquireRestore(fastPages int) *restoreBuf {
	if v := restorePool.Get(); v != nil {
		b := v.(*restoreBuf)
		if len(b.pageTab) == fastPages {
			return b
		}
	}
	return &restoreBuf{
		pageTab: make([]*[pageSize]byte, fastPages),
		wrTab:   make([]*[pageSize]byte, fastPages),
	}
}

// Runner executes trials against one Recording while reusing all per-trial
// state: the machine struct, the restore page tables, and
// the sparse-page maps. It is not safe for concurrent use — campaign
// shards each own one — but any number of Runners may share a Recording.
type Runner struct {
	rec      *Recording
	rb       *restoreBuf
	m        machine
	pages    map[uint32]*[pageSize]byte
	roSparse map[uint32]*[pageSize]byte
}

// NewRunner returns a Runner bound to the recording. Call Close when the
// trial sequence is done so the pooled restore state can be recycled.
func (r *Recording) NewRunner() *Runner {
	return &Runner{
		rec:      r,
		pages:    make(map[uint32]*[pageSize]byte),
		roSparse: make(map[uint32]*[pageSize]byte),
	}
}

// Close returns pooled state. The Runner must not be used afterwards.
func (rn *Runner) Close() {
	if rn.rb != nil {
		restorePool.Put(rn.rb)
		rn.rb = nil
	}
}

// RunFrom is Recording.RunFrom on reused state: resume from checkpoint idx
// (-1 for scratch) under a trial plan and optional instruction budget.
func (rn *Runner) RunFrom(idx int, plan *FaultPlan, maxInstr uint64) Result {
	r := rn.rec
	cfg := r.cfg
	cfg.Plan = plan
	if maxInstr != 0 {
		cfg.MaxInstr = maxInstr
	}
	if idx >= 0 && plan != nil && !sameMask(plan.Eligible, r.elig) &&
		maskFingerprint(plan.Eligible) != r.maskFP {
		// Fail fast: resuming mid-stream under a different mask would
		// mis-place every injection and silently corrupt the trial.
		panic(fmt.Sprintf("sim: RunFrom(%d): trial plan's eligibility mask (fingerprint %#x) differs from the recorded one (%#x); checkpoint eligible-stream positions are meaningless under any other mask", idx, maskFingerprint(plan.Eligible), r.maskFP))
	}
	code := codeForPlan(r, plan)
	if idx < 0 {
		m, buf := newScratch(r.prog, cfg)
		start := time.Now()
		m.runEngine(code)
		recordRunMetrics(simRunsScratch, m.instret, time.Since(start))
		res := m.result()
		buf.release()
		return res
	}

	s := r.snaps[idx]
	fastPages := int(cfg.MemSize >> pageShift)
	if rn.rb == nil {
		rn.rb = acquireRestore(fastPages)
	}
	rb := rn.rb
	copy(rb.pageTab, r.base)
	clear(rb.wrTab)
	clear(rn.pages)
	clear(rn.roSparse)

	m := &rn.m
	*m = machine{
		text:        r.prog.Text,
		memSize:     cfg.MemSize,
		paged:       true,
		pageTab:     rb.pageTab,
		wrTab:       rb.wrTab,
		pages:       rn.pages,
		roSparse:    rn.roSparse,
		input:       cfg.Input,
		cfg:         cfg,
		pc:          s.PC,
		classCounts: s.classCounts,
		instret:     s.Instret,
		eligCount:   s.EligCount,
		inPos:       s.inPos,
		out:         s.out,
	}
	copy(m.regs[:], s.regs[:])
	for pn, pg := range s.pages {
		if int(pn) < fastPages {
			rb.pageTab[pn] = pg
		} else {
			m.roSparse[pn] = pg
		}
	}
	if plan != nil {
		m.eligible = plan.Eligible
		m.injections = plan.Injections
	}
	start := time.Now()
	m.runEngine(code)
	// The machine resumed at s.Instret; only the instructions actually
	// re-executed count toward the process totals.
	recordRunMetrics(simRunsRestore, m.instret-s.Instret, time.Since(start))
	return m.result()
}

// codeForPlan picks the predecoded stream for a trial against a recording:
// the recording's own folded stream when the plan carries the very mask
// the golden pass was recorded with (the common campaign case — matched by
// identity, so no per-trial lock), the cached plain stream for plan-less
// replays, and a codeFor compile for anything else. Using r.code for a
// different mask would mis-count EligibleExec, so the identity gate is
// load-bearing for correctness, not just speed.
func codeForPlan(r *Recording, plan *FaultPlan) []dinstr {
	if plan == nil {
		if len(r.elig) == 0 {
			return r.code
		}
		return codeFor(r.prog, nil)
	}
	if sameMask(plan.Eligible, r.elig) {
		return r.code
	}
	return codeFor(r.prog, plan)
}
