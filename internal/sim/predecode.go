// Predecoding: the compile-once half of the execution engine. The per-step
// interpreter in sim.go re-derives everything it needs from isa.Instr on
// every retired instruction — opcode dispatch, Class for the histogram,
// Dest() for injection, and an eligibility triple-check against the
// FaultPlan mask. All of that is static per (program, mask) pair, so
// compile() resolves it once into a dense stream of 16-byte dinstr slots
// the hot loop (engine.go) can dispatch over with no per-step lookups.
//
// On top of the flat predecode, compile() fuses adjacent hot minic idioms
// into superinstructions: LUI+ORI 32-bit constant formation, ADDI+LW/SW
// address formation, and SLT/SLTU+BEQ/BNE compare-and-branch. Fusion never
// rewrites the second slot of a pair, so any jump landing mid-pair still
// finds a valid single-instruction entry, and a pair is only fused when the
// first slot is not eligible for injection and writes a real register —
// the two conditions under which executing the pair as one step is
// observationally identical to two reference steps (see docs/PERF.md).
package sim

import (
	"sync"

	"etap/internal/isa"
)

// dinstr is one predecoded slot. Register fields are indices into
// machine.regs with $zero destinations redirected to the write sink
// (regSink), so writeback needs no branch. For fused kinds the second op's
// operands live in rd2/imm2 (and rt for the fused store's value register).
type dinstr struct {
	kind uint8 // isa.Op, or a fused k* super-opcode
	rd   uint8 // destination slot of the first op (sink-redirected)
	rs   uint8
	rt   uint8
	rd2  uint8 // fused: destination slot of the second op (sink-redirected)
	dst  uint8 // injection target of the retiring op; noDest when none
	cls  uint8 // isa.Class of the first op
	elig bool  // retiring slot's FaultPlan eligibility, folded at compile time
	imm  int32
	imm2 int32 // fused: second immediate, memory offset, or branch target
}

// Fused super-opcodes, allocated above the isa opcode space.
const (
	kLuiOri  = uint8(isa.NumOps) + iota // lui rd,hi  + ori rd2,rd,lo
	kAddiLw                             // addi rd,rs,imm + lw rd2,imm2(rd)
	kAddiSw                             // addi rd,rs,imm + sw rt,imm2(rd)
	kSltBeq                             // slt rd,rs,rt + beq rd,$zero,imm2
	kSltBne                             // slt rd,rs,rt + bne rd,$zero,imm2
	kSltuBeq                            // sltu variant of kSltBeq
	kSltuBne                            // sltu variant of kSltBne
)

// noDest marks a slot whose retiring op writes no injectable register.
const noDest = 0xFF

// regSink is the discard slot for $zero destinations (see machine.regs).
const regSink = uint8(isa.NumRegs)

// rdx maps a destination register to its writeback slot, redirecting the
// hardwired zero register to the sink.
func rdx(r isa.Reg) uint8 {
	if r == isa.RegZero {
		return regSink
	}
	return uint8(r)
}

// compile predecodes text under an eligibility mask (nil or short masks
// leave the uncovered tail ineligible, matching the interpreter's bounds
// check). The result is immutable and safe to share across machines.
func compile(text []isa.Instr, mask []bool) []dinstr {
	elig := func(i int) bool { return i < len(mask) && mask[i] }
	code := make([]dinstr, len(text))
	for i := range text {
		in := &text[i]
		d := &code[i]
		d.kind = uint8(in.Op)
		d.cls = uint8(in.Class())
		d.rd = rdx(in.Rd)
		d.rs = uint8(in.Rs)
		d.rt = uint8(in.Rt)
		d.imm = in.Imm
		d.dst = noDest
		if dest, ok := in.Dest(); ok && dest != isa.RegZero {
			d.dst = uint8(dest)
		}
		if in.Op == isa.JAL {
			d.rd = uint8(isa.RegRA)
		}
		d.elig = elig(i)
	}
	// Fusion pass. A pair (A at i, B at i+1) fuses only when A's slot is
	// not eligible (the fused step does one post-retire check, B's) and A
	// writes a real register (the handlers forward A's result to B without
	// re-reading the register file, which would be wrong for $zero). The
	// fused slot retires with B's eligibility and injection destination.
	// code[i+1] is left untouched as a jump-target entry point; entries may
	// overlap (i fused with i+1, i+1 fused with i+2) because every slot
	// remains independently executable.
	for i := 0; i+1 < len(text); i++ {
		a, b := &text[i], &text[i+1]
		if elig(i) || a.Rd == isa.RegZero {
			continue
		}
		d := &code[i]
		switch {
		case a.Op == isa.LUI && b.Op == isa.ORI && b.Rs == a.Rd:
			d.kind = kLuiOri
			d.rd2 = rdx(b.Rd)
			d.imm2 = b.Imm
		case a.Op == isa.ADDI && b.Op == isa.LW && b.Rs == a.Rd:
			d.kind = kAddiLw
			d.rd2 = rdx(b.Rd)
			d.imm2 = b.Imm
		case a.Op == isa.ADDI && b.Op == isa.SW && b.Rs == a.Rd:
			d.kind = kAddiSw
			d.rt = uint8(b.Rt)
			d.imm2 = b.Imm
		case (a.Op == isa.SLT || a.Op == isa.SLTU) && (b.Op == isa.BEQ || b.Op == isa.BNE) &&
			((b.Rs == a.Rd && b.Rt == isa.RegZero) || (b.Rt == a.Rd && b.Rs == isa.RegZero)):
			target, _ := b.BranchTarget()
			d.imm2 = int32(target)
			switch {
			case a.Op == isa.SLT && b.Op == isa.BEQ:
				d.kind = kSltBeq
			case a.Op == isa.SLT && b.Op == isa.BNE:
				d.kind = kSltBne
			case a.Op == isa.SLTU && b.Op == isa.BEQ:
				d.kind = kSltuBeq
			default:
				d.kind = kSltuBne
			}
		default:
			continue
		}
		d.elig = elig(i + 1)
		d.dst = code[i+1].dst
	}
	return code
}

// The predecode cache maps a built program to its compiled streams: one
// plain stream (no mask) and one for the most recent eligibility mask,
// keyed by the mask's identity (&mask[0], length). Identity keying is
// sound because FaultPlan documents Eligible as immutable once run, and
// the cache's own reference to the backing array prevents the allocator
// from recycling it while the entry lives.
const codeCacheMax = 64

var (
	codeMu    sync.Mutex
	codeCache = map[*isa.Program]*progCode{}
)

type progCode struct {
	plain   []dinstr
	maskPtr *bool
	maskLen int
	masked  []dinstr
}

// codeFor returns the predecoded stream for p under the plan's eligibility
// mask (plan may be nil), compiling and caching on first use.
func codeFor(p *isa.Program, plan *FaultPlan) []dinstr {
	var mask []bool
	if plan != nil {
		mask = plan.Eligible
	}
	codeMu.Lock()
	defer codeMu.Unlock()
	pc := codeCache[p]
	if pc == nil {
		if len(codeCache) >= codeCacheMax {
			for k := range codeCache {
				delete(codeCache, k)
				break
			}
		}
		pc = &progCode{}
		codeCache[p] = pc
	}
	if len(mask) == 0 {
		if pc.plain == nil {
			pc.plain = compile(p.Text, nil)
		}
		return pc.plain
	}
	if pc.maskPtr != &mask[0] || pc.maskLen != len(mask) {
		pc.masked = compile(p.Text, mask)
		pc.maskPtr = &mask[0]
		pc.maskLen = len(mask)
	}
	return pc.masked
}

// sameMask reports whether two eligibility masks are the same slice, by
// identity. Empty masks (nil or zero-length) compare equal to each other.
func sameMask(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}
