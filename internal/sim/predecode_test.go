package sim

import (
	"testing"

	"etap/internal/isa"
)

// TestCompileFusion pins the fusion rules: which adjacent pairs become
// superinstructions, and the guards that keep a pair unfused when the
// first slot is eligible for injection or writes $zero.
func TestCompileFusion(t *testing.T) {
	text := []isa.Instr{
		{Op: isa.LUI, Rd: 8, Imm: 0x1234},              // 0: fuses with 1
		{Op: isa.ORI, Rd: 9, Rs: 8, Imm: 0x5678},       // 1
		{Op: isa.ADDI, Rd: 10, Rs: 29, Imm: -8},        // 2: fuses with 3
		{Op: isa.LW, Rd: 11, Rs: 10, Imm: 4},           // 3
		{Op: isa.ADDI, Rd: 12, Rs: 29, Imm: -16},       // 4: fuses with 5
		{Op: isa.SW, Rt: 11, Rs: 12, Imm: 0},           // 5
		{Op: isa.SLT, Rd: 13, Rs: 10, Rt: 11},          // 6: fuses with 7
		{Op: isa.BNE, Rs: 13, Rt: isa.RegZero, Imm: 2}, // 7
		{Op: isa.SLTU, Rd: 14, Rs: 10, Rt: 11},         // 8: fuses with 9
		{Op: isa.BEQ, Rs: isa.RegZero, Rt: 14, Imm: 0}, // 9 (swapped operands)
		{Op: isa.LUI, Rd: isa.RegZero, Imm: 1},         // 10: $zero dest, no fusion
		{Op: isa.ORI, Rd: 15, Rs: isa.RegZero},         // 11
		{Op: isa.SLT, Rd: 16, Rs: 10, Rt: 11},          // 12: B compares a third reg, no fusion
		{Op: isa.BNE, Rs: 17, Rt: isa.RegZero, Imm: 0}, // 13
	}
	code := compile(text, nil)
	wantKinds := map[int]uint8{
		0: kLuiOri, 2: kAddiLw, 4: kAddiSw, 6: kSltBne, 8: kSltuBeq,
		10: uint8(isa.LUI), 12: uint8(isa.SLT),
	}
	for i, want := range wantKinds {
		if code[i].kind != want {
			t.Errorf("slot %d: kind = %d, want %d", i, code[i].kind, want)
		}
	}
	// The second slot of every fused pair must stay a valid single entry.
	for _, i := range []int{1, 3, 5, 7, 9} {
		if code[i].kind != uint8(text[i].Op) {
			t.Errorf("slot %d: B half rewritten to kind %d", i, code[i].kind)
		}
	}
	// $zero destinations redirect to the write sink.
	if code[10].rd != regSink {
		t.Errorf("slot 10: $zero dest rd = %d, want sink %d", code[10].rd, regSink)
	}

	// An eligible A slot blocks fusion: the fused step could not honor an
	// injection scheduled between the two halves.
	mask := make([]bool, len(text))
	mask[0] = true
	masked := compile(text, mask)
	if masked[0].kind != uint8(isa.LUI) {
		t.Errorf("eligible A slot still fused: kind %d", masked[0].kind)
	}
	if masked[2].kind != kAddiLw {
		t.Errorf("ineligible pair lost fusion under mask: kind %d", masked[2].kind)
	}
	// A fused pair retires with the B half's eligibility and injection dest.
	bmask := make([]bool, len(text))
	bmask[1] = true
	bm := compile(text, bmask)
	if bm[0].kind != kLuiOri || !bm[0].elig {
		t.Errorf("fused pair did not take B's eligibility: kind %d elig %v", bm[0].kind, bm[0].elig)
	}
	if bm[0].dst != 9 {
		t.Errorf("fused pair dst = %d, want B's dest 9", bm[0].dst)
	}
}

// TestEnginePrograms asserts the differential corpus actually contains
// fused superinstructions — otherwise the equivalence tests would pass
// vacuously on unfused streams.
func TestEngineProgramsContainFusions(t *testing.T) {
	seen := map[uint8]bool{}
	for _, tc := range enginePrograms {
		p := mustAssemble(t, tc.src)
		for _, d := range compile(p.Text, nil) {
			if d.kind >= uint8(isa.NumOps) {
				seen[d.kind] = true
			}
		}
	}
	for k, name := range map[uint8]string{
		kLuiOri: "lui+ori", kAddiLw: "addi+lw", kAddiSw: "addi+sw",
		kSltBne: "slt+bne", kSltuBeq: "sltu+beq",
	} {
		if !seen[k] {
			t.Errorf("no program in the corpus compiles a %s superinstruction", name)
		}
	}
}
