// Checkpoint-restore recovery: the detect half of detect→recover lives in
// internal/harden (trapdet checks end a run with Outcome Detected); this
// file closes the loop. RunRecover wraps RunFrom so a Detected trial does
// not halt: it restores the latest checkpoint strictly *before* the
// detection point — measured in eligible-stream position, the only
// coordinate shared by the golden pass and a diverged trial — and replays
// with the injections that had not yet fired. A transient fault does not
// recur on replay, so the fired prefix of the plan is dropped; every
// remaining injection has an ordinal beyond the restored checkpoint and
// still fires.
//
// Termination: a Detected replay necessarily fired at least one more
// injection (a restored machine holds uncorrupted golden state and follows
// the golden path — which never traps — until the next flip lands), so the
// remaining-injection suffix shrinks strictly every round and the loop
// ends after at most len(Injections) replays even without the MaxAttempts
// bound. The instruction budget is shared across attempts: work already
// executed (original attempt plus every replay, excluding checkpoint-
// skipped prefixes) is charged against maxInstr, so recovery cannot turn a
// bounded trial into an unbounded one.
package sim

import "bytes"

// RecoveryPolicy parameterises checkpoint-restore recovery for Detected
// trials.
type RecoveryPolicy struct {
	// MaxAttempts bounds how many restore-replay rounds one trial may
	// consume. Zero (the default) disables recovery entirely: RunRecover
	// degenerates to RunFrom and Detected stays a terminal outcome.
	MaxAttempts int
}

// Enabled reports whether the policy permits any recovery.
func (p RecoveryPolicy) Enabled() bool { return p.MaxAttempts > 0 }

// RunRecover is RunFrom plus recovery: when the trial ends Detected and
// the policy allows it, restore the latest checkpoint strictly before the
// detection point and replay with the not-yet-fired injections, repeating
// on re-detection until the trial settles or the attempt/instruction
// budget runs out. The end state is classified as:
//
//   - Recovered: a replay completed with output bit-identical to the
//     golden run — the fault was fully absorbed.
//   - OK: a replay completed but the output differs (an SDC that survived
//     rollback; campaigns report it as a degraded completion).
//   - Detected: recovery disabled or exhausted; the last detection's
//     DetectInstret/DetectPC are reported.
//   - Crash/Timeout: a replay crashed or the shared budget ran out.
//
// The returned Result accumulates across attempts: Injected counts every
// flip that fired in any attempt, FirstInjectInstret is from the earliest
// fired flip, and RecoveryAttempts/RecoverInstret account the replay work.
func (rn *Runner) RunRecover(idx int, plan *FaultPlan, maxInstr uint64, pol RecoveryPolicy) Result {
	res := rn.RunFrom(idx, plan, maxInstr)
	if !pol.Enabled() || res.Outcome != Detected || plan == nil {
		return res
	}
	r := rn.rec
	budget := maxInstr
	if budget == 0 {
		budget = r.cfg.MaxInstr
	}
	// spent charges only instructions actually executed — the restored
	// prefix a checkpoint skipped was never run, so it never counts.
	spent := res.Instret - snapInstret(r, idx)
	fired := res.Injected
	first := res.FirstInjectInstret
	attempts := 0
	var replayed uint64
	for res.Outcome == Detected && attempts < pol.MaxAttempts && spent < budget {
		// Restore strictly before the detection point in eligible-stream
		// position: every remaining injection has At > res.EligibleExec,
		// so all of them still fire in the replay.
		rIdx := r.SnapshotBefore(res.EligibleExec + 1)
		replay := plan
		if fired > 0 {
			replay = &FaultPlan{Eligible: plan.Eligible, Injections: plan.Injections[fired:]}
		}
		base := snapInstret(r, rIdx)
		attempts++
		res = rn.RunFrom(rIdx, replay, base+(budget-spent))
		work := res.Instret - base
		spent += work
		replayed += work
		if res.Injected > 0 && first == 0 {
			first = res.FirstInjectInstret
		}
		fired += res.Injected
	}
	res.Injected = fired
	res.FirstInjectInstret = first
	res.RecoveryAttempts = attempts
	res.RecoverInstret = replayed
	if res.Outcome == OK && bytes.Equal(res.Output, r.Result.Output) {
		res.Outcome = Recovered
	}
	return res
}

// RunRecover is Runner.RunRecover on throwaway per-call state; callers
// running many trials should hold a Runner instead.
func (r *Recording) RunRecover(idx int, plan *FaultPlan, maxInstr uint64, pol RecoveryPolicy) Result {
	rn := r.NewRunner()
	defer rn.Close()
	return rn.RunRecover(idx, plan, maxInstr, pol)
}

// snapInstret is the retirement count a run resumed from checkpoint idx
// starts at (0 for from-scratch).
func snapInstret(r *Recording, idx int) uint64 {
	if idx < 0 {
		return 0
	}
	return r.snaps[idx].Instret
}
