package sim_test

import (
	"bytes"
	"strings"
	"testing"

	"etap/internal/asm"
	"etap/internal/isa"
	"etap/internal/sim"
)

// detectProgram is a hand-hardened loop in the internal/harden style: the
// eligible primary addi has a shadow copy, and a primary/shadow mismatch
// executes trapdet. Flipping any bit of the primary's destination is
// therefore detected one instruction later, which makes the program a
// minimal detect→recover subject.
const detectProgram = `
.text
.func __start
	li $t0, 0
	li $t1, 0
loop:
	addi $t2, $t0, 3
	addi $t3, $t0, 3
	bne $t2, $t3, detect
	add $t1, $t1, $t2
	addi $t0, $t0, 1
	slti $at, $t0, 300
	bnez $at, loop
	addi $sp, $sp, -4
	sw $t1, 0($sp)
	move $a0, $sp
	li $a1, 4
	li $v0, 4
	syscall
	li $a0, 0
	li $v0, 1
	syscall
detect:
	trapdet
.endfunc
`

// recordDetect records a golden pass of detectProgram with only the
// primary addi (the first of the duplicated pair) eligible, so each loop
// iteration contributes exactly one eligible-stream ordinal.
func recordDetect(t *testing.T) (*sim.Recording, *sim.FaultPlan) {
	t.Helper()
	p, err := asm.Assemble(detectProgram)
	if err != nil {
		t.Fatal(err)
	}
	elig := make([]bool, len(p.Text))
	primary := -1
	for i, in := range p.Text {
		if in.Op == isa.ADDI && in.Imm == 3 {
			primary = i
			break
		}
	}
	if primary < 0 {
		t.Fatal("primary addi not found")
	}
	elig[primary] = true
	rec, err := sim.Record(p, sim.Config{Plan: &sim.FaultPlan{Eligible: elig}}, sim.RecordOptions{Interval: 128})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result.Outcome != sim.OK {
		t.Fatalf("golden outcome %s", rec.Result.Outcome)
	}
	if rec.Result.EligibleExec != 300 {
		t.Fatalf("eligible stream length %d, want 300", rec.Result.EligibleExec)
	}
	if len(rec.Snapshots()) < 4 {
		t.Fatalf("only %d snapshots; the recovery tests need mid-run checkpoints", len(rec.Snapshots()))
	}
	return rec, &sim.FaultPlan{Eligible: elig}
}

// startFor picks the checkpoint a trial plan would resume from, mirroring
// the campaign engine's planIdx.
func startFor(rec *sim.Recording, plan *sim.FaultPlan) int {
	if len(plan.Injections) > 0 {
		return rec.SnapshotBefore(plan.Injections[0].At)
	}
	return len(rec.Snapshots()) - 1
}

func TestRunRecoverRestoresGoldenOutput(t *testing.T) {
	rec, base := recordDetect(t)
	plan := &sim.FaultPlan{Eligible: base.Eligible, Injections: []sim.Injection{{At: 150, Bit: 5}}}
	idx := startFor(rec, plan)

	detected := rec.RunFrom(idx, plan, 0)
	if detected.Outcome != sim.Detected {
		t.Fatalf("trial without recovery: outcome %s, want detected", detected.Outcome)
	}

	// Policy disabled: bit-identical to plain RunFrom, zero recovery work.
	off := rec.RunRecover(idx, plan, 0, sim.RecoveryPolicy{})
	if !resultsEqual(off, detected) || off.RecoveryAttempts != 0 || off.RecoverInstret != 0 {
		t.Fatalf("disabled recovery diverged from RunFrom:\nRunFrom:    %+v\nRunRecover: %+v", headline(detected), headline(off))
	}

	res := rec.RunRecover(idx, plan, 0, sim.RecoveryPolicy{MaxAttempts: 3})
	if res.Outcome != sim.Recovered {
		t.Fatalf("outcome %s, want recovered", res.Outcome)
	}
	if !bytes.Equal(res.Output, rec.Result.Output) {
		t.Fatalf("recovered output differs from golden: %q vs %q", res.Output, rec.Result.Output)
	}
	if res.RecoveryAttempts != 1 {
		t.Fatalf("recovery attempts %d, want 1", res.RecoveryAttempts)
	}
	if res.RecoverInstret == 0 {
		t.Fatal("recovered trial reports zero replayed instructions")
	}
	if res.Injected != 1 {
		t.Fatalf("injected %d, want 1", res.Injected)
	}
	if res.FirstInjectInstret != detected.FirstInjectInstret {
		t.Fatalf("first-injection instret changed across recovery: %d vs %d",
			res.FirstInjectInstret, detected.FirstInjectInstret)
	}
}

func TestRunRecoverReplaysRemainingInjections(t *testing.T) {
	rec, base := recordDetect(t)
	plan := &sim.FaultPlan{Eligible: base.Eligible, Injections: []sim.Injection{{At: 100, Bit: 2}, {At: 200, Bit: 9}}}
	idx := startFor(rec, plan)

	res := rec.RunRecover(idx, plan, 0, sim.RecoveryPolicy{MaxAttempts: 3})
	if res.Outcome != sim.Recovered {
		t.Fatalf("outcome %s, want recovered", res.Outcome)
	}
	// Both flips must have fired (each replay resumes before the next
	// remaining ordinal) and each detection consumed one attempt.
	if res.Injected != 2 {
		t.Fatalf("injected %d, want 2: a replay skipped or re-fired an injection", res.Injected)
	}
	if res.RecoveryAttempts != 2 {
		t.Fatalf("recovery attempts %d, want 2", res.RecoveryAttempts)
	}
	if !bytes.Equal(res.Output, rec.Result.Output) {
		t.Fatal("recovered output differs from golden")
	}
}

func TestRunRecoverAttemptsExhausted(t *testing.T) {
	rec, base := recordDetect(t)
	plan := &sim.FaultPlan{Eligible: base.Eligible, Injections: []sim.Injection{{At: 100, Bit: 2}, {At: 200, Bit: 9}}}
	idx := startFor(rec, plan)

	res := rec.RunRecover(idx, plan, 0, sim.RecoveryPolicy{MaxAttempts: 1})
	if res.Outcome != sim.Detected {
		t.Fatalf("outcome %s, want detected after exhausting one attempt", res.Outcome)
	}
	if res.RecoveryAttempts != 1 {
		t.Fatalf("recovery attempts %d, want 1", res.RecoveryAttempts)
	}
	if res.Injected != 2 {
		t.Fatalf("injected %d, want 2: the single replay should reach the second flip", res.Injected)
	}
	if res.DetectInstret == 0 || res.DetectPC < 0 {
		t.Fatal("exhausted recovery lost the last detection's location")
	}
}

func TestRunRecoverBudgetAccounting(t *testing.T) {
	rec, base := recordDetect(t)
	plan := &sim.FaultPlan{Eligible: base.Eligible, Injections: []sim.Injection{{At: 150, Bit: 5}}}
	detected := rec.RunFrom(-1, plan, 0)
	if detected.Outcome != sim.Detected {
		t.Fatalf("outcome %s, want detected", detected.Outcome)
	}

	// Budget exactly the detection cost: no instructions remain for a
	// replay, so the trial stays Detected without consuming an attempt.
	res := rec.RunRecover(-1, plan, detected.Instret, sim.RecoveryPolicy{MaxAttempts: 3})
	if res.Outcome != sim.Detected || res.RecoveryAttempts != 0 {
		t.Fatalf("spent budget: outcome %s attempts %d, want detected/0", res.Outcome, res.RecoveryAttempts)
	}

	// A sliver of leftover budget buys a replay that times out: recovery
	// must charge replayed work against the shared budget, not reset it.
	res = rec.RunRecover(-1, plan, detected.Instret+10, sim.RecoveryPolicy{MaxAttempts: 3})
	if res.Outcome != sim.Timeout {
		t.Fatalf("outcome %s, want timeout from the budget-capped replay", res.Outcome)
	}
	if res.RecoveryAttempts != 1 {
		t.Fatalf("recovery attempts %d, want 1", res.RecoveryAttempts)
	}
	if res.RecoverInstret == 0 || res.RecoverInstret > detected.Instret+10 {
		t.Fatalf("implausible replay work %d for budget %d", res.RecoverInstret, detected.Instret+10)
	}
}

// TestRunFromRejectsForeignMask pins the mask-fingerprint guard: restoring
// a checkpoint under a plan whose eligibility mask differs in content from
// the recorded one must fail fast instead of silently mis-placing every
// injection. An equal-content copy of the mask (different slice identity)
// must still be accepted, and from-scratch runs are unaffected.
func TestRunFromRejectsForeignMask(t *testing.T) {
	rec, base := recordDetect(t)
	plan := &sim.FaultPlan{Eligible: base.Eligible, Injections: []sim.Injection{{At: 150, Bit: 5}}}
	idx := startFor(rec, plan)

	copyMask := make([]bool, len(base.Eligible))
	copy(copyMask, base.Eligible)
	same := rec.RunFrom(idx, &sim.FaultPlan{Eligible: copyMask, Injections: plan.Injections}, 0)
	if !resultsEqual(same, rec.RunFrom(idx, plan, 0)) {
		t.Fatal("equal-content mask copy changed the result")
	}

	foreign := make([]bool, len(base.Eligible))
	for i := range foreign {
		foreign[i] = !base.Eligible[i]
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: restore under a foreign mask did not panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "eligibility mask") {
				t.Fatalf("%s: unexpected panic %v", name, r)
			}
		}()
		f()
	}
	mustPanic("RunFrom", func() {
		rec.RunFrom(idx, &sim.FaultPlan{Eligible: foreign, Injections: plan.Injections}, 0)
	})
	mustPanic("RunRecover", func() {
		rec.RunRecover(idx, &sim.FaultPlan{Eligible: foreign, Injections: plan.Injections}, 0,
			sim.RecoveryPolicy{MaxAttempts: 1})
	})

	// From-scratch runs carry no checkpoint stream positions, so any mask
	// remains legal there.
	if res := rec.RunFrom(-1, &sim.FaultPlan{Eligible: foreign}, 0); res.Outcome != sim.OK {
		t.Fatalf("scratch run under a different mask: outcome %s", res.Outcome)
	}
}
